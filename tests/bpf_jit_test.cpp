// Tier-2 (native x86-64) BPF execution: three-tier equivalence property
// sweep, exact abort semantics, W^X mapping lifecycle, the non-x86-64
// fallback policy, and the program cache's jit/stats extensions.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "capbench/bpf/analysis/fact_table.hpp"
#include "capbench/bpf/asm_text.hpp"
#include "capbench/bpf/decoded.hpp"
#include "capbench/bpf/jit/assembler.hpp"
#include "capbench/bpf/jit/exec_memory.hpp"
#include "capbench/bpf/jit/jit_program.hpp"
#include "capbench/bpf/program_cache.hpp"
#include "capbench/bpf/threaded_vm.hpp"
#include "capbench/bpf/validator.hpp"
#include "capbench/bpf/vm.hpp"

#include "bpf_random_program.hpp"

namespace capbench::bpf {
namespace {

DecodedProgram decode_standalone(const Program& prog) {
    return decode(prog, analysis::FactTable::build(prog));
}

// ---- three-tier equivalence property sweep --------------------------------

TEST(JitTierEquivalence, ThousandRandomProgramsMatchByteForByte) {
    if (!JitProgram::supported()) GTEST_SKIP() << "no native tier on this build";
    std::mt19937 rng{20260809};
    int programs = 0;
    int aborts_seen = 0;
    while (programs < 1000) {
        const Program prog = testgen::random_program(rng);
        ASSERT_EQ(validate(prog), std::nullopt) << disassemble(prog);
        ++programs;
        const DecodedProgram decoded = decode_standalone(prog);
        const auto jitted = JitProgram::compile(decoded);

        for (int trial = 0; trial < 4; ++trial) {
            std::vector<std::byte> data(rng() % 100);
            for (auto& b : data) b = static_cast<std::byte>(rng() & 0xFF);
            // wire_len >= data.size(): truncated captures included.
            const auto wire = static_cast<std::uint32_t>(data.size() + rng() % 64);
            const VmResult interp = Vm::run(prog, data, wire);
            const VmResult threaded = ThreadedVm::run(decoded, data, wire);
            const VmResult jit = jitted->run(data, wire);
            ASSERT_EQ(interp.accept_len, jit.accept_len)
                << disassemble(prog) << "data size " << data.size() << " wire " << wire;
            ASSERT_EQ(interp.aborted, jit.aborted) << disassemble(prog);
            ASSERT_EQ(interp.insns_executed, jit.insns_executed) << disassemble(prog);
            ASSERT_EQ(threaded.accept_len, jit.accept_len) << disassemble(prog);
            ASSERT_EQ(threaded.insns_executed, jit.insns_executed) << disassemble(prog);
            if (interp.aborted) ++aborts_seen;
        }
    }
    // The generator must actually exercise the abort paths for the
    // equivalence claim to mean anything.
    EXPECT_GT(aborts_seen, 0);
}

// ---- abort semantics -------------------------------------------------------

TEST(JitAbort, DivisionByXZeroCountsTheFaultingInstruction) {
    if (!JitProgram::supported()) GTEST_SKIP() << "no native tier on this build";
    // X = pkt[0]; A = 100; A /= X; ret A — the divisor is data-dependent.
    const Program prog = {
        stmt(BPF_LDX | BPF_B | BPF_MSH, 0),  // X = 4 * (pkt[0] & 0x0F)
        stmt(BPF_LD | BPF_IMM, 100),
        stmt(BPF_ALU | BPF_DIV | BPF_X, 0),
        stmt(BPF_RET | BPF_A, 0),
    };
    const auto jitted = JitProgram::compile(decode_standalone(prog));

    const std::vector<std::byte> zero{std::byte{0x20}};  // low nibble 0 -> X = 0
    const VmResult faulted = jitted->run(zero, 1);
    EXPECT_TRUE(faulted.aborted);
    EXPECT_EQ(faulted.accept_len, 0u);
    EXPECT_EQ(faulted.insns_executed, 3u);  // the div itself is counted

    const std::vector<std::byte> five{std::byte{0x05}};  // X = 20
    const VmResult ok = jitted->run(five, 1);
    EXPECT_FALSE(ok.aborted);
    EXPECT_EQ(ok.accept_len, 5u);  // 100 / 20
    EXPECT_EQ(ok.insns_executed, 4u);
}

TEST(JitAbort, OutOfBoundsLoadMatchesInterpreterExactly) {
    if (!JitProgram::supported()) GTEST_SKIP() << "no native tier on this build";
    const Program prog = {
        stmt(BPF_LD | BPF_W | BPF_ABS, 100),
        stmt(BPF_RET | BPF_A, 0),
    };
    const auto jitted = JitProgram::compile(decode_standalone(prog));
    const std::vector<std::byte> tiny(4, std::byte{0xAB});
    const VmResult interp = Vm::run(prog, tiny, 4);
    const VmResult jit = jitted->run(tiny, 4);
    EXPECT_TRUE(jit.aborted);
    EXPECT_EQ(jit.accept_len, interp.accept_len);
    EXPECT_EQ(jit.insns_executed, interp.insns_executed);
    EXPECT_EQ(jit.insns_executed, 1u);

    // Boundary: exactly enough bytes for the last word succeeds.
    std::vector<std::byte> exact(104, std::byte{0});
    exact[100] = std::byte{0x12};
    exact[103] = std::byte{0x34};
    const VmResult hit = jitted->run(exact, 104);
    EXPECT_FALSE(hit.aborted);
    EXPECT_EQ(hit.accept_len, 0x12000034u);
}

TEST(JitAbort, FallthroughOffTheEndHitsTheDefensiveFaultPath) {
    if (!JitProgram::supported()) GTEST_SKIP() << "no native tier on this build";
    // The verifier forbids fallthrough, so hand-build the decoded form: one
    // plain instruction, no RET.  The interpreter semantics for the same
    // source ({ld #5}) reject after executing the one instruction.
    DecodedProgram prog;
    prog.insns.push_back(DecodedInsn{Tok::kLdImm, 0, 5, 0, 0});
    const auto jitted = JitProgram::compile(prog);
    const VmResult r = jitted->run({}, 0);
    EXPECT_TRUE(r.aborted);
    EXPECT_EQ(r.accept_len, 0u);
    EXPECT_EQ(r.insns_executed, 1u);

    const VmResult interp = Vm::run({stmt(BPF_LD | BPF_IMM, 5)}, {}, 0);
    EXPECT_EQ(r.aborted, interp.aborted);
    EXPECT_EQ(r.insns_executed, interp.insns_executed);
}

TEST(JitAbort, EmptyProgramAbortsLikeTheThreadedTier) {
    if (!JitProgram::supported()) GTEST_SKIP() << "no native tier on this build";
    const DecodedProgram empty;
    const auto jitted = JitProgram::compile(empty);
    const VmResult jit = jitted->run({}, 0);
    const VmResult threaded = ThreadedVm::run(empty, {}, 0);
    EXPECT_EQ(jit.aborted, threaded.aborted);
    EXPECT_EQ(jit.insns_executed, threaded.insns_executed);
    EXPECT_EQ(jit.accept_len, threaded.accept_len);
}

// ---- fact-driven elisions --------------------------------------------------

TEST(JitElision, DeadStoreIsFlaggedSkippedAndStillCounted) {
    // A store whose slot is never read is liveness-dead: flagged at decode
    // time, elided from the emitted code, still counted as executed.
    const Program dead = {
        stmt(BPF_LD | BPF_IMM, 7),
        stmt(BPF_ST, 3),  // M[3] never read
        stmt(BPF_LD | BPF_IMM, 9),
        stmt(BPF_RET | BPF_A, 0),
    };
    const DecodedProgram decoded = decode_standalone(dead);
    EXPECT_NE(decoded.insns[1].flags & kDecodedDeadStore, 0);
    EXPECT_EQ(decoded.stats.dead_stores, 1u);

    const Program live = {
        stmt(BPF_LD | BPF_IMM, 7),
        stmt(BPF_ST, 3),
        stmt(BPF_LD | BPF_W | BPF_MEM, 3),
        stmt(BPF_RET | BPF_A, 0),
    };
    const DecodedProgram live_decoded = decode_standalone(live);
    EXPECT_EQ(live_decoded.insns[1].flags & kDecodedDeadStore, 0);
    EXPECT_EQ(live_decoded.stats.dead_stores, 0u);

    if (!JitProgram::supported()) return;
    const VmResult jit = JitProgram::compile(decoded)->run({}, 0);
    const VmResult interp = Vm::run(dead, {}, 0);
    EXPECT_EQ(jit.accept_len, interp.accept_len);
    EXPECT_EQ(jit.insns_executed, interp.insns_executed);  // 4: the store counts
    EXPECT_EQ(jit.insns_executed, 4u);

    const VmResult live_jit = JitProgram::compile(live_decoded)->run({}, 0);
    EXPECT_EQ(live_jit.accept_len, 7u);
}

TEST(JitElision, CodegenIsDeterministicPerProgram) {
    std::mt19937 rng{7};
    for (int i = 0; i < 20; ++i) {
        const Program prog = testgen::random_program(rng);
        const DecodedProgram decoded = decode_standalone(prog);
        EXPECT_EQ(jit::compile_to_bytes(decoded), jit::compile_to_bytes(decoded));
    }
}

// ---- W^X mapping lifecycle -------------------------------------------------

TEST(JitExecMemory, MapsSealsRunsAndUnmaps) {
    if (!jit::ExecMemory::supported()) GTEST_SKIP() << "no native tier on this build";
    // mov eax, 42; ret — the smallest executable round trip.
    jit::Assembler a;
    a.mov_ri32(jit::Reg::rax, 42);
    a.ret();
    const std::vector<std::uint8_t> code = a.finish();

    jit::ExecMemory mem(code);
    ASSERT_NE(mem.entry(), nullptr);
    EXPECT_EQ(mem.code_size(), code.size());
    EXPECT_GE(mem.mapped_size(), mem.code_size());
    EXPECT_EQ(mem.mapped_size() % 4096, 0u);

    using Fn = std::uint32_t (*)();
    const auto fn = reinterpret_cast<Fn>(const_cast<void*>(mem.entry()));
    EXPECT_EQ(fn(), 42u);

    // Moves transfer ownership; the moved-from mapping must not double-free.
    jit::ExecMemory moved(std::move(mem));
    EXPECT_EQ(mem.entry(), nullptr);  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(reinterpret_cast<Fn>(const_cast<void*>(moved.entry()))(), 42u);
}

TEST(JitExecMemory, RepeatedCompileFreeCyclesDoNotLeak) {
    if (!JitProgram::supported()) GTEST_SKIP() << "no native tier on this build";
    // Exercised under the ASan/LSan CI pass: any leaked mapping or freed
    // code pointer shows up there.
    std::mt19937 rng{99};
    for (int i = 0; i < 64; ++i) {
        const Program prog = testgen::random_program(rng);
        const auto jitted = JitProgram::compile(decode_standalone(prog));
        const std::vector<std::byte> data(64, std::byte{0x11});
        (void)jitted->run(data, 64);
    }
}

TEST(JitExecMemory, RejectsEmptyCode) {
    if (!jit::ExecMemory::supported()) GTEST_SKIP() << "no native tier on this build";
    EXPECT_THROW(jit::ExecMemory{std::vector<std::uint8_t>{}}, std::runtime_error);
}

// ---- tier selection & fallback --------------------------------------------

TEST(JitTierSelect, ParseAcceptsJit) {
    EXPECT_EQ(parse_exec_tier("jit"), ExecTier::kJit);
    EXPECT_THROW(parse_exec_tier("JIT"), std::runtime_error);
    EXPECT_THROW(parse_exec_tier("native"), std::runtime_error);
}

TEST(JitTierSelect, EffectiveTierFallsBackToThreadedWithoutNativeSupport) {
    EXPECT_EQ(effective_tier(ExecTier::kJit, true), ExecTier::kJit);
    EXPECT_EQ(effective_tier(ExecTier::kJit, false), ExecTier::kThreaded);
    EXPECT_EQ(effective_tier(ExecTier::kThreaded, false), ExecTier::kThreaded);
    EXPECT_EQ(effective_tier(ExecTier::kInterpreter, false), ExecTier::kInterpreter);
    EXPECT_EQ(effective_tier(ExecTier::kInterpreter, true), ExecTier::kInterpreter);
}

TEST(JitTierSelect, CompileThrowsOnUnsupportedBuilds) {
    if (JitProgram::supported()) GTEST_SKIP() << "native tier available here";
    EXPECT_THROW(JitProgram::compile(DecodedProgram{}), std::runtime_error);
}

// ---- program cache ---------------------------------------------------------

Program unique_program(std::uint32_t tag) {
    return {stmt(BPF_LD | BPF_IMM, 0xCAFE0000u + tag), stmt(BPF_RET | BPF_A, 0)};
}

TEST(JitProgramCache, HitMissAndCompileCountsAreWinnerOnly) {
    const Program prog = unique_program(101);
    const CacheStats before = cache_stats();

    const CachedFilter first = cache_filter(prog, false);
    ASSERT_NE(first.decoded, nullptr);
    EXPECT_EQ(first.jit, nullptr);
    EXPECT_GT(first.decoded->id, 0u);

    const CachedFilter second = cache_filter(prog, false);
    EXPECT_EQ(second.decoded.get(), first.decoded.get());

    CacheStats after = cache_stats();
    EXPECT_EQ(after.lookups - before.lookups, 2u);
    EXPECT_EQ(after.misses - before.misses, 1u);
    EXPECT_EQ(after.hits - before.hits, 1u);
    EXPECT_EQ(after.jit_compiles - before.jit_compiles, 0u);

    if (!JitProgram::supported()) return;
    // A later jit-tier install upgrades the same entry: compiled once,
    // shared afterwards, same program id.
    const CachedFilter jit1 = cache_filter(prog, true);
    ASSERT_NE(jit1.jit, nullptr);
    EXPECT_EQ(jit1.decoded.get(), first.decoded.get());
    const CachedFilter jit2 = cache_filter(prog, true);
    EXPECT_EQ(jit2.jit.get(), jit1.jit.get());

    after = cache_stats();
    EXPECT_EQ(after.lookups - before.lookups, 4u);
    EXPECT_EQ(after.misses - before.misses, 1u);  // still the one decode
    EXPECT_EQ(after.hits - before.hits, 3u);
    EXPECT_EQ(after.jit_compiles - before.jit_compiles, 1u);

    const VmResult r = jit1.jit->run({}, 0);
    EXPECT_EQ(r.accept_len, 0xCAFE0065u);
}

TEST(JitProgramCache, JitRequestOnFreshProgramCompilesWithTheMiss) {
    if (!JitProgram::supported()) GTEST_SKIP() << "no native tier on this build";
    const Program prog = unique_program(202);
    const CacheStats before = cache_stats();
    const CachedFilter cached = cache_filter(prog, true);
    ASSERT_NE(cached.jit, nullptr);
    ASSERT_NE(cached.decoded, nullptr);
    const CacheStats after = cache_stats();
    EXPECT_EQ(after.misses - before.misses, 1u);
    EXPECT_EQ(after.jit_compiles - before.jit_compiles, 1u);
    EXPECT_EQ(after.hits - before.hits, 0u);
}

}  // namespace
}  // namespace capbench::bpf
