// Tests for the Section 7.2 future-work extensions: 10-Gigabit links,
// round-robin load distribution, the FreeBSD zero-copy BPF ring, and the
// receive-livelock ablation knob.
#include <gtest/gtest.h>

#include "capbench/harness/experiment.hpp"
#include "capbench/harness/measurement.hpp"
#include "capbench/net/link.hpp"
#include "capbench/net/wire.hpp"

namespace capbench {
namespace {

using namespace harness;

TEST(TenGigabit, WireTimeScales) {
    EXPECT_EQ(net::wire_time_at(1514, 1.0).ns(), net::wire_time(1514).ns());
    EXPECT_EQ(net::wire_time_at(1514, 10.0).ns(), net::wire_time(1514).ns() / 10);
}

TEST(TenGigabit, LinkDeliversTenTimesFaster) {
    sim::Simulator sim;
    net::Link link{sim, 10.0};
    struct Sink : net::FrameSink {
        int frames = 0;
        void on_frame(const net::PacketPtr&) override { ++frames; }
    } sink;
    link.attach(sink);
    link.transmit(std::make_shared<net::Packet>(1, 1514, sim.now()));
    sim.run();
    EXPECT_EQ(sim.now().ns(), net::wire_time(1514).ns() / 10);
    EXPECT_EQ(sink.frames, 1);
}

TEST(TenGigabit, GeneratorReachesMultiGigabitRates) {
    RunConfig cfg;
    cfg.packets = 30'000;
    cfg.rate_mbps = 4'000.0;
    cfg.link_gbps = 10.0;
    const auto r = run_once({standard_sut("moorhen")}, cfg);
    EXPECT_GT(r.offered_mbps, 3'500.0);
    // One 2005 sniffer cannot capture 4 Gbit/s of this workload.
    EXPECT_LT(r.suts[0].capture_avg_pct, 70.0);
}

TEST(RoundRobinSplitter, DealsFramesOneByOne) {
    net::RoundRobinSplitter rr;
    struct Sink : net::FrameSink {
        std::vector<std::uint64_t> ids;
        void on_frame(const net::PacketPtr& p) override { ids.push_back(p->id()); }
    } a, b, c;
    rr.attach(a);
    rr.attach(b);
    rr.attach(c);
    for (std::uint64_t i = 0; i < 7; ++i)
        rr.on_frame(std::make_shared<net::Packet>(i, 100, sim::SimTime{}));
    EXPECT_EQ(a.ids, (std::vector<std::uint64_t>{0, 3, 6}));
    EXPECT_EQ(b.ids, (std::vector<std::uint64_t>{1, 4}));
    EXPECT_EQ(c.ids, (std::vector<std::uint64_t>{2, 5}));
    // No sinks attached: frames are silently dropped, no crash.
    net::RoundRobinSplitter empty;
    EXPECT_NO_THROW(empty.on_frame(std::make_shared<net::Packet>(9, 100, sim::SimTime{})));
}

TEST(Distribution, FourSniffersBeatOneOnTenGig) {
    RunConfig cfg;
    cfg.packets = 60'000;
    cfg.rate_mbps = 3'000.0;
    cfg.link_gbps = 10.0;

    const auto alone = run_once({standard_sut("moorhen")}, cfg);

    std::vector<SutConfig> fleet;
    for (int i = 0; i < 4; ++i) {
        auto sut = standard_sut("moorhen");
        sut.name = "m" + std::to_string(i);
        fleet.push_back(std::move(sut));
    }
    RunConfig dist_cfg = cfg;
    dist_cfg.distribute_round_robin = true;
    const auto spread = run_once(fleet, dist_cfg);
    double aggregate = 0.0;
    for (const auto& s : spread.suts) aggregate += s.capture_avg_pct;

    EXPECT_GT(aggregate, alone.suts[0].capture_avg_pct + 25.0);
    EXPECT_GT(aggregate, 95.0);
    // The distributor deals evenly: each sniffer sees ~25 %.
    for (const auto& s : spread.suts) {
        EXPECT_GT(s.capture_avg_pct, 15.0) << s.name;
        EXPECT_LE(s.capture_avg_pct, 26.0) << s.name;
    }
}

TEST(ZeroCopyBpf, FreeBsdOnlyAndReducesCpu) {
    auto stock = standard_sut("flamingo");
    stock.buffer_bytes = 10ull << 20;
    auto zc = stock;
    zc.name = "flamingo-zc";
    zc.stack = StackKind::kZeroCopyBpf;

    RunConfig cfg;
    cfg.packets = 60'000;
    cfg.rate_mbps = 700.0;
    const auto r = run_once({stock, zc}, cfg);
    const auto& plain = r.suts[0];
    const auto& ring = r.suts[1];
    EXPECT_GE(ring.capture_avg_pct + 1.0, plain.capture_avg_pct);
    EXPECT_LT(ring.cpu_pct, plain.cpu_pct);

    // Wrong OS families are rejected.
    auto on_linux = standard_sut("swan");
    on_linux.stack = StackKind::kZeroCopyBpf;
    EXPECT_THROW(run_once({on_linux}, cfg), std::invalid_argument);
}

TEST(LivelockAblation, ModerationPreventsCollapse) {
    auto normal = standard_sut("moorhen");
    normal.buffer_bytes = 10ull << 20;
    normal.cores = 1;
    auto livelock = normal;
    livelock.name = "moorhen-noNAPI";
    livelock.nic.interrupt_moderation = false;

    RunConfig cfg;
    cfg.packets = 80'000;
    cfg.rate_mbps = 850.0;
    const auto r = run_once({normal, livelock}, cfg);
    EXPECT_GT(r.suts[0].capture_avg_pct, 95.0);
    EXPECT_LT(r.suts[1].capture_avg_pct, r.suts[0].capture_avg_pct - 15.0);
}

TEST(LivelockAblation, NoEffectAtLowRates) {
    auto livelock = standard_sut("moorhen");
    livelock.nic.interrupt_moderation = false;
    livelock.cores = 1;
    RunConfig cfg;
    cfg.packets = 20'000;
    cfg.rate_mbps = 150.0;
    const auto r = run_once({livelock}, cfg);
    EXPECT_GT(r.suts[0].capture_avg_pct, 99.0);
}

}  // namespace
}  // namespace capbench
