// Tests for the scenario registry, the runner and the JSON results
// schema: a golden --list snapshot pins ids/captions to the thesis
// figure numbering, runner output is bit-identical across job counts,
// and every emitted document round-trips through the strict parser.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "capbench/report/writer.hpp"
#include "capbench/scenario/runner.hpp"

namespace capbench::scenario {
namespace {

using report::JsonValue;
using report::JsonWriter;

/// The golden snapshot: every registered scenario in presentation order.
/// If you add, rename or re-caption a figure, update this table *and*
/// check the id against the thesis numbering.
const std::vector<std::pair<std::string, std::string>> kGoldenList = {
    {"fig_4_1",
     "Packet size distribution of the (synthetic) 24h MWN trace; most frequent sizes at "
     "40, 52 and 1500 bytes"},
    {"fig_4_2", "Relative frequency of the top 20 packet sizes and their cumulative share"},
    {"fig_4_4",
     "Maximum achievable data rate [Mbit/s] of the enhanced pktgen by NIC and packet size "
     "(no inter-packet gap)"},
    {"fig_6_2", "default buffers, 1 app, no filter, no load"},
    {"fig_6_3", "increased buffers, 1 app, no filter, no load"},
    {"fig_6_4",
     "capture rate vs. buffer size at maximum data rate (buffer halved for FreeBSD's "
     "double buffer)"},
    {"fig_6_6", "50-instruction BPF filter, increased buffers"},
    {"fig_6_7", "2 capturing applications, SMP, increased buffers"},
    {"fig_6_8", "4 capturing applications, SMP, increased buffers"},
    {"fig_6_9", "8 capturing applications, SMP, increased buffers"},
    {"fig_6_10", "50 packet copies per packet, increased buffers"},
    {"fig_6_11", "zlib-level-3 compression per packet"},
    {"fig_6_12", "pipe whole packets to gzip -3, SMP"},
    {"fig_6_13", "maximum disk write speed and CPU usage per system (bonnie++)"},
    {"fig_6_14", "write first 76 bytes of every packet to disk"},
    {"fig_6_15", "mmap libpcap vs. stock, Linux systems"},
    {"fig_6_16", "Hyperthreading on/off, Intel systems, SMP"},
    {"fig_b_1", "FreeBSD 5.4 vs. 5.2.1, SMP, increased buffers"},
    {"fig_b_2", "25 packet copies per packet, increased buffers"},
    {"fig_b_3", "zlib-level-9 compression per packet, SMP"},
    {"ext_10gbe", "capture rate on a 10-Gigabit link (future work, Section 7.2)"},
    {"ext_distributed",
     "aggregate capture on a 10-Gigabit link: one sniffer vs. four behind a round-robin "
     "distributor (future work, Section 7.2)"},
    {"ext_zerocopy_bpf", "zero-copy (mmap) BPF vs. stock double buffer, FreeBSD"},
    {"ext_multiqueue",
     "multi-queue RSS receive: capture rate vs. queue/core count at overload (future "
     "work, Section 7.2)"},
    {"ext_filter_tiers",
     "BPF execution tiers: interpreter vs. token-threaded vs. native jit, fig-6.5-style "
     "filter cost sweep (host time)"},
    {"ext_disk_writer",
     "capture-to-disk writer pipeline: bring-ring hand-off vs. inline write, 76-byte "
     "header trace (ring depth x spill policy)"},
    {"ext_overload_pulse",
     "square-wave overload pulses: periodic 10x bursts over a steady base rate "
     "(interval-telemetry workload)"},
    {"ablation_livelock",
     "interrupt moderation on vs. off (one interrupt per packet), single CPU"},
};

TEST(Registry, GoldenListSnapshot) {
    std::size_t width = 0;
    for (const auto& [id, unused] : kGoldenList) width = std::max(width, id.size());
    std::string expected;
    for (const auto& [id, caption] : kGoldenList) {
        expected += id;
        expected.append(width + 2 - id.size(), ' ');
        expected += caption;
        expected += '\n';
    }
    EXPECT_EQ(list_text(), expected);
}

TEST(Registry, IdsAreUniqueAndFindable) {
    std::set<std::string> seen;
    for (const auto& s : registry()) {
        EXPECT_TRUE(seen.insert(s.id).second) << "duplicate id " << s.id;
        EXPECT_EQ(find_scenario(s.id), &s);
    }
    EXPECT_EQ(find_scenario("fig_9_9"), nullptr);
}

TEST(Registry, EveryScenarioIsWellFormed) {
    for (const auto& s : registry()) {
        SCOPED_TRACE(s.id);
        EXPECT_FALSE(s.caption.empty());
        if (s.is_custom()) {
            EXPECT_TRUE(s.variants.empty());
            EXPECT_FALSE(s.multi_app);
            continue;
        }
        ASSERT_FALSE(s.variants.empty());
        EXPECT_FALSE(s.sweep.empty());
        for (const auto& v : s.variants) {
            ASSERT_TRUE(static_cast<bool>(v.suts));
            EXPECT_FALSE(v.suts().empty());
        }
    }
}

TEST(Registry, BothModeFiguresExposeSingleAndDualVariants) {
    const Scenario* s = find_scenario("fig_6_2");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->variants.size(), 2u);
    EXPECT_EQ(s->variants[0].suffix, "(a)");
    EXPECT_EQ(s->variants[1].suffix, "(b)");
    for (const auto& sut : s->variants[0].suts()) EXPECT_EQ(sut.cores, 1);
    for (const auto& sut : s->variants[1].suts()) EXPECT_EQ(sut.cores, 2);
}

RunOptions tiny_options(int jobs) {
    RunOptions opts;
    opts.jobs = jobs;
    opts.packets = 2'000;
    opts.reps = 1;
    opts.gnuplot_env_fallback = false;  // keep tests hermetic
    return opts;
}

/// A shrunk copy of a registered sweep scenario (2 points).
Scenario shrunk(const std::string& id) {
    const Scenario* s = find_scenario(id);
    EXPECT_NE(s, nullptr);
    Scenario copy = *s;
    copy.sweep = {copy.sweep.front(), copy.sweep.back()};
    return copy;
}

TEST(Runner, ResultsAreBitIdenticalAcrossJobCounts) {
    const Scenario scenario = shrunk("fig_6_7");
    const ScenarioResult serial = run_scenario(scenario, tiny_options(1));
    const ScenarioResult parallel = run_scenario(scenario, tiny_options(4));
    // Everything except the jobs metadata must match byte for byte —
    // compare the serialized variants subtree.
    const std::string a = dump_json(JsonWriter::document(serial).at("variants"));
    const std::string b = dump_json(JsonWriter::document(parallel).at("variants"));
    EXPECT_EQ(a, b);
    EXPECT_EQ(serial.jobs, 1);
    EXPECT_EQ(parallel.jobs, 4);
}

TEST(Runner, BufferAxisScenarioRunsAndExportsGnuplot) {
    Scenario scenario = shrunk("fig_6_4");
    const std::string dir = testing::TempDir() + "capbench_fig_6_4";
    std::filesystem::create_directories(dir);
    RunOptions opts = tiny_options(2);
    opts.gnuplot_dir = dir;
    std::ostringstream text;
    opts.out = &text;
    const ScenarioResult result = run_scenario(scenario, opts);

    EXPECT_EQ(result.x_label, "buffer kB");
    ASSERT_EQ(result.variants.size(), 2u);
    EXPECT_EQ(result.variants[0].points.size(), 2u);
    EXPECT_NE(text.str().find("=== fig_6_4(a) ==="), std::string::npos);
    EXPECT_NE(text.str().find("buffer kB"), std::string::npos);

    // Satellite: figures that used to bypass run_rate_figure now flow
    // through the shared gnuplot path too.
    std::ifstream data{dir + "/fig_6_4(a).dat"};
    ASSERT_TRUE(data.good());
    std::string header;
    std::getline(data, header);
    EXPECT_EQ(header.rfind("# x ", 0), 0u) << header;
    std::ifstream script{dir + "/fig_6_4(b).gp"};
    ASSERT_TRUE(script.good());
    std::stringstream gp;
    gp << script.rdbuf();
    EXPECT_NE(gp.str().find("Buffer size [kB]"), std::string::npos);
}

TEST(Runner, SweepDocumentMatchesSchemaAndRoundTrips) {
    const ScenarioResult result = run_scenario(shrunk("fig_6_7"), tiny_options(2));
    const JsonValue doc = JsonWriter::document(result);

    EXPECT_EQ(doc.at("schema").as_string(), JsonWriter::kSchema);
    EXPECT_EQ(doc.at("id").as_string(), "fig_6_7");
    EXPECT_FALSE(doc.at("caption").as_string().empty());
    EXPECT_EQ(doc.at("x_label").as_string(), "Mbit/s");
    EXPECT_TRUE(doc.at("multi_app").as_bool());
    EXPECT_EQ(doc.at("config").at("packets").as_int(), 2'000);
    EXPECT_EQ(doc.at("config").at("reps").as_int(), 1);
    EXPECT_EQ(doc.at("config").at("base_seed").as_int(), 1);
    EXPECT_EQ(doc.at("config").at("jobs").as_int(), 2);

    const auto& variants = doc.at("variants").as_array();
    ASSERT_EQ(variants.size(), 1u);
    const auto& points = variants[0].at("points").as_array();
    ASSERT_EQ(points.size(), 2u);
    for (const auto& point : points) {
        EXPECT_GT(point.at("generated").as_int(), 0);
        EXPECT_GT(point.at("offered_mbps").as_double(), 0.0);
        const auto& suts = point.at("suts").as_array();
        ASSERT_EQ(suts.size(), 4u);  // the Figure 2.4 roster
        for (const auto& sut : suts) {
            EXPECT_FALSE(sut.at("name").as_string().empty());
            EXPECT_EQ(sut.at("per_app_capture_pct").as_array().size(), 2u);  // 2 apps
            EXPECT_GE(sut.at("capture_worst_pct").as_double(), 0.0);
            EXPECT_LE(sut.at("capture_best_pct").as_double(), 100.0);
            EXPECT_GE(sut.at("cpu_pct").as_double(), 0.0);
            EXPECT_GE(sut.at("nic_ring_drops").as_int(), 0);
            EXPECT_GE(sut.at("backlog_drops").as_int(), 0);
            EXPECT_GE(sut.at("buffer_drops").as_int(), 0);
        }
    }

    // Round trip: serialize -> strict parse -> identical value.
    const JsonValue reparsed = report::parse_json(JsonWriter::serialize(doc));
    EXPECT_EQ(reparsed, doc);
}

TEST(Runner, CustomScenarioDocumentMatchesSchema) {
    const Scenario* s = find_scenario("fig_4_1");
    ASSERT_NE(s, nullptr);
    RunOptions opts = tiny_options(1);
    const ScenarioResult result = run_scenario(*s, opts);
    const JsonValue doc = JsonWriter::document(result);

    EXPECT_EQ(doc.at("schema").as_string(), JsonWriter::kSchema);
    EXPECT_EQ(doc.find("variants"), nullptr);
    const auto& tables = doc.at("tables").as_array();
    ASSERT_EQ(tables.size(), 2u);  // size bins + dominant peaks
    for (const auto& table : tables) {
        const auto& headers = table.at("headers").as_array();
        EXPECT_FALSE(headers.empty());
        for (const auto& row : table.at("rows").as_array())
            EXPECT_EQ(row.as_array().size(), headers.size());
    }
    EXPECT_NE(doc.at("notes").as_string().find("mean packet size"), std::string::npos);
    EXPECT_EQ(report::parse_json(JsonWriter::serialize(doc)), doc);
}

TEST(Runner, SuiteDocumentWrapsScenarioDocuments) {
    const ScenarioResult result = run_scenario(shrunk("ext_distributed"), tiny_options(2));
    const JsonValue suite =
        JsonWriter::suite({JsonWriter::document(result)});
    EXPECT_EQ(suite.at("schema").as_string(), JsonWriter::kSuiteSchema);
    const auto& results = suite.at("results").as_array();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].at("id").as_string(), "ext_distributed");
    // ext_distributed carries its two rosters as named variants.
    ASSERT_EQ(results[0].at("variants").as_array().size(), 2u);
    EXPECT_EQ(results[0].at("variants").as_array()[1].at("points").as_array()[0]
                  .at("suts").as_array().size(),
              4u);
}

}  // namespace
}  // namespace capbench::scenario
