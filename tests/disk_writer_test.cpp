// Tests for the capture-to-disk writer pipeline: the bring ring, spill
// policies, the writer thread's disk accounting, byte-identity of the pcap
// output against the inline writer, and the drop identity at harness level.
#include <gtest/gtest.h>

#include <sstream>

#include "capbench/capture/os.hpp"
#include "capbench/harness/measurement.hpp"
#include "capbench/load/disk_writer.hpp"
#include "capbench/net/arena.hpp"
#include "capbench/pcap/file.hpp"

namespace capbench::load {
namespace {

using hostsim::ArchSpec;
using hostsim::Machine;
using hostsim::MachineSpec;

RecordRef make_record(net::PacketArena& arena, std::uint64_t id, std::uint32_t len,
                      std::int64_t ts_ns) {
    auto pkt = arena.make_full(id, len, sim::SimTime{});
    auto bytes = pkt->mutable_bytes();
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<std::byte>((id + i) % 256);
    return RecordRef{pkt, len, len, sim::SimTime{ts_ns}};
}

TEST(BringRing, PushPopWrapsAround) {
    BringRing ring{3};
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.slots(), 3u);
    auto arena = net::PacketArena::create();
    std::uint64_t next_id = 1;
    // Cycle more records through than the ring holds: FIFO order must
    // survive the wraparound.
    std::uint64_t expect_pop = 1;
    for (int round = 0; round < 4; ++round) {
        while (!ring.full())
            ring.push(make_record(*arena, next_id++, 64, 0));
        ring.pop();  // free one slot
        ++expect_pop;
        ring.push(make_record(*arena, next_id++, 64, 0));
        EXPECT_TRUE(ring.full());
        EXPECT_EQ(ring.pop().packet->id(), expect_pop);
        ++expect_pop;
    }
    while (!ring.empty()) ring.pop();
    EXPECT_EQ(ring.size(), 0u);
}

TEST(BringRing, RejectsZeroSlots) {
    EXPECT_THROW(BringRing{0}, std::invalid_argument);
}

struct Fixture {
    sim::Simulator sim;
    Machine machine{sim, MachineSpec{ArchSpec::amd_opteron(), 2, false}, {}};
    DiskModel disk{machine, DiskSpec{80.0, 1.0, 8 << 20}};
};

class Dummy : public hostsim::Thread {
public:
    Dummy() : hostsim::Thread("dummy") {}
    void main() override {}
};

TEST(SpillPolicy, DropNewestKeepsTheOldestRecords) {
    Fixture f;
    DiskWriterConfig cfg{true, 2, SpillPolicy::kDropNewest};
    // Not spawned: the ring fills without the writer draining it.
    DiskWriterThread writer{"wr", capture::OsSpec::freebsd_5_4(), f.disk, cfg};
    Dummy producer;
    auto arena = net::PacketArena::create();
    for (std::uint64_t id = 1; id <= 4; ++id) {
        RecordRef rec = make_record(*arena, id, 100, 0);
        EXPECT_TRUE(writer.offer(rec, producer));
    }
    EXPECT_EQ(writer.enqueued(), 2u);
    EXPECT_EQ(writer.spilled(), 2u);
    EXPECT_EQ(writer.ring_occupancy(), 2u);
}

TEST(SpillPolicy, DropOldestEvictsTheHead) {
    Fixture f;
    DiskWriterConfig cfg{true, 2, SpillPolicy::kDropOldest};
    DiskWriterThread writer{"wr", capture::OsSpec::freebsd_5_4(), f.disk, cfg};
    Dummy producer;
    auto arena = net::PacketArena::create();
    for (std::uint64_t id = 1; id <= 4; ++id) {
        RecordRef rec = make_record(*arena, id, 100, 0);
        EXPECT_TRUE(writer.offer(rec, producer));
    }
    // Records 1 and 2 were evicted to make room for 3 and 4.
    EXPECT_EQ(writer.spilled(), 2u);
    EXPECT_EQ(writer.enqueued(), 4u);  // every record entered the ring
    EXPECT_EQ(writer.ring_occupancy(), 2u);
}

TEST(SpillPolicy, BlockRefusesAndLeavesTheRecordIntact) {
    Fixture f;
    DiskWriterConfig cfg{true, 1, SpillPolicy::kBlock};
    DiskWriterThread writer{"wr", capture::OsSpec::freebsd_5_4(), f.disk, cfg};
    Dummy producer;
    auto arena = net::PacketArena::create();
    RecordRef first = make_record(*arena, 1, 100, 0);
    EXPECT_TRUE(writer.offer(first, producer));
    RecordRef second = make_record(*arena, 2, 100, 0);
    EXPECT_FALSE(writer.offer(second, producer));
    // The refused record must survive for the retry after wakeup.
    ASSERT_TRUE(second.packet != nullptr);
    EXPECT_EQ(second.packet->id(), 2u);
    EXPECT_EQ(writer.spilled(), 0u);
}

/// Offers a fixed record list through the ring, blocking on back-pressure
/// like CaptureApp::push_records does.
class Producer final : public hostsim::Thread {
public:
    Producer(DiskWriterThread& writer, std::vector<RecordRef> records)
        : hostsim::Thread("producer"), writer_(&writer), records_(std::move(records)) {}

    void main() override { push(0); }

    bool done = false;

private:
    void push(std::size_t i) {
        for (; i < records_.size(); ++i) {
            if (!writer_->offer(records_[i], *this)) {
                block([this, i] { push(i); });
                return;
            }
        }
        done = true;
    }

    DiskWriterThread* writer_;
    std::vector<RecordRef> records_;
};

TEST(DiskWriterThread, RingOutputIsByteIdenticalToInlineWriter) {
    // The same records written inline and through a 4-slot blocking ring
    // (which forces back-pressure and producer wakeups) must produce
    // byte-identical pcap files, in the same order.
    auto arena = net::PacketArena::create();
    std::vector<RecordRef> records;
    for (std::uint64_t id = 1; id <= 100; ++id) {
        const std::uint32_t len = 60 + static_cast<std::uint32_t>(id * 37 % 1400);
        records.push_back(make_record(*arena, id, len, static_cast<std::int64_t>(id) * 12'345));
    }
    // A couple of synthetic packets exercise the zero-pad path.
    auto synth = arena->make_synthetic(101, 300, sim::SimTime{});
    records.push_back(RecordRef{synth, 76, 76, sim::SimTime{999'000}});

    std::stringstream inline_out;
    pcap::FileWriter inline_writer{inline_out, 1515};
    for (const RecordRef& rec : records)
        inline_writer.write(*rec.packet, rec.caplen, rec.timestamp);

    Fixture f;
    std::stringstream ring_out;
    pcap::FileWriter ring_writer{ring_out, 1515};
    DiskWriterConfig cfg{true, 4, SpillPolicy::kBlock};
    auto writer = std::make_shared<DiskWriterThread>(
        "wr", capture::OsSpec::freebsd_5_4(), f.disk, cfg);
    writer->set_sink(&ring_writer);
    auto producer = std::make_shared<Producer>(*writer, std::move(records));
    f.machine.spawn(writer);
    f.machine.spawn(producer);
    f.sim.run();

    EXPECT_TRUE(producer->done);
    EXPECT_EQ(writer->spilled(), 0u);
    EXPECT_EQ(writer->records_written(), 101u);
    EXPECT_EQ(ring_out.str(), inline_out.str());
}

TEST(DiskWriterThread, ChargesDiskOffTheProducerAndBlocksOnBackpressure) {
    Fixture f;
    // A tiny write-back queue forces the writer into DiskModel waits.
    DiskModel slow{f.machine, DiskSpec{1.0, 1.0, 4096}};
    auto arena = net::PacketArena::create();
    std::vector<RecordRef> records;
    std::uint64_t total_bytes = 0;
    for (std::uint64_t id = 1; id <= 64; ++id) {
        records.push_back(make_record(*arena, id, 512, 0));
        total_bytes += 512;
    }
    DiskWriterConfig cfg{true, 8, SpillPolicy::kBlock};
    auto writer = std::make_shared<DiskWriterThread>(
        "wr", capture::OsSpec::freebsd_5_4(), slow, cfg);
    auto producer = std::make_shared<Producer>(*writer, std::move(records));
    f.machine.spawn(writer);
    f.machine.spawn(producer);
    f.sim.run();
    EXPECT_TRUE(producer->done);
    EXPECT_EQ(writer->records_written(), 64u);
    EXPECT_EQ(writer->bytes_written(), total_bytes);
    // All bytes reached the disk model, off the producer thread.
    EXPECT_EQ(slow.bytes_written() + slow.queued(), total_bytes);
    EXPECT_GT(f.machine.total_busy().ns(), 0);
}

// ---- harness level -------------------------------------------------------

harness::RunConfig pipeline_run(double rate) {
    harness::RunConfig cfg;
    cfg.packets = 5'000;
    cfg.rate_mbps = rate;
    cfg.collect_metrics = true;
    return cfg;
}

harness::SutConfig pipeline_sut(std::size_t ring_slots, SpillPolicy spill) {
    auto sut = harness::standard_sut("moorhen");
    sut.buffer_bytes = 10ull << 20;
    sut.app_load.disk_bytes_per_packet = 76;
    sut.disk_writer.enabled = true;
    sut.disk_writer.ring_slots = ring_slots;
    sut.disk_writer.spill = spill;
    return sut;
}

TEST(DiskWriterPipeline, DropIdentityStaysExactWithSpills) {
    // Overload with a tiny ring and a drop policy: whatever spills must
    // land in the disk_spill bucket and the closed per-app identity
    // delivered + Σdrops == generated must still hold exactly.
    for (const SpillPolicy spill : {SpillPolicy::kDropNewest, SpillPolicy::kDropOldest}) {
        const auto result = harness::run_once({pipeline_sut(4, spill)}, pipeline_run(900.0));
        ASSERT_TRUE(result.metrics.enabled);
        const auto& app = result.metrics.suts[0].apps[0];
        EXPECT_EQ(app.delivered + app.drops_total(), result.metrics.generated)
            << to_string(spill);
        EXPECT_GT(app.delivered, 0u);
    }
}

TEST(DiskWriterPipeline, BlockPolicySpillsNothing) {
    const auto result =
        harness::run_once({pipeline_sut(256, SpillPolicy::kBlock)}, pipeline_run(300.0));
    ASSERT_TRUE(result.metrics.enabled);
    const auto& app = result.metrics.suts[0].apps[0];
    EXPECT_EQ(app.drop_disk_spill, 0u);
    EXPECT_EQ(app.delivered + app.drops_total(), result.metrics.generated);
    EXPECT_GT(app.delivered, 0u);
}

TEST(DiskWriterPipeline, DisabledPipelineIgnoresRingConfig) {
    // With the pipeline off the run must be the classic inline-writer
    // model regardless of ring/spill settings (this is what keeps the
    // committed goldens byte-identical): identical event counts and
    // capture rates whatever the dormant config says.
    auto plain = pipeline_sut(256, SpillPolicy::kBlock);
    plain.disk_writer = DiskWriterConfig{};  // defaults, disabled
    auto odd = pipeline_sut(7, SpillPolicy::kDropOldest);
    odd.disk_writer.enabled = false;
    const auto a = harness::run_once({plain}, pipeline_run(400.0));
    const auto b = harness::run_once({odd}, pipeline_run(400.0));
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.events_executed, b.events_executed);
    ASSERT_EQ(a.suts.size(), b.suts.size());
    EXPECT_DOUBLE_EQ(a.suts[0].capture_avg_pct, b.suts[0].capture_avg_pct);
    const auto& app = a.metrics.suts[0].apps[0];
    EXPECT_EQ(app.drop_disk_spill, 0u);
}

}  // namespace
}  // namespace capbench::load
