// Stress tests for the slab-backed event queue: slot reuse under heavy
// cancellation (the ABA hazard generation stamps exist to prevent),
// clear() semantics, and the live-only size accounting.  Every test runs
// against both priority backends (4-ary heap and hierarchical timing
// wheel); they must pop the identical (time, seq) total order.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "capbench/sim/event_queue.hpp"
#include "capbench/sim/random.hpp"

namespace sim = capbench::sim;

namespace {

sim::SimTime at(std::int64_t ns) { return sim::SimTime{} + sim::Duration{ns}; }

class EventQueueStress : public ::testing::TestWithParam<sim::EventQueueBackend> {
protected:
    [[nodiscard]] bool heap_backend() const {
        return GetParam() == sim::EventQueueBackend::kHeap;
    }
};

INSTANTIATE_TEST_SUITE_P(Backends, EventQueueStress,
                         ::testing::Values(sim::EventQueueBackend::kHeap,
                                           sim::EventQueueBackend::kWheel),
                         [](const auto& info) { return std::string(sim::to_string(info.param)); });

TEST_P(EventQueueStress, RandomCancelReplayMatchesReferenceModel) {
    // Drive the slab queue and a reference model (multimap of live events
    // ordered by the same (time, push-seq) key) with one random
    // push/cancel/pop mix; every pop must execute exactly the reference
    // model's minimum.  The interleaved cancels and drains force heavy
    // slot reuse while stale handles are still alive — the ABA scenario
    // the generation stamps exist for.
    sim::Rng rng(20260806);
    sim::EventQueue q{GetParam()};
    std::uint64_t last_fired = 0;
    bool fired_flag = false;

    using Key = std::pair<std::int64_t, std::uint64_t>;  // (time, seq)
    std::multimap<Key, std::uint64_t> reference;         // -> id
    std::vector<std::pair<sim::EventHandle, Key>> pending;
    std::uint64_t next_id = 0;
    std::uint64_t ref_seq = 0;

    const auto push_one = [&](std::int64_t t) {
        const std::uint64_t id = next_id++;
        auto handle = q.push(at(t), [&last_fired, &fired_flag, id] {
            last_fired = id;
            fired_flag = true;
        });
        const Key key{t, ref_seq++};
        reference.emplace(key, id);
        pending.emplace_back(handle, key);
    };

    const auto cancel_random = [&] {
        if (pending.empty()) return;
        const std::size_t pick = static_cast<std::size_t>(rng.next_below(pending.size()));
        auto [handle, key] = pending[pick];
        if (handle.pending()) {
            handle.cancel();
            reference.erase(key);
        }
        EXPECT_FALSE(handle.pending());
        handle.cancel();  // double-cancel via a now-stale handle: no-op
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
    };

    const auto pop_and_check = [&] {
        ASSERT_FALSE(reference.empty());
        fired_flag = false;
        q.pop_and_run();
        ASSERT_TRUE(fired_flag) << "pop executed nothing";
        EXPECT_EQ(last_fired, reference.begin()->second)
            << "queue violated the (time, seq) total order";
        reference.erase(reference.begin());
    };

    for (int round = 0; round < 400; ++round) {
        const int pushes = 1 + static_cast<int>(rng.next_below(8));
        for (int i = 0; i < pushes; ++i)
            push_one(static_cast<std::int64_t>(rng.next_below(50)));
        const int cancels = static_cast<int>(rng.next_below(6));
        for (int i = 0; i < cancels; ++i) cancel_random();
        const int pops = static_cast<int>(rng.next_below(5));
        for (int i = 0; i < pops && !q.empty(); ++i) pop_and_check();
        EXPECT_EQ(q.size(), reference.size());
    }
    while (!q.empty()) pop_and_check();

    EXPECT_TRUE(reference.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.stats().pushed, next_id);
    EXPECT_EQ(q.stats().pushed, q.stats().executed + q.stats().cancelled);
}

TEST_P(EventQueueStress, StaleHandleCannotCancelSlotReuse) {
    // The ABA scenario: a handle to a consumed event must not affect a new
    // event that happens to land in the same slot.
    sim::EventQueue q{GetParam()};
    int first_fired = 0;
    int second_fired = 0;
    auto stale = q.push(at(1), [&first_fired] { ++first_fired; });
    q.pop_and_run();
    EXPECT_EQ(first_fired, 1);
    EXPECT_EQ(q.slot_count(), 1u);

    // Same slot, new generation.
    auto fresh = q.push(at(2), [&second_fired] { ++second_fired; });
    EXPECT_EQ(q.slot_count(), 1u) << "slot was not reused";
    EXPECT_FALSE(stale.pending());
    stale.cancel();  // must not touch the new occupant
    EXPECT_TRUE(fresh.pending());
    q.pop_and_run();
    EXPECT_EQ(second_fired, 1);
}

TEST_P(EventQueueStress, SizeCountsLiveEventsOnly) {
    sim::EventQueue q{GetParam()};
    auto a = q.push(at(1), [] {});
    auto b = q.push(at(2), [] {});
    auto c = q.push(at(3), [] {});
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.cancelled_backlog(), 0u);

    // The heap cancels lazily (tombstones surface later); the wheel
    // unlinks eagerly and never builds a backlog.
    b.cancel();
    EXPECT_EQ(q.size(), 2u) << "cancelled events must not count as live";
    EXPECT_EQ(q.cancelled_backlog(), heap_backend() ? 1u : 0u);
    EXPECT_FALSE(q.empty());

    a.cancel();
    c.cancel();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_TRUE(q.empty()) << "a queue holding only tombstones is empty";
    EXPECT_EQ(q.cancelled_backlog(), heap_backend() ? 3u : 0u);
}

TEST_P(EventQueueStress, CancelAfterClearIsInert) {
    sim::EventQueue q{GetParam()};
    int fired = 0;
    auto before = q.push(at(5), [&fired] { ++fired; });
    auto also_before = q.push(at(6), [&fired] { ++fired; });
    also_before.cancel();
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.cancelled_backlog(), 0u);

    // New events may land in the very slots the old handles reference.
    int after_fired = 0;
    auto after = q.push(at(1), [&after_fired] { ++after_fired; });
    EXPECT_FALSE(before.pending());
    before.cancel();       // stale: must not cancel the new event
    also_before.cancel();  // stale + previously cancelled: still a no-op
    EXPECT_TRUE(after.pending());
    q.pop_and_run();
    EXPECT_EQ(after_fired, 1);
    EXPECT_EQ(fired, 0);
}

TEST_P(EventQueueStress, ClearResetsFreelistDeterministically) {
    sim::EventQueue q{GetParam()};
    std::vector<sim::EventHandle> handles;
    for (int i = 0; i < 32; ++i) handles.push_back(q.push(at(i), [] {}));
    for (int i = 0; i < 32; i += 2) handles[static_cast<std::size_t>(i)].cancel();
    q.clear();

    // The slab is retained (no shrink) but everything is free again.
    EXPECT_EQ(q.slot_count(), 32u);
    EXPECT_EQ(q.size(), 0u);
    for (auto& h : handles) EXPECT_FALSE(h.pending());

    int fired = 0;
    for (int i = 0; i < 32; ++i) q.push(at(i), [&fired] { ++fired; });
    EXPECT_EQ(q.slot_count(), 32u) << "clear() must rebuild the freelist, not leak slots";
    while (!q.empty()) q.pop_and_run();
    EXPECT_EQ(fired, 32);
}

TEST_P(EventQueueStress, RescheduleFromRunningActionReusesOwnSlot) {
    // The steady-state DES shape: the running action pushes its successor.
    // With a single chain the queue must never grow past one slot.
    sim::EventQueue q{GetParam()};
    struct Chain {
        sim::EventQueue* q;
        int* remaining;
        std::int64_t t = 0;
        void operator()() {
            if (--*remaining <= 0) return;
            q->push(at(++t), Chain{*this});
        }
    };
    int remaining = 10'000;
    q.push(at(0), Chain{&q, &remaining});
    while (!q.empty()) q.pop_and_run();
    EXPECT_EQ(remaining, 0);
    EXPECT_EQ(q.slot_count(), 1u) << "self-rescheduling must recycle the slot just freed";
}

TEST_P(EventQueueStress, CrossWindowAndFarFutureOrdering) {
    // Times spanning every timing-wheel level — same level-0 bucket,
    // adjacent buckets, window-crossing carries (the 0x1FFFF -> 0x25000
    // shape), multi-level jumps, and entries past the 2^48 ns top-level
    // span that land on the far-future overflow list.  The pops must come
    // out in exact (time, push-order) sequence on both backends.
    sim::EventQueue q{GetParam()};
    const std::int64_t times[] = {
        0x1FFFF,        0x25000,         5,   5, 0x100, 0xFF, 0x10000,  0x123456,
        0x1'0000'0000,  0x30000,         1,   (std::int64_t{1} << 49),  0x123457,
        (std::int64_t{1} << 49) + 1,     0,   0x2FFFF, 300,   0xFFFF,
        (std::int64_t{1} << 48) - 1,     (std::int64_t{1} << 48)};
    std::multimap<std::pair<std::int64_t, int>, int> reference;
    std::vector<int> fired;
    int idx = 0;
    for (const std::int64_t t : times) {
        const int id = idx++;
        q.push(at(t), [&fired, id] { fired.push_back(id); });
        reference.emplace(std::pair{t, id}, id);
    }
    while (!q.empty()) q.pop_and_run();
    std::vector<int> expected;
    for (const auto& [key, id] : reference) expected.push_back(id);
    EXPECT_EQ(fired, expected);
}

TEST_P(EventQueueStress, PeekThenEarlierPushStillPopsInTimeOrder) {
    // Simulator::run peeks next_time() before the loop body; code outside
    // the loop can then push an EARLIER event (chunked run() + re-armed
    // timeouts do exactly this).  The peek advances the wheel cursor, so
    // the earlier event must merge ahead of the staged one.
    sim::EventQueue q{GetParam()};
    std::vector<int> fired;
    q.push(at(1'000), [&fired] { fired.push_back(1); });
    EXPECT_EQ(q.next_time(), at(1'000));
    q.push(at(10), [&fired] { fired.push_back(0); });
    q.push(at(500), [&fired] { fired.push_back(2); });  // between the two
    EXPECT_EQ(q.next_time(), at(10));
    q.pop_and_run();
    q.pop_and_run();
    q.pop_and_run();
    EXPECT_EQ(fired, (std::vector<int>{0, 2, 1}));
}

TEST(EventQueueBackendEquivalence, HeapAndWheelPopIdenticalSequences) {
    // One random push/cancel/pop workload applied to both backends in
    // lock-step: every pop must fire the same event id at the same time.
    sim::Rng rng(0xC0FFEE);
    sim::EventQueue heap{sim::EventQueueBackend::kHeap};
    sim::EventQueue wheel{sim::EventQueueBackend::kWheel};
    std::vector<std::uint64_t> heap_fired;
    std::vector<std::uint64_t> wheel_fired;
    std::vector<std::pair<sim::EventHandle, sim::EventHandle>> handles;
    std::uint64_t next_id = 0;

    for (int round = 0; round < 300; ++round) {
        const int pushes = 1 + static_cast<int>(rng.next_below(6));
        for (int i = 0; i < pushes; ++i) {
            // Mix dense near-term ticks with occasional far jumps so the
            // wheel exercises cascades and the overflow list.
            std::int64_t t = static_cast<std::int64_t>(rng.next_below(2'000));
            if (rng.next_below(20) == 0) t += std::int64_t{1} << (20 + rng.next_below(30));
            const std::uint64_t id = next_id++;
            handles.emplace_back(
                heap.push(at(t), [&heap_fired, id] { heap_fired.push_back(id); }),
                wheel.push(at(t), [&wheel_fired, id] { wheel_fired.push_back(id); }));
        }
        if (!handles.empty() && rng.next_below(3) == 0) {
            const std::size_t pick =
                static_cast<std::size_t>(rng.next_below(handles.size()));
            handles[pick].first.cancel();
            handles[pick].second.cancel();
        }
        const int pops = static_cast<int>(rng.next_below(4));
        for (int i = 0; i < pops && !heap.empty(); ++i) {
            const sim::SimTime th = heap.pop_and_run();
            const sim::SimTime tw = wheel.pop_and_run();
            ASSERT_EQ(th, tw);
        }
        ASSERT_EQ(heap.size(), wheel.size());
        ASSERT_EQ(heap_fired, wheel_fired);
    }
    while (!heap.empty()) {
        ASSERT_FALSE(wheel.empty());
        ASSERT_EQ(heap.pop_and_run(), wheel.pop_and_run());
    }
    EXPECT_TRUE(wheel.empty());
    EXPECT_EQ(heap_fired, wheel_fired);
}

}  // namespace
