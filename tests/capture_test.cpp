// Tests for the capture stacks: BSD BPF double buffer, Linux packet
// socket, mmap ring, NIC service loop and driver delivery.
#include <gtest/gtest.h>

#include "capbench/bpf/filter/codegen.hpp"
#include "capbench/capture/bsd_bpf.hpp"
#include "capbench/capture/driver.hpp"
#include "capbench/capture/linux_socket.hpp"
#include "capbench/capture/mmap_ring.hpp"
#include "capbench/capture/nic.hpp"

namespace capbench::capture {
namespace {

using hostsim::ArchSpec;
using hostsim::CpuState;
using hostsim::Machine;
using hostsim::MachineSpec;
using hostsim::Thread;
using hostsim::Work;

net::PacketPtr synthetic(std::uint64_t id, std::uint32_t frame_len) {
    return std::make_shared<net::Packet>(id, frame_len, sim::SimTime{});
}

struct Fixture {
    sim::Simulator sim;
    Machine machine{sim, MachineSpec{ArchSpec::amd_opteron(), 2, false}, {}};
};

/// Runs the plan/commit pair directly (bypassing the driver) for unit
/// testing of the buffer state machines.
void deliver(PacketTap& tap, const net::PacketPtr& p) {
    tap.plan(p, 0);
    tap.commit(p, 0);
}

TEST(BsdBpf, StoresUntilFullThenRotatesOnOverflow) {
    Fixture f;
    // Each 1000-byte packet occupies 1000 + 18 header, word aligned = 1020.
    BsdBpfDev dev{f.machine, OsSpec::freebsd_5_4(), 2048, 1515};
    deliver(dev, synthetic(1, 1000));
    deliver(dev, synthetic(2, 1000));
    // No rotation yet: both fit exactly into one 2048-byte half.
    EXPECT_EQ(dev.fetch(999), std::nullopt);
    // Third packet overflows the STORE half -> rotate.
    deliver(dev, synthetic(3, 1000));
    const auto batch = dev.fetch(999);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->packets.size(), 2u);
    EXPECT_EQ(batch->bytes, 2000u);
    // The third packet sits in the fresh STORE half.
    EXPECT_EQ(dev.stats().accepted, 3u);
    EXPECT_EQ(dev.stats().dropped_buffer, 0u);
}

TEST(BsdBpf, DropsWhenBothBuffersFull) {
    Fixture f;
    BsdBpfDev dev{f.machine, OsSpec::freebsd_5_4(), 1024, 1515};
    deliver(dev, synthetic(1, 900));  // fills STORE
    deliver(dev, synthetic(2, 900));  // rotate, fills new STORE
    deliver(dev, synthetic(3, 900));  // HOLD occupied, STORE full -> drop
    EXPECT_EQ(dev.stats().dropped_buffer, 1u);
}

TEST(BsdBpf, ReadTimeoutRotatesPartialStore) {
    Fixture f;
    BsdBpfDev dev{f.machine, OsSpec::freebsd_5_4(), 1 << 20, 1515};
    dev.enable_read_timeout(sim::milliseconds(20));
    deliver(dev, synthetic(1, 100));
    EXPECT_EQ(dev.fetch(999), std::nullopt);  // arms the timeout
    f.sim.run(f.sim.now() + sim::milliseconds(25));
    const auto batch = dev.fetch(999);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->packets.size(), 1u);
}

TEST(BsdBpf, SnaplenTruncatesCaptureLength) {
    Fixture f;
    BsdBpfDev dev{f.machine, OsSpec::freebsd_5_4(), 1 << 20, 76};
    deliver(dev, synthetic(1, 1500));
    deliver(dev, synthetic(2, 1500));
    // Force rotation via another packet after filling? Use timeout instead.
    dev.enable_read_timeout(sim::milliseconds(20));
    EXPECT_EQ(dev.fetch(999), std::nullopt);
    f.sim.run(f.sim.now() + sim::milliseconds(25));
    const auto batch = dev.fetch(999);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->bytes, 2u * 76u);
}

TEST(BsdBpf, OversizedPacketIsDroppedNotStored) {
    Fixture f;
    // A 1000-byte packet occupies 1000 + 18 header, word aligned = 1020
    // slot bytes — more than an entire 512-byte buffer half.  Real bpf
    // catchpacket() drops it; storing it would push stored_bytes past the
    // configured buffer size.
    BsdBpfDev dev{f.machine, OsSpec::freebsd_5_4(), 512, 1515};
    dev.enable_read_timeout(sim::milliseconds(20));
    deliver(dev, synthetic(1, 1000));
    EXPECT_EQ(dev.stats().accepted, 1u);
    EXPECT_EQ(dev.stats().dropped_buffer, 1u);
    // Nothing was stored: even after the read timeout there is no data.
    EXPECT_EQ(dev.fetch(999), std::nullopt);
    f.sim.run(f.sim.now() + sim::milliseconds(25));
    EXPECT_EQ(dev.fetch(999), std::nullopt);

    // A packet that does fit still flows through normally.
    deliver(dev, synthetic(2, 100));
    EXPECT_EQ(dev.fetch(999), std::nullopt);
    f.sim.run(f.sim.now() + sim::milliseconds(25));
    const auto batch = dev.fetch(999);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->packets.size(), 1u);
    EXPECT_EQ(batch->packets.front()->id(), 2u);
}

TEST(BsdBpf, FilterRejectsAndCountsSeparately) {
    Fixture f;
    BsdBpfDev dev{f.machine, OsSpec::freebsd_5_4(), 1 << 20, 1515};
    dev.install_filter(bpf::reject_all());
    deliver(dev, synthetic(1, 500));
    EXPECT_EQ(dev.stats().kernel_seen, 1u);
    EXPECT_EQ(dev.stats().dropped_filter, 1u);
    EXPECT_EQ(dev.stats().accepted, 0u);
}

TEST(BsdBpf, PlanChargesCopyOnlyWhenAccepted) {
    Fixture f;
    BsdBpfDev dev{f.machine, OsSpec::freebsd_5_4(), 1 << 20, 1515};
    const auto accepted = dev.plan(synthetic(1, 1000), 0);
    dev.commit(synthetic(1, 1000), 0);
    dev.install_filter(bpf::reject_all());
    const auto rejected = dev.plan(synthetic(2, 1000), 0);
    dev.commit(synthetic(2, 1000), 0);
    EXPECT_GT(accepted.copy_bytes, 900.0);
    EXPECT_EQ(rejected.copy_bytes, 0.0);
}

TEST(LinuxSocket, TruesizeChargesSlabRounded) {
    Fixture f;
    LinuxPacketSocket sock{f.machine, OsSpec::linux_2_6_11(), 64 * 1024, 1515};
    // 645-byte packet -> 2048 slab + 256 overhead = 2304 charged.
    deliver(sock, synthetic(1, 645));
    EXPECT_EQ(sock.queued_truesize(), 2304u);
}

TEST(LinuxSocket, DropsWhenRmemExhausted) {
    Fixture f;
    LinuxPacketSocket sock{f.machine, OsSpec::linux_2_6_11(), 8 * 1024, 1515};
    // 2304 truesize each: 3 fit in 8192, the 4th drops.
    for (int i = 0; i < 4; ++i) deliver(sock, synthetic(i, 645));
    EXPECT_EQ(sock.stats().accepted, 4u);
    EXPECT_EQ(sock.stats().dropped_buffer, 1u);
    auto batch = sock.fetch(999);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->packets.size(), 3u);
    EXPECT_EQ(sock.queued_truesize(), 0u);
}

TEST(LinuxSocket, FetchChargesPerPacketSyscalls) {
    Fixture f;
    const auto& os = OsSpec::linux_2_6_11();
    LinuxPacketSocket sock{f.machine, os, 1 << 20, 1515};
    for (int i = 0; i < 5; ++i) deliver(sock, synthetic(i, 200));
    const auto batch = sock.fetch(999);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->packets.size(), 5u);
    // Five recvfrom() calls worth of cycles.
    EXPECT_NEAR(batch->fetch_work.cycles,
                5.0 * (os.syscall_overhead.cycles + os.deliver_per_packet.cycles), 1.0);
    EXPECT_NEAR(batch->fetch_work.copy_bytes, 5.0 * 200.0, 1.0);
}

TEST(LinuxSocket, FetchRespectsMaxPackets) {
    Fixture f;
    LinuxPacketSocket sock{f.machine, OsSpec::linux_2_6_11(), 1 << 20, 1515};
    for (int i = 0; i < 10; ++i) deliver(sock, synthetic(i, 100));
    EXPECT_EQ(sock.fetch(4)->packets.size(), 4u);
    EXPECT_EQ(sock.fetch(999)->packets.size(), 6u);
    EXPECT_EQ(sock.fetch(999), std::nullopt);
}

TEST(MmapRing, BoundedBySlots) {
    Fixture f;
    MmapRing ring{f.machine, OsSpec::linux_2_6_11(), 16 * 2048, 1515};
    EXPECT_EQ(ring.slots(), 16u);
    for (int i = 0; i < 20; ++i) deliver(ring, synthetic(i, 500));
    EXPECT_EQ(ring.stats().dropped_buffer, 4u);
    EXPECT_EQ(ring.fetch(999)->packets.size(), 16u);
}

TEST(MmapRing, FetchIsCheap) {
    Fixture f;
    const auto& os = OsSpec::linux_2_6_11();
    MmapRing ring{f.machine, os, 1 << 20, 1515};
    for (int i = 0; i < 8; ++i) deliver(ring, synthetic(i, 500));
    const auto batch = ring.fetch(999);
    // No syscall per packet: far below the socket path's cost.
    EXPECT_LT(batch->fetch_work.cycles, os.syscall_overhead.cycles);
    EXPECT_EQ(batch->fetch_work.copy_bytes, 0.0);
}

TEST(Taps, RealBytesRunTheRealFilter) {
    Fixture f;
    LinuxPacketSocket sock{f.machine, OsSpec::linux_2_6_11(), 1 << 20, 1515};
    sock.install_filter(bpf::filter::compile_filter("udp"));
    // A synthetic arp-ish frame with bytes: ethertype 0x0806 at offset 12.
    std::vector<std::byte> frame(64);
    frame[12] = std::byte{0x08};
    frame[13] = std::byte{0x06};
    auto arp = std::make_shared<net::Packet>(1, std::move(frame), sim::SimTime{});
    deliver(sock, arp);
    EXPECT_EQ(sock.stats().dropped_filter, 1u);
}

// ---- plan/commit protocol -----------------------------------------------------

TEST(Taps, CommitWithoutPlanFailsFast) {
    // A commit with no outstanding plan used to read the verdict FIFO out
    // of bounds silently in Release builds; all three stacks must throw.
    Fixture f;
    const auto p = synthetic(1, 500);

    BsdBpfDev bpf{f.machine, OsSpec::freebsd_5_4(), 1 << 20, 1515};
    EXPECT_THROW(bpf.commit(p, 0), std::logic_error);

    LinuxPacketSocket sock{f.machine, OsSpec::linux_2_6_11(), 1 << 20, 1515};
    EXPECT_THROW(sock.commit(p, 0), std::logic_error);

    MmapRing ring{f.machine, OsSpec::linux_2_6_11(), 1 << 20, 1515};
    EXPECT_THROW(ring.commit(p, 0), std::logic_error);
}

TEST(Taps, ExtraCommitAfterMatchedPairsFailsFast) {
    Fixture f;
    const auto p = synthetic(1, 500);
    LinuxPacketSocket sock{f.machine, OsSpec::linux_2_6_11(), 1 << 20, 1515};
    deliver(sock, p);                                  // matched pair: fine
    EXPECT_THROW(sock.commit(p, 0), std::logic_error);    // one commit too many
    deliver(sock, p);                                  // queue still usable
    EXPECT_EQ(sock.stats().accepted, 2u);
}

// ---- read-timeout re-arm ------------------------------------------------------

/// An application thread that blocks forever (re-blocking each time it is
/// woken) — keeps BsdBpfDev's reader in State::kBlocked so the timeout
/// re-arm path is taken.
struct ParkedReader final : Thread {
    ParkedReader() : Thread("parked-reader") {}
    void main() override { park(); }
    void park() {
        block([this] { park(); });
    }
};

TEST(BsdBpf, TimeoutReArmsWhileReaderStaysBlocked) {
    Fixture f;
    BsdBpfDev dev{f.machine, OsSpec::freebsd_5_4(), 1 << 20, 1515};
    auto reader = std::make_shared<ParkedReader>();
    f.machine.spawn(reader);
    dev.set_reader(reader.get());
    dev.enable_read_timeout(sim::milliseconds(20));

    // The reader finds no data and goes to sleep; this arms the timeout.
    EXPECT_EQ(dev.fetch(999), std::nullopt);
    // A packet arrives only at t=50ms — after the first timeout fired on
    // an empty STORE.  Delivery depends on the timer re-arming at 20ms and
    // 40ms while the reader stays blocked: the 60ms firing rotates.
    f.sim.schedule_at(sim::SimTime{} + sim::milliseconds(50),
                      [&dev] { deliver(dev, synthetic(1, 400)); });
    f.sim.run(sim::SimTime{} + sim::milliseconds(100));
    EXPECT_EQ(reader->state(), Thread::State::kBlocked);

    const auto batch = dev.fetch(999);
    ASSERT_TRUE(batch.has_value()) << "timeout did not re-arm while the reader waited";
    EXPECT_EQ(batch->packets.size(), 1u);
}

TEST(BsdBpf, NoReArmAfterHoldReadyUntilNextFetch) {
    Fixture f;
    BsdBpfDev dev{f.machine, OsSpec::freebsd_5_4(), 1 << 20, 1515};
    auto reader = std::make_shared<ParkedReader>();
    f.machine.spawn(reader);
    dev.set_reader(reader.get());
    dev.enable_read_timeout(sim::milliseconds(20));

    EXPECT_EQ(dev.fetch(999), std::nullopt);  // arm
    deliver(dev, synthetic(1, 400));
    f.sim.run(sim::SimTime{} + sim::milliseconds(25));  // rotate at 20ms

    // HOLD is ready; the timer must NOT have re-armed.  A second packet
    // sits in STORE and stays there however long we wait...
    deliver(dev, synthetic(2, 400));
    f.sim.run(sim::SimTime{} + sim::milliseconds(150));
    const auto first = dev.fetch(999);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->packets.size(), 1u);
    EXPECT_EQ(first->packets.front()->id(), 1u);

    // ...until the NEXT empty fetch arms a fresh timeout that rotates it.
    EXPECT_EQ(dev.fetch(999), std::nullopt);
    f.sim.run(f.sim.now() + sim::milliseconds(25));
    const auto second = dev.fetch(999);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->packets.size(), 1u);
    EXPECT_EQ(second->packets.front()->id(), 2u);
}

// ---- batch vector pooling -----------------------------------------------------

TEST(Taps, RecycledBatchVectorsKeepTheirStorage) {
    // After recycle(), the next fetch must reuse the returned vector's
    // storage instead of allocating a new one.
    Fixture f;
    LinuxPacketSocket sock{f.machine, OsSpec::linux_2_6_11(), 1 << 20, 1515};
    for (int i = 0; i < 8; ++i) deliver(sock, synthetic(i, 200));
    auto batch = sock.fetch(8);
    ASSERT_TRUE(batch.has_value());
    const net::PacketPtr* storage = batch->packets.data();
    sock.recycle(std::move(batch->packets));

    for (int i = 8; i < 16; ++i) deliver(sock, synthetic(i, 200));
    const auto again = sock.fetch(8);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->packets.data(), storage) << "fetch reallocated instead of reusing";

    MmapRing ring{f.machine, OsSpec::linux_2_6_11(), 1 << 20, 1515};
    for (int i = 0; i < 8; ++i) deliver(ring, synthetic(i, 200));
    auto rb = ring.fetch(8);
    ASSERT_TRUE(rb.has_value());
    const net::PacketPtr* ring_storage = rb->packets.data();
    ring.recycle(std::move(rb->packets));
    for (int i = 8; i < 16; ++i) deliver(ring, synthetic(i, 200));
    EXPECT_EQ(ring.fetch(8)->packets.data(), ring_storage);
}

// ---- NIC + driver -------------------------------------------------------------

struct CountingTap : PacketTap {
    int planned = 0;
    int committed = 0;
    int skipped = 0;
    Work plan(const net::PacketPtr&, int) override {
        ++planned;
        return Work{.cycles = 500};
    }
    void commit(const net::PacketPtr&, int) override { ++committed; }
    void fanout_skip(int) override { ++skipped; }
};

TEST(Driver, CommitsOnlyAfterKernelWorkCompletes) {
    Fixture f;
    Driver driver{f.machine, OsSpec::freebsd_5_4()};
    CountingTap tap;
    driver.attach(tap);
    driver.process(synthetic(1, 500));
    EXPECT_EQ(tap.planned, 1);
    EXPECT_EQ(tap.committed, 0);  // cost not yet paid
    f.sim.run();
    EXPECT_EQ(tap.committed, 1);
    EXPECT_EQ(driver.packets_processed(), 1u);
    EXPECT_GT(f.machine.cpu(0).in_state(CpuState::kInterrupt).ns(), 0);
}

TEST(Driver, LinuxAccountsAsSystemTime) {
    Fixture f;
    Driver driver{f.machine, OsSpec::linux_2_6_11()};
    CountingTap tap;
    driver.attach(tap);
    driver.process(synthetic(1, 500));
    f.sim.run();
    EXPECT_GT(f.machine.cpu(0).in_state(CpuState::kSystem).ns(), 0);
    EXPECT_EQ(f.machine.cpu(0).in_state(CpuState::kInterrupt).ns(), 0);
}

TEST(Nic, RingOverflowDropsFrames) {
    Fixture f;
    Driver driver{f.machine, OsSpec::freebsd_5_4()};
    CountingTap tap;
    driver.attach(tap);
    NicModel model;
    model.ring_slots = 8;
    Nic nic{f.machine, OsSpec::freebsd_5_4(), model, driver};
    // 20 frames arrive back-to-back with no sim time to drain.
    for (int i = 0; i < 20; ++i) nic.on_frame(synthetic(i, 500));
    EXPECT_EQ(nic.frames_seen(), 20u);
    EXPECT_GT(nic.ring_drops(), 0u);
    f.sim.run();
    EXPECT_EQ(tap.committed + static_cast<int>(nic.ring_drops()), 20);
}

TEST(Nic, ServesAllFramesWhenPaced) {
    Fixture f;
    Driver driver{f.machine, OsSpec::freebsd_5_4()};
    CountingTap tap;
    driver.attach(tap);
    Nic nic{f.machine, OsSpec::freebsd_5_4(), NicModel{}, driver};
    for (int i = 0; i < 100; ++i) {
        f.sim.schedule_in(sim::microseconds(10 * i),
                          [&nic, i] { nic.on_frame(synthetic(i, 500)); });
    }
    f.sim.run();
    EXPECT_EQ(tap.committed, 100);
    EXPECT_EQ(nic.ring_drops(), 0u);
    EXPECT_EQ(nic.backlog_drops(), 0u);
}

TEST(OsSpecs, FactoriesAreDistinct) {
    EXPECT_EQ(OsSpec::linux_2_6_11().family, OsFamily::kLinux);
    EXPECT_EQ(OsSpec::freebsd_5_4().family, OsFamily::kFreeBsd);
    EXPECT_GT(OsSpec::freebsd_5_2_1().kernel_cost_multiplier, 1.0);
    EXPECT_TRUE(OsSpec::linux_2_6_11().sched.lifo_wakeup);
    EXPECT_FALSE(OsSpec::freebsd_5_4().sched.lifo_wakeup);
}

}  // namespace
}  // namespace capbench::capture
