// Packet-conservation properties: across every configuration, each packet
// offered to a sniffer must be accounted for exactly once — dropped at the
// NIC ring, dropped at the kernel backlog, rejected by the filter, dropped
// for lack of buffer space, delivered to the application, or still queued
// when the run ends.
#include <gtest/gtest.h>

#include "capbench/harness/testbed.hpp"
#include "capbench/dist/builtin.hpp"

namespace capbench::harness {
namespace {

struct ConservationCase {
    std::string sut_name;
    int cores;
    StackKind stack;
    std::uint64_t buffer_bytes;
    int app_count;
    double rate_mbps;
    bool moderation;
};

void PrintTo(const ConservationCase& c, std::ostream* os) {
    *os << c.sut_name << "/cores" << c.cores << "/apps" << c.app_count << "/rate"
        << c.rate_mbps << "/buf" << c.buffer_bytes
        << (c.stack == StackKind::kNative ? "/native" : "/ring")
        << (c.moderation ? "" : "/noNAPI");
}

class ConservationTest : public ::testing::TestWithParam<ConservationCase> {};

TEST_P(ConservationTest, EveryPacketAccountedForExactlyOnce) {
    const auto& param = GetParam();

    TestbedConfig tb;
    tb.gen.count = 25'000;
    tb.gen.rate_mbps = param.rate_mbps;
    tb.gen.size_dist.emplace(dist::mwn_trace_histogram());
    tb.gen.use_dist = true;
    auto sut = standard_sut(param.sut_name);
    sut.cores = param.cores;
    sut.stack = param.stack;
    sut.buffer_bytes = param.buffer_bytes;
    sut.app_count = param.app_count;
    sut.nic.interrupt_moderation = param.moderation;
    tb.suts.push_back(std::move(sut));

    Testbed bed{std::move(tb)};
    bed.start_suts();
    bool done = false;
    bed.generator().start(sim::SimTime{}, [&] { done = true; });
    while (!done) bed.sim().run(bed.sim().now() + sim::seconds(1));
    bed.sim().run(bed.sim().now() + sim::seconds(3));  // full drain

    auto& s = *bed.suts()[0];
    const std::uint64_t generated = bed.monitor_switch().egress_counters().packets;
    ASSERT_EQ(generated, 25'000u);

    // NIC level: everything the splitter sent arrived at the NIC; ring and
    // backlog drops reduce what the kernel sees.
    EXPECT_EQ(s.nic().frames_seen(), generated);
    const std::uint64_t into_kernel =
        generated - s.nic().ring_drops() - s.nic().backlog_drops();

    for (std::size_t a = 0; a < s.sessions().size(); ++a) {
        const auto& stats = s.sessions()[a]->endpoint().stats();
        // Every tap sees exactly what the kernel processed.
        EXPECT_EQ(stats.kernel_seen, into_kernel) << "app " << a;
        // Filter verdicts partition what the tap saw.
        EXPECT_EQ(stats.kernel_seen, stats.accepted + stats.dropped_filter) << "app " << a;
        // After a full drain nothing remains queued: accepted packets were
        // either delivered or dropped at the buffer.
        EXPECT_EQ(stats.accepted, stats.delivered + stats.dropped_buffer) << "app " << a;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConservationTest,
    ::testing::Values(
        ConservationCase{"moorhen", 2, StackKind::kNative, 10u << 20, 1, 300.0, true},
        ConservationCase{"moorhen", 1, StackKind::kNative, 512u << 10, 1, 0.0, true},
        ConservationCase{"moorhen", 2, StackKind::kNative, 10u << 20, 4, 0.0, true},
        ConservationCase{"moorhen", 2, StackKind::kZeroCopyBpf, 10u << 20, 1, 700.0, true},
        ConservationCase{"flamingo", 1, StackKind::kNative, 128u << 20, 1, 0.0, true},
        ConservationCase{"flamingo", 2, StackKind::kNative, 1u << 20, 2, 800.0, true},
        ConservationCase{"swan", 2, StackKind::kNative, 128u << 20, 1, 600.0, true},
        ConservationCase{"swan", 1, StackKind::kNative, 0, 1, 0.0, true},
        ConservationCase{"swan", 2, StackKind::kMmap, 128u << 20, 1, 900.0, true},
        ConservationCase{"swan", 2, StackKind::kNative, 128u << 20, 8, 0.0, true},
        ConservationCase{"snipe", 1, StackKind::kNative, 128u << 20, 1, 900.0, true},
        ConservationCase{"snipe", 2, StackKind::kNative, 0, 2, 500.0, true},
        ConservationCase{"moorhen", 1, StackKind::kNative, 10u << 20, 1, 850.0, false},
        ConservationCase{"snipe", 2, StackKind::kMmap, 4u << 20, 3, 0.0, true}));

}  // namespace
}  // namespace capbench::harness
