// Shared random-BPF-program generator for the tier-equivalence property
// suites (interpreter vs. threaded vs. jit).  Programs are validator-clean
// by construction — jump offsets stay in range, DIV|K immediates stay
// nonzero, the last slot is always RET — but freely hit the runtime abort
// paths (out-of-bounds loads, division by X == 0).
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>

#include "capbench/bpf/insn.hpp"

namespace capbench::bpf::testgen {

/// Emits one random but validator-clean instruction for position `pc` of a
/// `total`-instruction program.
inline Insn random_insn(std::mt19937& rng, std::size_t pc, std::size_t total) {
    const auto pick = [&rng](std::uint32_t bound) {
        return static_cast<std::uint32_t>(rng() % bound);
    };
    const std::size_t slack = total - 1 - pc - 1;  // insns between pc+1 and last
    switch (pick(12)) {
        case 0: return stmt(BPF_LD | BPF_IMM, pick(1024));
        case 1: {
            const std::uint16_t size =
                pick(3) == 0 ? BPF_W : (pick(2) == 0 ? BPF_H : BPF_B);
            return stmt(BPF_LD | size | BPF_ABS, pick(96));
        }
        case 2: return stmt(BPF_LD | BPF_W | BPF_LEN, 0);
        case 3: return stmt(BPF_LD | BPF_W | BPF_MEM, pick(kMemWords));
        case 4: return stmt(BPF_LDX | BPF_W | BPF_IMM, pick(64));
        case 5: return stmt(BPF_LDX | BPF_B | BPF_MSH, pick(64));
        case 6: return stmt(pick(2) == 0 ? BPF_ST : BPF_STX, pick(kMemWords));
        case 7: {
            static constexpr std::uint16_t kOps[] = {BPF_ADD, BPF_SUB, BPF_MUL, BPF_DIV,
                                                     BPF_OR,  BPF_AND, BPF_LSH, BPF_RSH};
            const std::uint16_t op = kOps[pick(8)];
            const std::uint32_t k = op == BPF_DIV ? 1 + pick(16) : pick(64);
            return stmt(BPF_ALU | op | BPF_K, k);
        }
        case 8: {
            static constexpr std::uint16_t kOps[] = {BPF_ADD, BPF_SUB, BPF_AND, BPF_OR,
                                                     BPF_DIV};
            return stmt(BPF_ALU | kOps[pick(5)] | BPF_X, 0);
        }
        case 9: {
            const std::uint16_t size = pick(2) == 0 ? BPF_H : BPF_B;
            return stmt(BPF_LD | size | BPF_IND, pick(32));
        }
        case 10:
            return Insn{static_cast<std::uint16_t>(pick(2) == 0 ? BPF_MISC | BPF_TAX
                                                                : BPF_MISC | BPF_TXA),
                        0, 0, 0};
        default: {
            if (slack == 0) return stmt(BPF_LD | BPF_IMM, pick(64));
            static constexpr std::uint16_t kOps[] = {BPF_JEQ, BPF_JGT, BPF_JGE, BPF_JSET};
            const auto off = [&] {
                return static_cast<std::uint8_t>(pick(static_cast<std::uint32_t>(
                    std::min<std::size_t>(slack + 1, 255))));
            };
            if (pick(4) == 0) return jump(BPF_JMP | BPF_JA, off(), 0, 0);
            return jump(BPF_JMP | kOps[pick(4)] | BPF_K, pick(256), off(), off());
        }
    }
}

/// A validator-clean random program: a deterministic prologue defines A
/// and X (clean for the abstract interpreter as well as the VM), then a
/// 2–25 instruction body, then RET.
inline Program random_program(std::mt19937& rng) {
    const std::size_t body = 2 + rng() % 24;
    Program prog;
    prog.push_back(stmt(BPF_LD | BPF_IMM, static_cast<std::uint32_t>(rng() % 256)));
    prog.push_back(stmt(BPF_LDX | BPF_W | BPF_IMM, static_cast<std::uint32_t>(rng() % 64)));
    const std::size_t total = prog.size() + body + 1;
    for (std::size_t i = 0; i < body; ++i)
        prog.push_back(random_insn(rng, prog.size(), total));
    prog.push_back(rng() % 2 == 0 ? stmt(BPF_RET | BPF_A, 0)
                                  : stmt(BPF_RET | BPF_K, static_cast<std::uint32_t>(rng() % 2000)));
    return prog;
}

}  // namespace capbench::bpf::testgen
