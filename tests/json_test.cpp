// Tests for the report JSON layer: value model, serializer and strict
// parser, including the round-trip guarantees the results schema and the
// determinism tests build on.
#include <gtest/gtest.h>

#include "capbench/report/json.hpp"

namespace capbench::report {
namespace {

TEST(JsonValue, KindsAndAccessors) {
    EXPECT_TRUE(JsonValue{}.is_null());
    EXPECT_TRUE(JsonValue{true}.as_bool());
    EXPECT_EQ(JsonValue{42}.as_int(), 42);
    EXPECT_EQ(JsonValue{std::uint64_t{7}}.as_int(), 7);
    EXPECT_EQ(JsonValue{2.5}.as_double(), 2.5);
    EXPECT_EQ(JsonValue{7}.as_double(), 7.0);  // integers widen
    EXPECT_EQ(JsonValue{"hi"}.as_string(), "hi");
    EXPECT_THROW((void)JsonValue{1}.as_string(), std::runtime_error);
    EXPECT_THROW((void)JsonValue{"x"}.as_int(), std::runtime_error);
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
    JsonValue obj = JsonValue::object();
    obj.set("zebra", 1);
    obj.set("apple", 2);
    obj.set("mango", 3);
    EXPECT_EQ(dump_json(obj, 0), R"({"zebra":1,"apple":2,"mango":3})");
    EXPECT_EQ(obj.at("apple").as_int(), 2);
    EXPECT_EQ(obj.find("missing"), nullptr);
    EXPECT_THROW((void)obj.at("missing"), std::runtime_error);
}

TEST(JsonDump, EscapesStrings) {
    JsonValue v{"a\"b\\c\nd\te\x01"};
    // Control characters escape as \uXXXX.
    EXPECT_EQ(dump_json(v, 0), R"("a\"b\\c\nd\te\u0001")");
}

TEST(JsonDump, DoublesKeepTypeOnReparse) {
    // Doubles always serialize with a '.', 'e' or 'E' so a re-parse
    // yields a double again, never an integer.
    EXPECT_EQ(dump_json(JsonValue{1.0}, 0), "1.0");
    EXPECT_EQ(dump_json(JsonValue{100.0}, 0), "100.0");
    EXPECT_TRUE(parse_json(dump_json(JsonValue{100.0}, 0)).is_double());
    EXPECT_TRUE(parse_json("100").is_int());
}

TEST(JsonRoundTrip, DoublesAreExact) {
    for (const double d : {0.1, 1.0 / 3.0, -3.25, 6.02e23, 1e-300, 95.234567890123456}) {
        const JsonValue parsed = parse_json(dump_json(JsonValue{d}, 0));
        ASSERT_TRUE(parsed.is_double());
        EXPECT_EQ(parsed.as_double(), d);  // bit-exact shortest round trip
    }
}

TEST(JsonRoundTrip, NestedDocument) {
    JsonValue doc = JsonValue::object();
    doc.set("name", "sweep");
    doc.set("ok", true);
    doc.set("missing", nullptr);
    JsonValue points = JsonValue::array();
    for (int i = 0; i < 3; ++i) {
        JsonValue p = JsonValue::object();
        p.set("x", 50.0 * i);
        p.set("n", i);
        points.push_back(std::move(p));
    }
    doc.set("points", std::move(points));
    for (const int indent : {0, 2}) {
        const JsonValue reparsed = parse_json(dump_json(doc, indent));
        EXPECT_EQ(reparsed, doc) << "indent=" << indent;
    }
}

TEST(JsonParse, AcceptsStandardEscapes) {
    const JsonValue v = parse_json(R"("aA\n\t\/é")");
    EXPECT_EQ(v.as_string(), "aA\n\t/\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput) {
    EXPECT_THROW(parse_json(""), std::runtime_error);
    EXPECT_THROW(parse_json("{"), std::runtime_error);
    EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
    EXPECT_THROW(parse_json("{\"a\":1} trailing"), std::runtime_error);
    EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
    EXPECT_THROW(parse_json("\"bad\\q\""), std::runtime_error);
    EXPECT_THROW(parse_json("truthy"), std::runtime_error);
    EXPECT_THROW(parse_json("-"), std::runtime_error);
    EXPECT_THROW(parse_json("01x"), std::runtime_error);
    EXPECT_THROW(parse_json("\"\x01\""), std::runtime_error);
}

TEST(JsonParse, RejectsDuplicateKeys) {
    EXPECT_THROW(parse_json(R"({"a":1,"a":2})"), std::runtime_error);
}

TEST(JsonParse, RejectsDeepNesting) {
    std::string deep(300, '[');
    deep += "1";
    deep.append(300, ']');
    EXPECT_THROW(parse_json(deep), std::runtime_error);
}

TEST(JsonParse, IntegerOverflowBecomesDouble) {
    const JsonValue v = parse_json("123456789012345678901234567890");
    ASSERT_TRUE(v.is_double());
    EXPECT_GT(v.as_double(), 1e29);
}

}  // namespace
}  // namespace capbench::report
