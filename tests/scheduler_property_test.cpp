// Property tests for the host machine scheduler: under randomized thread
// workloads with random kernel interference, CPU time must be conserved —
// no CPU accounts more busy time than wall time, every thread's issued
// work is eventually accounted (or still pending), and no thread ever
// occupies two CPUs at once.
#include <gtest/gtest.h>

#include "capbench/hostsim/machine.hpp"
#include "capbench/sim/random.hpp"

namespace capbench::hostsim {
namespace {

/// Thread that runs a random sequence of exec/yield/block steps and records
/// the work it issued.
class RandomWorker : public Thread {
public:
    RandomWorker(std::string name, std::uint64_t seed, int steps, double* issued_cycles)
        : Thread(std::move(name)), rng_(seed), steps_(steps), issued_(issued_cycles) {}

    void main() override { step(); }

    void step() {
        if (steps_-- <= 0) return;  // terminate
        const double cycles = 1'000.0 + static_cast<double>(rng_.next_below(200'000));
        *issued_ += cycles;
        const auto state = rng_.next_bool(0.5) ? CpuState::kUser : CpuState::kSystem;
        exec(Work{.cycles = cycles}, state, [this] {
            switch (rng_.next_below(3)) {
                case 0:
                    yield([this] { step(); });
                    break;
                case 1:
                    block([this] { step(); });
                    break;
                default:
                    step();
                    break;
            }
        });
    }

    sim::Rng rng_;
    int steps_;
    double* issued_;
};

struct SchedulerCase {
    std::uint64_t seed;
    int cores;
    bool ht;
    int threads;
};

class SchedulerProperty : public ::testing::TestWithParam<SchedulerCase> {};

TEST_P(SchedulerProperty, TimeIsConservedUnderRandomLoad) {
    const auto param = GetParam();
    sim::Simulator sim;
    const auto& arch = param.ht ? ArchSpec::intel_xeon() : ArchSpec::amd_opteron();
    SchedPolicy policy;
    policy.lifo_wakeup = param.seed % 2 == 0;
    policy.lifo_yield = param.seed % 3 == 0;
    policy.wakeup_latency = sim::microseconds(200);
    Machine machine{sim, MachineSpec{arch, param.cores, param.ht}, policy};

    double issued_cycles = 0.0;
    std::vector<std::shared_ptr<RandomWorker>> workers;
    for (int i = 0; i < param.threads; ++i) {
        auto worker = std::make_shared<RandomWorker>("w" + std::to_string(i),
                                                     param.seed * 97 + i, 120, &issued_cycles);
        workers.push_back(worker);
        machine.spawn(worker);
    }

    // Random kernel interference + periodic wakeups of blocked workers.
    sim::Rng rng{param.seed};
    for (int burst = 0; burst < 200; ++burst) {
        sim.schedule_in(sim::microseconds(static_cast<std::int64_t>(rng.next_below(400'000))),
                        [&machine, &rng, &workers] {
                            machine.post_kernel_work(
                                Work{.cycles = 2'000.0 +
                                               static_cast<double>(rng.next_below(80'000))},
                                CpuState::kInterrupt, {});
                            for (auto& w : workers) {
                                if (rng.next_bool(0.5)) machine.wake(*w);
                            }
                        });
    }
    // Keep waking until everything terminates.
    std::function<void()> reaper = [&] {
        bool any_alive = false;
        for (auto& w : workers) {
            if (w->state() != Thread::State::kDone) {
                any_alive = true;
                machine.wake(*w);
            }
        }
        if (any_alive) sim.schedule_in(sim::milliseconds(5), reaper);
    };
    sim.schedule_in(sim::milliseconds(1), reaper);
    sim.run();

    for (auto& w : workers)
        EXPECT_EQ(w->state(), Thread::State::kDone) << w->name();

    const double wall = sim.now().seconds();
    double total_busy = 0.0;
    for (int c = 0; c < machine.logical_cpus(); ++c) {
        const double busy = machine.cpu(c).busy().seconds();
        // No CPU can be busier than the wall clock.
        EXPECT_LE(busy, wall + 1e-9) << "cpu " << c;
        total_busy += busy;
    }
    // All issued thread work was executed and accounted (kernel bursts and
    // migration re-execution only add on top, so total busy >= issued).
    const double issued_seconds = issued_cycles / arch.clock_hz;
    EXPECT_GE(total_busy + 1e-9, issued_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchedulerProperty,
    ::testing::Values(SchedulerCase{1, 1, false, 1}, SchedulerCase{2, 1, false, 4},
                      SchedulerCase{3, 2, false, 1}, SchedulerCase{4, 2, false, 3},
                      SchedulerCase{5, 2, false, 8}, SchedulerCase{6, 2, true, 4},
                      SchedulerCase{7, 1, true, 2}, SchedulerCase{8, 2, true, 8},
                      SchedulerCase{9, 2, false, 2}, SchedulerCase{10, 2, true, 1}));

}  // namespace
}  // namespace capbench::hostsim
