// Zero-allocation guard: replaces global operator new/delete with counting
// versions and asserts that the DES steady state — the event loop and the
// synthetic/full packet paths — performs no heap allocation after warmup.
//
// This is its own binary (NOT part of capbench_tests): the global
// replacement affects every allocation in the process, and sanitizer
// builds interpose their own allocator, so the checks are skipped there.
#include <execinfo.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <ostream>
#include <streambuf>

#include <gtest/gtest.h>

#include "capbench/capture/bsd_bpf.hpp"
#include "capbench/capture/mmap_ring.hpp"
#include "capbench/capture/os.hpp"
#include "capbench/dist/builtin.hpp"
#include "capbench/harness/experiment.hpp"
#include "capbench/harness/testbed.hpp"
#include "capbench/hostsim/machine.hpp"
#include "capbench/net/arena.hpp"
#include "capbench/net/link.hpp"
#include "capbench/load/disk_writer.hpp"
#include "capbench/net/packet.hpp"
#include "capbench/obs/observer.hpp"
#include "capbench/obs/timeseries.hpp"
#include "capbench/pcap/file.hpp"
#include "capbench/obs/trace.hpp"
#include "capbench/pktgen/pktgen.hpp"
#include "capbench/sim/simulator.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

bool sanitizers_active() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
    return true;
#else
    return false;
#endif
#else
    return false;
#endif
}

/// Debugging aid: set to true around a failing guarded region to dump a
/// backtrace (to stderr) for every allocation it performs.
std::atomic<bool> g_report{false};

void* counted_alloc(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (g_report.load(std::memory_order_relaxed)) {
        g_report.store(false);
        void* frames[32];
        const int n = backtrace(frames, 32);
        backtrace_symbols_fd(frames, n, 2);
        g_report.store(true);
    }
    if (void* p = std::malloc(size != 0 ? size : 1)) return p;
    throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size != 0 ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

namespace sim = capbench::sim;
namespace net = capbench::net;
namespace pktgen = capbench::pktgen;

#define SKIP_UNDER_SANITIZERS()                                                       \
    if (sanitizers_active())                                                          \
    GTEST_SKIP() << "sanitizer runtime interposes the allocator; counts meaningless"

/// Allocations performed while running `body`.
template <typename Body>
std::uint64_t allocations_during(Body&& body) {
    const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    body();
    return g_alloc_count.load(std::memory_order_relaxed) - before;
}

struct ChainEvent {
    sim::Simulator* sim;
    std::uint64_t* remaining;
    void operator()() const {
        if (*remaining == 0) return;
        --*remaining;
        sim->schedule_in(sim::Duration{100}, ChainEvent{*this});
    }
};

void check_event_loop_steady_state(sim::EventQueueBackend backend) {
    sim::Simulator sim{backend};
    std::uint64_t remaining = 10'000;
    for (int chain = 0; chain < 8; ++chain)
        sim.schedule_in(sim::Duration{chain + 1}, ChainEvent{&sim, &remaining});
    sim.run();  // warmup: grows the slab and the priority structure to final size
    ASSERT_EQ(remaining, 0u);

    remaining = 100'000;
    for (int chain = 0; chain < 8; ++chain)
        sim.schedule_in(sim::Duration{chain + 1}, ChainEvent{&sim, &remaining});
    const std::uint64_t allocs = allocations_during([&] { sim.run(); });
    EXPECT_EQ(remaining, 0u);
    EXPECT_EQ(allocs, 0u) << "event loop allocated in steady state ("
                          << sim::to_string(backend) << " backend)";
}

TEST(AllocGuard, SteadyStateEventLoopDoesNotAllocate) {
    SKIP_UNDER_SANITIZERS();
    check_event_loop_steady_state(sim::EventQueueBackend::kHeap);
}

TEST(AllocGuard, SteadyStateEventLoopDoesNotAllocateOnWheel) {
    SKIP_UNDER_SANITIZERS();
    check_event_loop_steady_state(sim::EventQueueBackend::kWheel);
}

void check_cancel_churn_steady_state(sim::EventQueueBackend backend) {
    sim::Simulator sim{backend};
    const auto churn = [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
            auto doomed = sim.schedule_in(sim::Duration{1000}, [] {});
            sim.schedule_in(sim::Duration{10}, [] {});
            doomed.cancel();
            sim.step();
        }
        sim.run();
    };
    churn(64);  // warmup
    const std::uint64_t allocs = allocations_during([&] { churn(10'000); });
    EXPECT_EQ(allocs, 0u) << "cancel/reschedule churn allocated in steady state ("
                          << sim::to_string(backend) << " backend)";
}

TEST(AllocGuard, EventCancellationDoesNotAllocate) {
    SKIP_UNDER_SANITIZERS();
    check_cancel_churn_steady_state(sim::EventQueueBackend::kHeap);
}

TEST(AllocGuard, EventCancellationDoesNotAllocateOnWheel) {
    SKIP_UNDER_SANITIZERS();
    check_cancel_churn_steady_state(sim::EventQueueBackend::kWheel);
}

/// Sink that retains each packet briefly (one in flight), like a capture
/// buffer slot, then drops it back to the arena.
struct RetainOneSink final : net::FrameSink {
    net::PacketPtr held;
    std::uint64_t frames = 0;
    void on_frame(const net::PacketPtr& packet) override {
        held = packet;
        ++frames;
    }
};

TEST(AllocGuard, SyntheticPacketPathDoesNotAllocate) {
    SKIP_UNDER_SANITIZERS();
    sim::Simulator sim;
    net::Link link(sim);
    RetainOneSink sink;
    link.attach(sink);

    pktgen::GenConfig config;
    config.count = 2'000;
    config.packet_size = 1500;
    config.full_bytes = false;
    pktgen::Generator gen(sim, link, pktgen::GenNicModel::syskonnect(), config);

    gen.start(sim.now());
    sim.run();  // warmup: arena node freelist and event slab reach steady size
    ASSERT_EQ(sink.frames, 2'000u);

    gen.config().count = 20'000;
    sink.frames = 0;
    gen.start(sim.now());
    const std::uint64_t allocs = allocations_during([&] { sim.run(); });
    EXPECT_EQ(sink.frames, 20'000u);
    EXPECT_EQ(allocs, 0u) << "pktgen -> link -> sink synthetic path allocated";
}

TEST(AllocGuard, BsdBpfFetchLoopDoesNotAllocate) {
    SKIP_UNDER_SANITIZERS();
    namespace capture = capbench::capture;
    namespace hostsim = capbench::hostsim;
    sim::Simulator sim;
    hostsim::Machine machine{
        sim, hostsim::MachineSpec{hostsim::ArchSpec::amd_opteron(), 2, false}, {}};
    // 4096-byte halves: four 1000-byte packets (1020-byte slots) fill a
    // half, the fifth rotates — fetch/recycle runs every few packets.
    capture::BsdBpfDev dev{machine, capture::OsSpec::freebsd_5_4(), 4096, 1515};
    auto arena = capbench::net::PacketArena::create();
    const auto churn = [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
            auto p = arena->make_full(i, 1000, sim::SimTime{});
            dev.plan(p, 0);
            dev.commit(p, 0);
            if (auto batch = dev.fetch(64)) dev.recycle(std::move(batch->packets));
        }
    };
    churn(64);  // warmup: store/hold/spare vectors reach steady capacity
    const std::uint64_t allocs = allocations_during([&] { churn(10'000); });
    EXPECT_EQ(allocs, 0u) << "bsd_bpf deliver/fetch/recycle loop allocated";
    EXPECT_GT(dev.stats().delivered, 0u);
}

TEST(AllocGuard, MmapRingFetchLoopDoesNotAllocate) {
    SKIP_UNDER_SANITIZERS();
    namespace capture = capbench::capture;
    namespace hostsim = capbench::hostsim;
    sim::Simulator sim;
    hostsim::Machine machine{
        sim, hostsim::MachineSpec{hostsim::ArchSpec::amd_opteron(), 2, false}, {}};
    capture::MmapRing ring{machine, capture::OsSpec::linux_2_6_11(), 64 * 2048, 1515};
    auto arena = capbench::net::PacketArena::create();
    const auto churn = [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
            auto p = arena->make_full(i, 1000, sim::SimTime{});
            ring.plan(p, 0);
            ring.commit(p, 0);
            if ((i & 7) == 7) {
                if (auto batch = ring.fetch(8)) ring.recycle(std::move(batch->packets));
            }
        }
    };
    churn(64);  // warmup: ring buffer and batch vector reach steady capacity
    const std::uint64_t allocs = allocations_during([&] { churn(10'000); });
    EXPECT_EQ(allocs, 0u) << "mmap_ring deliver/fetch/recycle loop allocated";
    EXPECT_GT(ring.stats().delivered, 0u);
}

/// Builds the Figure 6.2 testbed (all four sniffers, thesis packet size
/// distribution) and runs one complete 4,000-packet generation pass as
/// warmup, so every slab, freelist, ring and vector reaches its
/// steady-state capacity.  `measured_pass()` then repeats the same
/// generation window on the warmed testbed.
struct Fig62Run {
    capbench::harness::Testbed bed;
    bool done = false;

    explicit Fig62Run(capbench::obs::Observer* observer)
        : bed{[&] {
              capbench::harness::TestbedConfig tb;
              tb.observer = observer;
              tb.suts = capbench::harness::standard_suts();
              tb.gen.count = 4'000;
              // Moderate rate: the capture stacks stay busy (drops included)
              // without pathological migration storms.
              tb.gen.rate_mbps = 400.0;
              tb.gen.size_dist.emplace(capbench::dist::mwn_trace_histogram());
              tb.gen.use_dist = true;
              return tb;
          }()} {
        // Reserve for all passes: the lifecycle observer keys per-packet
        // state by packet id, which keeps counting across restarts.
        if (observer != nullptr) observer->reserve(5 * 4'000);
        bed.start_suts();
        // Four warmup passes: the workload RNG runs on across passes, so
        // high-water marks (verdict backlogs, in-flight packets) keep
        // creeping for a few passes before every capacity plateaus (the
        // whole run is deterministic, so so is the plateau).
        for (int pass = 0; pass < 4; ++pass) {
            run_pass();
            // Let the capture stacks drain the backlog of the pass.
            bed.sim().run(bed.sim().now() + sim::milliseconds(50));
        }
    }

    void run_pass() {
        done = false;
        bed.generator().start(bed.sim().now(), [this] { done = true; });
        while (!done) bed.sim().step();
    }

    void measured_pass() { run_pass(); }
};

TEST(AllocGuard, Fig62SteadyStateDoesNotAllocateWhenTracingDisabled) {
    SKIP_UNDER_SANITIZERS();
    // ISSUE 5 satellite: the observability hooks must be strictly zero-cost
    // when disabled — a full figure-6.2 run's steady state stays
    // allocation-free exactly as it was before the hooks existed.
    Fig62Run run{nullptr};
    const std::uint64_t allocs = allocations_during([&] { run.measured_pass(); });
    EXPECT_EQ(run.bed.generator().stats().packets_sent, 4'000u);
    EXPECT_EQ(allocs, 0u) << "fig 6.2 steady state allocated with tracing disabled";
}

TEST(AllocGuard, Fig62SteadyStateAllocationsBoundedWhenTracingEnabled) {
    SKIP_UNDER_SANITIZERS();
    // With tracing on, the only steady-state allocations allowed are trace
    // chunk growth (one slab per kChunkEvents events) plus a small slack
    // for sample-set growth past the reserved capacity.
    capbench::obs::TraceSink sink;
    capbench::obs::Observer observer{&sink};
    Fig62Run run{&observer};
    const std::uint64_t chunks_before = sink.chunk_count();
    const std::uint64_t allocs = allocations_during([&] { run.measured_pass(); });
    const std::uint64_t chunk_growth = sink.chunk_count() - chunks_before;
    EXPECT_EQ(run.bed.generator().stats().packets_sent, 4'000u);
    EXPECT_GT(sink.event_count(), 0u);
    // Each chunk is one unique_ptr + one array allocation.
    EXPECT_LE(allocs, 2 * chunk_growth + 16)
        << "tracing-enabled steady state allocated beyond trace-buffer growth "
        << "(chunks grew by " << chunk_growth << ")";
}

TEST(AllocGuard, TimeseriesPushesAreChunkGrowthBounded) {
    SKIP_UNDER_SANITIZERS();
    // ISSUE 10: steady-state interval sampling may allocate only on slab
    // growth — each full chunk costs one unique_ptr + one array, plus the
    // occasional pointer-vector doubling.
    capbench::obs::Series series;
    for (int i = 0; i < 64; ++i) series.push(i);  // warmup: first chunk exists
    const std::uint64_t chunks_before = series.chunk_count();
    const std::uint64_t allocs = allocations_during([&] {
        for (int i = 0; i < 100'000; ++i) series.push(i);
    });
    const std::uint64_t chunk_growth = series.chunk_count() - chunks_before;
    EXPECT_GT(chunk_growth, 0u);
    EXPECT_LE(allocs, 2 * chunk_growth + 16)
        << "Series pushes allocated beyond chunk growth (chunks grew by "
        << chunk_growth << ")";
}

/// Fixed-size sink for pcap output: accepts bytes without buffering them,
/// so the stream itself never allocates (a stringstream would grow).
struct NullBuf final : std::streambuf {
    std::uint64_t bytes = 0;
    int_type overflow(int_type ch) override {
        ++bytes;
        return ch;
    }
    std::streamsize xsputn(const char*, std::streamsize n) override {
        bytes += static_cast<std::uint64_t>(n);
        return n;
    }
};

TEST(AllocGuard, PcapWriterSteadyStateDoesNotAllocate) {
    SKIP_UNDER_SANITIZERS();
    // ISSUE 9 satellite: FileWriter must be allocation-free in steady state
    // for both real payloads (streamed straight from the arena buffer) and
    // synthetic packets (pooled zero padding, grown once).
    namespace pcap = capbench::pcap;
    NullBuf buf;
    std::ostream out{&buf};
    pcap::FileWriter writer{out, 1515};
    auto arena = net::PacketArena::create();
    const auto churn = [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
            if ((i & 3) == 0) {
                auto synth = arena->make_synthetic(i, 1500, sim::SimTime{});
                writer.write(*synth, 76, sim::SimTime{static_cast<std::int64_t>(i)});
            } else {
                auto full = arena->make_full(i, 1000, sim::SimTime{});
                writer.write(*full, 1000, sim::SimTime{static_cast<std::int64_t>(i)});
            }
        }
    };
    churn(64);  // warmup: zero pool and arena freelists reach steady size
    const std::uint64_t allocs = allocations_during([&] { churn(10'000); });
    EXPECT_EQ(allocs, 0u) << "pcap FileWriter allocated in steady state";
    EXPECT_GT(buf.bytes, 0u);
}

TEST(AllocGuard, BringRingHandOffDoesNotAllocate) {
    SKIP_UNDER_SANITIZERS();
    // The capture-to-writer hand-off: arena record in, ring push/pop,
    // pcap write out.  The whole cycle must be allocation-free once the
    // ring slots and pools are warm.
    namespace pcap = capbench::pcap;
    namespace load = capbench::load;
    NullBuf buf;
    std::ostream out{&buf};
    pcap::FileWriter writer{out, 1515};
    load::BringRing ring{32};
    auto arena = net::PacketArena::create();
    const auto churn = [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
            ring.push(load::RecordRef{arena->make_full(i, 500, sim::SimTime{}), 500, 576,
                                      sim::SimTime{static_cast<std::int64_t>(i)}});
            if (ring.full()) {
                while (!ring.empty()) {
                    load::RecordRef rec = ring.pop();
                    writer.write(*rec.packet, rec.caplen, rec.timestamp);
                }
            }
        }
    };
    churn(256);  // warmup: ring slots, zero pool, freelists reach steady size
    const std::uint64_t allocs = allocations_during([&] { churn(10'000); });
    EXPECT_EQ(allocs, 0u) << "bring-ring hand-off loop allocated in steady state";
    EXPECT_GT(writer.records_written(), 0u);
}

TEST(AllocGuard, ArenaFullPacketChurnDoesNotAllocate) {
    SKIP_UNDER_SANITIZERS();
    auto arena = net::PacketArena::create();
    std::vector<net::PacketPtr> window(64);
    const auto churn = [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i)
            window[i % window.size()] = arena->make_full(i, 1500, sim::SimTime{});
    };
    churn(256);  // warmup: window fills, freelists reach steady size
    const std::uint64_t allocs = allocations_during([&] { churn(10'000); });
    EXPECT_EQ(allocs, 0u) << "arena full-packet churn allocated in steady state";
    EXPECT_GT(arena->stats().node_reuses, 0u);
    EXPECT_GT(arena->stats().payload_reuses, 0u);
}

}  // namespace
