// PacketArena unit tests: recycling behaviour, payload ownership, arena
// lifetime via the control-block reference, and the oversize fallback.
#include <utility>

#include <gtest/gtest.h>

#include "capbench/net/arena.hpp"

namespace net = capbench::net;
namespace sim = capbench::sim;

namespace {

TEST(PacketArena, SyntheticPacketsCarrySizesOnly) {
    auto arena = net::PacketArena::create();
    net::PacketPtr p = arena->make_synthetic(7, 1500, sim::SimTime{} + sim::Duration{42});
    EXPECT_EQ(p->id(), 7u);
    EXPECT_EQ(p->frame_len(), 1500u);
    EXPECT_FALSE(p->has_bytes());
    EXPECT_TRUE(p->bytes().empty());
}

TEST(PacketArena, FullPacketsExposeWritablePayload) {
    auto arena = net::PacketArena::create();
    std::shared_ptr<net::Packet> p = arena->make_full(1, 64, sim::SimTime{});
    ASSERT_TRUE(p->has_bytes());
    ASSERT_EQ(p->mutable_bytes().size(), 64u);
    for (std::size_t i = 0; i < 64; ++i)
        p->mutable_bytes()[i] = static_cast<std::byte>(i);
    net::PacketPtr published = std::move(p);
    ASSERT_EQ(published->bytes().size(), 64u);
    EXPECT_EQ(published->bytes()[63], static_cast<std::byte>(63));
}

TEST(PacketArena, NodesAndPayloadsAreRecycled) {
    auto arena = net::PacketArena::create();
    { auto p = arena->make_full(0, 1500, sim::SimTime{}); }
    EXPECT_EQ(arena->stats().node_allocs, 1u);
    EXPECT_EQ(arena->stats().payload_allocs, 1u);
    for (int i = 1; i <= 100; ++i) {
        auto p = arena->make_full(static_cast<std::uint64_t>(i), 1500, sim::SimTime{});
    }
    EXPECT_EQ(arena->stats().node_allocs, 1u) << "node freelist missed";
    EXPECT_EQ(arena->stats().payload_allocs, 1u) << "payload freelist missed";
    EXPECT_EQ(arena->stats().node_reuses, 100u);
    EXPECT_EQ(arena->stats().payload_reuses, 100u);
}

TEST(PacketArena, OversizeFramesFallBackToOwnedVector) {
    auto arena = net::PacketArena::create();
    const std::uint32_t big = net::PacketArena::kPayloadCapacity + 1;
    auto p = arena->make_full(0, big, sim::SimTime{});
    EXPECT_EQ(p->frame_len(), big);
    EXPECT_EQ(p->bytes().size(), big);
    EXPECT_EQ(arena->stats().oversize_payloads, 1u);
    EXPECT_EQ(arena->stats().payload_allocs, 0u) << "oversize must bypass the payload pool";
}

TEST(PacketArena, PacketsKeepTheArenaAlive) {
    net::PacketPtr survivor;
    const net::PacketArena* raw = nullptr;
    {
        auto arena = net::PacketArena::create();
        raw = arena.get();
        survivor = arena->make_full(0, 128, sim::SimTime{});
        // Arena handle dropped here; the packet's control block still
        // holds a reference.
    }
    ASSERT_TRUE(survivor->has_bytes());
    EXPECT_EQ(survivor->bytes().size(), 128u);
    EXPECT_NE(raw, nullptr);
    survivor.reset();  // last reference: packet, then payload, then arena die
}

}  // namespace
