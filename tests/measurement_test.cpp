// Integration tests for the testbed and measurement cycle.
#include <gtest/gtest.h>

#include "capbench/harness/experiment.hpp"
#include "capbench/harness/measurement.hpp"
#include "capbench/harness/report.hpp"

#include <sstream>

namespace capbench::harness {
namespace {

RunConfig small_run(double rate) {
    RunConfig cfg;
    cfg.packets = 8'000;
    cfg.rate_mbps = rate;
    return cfg;
}

TEST(StandardSuts, FourSniffersOfFigure24) {
    const auto suts = standard_suts();
    ASSERT_EQ(suts.size(), 4u);
    EXPECT_EQ(suts[0].name, "swan");
    EXPECT_EQ(suts[0].arch->name, "AMD Opteron 244");
    EXPECT_EQ(suts[0].os->name, "Linux 2.6.11");
    EXPECT_EQ(suts[2].name, "moorhen");
    EXPECT_EQ(suts[2].os->name, "FreeBSD 5.4");
    EXPECT_EQ(suts[3].name, "flamingo");
    EXPECT_EQ(suts[3].arch->name, "Intel Xeon 3.06GHz");
    EXPECT_THROW(standard_sut("penguin"), std::invalid_argument);
}

TEST(Measurement, LowRateCapturesEverythingEverywhere) {
    const auto result = run_once(standard_suts(), small_run(100.0));
    EXPECT_EQ(result.generated, 8'000u);
    EXPECT_NEAR(result.offered_mbps, 100.0, 3.0);
    ASSERT_EQ(result.suts.size(), 4u);
    for (const auto& sut : result.suts) {
        EXPECT_GT(sut.capture_avg_pct, 99.0) << sut.name;
        EXPECT_GT(sut.cpu_pct, 0.0) << sut.name;
        EXPECT_LT(sut.cpu_pct, 50.0) << sut.name;
    }
}

TEST(Measurement, GeneratedCountMatchesSwitchCounters) {
    const auto result = run_once({standard_sut("moorhen")}, small_run(300.0));
    EXPECT_EQ(result.generated, 8'000u);
}

TEST(Measurement, CaptureRateNeverExceedsHundredPercent) {
    for (const double rate : {50.0, 500.0, 0.0}) {
        const auto result = run_once(standard_suts(), small_run(rate));
        for (const auto& sut : result.suts) {
            for (const double pct : sut.per_app_capture_pct) {
                EXPECT_GE(pct, 0.0);
                EXPECT_LE(pct, 100.0);
            }
            EXPECT_LE(sut.capture_worst_pct, sut.capture_avg_pct);
            EXPECT_LE(sut.capture_avg_pct, sut.capture_best_pct);
        }
    }
}

TEST(Measurement, DeterministicForSameSeed) {
    const auto a = run_once(standard_suts(), small_run(400.0));
    const auto b = run_once(standard_suts(), small_run(400.0));
    for (std::size_t i = 0; i < a.suts.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.suts[i].capture_avg_pct, b.suts[i].capture_avg_pct);
        EXPECT_DOUBLE_EQ(a.suts[i].cpu_pct, b.suts[i].cpu_pct);
    }
}

TEST(Measurement, RepetitionsAverage) {
    const auto result = run_repeated({standard_sut("moorhen")}, small_run(200.0), 3);
    EXPECT_GT(result.suts[0].capture_avg_pct, 99.0);
    EXPECT_THROW(run_repeated({standard_sut("moorhen")}, small_run(200.0), 0),
                 std::invalid_argument);
}

TEST(Measurement, MultiAppProducesPerAppRates) {
    auto sut = standard_sut("moorhen");
    sut.app_count = 3;
    const auto result = run_once({sut}, small_run(100.0));
    EXPECT_EQ(result.suts[0].per_app_capture_pct.size(), 3u);
    // At low rate every application captures everything.
    for (const double pct : result.suts[0].per_app_capture_pct) EXPECT_GT(pct, 99.0);
}

TEST(Measurement, FilterExperimentRunsRealBpf) {
    auto suts = standard_suts();
    for (auto& sut : suts) sut.filter_expression = fig_6_5_filter_expression();
    RunConfig cfg = small_run(100.0);
    cfg.full_bytes = true;
    const auto result = run_once(suts, cfg);
    // The Figure 6.5 filter accepts every generated packet.
    for (const auto& sut : result.suts) EXPECT_GT(sut.capture_avg_pct, 99.0) << sut.name;
}

TEST(Measurement, RejectingFilterCapturesNothing) {
    auto sut = standard_sut("swan");
    sut.filter_expression = "tcp";  // generated traffic is UDP
    RunConfig cfg = small_run(100.0);
    cfg.full_bytes = true;
    const auto result = run_once({sut}, cfg);
    EXPECT_EQ(result.suts[0].capture_avg_pct, 0.0);
}

TEST(Measurement, MmapRequiresLinux) {
    auto sut = standard_sut("moorhen");
    sut.stack = StackKind::kMmap;
    EXPECT_THROW(run_once({sut}, small_run(100.0)), std::invalid_argument);
}

TEST(Measurement, HyperthreadingRequiresIntel) {
    auto sut = standard_sut("swan");
    sut.hyperthreading = true;
    EXPECT_THROW(run_once({sut}, small_run(100.0)), std::invalid_argument);
}

TEST(Measurement, FixedSizeWorkloadSupported) {
    RunConfig cfg = small_run(200.0);
    cfg.use_mwn_dist = false;
    cfg.fixed_size = 1500;
    const auto result = run_once({standard_sut("moorhen")}, cfg);
    EXPECT_GT(result.suts[0].capture_avg_pct, 99.0);
}

TEST(Experiment, RateGridMatchesThesisPlots) {
    const auto rates = default_rate_grid();
    ASSERT_EQ(rates.size(), 19u);
    EXPECT_EQ(rates.front(), 50.0);
    EXPECT_EQ(rates.back(), 950.0);
}

TEST(Experiment, BufferOverridesApplyPerOsFamily) {
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    EXPECT_EQ(suts[0].buffer_bytes, 128ull * 1024 * 1024);  // swan (Linux)
    EXPECT_EQ(suts[2].buffer_bytes, 10ull * 1024 * 1024);   // moorhen (FreeBSD)
    apply_single_cpu(suts);
    for (const auto& sut : suts) EXPECT_EQ(sut.cores, 1);
}

TEST(Experiment, Fig65FilterExpressionCompilesTo39Terms) {
    const auto expr = fig_6_5_filter_expression();
    // 2 ether terms + not tcp + 19 sources + 19 destinations.
    std::size_t ands = 0;
    for (std::size_t pos = expr.find(" and "); pos != std::string::npos;
         pos = expr.find(" and ", pos + 1))
        ++ands;
    EXPECT_EQ(ands, 40u);
    EXPECT_NE(expr.find("not tcp"), std::string::npos);
    EXPECT_NE(expr.find("not ip src 10.11.12.13"), std::string::npos);
    EXPECT_NE(expr.find("not ip dst 190.99.12.31"), std::string::npos);
}

TEST(Report, SweepTableContainsAllSeries) {
    std::vector<SweepRow> rows;
    rows.push_back(SweepRow{100.0, run_once(standard_suts(), small_run(100.0))});
    std::ostringstream out;
    print_sweep(out, "Mbit/s", rows);
    const std::string text = out.str();
    for (const auto* name : {"swan", "snipe", "moorhen", "flamingo"}) {
        EXPECT_NE(text.find(std::string(name) + " cap%"), std::string::npos);
        EXPECT_NE(text.find(std::string(name) + " cpu%"), std::string::npos);
    }
    EXPECT_NE(text.find("100"), std::string::npos);
}

TEST(Report, InventoryListsConfiguration) {
    std::ostringstream out;
    print_sut_inventory(out, standard_suts());
    EXPECT_NE(out.str().find("AMD Opteron 244"), std::string::npos);
    EXPECT_NE(out.str().find("FreeBSD 5.4"), std::string::npos);
}

}  // namespace
}  // namespace capbench::harness
