// Tests for MiniDeflate, the disk model, the FIFO pipe and app loads.
#include <gtest/gtest.h>

#include "capbench/load/disk.hpp"
#include "capbench/load/loads.hpp"
#include "capbench/load/minideflate.hpp"
#include "capbench/sim/random.hpp"

namespace capbench::load {
namespace {

using hostsim::ArchSpec;
using hostsim::Machine;
using hostsim::MachineSpec;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
    sim::Rng rng{seed};
    std::vector<std::byte> out(n);
    for (auto& b : out) b = static_cast<std::byte>(rng.next_below(256));
    return out;
}

std::vector<std::byte> compressible_bytes(std::size_t n) {
    std::vector<std::byte> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::byte>("abcabcab"[i % 8]);
    return out;
}

TEST(MiniDeflate, RoundTripsRandomData) {
    const auto input = random_bytes(10'000, 7);
    for (const int level : {0, 1, 3, 6, 9}) {
        const auto compressed = MiniDeflate{level}.compress(input);
        const auto restored = MiniDeflate::decompress(compressed.output);
        EXPECT_EQ(restored, input) << "level " << level;
    }
}

TEST(MiniDeflate, RoundTripsCompressibleData) {
    const auto input = compressible_bytes(50'000);
    for (const int level : {1, 3, 9}) {
        const auto result = MiniDeflate{level}.compress(input);
        EXPECT_EQ(MiniDeflate::decompress(result.output), input);
        // Repetitive data must actually compress.
        EXPECT_LT(result.ratio(input.size()), 0.25) << "level " << level;
    }
}

TEST(MiniDeflate, RoundTripsEdgeCases) {
    for (const int level : {0, 5, 9}) {
        const MiniDeflate codec{level};
        EXPECT_TRUE(MiniDeflate::decompress(codec.compress({}).output).empty());
        const auto tiny = random_bytes(2, 3);
        EXPECT_EQ(MiniDeflate::decompress(codec.compress(tiny).output), tiny);
        // All-identical bytes: long match chains.
        std::vector<std::byte> same(5'000, std::byte{0x42});
        EXPECT_EQ(MiniDeflate::decompress(codec.compress(same).output), same);
    }
}

std::vector<std::byte> mutated_repeat_bytes(std::size_t n, std::uint64_t seed) {
    // Repeated template with sparse mutations: matches exist but stay short
    // of the maximum, so deeper search pays off.
    sim::Rng rng{seed};
    std::vector<std::byte> tmpl(64);
    for (auto& b : tmpl) b = static_cast<std::byte>(rng.next_below(256));
    std::vector<std::byte> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = rng.next_below(24) == 0 ? static_cast<std::byte>(rng.next_below(256))
                                         : tmpl[i % 64];
    return out;
}

TEST(MiniDeflate, HigherLevelsSearchMoreAndCompressBetter) {
    const auto input = mutated_repeat_bytes(40'000, 21);
    const auto low = MiniDeflate{1}.compress(input);
    const auto high = MiniDeflate{9}.compress(input);
    EXPECT_GT(low.output.size(), high.output.size());
    EXPECT_LT(low.search_steps * 4, high.search_steps);
    EXPECT_EQ(MiniDeflate::decompress(low.output), input);
    EXPECT_EQ(MiniDeflate::decompress(high.output), input);
}

TEST(MiniDeflate, LevelZeroStores) {
    const auto input = random_bytes(1'000, 1);
    const auto result = MiniDeflate{0}.compress(input);
    EXPECT_EQ(result.search_steps, 0u);
    EXPECT_EQ(result.matches, 0u);
    // Stored mode adds only token framing.
    EXPECT_LT(result.output.size(), input.size() + 2 * (input.size() / 256 + 2));
}

TEST(MiniDeflate, RejectsBadLevelAndCorruptStream) {
    EXPECT_THROW(MiniDeflate{-1}, std::invalid_argument);
    EXPECT_THROW(MiniDeflate{10}, std::invalid_argument);
    EXPECT_THROW(MiniDeflate::decompress(random_bytes(3, 5)), std::runtime_error);
    // Match with impossible distance.
    std::vector<std::byte> bad{std::byte{0x01}, std::byte{0x00}, std::byte{0xFF},
                               std::byte{0xFF}};
    EXPECT_THROW(MiniDeflate::decompress(bad), std::runtime_error);
}

TEST(CompressionCost, MonotoneInLevel) {
    double last = 0.0;
    for (int level = 0; level <= 9; ++level) {
        const double cpb = compression_cycles_per_byte(level);
        EXPECT_GE(cpb, last) << "level " << level;
        last = cpb;
    }
    // Order-of-magnitude sanity: level 3 in the tens of cycles/byte (zlib
    // class), level 9 several times that.
    EXPECT_GT(compression_cycles_per_byte(3), 15.0);
    EXPECT_GT(compression_cycles_per_byte(9), 2.0 * compression_cycles_per_byte(3));
    EXPECT_THROW(compression_cycles_per_byte(11), std::invalid_argument);
}

TEST(AppLoad, WorkScalesWithConfiguration) {
    const AppLoad none{};
    EXPECT_EQ(per_packet_load_work(none, 645).cycles, 0.0);

    AppLoad copies;
    copies.memcpy_count = 50;
    const auto w50 = per_packet_load_work(copies, 645);
    EXPECT_DOUBLE_EQ(w50.copy_bytes, 50.0 * 645.0);
    copies.memcpy_count = 25;
    EXPECT_DOUBLE_EQ(per_packet_load_work(copies, 645).copy_bytes, 25.0 * 645.0);

    AppLoad gz;
    gz.compress_level = 3;
    const auto wz = per_packet_load_work(gz, 645);
    EXPECT_NEAR(wz.cycles, compression_cycles_per_byte(3) * 645.0 + 350.0, 1.0);

    AppLoad pipe;
    pipe.pipe_to_gzip = true;
    EXPECT_DOUBLE_EQ(per_packet_load_work(pipe, 645).copy_bytes, 645.0);
}

struct Fixture {
    sim::Simulator sim;
    Machine machine{sim, MachineSpec{ArchSpec::amd_opteron(), 2, false}, {}};
};

class Waiter : public hostsim::Thread {
public:
    Waiter() : hostsim::Thread("waiter") {}
    void main() override {
        block([this] { woken = true; });
    }
    bool woken = false;
};

TEST(DiskModel, AcceptsUntilQueueFullThenBlocksWriter) {
    Fixture f;
    DiskSpec spec{80.0, 1.0, 1 << 20};  // 1 MB queue
    DiskModel disk{f.machine, spec};
    auto writer = std::make_shared<Waiter>();
    f.machine.spawn(writer);
    f.sim.run();
    EXPECT_TRUE(disk.write(512 * 1024, *writer));
    EXPECT_TRUE(disk.write(400 * 1024, *writer));
    EXPECT_FALSE(disk.write(512 * 1024, *writer));  // would exceed 1 MB
    // Draining at 80 MB/s frees space quickly; the writer is woken and its
    // bytes were accepted.
    f.sim.run(f.sim.now() + sim::milliseconds(50));
    EXPECT_TRUE(writer->woken);
    EXPECT_GT(disk.bytes_written(), 0u);
}

TEST(DiskModel, DrainsEverythingEventually) {
    Fixture f;
    DiskModel disk{f.machine, DiskSpec{10.0, 1.0, 8 << 20}};
    auto writer = std::make_shared<Waiter>();
    f.machine.spawn(writer);
    f.sim.run();
    EXPECT_TRUE(disk.write(5 << 20, *writer));
    f.sim.run(f.sim.now() + sim::seconds(2));
    EXPECT_EQ(disk.queued(), 0u);
    EXPECT_EQ(disk.bytes_written(), 5u << 20);
}

TEST(DiskModel, OversizedWriteIsChunkAdmittedWithoutLivelock) {
    // Regression: a write larger than the whole write-back queue used to
    // leave its waiter unadmittable forever while the drain timer kept
    // rescheduling every 1 ms — the simulation never quiesced and the
    // writer never woke.  Chunk admission drains it through the queue.
    Fixture f;
    DiskModel disk{f.machine, DiskSpec{80.0, 1.0, 1 << 20}};  // 1 MB queue
    auto writer = std::make_shared<Waiter>();
    f.machine.spawn(writer);
    f.sim.run();
    EXPECT_FALSE(disk.write(2 << 20, *writer));  // 2 MB > the 1 MB queue
    f.sim.run(f.sim.now() + sim::seconds(5));
    EXPECT_TRUE(writer->woken);
    EXPECT_EQ(disk.bytes_written(), 2u << 20);
    EXPECT_EQ(disk.queued(), 0u);
    // No progress possible once everything drained: the drain timer must
    // have stopped rescheduling itself.
    EXPECT_TRUE(f.sim.queue().empty());
}

TEST(DiskModel, FractionalThroughputIsNotTruncatedAway) {
    // Regression: per-ms drain capacity was truncated to whole bytes, so a
    // disk slower than 1000 bytes/s (0.4 bytes per 1 ms step here) rounded
    // to zero and never wrote anything at all.
    Fixture f;
    DiskModel disk{f.machine, DiskSpec{0.0004, 1.0, 8 << 20}};  // 400 B/s
    auto writer = std::make_shared<Waiter>();
    f.machine.spawn(writer);
    f.sim.run();
    EXPECT_TRUE(disk.write(1000, *writer));
    f.sim.run(f.sim.now() + sim::seconds(5));
    EXPECT_EQ(disk.bytes_written(), 1000u);
    EXPECT_EQ(disk.queued(), 0u);
}

TEST(DiskModel, LongRunThroughputConvergesToSpec) {
    // A non-integral per-ms rate (93.3 bytes/ms) must average out to the
    // spec over a long run instead of losing the fraction every step.
    Fixture f;
    const double mbps = 0.0933;  // 93300 bytes/s
    DiskModel disk{f.machine, DiskSpec{mbps, 1.0, 8 << 20}};
    auto writer = std::make_shared<Waiter>();
    f.machine.spawn(writer);
    f.sim.run();
    const std::uint64_t total = 933'000;  // exactly 10 s of drain at spec
    EXPECT_TRUE(disk.write(total, *writer));
    f.sim.run(f.sim.now() + sim::seconds(10));
    const double expected = mbps * 1e6 * 10.0;
    EXPECT_NEAR(static_cast<double>(disk.bytes_written()), expected,
                expected * 0.001);
}

TEST(DiskModel, WriteWorkChargesCpu) {
    Fixture f;
    DiskModel disk{f.machine, DiskSpec{80.0, 1.5, 8 << 20}};
    const auto w = disk.write_work(1000);
    EXPECT_DOUBLE_EQ(w.cycles, 1500.0);
    EXPECT_DOUBLE_EQ(w.copy_bytes, 1000.0);
}

TEST(DiskSpecs, AllSnifferDisksBelowLineSpeed) {
    // Line speed of frame data is ~119 MB/s; Figure 6.13's finding is that
    // no sniffer's RAID reaches it.
    for (const auto* name : {"swan", "snipe", "moorhen", "flamingo"}) {
        EXPECT_LT(disk_spec_for(name).write_mbytes_per_sec, 119.0) << name;
        EXPECT_GT(disk_spec_for(name).write_mbytes_per_sec, 30.0) << name;
    }
}

TEST(FifoPipe, WriteReadAndBackpressure) {
    Fixture f;
    FifoPipe pipe{f.machine, 1000};
    auto writer = std::make_shared<Waiter>();
    auto reader = std::make_shared<Waiter>();
    f.machine.spawn(writer);
    f.machine.spawn(reader);
    f.sim.run();

    EXPECT_TRUE(pipe.write(800, *writer));
    EXPECT_FALSE(pipe.write(300, *writer));  // full: writer must block
    EXPECT_EQ(pipe.read(500, *reader), 500u);
    // The blocked writer's bytes were admitted on read; it gets woken.
    f.sim.run();
    EXPECT_TRUE(writer->woken);
    EXPECT_EQ(pipe.buffered(), 600u);  // 300 remaining + 300 admitted
}

TEST(FifoPipe, ReaderBlocksOnEmpty) {
    Fixture f;
    FifoPipe pipe{f.machine, 1000};
    auto reader = std::make_shared<Waiter>();
    auto writer = std::make_shared<Waiter>();
    f.machine.spawn(reader);
    f.machine.spawn(writer);
    f.sim.run();
    EXPECT_EQ(pipe.read(100, *reader), 0u);  // registers the reader
    EXPECT_TRUE(pipe.write(50, *writer));
    f.sim.run();
    EXPECT_TRUE(reader->woken);
}

TEST(GzipThread, DrainsPipeAndAccountsCpu) {
    Fixture f;
    FifoPipe pipe{f.machine, 64 * 1024};
    auto gzip = std::make_shared<GzipThread>(pipe, 3);
    f.machine.spawn(gzip);
    auto writer = std::make_shared<Waiter>();
    f.machine.spawn(writer);
    f.sim.run();
    EXPECT_TRUE(pipe.write(32 * 1024, *writer));
    f.sim.run(f.sim.now() + sim::seconds(1));
    EXPECT_EQ(gzip->bytes_compressed(), 32u * 1024);
    EXPECT_EQ(pipe.buffered(), 0u);
    EXPECT_GT(f.machine.total_busy().ns(), 0);
}

}  // namespace
}  // namespace capbench::load
