// Tests for the CAPBENCH_* environment knobs: garbage, zero and negative
// values must fail loudly instead of silently running the wrong
// experiment (the old code fell back to defaults on unparsable input).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "capbench/harness/experiment.hpp"
#include "capbench/sim/event_queue.hpp"

namespace capbench::harness {
namespace {

/// Sets an environment variable for one test and restores the previous
/// value afterwards.
class ScopedEnv {
public:
    ScopedEnv(std::string name, const char* value) : name_(std::move(name)) {
        if (const char* old = std::getenv(name_.c_str())) {
            had_old_ = true;
            old_ = old;
        }
        if (value == nullptr)
            ::unsetenv(name_.c_str());
        else
            ::setenv(name_.c_str(), value, 1);
    }
    ~ScopedEnv() {
        if (had_old_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

private:
    std::string name_;
    bool had_old_ = false;
    std::string old_;
};

TEST(EnvKnobs, DefaultsWhenUnset) {
    const ScopedEnv packets{"CAPBENCH_PACKETS", nullptr};
    const ScopedEnv reps{"CAPBENCH_REPS", nullptr};
    const ScopedEnv jobs{"CAPBENCH_JOBS", nullptr};
    EXPECT_EQ(packets_per_run(), 300'000u);
    EXPECT_EQ(default_reps(), 1);
    EXPECT_EQ(default_jobs(), 1);
}

TEST(EnvKnobs, ValidValuesParse) {
    const ScopedEnv packets{"CAPBENCH_PACKETS", "12345"};
    const ScopedEnv reps{"CAPBENCH_REPS", "7"};
    const ScopedEnv jobs{"CAPBENCH_JOBS", "16"};
    EXPECT_EQ(packets_per_run(), 12'345u);
    EXPECT_EQ(default_reps(), 7);
    EXPECT_EQ(default_jobs(), 16);
}

TEST(EnvKnobs, GarbageIsRejectedWithTheKnobName) {
    const ScopedEnv env{"CAPBENCH_PACKETS", "lots"};
    try {
        (void)packets_per_run();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("CAPBENCH_PACKETS"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("lots"), std::string::npos);
    }
}

TEST(EnvKnobs, ZeroIsRejected) {
    const ScopedEnv env{"CAPBENCH_REPS", "0"};
    EXPECT_THROW((void)default_reps(), std::runtime_error);
}

TEST(EnvKnobs, NegativeIsRejected) {
    const ScopedEnv env{"CAPBENCH_JOBS", "-4"};
    EXPECT_THROW((void)default_jobs(), std::runtime_error);
}

TEST(EnvKnobs, TrailingGarbageIsRejected) {
    const ScopedEnv env{"CAPBENCH_PACKETS", "100k"};
    EXPECT_THROW((void)packets_per_run(), std::runtime_error);
}

TEST(EnvKnobs, EmptyValueIsRejected) {
    const ScopedEnv env{"CAPBENCH_REPS", ""};
    EXPECT_THROW((void)default_reps(), std::runtime_error);
}

TEST(EnvKnobs, OutOfRangeIsRejected) {
    const ScopedEnv jobs{"CAPBENCH_JOBS", "513"};  // cap: 512 workers
    EXPECT_THROW((void)default_jobs(), std::runtime_error);
    const ScopedEnv reps{"CAPBENCH_REPS", "99999999999999999999"};
    EXPECT_THROW((void)default_reps(), std::runtime_error);
}

TEST(EnvKnobs, LeadingPlusAndWhitespaceFormsAreStrict) {
    // strtoull would skip leading whitespace; we accept '+' (a digits
    // prefix strtoull handles) but reject embedded spaces.
    const ScopedEnv spaced{"CAPBENCH_PACKETS", " 500"};
    EXPECT_THROW((void)packets_per_run(), std::runtime_error);
}

TEST(EnvKnobs, QueuesDefaultsToSingleRing) {
    const ScopedEnv env{"CAPBENCH_QUEUES", nullptr};
    EXPECT_EQ(default_queues(), 1);
}

TEST(EnvKnobs, QueuesParsesAndCapsAt16) {
    {
        const ScopedEnv env{"CAPBENCH_QUEUES", "8"};
        EXPECT_EQ(default_queues(), 8);
    }
    {
        const ScopedEnv env{"CAPBENCH_QUEUES", "17"};
        EXPECT_THROW((void)default_queues(), std::runtime_error);
    }
}

TEST(EnvKnobs, QueuesRejectsGarbageZeroNegativeEmpty) {
    {
        const ScopedEnv env{"CAPBENCH_QUEUES", "many"};
        EXPECT_THROW((void)default_queues(), std::runtime_error);
    }
    {
        const ScopedEnv env{"CAPBENCH_QUEUES", "0"};
        EXPECT_THROW((void)default_queues(), std::runtime_error);
    }
    {
        const ScopedEnv env{"CAPBENCH_QUEUES", "-2"};
        EXPECT_THROW((void)default_queues(), std::runtime_error);
    }
    {
        const ScopedEnv env{"CAPBENCH_QUEUES", ""};
        EXPECT_THROW((void)default_queues(), std::runtime_error);
    }
}

TEST(EnvKnobs, SampleIntervalDefaultsToZero) {
    const ScopedEnv env{"CAPBENCH_SAMPLE_INTERVAL", nullptr};
    EXPECT_EQ(sample_interval_from_env().ns(), 0);
}

TEST(EnvKnobs, SampleIntervalParsesMicroseconds) {
    const ScopedEnv env{"CAPBENCH_SAMPLE_INTERVAL", "250"};
    EXPECT_EQ(sample_interval_from_env().ns(), 250'000);
}

TEST(EnvKnobs, SampleIntervalRejectsGarbageZeroNegativeEmptyOverflow) {
    for (const char* bad : {"soon", "0", "-5", "", "1ms", " 10", "99999999999999999999",
                            "3600000001"}) {  // last: above the one-hour cap
        const ScopedEnv env{"CAPBENCH_SAMPLE_INTERVAL", bad};
        EXPECT_THROW((void)sample_interval_from_env(), std::runtime_error) << bad;
    }
}

TEST(EnvKnobs, SampleIntervalErrorNamesTheKnob) {
    const ScopedEnv env{"CAPBENCH_SAMPLE_INTERVAL", "fast"};
    try {
        (void)sample_interval_from_env();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("CAPBENCH_SAMPLE_INTERVAL"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("fast"), std::string::npos);
    }
}

TEST(EnvKnobs, AffinityDefaultsToEmpty) {
    const ScopedEnv env{"CAPBENCH_AFFINITY", nullptr};
    EXPECT_TRUE(affinity_from_env().empty());
}

TEST(EnvKnobs, AffinityParsesCommaSeparatedCpusIncludingZero) {
    const ScopedEnv env{"CAPBENCH_AFFINITY", "0,1,1,3"};
    EXPECT_EQ(affinity_from_env(), (std::vector<int>{0, 1, 1, 3}));
}

TEST(EnvKnobs, AffinitySingleEntryParses) {
    const ScopedEnv env{"CAPBENCH_AFFINITY", "0"};
    EXPECT_EQ(affinity_from_env(), (std::vector<int>{0}));
}

TEST(EnvKnobs, AffinityRejectsBadInputWithTheKnobName) {
    const ScopedEnv env{"CAPBENCH_AFFINITY", "0,x"};
    try {
        (void)affinity_from_env();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("CAPBENCH_AFFINITY"), std::string::npos);
    }
}

TEST(EnvKnobs, AffinityRejectsEmptyItemsNegativesAndRange) {
    {
        const ScopedEnv env{"CAPBENCH_AFFINITY", ""};
        EXPECT_THROW((void)affinity_from_env(), std::runtime_error);
    }
    {
        const ScopedEnv env{"CAPBENCH_AFFINITY", "0,,1"};
        EXPECT_THROW((void)affinity_from_env(), std::runtime_error);
    }
    {
        const ScopedEnv env{"CAPBENCH_AFFINITY", "1,"};  // trailing comma = empty item
        EXPECT_THROW((void)affinity_from_env(), std::runtime_error);
    }
    {
        const ScopedEnv env{"CAPBENCH_AFFINITY", "-1"};
        EXPECT_THROW((void)affinity_from_env(), std::runtime_error);
    }
    {
        const ScopedEnv env{"CAPBENCH_AFFINITY", "256"};
        EXPECT_THROW((void)affinity_from_env(), std::runtime_error);
    }
}

TEST(EnvKnobs, EventQueueBackendDefaultsToHeap) {
    const ScopedEnv env{"CAPBENCH_EVENT_QUEUE", nullptr};
    EXPECT_EQ(sim::event_queue_backend_from_env(), sim::EventQueueBackend::kHeap);
}

TEST(EnvKnobs, EventQueueBackendParsesBothNames) {
    {
        const ScopedEnv env{"CAPBENCH_EVENT_QUEUE", "heap"};
        EXPECT_EQ(sim::event_queue_backend_from_env(), sim::EventQueueBackend::kHeap);
    }
    {
        const ScopedEnv env{"CAPBENCH_EVENT_QUEUE", "wheel"};
        EXPECT_EQ(sim::event_queue_backend_from_env(), sim::EventQueueBackend::kWheel);
    }
}

TEST(EnvKnobs, EventQueueBackendRejectsGarbageWithTheValue) {
    const ScopedEnv env{"CAPBENCH_EVENT_QUEUE", "calendar"};
    try {
        (void)sim::event_queue_backend_from_env();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("CAPBENCH_EVENT_QUEUE"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("calendar"), std::string::npos);
    }
}

TEST(EnvKnobs, EventQueueBackendRejectsEmptyAndWrongCase) {
    {
        const ScopedEnv env{"CAPBENCH_EVENT_QUEUE", ""};
        EXPECT_THROW((void)sim::event_queue_backend_from_env(), std::runtime_error);
    }
    {
        const ScopedEnv env{"CAPBENCH_EVENT_QUEUE", "Wheel"};
        EXPECT_THROW((void)sim::event_queue_backend_from_env(), std::runtime_error);
    }
}

}  // namespace
}  // namespace capbench::harness
