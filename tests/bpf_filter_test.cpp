// Tests for the tcpdump-dialect filter compiler: lexer, parser, code
// generation, and end-to-end semantics against constructed packets.
#include <gtest/gtest.h>

#include <vector>

#include "capbench/bpf/asm_text.hpp"
#include "capbench/bpf/filter/codegen.hpp"
#include "capbench/bpf/filter/lexer.hpp"
#include "capbench/bpf/filter/parser.hpp"
#include "capbench/bpf/validator.hpp"
#include "capbench/bpf/vm.hpp"
#include "capbench/net/headers.hpp"

namespace capbench::bpf::filter {
namespace {

using net::Ipv4Addr;
using net::MacAddr;

/// Builds an Ethernet/IPv4/transport frame for semantic tests.
struct FrameBuilder {
    MacAddr src_mac = MacAddr::parse("00:00:00:00:00:01");
    MacAddr dst_mac = MacAddr::parse("00:0e:0c:01:02:03");
    std::uint16_t ether_type = net::kEtherTypeIpv4;
    std::uint8_t protocol = net::kIpProtoUdp;
    Ipv4Addr src_ip = Ipv4Addr::parse("192.168.10.100");
    Ipv4Addr dst_ip = Ipv4Addr::parse("192.168.10.12");
    std::uint16_t src_port = 1234;
    std::uint16_t dst_port = 80;
    std::uint16_t frag = 0;
    std::uint32_t payload = 20;

    [[nodiscard]] std::vector<std::byte> build() const {
        std::vector<std::byte> frame(net::kEthernetHeaderLen + net::kIpv4MinHeaderLen +
                                     net::kUdpHeaderLen + payload);
        net::EthernetHeader eth{dst_mac, src_mac, ether_type};
        eth.encode(frame);
        net::Ipv4Header ip;
        ip.total_length =
            static_cast<std::uint16_t>(frame.size() - net::kEthernetHeaderLen);
        ip.protocol = protocol;
        ip.flags_fragment = frag;
        ip.src = src_ip;
        ip.dst = dst_ip;
        ip.encode(std::span{frame}.subspan(net::kEthernetHeaderLen));
        net::UdpHeader udp{src_port, dst_port,
                           static_cast<std::uint16_t>(net::kUdpHeaderLen + payload), 0};
        udp.encode(
            std::span{frame}.subspan(net::kEthernetHeaderLen + net::kIpv4MinHeaderLen));
        return frame;
    }
};

bool matches(const std::string& expr, const std::vector<std::byte>& frame) {
    const auto prog = compile_filter(expr);
    validate_or_throw(prog);
    return Vm::run(prog, frame).accept_len > 0;
}

// ---- lexer -------------------------------------------------------------------

TEST(Lexer, TokenizesKeywordsAndNumbers) {
    const auto tokens = tokenize("ip and port 80");
    ASSERT_EQ(tokens.size(), 5u);  // ip and port 80 END
    EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
    EXPECT_EQ(tokens[0].text, "ip");
    EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
    EXPECT_EQ(tokens[3].number, 80u);
}

TEST(Lexer, DistinguishesMacFromBracketIndices) {
    const auto mac = tokenize("00:00:00:00:00:02");
    EXPECT_EQ(mac[0].kind, TokenKind::kMac);
    const auto idx = tokenize("ether[6:4]");
    ASSERT_GE(idx.size(), 6u);
    EXPECT_EQ(idx[0].kind, TokenKind::kIdent);
    EXPECT_EQ(idx[1].kind, TokenKind::kLBracket);
    EXPECT_EQ(idx[2].kind, TokenKind::kNumber);
    EXPECT_EQ(idx[3].kind, TokenKind::kColon);
    EXPECT_EQ(idx[4].kind, TokenKind::kNumber);
    EXPECT_EQ(idx[5].kind, TokenKind::kRBracket);
}

TEST(Lexer, HexNumbersAndIpv4) {
    const auto hex = tokenize("0x00000800");
    EXPECT_EQ(hex[0].kind, TokenKind::kNumber);
    EXPECT_EQ(hex[0].number, 0x800u);
    const auto ip = tokenize("10.11.12.13");
    EXPECT_EQ(ip[0].kind, TokenKind::kIpv4);
    EXPECT_EQ(ip[0].text, "10.11.12.13");
}

TEST(Lexer, OperatorsAndAliases) {
    const auto tokens = tokenize("!= >= <= > < = == && ||");
    EXPECT_EQ(tokens[0].kind, TokenKind::kNeq);
    EXPECT_EQ(tokens[1].kind, TokenKind::kGe);
    EXPECT_EQ(tokens[2].kind, TokenKind::kLe);
    EXPECT_EQ(tokens[3].kind, TokenKind::kGt);
    EXPECT_EQ(tokens[4].kind, TokenKind::kLt);
    EXPECT_EQ(tokens[5].kind, TokenKind::kEq);
    EXPECT_EQ(tokens[6].kind, TokenKind::kEq);
    EXPECT_EQ(tokens[7].text, "and");
    EXPECT_EQ(tokens[8].text, "or");
}

TEST(Lexer, RejectsUnknownCharacters) {
    EXPECT_THROW(tokenize("ip ~ udp"), FilterError);
    EXPECT_THROW(tokenize("0x"), FilterError);
    EXPECT_THROW(tokenize("1.2.3"), FilterError);
}

// ---- parser ------------------------------------------------------------------

TEST(Parser, EmptyExpressionMeansAcceptAll) {
    EXPECT_EQ(parse(""), nullptr);
    EXPECT_EQ(parse("   "), nullptr);
    const auto prog = compile_filter("");
    EXPECT_EQ(Vm::run(prog, {}).accept_len, 65535u);
}

TEST(Parser, RejectsSyntaxErrors) {
    EXPECT_THROW(compile_filter("ip and"), FilterError);
    EXPECT_THROW(compile_filter("port"), FilterError);
    EXPECT_THROW(compile_filter("(ip"), FilterError);
    EXPECT_THROW(compile_filter("host"), FilterError);
    EXPECT_THROW(compile_filter("frobnicate"), FilterError);
    EXPECT_THROW(compile_filter("ip src host"), FilterError);
    EXPECT_THROW(compile_filter("ether[0:3] = 1"), FilterError);
    EXPECT_THROW(compile_filter("ip ip"), FilterError);
}

// ---- semantics ---------------------------------------------------------------

TEST(Semantics, ProtocolPrimitives) {
    FrameBuilder udp;
    const auto udp_frame = udp.build();
    EXPECT_TRUE(matches("ip", udp_frame));
    EXPECT_TRUE(matches("udp", udp_frame));
    EXPECT_FALSE(matches("tcp", udp_frame));
    EXPECT_FALSE(matches("icmp", udp_frame));
    EXPECT_FALSE(matches("arp", udp_frame));

    FrameBuilder tcp;
    tcp.protocol = net::kIpProtoTcp;
    const auto tcp_frame = tcp.build();
    EXPECT_TRUE(matches("tcp", tcp_frame));
    EXPECT_TRUE(matches("not udp", tcp_frame));

    FrameBuilder arp;
    arp.ether_type = net::kEtherTypeArp;
    EXPECT_TRUE(matches("arp", arp.build()));
    EXPECT_FALSE(matches("ip", arp.build()));

    FrameBuilder rarp;
    rarp.ether_type = net::kEtherTypeRarp;
    EXPECT_TRUE(matches("rarp", rarp.build()));
}

TEST(Semantics, HostDirections) {
    FrameBuilder f;
    const auto frame = f.build();
    EXPECT_TRUE(matches("src host 192.168.10.100", frame));
    EXPECT_FALSE(matches("dst host 192.168.10.100", frame));
    EXPECT_TRUE(matches("dst host 192.168.10.12", frame));
    EXPECT_TRUE(matches("host 192.168.10.100", frame));
    EXPECT_TRUE(matches("host 192.168.10.12", frame));
    EXPECT_FALSE(matches("host 10.0.0.1", frame));
    EXPECT_TRUE(matches("ip src 192.168.10.100", frame));  // thesis syntax
    EXPECT_TRUE(matches("ip dst 192.168.10.12", frame));
    EXPECT_FALSE(matches("ip src 10.11.12.13", frame));
    EXPECT_TRUE(matches("src or dst host 192.168.10.12", frame));
    EXPECT_FALSE(matches("src and dst host 192.168.10.12", frame));
}

TEST(Semantics, HostRequiresIpv4EtherType) {
    FrameBuilder arp;
    arp.ether_type = net::kEtherTypeArp;
    // Would "match" at the raw offset, but the ethertype guard must reject.
    EXPECT_FALSE(matches("host 192.168.10.100", arp.build()));
}

TEST(Semantics, Ports) {
    FrameBuilder f;  // udp 1234 -> 80
    const auto frame = f.build();
    EXPECT_TRUE(matches("port 80", frame));
    EXPECT_TRUE(matches("dst port 80", frame));
    EXPECT_FALSE(matches("src port 80", frame));
    EXPECT_TRUE(matches("src port 1234", frame));
    EXPECT_TRUE(matches("udp port 80", frame));
    EXPECT_FALSE(matches("tcp port 80", frame));
    EXPECT_FALSE(matches("port 81", frame));
}

TEST(Semantics, PortIgnoresFragments) {
    FrameBuilder f;
    f.frag = 0x0010;  // non-zero fragment offset: no transport header
    EXPECT_FALSE(matches("port 80", f.build()));
}

TEST(Semantics, NetMatching) {
    FrameBuilder f;
    const auto frame = f.build();
    EXPECT_TRUE(matches("net 192.168.10.0/24", frame));
    EXPECT_TRUE(matches("src net 192.168.0.0/16", frame));
    EXPECT_FALSE(matches("net 10.0.0.0/8", frame));
    EXPECT_TRUE(matches("net 192.168.10.0 mask 255.255.255.0", frame));
    EXPECT_FALSE(matches("dst net 192.168.11.0/24", frame));
}

TEST(Semantics, EtherHost) {
    FrameBuilder f;
    const auto frame = f.build();
    EXPECT_TRUE(matches("ether src 00:00:00:00:00:01", frame));
    EXPECT_FALSE(matches("ether src 00:00:00:00:00:02", frame));
    EXPECT_TRUE(matches("ether dst 00:0e:0c:01:02:03", frame));
    EXPECT_TRUE(matches("ether host 00:00:00:00:00:01", frame));
    EXPECT_FALSE(matches("ether host 11:22:33:44:55:66", frame));
}

TEST(Semantics, LengthComparisons) {
    FrameBuilder f;
    f.payload = 100;
    const auto frame = f.build();  // 142 bytes
    EXPECT_TRUE(matches("greater 100", frame));
    EXPECT_FALSE(matches("greater 1000", frame));
    EXPECT_TRUE(matches("less 1000", frame));
    EXPECT_FALSE(matches("less 100", frame));
    EXPECT_TRUE(matches("len > 100", frame));
    EXPECT_TRUE(matches("len <= 142", frame));
    EXPECT_FALSE(matches("len = 3", frame));
}

TEST(Semantics, AccessorRelations) {
    FrameBuilder f;
    const auto frame = f.build();
    EXPECT_TRUE(matches("ether[12:2] = 0x800", frame));
    EXPECT_TRUE(matches("ip[9] = 17", frame));   // protocol byte
    EXPECT_FALSE(matches("ip[9] = 6", frame));
    EXPECT_TRUE(matches("udp[2:2] = 80", frame));  // destination port
    EXPECT_TRUE(matches("ether[6:4]=0x00000000", frame));
    EXPECT_TRUE(matches("ip[9] != 6", frame));
    EXPECT_TRUE(matches("ip[8] > 10", frame));  // default TTL 64
}

TEST(Semantics, AccessorGuardsNonMatchingProtocols) {
    FrameBuilder tcp;
    tcp.protocol = net::kIpProtoTcp;
    const auto frame = tcp.build();
    // udp[...] accessors must not match TCP packets.
    EXPECT_FALSE(matches("udp[2:2] = 80", frame));
    EXPECT_TRUE(matches("tcp[2:2] = 80", frame));
}

TEST(Semantics, ArithmeticExpressions) {
    FrameBuilder f;
    const auto frame = f.build();
    EXPECT_TRUE(matches("ip[9] + 3 = 20", frame));
    EXPECT_TRUE(matches("ip[9] * 2 = 34", frame));
    EXPECT_TRUE(matches("ip[9] & 0x0f = 1", frame));
    EXPECT_TRUE(matches("ip[9] - 1 = 16", frame));
    EXPECT_TRUE(matches("ip[9] / 2 = 8", frame));
    // Two accessors on both sides.
    EXPECT_TRUE(matches("ip[9] = ip[9]", frame));
    EXPECT_FALSE(matches("ip[8] = ip[9]", frame));
    // Parenthesized arithmetic.
    EXPECT_TRUE(matches("(ip[9] + 1) / 2 = 9", frame));
}

TEST(Semantics, BooleanConnectives) {
    FrameBuilder f;
    const auto frame = f.build();
    EXPECT_TRUE(matches("ip and udp", frame));
    EXPECT_FALSE(matches("ip and tcp", frame));
    EXPECT_TRUE(matches("tcp or udp", frame));
    EXPECT_TRUE(matches("not (tcp or icmp)", frame));
    EXPECT_TRUE(matches("udp and not tcp and port 80", frame));
    EXPECT_FALSE(matches("not ip", frame));
    EXPECT_TRUE(matches("(tcp or udp) and (port 80 or port 99)", frame));
}

TEST(Semantics, TruncatedPacketRejectedNotCrash) {
    std::vector<std::byte> tiny(10, std::byte{0});
    EXPECT_FALSE(matches("ip", tiny));
    EXPECT_FALSE(matches("port 80", tiny));
}

// ---- the Figure 6.5 filter ----------------------------------------------------

std::string fig65_expression() {
    std::string expr = "ether[6:4]=0x00000000 and ether[10]=0x00 and not tcp";
    for (int i = 1; i <= 19; ++i)
        expr += " and not ip src " + std::to_string(i * 10) + ".11.12." + std::to_string(12 + i);
    for (int i = 1; i <= 19; ++i)
        expr += " and not ip dst " + std::to_string(i * 10) + ".99.12." + std::to_string(12 + i);
    return expr;
}

TEST(Fig65, CompilesValidatesAndAcceptsGeneratedPackets) {
    const auto prog = compile_filter(fig65_expression(), 1515);
    validate_or_throw(prog);
    // Of the same order as the thesis's 50 instructions (tcpdump's
    // optimizer is stronger than ours, so allow headroom).
    EXPECT_GE(prog.size(), 40u);
    EXPECT_LE(prog.size(), 220u);

    // Generated packets (Section 6.3.2): src 192.168.10.100,
    // dst 192.168.10.12, src MAC cycling 00..00 to 00..02, UDP.
    for (int cycle = 0; cycle < 3; ++cycle) {
        FrameBuilder f;
        f.src_mac = MacAddr::parse("00:00:00:00:00:0" + std::to_string(cycle));
        const auto frame = f.build();
        const auto result = Vm::run(prog, frame);
        EXPECT_GT(result.accept_len, 0u) << "cycle " << cycle;
        // The filter only accepts after evaluating the whole chain.
        EXPECT_GT(result.insns_executed, 40u);
    }

    // A TCP packet is rejected by the "not tcp" term.
    FrameBuilder tcp;
    tcp.protocol = net::kIpProtoTcp;
    EXPECT_EQ(Vm::run(prog, tcp.build()).accept_len, 0u);
    // A blacklisted source is rejected.
    FrameBuilder bad;
    bad.src_ip = Ipv4Addr::parse("10.11.12.13");
    EXPECT_EQ(Vm::run(prog, bad.build()).accept_len, 0u);
    // A blacklisted destination is rejected.
    FrameBuilder bad_dst;
    bad_dst.dst_ip = Ipv4Addr::parse("190.99.12.31");
    EXPECT_EQ(Vm::run(prog, bad_dst.build()).accept_len, 0u);
}

// ---- long chains / trampolines -------------------------------------------------

TEST(Codegen, VeryLongAndChainCompiles) {
    // Long enough that naive jt/jf offsets to the shared reject target
    // would overflow 8 bits without trampolines.
    std::string expr = "udp";
    for (int i = 0; i < 400; ++i) {
        expr += " and not ip src 10.0." + std::to_string(i / 250) + "." +
                std::to_string(i % 250 + 1);
    }
    const auto prog = compile_filter(expr);
    validate_or_throw(prog);
    FrameBuilder f;
    EXPECT_GT(Vm::run(prog, f.build()).accept_len, 0u);
    FrameBuilder blocked;
    blocked.src_ip = Ipv4Addr::parse("10.0.0.5");
    EXPECT_EQ(Vm::run(prog, blocked.build()).accept_len, 0u);
}

TEST(Codegen, VeryLongOrChainCompiles) {
    std::string expr = "port 7";
    for (int i = 0; i < 140; ++i) expr += " or port " + std::to_string(1000 + i);
    const auto prog = compile_filter(expr);
    validate_or_throw(prog);
    FrameBuilder f;
    f.dst_port = 1100;
    EXPECT_GT(Vm::run(prog, f.build()).accept_len, 0u);
    f.dst_port = 2999;
    f.src_port = 2998;
    EXPECT_EQ(Vm::run(prog, f.build()).accept_len, 0u);
}

TEST(Codegen, SnaplenIsReturnedOnAccept) {
    const auto prog = compile_filter("ip", 96);
    FrameBuilder f;
    EXPECT_EQ(Vm::run(prog, f.build()).accept_len, 96u);
}

TEST(Codegen, OptimizerRemovesJumpChains) {
    // `not not ip` must not be materially longer than `ip`.
    const auto plain = compile_filter("ip");
    const auto doubled = compile_filter("not not ip");
    EXPECT_EQ(doubled.size(), plain.size());
}

}  // namespace
}  // namespace capbench::bpf::filter
