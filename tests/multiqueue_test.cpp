// Multi-queue RSS receive path: flow steering across NIC queues, per-queue
// IRQ affinity, per-queue stats slices that sum to the aggregates, the
// three fanout delivery modes, and the closed per-app drop identity once
// fanout enters the picture.
#include <gtest/gtest.h>

#include <cstdint>

#include "capbench/harness/measurement.hpp"
#include "capbench/harness/testbed.hpp"

namespace capbench::harness {
namespace {

/// Runs one SUT to completion (generation + full drain) and returns the
/// testbed for inspection.
struct MiniRun {
    explicit MiniRun(TestbedConfig tb) : bed{std::move(tb)} {
        bed.start_suts();
        bool done = false;
        bed.generator().start(sim::SimTime{}, [&] { done = true; });
        while (!done) bed.sim().run(bed.sim().now() + sim::seconds(1));
        bed.sim().run(bed.sim().now() + sim::seconds(3));
    }

    [[nodiscard]] Sut& sut() { return *bed.suts()[0]; }
    [[nodiscard]] std::uint64_t generated() {
        return bed.monitor_switch().egress_counters().packets;
    }

    Testbed bed;
};

TestbedConfig multiqueue_testbed(SutConfig sut, std::uint64_t packets = 20'000,
                                 double rate_mbps = 300.0, std::uint32_t flows = 64) {
    TestbedConfig tb;
    tb.gen.count = packets;
    tb.gen.rate_mbps = rate_mbps;
    tb.gen.flow_count = flows;
    tb.suts.push_back(std::move(sut));
    return tb;
}

SutConfig swan_queues(int queues) {
    SutConfig sut = standard_sut("swan");
    sut.cores = queues;
    sut.nic.queues = queues;
    sut.buffer_bytes = 10u << 20;
    return sut;
}

std::uint64_t sum_over_queues(const Sut& s, std::uint64_t (capture::Nic::*field)(int) const) {
    std::uint64_t total = 0;
    for (int q = 0; q < s.nic().queue_count(); ++q) total += (s.nic().*field)(q);
    return total;
}

TEST(MultiQueue, FlowsSpreadAcrossQueuesAndFrameCountsSumToAggregate) {
    MiniRun run{multiqueue_testbed(swan_queues(4))};
    Sut& s = run.sut();

    ASSERT_EQ(s.nic().queue_count(), 4);
    EXPECT_EQ(s.nic().frames_seen(), run.generated());
    // 64 flows through a uniform indirection table land on every queue.
    for (int q = 0; q < 4; ++q) EXPECT_GT(s.nic().queue_frames(q), 0u) << "queue " << q;
    EXPECT_EQ(sum_over_queues(s, &capture::Nic::queue_frames), s.nic().frames_seen());
    EXPECT_EQ(sum_over_queues(s, &capture::Nic::queue_ring_drops), s.nic().ring_drops());
    EXPECT_EQ(sum_over_queues(s, &capture::Nic::queue_backlog_drops),
              s.nic().backlog_drops());
}

TEST(MultiQueue, PerQueueCaptureStatsSumToTheAggregate) {
    // Overload rate so the drop buckets are exercised, not just delivery.
    MiniRun run{multiqueue_testbed(swan_queues(4), 20'000, 900.0)};
    Sut& s = run.sut();

    const capture::CaptureStats& total = s.capture_stats(0);
    capture::CaptureStats sum;
    for (const capture::CaptureStats& qs : s.queue_capture_stats(0)) {
        sum.kernel_seen += qs.kernel_seen;
        sum.accepted += qs.accepted;
        sum.dropped_filter += qs.dropped_filter;
        sum.dropped_buffer += qs.dropped_buffer;
        sum.delivered += qs.delivered;
        sum.delivered_bytes += qs.delivered_bytes;
        sum.filter_aborts += qs.filter_aborts;
        sum.fanout_skipped += qs.fanout_skipped;
    }
    EXPECT_EQ(sum.kernel_seen, total.kernel_seen);
    EXPECT_EQ(sum.accepted, total.accepted);
    EXPECT_EQ(sum.dropped_filter, total.dropped_filter);
    EXPECT_EQ(sum.dropped_buffer, total.dropped_buffer);
    EXPECT_EQ(sum.delivered, total.delivered);
    EXPECT_EQ(sum.delivered_bytes, total.delivered_bytes);
    EXPECT_EQ(sum.filter_aborts, total.filter_aborts);
    EXPECT_EQ(sum.fanout_skipped, total.fanout_skipped);
    EXPECT_GT(total.delivered, 0u);
}

TEST(MultiQueue, SingleQueueSliceEqualsTheAggregate) {
    MiniRun run{multiqueue_testbed(standard_sut("swan"))};
    Sut& s = run.sut();

    ASSERT_EQ(s.nic().queue_count(), 1);
    EXPECT_EQ(s.nic().queue_frames(0), s.nic().frames_seen());
    EXPECT_EQ(s.nic().queue_ring_drops(0), s.nic().ring_drops());
    const auto& slices = s.queue_capture_stats(0);
    ASSERT_EQ(slices.size(), 1u);
    EXPECT_EQ(slices[0].delivered, s.capture_stats(0).delivered);
    EXPECT_EQ(slices[0].kernel_seen, s.capture_stats(0).kernel_seen);
    EXPECT_EQ(slices[0].fanout_skipped, 0u);
}

TEST(MultiQueue, IrqAffinityPinsQueueInterruptsRoundRobin) {
    SutConfig sut = swan_queues(4);
    sut.cores = 2;
    sut.nic.irq_affinity = {1, 0};  // queue i -> affinity[i % 2]
    MiniRun run{multiqueue_testbed(std::move(sut))};
    Sut& s = run.sut();
    EXPECT_EQ(s.nic().queue_cpu(0), 1);
    EXPECT_EQ(s.nic().queue_cpu(1), 0);
    EXPECT_EQ(s.nic().queue_cpu(2), 1);
    EXPECT_EQ(s.nic().queue_cpu(3), 0);
}

TEST(MultiQueue, DefaultAffinitySpreadsQueuesOverCpus) {
    SutConfig sut = swan_queues(4);
    sut.cores = 2;  // 4 queues on 2 CPUs: irqbalance-style i % cpus
    MiniRun run{multiqueue_testbed(std::move(sut))};
    Sut& s = run.sut();
    EXPECT_EQ(s.nic().queue_cpu(0), 0);
    EXPECT_EQ(s.nic().queue_cpu(1), 1);
    EXPECT_EQ(s.nic().queue_cpu(2), 0);
    EXPECT_EQ(s.nic().queue_cpu(3), 1);
}

TEST(MultiQueue, ConstructionRejectsBadShapes) {
    sim::Simulator sim;

    SutConfig bad_cpu = swan_queues(2);
    bad_cpu.nic.irq_affinity = {0, 9};  // CPU 9 does not exist on 2 cores
    EXPECT_THROW(Sut(sim, std::move(bad_cpu)), std::invalid_argument);

    SutConfig bad_table = swan_queues(2);
    bad_table.nic.indirection = capture::rss::IndirectionTable::uniform(4);
    EXPECT_THROW(Sut(sim, std::move(bad_table)), std::invalid_argument);

    SutConfig no_queues = standard_sut("swan");
    no_queues.nic.queues = 0;
    EXPECT_THROW(Sut(sim, std::move(no_queues)), std::invalid_argument);

    SutConfig negative_cpu = swan_queues(2);
    negative_cpu.nic.irq_affinity = {-1};
    EXPECT_THROW(Sut(sim, std::move(negative_cpu)), std::invalid_argument);
}

TEST(MultiQueue, SkewedIndirectionConcentratesFramesOnTheHotQueue) {
    SutConfig sut = swan_queues(4);
    sut.nic.indirection_skew = 0.75;
    MiniRun run{multiqueue_testbed(std::move(sut), 20'000, 300.0, 256)};
    Sut& s = run.sut();

    const std::uint64_t hot = s.nic().queue_frames(0);
    EXPECT_GT(hot, s.nic().frames_seen() / 2);
    for (int q = 1; q < 4; ++q) EXPECT_LT(s.nic().queue_frames(q), hot) << "queue " << q;
}

TEST(MultiQueue, ExplicitIndirectionTableIsHonored) {
    SutConfig sut = swan_queues(4);
    // A table that only ever names queues 0 and 1: queues 2/3 stay idle.
    sut.nic.indirection = capture::rss::IndirectionTable::uniform(2);
    MiniRun run{multiqueue_testbed(std::move(sut))};
    Sut& s = run.sut();
    EXPECT_GT(s.nic().queue_frames(0), 0u);
    EXPECT_GT(s.nic().queue_frames(1), 0u);
    EXPECT_EQ(s.nic().queue_frames(2), 0u);
    EXPECT_EQ(s.nic().queue_frames(3), 0u);
}

TEST(Fanout, MirrorModeDeliversEverythingToEveryApp) {
    SutConfig sut = swan_queues(4);
    sut.app_count = 2;  // fanout defaults to kMirror
    MiniRun run{multiqueue_testbed(std::move(sut), 20'000, 200.0)};
    Sut& s = run.sut();
    for (std::size_t a = 0; a < 2; ++a) {
        EXPECT_EQ(s.capture_stats(a).delivered, run.generated()) << "app " << a;
        EXPECT_EQ(s.capture_stats(a).fanout_skipped, 0u) << "app " << a;
    }
}

TEST(Fanout, QueueModePinsEachAppToItsQueue) {
    SutConfig sut = swan_queues(4);
    sut.app_count = 4;
    sut.fanout = capture::FanoutMode::kQueue;
    MiniRun run{multiqueue_testbed(std::move(sut), 20'000, 200.0)};
    Sut& s = run.sut();

    const std::uint64_t into_kernel =
        run.generated() - s.nic().ring_drops() - s.nic().backlog_drops();
    std::uint64_t delivered_total = 0;
    for (std::size_t a = 0; a < 4; ++a) {
        const capture::CaptureStats& st = s.capture_stats(a);
        // Every kernel-side packet either reached this app or went to a
        // sibling: the fanout bucket closes the identity.
        EXPECT_EQ(st.kernel_seen + st.fanout_skipped, into_kernel) << "app " << a;
        EXPECT_GT(st.delivered, 0u) << "app " << a;
        delivered_total += st.delivered;
        // App a only ever sees its pinned queue a.
        const auto& slices = s.queue_capture_stats(a);
        for (std::size_t q = 0; q < slices.size(); ++q)
            if (q != a) EXPECT_EQ(slices[q].delivered, 0u) << "app " << a << " queue " << q;
    }
    // Each packet went to exactly one app; at this gentle rate none drop.
    EXPECT_EQ(delivered_total, run.generated());
}

TEST(Fanout, ClusterModeDeliversEachPacketToExactlyOneApp) {
    SutConfig sut = swan_queues(2);
    sut.app_count = 3;
    sut.fanout = capture::FanoutMode::kCluster;
    MiniRun run{multiqueue_testbed(std::move(sut), 20'000, 200.0)};
    Sut& s = run.sut();

    const std::uint64_t into_kernel =
        run.generated() - s.nic().ring_drops() - s.nic().backlog_drops();
    std::uint64_t seen_total = 0, delivered_total = 0;
    for (std::size_t a = 0; a < 3; ++a) {
        const capture::CaptureStats& st = s.capture_stats(a);
        EXPECT_EQ(st.kernel_seen + st.fanout_skipped, into_kernel) << "app " << a;
        EXPECT_LT(st.delivered, run.generated()) << "app " << a;  // a strict share
        EXPECT_GT(st.delivered, 0u) << "app " << a;
        seen_total += st.kernel_seen;
        delivered_total += st.delivered;
    }
    EXPECT_EQ(seen_total, into_kernel);  // exactly-one-tap delivery
    EXPECT_EQ(delivered_total, run.generated());
}

// ---- the obs layer keeps the drop identity closed under fanout ---------------

TEST(MultiQueueObs, DropIdentityStaysClosedPerAppWithFanout) {
    SutConfig sut = swan_queues(4);
    sut.app_count = 2;
    sut.fanout = capture::FanoutMode::kCluster;

    RunConfig cfg;
    cfg.packets = 6'000;
    cfg.rate_mbps = 400.0;
    cfg.flow_count = 64;
    cfg.collect_metrics = true;
    const auto result = run_once({std::move(sut)}, cfg);

    ASSERT_TRUE(result.metrics.enabled);
    ASSERT_EQ(result.metrics.suts.size(), 1u);
    std::uint64_t fanout_total = 0;
    for (const auto& app : result.metrics.suts[0].apps) {
        EXPECT_EQ(app.delivered + app.drops_total(), result.metrics.generated);
        fanout_total += app.drop_fanout;
    }
    // Cluster fanout with two apps: each packet skipped exactly one tap.
    EXPECT_GT(fanout_total, 0u);
}

TEST(MultiQueueObs, PerQueueNicCountersAppearInTheRegistry) {
    SutConfig sut = swan_queues(4);

    RunConfig cfg;
    cfg.packets = 6'000;
    cfg.rate_mbps = 300.0;
    cfg.flow_count = 64;
    cfg.collect_metrics = true;
    const auto result = run_once({std::move(sut)}, cfg);

    ASSERT_TRUE(result.metrics.enabled);
    std::uint64_t frames_total = 0;
    int frame_counters = 0;
    for (const auto& [name, value] : result.metrics.counters) {
        if (name.rfind("capture.swan.q", 0) != 0) continue;
        if (name.find(".frames") != std::string::npos) {
            ++frame_counters;
            frames_total += value;
        }
    }
    EXPECT_EQ(frame_counters, 4);
    EXPECT_EQ(frames_total, result.metrics.generated);
}

}  // namespace
}  // namespace capbench::harness
