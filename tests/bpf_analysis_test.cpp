// Tests for the BPF static analyzer: CFG construction, the abstract value
// domain, analyze() diagnostics, and the optimizer (including a VM
// equivalence property check over random programs and packets).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "capbench/bpf/analysis/analyze.hpp"
#include "capbench/bpf/analysis/cfg.hpp"
#include "capbench/bpf/analysis/domain.hpp"
#include "capbench/bpf/analysis/optimize.hpp"
#include "capbench/bpf/asm_text.hpp"
#include "capbench/bpf/filter/codegen.hpp"
#include "capbench/bpf/insn.hpp"
#include "capbench/bpf/validator.hpp"
#include "capbench/bpf/vm.hpp"
#include "capbench/harness/experiment.hpp"

#include "bpf_random_program.hpp"

namespace capbench::bpf {
namespace {

using analysis::AbsVal;
using analysis::Cfg;
using analysis::Finding;
using analysis::Severity;

std::vector<std::byte> bytes(std::initializer_list<int> values) {
    std::vector<std::byte> out;
    for (const int v : values) out.push_back(static_cast<std::byte>(v));
    return out;
}

bool has_warning_at(const std::vector<Finding>& findings, std::size_t insn,
                    const std::string& fragment) {
    return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
        return f.severity == Severity::kWarning && f.insn == insn &&
               f.message.find(fragment) != std::string::npos;
    });
}

// ---------------------------------------------------------------------------
// CFG

TEST(Cfg, SuccessorsPerInstructionKind) {
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),                // 0 -> 1
        jump(BPF_JMP | BPF_JEQ | BPF_K, 5, 1, 0),         // 1 -> 3, 2
        stmt(BPF_JMP | BPF_JA, 1),                        // 2 -> 4
        stmt(BPF_RET | BPF_K, 1),                         // 3 -> none
        stmt(BPF_RET | BPF_K, 0),                         // 4 -> none
    };
    EXPECT_EQ(analysis::insn_successors(prog, 0), (std::vector<std::size_t>{1}));
    EXPECT_EQ(analysis::insn_successors(prog, 1), (std::vector<std::size_t>{3, 2}));
    EXPECT_EQ(analysis::insn_successors(prog, 2), (std::vector<std::size_t>{4}));
    EXPECT_TRUE(analysis::insn_successors(prog, 3).empty());
}

TEST(Cfg, FlagsUnreachableInstructions) {
    const Program prog{
        stmt(BPF_JMP | BPF_JA, 1),       // 0: skips insn 1
        stmt(BPF_LD | BPF_IMM, 7),       // 1: unreachable
        stmt(BPF_RET | BPF_K, 0),        // 2
    };
    const Cfg cfg = Cfg::build(prog);
    ASSERT_EQ(cfg.reachable.size(), prog.size());
    EXPECT_TRUE(cfg.reachable[0]);
    EXPECT_FALSE(cfg.reachable[1]);
    EXPECT_TRUE(cfg.reachable[2]);
}

TEST(Cfg, BasicBlocksSplitAtJumpsAndTargets) {
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),         // block 0: 0..1
        jump(BPF_JMP | BPF_JEQ | BPF_K, 5, 0, 1),  //
        stmt(BPF_RET | BPF_K, 1),                  // block 1: 2
        stmt(BPF_RET | BPF_K, 0),                  // block 2: 3
    };
    const Cfg cfg = Cfg::build(prog);
    ASSERT_EQ(cfg.blocks.size(), 3u);
    EXPECT_EQ(cfg.blocks[0].first, 0u);
    EXPECT_EQ(cfg.blocks[0].last, 1u);
    EXPECT_EQ(cfg.blocks[0].succs.size(), 2u);
    EXPECT_TRUE(cfg.blocks[1].succs.empty());
    EXPECT_EQ(cfg.block_of[2], 1);
}

// ---------------------------------------------------------------------------
// Abstract domain

TEST(Domain, JoinAndRefine) {
    const AbsVal five = AbsVal::constant(5);
    const AbsVal nine = AbsVal::constant(9);
    const AbsVal joined = analysis::join(five, nine);
    EXPECT_TRUE(joined.contains(5));
    EXPECT_TRUE(joined.contains(9));
    EXPECT_FALSE(joined.is_constant());

    // After a not-taken JEQ #5, the value cannot be 5 any more.
    const auto refined = analysis::refine(joined, BPF_JEQ, 5, /*taken=*/false);
    ASSERT_TRUE(refined.has_value());
    EXPECT_FALSE(refined->contains(5));
    EXPECT_TRUE(refined->contains(9));

    // The taken edge of JEQ #7 on a constant 5 is infeasible.
    EXPECT_FALSE(analysis::refine(five, BPF_JEQ, 7, /*taken=*/true).has_value());
}

TEST(Domain, AluTransferFoldsConstants) {
    const AbsVal six = AbsVal::constant(6);
    const AbsVal seven = AbsVal::constant(7);
    EXPECT_EQ(analysis::alu_transfer(BPF_MUL, six, seven).constant_value(), 42u);
    EXPECT_EQ(analysis::alu_transfer(BPF_LSH, six, AbsVal::constant(40)).constant_value(),
              0u);  // VM semantics: shifts >= 32 yield 0
    const AbsVal byte = AbsVal::range(0, 255);
    const AbsVal masked = analysis::alu_transfer(BPF_AND, byte, AbsVal::constant(0x0F));
    EXPECT_EQ(masked.hi, 0x0Fu);
}

TEST(Domain, CompareDecidesDisjointRanges) {
    const AbsVal byte = AbsVal::range(0, 255);
    EXPECT_EQ(analysis::compare(BPF_JGT, byte, AbsVal::constant(300)), false);
    EXPECT_EQ(analysis::compare(BPF_JEQ, byte, AbsVal::constant(0x800)), false);
    EXPECT_EQ(analysis::compare(BPF_JEQ, byte, AbsVal::constant(9)), std::nullopt);
}

// ---------------------------------------------------------------------------
// analyze() diagnostics

TEST(Analyze, FlagsUnreachableCode) {
    const Program prog{
        stmt(BPF_JMP | BPF_JA, 1),
        stmt(BPF_LD | BPF_IMM, 7),  // skipped by the jump
        stmt(BPF_RET | BPF_K, 1),
    };
    const auto findings = analysis::analyze(prog);
    EXPECT_TRUE(has_warning_at(findings, 1, "unreachable"));
}

TEST(Analyze, FlagsUninitializedScratchRead) {
    const Program prog{
        stmt(BPF_LD | BPF_W | BPF_MEM, 3),
        stmt(BPF_RET | BPF_A, 0),
    };
    const auto findings = analysis::analyze(prog);
    EXPECT_TRUE(has_warning_at(findings, 0, "uninitialized scratch memory M[3]"));
}

TEST(Analyze, FlagsScratchMaybeUninitializedOnSomePaths) {
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),         // 0: A = pkt[0], unknown
        jump(BPF_JMP | BPF_JEQ | BPF_K, 5, 0, 1),  // 1: taken -> 2, else -> 3
        stmt(BPF_ST, 0),                           // 2: writes M[0] on one path
        stmt(BPF_LD | BPF_W | BPF_MEM, 0),         // 3: read
        stmt(BPF_RET | BPF_A, 0),                  // 4
    };
    const auto findings = analysis::analyze(prog);
    EXPECT_TRUE(has_warning_at(findings, 3, "may be uninitialized"));
}

TEST(Analyze, FlagsUninitializedX) {
    const Program prog{
        stmt(BPF_MISC | BPF_TXA, 0),
        stmt(BPF_RET | BPF_A, 0),
    };
    const auto findings = analysis::analyze(prog);
    EXPECT_TRUE(has_warning_at(findings, 0, "uninitialized index register X"));
}

TEST(Analyze, FlagsDivisionByPossiblyZeroX) {
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),   // A = pkt[0] in [0, 255]
        stmt(BPF_MISC | BPF_TAX, 0),         // X = A
        stmt(BPF_LD | BPF_IMM, 100),
        stmt(BPF_ALU | BPF_DIV | BPF_X, 0),  // X may be zero
        stmt(BPF_RET | BPF_A, 0),
    };
    const auto findings = analysis::analyze(prog);
    EXPECT_TRUE(has_warning_at(findings, 3, "possibly-zero X"));
}

TEST(Analyze, FlagsNeverAcceptingFilter) {
    EXPECT_TRUE(has_warning_at(analysis::analyze(reject_all()), 0, "never accept"));

    // A conditional filter where both returns are zero.
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),
        jump(BPF_JMP | BPF_JEQ | BPF_K, 5, 0, 1),
        stmt(BPF_RET | BPF_K, 0),
        stmt(BPF_RET | BPF_K, 0),
    };
    const auto findings = analysis::analyze(prog);
    EXPECT_TRUE(has_warning_at(findings, 2, "never accept"));
}

TEST(Analyze, FlagsRetAWithProvenZeroRange) {
    // A is masked to zero before RET A: provably never accepts.
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),
        stmt(BPF_ALU | BPF_AND | BPF_K, 0),
        stmt(BPF_RET | BPF_A, 0),
    };
    const auto findings = analysis::analyze(prog);
    EXPECT_TRUE(has_warning_at(findings, 2, "never accept"));
}

TEST(Analyze, FlagsDegenerateConditionalJump) {
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),
        jump(BPF_JMP | BPF_JEQ | BPF_K, 5, 0, 0),  // jt == jf
        stmt(BPF_RET | BPF_K, 1),
    };
    EXPECT_EQ(validate(prog), std::nullopt);  // legal, just pointless
    const auto findings = analysis::analyze(prog);
    EXPECT_TRUE(has_warning_at(findings, 1, "identical targets"));
}

TEST(Analyze, FlagsImpossibleAbsoluteLoad) {
    const Program prog{
        stmt(BPF_LD | BPF_W | BPF_ABS, 70000),
        stmt(BPF_RET | BPF_A, 0),
    };
    const auto findings = analysis::analyze(prog);
    EXPECT_TRUE(has_warning_at(findings, 0, "never be in bounds"));
}

TEST(Analyze, InvalidProgramYieldsSingleError) {
    const auto findings = analysis::analyze({});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, Severity::kError);
    EXPECT_TRUE(analysis::has_errors(findings));
}

TEST(Analyze, CleanFilterHasNoWarnings) {
    const auto prog = filter::compile_filter("ip", 1515, {.optimize = false});
    const auto findings = analysis::analyze(prog);
    EXPECT_FALSE(analysis::has_errors(findings));
    EXPECT_FALSE(analysis::has_warnings(findings));
}

TEST(Analyze, ReportsReturnValueRange) {
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),
        stmt(BPF_RET | BPF_A, 0),
    };
    const auto findings = analysis::analyze(prog);
    const bool has_range = std::any_of(
        findings.begin(), findings.end(), [](const Finding& f) {
            return f.severity == Severity::kInfo &&
                   f.message.find("[0, 255]") != std::string::npos;
        });
    EXPECT_TRUE(has_range);
}

// ---------------------------------------------------------------------------
// Optimizer

TEST(Optimize, CollapsesDegenerateJump) {
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),
        jump(BPF_JMP | BPF_JEQ | BPF_K, 5, 0, 0),  // jt == jf: a no-op
        stmt(BPF_RET | BPF_K, 9),
    };
    const auto optimized = analysis::optimize(prog);
    ASSERT_EQ(optimized.size(), 2u);  // the load must stay: it can reject
    EXPECT_EQ(bpf_class(optimized[0].code), BPF_LD);
    EXPECT_EQ(bpf_class(optimized[1].code), BPF_RET);
    // Equivalence including the trapping case (empty packet).
    EXPECT_EQ(Vm::run(optimized, {}).accept_len, Vm::run(prog, {}).accept_len);
    const auto data = bytes({42});
    EXPECT_EQ(Vm::run(optimized, data).accept_len, Vm::run(prog, data).accept_len);
}

TEST(Optimize, FoldsConstantArithmetic) {
    const Program prog{
        stmt(BPF_LD | BPF_IMM, 6),
        stmt(BPF_ALU | BPF_MUL | BPF_K, 7),
        stmt(BPF_ALU | BPF_ADD | BPF_K, 1),
        stmt(BPF_RET | BPF_A, 0),
    };
    const auto optimized = analysis::optimize(prog);
    ASSERT_EQ(optimized.size(), 1u);
    EXPECT_EQ(optimized[0].code, BPF_RET | BPF_K);
    EXPECT_EQ(optimized[0].k, 43u);
}

TEST(Optimize, RemovesDeadStores) {
    const Program prog{
        stmt(BPF_LD | BPF_IMM, 1),
        stmt(BPF_ST, 2),           // M[2] never read
        stmt(BPF_RET | BPF_K, 7),
    };
    const auto optimized = analysis::optimize(prog);
    ASSERT_EQ(optimized.size(), 1u);
    EXPECT_EQ(optimized[0].k, 7u);
}

TEST(Optimize, RemovesRedundantReload) {
    const Program prog{
        stmt(BPF_LD | BPF_H | BPF_ABS, 12),
        stmt(BPF_LD | BPF_H | BPF_ABS, 12),  // same value, provably in bounds
        stmt(BPF_RET | BPF_A, 0),
    };
    const auto optimized = analysis::optimize(prog);
    EXPECT_EQ(optimized.size(), 2u);
}

TEST(Optimize, KeepsTrappingLoadWithDeadResult) {
    // pkt[0] is never used, but the load rejects empty packets, so it must
    // survive dead-code elimination.
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),
        stmt(BPF_RET | BPF_K, 5),
    };
    const auto optimized = analysis::optimize(prog);
    ASSERT_EQ(optimized.size(), 2u);
    EXPECT_EQ(Vm::run(optimized, {}).accept_len, 0u);
    EXPECT_EQ(Vm::run(optimized, bytes({1})).accept_len, 5u);
}

TEST(Optimize, KeepsPossiblyTrappingDivision) {
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),
        stmt(BPF_MISC | BPF_TAX, 0),
        stmt(BPF_LD | BPF_IMM, 8),
        stmt(BPF_ALU | BPF_DIV | BPF_X, 0),  // rejects when pkt[0] == 0
        stmt(BPF_RET | BPF_K, 1),
    };
    const auto optimized = analysis::optimize(prog);
    const bool has_div = std::any_of(
        optimized.begin(), optimized.end(), [](const Insn& insn) {
            return bpf_class(insn.code) == BPF_ALU && bpf_op(insn.code) == BPF_DIV;
        });
    EXPECT_TRUE(has_div);
    EXPECT_EQ(Vm::run(optimized, bytes({0})).accept_len, 0u);
    EXPECT_EQ(Vm::run(optimized, bytes({2})).accept_len, 1u);
}

TEST(Optimize, ThreadsJumpChains) {
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),
        jump(BPF_JMP | BPF_JEQ | BPF_K, 1, 0, 1),
        stmt(BPF_JMP | BPF_JA, 1),  // hop
        stmt(BPF_RET | BPF_K, 0),
        stmt(BPF_RET | BPF_K, 1),
    };
    const auto optimized = analysis::optimize(prog);
    EXPECT_LT(optimized.size(), prog.size());
    for (const auto& d : {bytes({0}), bytes({1}), bytes({2})})
        EXPECT_EQ(Vm::run(optimized, d).accept_len, Vm::run(prog, d).accept_len);
}

TEST(Optimize, InvalidProgramReturnedUnchanged) {
    const Program broken{stmt(BPF_LD | BPF_IMM, 1)};  // no RET
    EXPECT_EQ(analysis::optimize(broken), broken);
}

TEST(Optimize, ShrinksFigure65FilterSubstantially) {
    const auto expr = harness::fig_6_5_filter_expression();
    const auto stock = filter::compile_filter(expr, 1515, {.optimize = false});
    analysis::OptimizeStats stats;
    const auto optimized = analysis::optimize(stock, &stats);
    EXPECT_LT(optimized.size(), stock.size());
    EXPECT_LE(optimized.size(), 60u);  // tcpdump -O reaches 50 on this filter
    EXPECT_EQ(stats.insns_before, stock.size());
    EXPECT_EQ(stats.insns_after, optimized.size());
    EXPECT_GT(stats.rounds, 0);
    EXPECT_EQ(validate(optimized), std::nullopt);
}

// ---------------------------------------------------------------------------
// Property: optimize() is semantics-preserving.

class ProgramFuzzer {
public:
    explicit ProgramFuzzer(std::uint32_t seed) : rng_(seed) {}

    /// A random valid program: straight-line-ish code with random forward
    /// jumps, always ending in RET.
    Program next() {
        for (;;) {
            Program prog = generate();
            if (!validate(prog)) return prog;
        }
    }

    std::vector<std::byte> packet() {
        std::vector<std::byte> out(pick(0, 64));
        for (auto& b : out) b = static_cast<std::byte>(pick(0, 255));
        return out;
    }

private:
    std::uint32_t pick(std::uint32_t lo, std::uint32_t hi) {
        return std::uniform_int_distribution<std::uint32_t>{lo, hi}(rng_);
    }

    Program generate() {
        const std::size_t body = pick(1, 24);
        Program prog;
        for (std::size_t i = 0; i < body; ++i) prog.push_back(random_insn(body - i));
        prog.push_back(pick(0, 1) != 0 ? stmt(BPF_RET | BPF_A, 0)
                                       : stmt(BPF_RET | BPF_K, pick(0, 2)));
        return prog;
    }

    Insn random_insn(std::size_t remaining) {
        // `remaining` counts instructions after this one, excluding the
        // final RET, so offsets up to `remaining` always stay in range.
        const auto off = [&] {
            return static_cast<std::uint8_t>(pick(0, std::min<std::size_t>(remaining, 6)));
        };
        switch (pick(0, 17)) {
            case 0: return stmt(BPF_LD | BPF_IMM, pick(0, 300));
            case 1: return stmt(BPF_LD | BPF_B | BPF_ABS, pick(0, 70));
            case 2: return stmt(BPF_LD | BPF_H | BPF_ABS, pick(0, 70));
            case 3: return stmt(BPF_LD | BPF_W | BPF_ABS, pick(0, 70));
            case 4: return stmt(BPF_LD | BPF_W | BPF_LEN, 0);
            case 5: return stmt(BPF_LD | BPF_W | BPF_MEM, pick(0, kMemWords - 1));
            case 6: return stmt(BPF_LDX | BPF_W | BPF_IMM, pick(0, 40));
            case 7: return stmt(BPF_LDX | BPF_B | BPF_MSH, pick(0, 70));
            case 8: return stmt(BPF_LDX | BPF_W | BPF_MEM, pick(0, kMemWords - 1));
            case 9: return stmt(BPF_ST, pick(0, kMemWords - 1));
            case 10: return stmt(BPF_STX, pick(0, kMemWords - 1));
            case 11: {
                constexpr std::uint16_t ops[] = {BPF_ADD, BPF_SUB, BPF_MUL, BPF_AND,
                                                 BPF_OR, BPF_LSH, BPF_RSH};
                return stmt(BPF_ALU | ops[pick(0, 6)] | BPF_K, pick(0, 40));
            }
            case 12: {
                constexpr std::uint16_t ops[] = {BPF_ADD, BPF_SUB, BPF_AND, BPF_OR};
                return stmt(BPF_ALU | ops[pick(0, 3)] | BPF_X, 0);
            }
            case 13: return stmt(BPF_ALU | BPF_DIV | BPF_K, pick(1, 9));
            case 14: return stmt(BPF_ALU | BPF_DIV | BPF_X, 0);
            case 15: return pick(0, 1) != 0 ? stmt(BPF_MISC | BPF_TAX, 0)
                                            : stmt(BPF_MISC | BPF_TXA, 0);
            case 16: return stmt(BPF_JMP | BPF_JA, off());
            default: {
                constexpr std::uint16_t ops[] = {BPF_JEQ, BPF_JGT, BPF_JGE, BPF_JSET};
                const std::uint16_t src = pick(0, 3) == 0 ? BPF_X : BPF_K;
                return jump(BPF_JMP | ops[pick(0, 3)] | src, pick(0, 300), off(), off());
            }
        }
    }

    std::mt19937 rng_;
};

TEST(OptimizeProperty, PreservesVmSemanticsOnRandomPrograms) {
    ProgramFuzzer fuzz{0xC0FFEE};
    std::size_t comparisons = 0;
    for (int p = 0; p < 150; ++p) {
        const Program prog = fuzz.next();
        const Program optimized = analysis::optimize(prog);
        EXPECT_EQ(validate(optimized), std::nullopt);
        EXPECT_LE(optimized.size(), prog.size());
        for (int i = 0; i < 20; ++i) {
            const auto pkt = fuzz.packet();
            const auto want = Vm::run(prog, pkt).accept_len;
            const auto got = Vm::run(optimized, pkt).accept_len;
            ASSERT_EQ(got, want) << "program:\n"
                                 << disassemble(prog) << "optimized:\n"
                                 << disassemble(optimized) << "packet len "
                                 << pkt.size();
            ++comparisons;
        }
    }
    EXPECT_GE(comparisons, 1000u);
}

// The optimizer's dead-def sweep now rides on the shared analysis::Liveness
// module (the same computation behind the fact table's dead_store flags).
// Exercise it with the tier-equivalence generator too — a different
// instruction mix, richer in scratch stores and runtime-abort paths.
TEST(OptimizeProperty, SharedLivenessSweepPreservesSemantics) {
    std::mt19937 rng{0xBEEF01};
    for (int p = 0; p < 150; ++p) {
        const Program prog = testgen::random_program(rng);
        const Program optimized = analysis::optimize(prog);
        EXPECT_EQ(validate(optimized), std::nullopt);
        EXPECT_LE(optimized.size(), prog.size());
        for (int i = 0; i < 10; ++i) {
            std::vector<std::byte> pkt(rng() % 96);
            for (auto& b : pkt) b = static_cast<std::byte>(rng() & 0xFF);
            const auto want = Vm::run(prog, pkt).accept_len;
            const auto got = Vm::run(optimized, pkt).accept_len;
            ASSERT_EQ(got, want) << "program:\n"
                                 << disassemble(prog) << "optimized:\n"
                                 << disassemble(optimized) << "packet len "
                                 << pkt.size();
        }
    }
}

TEST(Optimize, RemovesShadowedScratchStores) {
    // The first store to M[2] is shadowed before any read: statically dead
    // under the shared liveness, so the sweep must drop it.
    const Program prog = {
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),
        stmt(BPF_ST, 2),  // dead: overwritten below before any load
        stmt(BPF_LD | BPF_B | BPF_ABS, 1),
        stmt(BPF_ST, 2),
        stmt(BPF_LD | BPF_B | BPF_ABS, 2),
        stmt(BPF_LD | BPF_W | BPF_MEM, 2),
        stmt(BPF_RET | BPF_A, 0),
    };
    const Program optimized = analysis::optimize(prog);
    std::size_t stores = 0;
    for (const Insn& insn : optimized)
        if (bpf_class(insn.code) == BPF_ST) ++stores;
    EXPECT_EQ(stores, 1u);
    const auto pkt = bytes({10, 20, 30});
    EXPECT_EQ(Vm::run(optimized, pkt).accept_len, Vm::run(prog, pkt).accept_len);
    EXPECT_EQ(Vm::run(optimized, pkt).accept_len, 20u);
}

TEST(OptimizeProperty, OptimizedFiltersMatchStockFilters) {
    const char* expressions[] = {
        "ip",
        "tcp or udp",
        "not not ip",
        "ip src 10.11.12.13 and not tcp",
        "udp and dst host 192.168.10.12",
        "ether[6:4] = 0x00000000 and ip[8] > 3",
        "len > 100 and len <= 1400",
    };
    std::mt19937 rng{1234};
    std::uniform_int_distribution<int> byte{0, 255};
    std::uniform_int_distribution<std::size_t> len{0, 120};
    for (const char* expr : expressions) {
        const auto stock = filter::compile_filter(expr, 1515, {.optimize = false});
        const auto optimized = filter::compile_filter(expr, 1515);
        EXPECT_LE(optimized.size(), stock.size());
        for (int i = 0; i < 200; ++i) {
            std::vector<std::byte> pkt(len(rng));
            for (auto& b : pkt) b = static_cast<std::byte>(byte(rng));
            if (pkt.size() > 13 && i % 2 == 0) {  // bias toward IPv4 frames
                pkt[12] = std::byte{0x08};
                pkt[13] = std::byte{0x00};
            }
            ASSERT_EQ(Vm::run(optimized, pkt).accept_len, Vm::run(stock, pkt).accept_len)
                << expr << " packet len " << pkt.size();
        }
    }
}

}  // namespace
}  // namespace capbench::bpf
