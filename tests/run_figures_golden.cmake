# Byte-identity guard for the figures pipeline: runs capbench_figures on
# the pinned scenario set / seed / packet count and compares the JSON
# byte-for-byte against the committed golden for this --jobs value.
# (The documents embed "jobs" in their config, so each jobs value has its
# own golden; apart from that field the documents are identical.)
#
# Expects: FIGURES_BIN, JOBS, OUT, GOLDEN.
if(NOT FIGURES_BIN OR NOT JOBS OR NOT OUT OR NOT GOLDEN)
  message(FATAL_ERROR "run_figures_golden.cmake: missing FIGURES_BIN/JOBS/OUT/GOLDEN")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env CAPBENCH_PACKETS=1500 CAPBENCH_REPS=1
          ${FIGURES_BIN} --run fig_6_2 fig_6_6 fig_6_8 --jobs ${JOBS} --json ${OUT}
  RESULT_VARIABLE run_rc
  OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "capbench_figures failed with exit code ${run_rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
          "figures output ${OUT} is not byte-identical to golden ${GOLDEN}; "
          "determinism regression (or an intentional model change — regenerate "
          "the goldens and say so in the commit message)")
endif()
