// Tests for the enhanced Linux Kernel Packet Generator: pgset interface,
// frame synthesis, rate control and the NIC transmit models.
#include <gtest/gtest.h>

#include "capbench/dist/builtin.hpp"
#include "capbench/net/headers.hpp"
#include "capbench/net/link.hpp"
#include "capbench/pktgen/pktgen.hpp"

namespace capbench::pktgen {
namespace {

struct Collector : net::FrameSink {
    std::vector<net::PacketPtr> packets;
    void on_frame(const net::PacketPtr& p) override { packets.push_back(p); }
};

struct Fixture {
    sim::Simulator sim;
    net::Link link{sim};
    Collector sink;
    Fixture() { link.attach(sink); }

    GenStats generate(GenConfig config, GenNicModel nic = GenNicModel::syskonnect()) {
        Generator gen{sim, link, nic, std::move(config)};
        gen.start(sim::SimTime{});
        sim.run();
        return gen.stats();
    }
};

TEST(Pktgen, MaxRateMatchesThesisMeasurements) {
    // 1500-byte packets at full speed: Syskonnect ~938, Netgear ~930,
    // Intel ~890 Mbit/s (Section 4.1.3).
    struct Case {
        GenNicModel nic;
        double expect_mbps;
    };
    for (const auto& c : {Case{GenNicModel::syskonnect(), 938.0},
                          Case{GenNicModel::netgear(), 930.0},
                          Case{GenNicModel::intel(), 890.0}}) {
        Fixture f;
        GenConfig cfg;
        cfg.count = 2'000;
        cfg.packet_size = 1500;
        const auto stats = f.generate(cfg, c.nic);
        EXPECT_NEAR(stats.achieved_mbps(), c.expect_mbps, 6.0) << c.nic.name;
    }
}

TEST(Pktgen, TargetRatePacingIsAccurate) {
    for (const double rate : {100.0, 400.0, 700.0}) {
        Fixture f;
        GenConfig cfg;
        cfg.count = 3'000;
        cfg.packet_size = 1000;
        cfg.rate_mbps = rate;
        const auto stats = f.generate(cfg);
        EXPECT_NEAR(stats.achieved_mbps(), rate, rate * 0.02);
    }
}

TEST(Pktgen, DistributionDrivesPacketSizes) {
    Fixture f;
    GenConfig cfg;
    cfg.count = 20'000;
    cfg.size_dist.emplace(dist::mwn_trace_histogram());
    cfg.use_dist = true;
    cfg.rate_mbps = 500.0;
    Generator gen{f.sim, f.link, GenNicModel::syskonnect(), std::move(cfg)};
    gen.start(sim::SimTime{});
    f.sim.run();
    ASSERT_EQ(f.sink.packets.size(), 20'000u);
    // Mean IP size should track the distribution's ~645 bytes; frame adds 14.
    double mean = 0;
    for (const auto& p : f.sink.packets) mean += p->frame_len();
    mean /= static_cast<double>(f.sink.packets.size());
    EXPECT_NEAR(mean - 14.0, 645.0, 30.0);
}

TEST(Pktgen, GenerationIsReproducibleAcrossRuns) {
    const auto sizes_for_seed = [](std::uint64_t seed) {
        Fixture f;
        GenConfig cfg;
        cfg.count = 500;
        cfg.seed = seed;
        cfg.size_dist.emplace(dist::mwn_trace_histogram());
        cfg.use_dist = true;
        Generator gen{f.sim, f.link, GenNicModel::syskonnect(), std::move(cfg)};
        gen.start(sim::SimTime{});
        f.sim.run();
        std::vector<std::uint32_t> sizes;
        for (const auto& p : f.sink.packets) sizes.push_back(p->frame_len());
        return sizes;
    };
    EXPECT_EQ(sizes_for_seed(42), sizes_for_seed(42));
    EXPECT_NE(sizes_for_seed(42), sizes_for_seed(43));
}

TEST(Pktgen, FullBytesBuildValidFrames) {
    Fixture f;
    GenConfig cfg;
    cfg.count = 10;
    cfg.packet_size = 500;
    cfg.full_bytes = true;
    f.generate(cfg);
    ASSERT_EQ(f.sink.packets.size(), 10u);
    std::set<std::string> src_macs;
    for (const auto& p : f.sink.packets) {
        ASSERT_TRUE(p->has_bytes());
        const auto eth = net::EthernetHeader::decode(p->bytes());
        EXPECT_EQ(eth.ether_type, net::kEtherTypeIpv4);
        src_macs.insert(eth.src.to_string());
        const auto ip = net::Ipv4Header::decode(p->bytes().subspan(14));
        EXPECT_EQ(ip.total_length, 500);
        EXPECT_EQ(ip.protocol, net::kIpProtoUdp);
        EXPECT_EQ(ip.src.to_string(), "192.168.10.100");
        EXPECT_EQ(ip.dst.to_string(), "192.168.10.12");
        const auto udp = net::UdpHeader::decode(p->bytes().subspan(34));
        EXPECT_EQ(udp.dst_port, 9);
    }
    // Source MAC cycles through three addresses (Section 6.3.2).
    EXPECT_EQ(src_macs.size(), 3u);
}

TEST(Pktgen, TinySizesPaddedToMinimumFrame) {
    Fixture f;
    GenConfig cfg;
    cfg.count = 1;
    cfg.packet_size = 10;  // below IP+UDP header size
    f.generate(cfg);
    ASSERT_EQ(f.sink.packets.size(), 1u);
    EXPECT_EQ(f.sink.packets[0]->frame_len(), net::kMinFrameBytes);
}

TEST(Pgset, ConfigurationCommands) {
    Fixture f;
    Generator gen{f.sim, f.link, GenNicModel::syskonnect(), GenConfig{}};
    gen.apply_pgset("count 5000");
    gen.apply_pgset("pkt_size 700");
    gen.apply_pgset("delay 1000");
    gen.apply_pgset("dst 10.0.0.1");
    gen.apply_pgset("src 10.0.0.2");
    gen.apply_pgset("dst_mac 00:11:22:33:44:55");
    gen.apply_pgset("src_mac_count 5");
    gen.apply_pgset("udp_dst_port 1234");
    EXPECT_EQ(gen.config().count, 5000u);
    EXPECT_EQ(gen.config().packet_size, 700u);
    EXPECT_EQ(gen.config().delay_ns, 1000);
    EXPECT_EQ(gen.config().dst_ip.to_string(), "10.0.0.1");
    EXPECT_EQ(gen.config().src_ip.to_string(), "10.0.0.2");
    EXPECT_EQ(gen.config().dst_mac.to_string(), "00:11:22:33:44:55");
    EXPECT_EQ(gen.config().src_mac_count, 5u);
    EXPECT_EQ(gen.config().udp_dst_port, 1234);
}

TEST(Pgset, DistributionInputFlow) {
    Fixture f;
    Generator gen{f.sim, f.link, GenNicModel::syskonnect(), GenConfig{}};
    // Activating before DIST_READY must fail (Appendix A.2.2 step 3).
    EXPECT_THROW(gen.apply_pgset("flag PKTSIZE_REAL"), std::runtime_error);
    gen.apply_pgset("dist 1000 20 1500 2 1");
    EXPECT_THROW(gen.apply_pgset("flag PKTSIZE_REAL"), std::runtime_error);
    gen.apply_pgset("outl 40 179");
    gen.apply_pgset("outl 1500 500");
    gen.apply_pgset("hist 100 321");
    gen.apply_pgset("flag PKTSIZE_REAL");  // DIST_READY now
    EXPECT_TRUE(gen.config().use_dist);
    // Sampled sizes come from the configured arrays.
    for (int i = 0; i < 50; ++i) {
        const auto size = gen.draw_size();
        EXPECT_TRUE(size == 40 || size == 1500 || (size >= 100 && size < 120)) << size;
    }
}

TEST(Pgset, AcceptsPgsetWrappedLines) {
    Fixture f;
    Generator gen{f.sim, f.link, GenNicModel::syskonnect(), GenConfig{}};
    gen.apply_pgset("pgset \"count 77\"");
    EXPECT_EQ(gen.config().count, 77u);
}

TEST(Pgset, RejectsMalformed) {
    Fixture f;
    Generator gen{f.sim, f.link, GenNicModel::syskonnect(), GenConfig{}};
    EXPECT_THROW(gen.apply_pgset("bogus 1"), std::runtime_error);
    EXPECT_THROW(gen.apply_pgset("count"), std::runtime_error);
    EXPECT_THROW(gen.apply_pgset("outl 40 10"), std::runtime_error);  // before dist
    EXPECT_THROW(gen.apply_pgset("flag WHATEVER"), std::runtime_error);
    gen.apply_pgset("dist 1000 20 1500 1 0");
    gen.apply_pgset("outl 40 100");
    EXPECT_THROW(gen.apply_pgset("outl 52 100"), std::runtime_error);  // too many
}

TEST(Pktgen, DelayAddsInterPacketGap) {
    Fixture base;
    GenConfig cfg;
    cfg.count = 1'000;
    cfg.packet_size = 200;
    const auto fast = base.generate(cfg);
    Fixture slowed;
    cfg.delay_ns = 10'000;
    const auto slow = slowed.generate(cfg);
    EXPECT_GT(fast.achieved_mbps(), slow.achieved_mbps() * 2.0);
}

}  // namespace
}  // namespace capbench::pktgen
