// Tests for cpusage sampling and trimusage postprocessing.
#include <gtest/gtest.h>

#include <sstream>

#include "capbench/profiling/cpusage.hpp"
#include "capbench/profiling/trimusage.hpp"

namespace capbench::profiling {
namespace {

using hostsim::ArchSpec;
using hostsim::CpuState;
using hostsim::Machine;
using hostsim::MachineSpec;
using hostsim::Work;

TEST(CpuSage, SamplesBusyFraction) {
    sim::Simulator sim;
    Machine machine{sim, MachineSpec{ArchSpec::amd_opteron(), 1, false}, {}};
    CpuSage profiler{machine, sim::milliseconds(100)};
    profiler.start();
    // 50 ms of interrupt work at the start of a 100 ms interval -> 50 %.
    machine.post_kernel_work(Work{.cycles = 1.8e9 * 0.050}, CpuState::kInterrupt, {});
    sim.run(sim::SimTime{} + sim::milliseconds(350));
    profiler.stop();
    sim.run(sim::SimTime{} + sim::milliseconds(500));
    ASSERT_GE(profiler.samples().size(), 3u);
    EXPECT_NEAR(profiler.samples()[0].interrupt_pct, 50.0, 1.0);
    EXPECT_NEAR(profiler.samples()[0].idle_pct, 50.0, 1.0);
    EXPECT_NEAR(profiler.samples()[1].busy_pct(), 0.0, 1.0);
}

TEST(CpuSage, AveragesAcrossCpus) {
    sim::Simulator sim;
    Machine machine{sim, MachineSpec{ArchSpec::amd_opteron(), 2, false}, {}};
    CpuSage profiler{machine, sim::milliseconds(100)};
    profiler.start();
    // CPU 0 busy for (almost) one interval; CPU 1 idle -> machine-wide
    // ~50 %.  (99 ms, so the completion is accounted before the sample.)
    machine.post_kernel_work(Work{.cycles = 1.8e9 * 0.099}, CpuState::kInterrupt, {});
    sim.run(sim::SimTime{} + sim::milliseconds(150));
    profiler.stop();
    sim.run(sim::SimTime{} + sim::milliseconds(300));
    ASSERT_GE(profiler.samples().size(), 1u);
    EXPECT_NEAR(profiler.samples()[0].interrupt_pct, 49.5, 1.0);
}

TEST(CpuSage, PrintFormats) {
    sim::Simulator sim;
    Machine machine{sim, MachineSpec{ArchSpec::amd_opteron(), 1, false}, {}};
    CpuSage profiler{machine, sim::milliseconds(100)};
    profiler.start();
    sim.run(sim::SimTime{} + sim::milliseconds(150));
    profiler.stop();
    sim.run(sim::SimTime{} + sim::milliseconds(300));
    std::ostringstream human;
    profiler.print(human);
    EXPECT_NE(human.str().find("idle"), std::string::npos);
    std::ostringstream machine_readable;
    profiler.print(machine_readable, true);
    EXPECT_EQ(machine_readable.str().find("idle"), std::string::npos);
    EXPECT_NE(machine_readable.str().find(':'), std::string::npos);
}

UsageSample busy(double pct) {
    UsageSample s;
    s.user_pct = pct;
    s.idle_pct = 100.0 - pct;
    return s;
}

TEST(TrimUsage, FindsLongestBusyRun) {
    // idle: 100 100 20 30 100 10 10 10 100 -> longest run is [5..7].
    std::vector<UsageSample> samples{busy(0),  busy(0),  busy(80), busy(70), busy(0),
                                     busy(90), busy(90), busy(90), busy(0)};
    const auto result = trim_usage(samples, 95.0);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->run_start, 5u);
    EXPECT_EQ(result->run_length, 3u);
    EXPECT_NEAR(result->average.user_pct, 90.0, 1e-9);
    EXPECT_NEAR(result->average.idle_pct, 10.0, 1e-9);
}

TEST(TrimUsage, NoBusySamplesYieldsNothing) {
    std::vector<UsageSample> samples{busy(0), busy(1)};
    EXPECT_EQ(trim_usage(samples, 95.0), std::nullopt);
    EXPECT_EQ(trim_usage({}, 95.0), std::nullopt);
}

TEST(TrimUsage, TiesPreferEarlierRun) {
    std::vector<UsageSample> samples{busy(50), busy(50), busy(0), busy(60), busy(60)};
    const auto result = trim_usage(samples, 95.0);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->run_start, 0u);
    EXPECT_EQ(result->run_length, 2u);
}

TEST(TrimUsage, CustomLimitRespected) {
    // With limit 50, only samples with idle < 50 count.
    std::vector<UsageSample> samples{busy(40), busy(60), busy(70), busy(40)};
    const auto result = trim_usage(samples, 50.0);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->run_start, 1u);
    EXPECT_EQ(result->run_length, 2u);
}

TEST(TrimUsage, WholeRunBusy) {
    std::vector<UsageSample> samples{busy(99), busy(98), busy(97)};
    const auto result = trim_usage(samples, 95.0);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->run_length, 3u);
    EXPECT_NEAR(result->average.user_pct, 98.0, 1e-9);
}

}  // namespace
}  // namespace capbench::profiling
