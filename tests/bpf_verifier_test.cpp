// Tests for the verifier pipeline (dominators, liveness, fact table,
// structured findings), the tier-1 decoded/threaded execution path, the
// program cache, and the attach-time gate in the capture stacks.  Ends
// with the interpreter-vs-threaded property sweep over randomly generated
// valid programs.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "capbench/bpf/asm_text.hpp"
#include "capbench/bpf/analysis/dominators.hpp"
#include "capbench/bpf/analysis/fact_table.hpp"
#include "capbench/bpf/analysis/liveness.hpp"
#include "capbench/bpf/decoded.hpp"
#include "capbench/bpf/program_cache.hpp"
#include "capbench/bpf/threaded_vm.hpp"
#include "capbench/bpf/validator.hpp"
#include "capbench/bpf/verifier.hpp"
#include "capbench/bpf/vm.hpp"
#include "capbench/capture/bsd_bpf.hpp"
#include "capbench/capture/linux_socket.hpp"
#include "capbench/capture/mmap_ring.hpp"
#include "capbench/obs/observer.hpp"

#include "bpf_random_program.hpp"

namespace capbench::bpf {
namespace {

using analysis::Cfg;
using analysis::DomTree;
using analysis::FactTable;
using analysis::kLiveA;
using analysis::kLiveX;
using analysis::Liveness;
using analysis::Severity;

std::vector<std::byte> bytes(std::initializer_list<int> values) {
    std::vector<std::byte> out;
    for (const int v : values) out.push_back(static_cast<std::byte>(v));
    return out;
}

// ---- dominators ---------------------------------------------------------------

TEST(Dominators, DiamondJoinIsDominatedByTheBranchNotTheArms) {
    // 0: ldb [0]
    // 1: jeq #5 ? ->2 : ->3
    // 2: ja ->4
    // 3: ja ->4
    // 4: ret #1
    const Program prog{stmt(BPF_LD | BPF_B | BPF_ABS, 0),
                       jump(BPF_JMP | BPF_JEQ | BPF_K, 5, 0, 1),
                       jump(BPF_JMP | BPF_JA, 1, 0, 0),
                       jump(BPF_JMP | BPF_JA, 0, 0, 0),
                       stmt(BPF_RET | BPF_K, 1)};
    ASSERT_EQ(validate(prog), std::nullopt);
    const Cfg cfg = Cfg::build(prog);
    const DomTree dom = DomTree::build(cfg);

    // The branch head (insns 0-1) dominates everything downstream.
    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        EXPECT_TRUE(insn_dominates(cfg, dom, 0, pc)) << pc;
        if (pc >= 1) EXPECT_TRUE(insn_dominates(cfg, dom, 1, pc)) << pc;
    }
    // Neither arm dominates the join.
    EXPECT_FALSE(insn_dominates(cfg, dom, 2, 4));
    EXPECT_FALSE(insn_dominates(cfg, dom, 3, 4));
    // Arms do not dominate each other.
    EXPECT_FALSE(insn_dominates(cfg, dom, 2, 3));
    EXPECT_FALSE(insn_dominates(cfg, dom, 3, 2));

    // Immediate dominator instructions: straight-line predecessor within a
    // block, branch tail across blocks, the branch (not an arm) at the join.
    EXPECT_EQ(analysis::idom_insn(cfg, dom, 0), -1);
    EXPECT_EQ(analysis::idom_insn(cfg, dom, 1), 0);
    EXPECT_EQ(analysis::idom_insn(cfg, dom, 2), 1);
    EXPECT_EQ(analysis::idom_insn(cfg, dom, 3), 1);
    EXPECT_EQ(analysis::idom_insn(cfg, dom, 4), 1);
}

TEST(Dominators, UnreachableInsnsDominateNothing) {
    const Program prog{jump(BPF_JMP | BPF_JA, 1, 0, 0), stmt(BPF_LD | BPF_IMM, 1),
                       stmt(BPF_RET | BPF_K, 1)};
    ASSERT_EQ(validate(prog), std::nullopt);
    const Cfg cfg = Cfg::build(prog);
    const DomTree dom = DomTree::build(cfg);
    EXPECT_FALSE(insn_dominates(cfg, dom, 1, 2));
    EXPECT_EQ(analysis::idom_insn(cfg, dom, 1), -1);
    EXPECT_EQ(analysis::idom_insn(cfg, dom, 2), 0);
}

// ---- liveness -----------------------------------------------------------------

TEST(Liveness, FlagsOverwrittenAccumulatorLoadAsDead) {
    const Program prog{stmt(BPF_LD | BPF_IMM, 1), stmt(BPF_LD | BPF_IMM, 2),
                       stmt(BPF_RET | BPF_A, 0)};
    const Liveness live = Liveness::build(prog);
    EXPECT_TRUE(live.dead_store[0]);
    EXPECT_FALSE(live.dead_store[1]);
    EXPECT_EQ(live.live_out[1] & kLiveA, kLiveA);
    EXPECT_EQ(live.live_out[0] & kLiveA, 0u);
}

TEST(Liveness, FlagsShadowedScratchStoreAsDead) {
    const Program prog{stmt(BPF_LD | BPF_IMM, 1),
                       stmt(BPF_ST, 3),  // shadowed before any read
                       stmt(BPF_ST, 3),
                       stmt(BPF_LD | BPF_W | BPF_MEM, 3),
                       stmt(BPF_RET | BPF_A, 0)};
    const Liveness live = Liveness::build(prog);
    EXPECT_TRUE(live.dead_store[1]);
    EXPECT_FALSE(live.dead_store[2]);
    EXPECT_EQ(live.live_out[2] & analysis::live_mem_bit(3), analysis::live_mem_bit(3));
}

TEST(Liveness, PacketLoadsAndDivisionsAreNeverDead) {
    // The load's result is overwritten unread, but the load itself can
    // reject the packet — it must survive.
    const Program load{stmt(BPF_LD | BPF_B | BPF_ABS, 0), stmt(BPF_LD | BPF_IMM, 2),
                       stmt(BPF_RET | BPF_A, 0)};
    EXPECT_FALSE(Liveness::build(load).dead_store[0]);
    // Same for a division by X, which can fault.
    const Program divx{stmt(BPF_LDX | BPF_W | BPF_IMM, 2), stmt(BPF_LD | BPF_IMM, 8),
                       stmt(BPF_ALU | BPF_DIV | BPF_X, 0), stmt(BPF_LD | BPF_IMM, 1),
                       stmt(BPF_RET | BPF_A, 0)};
    EXPECT_FALSE(Liveness::build(divx).dead_store[2]);
}

// ---- fact table ---------------------------------------------------------------

TEST(FactTable, DominatingLoadProvesLaterLoadsInBounds) {
    // A successful word load at 0 proves 4 data bytes on every
    // continuation, so the byte load at 2 can never reject.
    const Program prog{stmt(BPF_LD | BPF_W | BPF_ABS, 0), stmt(BPF_LD | BPF_B | BPF_ABS, 2),
                       stmt(BPF_RET | BPF_A, 0)};
    const FactTable facts = FactTable::build(prog);
    EXPECT_FALSE(facts[0].safe_load);
    EXPECT_EQ(facts[1].min_data_len, 4u);
    EXPECT_TRUE(facts[1].safe_load);
}

TEST(FactTable, IdenticalRepeatLoadIsRedundant) {
    const Program prog{stmt(BPF_LD | BPF_B | BPF_ABS, 6), stmt(BPF_LD | BPF_B | BPF_ABS, 6),
                       stmt(BPF_RET | BPF_A, 0)};
    const FactTable facts = FactTable::build(prog);
    EXPECT_FALSE(facts[0].redundant_load);
    EXPECT_TRUE(facts[1].redundant_load);
    EXPECT_TRUE(facts[1].safe_load);
}

TEST(FactTable, LenGuardProvesWireLengthButNeverDataBounds) {
    // jge len, 40 proves min_wire_len on the taken path — but a truncated
    // capture can hold fewer data bytes than its wire length, so the load
    // stays checked.
    const Program prog{stmt(BPF_LD | BPF_W | BPF_LEN, 0),
                       jump(BPF_JMP | BPF_JGE | BPF_K, 40, 0, 1),
                       stmt(BPF_LD | BPF_B | BPF_ABS, 20),  // guarded by LEN only
                       stmt(BPF_RET | BPF_K, 0)};
    const FactTable facts = FactTable::build(prog);
    EXPECT_GE(facts[2].min_wire_len, 40u);
    EXPECT_EQ(facts[2].min_data_len, 0u);
    EXPECT_FALSE(facts[2].safe_load);
}

TEST(FactTable, JoinTakesTheMinimumProof) {
    // One arm proves 4 bytes, the other proves nothing extra; the join
    // keeps only what both arms guarantee.
    const Program prog{stmt(BPF_LD | BPF_B | BPF_ABS, 0),       // proves 1 byte
                       jump(BPF_JMP | BPF_JEQ | BPF_K, 5, 0, 1),
                       stmt(BPF_LD | BPF_W | BPF_ABS, 0),       // proves 4 bytes
                       stmt(BPF_LD | BPF_B | BPF_ABS, 2),       // join target
                       stmt(BPF_RET | BPF_A, 0)};
    const FactTable facts = FactTable::build(prog);
    // Insn 3 is reached with 4 proven bytes via insn 2 but only 1 via the
    // jump's false edge: min wins, the 3-byte-deep load stays checked.
    EXPECT_EQ(facts[3].min_data_len, 1u);
    EXPECT_FALSE(facts[3].safe_load);
}

TEST(FactTable, ConstantScratchRoundTripFolds) {
    const Program prog{stmt(BPF_LD | BPF_IMM, 77), stmt(BPF_ST, 2),
                       stmt(BPF_LD | BPF_IMM, 0), stmt(BPF_LD | BPF_W | BPF_MEM, 2),
                       stmt(BPF_RET | BPF_A, 0)};
    const FactTable facts = FactTable::build(prog);
    ASSERT_TRUE(facts[3].const_result);
    EXPECT_EQ(facts[3].const_value, 77u);
}

// ---- verifier -----------------------------------------------------------------

TEST(Verifier, CleanProgramHasFactSummaryAndNoErrors) {
    const Program prog{stmt(BPF_LD | BPF_W | BPF_ABS, 0), stmt(BPF_LD | BPF_B | BPF_ABS, 2),
                       stmt(BPF_RET | BPF_A, 0)};
    const VerifyResult result = verify(prog);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.first_error(), nullptr);
    EXPECT_EQ(result.facts.size(), prog.size());
    bool saw_elidable = false;
    for (const auto& f : result.findings) {
        EXPECT_NE(f.severity, Severity::kError);
        if (f.message.find("elidable") != std::string::npos) saw_elidable = true;
    }
    EXPECT_TRUE(saw_elidable);
}

TEST(Verifier, ValidatorRejectionBecomesASingleErrorFinding) {
    const Program missing_ret{stmt(BPF_LD | BPF_IMM, 1)};
    const VerifyResult result = verify(missing_ret);
    EXPECT_FALSE(result.ok());
    ASSERT_NE(result.first_error(), nullptr);
    EXPECT_EQ(result.first_error()->severity, Severity::kError);
    EXPECT_TRUE(result.facts.empty());
}

TEST(Verifier, UnreachableCodeIsAWarningNotARejection) {
    const Program prog{jump(BPF_JMP | BPF_JA, 1, 0, 0), stmt(BPF_LD | BPF_IMM, 1),
                       stmt(BPF_RET | BPF_K, 1)};
    const VerifyResult result = verify(prog);
    EXPECT_TRUE(result.ok());
    bool saw_unreachable = false;
    for (const auto& f : result.findings)
        if (f.severity == Severity::kWarning &&
            f.message.find("unreachable") != std::string::npos)
            saw_unreachable = true;
    EXPECT_TRUE(saw_unreachable);
}

TEST(Verifier, FindingsAreSortedErrorsFirst) {
    const VerifyResult result = verify({});
    ASSERT_FALSE(result.findings.empty());
    for (std::size_t i = 1; i < result.findings.size(); ++i)
        EXPECT_LE(static_cast<int>(result.findings[i - 1].severity),
                  static_cast<int>(result.findings[i].severity));
}

TEST(Verifier, ThrowCarriesTheStructuredFinding) {
    try {
        verify_or_throw({});
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("BPF verifier rejected filter"),
                  std::string::npos);
    }
    EXPECT_NO_THROW(verify_or_throw(accept_all()));
}

// ---- aborted flag (interpreter) -----------------------------------------------

TEST(VmAbort, OutOfBoundsLoadSetsAborted) {
    const Program prog{stmt(BPF_LD | BPF_W | BPF_ABS, 0), stmt(BPF_RET | BPF_K, 1)};
    const VmResult r = Vm::run(prog, bytes({1, 2}));
    EXPECT_EQ(r.accept_len, 0u);
    EXPECT_TRUE(r.aborted);
}

TEST(VmAbort, DivisionByZeroSetsAborted) {
    const Program prog{stmt(BPF_LDX | BPF_W | BPF_IMM, 0), stmt(BPF_LD | BPF_IMM, 7),
                       stmt(BPF_ALU | BPF_DIV | BPF_X, 0), stmt(BPF_RET | BPF_K, 1)};
    EXPECT_TRUE(Vm::run(prog, {}).aborted);
}

TEST(VmAbort, OrdinaryRejectIsNotAborted) {
    const VmResult r = Vm::run(reject_all(), bytes({1}));
    EXPECT_EQ(r.accept_len, 0u);
    EXPECT_FALSE(r.aborted);
}

// ---- decode + threaded vm -----------------------------------------------------

TEST(Decode, ProvenLoadsBecomeUncheckedTokens) {
    const Program prog{stmt(BPF_LD | BPF_W | BPF_ABS, 0), stmt(BPF_LD | BPF_B | BPF_ABS, 2),
                       stmt(BPF_RET | BPF_A, 0)};
    const DecodedProgram d = decode(prog, FactTable::build(prog));
    EXPECT_EQ(d.insns[0].tok, Tok::kLdAbsW);
    EXPECT_EQ(d.insns[1].tok, Tok::kLdAbsBU);
    EXPECT_EQ(d.stats.packet_loads, 2u);
    EXPECT_EQ(d.stats.unchecked_loads, 1u);
}

TEST(Decode, ConstantScratchLoadFoldsToImmediate) {
    const Program prog{stmt(BPF_LD | BPF_IMM, 77), stmt(BPF_ST, 2),
                       stmt(BPF_LD | BPF_IMM, 0), stmt(BPF_LD | BPF_W | BPF_MEM, 2),
                       stmt(BPF_RET | BPF_A, 0)};
    const DecodedProgram d = decode(prog, FactTable::build(prog));
    EXPECT_EQ(d.insns[3].tok, Tok::kLdImm);
    EXPECT_EQ(d.insns[3].k, 77u);
    EXPECT_EQ(d.stats.folded_loads, 1u);
    EXPECT_EQ(ThreadedVm::run(d, {}).accept_len, 77u);
}

TEST(Decode, OverShiftFoldsToZeroImmediate) {
    const Program prog{stmt(BPF_LD | BPF_IMM, 0xFFFF), stmt(BPF_ALU | BPF_LSH | BPF_K, 33),
                       stmt(BPF_RET | BPF_A, 0)};
    const DecodedProgram d = decode(prog, FactTable::build(prog));
    EXPECT_EQ(d.insns[1].tok, Tok::kLdImm);
    EXPECT_EQ(d.insns[1].k, 0u);
    EXPECT_EQ(ThreadedVm::run(d, {}).accept_len, 0u);
}

TEST(Decode, JumpTargetsBecomeAbsolute) {
    const Program prog{jump(BPF_JMP | BPF_JA, 1, 0, 0), stmt(BPF_RET | BPF_K, 0),
                       stmt(BPF_RET | BPF_K, 42)};
    const DecodedProgram d = decode(prog, FactTable::build(prog));
    EXPECT_EQ(d.insns[0].tok, Tok::kJa);
    EXPECT_EQ(d.insns[0].jt, 2u);
    EXPECT_EQ(ThreadedVm::run(d, {}).accept_len, 42u);
}

TEST(ThreadedVm, MatchesInterpreterOnAbortingLoads) {
    const Program prog{stmt(BPF_LD | BPF_W | BPF_ABS, 0), stmt(BPF_RET | BPF_K, 1)};
    const DecodedProgram d = decode(prog, FactTable::build(prog));
    const auto data = bytes({1, 2});
    const VmResult interp = Vm::run(prog, data);
    const VmResult threaded = ThreadedVm::run(d, data);
    EXPECT_TRUE(threaded.aborted);
    EXPECT_EQ(threaded.accept_len, interp.accept_len);
    EXPECT_EQ(threaded.insns_executed, interp.insns_executed);
}

TEST(ExecTierKnob, ParsesStrictly) {
    EXPECT_EQ(parse_exec_tier("threaded"), ExecTier::kThreaded);
    EXPECT_EQ(parse_exec_tier("interpreter"), ExecTier::kInterpreter);
    EXPECT_EQ(parse_exec_tier("jit"), ExecTier::kJit);
    EXPECT_THROW(parse_exec_tier("native"), std::runtime_error);
    EXPECT_THROW(parse_exec_tier(""), std::runtime_error);
}

// ---- program cache ------------------------------------------------------------

TEST(ProgramCache, SharesOneDecodedProgramPerContent) {
    const Program prog{stmt(BPF_LD | BPF_B | BPF_ABS, 9), stmt(BPF_RET | BPF_A, 0)};
    const auto first = cache_decoded(prog);
    const auto again = cache_decoded(prog);
    EXPECT_EQ(first.get(), again.get());
    EXPECT_GT(first->id, 0u);

    const Program other{stmt(BPF_LD | BPF_B | BPF_ABS, 10), stmt(BPF_RET | BPF_A, 0)};
    const auto different = cache_decoded(other);
    EXPECT_NE(different.get(), first.get());
    EXPECT_NE(different->id, first->id);
    EXPECT_GE(cached_program_count(), 2u);
}

TEST(ProgramCache, RejectsVerifierFailingPrograms) {
    EXPECT_THROW(cache_decoded({stmt(BPF_LD | BPF_IMM, 1)}), std::invalid_argument);
}

}  // namespace
}  // namespace capbench::bpf

// ---- the attach gate in the capture stacks ------------------------------------

namespace capbench::capture {
namespace {

using hostsim::ArchSpec;
using hostsim::Machine;
using hostsim::MachineSpec;

struct Fixture {
    sim::Simulator sim;
    Machine machine{sim, MachineSpec{ArchSpec::amd_opteron(), 2, false}, {}};
};

bpf::Program invalid_program() {
    return {bpf::stmt(bpf::BPF_LD | bpf::BPF_IMM, 1)};
}

/// Verifier-clean but guaranteed to fault at runtime: X = wire length,
/// then an indirect load at [x+0] — one past the last byte even of an
/// untruncated capture.
bpf::Program always_aborting_program() {
    return {bpf::stmt(bpf::BPF_LD | bpf::BPF_W | bpf::BPF_LEN, 0),
            bpf::Insn{bpf::BPF_MISC | bpf::BPF_TAX, 0, 0, 0},
            bpf::stmt(bpf::BPF_LD | bpf::BPF_B | bpf::BPF_IND, 0),
            bpf::stmt(bpf::BPF_RET | bpf::BPF_K, 1)};
}

TEST(AttachGate, AllThreeStacksRejectVerifierFailingPrograms) {
    Fixture f;
    BsdBpfDev bsd{f.machine, OsSpec::freebsd_5_4(), 1 << 20, 1515};
    LinuxPacketSocket sock{f.machine, OsSpec::linux_2_6_11(), 1 << 20, 1515, nullptr};
    MmapRing ring{f.machine, OsSpec::linux_2_6_11(), 1 << 20, 1515, 2048};
    for (StackEndpoint* endpoint : {static_cast<StackEndpoint*>(&bsd),
                                    static_cast<StackEndpoint*>(&sock),
                                    static_cast<StackEndpoint*>(&ring)}) {
        try {
            endpoint->install_filter(invalid_program());
            FAIL() << "expected std::invalid_argument";
        } catch (const std::invalid_argument& e) {
            EXPECT_NE(std::string(e.what()).find("BPF verifier rejected filter"),
                      std::string::npos);
            EXPECT_NE(std::string(e.what()).find("error"), std::string::npos);
        }
    }
}

TEST(AttachGate, AbortingFilterCountsFilterAbortsInsideDroppedFilter) {
    Fixture f;
    BsdBpfDev bsd{f.machine, OsSpec::freebsd_5_4(), 1 << 20, 1515};
    LinuxPacketSocket sock{f.machine, OsSpec::linux_2_6_11(), 1 << 20, 1515, nullptr};
    MmapRing ring{f.machine, OsSpec::linux_2_6_11(), 1 << 20, 1515, 2048};
    for (PacketTap* tap : {static_cast<PacketTap*>(&bsd), static_cast<PacketTap*>(&sock),
                           static_cast<PacketTap*>(&ring)}) {
        auto* endpoint = dynamic_cast<StackEndpoint*>(tap);
        ASSERT_NE(endpoint, nullptr);
        endpoint->install_filter(always_aborting_program());
        for (std::uint64_t id = 1; id <= 3; ++id) {
            const auto p = std::make_shared<net::Packet>(id, 600, sim::SimTime{});
            tap->plan(p, 0);
            tap->commit(p, 0);
        }
        EXPECT_EQ(endpoint->stats().accepted, 0u);
        EXPECT_EQ(endpoint->stats().dropped_filter, 3u);
        EXPECT_EQ(endpoint->stats().filter_aborts, 3u);
    }
}

TEST(AttachGate, AbortCounterReachesTheObsRegistry) {
    obs::Observer observer;
    obs::SutObserver& sut = observer.add_sut("swan", 1);
    sut.app(0).filter_aborted();
    sut.app(0).filter_aborted();
    EXPECT_EQ(observer.registry().counter("capture.swan.app0.filter_aborts").value(), 2u);
}

}  // namespace
}  // namespace capbench::capture

// ---- interpreter vs. threaded property sweep ----------------------------------

namespace capbench::bpf {
namespace {

using testgen::random_program;

TEST(TierEquivalence, ThousandRandomProgramsMatchByteForByte) {
    std::mt19937 rng{20260809};
    int programs = 0;
    int aborts_seen = 0;
    while (programs < 1000) {
        const Program prog = random_program(rng);
        ASSERT_EQ(validate(prog), std::nullopt) << disassemble(prog);
        ++programs;
        const DecodedProgram decoded = decode(prog, analysis::FactTable::build(prog));

        for (int trial = 0; trial < 4; ++trial) {
            std::vector<std::byte> data(rng() % 100);
            for (auto& b : data) b = static_cast<std::byte>(rng() & 0xFF);
            // wire_len >= data.size(): truncated captures included.
            const auto wire =
                static_cast<std::uint32_t>(data.size() + rng() % 64);
            const VmResult interp = Vm::run(prog, data, wire);
            const VmResult threaded = ThreadedVm::run(decoded, data, wire);
            ASSERT_EQ(interp.accept_len, threaded.accept_len)
                << disassemble(prog) << "data size " << data.size() << " wire " << wire;
            ASSERT_EQ(interp.aborted, threaded.aborted) << disassemble(prog);
            ASSERT_EQ(interp.insns_executed, threaded.insns_executed) << disassemble(prog);
            if (interp.aborted) ++aborts_seen;
        }
    }
    // The generator must actually exercise the abort paths (OOB loads,
    // div-by-zero) for the equivalence claim to mean anything.
    EXPECT_GT(aborts_seen, 0);
}

}  // namespace
}  // namespace capbench::bpf
