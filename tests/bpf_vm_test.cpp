// Tests for the BPF instruction set, interpreter and validator.
#include <gtest/gtest.h>

#include <vector>

#include "capbench/bpf/asm_text.hpp"
#include "capbench/bpf/insn.hpp"
#include "capbench/bpf/validator.hpp"
#include "capbench/bpf/vm.hpp"

namespace capbench::bpf {
namespace {

std::vector<std::byte> bytes(std::initializer_list<int> values) {
    std::vector<std::byte> out;
    for (const int v : values) out.push_back(static_cast<std::byte>(v));
    return out;
}

TEST(Vm, AcceptAllAndRejectAll) {
    const auto data = bytes({1, 2, 3, 4});
    EXPECT_EQ(Vm::run(accept_all(), data).accept_len, 0xFFFFFFFFu);
    EXPECT_EQ(Vm::run(reject_all(), data).accept_len, 0u);
}

TEST(Vm, LoadsAbsoluteWordHalfByte) {
    const auto data = bytes({0x11, 0x22, 0x33, 0x44, 0x55});
    const Program word{stmt(BPF_LD | BPF_W | BPF_ABS, 0), stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(word, data).accept_len, 0x11223344u);
    const Program half{stmt(BPF_LD | BPF_H | BPF_ABS, 1), stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(half, data).accept_len, 0x2233u);
    const Program byte{stmt(BPF_LD | BPF_B | BPF_ABS, 4), stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(byte, data).accept_len, 0x55u);
}

TEST(Vm, OutOfBoundsLoadRejects) {
    const auto data = bytes({1, 2});
    const Program prog{stmt(BPF_LD | BPF_W | BPF_ABS, 0), stmt(BPF_RET | BPF_K, 99)};
    const auto result = Vm::run(prog, data);
    EXPECT_EQ(result.accept_len, 0u);
    EXPECT_EQ(result.insns_executed, 1u);
}

TEST(Vm, IndirectLoadUsesX) {
    const auto data = bytes({0, 0, 0, 0xAB});
    const Program prog{stmt(BPF_LDX | BPF_W | BPF_IMM, 2),
                       stmt(BPF_LD | BPF_B | BPF_IND, 1),  // data[2+1]
                       stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(prog, data).accept_len, 0xABu);
}

TEST(Vm, MshComputesIpHeaderLength) {
    // Byte 0x47 -> IHL 7 -> X = 28.
    const auto data = bytes({0x47});
    const Program prog{stmt(BPF_LDX | BPF_B | BPF_MSH, 0), Insn{BPF_MISC | BPF_TXA, 0, 0, 0},
                       stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(prog, data).accept_len, 28u);
}

TEST(Vm, LenLoadsWireLength) {
    const auto data = bytes({1, 2});
    const Program prog{stmt(BPF_LD | BPF_W | BPF_LEN, 0), stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(prog, data, 1514).accept_len, 1514u);
}

TEST(Vm, ScratchMemoryStoresAndLoads) {
    const auto data = bytes({});
    const Program prog{stmt(BPF_LD | BPF_IMM, 77), stmt(BPF_ST, 3),
                       stmt(BPF_LD | BPF_IMM, 0), stmt(BPF_LD | BPF_W | BPF_MEM, 3),
                       stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(prog, data).accept_len, 77u);
}

TEST(Vm, StxAndLdxMem) {
    const auto data = bytes({});
    const Program prog{stmt(BPF_LDX | BPF_W | BPF_IMM, 55), stmt(BPF_STX, 7),
                       stmt(BPF_LD | BPF_W | BPF_MEM, 7), stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(prog, data).accept_len, 55u);
}

struct AluCase {
    std::uint16_t op;
    std::uint32_t a;
    std::uint32_t k;
    std::uint32_t expect;
};

class VmAluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(VmAluTest, ComputesK) {
    const auto c = GetParam();
    const Program prog{stmt(BPF_LD | BPF_IMM, c.a), stmt(BPF_ALU | c.op | BPF_K, c.k),
                       stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(prog, {}).accept_len, c.expect);
}

TEST_P(VmAluTest, ComputesX) {
    const auto c = GetParam();
    if (c.op == BPF_NEG) GTEST_SKIP() << "NEG has no X form";
    const Program prog{stmt(BPF_LDX | BPF_W | BPF_IMM, c.k), stmt(BPF_LD | BPF_IMM, c.a),
                       stmt(BPF_ALU | c.op | BPF_X, 0), stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(prog, {}).accept_len, c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    AluOps, VmAluTest,
    ::testing::Values(AluCase{BPF_ADD, 7, 3, 10}, AluCase{BPF_SUB, 7, 3, 4},
                      AluCase{BPF_MUL, 7, 3, 21}, AluCase{BPF_DIV, 7, 3, 2},
                      AluCase{BPF_OR, 0xF0, 0x0F, 0xFF}, AluCase{BPF_AND, 0xF0, 0x30, 0x30},
                      AluCase{BPF_LSH, 1, 4, 16}, AluCase{BPF_RSH, 16, 4, 1},
                      AluCase{BPF_ADD, 0xFFFFFFFF, 1, 0},   // wraparound
                      AluCase{BPF_SUB, 0, 1, 0xFFFFFFFF}));  // underflow wraps

TEST(Vm, NegNegates) {
    const Program prog{stmt(BPF_LD | BPF_IMM, 5), stmt(BPF_ALU | BPF_NEG, 0),
                       stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(prog, {}).accept_len, static_cast<std::uint32_t>(-5));
}

TEST(Vm, DivisionByZeroRejects) {
    const Program prog{stmt(BPF_LDX | BPF_W | BPF_IMM, 0), stmt(BPF_LD | BPF_IMM, 7),
                       stmt(BPF_ALU | BPF_DIV | BPF_X, 0), stmt(BPF_RET | BPF_K, 1)};
    EXPECT_EQ(Vm::run(prog, {}).accept_len, 0u);
}

TEST(Vm, ShiftBeyondWidthYieldsZero) {
    const Program prog{stmt(BPF_LD | BPF_IMM, 0xFFFF), stmt(BPF_ALU | BPF_LSH | BPF_K, 33),
                       stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(prog, {}).accept_len, 0u);
}

TEST(Vm, ConditionalJumpsTakeCorrectBranch) {
    const auto make = [](std::uint16_t op, std::uint32_t a, std::uint32_t k) {
        return Program{stmt(BPF_LD | BPF_IMM, a), jump(BPF_JMP | op | BPF_K, k, 0, 1),
                       stmt(BPF_RET | BPF_K, 1), stmt(BPF_RET | BPF_K, 0)};
    };
    EXPECT_EQ(Vm::run(make(BPF_JEQ, 5, 5), {}).accept_len, 1u);
    EXPECT_EQ(Vm::run(make(BPF_JEQ, 5, 6), {}).accept_len, 0u);
    EXPECT_EQ(Vm::run(make(BPF_JGT, 6, 5), {}).accept_len, 1u);
    EXPECT_EQ(Vm::run(make(BPF_JGT, 5, 5), {}).accept_len, 0u);
    EXPECT_EQ(Vm::run(make(BPF_JGE, 5, 5), {}).accept_len, 1u);
    EXPECT_EQ(Vm::run(make(BPF_JGE, 4, 5), {}).accept_len, 0u);
    EXPECT_EQ(Vm::run(make(BPF_JSET, 0x6, 0x2), {}).accept_len, 1u);
    EXPECT_EQ(Vm::run(make(BPF_JSET, 0x4, 0x2), {}).accept_len, 0u);
}

TEST(Vm, UnconditionalJumpSkips) {
    const Program prog{jump(BPF_JMP | BPF_JA, 1, 0, 0), stmt(BPF_RET | BPF_K, 0),
                       stmt(BPF_RET | BPF_K, 42)};
    EXPECT_EQ(Vm::run(prog, {}).accept_len, 42u);
}

TEST(Vm, TaxTxaTransfer) {
    const Program prog{stmt(BPF_LD | BPF_IMM, 9), Insn{BPF_MISC | BPF_TAX, 0, 0, 0},
                       stmt(BPF_LD | BPF_IMM, 0), Insn{BPF_MISC | BPF_TXA, 0, 0, 0},
                       stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(Vm::run(prog, {}).accept_len, 9u);
}

TEST(Vm, CountsExecutedInstructions) {
    const Program prog{stmt(BPF_LD | BPF_IMM, 1), stmt(BPF_LD | BPF_IMM, 2),
                       stmt(BPF_RET | BPF_K, 1)};
    EXPECT_EQ(Vm::run(prog, {}).insns_executed, 3u);
}

TEST(Vm, RetXFormsRejected) {
    // bpf has no RET|X; rval must be K or A.  Unknown rval returns via the
    // validator; the VM treats rval != A as K.
    const Program prog{stmt(BPF_RET | BPF_K, 7)};
    EXPECT_EQ(Vm::run(prog, {}).accept_len, 7u);
}

// ---- validator ----------------------------------------------------------------

TEST(Validator, AcceptsCanonicalPrograms) {
    EXPECT_EQ(validate(accept_all()), std::nullopt);
    EXPECT_EQ(validate(reject_all()), std::nullopt);
}

TEST(Validator, RejectsEmptyAndOversized) {
    EXPECT_NE(validate({}), std::nullopt);
    Program huge(kMaxInsns + 1, stmt(BPF_RET | BPF_K, 0));
    EXPECT_NE(validate(huge), std::nullopt);
}

TEST(Validator, RejectsMissingRet) {
    const Program prog{stmt(BPF_LD | BPF_IMM, 1)};
    EXPECT_NE(validate(prog), std::nullopt);
}

TEST(Validator, RejectsJumpOutOfRange) {
    const Program prog{jump(BPF_JMP | BPF_JEQ | BPF_K, 0, 5, 0), stmt(BPF_RET | BPF_K, 0)};
    EXPECT_NE(validate(prog), std::nullopt);
    const Program ja{jump(BPF_JMP | BPF_JA, 5, 0, 0), stmt(BPF_RET | BPF_K, 0)};
    EXPECT_NE(validate(ja), std::nullopt);
}

TEST(Validator, RejectsJumpToEndOfProgram) {
    // Offset that lands exactly one past the last instruction.
    const Program prog{jump(BPF_JMP | BPF_JA, 1, 0, 0), stmt(BPF_RET | BPF_K, 0)};
    EXPECT_NE(validate(prog), std::nullopt);
}

TEST(Validator, RejectsConstantDivByZero) {
    const Program prog{stmt(BPF_ALU | BPF_DIV | BPF_K, 0), stmt(BPF_RET | BPF_K, 0)};
    EXPECT_NE(validate(prog), std::nullopt);
}

TEST(Validator, RejectsScratchOutOfRange) {
    const Program st{stmt(BPF_ST, kMemWords), stmt(BPF_RET | BPF_K, 0)};
    EXPECT_NE(validate(st), std::nullopt);
    const Program ld{stmt(BPF_LD | BPF_W | BPF_MEM, kMemWords), stmt(BPF_RET | BPF_K, 0)};
    EXPECT_NE(validate(ld), std::nullopt);
}

TEST(Validator, RejectsUnknownOpcodes) {
    const Program prog{Insn{0xFFFF, 0, 0, 0}, stmt(BPF_RET | BPF_K, 0)};
    EXPECT_NE(validate(prog), std::nullopt);
}

TEST(Validator, RejectsJunkBitsInKnownClasses) {
    // Opcodes whose class decodes but which carry stray mode/source bits.
    // Class-based masking used to let these through; exact enumeration
    // (like sk_chk_filter) must reject them.
    const auto invalid_single = [](std::uint16_t code) {
        const Program prog{stmt(code, 0), stmt(BPF_RET | BPF_K, 0)};
        return validate(prog) != std::nullopt;
    };
    EXPECT_TRUE(invalid_single(0x0d));                       // JA with the X source bit
    EXPECT_TRUE(invalid_single(BPF_ALU | BPF_NEG | BPF_X));  // NEG takes no source
    EXPECT_TRUE(invalid_single(BPF_ST | 0x20));              // ST with a mode bit
    EXPECT_TRUE(invalid_single(BPF_STX | 0x40));
    EXPECT_TRUE(invalid_single(BPF_MISC | 0x08));            // neither TAX nor TXA
    const Program ret_junk{stmt((BPF_RET | BPF_K) | 0x20, 0)};
    EXPECT_NE(validate(ret_junk), std::nullopt);
}

TEST(Validator, AcceptsDegenerateConditionalJump) {
    // jt == jf is pointless but legal; both offsets must still be range
    // checked (the analyzer warns about it and the optimizer collapses it).
    const Program prog{
        stmt(BPF_LD | BPF_B | BPF_ABS, 0),
        jump(BPF_JMP | BPF_JEQ | BPF_K, 5, 1, 1),
        stmt(BPF_RET | BPF_K, 1),  // skipped by both edges
        stmt(BPF_RET | BPF_K, 2),
    };
    EXPECT_EQ(validate(prog), std::nullopt);
    const Program out_of_range{
        jump(BPF_JMP | BPF_JEQ | BPF_K, 5, 2, 2),  // both edges out of range
        stmt(BPF_RET | BPF_K, 0),
    };
    EXPECT_NE(validate(out_of_range), std::nullopt);
}

TEST(Validator, ThrowHelperThrows) {
    EXPECT_THROW(validate_or_throw({}), std::invalid_argument);
    EXPECT_NO_THROW(validate_or_throw(accept_all()));
}

// ---- disassembler --------------------------------------------------------------

TEST(AsmText, DisassemblesRepresentativeOpcodes) {
    EXPECT_EQ(disassemble_insn(stmt(BPF_LD | BPF_H | BPF_ABS, 12)), "ldh [12]");
    EXPECT_EQ(disassemble_insn(jump(BPF_JMP | BPF_JEQ | BPF_K, 0x800, 2, 5)),
              "jeq #0x800 jt 2 jf 5");
    EXPECT_EQ(disassemble_insn(stmt(BPF_RET | BPF_K, 96)), "ret #96");
    EXPECT_EQ(disassemble_insn(stmt(BPF_LDX | BPF_B | BPF_MSH, 14)), "ldxb 4*([14]&0xf)");
    EXPECT_EQ(disassemble_insn(stmt(BPF_ALU | BPF_AND | BPF_K, 0x1FFF)), "and #0x1fff");
    EXPECT_EQ(disassemble_insn(jump(BPF_JMP | BPF_JA, 3, 0, 0)), "ja +3");
}

TEST(AsmText, ProgramListingHasLineNumbers) {
    const auto text = disassemble(accept_all());
    EXPECT_NE(text.find("(000) ret #"), std::string::npos);
}

}  // namespace
}  // namespace capbench::bpf
