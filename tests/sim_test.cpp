// Tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "capbench/sim/event_queue.hpp"
#include "capbench/sim/random.hpp"
#include "capbench/sim/simulator.hpp"
#include "capbench/sim/stats.hpp"
#include "capbench/sim/time.hpp"

namespace capbench::sim {
namespace {

TEST(SimTime, ArithmeticAndComparison) {
    const SimTime t{1'000};
    const Duration d{500};
    EXPECT_EQ((t + d).ns(), 1'500);
    EXPECT_EQ((t - d).ns(), 500);
    EXPECT_EQ(((t + d) - t).ns(), 500);
    EXPECT_LT(t, t + d);
    EXPECT_EQ(SimTime{}.ns(), 0);
}

TEST(Duration, FactoriesConvert) {
    EXPECT_EQ(microseconds(3).ns(), 3'000);
    EXPECT_EQ(milliseconds(2).ns(), 2'000'000);
    EXPECT_EQ(seconds(1).ns(), 1'000'000'000);
    EXPECT_EQ(from_seconds(0.5).ns(), 500'000'000);
    EXPECT_EQ(from_seconds(1e-9).ns(), 1);
}

TEST(Duration, ArithmeticOperators) {
    EXPECT_EQ((Duration{10} + Duration{5}).ns(), 15);
    EXPECT_EQ((Duration{10} - Duration{5}).ns(), 5);
    EXPECT_EQ((Duration{10} * 3).ns(), 30);
    EXPECT_EQ((Duration{10} / 2).ns(), 5);
    Duration d{1};
    d += Duration{2};
    EXPECT_EQ(d.ns(), 3);
}

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.push(SimTime{30}, [&] { order.push_back(3); });
    q.push(SimTime{10}, [&] { order.push_back(1); });
    q.push(SimTime{20}, [&] { order.push_back(2); });
    while (!q.empty()) q.pop_and_run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsRunInInsertionOrder) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) q.push(SimTime{100}, [&order, i] { order.push_back(i); });
    while (!q.empty()) q.pop_and_run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelledEventDoesNotRun) {
    EventQueue q;
    bool ran = false;
    auto handle = q.push(SimTime{10}, [&] { ran = true; });
    handle.cancel();
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterRun) {
    EventQueue q;
    auto handle = q.push(SimTime{10}, [] {});
    q.pop_and_run();
    handle.cancel();  // must not crash
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PendingReflectsLifecycle) {
    EventQueue q;
    auto handle = q.push(SimTime{10}, [] {});
    EXPECT_TRUE(handle.pending());
    q.pop_and_run();
    EXPECT_FALSE(handle.pending());
}

TEST(EventQueue, PopOnEmptyThrows) {
    EventQueue q;
    EXPECT_THROW(q.pop_and_run(), std::logic_error);
    EXPECT_THROW((void)q.next_time(), std::logic_error);
}

TEST(EventQueue, EventCanScheduleMoreEvents) {
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5) q.push(SimTime{count * 10}, chain);
    };
    q.push(SimTime{0}, chain);
    while (!q.empty()) q.pop_and_run();
    EXPECT_EQ(count, 5);
}

TEST(Simulator, AdvancesClockAndStopsAtLimit) {
    Simulator sim;
    int fired = 0;
    sim.schedule_in(Duration{100}, [&] { ++fired; });
    sim.schedule_in(Duration{200}, [&] { ++fired; });
    sim.schedule_in(Duration{900}, [&] { ++fired; });
    const auto executed = sim.run(SimTime{500});
    EXPECT_EQ(executed, 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now().ns(), 500);  // clock parked at the limit
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, ScheduleInPastThrows) {
    Simulator sim;
    sim.schedule_in(Duration{100}, [] {});
    sim.run();
    EXPECT_THROW(sim.schedule_at(SimTime{50}, [] {}), std::logic_error);
}

TEST(Simulator, StepExecutesSingleEvent) {
    Simulator sim;
    int fired = 0;
    sim.schedule_in(Duration{1}, [&] { ++fired; });
    sim.schedule_in(Duration{2}, [&] { ++fired; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
}

TEST(Rng, DeterministicForSameSeed) {
    Rng a{42};
    Rng b{42};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a{1};
    Rng b{2};
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
    Rng rng{7};
    for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.next_below(13), 13u);
    EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
    Rng rng{11};
    std::array<int, 8> buckets{};
    constexpr int kDraws = 80'000;
    for (int i = 0; i < kDraws; ++i) ++buckets[rng.next_below(8)];
    for (const int b : buckets) {
        EXPECT_GT(b, kDraws / 8 * 0.9);
        EXPECT_LT(b, kDraws / 8 * 1.1);
    }
}

TEST(Rng, NextInCoversBoundsInclusive) {
    Rng rng{3};
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10'000; ++i) {
        const auto v = rng.next_in(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_THROW(rng.next_in(3, 2), std::invalid_argument);
}

TEST(Rng, ExponentialHasRequestedMean) {
    Rng rng{5};
    double sum = 0;
    constexpr int kDraws = 50'000;
    for (int i = 0; i < kDraws; ++i) sum += rng.next_exponential(4.0);
    EXPECT_NEAR(sum / kDraws, 4.0, 0.15);
    EXPECT_THROW(rng.next_exponential(0.0), std::invalid_argument);
}

TEST(Rng, ParetoRespectsScale) {
    Rng rng{5};
    for (int i = 0; i < 1'000; ++i) EXPECT_GE(rng.next_pareto(1.5, 2.0), 2.0);
    EXPECT_THROW(rng.next_pareto(0.0, 1.0), std::invalid_argument);
}

TEST(Rng, DoubleInUnitInterval) {
    Rng rng{9};
    for (int i = 0; i < 10'000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RunningStats, TracksMoments) {
    RunningStats s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
    const RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, QuantilesInterpolate) {
    SampleSet s;
    for (int i = 1; i <= 5; ++i) s.add(i);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleSet, EmptyQuantileIsZeroButMinStillThrows) {
    const SampleSet s;
    EXPECT_THROW((void)s.min(), std::logic_error);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.p99(), 0.0);
    const SampleSet::Summary sum = s.summary();
    EXPECT_EQ(sum.count, 0u);
    EXPECT_DOUBLE_EQ(sum.min, 0.0);
    EXPECT_DOUBLE_EQ(sum.p95, 0.0);
}

TEST(SampleSet, SingleSampleIsEveryQuantile) {
    SampleSet s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 42.0);
    EXPECT_DOUBLE_EQ(s.p50(), 42.0);
    EXPECT_DOUBLE_EQ(s.p95(), 42.0);
    EXPECT_DOUBLE_EQ(s.p99(), 42.0);
}

TEST(SampleSet, QuantileRangeChecked) {
    SampleSet s;
    s.add(1.0);
    EXPECT_THROW((void)s.quantile(-0.1), std::invalid_argument);
    EXPECT_THROW((void)s.quantile(1.1), std::invalid_argument);
}

TEST(SampleSet, PercentileHelpersAndSummaryAgree) {
    SampleSet s;
    s.reserve(100);
    for (int i = 1; i <= 100; ++i) s.add(i);
    EXPECT_EQ(s.samples().size(), 100u);
    EXPECT_DOUBLE_EQ(s.p50(), s.quantile(0.50));
    EXPECT_DOUBLE_EQ(s.p95(), s.quantile(0.95));
    EXPECT_DOUBLE_EQ(s.p99(), s.quantile(0.99));
    const SampleSet::Summary sum = s.summary();
    EXPECT_EQ(sum.count, 100u);
    EXPECT_DOUBLE_EQ(sum.min, 1.0);
    EXPECT_DOUBLE_EQ(sum.max, 100.0);
    EXPECT_DOUBLE_EQ(sum.mean, 50.5);
    EXPECT_DOUBLE_EQ(sum.p50, s.quantile(0.50));
    EXPECT_DOUBLE_EQ(sum.p95, s.quantile(0.95));
    EXPECT_DOUBLE_EQ(sum.p99, s.quantile(0.99));
}

}  // namespace
}  // namespace capbench::sim
