// Tests for packet-size histograms, the two-stage distribution
// representation (Section 4.2) and the createDist conversions.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "capbench/dist/builtin.hpp"
#include "capbench/dist/createdist.hpp"
#include "capbench/dist/size_histogram.hpp"
#include "capbench/dist/two_stage_dist.hpp"

namespace capbench::dist {
namespace {

TEST(SizeHistogram, CountsAndFractions) {
    SizeHistogram hist{1500};
    hist.add(40, 60);
    hist.add(1500, 40);
    EXPECT_EQ(hist.total(), 100u);
    EXPECT_EQ(hist.count(40), 60u);
    EXPECT_DOUBLE_EQ(hist.fraction(40), 0.6);
    EXPECT_DOUBLE_EQ(hist.fraction(1000), 0.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.6 * 40 + 0.4 * 1500);
}

TEST(SizeHistogram, ClampsOversizedToMax) {
    SizeHistogram hist{1500};
    hist.add(9000);  // jumbo frames do not exist in the traces
    EXPECT_EQ(hist.count(1500), 1u);
}

TEST(SizeHistogram, TopSizesSortedByFrequency) {
    SizeHistogram hist{1500};
    hist.add(40, 10);
    hist.add(52, 30);
    hist.add(576, 20);
    const auto top = hist.top_sizes(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].first, 52u);
    EXPECT_EQ(top[1].first, 576u);
    EXPECT_NEAR(hist.top_fraction(2), 50.0 / 60.0, 1e-12);
}

TEST(SizeHistogram, EntriesAscending) {
    SizeHistogram hist{100};
    hist.add(50, 1);
    hist.add(10, 1);
    const auto entries = hist.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].first, 10u);
    EXPECT_EQ(entries[1].first, 50u);
}

TEST(TwoStageDist, IdentifiesOutliers) {
    SizeHistogram hist{1500};
    hist.add(40, 500);    // 50 % -> outlier
    hist.add(1500, 300);  // 30 % -> outlier
    hist.add(700, 1);     // 0.1 % -> below the 0.2 % default bound
    hist.add(800, 199);   // 19.9 % -> outlier
    const TwoStageDist dist{hist};
    EXPECT_EQ(dist.outlier_count(), 3u);
    EXPECT_EQ(dist.bin_count(), 1u);
    EXPECT_EQ(dist.bin_entries()[0].first, 700u / 20 * 20);
}

TEST(TwoStageDist, CellsMatchProbabilities) {
    SizeHistogram hist{1500};
    hist.add(40, 179);
    hist.add(1500, 821);
    const TwoStageDist dist{hist};
    ASSERT_EQ(dist.outlier_count(), 2u);
    EXPECT_EQ(dist.outlier_entries()[0].first, 40u);
    EXPECT_EQ(dist.outlier_entries()[0].second, 179u);  // p=0.179, rho=1000
    EXPECT_EQ(dist.outlier_entries()[1].second, 821u);
}

TEST(TwoStageDist, SamplingMatchesProbabilities) {
    SizeHistogram hist{1500};
    hist.add(40, 180);
    hist.add(52, 120);
    hist.add(1500, 300);
    for (std::uint32_t s = 200; s < 220; ++s) hist.add(s, 20);  // one bin's worth
    const TwoStageDist dist{hist};
    sim::Rng rng{123};
    constexpr int kDraws = 200'000;
    std::map<std::uint32_t, int> counts;
    for (int i = 0; i < kDraws; ++i) ++counts[dist.sample(rng)];
    EXPECT_NEAR(counts[40] / double(kDraws), dist.probability_of(40), 0.01);
    EXPECT_NEAR(counts[52] / double(kDraws), dist.probability_of(52), 0.01);
    EXPECT_NEAR(counts[1500] / double(kDraws), dist.probability_of(1500), 0.01);
    // Bin sizes together should carry their share.
    double bin_share = 0;
    for (std::uint32_t s = 200; s < 220; ++s) bin_share += counts[s] / double(kDraws);
    EXPECT_NEAR(bin_share, 20.0 * 20 / 1000.0, 0.01);
}

TEST(TwoStageDist, ProbabilitiesSumToOne) {
    const TwoStageDist dist{mwn_trace_histogram()};
    double total = 0.0;
    for (std::uint32_t s = 0; s <= 1500; ++s) total += dist.probability_of(s);
    EXPECT_NEAR(total, 1.0, 0.02);
}

TEST(TwoStageDist, ExpectedMeanTracksInput) {
    const auto hist = mwn_trace_histogram();
    const TwoStageDist dist{hist};
    EXPECT_NEAR(dist.expected_mean(), hist.mean(), 25.0);
}

TEST(TwoStageDist, AllMassInOutliersStillSamples) {
    SizeHistogram hist{1500};
    hist.add(40, 1);
    const TwoStageDist dist{hist};
    sim::Rng rng{1};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), 40u);
}

TEST(TwoStageDist, RejectsBadInput) {
    const SizeHistogram empty{1500};
    EXPECT_THROW((TwoStageDist{empty}), std::invalid_argument);
    SizeHistogram ok{1500};
    ok.add(40, 1);
    TwoStageParams bad;
    bad.precision = 0;
    EXPECT_THROW((TwoStageDist{ok, bad}), std::invalid_argument);
    bad = TwoStageParams{};
    bad.bin_size = 0;
    EXPECT_THROW((TwoStageDist{ok, bad}), std::invalid_argument);
    // Raw-array constructor: cells exceeding precision must be rejected.
    EXPECT_THROW((TwoStageDist{TwoStageParams{}, {{40, 1200}}, {}}), std::invalid_argument);
    EXPECT_THROW((TwoStageDist{TwoStageParams{}, {}, {}}), std::invalid_argument);
}

TEST(TwoStageDist, CustomParamsRespected) {
    SizeHistogram hist{1500};
    hist.add(40, 1);
    hist.add(777, 999'999);
    TwoStageParams params;
    params.precision = 500;
    params.bin_size = 50;
    params.outlier_bound = 0.5;
    const TwoStageDist dist{hist, params};
    EXPECT_EQ(dist.outlier_count(), 1u);
    EXPECT_EQ(dist.outlier_entries()[0].first, 777u);
    ASSERT_EQ(dist.bin_count(), 1u);
    EXPECT_EQ(dist.bin_entries()[0].first, 40u / 50 * 50);
    EXPECT_EQ(dist.bin_entries()[0].second, 500u);  // largest-remainder fills all
}

TEST(MwnTrace, MatchesDocumentedShape) {
    const auto hist = mwn_trace_histogram();
    // Top 3 sizes are 40, 52, 1500 with > 55 % of packets (Figure 4.2).
    const auto top3 = hist.top_sizes(3);
    std::set<std::uint32_t> sizes;
    for (const auto& [s, c] : top3) sizes.insert(s);
    EXPECT_TRUE(sizes.contains(40));
    EXPECT_TRUE(sizes.contains(52));
    EXPECT_TRUE(sizes.contains(1500));
    EXPECT_GT(hist.top_fraction(3), 0.55);
    // Top 20 account for over 75 %.
    EXPECT_GT(hist.top_fraction(20), 0.75);
    // Mean packet size ~645 bytes (Section 6.3.1).
    EXPECT_NEAR(hist.mean(), 645.0, 40.0);
    // No jumbo frames.
    EXPECT_EQ(hist.max_size(), 1500u);
}

TEST(FixedSize, SingleSpike) {
    const auto hist = fixed_size_histogram(1500, 10);
    EXPECT_EQ(hist.count(1500), 10u);
    EXPECT_EQ(hist.total(), 10u);
}

TEST(CreateDist, ReadSizesCountsLines) {
    std::istringstream in{"40\n40\n\n1500\n"};
    const auto hist = read_sizes(in);
    EXPECT_EQ(hist.count(40), 2u);
    EXPECT_EQ(hist.count(1500), 1u);
}

TEST(CreateDist, ReadSizesRejectsGarbage) {
    std::istringstream in{"40\nnope\n"};
    EXPECT_THROW(read_sizes(in), std::runtime_error);
}

TEST(CreateDist, DistRoundTrip) {
    SizeHistogram hist{1500};
    hist.add(40, 7);
    hist.add(576, 3);
    std::ostringstream out;
    write_dist(out, hist);
    std::istringstream in{out.str()};
    const auto back = read_dist(in);
    EXPECT_EQ(back.count(40), 7u);
    EXPECT_EQ(back.count(576), 3u);
}

TEST(CreateDist, DistCustomSeparator) {
    std::istringstream in{"40:7\n"};
    const auto hist = read_dist(in, ':');
    EXPECT_EQ(hist.count(40), 7u);
}

TEST(CreateDist, ProcfsRoundTrip) {
    SizeHistogram hist{1500};
    hist.add(40, 500);
    hist.add(1500, 400);
    for (std::uint32_t s = 100; s < 120; ++s) hist.add(s, 5);
    const TwoStageDist dist{hist};
    std::ostringstream out;
    write_procfs(out, dist);
    std::istringstream in{out.str()};
    const auto back = read_procfs(in);
    EXPECT_EQ(back.outlier_entries(), dist.outlier_entries());
    EXPECT_EQ(back.bin_entries(), dist.bin_entries());
    EXPECT_EQ(back.params().precision, dist.params().precision);
}

TEST(CreateDist, ProcfsPgsetWrappedRoundTrip) {
    SizeHistogram hist{1500};
    hist.add(40, 1000);
    const TwoStageDist dist{hist};
    std::ostringstream out;
    write_procfs(out, dist, /*pgset_wrapped=*/true);
    EXPECT_NE(out.str().find("pgset \"dist "), std::string::npos);
    std::istringstream in{out.str()};
    const auto back = read_procfs(in);
    EXPECT_EQ(back.outlier_entries(), dist.outlier_entries());
}

TEST(CreateDist, ProcfsRejectsMalformed) {
    {
        std::istringstream in{"outl 40 10\n"};
        EXPECT_THROW(read_procfs(in), std::runtime_error);  // entry before header
    }
    {
        std::istringstream in{"dist 1000 20 1500 2 0\noutl 40 10\n"};
        EXPECT_THROW(read_procfs(in), std::runtime_error);  // count mismatch
    }
    {
        std::istringstream in{"bogus 1 2\n"};
        EXPECT_THROW(read_procfs(in), std::runtime_error);
    }
    {
        std::istringstream in{""};
        EXPECT_THROW(read_procfs(in), std::runtime_error);
    }
}

TEST(CreateDist, WriteSizesActsAsGenerator) {
    SizeHistogram hist{1500};
    hist.add(40, 1);
    const TwoStageDist dist{hist};
    sim::Rng rng{1};
    std::ostringstream out;
    write_sizes(out, dist, rng, 5);
    EXPECT_EQ(out.str(), "40\n40\n40\n40\n40\n");
}

// Property sweep: the representation round-trips through procfs and keeps
// probabilities for a grid of parameter combinations.
struct ParamCase {
    std::uint32_t precision;
    std::uint32_t bin_size;
    double bound;
};

class TwoStageParamTest : public ::testing::TestWithParam<ParamCase> {};

TEST_P(TwoStageParamTest, RoundTripAndMeanStable) {
    const auto param = GetParam();
    TwoStageParams p;
    p.precision = param.precision;
    p.bin_size = param.bin_size;
    p.outlier_bound = param.bound;
    const auto hist = mwn_trace_histogram(100'000);
    const TwoStageDist dist{hist, p};

    std::ostringstream out;
    write_procfs(out, dist);
    std::istringstream in{out.str()};
    const auto back = read_procfs(in);
    EXPECT_EQ(back.outlier_entries(), dist.outlier_entries());
    EXPECT_EQ(back.bin_entries(), dist.bin_entries());

    // The represented mean stays within bin-quantization error of the true
    // mean (coarser bins and lower precision may drift further).
    const double tolerance = 30.0 + static_cast<double>(param.bin_size);
    EXPECT_NEAR(dist.expected_mean(), hist.mean(), tolerance);

    // Sampling never exceeds the maximum size.
    sim::Rng rng{99};
    for (int i = 0; i < 2'000; ++i) EXPECT_LE(dist.sample(rng), p.max_size);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, TwoStageParamTest,
    ::testing::Values(ParamCase{1000, 20, 0.002}, ParamCase{1000, 20, 0.01},
                      ParamCase{1000, 50, 0.002}, ParamCase{500, 20, 0.002},
                      ParamCase{2000, 10, 0.002}, ParamCase{100, 100, 0.05},
                      ParamCase{4000, 5, 0.001}, ParamCase{1000, 20, 0.10}));

}  // namespace
}  // namespace capbench::dist
