// Tests for gnuplot/CSV report output and the pcap-trace input of
// createDist.
#include <gtest/gtest.h>

#include <sstream>

#include "capbench/dist/createdist.hpp"
#include "capbench/harness/measurement.hpp"
#include "capbench/harness/report.hpp"
#include "capbench/pcap/file.hpp"

namespace capbench {
namespace {

using namespace harness;

std::vector<SweepRow> tiny_sweep() {
    RunConfig cfg;
    cfg.packets = 4'000;
    cfg.rate_mbps = 100.0;
    std::vector<SweepRow> rows;
    rows.push_back(SweepRow{100.0, run_once({standard_sut("moorhen")}, cfg)});
    cfg.rate_mbps = 200.0;
    rows.push_back(SweepRow{200.0, run_once({standard_sut("moorhen")}, cfg)});
    return rows;
}

TEST(GnuplotOutput, DataHasHeaderAndOneRowPerPoint) {
    const auto rows = tiny_sweep();
    std::ostringstream out;
    write_gnuplot_data(out, rows);
    std::istringstream in{out.str()};
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "# x moorhen_cap moorhen_cpu");
    std::string line;
    int data_lines = 0;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        ++data_lines;
        std::istringstream fields{line};
        double x = 0;
        double cap = 0;
        double cpu = 0;
        EXPECT_TRUE(fields >> x >> cap >> cpu) << line;
        EXPECT_GE(cap, 0.0);
        EXPECT_LE(cap, 100.0);
    }
    EXPECT_EQ(data_lines, 2);
}

TEST(GnuplotOutput, MultiAppEmitsWorstAvgBest) {
    auto rows = tiny_sweep();
    std::ostringstream out;
    write_gnuplot_data(out, rows, /*multi_app=*/true);
    EXPECT_NE(out.str().find("moorhen_worst moorhen_avg moorhen_best"), std::string::npos);
}

TEST(GnuplotOutput, ScriptReferencesDataColumns) {
    const auto rows = tiny_sweep();
    std::ostringstream out;
    write_gnuplot_script(out, "fig.dat", "test figure", rows);
    const std::string script = out.str();
    EXPECT_NE(script.find("set title 'test figure'"), std::string::npos);
    EXPECT_NE(script.find("'fig.dat' using 1:2"), std::string::npos);
    EXPECT_NE(script.find("axes x1y2"), std::string::npos);
}

TEST(GnuplotOutput, EmptySweepWritesNothing) {
    std::ostringstream out;
    write_gnuplot_data(out, {});
    write_gnuplot_script(out, "x.dat", "t", {});
    EXPECT_TRUE(out.str().empty());
}

TEST(CreateDistTrace, ReadsPcapAndSkipsNonIp) {
    std::stringstream buffer;
    pcap::FileWriter writer{buffer, 96};
    // Two IPv4 frames (wire 514 -> IP size 500) and one ARP frame.
    std::vector<std::byte> ip_frame(96);
    ip_frame[12] = std::byte{0x08};
    ip_frame[13] = std::byte{0x00};
    const net::Packet ip_packet{1, std::vector<std::byte>(ip_frame), sim::SimTime{}};
    pcap::Record rec;
    rec.caplen = 96;
    rec.wire_len = 514;
    rec.data = ip_frame;
    writer.write(rec);
    writer.write(rec);
    std::vector<std::byte> arp_frame(96);
    arp_frame[12] = std::byte{0x08};
    arp_frame[13] = std::byte{0x06};
    pcap::Record arp;
    arp.caplen = 96;
    arp.wire_len = 60;
    arp.data = arp_frame;
    writer.write(arp);

    const auto hist = dist::read_pcap_trace(buffer);
    EXPECT_EQ(hist.total(), 2u);
    EXPECT_EQ(hist.count(500), 2u);  // 514 wire - 14 Ethernet header
}

TEST(CreateDistTrace, EmptyTraceGivesEmptyHistogram) {
    std::stringstream buffer;
    pcap::FileWriter writer{buffer, 96};
    const auto hist = dist::read_pcap_trace(buffer);
    EXPECT_EQ(hist.total(), 0u);
}

TEST(CreateDistTrace, RejectsGarbage) {
    std::stringstream buffer{"this is not a pcap file at all"};
    EXPECT_THROW(dist::read_pcap_trace(buffer), std::runtime_error);
}

}  // namespace
}  // namespace capbench
