// Tests for the pcap session API and the pcap file format.
#include <gtest/gtest.h>

#include <sstream>

#include "capbench/capture/linux_socket.hpp"
#include "capbench/capture/mmap_ring.hpp"
#include "capbench/net/arena.hpp"
#include "capbench/pcap/file.hpp"
#include "capbench/bpf/filter/lexer.hpp"
#include "capbench/pcap/session.hpp"

namespace capbench::pcap {
namespace {

using capture::LinuxPacketSocket;
using capture::MmapRing;
using capture::OsSpec;
using hostsim::ArchSpec;
using hostsim::Machine;
using hostsim::MachineSpec;

struct Fixture {
    sim::Simulator sim;
    Machine machine{sim, MachineSpec{ArchSpec::amd_opteron(), 2, false}, {}};
    LinuxPacketSocket sock{machine, OsSpec::linux_2_6_11(), 1 << 20, 1515};
};

TEST(Session, InstallsCompiledFilter) {
    Fixture f;
    Session session{f.sock, "swan:if0", 1515, false};
    session.set_filter("udp and port 9");
    EXPECT_EQ(session.filter_expression(), "udp and port 9");
    // The filter is active: a synthetic packet without bytes passes (cost
    // model assumption), a non-matching real frame is rejected.
    std::vector<std::byte> tcp_frame(64);
    tcp_frame[12] = std::byte{0x08};
    tcp_frame[13] = std::byte{0x00};
    tcp_frame[14] = std::byte{0x45};
    tcp_frame[23] = std::byte{6};  // TCP
    auto pkt = std::make_shared<net::Packet>(1, std::move(tcp_frame), sim::SimTime{});
    f.sock.plan(pkt, 0);
    f.sock.commit(pkt, 0);
    EXPECT_EQ(session.stats().ps_recv, 0u);
    EXPECT_EQ(f.sock.stats().dropped_filter, 1u);
}

TEST(Session, BadFilterThrows) {
    Fixture f;
    Session session{f.sock, "swan:if0", 1515, false};
    EXPECT_THROW(session.set_filter("ip and and"), bpf::filter::FilterError);
}

TEST(Session, NonblockRejectedOnMmap) {
    Fixture f;
    MmapRing ring{f.machine, OsSpec::linux_2_6_11(), 1 << 20, 1515};
    Session mmap_session{ring, "swan:if0", 1515, true};
    EXPECT_THROW(mmap_session.set_nonblock(true), std::runtime_error);
    Session plain{f.sock, "swan:if0", 1515, false};
    EXPECT_NO_THROW(plain.set_nonblock(true));
    EXPECT_TRUE(plain.nonblock());
}

TEST(Session, StatsMapToPcapSemantics) {
    Fixture f;
    Session session{f.sock, "swan:if0", 1515, false};
    auto pkt = std::make_shared<net::Packet>(1, 500, sim::SimTime{});
    f.sock.plan(pkt, 0);
    f.sock.commit(pkt, 0);
    f.sock.fetch(99);
    EXPECT_EQ(session.stats().ps_recv, 1u);
    EXPECT_EQ(session.stats().ps_drop, 0u);
}

TEST(Session, StatsMapBufferDropsToPsDrop) {
    // ps_drop is pcap's "dropped because there was no room" counter — it
    // must mirror the endpoint's buffer-full drops, not any other bucket.
    sim::Simulator sim;
    Machine machine{sim, MachineSpec{ArchSpec::amd_opteron(), 2, false}, {}};
    LinuxPacketSocket small{machine, OsSpec::linux_2_6_11(), 4096, 1515};
    Session session{small, "swan:if0", 1515, false};
    std::uint64_t id = 1;
    // Overfill the 4 kB socket buffer with 1500-byte frames.
    for (int i = 0; i < 10; ++i) {
        auto pkt = std::make_shared<net::Packet>(id++, 1500, sim::SimTime{});
        small.plan(pkt, 0);
        small.commit(pkt, 0);
    }
    EXPECT_GT(small.stats().dropped_buffer, 0u);
    EXPECT_EQ(session.stats().ps_drop, small.stats().dropped_buffer);
    EXPECT_EQ(session.stats().ps_recv, small.stats().delivered);
}

TEST(File, ArenaBackedRoundTrip) {
    // The zero-copy span path: arena-owned payloads stream straight from
    // the packet buffer into the file and read back byte-identical.
    auto arena = net::PacketArena::create();
    auto full = arena->make_full(1, 128, sim::SimTime{});
    auto bytes = full->mutable_bytes();
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<std::byte>(255 - i % 256);
    const net::PacketPtr pkt = full;
    auto synthetic = arena->make_synthetic(2, 900, sim::SimTime{});
    const net::PacketPtr synth = synthetic;

    std::stringstream buffer;
    FileWriter writer{buffer, 1515};
    writer.write(*pkt, 128, sim::SimTime{sim::seconds(1).ns()});
    writer.write(*synth, 900, sim::SimTime{sim::seconds(2).ns()});
    EXPECT_EQ(writer.records_written(), 2u);

    FileReader reader{buffer};
    const auto r1 = reader.next();
    ASSERT_TRUE(r1.has_value());
    EXPECT_EQ(r1->caplen, 128u);
    ASSERT_EQ(r1->data.size(), 128u);
    for (std::size_t i = 0; i < r1->data.size(); ++i)
        EXPECT_EQ(r1->data[i], pkt->bytes()[i]) << "byte " << i;
    const auto r2 = reader.next();
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->caplen, 900u);
    EXPECT_EQ(r2->wire_len, 900u);
    // Synthetic payloads come out zero-filled (the pooled pad buffer).
    for (const std::byte b : r2->data) ASSERT_EQ(std::to_integer<int>(b), 0);
    EXPECT_EQ(reader.next(), std::nullopt);
}

TEST(File, ArenaBackedTruncatedRecordThrows) {
    auto arena = net::PacketArena::create();
    auto full = arena->make_full(1, 200, sim::SimTime{});
    auto bytes = full->mutable_bytes();
    for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] = std::byte{0x5A};
    std::stringstream buffer;
    FileWriter writer{buffer, 65535};
    writer.write(*full, 200, sim::SimTime{});
    std::string content = buffer.str();
    content.resize(content.size() - 15);  // chop into the payload
    std::stringstream truncated{content};
    FileReader reader{truncated};
    EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST(File, ReadsByteSwappedArenaPayloads) {
    // A big-endian file whose record payload matches an arena packet's
    // bytes: the reader must swap the header fields but pass the payload
    // through untouched.
    auto arena = net::PacketArena::create();
    auto full = arena->make_full(1, 6, sim::SimTime{});
    auto bytes = full->mutable_bytes();
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<std::byte>(0x10 + i);

    const auto be32 = [](std::uint32_t v) {
        return std::string{static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                           static_cast<char>(v >> 8), static_cast<char>(v)};
    };
    const auto be16 = [](std::uint16_t v) {
        return std::string{static_cast<char>(v >> 8), static_cast<char>(v)};
    };
    std::string data;
    data += be32(kPcapMagic);
    data += be16(2);
    data += be16(4);
    data += be32(0);  // thiszone
    data += be32(0);  // sigfigs
    data += be32(1515);
    data += be32(kLinktypeEthernet);
    data += be32(7);  // sec
    data += be32(9);  // usec
    data += be32(6);  // caplen
    data += be32(6);  // wire len
    for (const std::byte b : full->bytes()) data += static_cast<char>(std::to_integer<int>(b));
    std::stringstream buffer{data};
    FileReader reader{buffer};
    const auto rec = reader.next();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->caplen, 6u);
    ASSERT_EQ(rec->data.size(), 6u);
    for (std::size_t i = 0; i < rec->data.size(); ++i)
        EXPECT_EQ(rec->data[i], full->bytes()[i]) << "byte " << i;
}

TEST(File, WriteReadRoundTrip) {
    std::stringstream buffer;
    FileWriter writer{buffer, 1515};
    std::vector<std::byte> bytes(100);
    for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<std::byte>(i);
    const net::Packet pkt{7, std::move(bytes), sim::SimTime{}};
    writer.write(pkt, 100, sim::SimTime{sim::seconds(3).ns() + 5000});
    writer.write(pkt, 50, sim::SimTime{sim::seconds(4).ns()});
    EXPECT_EQ(writer.records_written(), 2u);

    FileReader reader{buffer};
    EXPECT_EQ(reader.header().snaplen, 1515u);
    EXPECT_EQ(reader.header().linktype, kLinktypeEthernet);
    const auto r1 = reader.next();
    ASSERT_TRUE(r1.has_value());
    EXPECT_EQ(r1->caplen, 100u);
    EXPECT_EQ(r1->wire_len, 100u);
    EXPECT_EQ(r1->timestamp.ns() / 1000, sim::seconds(3).ns() / 1000 + 5);
    EXPECT_EQ(std::to_integer<int>(r1->data[42]), 42);
    const auto r2 = reader.next();
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->caplen, 50u);   // truncated by the explicit caplen
    EXPECT_EQ(r2->wire_len, 100u);
    EXPECT_EQ(reader.next(), std::nullopt);
}

TEST(File, SnaplenCapsRecords) {
    std::stringstream buffer;
    FileWriter writer{buffer, 76};
    const net::Packet pkt{1, 1500, sim::SimTime{}};  // synthetic, no bytes
    writer.write(pkt, 1500, sim::SimTime{});
    FileReader reader{buffer};
    const auto rec = reader.next();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->caplen, 76u);
    EXPECT_EQ(rec->wire_len, 1500u);
    // Synthetic packets produce zero-filled data.
    EXPECT_EQ(std::to_integer<int>(rec->data[10]), 0);
}

TEST(File, RejectsBadMagic) {
    std::stringstream buffer;
    buffer.write("NOTPCAP!", 8);
    EXPECT_THROW(FileReader{buffer}, std::runtime_error);
}

TEST(File, RejectsTruncatedRecord) {
    std::stringstream buffer;
    FileWriter writer{buffer, 65535};
    const net::Packet pkt{1, 100, sim::SimTime{}};
    writer.write(pkt, 100, sim::SimTime{});
    std::string content = buffer.str();
    content.resize(content.size() - 10);  // chop the payload
    std::stringstream truncated{content};
    FileReader reader{truncated};
    EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST(File, ReadsByteSwappedFiles) {
    // Hand-build a big-endian header + one empty record.
    const auto be32 = [](std::uint32_t v) {
        return std::string{static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                           static_cast<char>(v >> 8), static_cast<char>(v)};
    };
    const auto be16 = [](std::uint16_t v) {
        return std::string{static_cast<char>(v >> 8), static_cast<char>(v)};
    };
    std::string data;
    data += be32(kPcapMagic);
    data += be16(2);
    data += be16(4);
    data += be32(0);  // thiszone
    data += be32(0);  // sigfigs
    data += be32(96);
    data += be32(kLinktypeEthernet);
    data += be32(10);  // sec
    data += be32(20);  // usec
    data += be32(0);   // caplen
    data += be32(64);  // wire len
    std::stringstream buffer{data};
    FileReader reader{buffer};
    EXPECT_EQ(reader.header().snaplen, 96u);
    const auto rec = reader.next();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->wire_len, 64u);
    EXPECT_EQ(rec->timestamp.ns(), (10 * 1'000'000LL + 20) * 1000);
}

}  // namespace
}  // namespace capbench::pcap
