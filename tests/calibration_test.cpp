// Calibration: the qualitative Chapter 6 results the cost model must
// reproduce (the shape targets listed in DESIGN.md and
// core::calibration_targets()).  These run the real measurement cycle at a
// reduced packet count, so the asserted bounds are deliberately loose —
// they pin the *ordering* and *knee positions*, not absolute numbers.
#include <gtest/gtest.h>

#include "capbench/core/calibration.hpp"
#include "capbench/harness/experiment.hpp"
#include "capbench/harness/measurement.hpp"

namespace capbench::harness {
namespace {

constexpr std::uint64_t kPackets = 120'000;

RunConfig at_rate(double rate) {
    RunConfig cfg;
    cfg.packets = kPackets;
    cfg.rate_mbps = rate;
    return cfg;
}

const SutRunResult& sut(const RunResult& r, const std::string& name) {
    for (const auto& s : r.suts) {
        if (s.name == name) return s;
    }
    throw std::logic_error("no such sut in result: " + name);
}

std::vector<SutConfig> big_buffer_suts(bool single_cpu = false) {
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    if (single_cpu) apply_single_cpu(suts);
    return suts;
}

TEST(Calibration, TargetListIsDocumented) {
    EXPECT_GE(core::calibration_targets().size(), 10u);
}

// Section 7.1: "moorhen, the FreeBSD 5.4/AMD Opteron combination, is
// performing best, loosing nearly no packets in single processor mode and
// no packet at all in dual processor mode."
TEST(Calibration, MoorhenIsBestAtMaximumRate) {
    const auto dual = run_once(big_buffer_suts(), at_rate(0.0));
    EXPECT_GT(sut(dual, "moorhen").capture_avg_pct, 99.0);
    for (const auto& s : dual.suts)
        EXPECT_GE(sut(dual, "moorhen").capture_avg_pct + 0.5, s.capture_avg_pct) << s.name;

    const auto single = run_once(big_buffer_suts(true), at_rate(0.0));
    EXPECT_GT(sut(single, "moorhen").capture_avg_pct, 95.0);
    for (const auto& s : single.suts)
        EXPECT_GE(sut(single, "moorhen").capture_avg_pct + 0.5, s.capture_avg_pct) << s.name;
}

// Fig 6.2 -> 6.3: with default buffers the Linux systems start dropping in
// the low hundreds of Mbit/s; 128 MB buffers move the knee to ~650 Mbit/s.
TEST(Calibration, LinuxBufferKneeMoves) {
    auto defaults = standard_suts();
    const auto low = run_once(defaults, at_rate(150.0));
    EXPECT_GT(sut(low, "swan").capture_avg_pct, 97.0);
    const auto mid = run_once(defaults, at_rate(400.0));
    EXPECT_LT(sut(mid, "swan").capture_avg_pct, 95.0);  // default buffers drop here

    // Increased buffers: lossless at 400 (dual and single CPU)...
    const auto big = run_once(big_buffer_suts(), at_rate(400.0));
    EXPECT_GT(sut(big, "swan").capture_avg_pct, 99.5);
    const auto big_single_550 = run_once(big_buffer_suts(true), at_rate(550.0));
    EXPECT_GT(sut(big_single_550, "swan").capture_avg_pct, 97.0);
    // ...but past the ~650 Mbit/s knee a single CPU cannot keep up.
    const auto big_single_800 = run_once(big_buffer_suts(true), at_rate(800.0));
    EXPECT_LT(sut(big_single_800, "swan").capture_avg_pct, 90.0);
}

// Fig 6.3(a)/6.4(a): flamingo cannot handle the highest rates at all in
// single-processor mode — its capture rate collapses towards the buffered
// fraction, while dual-processor mode keeps a healthy rate.
TEST(Calibration, FlamingoSingleCpuCollapsesAtMaxRate) {
    const auto single = run_once(big_buffer_suts(true), at_rate(0.0));
    EXPECT_LT(sut(single, "flamingo").capture_avg_pct, 40.0);
    const auto dual = run_once(big_buffer_suts(), at_rate(0.0));
    EXPECT_GT(sut(dual, "flamingo").capture_avg_pct, 60.0);
    EXPECT_GT(sut(dual, "flamingo").capture_avg_pct,
              sut(single, "flamingo").capture_avg_pct + 20.0);
}

// Fig 6.6: the 50-instruction filter is nearly free.
TEST(Calibration, FilterCostIsSmall) {
    auto with_filter = big_buffer_suts();
    for (auto& s : with_filter) s.filter_expression = fig_6_5_filter_expression();
    RunConfig cfg = at_rate(500.0);
    cfg.full_bytes = true;
    const auto filtered = run_once(with_filter, cfg);
    const auto plain = run_once(big_buffer_suts(), at_rate(500.0));
    for (const auto& s : filtered.suts) {
        EXPECT_GT(s.capture_avg_pct + 10.0, sut(plain, s.name).capture_avg_pct) << s.name;
    }
}

// Figs 6.7-6.9: multiple applications.  FreeBSD shares evenly and degrades
// gracefully; Linux collapses past its threshold and shares unevenly.
TEST(Calibration, MultiAppFreeBsdGracefulLinuxCollapses) {
    auto suts = big_buffer_suts();
    for (auto& s : suts) s.app_count = 8;
    const auto r = run_once(suts, at_rate(800.0));

    // FreeBSD: even sharing, relevant fraction delivered.
    const auto& moorhen = sut(r, "moorhen");
    EXPECT_GT(moorhen.capture_avg_pct, 30.0);
    EXPECT_LT(moorhen.capture_best_pct - moorhen.capture_worst_pct, 25.0);

    // Linux: worse than FreeBSD under many-application overload.
    EXPECT_LT(sut(r, "swan").capture_avg_pct, moorhen.capture_avg_pct);
    EXPECT_LT(sut(r, "snipe").capture_avg_pct, 40.0);
}

TEST(Calibration, TwoAppsStillAcceptable) {
    auto suts = big_buffer_suts();
    for (auto& s : suts) s.app_count = 2;
    const auto r = run_once(suts, at_rate(500.0));
    for (const auto& s : r.suts) EXPECT_GT(s.capture_avg_pct, 85.0) << s.name;
}

// Fig 6.10: with 50 extra copies per packet the Opterons win in
// single-processor mode (memory-bound load).
TEST(Calibration, MemcpyLoadFavoursOpteronSingleCpu) {
    auto suts = big_buffer_suts(true);
    for (auto& s : suts) s.app_load.memcpy_count = 50;
    const auto r = run_once(suts, at_rate(700.0));
    EXPECT_GT(sut(r, "swan").capture_avg_pct, sut(r, "snipe").capture_avg_pct + 5.0);
    EXPECT_GT(sut(r, "moorhen").capture_avg_pct, sut(r, "flamingo").capture_avg_pct + 5.0);
}

// Fig 6.11: compression is cycle-bound — the one experiment where each
// Intel system beats (or at least matches) the corresponding AMD system in
// single-processor mode, where the CPU does all the work.
TEST(Calibration, CompressionFavoursIntelSingleCpu) {
    auto suts = big_buffer_suts(true);
    for (auto& s : suts) s.app_load.compress_level = 3;
    const auto r = run_once(suts, at_rate(450.0));
    EXPECT_GE(sut(r, "snipe").capture_avg_pct + 1.0, sut(r, "swan").capture_avg_pct);
    EXPECT_GE(sut(r, "snipe").cpu_pct, 1.0);
    // And level 9 overloads everyone (Fig B.3).
    auto heavy = big_buffer_suts(true);
    for (auto& s : heavy) s.app_load.compress_level = 9;
    const auto r9 = run_once(heavy, at_rate(450.0));
    for (const auto& s : r9.suts) EXPECT_LT(s.capture_avg_pct, 60.0) << s.name;
}

// Fig 6.14: writing 76-byte headers to disk is cheap.
TEST(Calibration, HeaderTraceToDiskIsCheap) {
    auto suts = big_buffer_suts();
    for (auto& s : suts) s.app_load.disk_bytes_per_packet = 76;
    const auto with_disk = run_once(suts, at_rate(600.0));
    const auto without = run_once(big_buffer_suts(), at_rate(600.0));
    for (const auto& s : with_disk.suts)
        EXPECT_GT(s.capture_avg_pct + 12.0, sut(without, s.name).capture_avg_pct) << s.name;
}

// Fig 6.15: the mmap libpcap removes the Linux single-CPU knee.
TEST(Calibration, MmapPcapRemovesLinuxDrops) {
    auto stock = standard_sut("swan");
    stock.buffer_bytes = 128ull << 20;
    stock.cores = 1;
    auto mmap = stock;
    mmap.name = "swan-mmap";
    mmap.stack = StackKind::kMmap;
    const auto r = run_once({stock, mmap}, at_rate(800.0));
    EXPECT_LT(sut(r, "swan").capture_avg_pct, 90.0);
    EXPECT_GT(sut(r, "swan-mmap").capture_avg_pct, 97.0);
}

// Fig 6.16: Hyperthreading changes nothing measurable.
TEST(Calibration, HyperthreadingIsNeutral) {
    auto off = standard_sut("flamingo");
    off.buffer_bytes = 10ull << 20;
    auto on = off;
    on.name = "flamingo-HT";
    on.hyperthreading = true;
    const auto r = run_once({off, on}, at_rate(800.0));
    EXPECT_NEAR(sut(r, "flamingo").capture_avg_pct, sut(r, "flamingo-HT").capture_avg_pct,
                5.0);
}

// Fig B.1: FreeBSD 5.4 beats 5.2.1.
TEST(Calibration, FreeBsd54BeatsOlderVersion) {
    auto v54 = standard_sut("flamingo");
    v54.buffer_bytes = 10ull << 20;
    auto v521 = v54;
    v521.name = "flamingo-5.2.1";
    v521.os = &capture::OsSpec::freebsd_5_2_1();
    const auto r = run_once({v54, v521}, at_rate(700.0));
    EXPECT_GT(sut(r, "flamingo").capture_avg_pct,
              sut(r, "flamingo-5.2.1").capture_avg_pct + 5.0);
}

}  // namespace
}  // namespace capbench::harness
