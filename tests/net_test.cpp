// Tests for the packet substrate: addresses, headers, checksum, wire
// timing, link, splitter and switch.
#include <gtest/gtest.h>

#include "capbench/net/checksum.hpp"
#include "capbench/net/headers.hpp"
#include "capbench/net/link.hpp"
#include "capbench/net/switch.hpp"
#include "capbench/net/wire.hpp"
#include "capbench/sim/simulator.hpp"

namespace capbench::net {
namespace {

TEST(MacAddr, ParseAndFormatRoundTrip) {
    const auto mac = MacAddr::parse("00:0e:0C:01:02:ff");
    EXPECT_EQ(mac.to_string(), "00:0e:0c:01:02:ff");
}

TEST(MacAddr, ParseRejectsMalformed) {
    EXPECT_THROW(MacAddr::parse("00:11:22:33:44"), std::invalid_argument);
    EXPECT_THROW(MacAddr::parse("00:11:22:33:44:GG"), std::invalid_argument);
    EXPECT_THROW(MacAddr::parse("00-11-22-33-44-55"), std::invalid_argument);
    EXPECT_THROW(MacAddr::parse("00:11:22:33:44:55:66"), std::invalid_argument);
}

TEST(MacAddr, PlusCyclesWithCarry) {
    const auto mac = MacAddr::parse("00:00:00:00:00:ff");
    EXPECT_EQ(mac.plus(1).to_string(), "00:00:00:00:01:00");
    EXPECT_EQ(MacAddr::parse("ff:ff:ff:ff:ff:ff").plus(1).to_string(), "00:00:00:00:00:00");
}

TEST(Ipv4Addr, ParseAndFormatRoundTrip) {
    const auto addr = Ipv4Addr::parse("192.168.10.100");
    EXPECT_EQ(addr.to_string(), "192.168.10.100");
    EXPECT_EQ(addr.value(), 0xC0A80A64u);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
    EXPECT_THROW(Ipv4Addr::parse("192.168.10"), std::invalid_argument);
    EXPECT_THROW(Ipv4Addr::parse("192.168.10.256"), std::invalid_argument);
    EXPECT_THROW(Ipv4Addr::parse("192.168.10.1.2"), std::invalid_argument);
    EXPECT_THROW(Ipv4Addr::parse("a.b.c.d"), std::invalid_argument);
}

TEST(Checksum, KnownVector) {
    // RFC 1071 example bytes.
    const std::array<std::byte, 8> data{std::byte{0x00}, std::byte{0x01}, std::byte{0xf2},
                                        std::byte{0x03}, std::byte{0xf4}, std::byte{0xf5},
                                        std::byte{0xf6}, std::byte{0xf7}};
    const auto sum = internet_checksum(data);
    // Complement of 0xddf2 per the RFC's running example.
    EXPECT_EQ(sum, static_cast<std::uint16_t>(~0xddf2 & 0xFFFF));
}

TEST(Checksum, OddLengthHandled) {
    const std::array<std::byte, 3> data{std::byte{0x01}, std::byte{0x02}, std::byte{0x03}};
    EXPECT_EQ(internet_checksum(data),
              static_cast<std::uint16_t>(~((0x0102 + 0x0300)) & 0xFFFF));
}

TEST(Ipv4Header, EncodeProducesVerifiableChecksum) {
    Ipv4Header h;
    h.total_length = 100;
    h.identification = 7;
    h.protocol = kIpProtoUdp;
    h.src = Ipv4Addr::parse("192.168.10.100");
    h.dst = Ipv4Addr::parse("192.168.10.12");
    std::array<std::byte, 20> buf{};
    h.encode(buf);
    EXPECT_TRUE(checksum_ok(buf));
    const auto decoded = Ipv4Header::decode(buf);
    EXPECT_EQ(decoded.total_length, 100);
    EXPECT_EQ(decoded.identification, 7);
    EXPECT_EQ(decoded.protocol, kIpProtoUdp);
    EXPECT_EQ(decoded.src, h.src);
    EXPECT_EQ(decoded.dst, h.dst);
}

TEST(Ipv4Header, DecodeRejectsNonIpv4) {
    std::array<std::byte, 20> buf{};
    buf[0] = std::byte{0x60};  // version 6
    EXPECT_THROW(Ipv4Header::decode(buf), std::invalid_argument);
}

TEST(Ipv4Header, FragmentHelpers) {
    Ipv4Header h;
    h.flags_fragment = 0x2000 | 100;  // MF set, offset 100
    EXPECT_TRUE(h.more_fragments());
    EXPECT_EQ(h.fragment_offset(), 100);
}

TEST(EthernetHeader, RoundTrip) {
    EthernetHeader h;
    h.dst = MacAddr::parse("00:0e:0c:01:02:03");
    h.src = MacAddr::parse("00:00:00:00:00:01");
    h.ether_type = kEtherTypeIpv4;
    std::array<std::byte, 14> buf{};
    h.encode(buf);
    const auto decoded = EthernetHeader::decode(buf);
    EXPECT_EQ(decoded.dst, h.dst);
    EXPECT_EQ(decoded.src, h.src);
    EXPECT_EQ(decoded.ether_type, kEtherTypeIpv4);
}

TEST(UdpHeader, RoundTrip) {
    UdpHeader h{9, 9, 80, 0};
    std::array<std::byte, 8> buf{};
    h.encode(buf);
    const auto decoded = UdpHeader::decode(buf);
    EXPECT_EQ(decoded.src_port, 9);
    EXPECT_EQ(decoded.dst_port, 9);
    EXPECT_EQ(decoded.length, 80);
}

TEST(Headers, EncodeBufferTooSmallThrows) {
    std::array<std::byte, 4> tiny{};
    EXPECT_THROW(EthernetHeader{}.encode(tiny), std::invalid_argument);
    EXPECT_THROW(Ipv4Header{}.encode(tiny), std::invalid_argument);
    EXPECT_THROW(UdpHeader{}.encode(tiny), std::invalid_argument);
    EXPECT_THROW(load_be32(tiny, 2), std::out_of_range);
}

TEST(Wire, MinimumFramePadding) {
    EXPECT_EQ(padded_frame_len(40), kMinFrameBytes);
    EXPECT_EQ(padded_frame_len(1514), 1514u);
    EXPECT_EQ(wire_bytes(60), 60u + 24u);
}

TEST(Wire, FrameTimeAtGigabit) {
    // 1538 wire bytes for a full-size frame -> 12.304 us.
    EXPECT_EQ(wire_time(1514).ns(), 1538 * 8);
    // Minimum frame: 84 wire bytes -> 672 ns (the classic 1.488 Mpps).
    EXPECT_EQ(wire_time(40).ns(), 84 * 8);
}

TEST(Wire, MaxRateBelowLineRate) {
    EXPECT_NEAR(max_data_rate_mbps(1514), 984.5, 0.5);
    EXPECT_NEAR(packets_per_second(984.5, 1514), 81'282, 100);
}

TEST(Link, DeliversAfterWireTime) {
    sim::Simulator sim;
    Link link{sim};
    struct Sink : FrameSink {
        std::vector<std::uint64_t> ids;
        void on_frame(const PacketPtr& p) override { ids.push_back(p->id()); }
    } sink;
    link.attach(sink);
    link.transmit(std::make_shared<Packet>(1, 1514, sim.now()));
    sim.run();
    ASSERT_EQ(sink.ids.size(), 1u);
    EXPECT_EQ(sim.now().ns(), wire_time(1514).ns());
}

TEST(Link, SerializesBackToBackFrames) {
    sim::Simulator sim;
    Link link{sim};
    struct Sink : FrameSink {
        std::vector<std::int64_t> times;
        sim::Simulator* sim = nullptr;
        void on_frame(const PacketPtr&) override { times.push_back(sim->now().ns()); }
    } sink;
    sink.sim = &sim;
    link.attach(sink);
    link.transmit(std::make_shared<Packet>(1, 1514, sim.now()));
    link.transmit(std::make_shared<Packet>(2, 1514, sim.now()));
    sim.run();
    ASSERT_EQ(sink.times.size(), 2u);
    EXPECT_EQ(sink.times[1] - sink.times[0], wire_time(1514).ns());
    EXPECT_EQ(link.frames_sent(), 2u);
}

TEST(Splitter, DuplicatesToAllTaps) {
    Splitter splitter;
    struct Sink : FrameSink {
        int frames = 0;
        void on_frame(const PacketPtr&) override { ++frames; }
    } a, b, c, d;
    splitter.attach(a);
    splitter.attach(b);
    splitter.attach(c);
    splitter.attach(d);
    const auto packet = std::make_shared<Packet>(1, 100, sim::SimTime{});
    splitter.on_frame(packet);
    EXPECT_EQ(a.frames, 1);
    EXPECT_EQ(b.frames, 1);
    EXPECT_EQ(c.frames, 1);
    EXPECT_EQ(d.frames, 1);
}

TEST(MonitorSwitch, CountsIngressAndMirroredEgress) {
    MonitorSwitch sw;
    Splitter splitter;
    sw.attach_monitor(splitter);
    sw.on_frame(std::make_shared<Packet>(1, 100, sim::SimTime{}));
    sw.on_frame(std::make_shared<Packet>(2, 200, sim::SimTime{}));
    EXPECT_EQ(sw.ingress_counters().packets, 2u);
    EXPECT_EQ(sw.ingress_counters().bytes, 300u);
    EXPECT_EQ(sw.egress_counters().packets, 2u);
}

TEST(Packet, SyntheticVersusFullBytes) {
    const Packet synthetic{1, 1000, sim::SimTime{}};
    EXPECT_FALSE(synthetic.has_bytes());
    EXPECT_EQ(synthetic.frame_len(), 1000u);
    EXPECT_TRUE(synthetic.bytes().empty());

    std::vector<std::byte> data(64, std::byte{0xAB});
    const Packet full{2, std::move(data), sim::SimTime{}};
    EXPECT_TRUE(full.has_bytes());
    EXPECT_EQ(full.frame_len(), 64u);
    EXPECT_EQ(full.bytes().size(), 64u);
}

}  // namespace
}  // namespace capbench::net
