// Property tests for the filter compiler: compiled BPF programs must agree
// with a direct reference evaluator of the AST for randomized expressions
// over randomized packets, and random BPF programs must never break the VM
// or the validator.
#include <gtest/gtest.h>

#include <optional>

#include "capbench/bpf/filter/codegen.hpp"
#include "capbench/bpf/filter/lexer.hpp"
#include "capbench/bpf/filter/parser.hpp"
#include "capbench/bpf/validator.hpp"
#include "capbench/bpf/vm.hpp"
#include "capbench/net/headers.hpp"
#include "capbench/sim/random.hpp"

namespace capbench::bpf::filter {
namespace {

// ---- reference evaluator ------------------------------------------------------
//
// Straightforward recursive interpretation of the AST against decoded
// headers; completely independent of the BPF code generator.

// tcpdump semantics: fields are raw loads at fixed offsets guarded only by
// the ethertype / protocol / fragment checks the compiler emits -- no header
// validation beyond that.
struct DecodedPacket {
    std::vector<std::byte> bytes;
    bool is_ipv4 = false;
    std::uint16_t ether_type = 0;
    std::uint8_t protocol = 0;
    std::uint16_t frag_offset = 0;
    std::uint32_t src_ip = 0;
    std::uint32_t dst_ip = 0;
    std::optional<std::uint16_t> src_port;
    std::optional<std::uint16_t> dst_port;
    net::MacAddr src_mac;
    net::MacAddr dst_mac;
};

DecodedPacket decode(std::vector<std::byte> frame) {
    DecodedPacket p;
    p.bytes = std::move(frame);
    if (p.bytes.size() < 14) return p;
    const auto eth = net::EthernetHeader::decode(p.bytes);
    p.ether_type = eth.ether_type;
    p.src_mac = eth.src;
    p.dst_mac = eth.dst;
    p.is_ipv4 = eth.ether_type == net::kEtherTypeIpv4;
    if (!p.is_ipv4 || p.bytes.size() < 34) return p;
    p.protocol = std::to_integer<std::uint8_t>(p.bytes[23]);
    p.frag_offset = net::load_be16(p.bytes, 20) & 0x1FFF;
    p.src_ip = net::load_be32(p.bytes, 26);
    p.dst_ip = net::load_be32(p.bytes, 30);
    const std::uint32_t ihl = 4 * (std::to_integer<std::uint32_t>(p.bytes[14]) & 0x0F);
    const std::size_t l4 = 14 + ihl;
    if (p.frag_offset == 0 &&
        (p.protocol == net::kIpProtoTcp || p.protocol == net::kIpProtoUdp) &&
        p.bytes.size() >= l4 + 4) {
        p.src_port = net::load_be16(p.bytes, l4);
        p.dst_port = net::load_be16(p.bytes, l4 + 2);
    }
    return p;
}

std::optional<std::uint32_t> ref_arith(const Arith& a, const DecodedPacket& p);

std::optional<std::uint32_t> ref_accessor(const ArithAccessor& acc, const DecodedPacket& p) {
    std::size_t base = 0;
    switch (acc.base) {
        case AccessorBase::kEther:
            base = 0;
            break;
        case AccessorBase::kIp:
            if (!p.is_ipv4) return std::nullopt;
            base = net::kEthernetHeaderLen;
            break;
        default: {
            if (!p.is_ipv4) return std::nullopt;
            std::uint8_t want = net::kIpProtoTcp;
            if (acc.base == AccessorBase::kUdp) want = net::kIpProtoUdp;
            if (acc.base == AccessorBase::kIcmp) want = net::kIpProtoIcmp;
            if (p.bytes.size() < 24 || p.protocol != want) return std::nullopt;
            if (p.frag_offset != 0) return std::nullopt;
            base = net::kEthernetHeaderLen + net::kIpv4MinHeaderLen;  // IHL is always 5 here
            break;
        }
    }
    const std::size_t off = base + acc.offset;
    if (off + acc.size > p.bytes.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (std::uint32_t i = 0; i < acc.size; ++i)
        v = (v << 8) | std::to_integer<std::uint32_t>(p.bytes[off + i]);
    return v;
}

std::optional<std::uint32_t> ref_arith(const Arith& a, const DecodedPacket& p) {
    if (const auto* c = std::get_if<ArithConst>(&a.node)) return c->value;
    if (std::get_if<ArithLen>(&a.node)) return static_cast<std::uint32_t>(p.bytes.size());
    if (const auto* acc = std::get_if<ArithAccessor>(&a.node)) return ref_accessor(*acc, p);
    const auto& bin = std::get<ArithBinary>(a.node);
    const auto lhs = ref_arith(*bin.lhs, p);
    const auto rhs = ref_arith(*bin.rhs, p);
    if (!lhs || !rhs) return std::nullopt;
    switch (bin.op) {
        case ArithOp::kAdd: return *lhs + *rhs;
        case ArithOp::kSub: return *lhs - *rhs;
        case ArithOp::kMul: return *lhs * *rhs;
        case ArithOp::kDiv: return *rhs == 0 ? std::nullopt : std::optional{*lhs / *rhs};
        case ArithOp::kAnd: return *lhs & *rhs;
        case ArithOp::kOr: return *lhs | *rhs;
    }
    return std::nullopt;
}

bool ref_eval(const Expr& e, const DecodedPacket& p);

bool ref_proto(Proto proto, const DecodedPacket& p) {
    const bool l3_readable = p.is_ipv4 && p.bytes.size() >= 24;
    switch (proto) {
        case Proto::kIp: return p.ether_type == net::kEtherTypeIpv4;
        case Proto::kArp: return p.ether_type == net::kEtherTypeArp;
        case Proto::kRarp: return p.ether_type == net::kEtherTypeRarp;
        case Proto::kTcp: return l3_readable && p.protocol == net::kIpProtoTcp;
        case Proto::kUdp: return l3_readable && p.protocol == net::kIpProtoUdp;
        case Proto::kIcmp: return l3_readable && p.protocol == net::kIpProtoIcmp;
    }
    return false;
}

bool ref_eval(const Expr& e, const DecodedPacket& p) {
    if (const auto* proto = std::get_if<ProtoMatch>(&e.node)) return ref_proto(proto->proto, p);
    if (const auto* host = std::get_if<HostMatch>(&e.node)) {
        if (!p.is_ipv4 || p.bytes.size() < 34) return false;
        return (host->dir == Dir::kSrc ? p.src_ip : p.dst_ip) == host->addr.value();
    }
    if (const auto* netm = std::get_if<NetMatch>(&e.node)) {
        if (!p.is_ipv4 || p.bytes.size() < 34) return false;
        const auto addr = netm->dir == Dir::kSrc ? p.src_ip : p.dst_ip;
        return (addr & netm->mask) == netm->net;
    }
    if (const auto* port = std::get_if<PortMatch>(&e.node)) {
        if (!p.is_ipv4 || p.bytes.size() < 24) return false;
        if (port->scope == PortMatch::Scope::kTcp && p.protocol != net::kIpProtoTcp)
            return false;
        if (port->scope == PortMatch::Scope::kUdp && p.protocol != net::kIpProtoUdp)
            return false;
        if (port->scope == PortMatch::Scope::kAny && p.protocol != net::kIpProtoTcp &&
            p.protocol != net::kIpProtoUdp)
            return false;
        const auto& got = port->dir == Dir::kSrc ? p.src_port : p.dst_port;
        return got && *got == port->port;
    }
    if (const auto* ether = std::get_if<EtherHostMatch>(&e.node)) {
        if (p.bytes.size() < 14) return false;
        return (ether->dir == Dir::kSrc ? p.src_mac : p.dst_mac) == ether->mac;
    }
    if (const auto* len = std::get_if<LenCompare>(&e.node)) {
        const auto size = static_cast<std::uint32_t>(p.bytes.size());
        return len->greater ? size >= len->value : size <= len->value;
    }
    if (const auto* rel = std::get_if<Relation>(&e.node)) {
        const auto lhs = ref_arith(*rel->lhs, p);
        const auto rhs = ref_arith(*rel->rhs, p);
        if (!lhs || !rhs) return false;  // guard/bounds failure rejects
        switch (rel->op) {
            case RelOp::kEq: return *lhs == *rhs;
            case RelOp::kNeq: return *lhs != *rhs;
            case RelOp::kGt: return *lhs > *rhs;
            case RelOp::kLt: return *lhs < *rhs;
            case RelOp::kGe: return *lhs >= *rhs;
            case RelOp::kLe: return *lhs <= *rhs;
        }
        return false;
    }
    if (const auto* n = std::get_if<Not>(&e.node)) return !ref_eval(*n->child, p);
    if (const auto* a = std::get_if<And>(&e.node))
        return ref_eval(*a->lhs, p) && ref_eval(*a->rhs, p);
    const auto& o = std::get<Or>(e.node);
    return ref_eval(*o.lhs, p) || ref_eval(*o.rhs, p);
}

// ---- random generators ---------------------------------------------------------

std::string random_primitive(sim::Rng& rng) {
    const auto ip = [&] {
        return std::to_string(rng.next_below(4) * 60 + 10) + ".168.10." +
               std::to_string(rng.next_below(4) * 4 + 8);
    };
    switch (rng.next_below(12)) {
        case 0: return "ip";
        case 1: return "tcp";
        case 2: return "udp";
        case 3: return "icmp";
        case 4: return "src host " + ip();
        case 5: return "dst host " + ip();
        case 6: return "host " + ip();
        case 7: return "port " + std::to_string(rng.next_below(4) * 1000 + 9);
        case 8: return "src net " + std::to_string(rng.next_below(4) * 60 + 10) + ".0.0.0/8";
        case 9: return "greater " + std::to_string(rng.next_below(200) + 40);
        case 10: return "ip[" + std::to_string(rng.next_below(18)) + "] > " +
                        std::to_string(rng.next_below(64));
        default: return "ether[12:2] = 0x" + std::string(rng.next_bool(0.7) ? "800" : "806");
    }
}

std::string random_expression(sim::Rng& rng, int depth) {
    if (depth <= 0 || rng.next_bool(0.4)) {
        std::string prim = random_primitive(rng);
        return rng.next_bool(0.3) ? "not (" + prim + ")" : prim;
    }
    const std::string op = rng.next_bool(0.5) ? " and " : " or ";
    return "(" + random_expression(rng, depth - 1) + op + random_expression(rng, depth - 1) +
           ")";
}

std::vector<std::byte> random_packet(sim::Rng& rng) {
    const std::size_t size = 40 + rng.next_below(300);
    std::vector<std::byte> frame(size);
    net::EthernetHeader eth;
    eth.src = net::MacAddr::parse("00:00:00:00:00:0" + std::to_string(rng.next_below(3)));
    eth.dst = net::MacAddr::parse("00:0e:0c:01:02:03");
    eth.ether_type = rng.next_bool(0.85) ? net::kEtherTypeIpv4 : net::kEtherTypeArp;
    eth.encode(frame);
    if (eth.ether_type == net::kEtherTypeIpv4 && size >= 42) {
        net::Ipv4Header ip;
        ip.total_length = static_cast<std::uint16_t>(size - net::kEthernetHeaderLen);
        const std::uint64_t proto_pick = rng.next_below(4);
        ip.protocol = proto_pick == 0   ? net::kIpProtoTcp
                      : proto_pick == 1 ? net::kIpProtoIcmp
                                        : net::kIpProtoUdp;
        if (rng.next_bool(0.1)) ip.flags_fragment = 0x0007;  // non-first fragment
        ip.src = net::Ipv4Addr{static_cast<std::uint32_t>(
            ((rng.next_below(4) * 60 + 10) << 24) | (168 << 16) | (10 << 8) |
            (rng.next_below(4) * 4 + 8))};
        ip.dst = net::Ipv4Addr{static_cast<std::uint32_t>(
            ((rng.next_below(4) * 60 + 10) << 24) | (168 << 16) | (10 << 8) |
            (rng.next_below(4) * 4 + 8))};
        ip.encode(std::span{frame}.subspan(net::kEthernetHeaderLen));
        net::UdpHeader udp;
        udp.src_port = static_cast<std::uint16_t>(rng.next_below(4) * 1000 + 9);
        udp.dst_port = static_cast<std::uint16_t>(rng.next_below(4) * 1000 + 9);
        udp.length = static_cast<std::uint16_t>(size - 34);
        udp.encode(std::span{frame}.subspan(34));
    }
    return frame;
}

// ---- the properties -------------------------------------------------------------

class FilterAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FilterAgreement, CompiledProgramMatchesReferenceEvaluator) {
    sim::Rng rng{GetParam()};
    for (int round = 0; round < 60; ++round) {
        const std::string expr = random_expression(rng, 3);
        ExprPtr ast;
        try {
            ast = parse(expr);
        } catch (const FilterError&) {
            FAIL() << "generated expression failed to parse: " << expr;
        }
        Program prog;
        try {
            prog = codegen(ast.get(), 1515);
        } catch (const FilterError&) {
            continue;  // e.g. expression too deep for scratch registers
        }
        ASSERT_EQ(validate(prog), std::nullopt) << expr;
        for (int pkt = 0; pkt < 25; ++pkt) {
            const auto packet = decode(random_packet(rng));
            const bool expected = ref_eval(*ast, packet);
            const bool actual = Vm::run(prog, packet.bytes).accept_len > 0;
            ASSERT_EQ(actual, expected)
                << "expr: " << expr << "\npacket size " << packet.bytes.size()
                << " ethertype "
                << packet.ether_type;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterAgreement,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class VmRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmRobustness, RandomProgramsNeverCrashOrOverrun) {
    sim::Rng rng{GetParam()};
    for (int round = 0; round < 400; ++round) {
        // Random instruction soup, terminated by a RET so some programs
        // validate; the VM must be safe either way.
        Program prog;
        const std::size_t len = 1 + rng.next_below(24);
        for (std::size_t i = 0; i < len; ++i) {
            Insn insn;
            insn.code = static_cast<std::uint16_t>(rng.next_below(0x200));
            insn.jt = static_cast<std::uint8_t>(rng.next_below(8));
            insn.jf = static_cast<std::uint8_t>(rng.next_below(8));
            insn.k = static_cast<std::uint32_t>(rng.next_u64());
            prog.push_back(insn);
        }
        prog.push_back(stmt(BPF_RET | BPF_K, 1));

        std::vector<std::byte> data(rng.next_below(128));
        for (auto& b : data) b = static_cast<std::byte>(rng.next_below(256));

        // The VM guards everything at runtime (returns reject on malformed
        // programs); it must terminate because all jumps are forward.
        const auto result = Vm::run(prog, data);
        EXPECT_LE(result.insns_executed, prog.size());

        // If the validator accepts it, the VM must too (no internal
        // rejections from malformed opcodes).
        if (validate(prog) == std::nullopt) {
            const auto ok = Vm::run(prog, data);
            EXPECT_LE(ok.insns_executed, prog.size());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmRobustness, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace capbench::bpf::filter
