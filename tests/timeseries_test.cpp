// Interval time-series telemetry tests (ISSUE 10): Series storage, the
// conservation invariant, overload-episode alignment with the square-wave
// workload, and byte-identity of the rendered document across job counts,
// event-queue backends and BPF execution tiers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "capbench/harness/experiment.hpp"
#include "capbench/harness/measurement.hpp"
#include "capbench/obs/timeseries.hpp"
#include "capbench/report/timeseries_writer.hpp"
#include "capbench/scenario/runner.hpp"

namespace capbench {
namespace {

class ScopedEnv {
public:
    ScopedEnv(std::string name, const char* value) : name_(std::move(name)) {
        if (const char* old = std::getenv(name_.c_str())) {
            had_old_ = true;
            old_ = old;
        }
        if (value == nullptr)
            ::unsetenv(name_.c_str());
        else
            ::setenv(name_.c_str(), value, 1);
    }
    ~ScopedEnv() {
        if (had_old_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

private:
    std::string name_;
    bool had_old_ = false;
    std::string old_;
};

// ---- Series storage -----------------------------------------------------------

TEST(TimeseriesSeries, PushAtSumMaxAcrossChunks) {
    obs::Series s;
    const std::size_t n = obs::Series::kChunkValues * 2 + 5;
    std::int64_t expect_sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
        s.push(static_cast<std::int64_t>(i) - 3);  // negatives allowed (drain)
        expect_sum += static_cast<std::int64_t>(i) - 3;
    }
    EXPECT_EQ(s.size(), n);
    EXPECT_EQ(s.chunk_count(), 3u);
    EXPECT_EQ(s.at(0), -3);
    EXPECT_EQ(s.at(obs::Series::kChunkValues), static_cast<std::int64_t>(obs::Series::kChunkValues) - 3);
    EXPECT_EQ(s.at(n - 1), static_cast<std::int64_t>(n) - 4);
    EXPECT_EQ(s.sum(), expect_sum);
    EXPECT_EQ(s.max(), static_cast<std::int64_t>(n) - 4);
}

TEST(TimeseriesSeries, EmptySeriesSumsAndMaxesToZero) {
    const obs::Series s;
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.chunk_count(), 0u);
    EXPECT_EQ(s.sum(), 0);
    EXPECT_EQ(s.max(), 0);
}

// ---- measurement-cycle integration --------------------------------------------

/// An overloaded square-wave run on the weakest sniffer: the bursts
/// guarantee drops, the base rate guarantees recovery between them.
harness::RunConfig pulse_run(obs::TimeSeries* ts) {
    harness::RunConfig cfg;
    cfg.packets = 12'000;
    cfg.rate_mbps = 150.0;
    cfg.burst_period = sim::milliseconds(20);
    cfg.burst_duration = sim::milliseconds(5);
    cfg.burst_multiplier = 10.0;
    cfg.sample_interval = sim::microseconds(500);
    cfg.timeseries = ts;
    cfg.collect_metrics = true;
    return cfg;
}

TEST(Timeseries, SinkWithoutIntervalThrows) {
    obs::TimeSeries ts;
    harness::RunConfig cfg = pulse_run(&ts);
    cfg.sample_interval = sim::Duration::zero();
    EXPECT_THROW(harness::run_once({harness::standard_sut("swan")}, cfg),
                 std::invalid_argument);
}

TEST(Timeseries, IntervalWithoutSinkIsInert) {
    harness::RunConfig cfg = pulse_run(nullptr);
    const auto result = harness::run_once({harness::standard_sut("swan")}, cfg);
    EXPECT_GT(result.generated, 0u);
}

TEST(Timeseries, ConservationHoldsOnADroppingRun) {
    obs::TimeSeries ts;
    const auto result =
        harness::run_once({harness::standard_sut("swan")}, pulse_run(&ts));
    // finalize_against ran inside run_once and did not throw: every delta
    // column telescoped exactly.  Re-check the headline sums here.
    ASSERT_TRUE(ts.finalized);
    EXPECT_EQ(ts.generated_total, result.generated);
    EXPECT_EQ(static_cast<std::uint64_t>(ts.generated.sum()), result.generated);
    ASSERT_EQ(ts.suts.size(), 1u);
    const obs::SutSeries& s = ts.suts[0];
    ASSERT_EQ(s.apps.size(), 1u);
    const obs::TimeSeries::AppTotals& totals = ts.totals[0].apps[0];
    std::uint64_t accounted = totals.delivered;
    for (const std::uint64_t d : totals.drops) accounted += d;
    // nic_ring and backlog are mirrored per app, so the 7-bucket app sum
    // IS the whole identity.
    EXPECT_EQ(accounted, result.generated);
    EXPECT_EQ(static_cast<std::uint64_t>(s.apps[0].delivered.sum()), totals.delivered);
    // The run must actually have dropped somewhere for this test to bite.
    std::uint64_t dropped = 0;
    for (const std::uint64_t d : totals.drops) dropped += d;
    EXPECT_GT(dropped, 0u);
    // One classification value per sample, all within the enum.
    EXPECT_EQ(s.classification.size(), ts.sample_count());
    for (std::size_t k = 0; k < s.classification.size(); ++k) {
        EXPECT_GE(s.classification.at(k), 0);
        EXPECT_LE(s.classification.at(k), 2);
    }
}

TEST(Timeseries, EpisodesAlignWithTheBursts) {
    obs::TimeSeries ts;
    harness::RunConfig cfg = pulse_run(&ts);
    harness::run_once({harness::standard_sut("swan")}, cfg);
    const obs::SutSeries& s = ts.suts[0];
    ASSERT_GE(s.episodes.size(), 2u) << "square wave should cause repeated episodes";
    const std::int64_t period = cfg.burst_period.ns();
    const std::int64_t duration = cfg.burst_duration.ns();
    const std::int64_t warmup = cfg.warmup.ns();  // generation (burst phase 0) start
    for (const obs::OverloadEpisode& ep : s.episodes) {
        EXPECT_GT(ep.intervals, 0u);
        EXPECT_GT(ep.dropped, 0u);
        EXPECT_LE(ep.start_ns, ep.end_ns);
        EXPECT_STRNE(ep.dominant_site, "");
        // The episode must start inside a burst window (generous slack:
        // one interval early for the open-boundary sample, 2 ms late for
        // queues that overflow while draining the burst).
        const std::int64_t phase = ((ep.start_ns - warmup) % period + period) % period;
        const bool in_burst = phase <= duration + sim::milliseconds(2).ns() ||
                              phase >= period - cfg.sample_interval.ns();
        EXPECT_TRUE(in_burst) << "episode start " << ep.start_ns << " phase " << phase;
    }
}

TEST(Timeseries, SamplingDoesNotPerturbTheRun) {
    obs::TimeSeries ts;
    const auto sampled =
        harness::run_once({harness::standard_sut("swan")}, pulse_run(&ts));
    harness::RunConfig plain = pulse_run(nullptr);
    plain.sample_interval = sim::Duration::zero();
    const auto bare = harness::run_once({harness::standard_sut("swan")}, plain);
    ASSERT_EQ(sampled.suts.size(), bare.suts.size());
    EXPECT_EQ(sampled.generated, bare.generated);
    for (std::size_t i = 0; i < sampled.suts.size(); ++i) {
        EXPECT_DOUBLE_EQ(sampled.suts[i].capture_avg_pct, bare.suts[i].capture_avg_pct);
        EXPECT_EQ(sampled.suts[i].nic_ring_drops, bare.suts[i].nic_ring_drops);
        EXPECT_EQ(sampled.suts[i].buffer_drops, bare.suts[i].buffer_drops);
    }
}

TEST(Timeseries, RunRepeatedSamplesRepZeroOnly) {
    obs::TimeSeries ts;
    harness::RunConfig cfg = pulse_run(&ts);
    cfg.packets = 4'000;
    harness::run_repeated({harness::standard_sut("swan")}, cfg, 2);
    // One run's worth of samples, finalized against rep 0's metrics.
    EXPECT_TRUE(ts.finalized);
    EXPECT_GT(ts.sample_count(), 0u);
    EXPECT_EQ(static_cast<std::uint64_t>(ts.generated.sum()), ts.generated_total);
}

// ---- document rendering -------------------------------------------------------

TEST(TimeseriesDoc, WriterRequiresFinalizedSeries) {
    const obs::TimeSeries ts;
    EXPECT_THROW((void)report::TimeseriesWriter::document(ts, "x"), std::logic_error);
}

std::string render_once(sim::EventQueueBackend backend) {
    obs::TimeSeries ts;
    harness::RunConfig cfg = pulse_run(&ts);
    cfg.event_queue = backend;
    harness::run_once({harness::standard_sut("swan")}, cfg);
    return report::TimeseriesWriter::serialize(
        report::TimeseriesWriter::document(ts, "pulse"));
}

TEST(TimeseriesDoc, ByteIdenticalAcrossEventQueueBackends) {
    EXPECT_EQ(render_once(sim::EventQueueBackend::kHeap),
              render_once(sim::EventQueueBackend::kWheel));
}

TEST(TimeseriesDoc, ByteIdenticalAcrossBpfTiers) {
    const auto render_tier = [](const char* tier) {
        const ScopedEnv env{"CAPBENCH_BPF_TIER", tier};
        obs::TimeSeries ts;
        harness::RunConfig cfg = pulse_run(&ts);
        cfg.packets = 4'000;
        harness::SutConfig sut = harness::standard_sut("swan");
        sut.filter_expression = "udp";  // give the tiers a program to run
        harness::run_once({sut}, cfg);
        return report::TimeseriesWriter::serialize(
            report::TimeseriesWriter::document(ts, "pulse"));
    };
    const std::string interp = render_tier("interpreter");
    EXPECT_EQ(interp, render_tier("threaded"));
    EXPECT_EQ(interp, render_tier("jit"));
}

TEST(TimeseriesDoc, ByteIdenticalAcrossJobsViaTheScenarioRunner) {
    const auto render_jobs = [](int jobs) {
        const scenario::Scenario* s = scenario::find_scenario("ext_overload_pulse");
        EXPECT_NE(s, nullptr);
        obs::TimeSeries ts;
        scenario::RunOptions opts;
        opts.jobs = jobs;
        opts.packets = 4'000;
        opts.reps = 1;
        opts.gnuplot_env_fallback = false;
        opts.timeseries = &ts;
        opts.sample_interval = sim::microseconds(500);
        scenario::run_scenario(*s, opts);
        return report::TimeseriesWriter::serialize(
            report::TimeseriesWriter::document(ts, s->id));
    };
    EXPECT_EQ(render_jobs(1), render_jobs(4));
}

}  // namespace
}  // namespace capbench
