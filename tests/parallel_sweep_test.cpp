// Tests for the ParallelExecutor and the determinism contract of the
// parallel sweep path: same seed => byte-identical RunResults whatever
// the job count, and run_repeated's seed-variation stride stays pinned.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "capbench/harness/experiment.hpp"
#include "capbench/harness/parallel.hpp"

namespace capbench::harness {
namespace {

void expect_identical(const RunResult& a, const RunResult& b) {
    ASSERT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.offered_mbps, b.offered_mbps);  // exact, not approximate
    ASSERT_EQ(a.suts.size(), b.suts.size());
    for (std::size_t i = 0; i < a.suts.size(); ++i) {
        const auto& x = a.suts[i];
        const auto& y = b.suts[i];
        EXPECT_EQ(x.name, y.name);
        EXPECT_EQ(x.per_app_capture_pct, y.per_app_capture_pct);
        EXPECT_EQ(x.capture_worst_pct, y.capture_worst_pct);
        EXPECT_EQ(x.capture_avg_pct, y.capture_avg_pct);
        EXPECT_EQ(x.capture_best_pct, y.capture_best_pct);
        EXPECT_EQ(x.cpu_pct, y.cpu_pct);
        EXPECT_EQ(x.nic_ring_drops, y.nic_ring_drops);
        EXPECT_EQ(x.backlog_drops, y.backlog_drops);
        EXPECT_EQ(x.buffer_drops, y.buffer_drops);
    }
}

void expect_identical(const std::vector<SweepRow>& a, const std::vector<SweepRow>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].rate_mbps, b[i].rate_mbps);
        expect_identical(a[i].result, b[i].result);
    }
}

TEST(ParallelExecutor, ClampsJobsToAtLeastOne) {
    EXPECT_EQ(ParallelExecutor{}.jobs(), 1);
    EXPECT_EQ(ParallelExecutor{0}.jobs(), 1);
    EXPECT_EQ(ParallelExecutor{-3}.jobs(), 1);
    EXPECT_EQ(ParallelExecutor{4}.jobs(), 4);
}

TEST(ParallelExecutor, VisitsEveryIndexExactlyOnce) {
    for (const int jobs : {1, 2, 7}) {
        constexpr std::size_t kCount = 100;
        std::vector<std::atomic<int>> visits(kCount);
        const ParallelExecutor exec{jobs};
        exec.parallel_for(kCount, [&](std::size_t i) { ++visits[i]; });
        for (std::size_t i = 0; i < kCount; ++i)
            EXPECT_EQ(visits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
}

TEST(ParallelExecutor, ZeroCountIsANoOp) {
    std::atomic<int> calls{0};
    ParallelExecutor{4}.parallel_for(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelExecutor, PropagatesTheFirstException) {
    const ParallelExecutor exec{3};
    std::atomic<int> started{0};
    EXPECT_THROW(
        exec.parallel_for(50,
                          [&](std::size_t i) {
                              ++started;
                              if (i == 5) throw std::runtime_error("point 5 failed");
                          }),
        std::runtime_error);
    // After the throw no new indices are claimed; well under 50 run.
    EXPECT_LT(started.load(), 50);
}

TEST(ParallelSweep, RateSweepIsBitIdenticalAcrossJobCounts) {
    const std::vector<SutConfig> suts{standard_sut("moorhen"), standard_sut("swan")};
    RunConfig cfg;
    cfg.packets = 2'000;
    const std::vector<double> rates{100, 300, 500, 700, 900};

    const auto serial = rate_sweep(suts, cfg, rates, /*reps=*/1);
    for (const int jobs : {2, 5}) {
        const ParallelExecutor exec{jobs};
        const auto parallel = rate_sweep(suts, cfg, rates, /*reps=*/1, &exec);
        expect_identical(serial, parallel);
    }
}

TEST(ParallelSweep, BufferSweepIsBitIdenticalAcrossJobCounts) {
    const std::vector<SutConfig> suts{standard_sut("moorhen"), standard_sut("snipe")};
    RunConfig cfg;
    cfg.packets = 2'000;
    const std::vector<std::uint64_t> buffers_kb{128, 1024, 32768};

    const auto serial = buffer_sweep(suts, cfg, buffers_kb, /*reps=*/1);
    const ParallelExecutor exec{3};
    const auto parallel = buffer_sweep(suts, cfg, buffers_kb, /*reps=*/1, &exec);
    expect_identical(serial, parallel);
}

TEST(ParallelSweep, RepeatedPointsStayIdenticalInParallel) {
    // reps > 1 exercises run_repeated inside the worker threads.
    const std::vector<SutConfig> suts{standard_sut("flamingo")};
    RunConfig cfg;
    cfg.packets = 1'500;
    const std::vector<double> rates{200, 600};

    const auto serial = rate_sweep(suts, cfg, rates, /*reps=*/3);
    const ParallelExecutor exec{2};
    expect_identical(serial, rate_sweep(suts, cfg, rates, /*reps=*/3, &exec));
}

TEST(RunRepeated, SeedVariationStrideIsPinned) {
    // Figure 3.2 repeats each measurement with varied seeds; rep k runs at
    // base_seed + k*7919.  This is observable behaviour (it decides which
    // workloads get averaged), so changing the stride must fail a test.
    const std::vector<SutConfig> suts{standard_sut("moorhen")};
    RunConfig cfg;
    cfg.packets = 2'000;
    cfg.rate_mbps = 900.0;
    cfg.seed = 5;

    const RunResult rep0 = run_once(suts, cfg);
    RunConfig second = cfg;
    second.seed = 5 + 7919;
    const RunResult rep1 = run_once(suts, second);
    // The seed varies the sampled packet sizes, so the reps differ.
    EXPECT_NE(rep0.offered_mbps, rep1.offered_mbps);

    const RunResult agg = run_repeated(suts, cfg, 2);
    EXPECT_EQ(agg.generated, (rep0.generated + rep1.generated) / 2);
    EXPECT_EQ(agg.offered_mbps, (rep0.offered_mbps + rep1.offered_mbps) / 2.0);
    ASSERT_EQ(agg.suts.size(), 1u);
    EXPECT_EQ(agg.suts[0].capture_avg_pct,
              (rep0.suts[0].capture_avg_pct + rep1.suts[0].capture_avg_pct) / 2.0);
    EXPECT_EQ(agg.suts[0].cpu_pct, (rep0.suts[0].cpu_pct + rep1.suts[0].cpu_pct) / 2.0);
    EXPECT_EQ(agg.suts[0].buffer_drops,
              rep0.suts[0].buffer_drops + rep1.suts[0].buffer_drops);
}

}  // namespace
}  // namespace capbench::harness
