// Tests for the host machine model: architecture cost function, kernel
// work priority, thread scheduling, accounting.
#include <gtest/gtest.h>

#include "capbench/hostsim/arch.hpp"
#include "capbench/hostsim/machine.hpp"

namespace capbench::hostsim {
namespace {

MachineSpec opteron_spec(int cores = 2, bool ht = false) {
    return MachineSpec{ArchSpec::amd_opteron(), cores, ht};
}

TEST(Arch, PureCyclesScaleWithClock) {
    const Work w{.cycles = 3060.0};
    const double xeon = work_duration_ns(ArchSpec::intel_xeon(), w, false, false);
    const double opteron = work_duration_ns(ArchSpec::amd_opteron(), w, false, false);
    EXPECT_NEAR(xeon, 1000.0, 1.0);  // 3060 cycles at 3.06 GHz
    EXPECT_NEAR(opteron, 1700.0, 1.0);
    EXPECT_LT(xeon, opteron);  // Intel wins pure computation (zlib case)
}

TEST(Arch, MemoryMissesFavourOpteron) {
    const Work w{.mem_misses = 10.0};
    const double xeon = work_duration_ns(ArchSpec::intel_xeon(), w, false, false);
    const double opteron = work_duration_ns(ArchSpec::amd_opteron(), w, false, false);
    EXPECT_GT(xeon, opteron * 1.8);  // FSB latency penalty
}

TEST(Arch, ContentionHurtsXeonMore) {
    const Work w{.mem_misses = 10.0};
    const auto& xeon = ArchSpec::intel_xeon();
    const auto& opteron = ArchSpec::amd_opteron();
    const double xeon_penalty = work_duration_ns(xeon, w, true, false) /
                                work_duration_ns(xeon, w, false, false);
    const double opteron_penalty = work_duration_ns(opteron, w, true, false) /
                                   work_duration_ns(opteron, w, false, false);
    EXPECT_GT(xeon_penalty, 1.3);
    EXPECT_LT(opteron_penalty, 1.1);
}

TEST(Arch, CacheSpillRaisesCopyCost) {
    const auto& arch = ArchSpec::intel_xeon();
    Work small{.copy_bytes = 1000.0, .working_set_bytes = 64.0 * 1024};
    Work huge{.copy_bytes = 1000.0, .working_set_bytes = 256.0 * 1024 * 1024};
    EXPECT_GT(work_duration_ns(arch, huge, false, false),
              1.5 * work_duration_ns(arch, small, false, false));
}

TEST(Arch, WorkAccumulates) {
    Work a{.cycles = 100, .mem_misses = 1, .copy_bytes = 10, .working_set_bytes = 5};
    const Work b{.cycles = 50, .mem_misses = 2, .copy_bytes = 20, .working_set_bytes = 99};
    a += b;
    EXPECT_DOUBLE_EQ(a.cycles, 150.0);
    EXPECT_DOUBLE_EQ(a.mem_misses, 3.0);
    EXPECT_DOUBLE_EQ(a.copy_bytes, 30.0);
    EXPECT_DOUBLE_EQ(a.working_set_bytes, 99.0);  // max, not sum
    const Work scaled = b.scaled(2.0);
    EXPECT_DOUBLE_EQ(scaled.cycles, 100.0);
}

TEST(Machine, RejectsBadSpecs) {
    sim::Simulator sim;
    EXPECT_THROW((Machine{sim, MachineSpec{ArchSpec::amd_opteron(), 0, false}, {}}),
                 std::invalid_argument);
    // Opterons are not HT capable.
    EXPECT_THROW((Machine{sim, MachineSpec{ArchSpec::amd_opteron(), 2, true}, {}}),
                 std::invalid_argument);
    Machine ht{sim, MachineSpec{ArchSpec::intel_xeon(), 2, true}, {}};
    EXPECT_EQ(ht.logical_cpus(), 4);
}

TEST(Machine, KernelWorkRunsFifoAndAccounts) {
    sim::Simulator sim;
    Machine m{sim, opteron_spec(), {}};
    std::vector<int> order;
    m.post_kernel_work(Work{.cycles = 1800}, CpuState::kInterrupt, [&] { order.push_back(1); });
    m.post_kernel_work(Work{.cycles = 1800}, CpuState::kInterrupt, [&] { order.push_back(2); });
    EXPECT_EQ(m.kernel_queue_len(), 2u);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(m.kernel_queue_len(), 0u);
    // 3600 cycles at 1.8 GHz = 2000 ns of interrupt time on CPU 0.
    EXPECT_EQ(m.cpu(0).in_state(CpuState::kInterrupt).ns(), 2000);
    EXPECT_EQ(m.cpu(1).busy().ns(), 0);
}

/// Thread that runs one chunk of work then exits.
class OneShot : public Thread {
public:
    OneShot(Work w, CpuState st) : Thread("oneshot"), work_(w), state_(st) {}
    void main() override {
        exec(work_, state_, [this] { done = true; });
    }
    bool done = false;

private:
    Work work_;
    CpuState state_;
};

TEST(Machine, ThreadExecutesAndAccountsUserTime) {
    sim::Simulator sim;
    Machine m{sim, opteron_spec(), {}};
    auto t = std::make_shared<OneShot>(Work{.cycles = 1800}, CpuState::kUser);
    m.spawn(t);
    sim.run();
    EXPECT_TRUE(t->done);
    EXPECT_EQ(t->state(), Thread::State::kDone);
    // Dispatcher prefers a CPU away from the interrupt CPU 0.
    EXPECT_EQ(m.cpu(1).in_state(CpuState::kUser).ns(), 1000);
}

TEST(Machine, SingleCpuKernelWorkDelaysThread) {
    sim::Simulator sim;
    Machine m{sim, opteron_spec(1), {}};
    auto t = std::make_shared<OneShot>(Work{.cycles = 18000}, CpuState::kUser);
    // Kernel work queued first occupies the only CPU.
    m.post_kernel_work(Work{.cycles = 18000}, CpuState::kInterrupt, {});
    m.spawn(t);
    sim.run();
    EXPECT_TRUE(t->done);
    // Thread completion = kernel 10us + own 10us.
    EXPECT_EQ(sim.now().ns(), 20'000);
}

/// Thread that blocks immediately and records its wake time.
class Sleeper : public Thread {
public:
    Sleeper() : Thread("sleeper") {}
    void main() override {
        block([this] { woke_at = machine().sim().now(); });
    }
    sim::SimTime woke_at{sim::SimTime::max()};
};

TEST(Machine, WakeupLatencyApplies) {
    sim::Simulator sim;
    SchedPolicy policy;
    policy.wakeup_latency = sim::microseconds(500);
    Machine m{sim, opteron_spec(), policy};
    auto t = std::make_shared<Sleeper>();
    m.spawn(t);
    sim.run(sim::SimTime{} + sim::milliseconds(1));
    EXPECT_EQ(t->state(), Thread::State::kBlocked);
    m.wake(*t);
    sim.run();
    EXPECT_EQ((t->woke_at - sim::SimTime{sim::milliseconds(1).ns()}).ns(),
              sim::microseconds(500).ns());
}

TEST(Machine, WakeNowSkipsLatencyAndIsIdempotent) {
    sim::Simulator sim;
    Machine m{sim, opteron_spec(), {}};
    auto t = std::make_shared<Sleeper>();
    m.spawn(t);
    sim.run();
    m.wake_now(*t);
    m.wake_now(*t);  // no-op on a runnable thread
    sim.run();
    EXPECT_EQ(t->state(), Thread::State::kDone);
}

/// Thread that records its scheduling order.
class OrderedThread : public Thread {
public:
    OrderedThread(std::vector<std::string>* log, std::string name)
        : Thread(std::move(name)), log_(log) {}
    void main() override {
        block([this] {
            log_->push_back(name());
            exec(Work{.cycles = 1800}, CpuState::kUser, [] {});
        });
    }

private:
    std::vector<std::string>* log_;
};

TEST(Machine, FifoVersusLifoWakeupOrder) {
    for (const bool lifo : {false, true}) {
        sim::Simulator sim;
        SchedPolicy policy;
        policy.lifo_wakeup = lifo;
        policy.wakeup_latency = sim::Duration::zero();
        Machine m{sim, opteron_spec(1), policy};  // one CPU forces queueing
        std::vector<std::string> log;
        auto a = std::make_shared<OrderedThread>(&log, "a");
        auto b = std::make_shared<OrderedThread>(&log, "b");
        auto c = std::make_shared<OrderedThread>(&log, "c");
        m.spawn(a);
        m.spawn(b);
        m.spawn(c);
        sim.run();  // all block
        // Keep the only CPU busy with a running thread so woken threads
        // queue up instead of dispatching one by one.
        auto hog = std::make_shared<OneShot>(Work{.cycles = 1'800'000}, CpuState::kUser);
        m.spawn(hog);
        m.wake(*a);
        m.wake(*b);
        m.wake(*c);
        sim.run();
        if (lifo)
            EXPECT_EQ(log, (std::vector<std::string>{"c", "b", "a"}));
        else
            EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
    }
}

TEST(Machine, KernelWorkPreemptsRunningChunk) {
    sim::Simulator sim;
    Machine m{sim, opteron_spec(1), {}};
    auto t = std::make_shared<OneShot>(Work{.cycles = 18'000}, CpuState::kUser);
    m.spawn(t);
    sim.run(sim::SimTime{} + sim::microseconds(2));  // chunk in flight (10us total)
    m.post_kernel_work(Work{.cycles = 9'000}, CpuState::kInterrupt, {});
    sim.run();
    EXPECT_TRUE(t->done);
    // 10us of thread work + 5us stolen by the interrupt.
    EXPECT_EQ(sim.now().ns(), 15'000);
    EXPECT_EQ(m.cpu(0).in_state(CpuState::kUser).ns(), 10'000);
    EXPECT_EQ(m.cpu(0).in_state(CpuState::kInterrupt).ns(), 5'000);
}

TEST(Machine, DualCpuRunsKernelAndThreadInParallel) {
    sim::Simulator sim;
    Machine m{sim, opteron_spec(2), {}};
    auto t = std::make_shared<OneShot>(Work{.cycles = 18'000}, CpuState::kUser);
    m.spawn(t);
    m.post_kernel_work(Work{.cycles = 18'000}, CpuState::kInterrupt, {});
    sim.run();
    // Both 10us jobs overlap on different CPUs.
    EXPECT_EQ(sim.now().ns(), 10'000);
}

TEST(Machine, UtilizationSince) {
    sim::Simulator sim;
    Machine m{sim, opteron_spec(2), {}};
    const auto busy0 = m.total_busy();
    m.post_kernel_work(Work{.cycles = 18'000}, CpuState::kInterrupt, {});
    sim.run();
    // 10us busy over a 10us window on 2 CPUs = 50%.
    EXPECT_NEAR(m.utilization_since(busy0, sim.now() - sim::SimTime{}), 0.5, 1e-9);
}

TEST(Machine, YieldRoundRobins) {
    // Two threads alternating via yield on a single CPU.
    class Yielder : public Thread {
    public:
        Yielder(std::vector<std::string>* log, std::string name, int rounds)
            : Thread(std::move(name)), log_(log), rounds_(rounds) {}
        void main() override { step(); }
        void step() {
            log_->push_back(name());
            if (--rounds_ <= 0) return;
            exec(Work{.cycles = 180}, CpuState::kUser,
                 [this] { yield([this] { step(); }); });
        }

    private:
        std::vector<std::string>* log_;
        int rounds_;
    };
    sim::Simulator sim;
    Machine m{sim, opteron_spec(1), {}};
    std::vector<std::string> log;
    auto a = std::make_shared<Yielder>(&log, "a", 2);
    auto b = std::make_shared<Yielder>(&log, "b", 2);
    m.spawn(a);
    m.spawn(b);
    sim.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "a", "b"}));
}

TEST(Machine, HyperthreadingSiblingSlowdown) {
    sim::Simulator sim;
    Machine m{sim, MachineSpec{ArchSpec::intel_xeon(), 1, true}, {}};
    // CPU 0 busy with kernel work; the sibling (CPU 1) runs a thread slower.
    m.post_kernel_work(Work{.cycles = 3'060'000}, CpuState::kInterrupt, {});  // 1ms
    auto t = std::make_shared<OneShot>(Work{.cycles = 306'000}, CpuState::kUser);  // 100us base
    m.spawn(t);
    sim.run();
    EXPECT_TRUE(t->done);
    // The thread landed on the sibling and was inflated by the HT factor.
    EXPECT_EQ(m.cpu(1).in_state(CpuState::kUser).ns(), 160'000);
}

}  // namespace
}  // namespace capbench::hostsim
