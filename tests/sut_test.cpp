// Tests for the Sut assembly and the capture application's load handling
// (disk back-pressure, pipe-to-gzip wiring, handler invocation, snaplen).
#include <gtest/gtest.h>

#include "capbench/dist/builtin.hpp"
#include "capbench/bpf/filter/lexer.hpp"
#include "capbench/harness/testbed.hpp"

namespace capbench::harness {
namespace {

/// Runs one SUT against `packets` generated packets and returns the bed
/// for inspection (fully drained).
std::unique_ptr<Testbed> run_bed(SutConfig sut, std::uint64_t packets, double rate,
                                 bool full_bytes = false,
                                 pcap::Session::Handler handler = {}) {
    TestbedConfig tb;
    tb.gen.count = packets;
    tb.gen.rate_mbps = rate;
    tb.gen.full_bytes = full_bytes;
    tb.gen.size_dist.emplace(dist::mwn_trace_histogram());
    tb.gen.use_dist = true;
    tb.suts.push_back(std::move(sut));
    auto bed = std::make_unique<Testbed>(std::move(tb));
    bed->start_suts();
    if (handler) bed->suts()[0]->sessions()[0]->set_handler(std::move(handler));
    bool done = false;
    bed->generator().start(sim::SimTime{}, [&] { done = true; });
    while (!done) bed->sim().run(bed->sim().now() + sim::seconds(1));
    bed->sim().run(bed->sim().now() + sim::seconds(3));
    return bed;
}

TEST(Sut, RejectsZeroApplications) {
    sim::Simulator sim;
    auto cfg = standard_sut("moorhen");
    cfg.app_count = 0;
    EXPECT_THROW(Sut(sim, cfg), std::invalid_argument);
}

TEST(Sut, FilterInstalledAtConstruction) {
    sim::Simulator sim;
    auto cfg = standard_sut("moorhen");
    cfg.filter_expression = "udp and ip";
    Sut sut{sim, cfg};
    EXPECT_EQ(sut.sessions()[0]->filter_expression(), "udp and ip");
}

TEST(Sut, BadFilterThrowsAtConstruction) {
    sim::Simulator sim;
    auto cfg = standard_sut("moorhen");
    cfg.filter_expression = "udp andand";
    EXPECT_THROW(Sut(sim, cfg), bpf::filter::FilterError);
}

TEST(CaptureAppLoads, HandlerSeesEveryDeliveredPacket) {
    std::uint64_t handled = 0;
    std::uint64_t cap_bytes = 0;
    auto cfg = standard_sut("moorhen");
    cfg.buffer_bytes = 10u << 20;
    cfg.snaplen = 100;
    auto bed = run_bed(cfg, 5'000, 200.0, false,
                       [&](const net::PacketPtr&, std::uint32_t caplen) {
                           ++handled;
                           cap_bytes += caplen;
                       });
    EXPECT_EQ(handled, 5'000u);
    // snaplen caps the per-packet capture length.
    EXPECT_LE(cap_bytes, 5'000u * 100u);
    EXPECT_GT(cap_bytes, 5'000u * 50u);  // most packets exceed 100 B wire size
}

TEST(CaptureAppLoads, SlowDiskThrottlesFullPacketCapture) {
    // Writing FULL packets cannot keep up with the link (Figure 6.13's
    // conclusion): with whole-packet writes the capture rate collapses to
    // roughly disk speed / data rate.
    auto cfg = standard_sut("swan");
    cfg.buffer_bytes = 2u << 20;  // small buffer so back-pressure bites
    cfg.app_load.disk_bytes_per_packet = 1515;  // whole packets
    auto bed = run_bed(cfg, 60'000, 900.0);
    const auto& stats = bed->suts()[0]->sessions()[0]->stats();
    // 92 MB/s disk vs ~108 MB/s offered: some loss must appear.
    EXPECT_GT(stats.ps_drop, 0u);
    // Header-only writes at the same rate are fine.
    auto light = standard_sut("swan");
    light.buffer_bytes = 128u << 20;
    light.app_load.disk_bytes_per_packet = 76;
    auto bed2 = run_bed(light, 60'000, 700.0);
    EXPECT_EQ(bed2->suts()[0]->sessions()[0]->stats().ps_drop, 0u);
}

TEST(CaptureAppLoads, PipeToGzipSpawnsConsumer) {
    auto cfg = standard_sut("moorhen");
    cfg.buffer_bytes = 10u << 20;
    cfg.app_load.pipe_to_gzip = true;
    auto bed = run_bed(cfg, 10'000, 300.0);
    auto& machine = bed->suts()[0]->machine();
    // Both the capture app and the gzip process burned user CPU.
    EXPECT_GT(machine.cpu(0).busy().ns() + machine.cpu(1).busy().ns(), 0);
    EXPECT_EQ(bed->suts()[0]->sessions()[0]->stats().ps_recv, 10'000u);
}

TEST(CaptureAppLoads, MemcpyLoadShowsUpAsUserTime) {
    auto plain = standard_sut("moorhen");
    plain.buffer_bytes = 10u << 20;
    auto loaded = plain;
    loaded.app_load.memcpy_count = 50;
    auto bed_plain = run_bed(plain, 10'000, 300.0);
    auto bed_loaded = run_bed(loaded, 10'000, 300.0);
    const auto user = [](Testbed& bed) {
        auto& m = bed.suts()[0]->machine();
        return m.cpu(0).in_state(hostsim::CpuState::kUser) +
               m.cpu(1).in_state(hostsim::CpuState::kUser);
    };
    EXPECT_GT(user(*bed_loaded).ns(), 3 * user(*bed_plain).ns());
}

TEST(CaptureAppLoads, RealBytesSurviveToHandler) {
    bool checked = false;
    auto cfg = standard_sut("moorhen");
    auto bed = run_bed(cfg, 500, 100.0, /*full_bytes=*/true,
                       [&](const net::PacketPtr& p, std::uint32_t) {
                           if (checked) return;
                           checked = true;
                           ASSERT_TRUE(p->has_bytes());
                           const auto eth = net::EthernetHeader::decode(p->bytes());
                           EXPECT_EQ(eth.ether_type, net::kEtherTypeIpv4);
                       });
    EXPECT_TRUE(checked);
}

TEST(Sut, MultipleAppsGetIndependentSessions) {
    sim::Simulator sim;
    auto cfg = standard_sut("flamingo");
    cfg.app_count = 3;
    Sut sut{sim, cfg};
    EXPECT_EQ(sut.sessions().size(), 3u);
    EXPECT_EQ(sut.delivered(0), 0u);
    EXPECT_EQ(sut.delivered(2), 0u);
}

}  // namespace
}  // namespace capbench::harness
