// Observability layer tests (ISSUE 5): counter registry, trace sink /
// Chrome JSON export, packet-lifecycle metrics and their invariants.
#include <gtest/gtest.h>

#include <sstream>

#include "capbench/bpf/decoded.hpp"
#include "capbench/harness/experiment.hpp"
#include "capbench/harness/measurement.hpp"
#include "capbench/obs/observer.hpp"
#include "capbench/obs/registry.hpp"
#include "capbench/obs/trace.hpp"
#include "capbench/report/json.hpp"
#include "capbench/report/metrics_writer.hpp"

namespace capbench {
namespace {

// ---- registry -----------------------------------------------------------------

TEST(ObsRegistry, CounterGetOrCreateAndSnapshotOrder) {
    obs::Registry reg;
    obs::Counter& a = reg.counter("pktgen.packets");
    obs::Counter& b = reg.counter("sched.dispatches");
    a.inc();
    a.inc(41);
    b.inc(7);
    // Same name returns the same counter.
    EXPECT_EQ(&reg.counter("pktgen.packets"), &a);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(a.value(), 42u);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    // Snapshot preserves registration order, not lexicographic order.
    EXPECT_EQ(snap[0].first, "pktgen.packets");
    EXPECT_EQ(snap[0].second, 42u);
    EXPECT_EQ(snap[1].first, "sched.dispatches");
    EXPECT_EQ(snap[1].second, 7u);
}

TEST(ObsRegistry, CounterAddressesSurviveGrowth) {
    obs::Registry reg;
    obs::Counter& first = reg.counter("first");
    for (int i = 0; i < 1000; ++i) reg.counter("c" + std::to_string(i));
    first.inc();
    EXPECT_EQ(reg.counter("first").value(), 1u);
}

// ---- trace sink ---------------------------------------------------------------

TEST(ObsTrace, RecordsEventsInOrderAcrossChunks) {
    obs::TraceSink sink;
    const char* name = sink.intern("work");
    const std::size_t n = obs::TraceSink::kChunkEvents * 2 + 17;
    for (std::size_t i = 0; i < n; ++i)
        sink.counter(1, 2, name, sim::SimTime{static_cast<std::int64_t>(i)},
                     static_cast<std::int64_t>(i));
    EXPECT_EQ(sink.event_count(), n);
    EXPECT_EQ(sink.chunk_count(), 3u);
    std::int64_t expect = 0;
    sink.for_each([&](const obs::TraceEvent& e) {
        EXPECT_EQ(e.value, expect);
        EXPECT_EQ(e.ts_ns, expect);
        ++expect;
    });
    EXPECT_EQ(expect, static_cast<std::int64_t>(n));
}

TEST(ObsTrace, InternReturnsStablePointerPerString) {
    obs::TraceSink sink;
    const char* a = sink.intern("irq");
    const char* b = sink.intern(std::string("ir") + "q");
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "irq");
    EXPECT_NE(sink.intern("other"), a);
}

TEST(ObsTrace, ChromeJsonParsesAndRendersExactMicroseconds) {
    obs::TraceSink sink;
    sink.set_process_name(1, "sut:swan");
    sink.set_thread_name(1, obs::kKernelTid, "kernel");
    // 1,234,567 ns = 1234.567 µs — must render exactly, not via doubles.
    sink.complete(1, obs::kKernelTid, sink.intern("slice"), sink.intern("system"),
                  sim::SimTime{1'234'567}, sim::SimTime{2'000'000});
    sink.instant(1, obs::kNicTid, sink.intern("irq"), sink.intern("irq"),
                 sim::SimTime{5'000});
    sink.counter(1, obs::kNicTid, sink.intern("ring"), sim::SimTime{6'000}, 3);

    std::ostringstream os;
    sink.write_chrome_json(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"ts\":1234.567"), std::string::npos) << text;
    EXPECT_NE(text.find("\"dur\":765.433"), std::string::npos) << text;

    const report::JsonValue doc = report::parse_json(text);
    const auto& events = doc.at("traceEvents").as_array();
    ASSERT_EQ(events.size(), 5u);  // 2 metadata + 3 events
    EXPECT_EQ(events[0].at("ph").as_string(), "M");
    EXPECT_EQ(events[0].at("name").as_string(), "process_name");
    EXPECT_EQ(events[0].at("args").at("name").as_string(), "sut:swan");
    const auto& slice = events[2];
    EXPECT_EQ(slice.at("ph").as_string(), "X");
    EXPECT_EQ(slice.at("cat").as_string(), "system");
    const auto& instant = events[3];
    EXPECT_EQ(instant.at("ph").as_string(), "i");
    EXPECT_EQ(instant.at("s").as_string(), "t");
    const auto& counter = events[4];
    EXPECT_EQ(counter.at("ph").as_string(), "C");
    EXPECT_EQ(counter.at("args").at("value").as_int(), 3);
}

TEST(ObsTrace, EscapesControlCharactersInNames) {
    obs::TraceSink sink;
    sink.instant(1, 2, sink.intern("a\"b\\c\nd"), nullptr, sim::SimTime{0});
    std::ostringstream os;
    sink.write_chrome_json(os);
    EXPECT_NO_THROW(report::parse_json(os.str()));
    EXPECT_NE(os.str().find("a\\\"b\\\\c\\nd"), std::string::npos);
}

// ---- lifecycle metrics through the measurement cycle --------------------------

harness::RunConfig metrics_run(double rate) {
    harness::RunConfig cfg;
    cfg.packets = 6'000;
    cfg.rate_mbps = rate;
    cfg.collect_metrics = true;
    return cfg;
}

TEST(ObsMetrics, DisabledRunCollectsNothing) {
    harness::RunConfig cfg = metrics_run(300.0);
    cfg.collect_metrics = false;
    const auto result = harness::run_once(harness::standard_suts(), cfg);
    EXPECT_FALSE(result.metrics.enabled);
    EXPECT_TRUE(result.metrics.suts.empty());
}

TEST(ObsMetrics, DropAttributionSumsToGeneratedPerApp) {
    // Overload rate: exercises the ring/backlog/buffer drop sites too.
    for (const double rate : {200.0, 900.0}) {
        const auto result =
            harness::run_once(harness::standard_suts(), metrics_run(rate));
        ASSERT_TRUE(result.metrics.enabled);
        EXPECT_EQ(result.metrics.generated, result.generated);
        ASSERT_EQ(result.metrics.suts.size(), 4u);
        for (const auto& sut : result.metrics.suts) {
            EXPECT_EQ(sut.offered, result.generated) << sut.name;
            for (const auto& app : sut.apps) {
                EXPECT_EQ(app.delivered + app.drops_total(), result.metrics.generated)
                    << sut.name << " rate=" << rate;
                // Latency histogram covers exactly the delivered packets.
                EXPECT_EQ(app.latency_ns.size(), app.delivered) << sut.name;
            }
        }
    }
}

TEST(ObsMetrics, DeliveredMatchesHeadlineCaptureCounters) {
    const auto result = harness::run_once({harness::standard_sut("moorhen")},
                                          metrics_run(100.0));
    ASSERT_TRUE(result.metrics.enabled);
    // At 100 Mbit/s everything is captured; both layers must agree.
    EXPECT_EQ(result.metrics.suts[0].apps[0].delivered, result.metrics.generated);
    EXPECT_DOUBLE_EQ(result.suts[0].capture_avg_pct, 100.0);
}

TEST(ObsMetrics, CpusageSamplesFeedTrimusage) {
    harness::RunConfig cfg = metrics_run(400.0);
    cfg.cpusage_interval = sim::milliseconds(5);
    const auto result = harness::run_once({harness::standard_sut("swan")}, cfg);
    ASSERT_TRUE(result.metrics.enabled);
    const auto& samples = result.metrics.suts[0].cpu_samples;
    EXPECT_GT(samples.size(), 5u);
    for (const auto& s : samples) {
        const double total = s.user_pct + s.system_pct + s.interrupt_pct + s.idle_pct;
        EXPECT_NEAR(total, 100.0, 1e-6);
    }
}

TEST(ObsMetrics, CountersIncludeSchedulerAndPktgen) {
    const auto result =
        harness::run_once({harness::standard_sut("swan")}, metrics_run(300.0));
    ASSERT_TRUE(result.metrics.enabled);
    std::uint64_t pktgen_packets = 0;
    bool saw_dispatches = false;
    for (const auto& [name, value] : result.metrics.counters) {
        if (name == "pktgen.packets") pktgen_packets = value;
        if (name == "swan.sched.dispatches") saw_dispatches = value > 0;
    }
    EXPECT_EQ(pktgen_packets, result.generated);
    EXPECT_TRUE(saw_dispatches);
}

TEST(ObsMetrics, ObservationDoesNotPerturbResults) {
    harness::RunConfig cfg = metrics_run(700.0);
    harness::RunConfig plain = cfg;
    plain.collect_metrics = false;
    const auto observed = harness::run_once(harness::standard_suts(), cfg);
    const auto bare = harness::run_once(harness::standard_suts(), plain);
    ASSERT_EQ(observed.suts.size(), bare.suts.size());
    for (std::size_t i = 0; i < observed.suts.size(); ++i) {
        EXPECT_DOUBLE_EQ(observed.suts[i].capture_avg_pct, bare.suts[i].capture_avg_pct);
        EXPECT_EQ(observed.suts[i].nic_ring_drops, bare.suts[i].nic_ring_drops);
        EXPECT_EQ(observed.suts[i].buffer_drops, bare.suts[i].buffer_drops);
    }
}

TEST(ObsMetrics, IdenticalAcrossEventQueueBackends) {
    harness::RunConfig cfg = metrics_run(800.0);
    cfg.event_queue = sim::EventQueueBackend::kHeap;
    harness::RunConfig wheel = cfg;
    wheel.event_queue = sim::EventQueueBackend::kWheel;
    const auto a = harness::run_once(harness::standard_suts(), cfg);
    const auto b = harness::run_once(harness::standard_suts(), wheel);
    // Byte-compare the serialized metrics points: every counter, drop
    // bucket and quantile must match across backends.
    const auto da = report::MetricsWriter::point(800.0, a.metrics);
    const auto db = report::MetricsWriter::point(800.0, b.metrics);
    EXPECT_EQ(report::MetricsWriter::serialize(da), report::MetricsWriter::serialize(db));
}

TEST(ObsMetrics, RepeatedRunsSumRawCounts) {
    const auto once = harness::run_once({harness::standard_sut("moorhen")},
                                        metrics_run(200.0));
    const auto thrice = harness::run_repeated({harness::standard_sut("moorhen")},
                                              metrics_run(200.0), 3);
    ASSERT_TRUE(thrice.metrics.enabled);
    // Headline counts are averaged; lifecycle metrics stay raw sums so the
    // per-app identity keeps holding exactly.
    EXPECT_EQ(thrice.generated, once.generated);
    EXPECT_EQ(thrice.metrics.generated, 3 * once.metrics.generated);
    for (const auto& sut : thrice.metrics.suts)
        for (const auto& app : sut.apps)
            EXPECT_EQ(app.delivered + app.drops_total(), thrice.metrics.generated);
}

// ---- timeline through the measurement cycle -----------------------------------

TEST(ObsTraceRun, MeasurementEmitsLoadableTimeline) {
    obs::TraceSink sink;
    harness::RunConfig cfg = metrics_run(600.0);
    cfg.collect_metrics = false;  // trace alone must imply observation
    cfg.trace = &sink;
    const auto result = harness::run_once(harness::standard_suts(), cfg);
    EXPECT_TRUE(result.metrics.enabled);
    EXPECT_GT(sink.event_count(), 1000u);

    std::ostringstream os;
    sink.write_chrome_json(os);
    const report::JsonValue doc = report::parse_json(os.str());
    const auto& events = doc.at("traceEvents").as_array();
    bool names[4] = {false, false, false, false};
    for (const auto& e : events) {
        if (e.at("ph").as_string() != "M") continue;
        if (e.at("name").as_string() != "process_name") continue;
        const std::string& n = e.at("args").at("name").as_string();
        if (n == "sut:swan") names[0] = true;
        if (n == "sut:snipe") names[1] = true;
        if (n == "sut:moorhen") names[2] = true;
        if (n == "sut:flamingo") names[3] = true;
    }
    for (const bool seen : names) EXPECT_TRUE(seen);
}

TEST(ObsTraceRun, TimelineIsDeterministic) {
    const auto render = [] {
        obs::TraceSink sink;
        harness::RunConfig cfg = metrics_run(500.0);
        cfg.trace = &sink;
        harness::run_once(harness::standard_suts(), cfg);
        std::ostringstream os;
        sink.write_chrome_json(os);
        return os.str();
    };
    EXPECT_EQ(render(), render());
}

// ---- metrics document ---------------------------------------------------------

TEST(ObsMetricsDoc, WriterEmitsSchemaAndDropBuckets) {
    const auto result = harness::run_once({harness::standard_sut("snipe")},
                                          metrics_run(900.0));
    const auto point = report::MetricsWriter::point(900.0, result.metrics);
    const auto parsed = report::parse_json(report::MetricsWriter::serialize(point));
    EXPECT_EQ(parsed.at("generated").as_int(),
              static_cast<std::int64_t>(result.generated));
    const auto& sut = parsed.at("suts").as_array().at(0);
    EXPECT_EQ(sut.at("name").as_string(), "snipe");
    const auto& app = sut.at("apps").as_array().at(0);
    const auto& drops = app.at("drops");
    std::int64_t total = app.at("delivered").as_int();
    for (const obs::DropSite& site : obs::kDropSites) total += drops.at(site.name).as_int();
    EXPECT_EQ(total, static_cast<std::int64_t>(result.generated));
    EXPECT_TRUE(sut.at("cpu").at("samples").as_int() > 0);
}

// ---- BPF filter-install counters and cache accounting -------------------------

TEST(ObsBpfCounters, FilterInstallRegistersPerAppCounters) {
    harness::SutConfig sut = harness::standard_sut("swan");
    sut.filter_expression = harness::fig_6_5_filter_expression();
    harness::RunConfig cfg = metrics_run(100.0);
    cfg.packets = 500;
    const auto result = harness::run_once({sut}, cfg);
    ASSERT_TRUE(result.metrics.enabled);

    std::uint64_t installs = 0;
    std::uint64_t decoded_insns = 0;
    bool saw_installs = false;
    for (const auto& [name, value] : result.metrics.counters) {
        if (name == "bpf.swan.app0.filter_installs") {
            installs = value;
            saw_installs = true;
        }
        if (name == "bpf.swan.app0.decoded_insns") decoded_insns = value;
    }
    ASSERT_TRUE(saw_installs);
    EXPECT_EQ(installs, 1u);
    if (bpf::exec_tier() != bpf::ExecTier::kInterpreter) {
        EXPECT_GT(decoded_insns, 0u);
    }
}

TEST(ObsBpfCounters, MetricsSuiteCarriesProcessCacheStats) {
    const auto doc = report::MetricsWriter::suite({});
    const auto parsed = report::parse_json(report::MetricsWriter::serialize(doc));
    const auto& cache = parsed.at("bpf_cache");
    const std::int64_t lookups = cache.at("lookups").as_int();
    const std::int64_t hits = cache.at("hits").as_int();
    const std::int64_t misses = cache.at("misses").as_int();
    EXPECT_EQ(lookups, hits + misses);  // every lookup is hit or miss
    EXPECT_GE(cache.at("jit_compiles").as_int(), 0);
}

}  // namespace
}  // namespace capbench
