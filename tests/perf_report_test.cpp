// capbench.perf.v1 document tests: shape, round-trip, and validator
// rejections.
#include <gtest/gtest.h>

#include "capbench/report/json.hpp"
#include "capbench/report/perf.hpp"

namespace report = capbench::report;

namespace {

report::PerfReport sample_report() {
    report::PerfReport r;
    r.packets_per_macro_run = 200'000;
    r.seed = 1;
    r.quick = false;
    r.build_type = "Release";
    report::PerfCase macro;
    macro.name = "fig_6_2_baseline";
    macro.kind = "macro";
    macro.wall_seconds = 12.5;
    macro.events = 40'000'000;
    macro.sim_packets = 200'000;
    macro.events_per_sec = 3.2e6;
    macro.packets_per_sec = 16'000.0;
    r.cases.push_back(macro);
    report::PerfCase micro;
    micro.name = "event_queue_hot_loop";
    micro.kind = "micro";
    micro.wall_seconds = 0.5;
    micro.events = 2'000'000;
    micro.events_per_sec = 4e6;
    r.cases.push_back(micro);
    return r;
}

TEST(PerfReport, DocumentRoundTripsAndValidates) {
    const report::JsonValue doc = report::perf_document(sample_report());
    const std::string text = report::dump_json(doc);
    const report::JsonValue parsed = report::parse_json(text);
    EXPECT_EQ(parsed, doc);
    EXPECT_NO_THROW(report::validate_perf_document(parsed));
    EXPECT_EQ(parsed.at("schema").as_string(), report::kPerfSchema);
    EXPECT_EQ(parsed.at("cases").as_array().size(), 2u);
    EXPECT_EQ(parsed.at("config").at("packets_per_macro_run").as_int(), 200'000);
}

TEST(PerfReport, ValidatorRejectsWrongSchemaTag) {
    report::JsonValue doc = report::perf_document(sample_report());
    report::JsonValue bad = report::parse_json(report::dump_json(doc));
    // Rebuild with a wrong tag (objects are insertion-ordered vectors; easiest
    // is to construct a fresh document).
    report::JsonValue wrong = report::JsonValue::object();
    for (const auto& [key, value] : bad.as_object())
        wrong.set(key, key == "schema" ? report::JsonValue("capbench.perf.v0") : value);
    EXPECT_THROW(report::validate_perf_document(wrong), std::runtime_error);
}

TEST(PerfReport, ValidatorRejectsMissingFields) {
    report::JsonValue no_cases = report::JsonValue::object();
    no_cases.set("schema", report::kPerfSchema);
    EXPECT_THROW(report::validate_perf_document(no_cases), std::runtime_error);

    report::JsonValue bad_kind = report::perf_document(sample_report());
    report::JsonValue rebuilt = report::JsonValue::object();
    for (const auto& [key, value] : bad_kind.as_object()) {
        if (key != "cases") {
            rebuilt.set(key, value);
            continue;
        }
        report::JsonValue cases = report::JsonValue::array();
        for (const auto& c : value.as_array()) {
            report::JsonValue entry = report::JsonValue::object();
            for (const auto& [ck, cv] : c.as_object())
                entry.set(ck, ck == "kind" ? report::JsonValue("mezzo") : cv);
            cases.push_back(std::move(entry));
        }
        rebuilt.set("cases", std::move(cases));
    }
    EXPECT_THROW(report::validate_perf_document(rebuilt), std::runtime_error);
}

TEST(PerfReport, EmptyCasesRejected) {
    report::PerfReport r = sample_report();
    r.cases.clear();
    EXPECT_THROW(report::validate_perf_document(report::perf_document(r)),
                 std::runtime_error);
}

}  // namespace
