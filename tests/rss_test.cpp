// Toeplitz RSS hash against the canonical Microsoft RSS verification
// suite test vectors (IPv4, 2-tuple and 4-tuple), plus indirection-table
// semantics.  A NIC whose hash disagrees with these vectors steers flows
// to different queues than real RSS hardware would.
#include <gtest/gtest.h>

#include <cstdint>

#include "capbench/capture/rss.hpp"
#include "capbench/net/packet.hpp"

namespace capbench::capture::rss {
namespace {

constexpr std::uint32_t ip(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                           std::uint32_t d) {
    return (a << 24) | (b << 16) | (c << 8) | d;
}

struct Vector {
    std::uint32_t dst_ip;
    std::uint32_t src_ip;
    std::uint16_t dst_port;
    std::uint16_t src_port;
    std::uint32_t hash_2tuple;  // IPv4 only
    std::uint32_t hash_4tuple;  // IPv4 + TCP ports
};

// The five IPv4 rows of the Microsoft RSS hash verification table
// (destination listed first, as in the spec).
constexpr Vector kVectors[] = {
    {ip(161, 142, 100, 80), ip(66, 9, 149, 187), 1766, 2794, 0x323e8fc2, 0x51ccc178},
    {ip(65, 69, 140, 83), ip(199, 92, 111, 2), 4739, 14230, 0xd718262a, 0xc626b0ea},
    {ip(12, 22, 207, 184), ip(24, 19, 198, 95), 38024, 12898, 0xd2d0a5de, 0x5c2b394a},
    {ip(209, 142, 163, 6), ip(38, 27, 205, 30), 2217, 48228, 0x82989176, 0xafc7327f},
    {ip(202, 188, 127, 2), ip(153, 39, 163, 191), 1303, 44251, 0x5d1809c5, 0x10e828a2},
};

TEST(Toeplitz, MatchesMicrosoftIpv4TwoTupleVectors) {
    const Key& key = microsoft_key();
    for (const Vector& v : kVectors)
        EXPECT_EQ(hash_ipv4(key, v.src_ip, v.dst_ip), v.hash_2tuple);
}

TEST(Toeplitz, MatchesMicrosoftIpv4FourTupleVectors) {
    const Key& key = microsoft_key();
    for (const Vector& v : kVectors)
        EXPECT_EQ(hash_ipv4_ports(key, v.src_ip, v.dst_ip, v.src_port, v.dst_port),
                  v.hash_4tuple);
}

TEST(Toeplitz, FlowHashUsesThePacketsStampedTuple) {
    const Vector& v = kVectors[0];
    net::Packet packet{0, 1500, sim::SimTime{}};
    packet.set_flow(net::FlowTuple{v.src_ip, v.dst_ip, v.src_port, v.dst_port});
    EXPECT_EQ(flow_hash(packet), v.hash_4tuple);
}

TEST(Toeplitz, HashDependsOnEveryTupleField) {
    const Key& key = microsoft_key();
    const std::uint32_t base = hash_ipv4_ports(key, 1, 2, 3, 4);
    EXPECT_NE(hash_ipv4_ports(key, 9, 2, 3, 4), base);
    EXPECT_NE(hash_ipv4_ports(key, 1, 9, 3, 4), base);
    EXPECT_NE(hash_ipv4_ports(key, 1, 2, 9, 4), base);
    EXPECT_NE(hash_ipv4_ports(key, 1, 2, 3, 9), base);
}

TEST(IndirectionTable, UniformSpreadsEntriesRoundRobin) {
    const auto table = IndirectionTable::uniform(4);
    EXPECT_EQ(table.max_queue(), 3);
    int counts[4] = {0, 0, 0, 0};
    for (std::uint32_t h = 0; h < IndirectionTable::kEntries; ++h)
        ++counts[table.queue_for(h)];
    for (const int c : counts) EXPECT_EQ(c, 32);  // 128 / 4
}

TEST(IndirectionTable, QueueForMasksTheHash) {
    const auto table = IndirectionTable::uniform(4);
    for (std::uint32_t h = 0; h < IndirectionTable::kEntries; ++h)
        EXPECT_EQ(table.queue_for(h + 5u * IndirectionTable::kEntries), table.queue_for(h));
}

TEST(IndirectionTable, SingleQueueMapsEverythingToZero) {
    const auto table = IndirectionTable::uniform(1);
    EXPECT_EQ(table.max_queue(), 0);
    EXPECT_EQ(table.queue_for(0xdeadbeef), 0);
}

TEST(IndirectionTable, SkewedAimsTheHotFractionAtTheHotQueue) {
    const auto table = IndirectionTable::skewed(4, 0, 0.75);
    int hot = 0;
    for (const auto entry : table.entries())
        if (entry == 0) ++hot;
    // 75% of 128 = 96 entries forced to queue 0; of the remaining 32
    // round-robin entries (96..127), every 4th is queue 0 too: 8 more.
    EXPECT_EQ(hot, 96 + 8);
}

TEST(IndirectionTable, RejectsInvalidShapes) {
    EXPECT_THROW(IndirectionTable::uniform(0), std::invalid_argument);
    EXPECT_THROW(IndirectionTable::uniform(129), std::invalid_argument);
    EXPECT_THROW(IndirectionTable::skewed(4, 4, 0.5), std::invalid_argument);
    EXPECT_THROW(IndirectionTable::skewed(4, -1, 0.5), std::invalid_argument);
    EXPECT_THROW(IndirectionTable::skewed(4, 0, 1.5), std::invalid_argument);
    EXPECT_THROW(IndirectionTable::skewed(4, 0, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace capbench::capture::rss
