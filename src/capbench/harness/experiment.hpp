// Experiment descriptors shared by the figure benches (the influencing
// variables of Section 6.1 and the measurement parameters of Section 6.2).
#pragma once

#include <string>
#include <vector>

#include "capbench/harness/measurement.hpp"
#include "capbench/harness/parallel.hpp"

namespace capbench::harness {

/// The data-rate grid of the Chapter 6 plots: 50..950 Mbit/s in 50 Mbit/s
/// steps.
std::vector<double> default_rate_grid();

/// Packets generated per run.  The thesis uses 1,000,000; benches default
/// to a smaller count so the whole suite runs in minutes.  Override with
/// the CAPBENCH_PACKETS environment variable.  Throws std::runtime_error
/// when the variable is set to anything but a positive integer.
std::uint64_t packets_per_run();

/// Measurement repetitions per point (thesis: 7).  Override with
/// CAPBENCH_REPS; garbage/zero/negative values throw std::runtime_error.
int default_reps();

/// Worker threads for sweep execution (see ParallelExecutor).  Defaults
/// to 1 (serial); override with CAPBENCH_JOBS.  Garbage/zero/negative
/// values throw std::runtime_error; values above 512 are rejected too.
int default_jobs();

/// NIC receive queues for the standard sniffers.  Defaults to 1 (the
/// classic single-ring NIC, byte-identical to the pre-RSS figures);
/// override with CAPBENCH_QUEUES.  Garbage/zero/negative values throw
/// std::runtime_error; values above 16 are rejected too.
int default_queues();

/// Time-series sampling interval from CAPBENCH_SAMPLE_INTERVAL, in
/// MICROseconds of simulated time; Duration::zero() when unset (sampling
/// off, the default).  Strict parsing: empty, garbage, zero, negative and
/// overflowing values throw std::runtime_error, as do values above one
/// hour (3'600'000'000 us).
sim::Duration sample_interval_from_env();

/// Per-queue IRQ affinity for the standard sniffers, from CAPBENCH_AFFINITY
/// as a comma-separated list of CPU indices (queue i -> entry i % size;
/// e.g. "0,1,1").  Unset = empty vector (queue i -> CPU i % logical_cpus).
/// Empty items, garbage, negative values and indices above 255 throw
/// std::runtime_error.
std::vector<int> affinity_from_env();

/// The four sniffers of Figure 2.4 in plot order.
std::vector<SutConfig> standard_suts();

/// Section 6.3.1's increased buffers: 10 MB BPF double-buffer halves for
/// FreeBSD, 128 MB socket buffers for Linux.
void apply_increased_buffers(std::vector<SutConfig>& suts);

/// Single processor mode ("no SMP").
void apply_single_cpu(std::vector<SutConfig>& suts);

/// The 50-instruction BPF filter expression of Figure 6.5 (accepts every
/// generated packet, but only after evaluating the full chain).
std::string fig_6_5_filter_expression();

struct SweepRow {
    double rate_mbps = 0.0;
    RunResult result;
};

/// Runs the measurement cycle across a rate grid.  With a non-null
/// executor the points run concurrently; every point builds its own
/// testbed, so the rows are bit-identical to the serial path regardless
/// of the job count.
///
/// `trace` (may be null) records the timeline of ONE designated point —
/// the last of the grid, i.e. the highest rate / deepest overload, and
/// within it rep 0.  A single fixed point keeps the sink single-writer
/// under parallel execution and the output identical at any job count.
/// `timeseries` (may be null) collects interval telemetry for the same
/// designated point; RunConfig::sample_interval must be positive then.
std::vector<SweepRow> rate_sweep(const std::vector<SutConfig>& suts, const RunConfig& base,
                                 const std::vector<double>& rates, int reps,
                                 const ParallelExecutor* exec = nullptr,
                                 obs::TraceSink* trace = nullptr,
                                 obs::TimeSeries* timeseries = nullptr);

/// Runs a sweep over capture buffer sizes at maximum data rate (the
/// Figure 6.4 experiment).  `buffer_kb` values apply to all SUTs; FreeBSD
/// halves them per Section 6.3.1's fairness note (double buffer).
/// `trace` designates the last point, as in rate_sweep.
std::vector<SweepRow> buffer_sweep(std::vector<SutConfig> suts, const RunConfig& base,
                                   const std::vector<std::uint64_t>& buffer_kb, int reps,
                                   const ParallelExecutor* exec = nullptr,
                                   obs::TraceSink* trace = nullptr,
                                   obs::TimeSeries* timeseries = nullptr);

/// Runs a sweep over queue/core counts: point i gives every SUT
/// `counts[i]` cores AND `counts[i]` NIC receive queues (default IRQ
/// affinity spreads queue j to CPU j), measuring how capture rate scales
/// with parallelism at a fixed offered load.  `trace` designates the last
/// point, as in rate_sweep.  SweepRow::rate_mbps holds the count.
std::vector<SweepRow> queue_sweep(std::vector<SutConfig> suts, const RunConfig& base,
                                  const std::vector<int>& counts, int reps,
                                  const ParallelExecutor* exec = nullptr,
                                  obs::TraceSink* trace = nullptr,
                                  obs::TimeSeries* timeseries = nullptr);

}  // namespace capbench::harness
