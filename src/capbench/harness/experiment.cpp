#include "capbench/harness/experiment.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace capbench::harness {

namespace {

/// Strict positive-integer parsing for the CAPBENCH_* knobs: the whole
/// string must be digits (an optional leading '+' is fine), the value
/// must fit and be >= 1.  Anything else — garbage, empty, zero,
/// negative, overflow — is a configuration error worth failing loudly
/// over, not an invitation to silently run the wrong experiment.
std::uint64_t parse_positive_env(const char* name, const char* value, std::uint64_t max_value) {
    const std::string text = value == nullptr ? "" : value;
    const auto reject = [&](const char* why) {
        throw std::runtime_error(std::string(name) + "='" + text + "': " + why +
                                 " (expected a positive integer)");
    };
    if (text.empty()) reject("empty value");
    if (text[0] == '-') reject("negative value");
    // strtoull would skip leading whitespace; be strict instead.
    if (text[0] != '+' && (text[0] < '0' || text[0] > '9')) reject("not a number");
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') reject("not a number");
    if (errno == ERANGE || parsed > max_value) reject("value out of range");
    if (parsed == 0) reject("must be at least 1");
    return parsed;
}

std::uint64_t env_knob(const char* name, std::uint64_t fallback, std::uint64_t max_value) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    return parse_positive_env(name, value, max_value);
}

/// Strict non-negative parsing for list items like CAPBENCH_AFFINITY's CPU
/// indices, where 0 is a perfectly good value (CPU 0) but everything
/// parse_positive_env rejects stays rejected.
std::uint64_t parse_nonnegative_env(const char* name, const std::string& text,
                                    std::uint64_t max_value) {
    const auto reject = [&](const char* why) {
        throw std::runtime_error(std::string(name) + "='" + text + "': " + why +
                                 " (expected a non-negative integer)");
    };
    if (text.empty()) reject("empty value");
    if (text[0] == '-') reject("negative value");
    if (text[0] != '+' && (text[0] < '0' || text[0] > '9')) reject("not a number");
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') reject("not a number");
    if (errno == ERANGE || parsed > max_value) reject("value out of range");
    return parsed;
}

}  // namespace

std::vector<double> default_rate_grid() {
    std::vector<double> rates;
    for (int r = 50; r <= 950; r += 50) rates.push_back(static_cast<double>(r));
    return rates;
}

std::uint64_t packets_per_run() {
    return env_knob("CAPBENCH_PACKETS", 300'000, 1'000'000'000ull);
}

int default_reps() { return static_cast<int>(env_knob("CAPBENCH_REPS", 1, 1'000)); }

int default_jobs() { return static_cast<int>(env_knob("CAPBENCH_JOBS", 1, 512)); }

int default_queues() { return static_cast<int>(env_knob("CAPBENCH_QUEUES", 1, 16)); }

sim::Duration sample_interval_from_env() {
    const char* value = std::getenv("CAPBENCH_SAMPLE_INTERVAL");
    if (value == nullptr) return sim::Duration::zero();
    // Microseconds of simulated time, capped at one hour.
    const std::uint64_t us =
        parse_positive_env("CAPBENCH_SAMPLE_INTERVAL", value, 3'600'000'000ull);
    return sim::microseconds(static_cast<std::int64_t>(us));
}

std::vector<int> affinity_from_env() {
    const char* value = std::getenv("CAPBENCH_AFFINITY");
    if (value == nullptr) return {};
    const std::string text = value;
    if (text.empty())
        throw std::runtime_error(
            "CAPBENCH_AFFINITY='': empty value (expected a comma-separated CPU list)");
    std::vector<int> cpus;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = text.find(',', start);
        const std::string item = text.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        cpus.push_back(static_cast<int>(parse_nonnegative_env("CAPBENCH_AFFINITY", item, 255)));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return cpus;
}

std::vector<SutConfig> standard_suts() {
    return {standard_sut("swan"), standard_sut("snipe"), standard_sut("moorhen"),
            standard_sut("flamingo")};
}

void apply_increased_buffers(std::vector<SutConfig>& suts) {
    for (auto& sut : suts) {
        sut.buffer_bytes = sut.os->family == capture::OsFamily::kFreeBsd
                               ? 10ull * 1024 * 1024    // 10 MB per half
                               : 128ull * 1024 * 1024;  // 128 MB rmem
    }
}

void apply_single_cpu(std::vector<SutConfig>& suts) {
    for (auto& sut : suts) sut.cores = 1;
}

std::string fig_6_5_filter_expression() {
    std::ostringstream out;
    out << "ether[6:4]=0x00000000 and ether[10]=0x00 and not tcp";
    for (int i = 1; i <= 19; ++i)
        out << " and not ip src " << i * 10 << ".11.12." << 12 + i;
    for (int i = 1; i <= 19; ++i) {
        // The thesis listing has a typo at line 25 ("990.99..."); we keep
        // the valid octets.
        out << " and not ip dst " << i * 10 << ".99.12." << 12 + i;
    }
    return out.str();
}

std::vector<SweepRow> rate_sweep(const std::vector<SutConfig>& suts, const RunConfig& base,
                                 const std::vector<double>& rates, int reps,
                                 const ParallelExecutor* exec, obs::TraceSink* trace,
                                 obs::TimeSeries* timeseries) {
    std::vector<SweepRow> rows(rates.size());
    const auto run_point = [&](std::size_t i) {
        RunConfig cfg = base;
        cfg.rate_mbps = rates[i];
        // The designated trace/time-series point is the last of the grid
        // (the deepest overload) so each sink has exactly one writer at any
        // job count.
        cfg.trace = (trace != nullptr && i == rows.size() - 1) ? trace : nullptr;
        cfg.timeseries =
            (timeseries != nullptr && i == rows.size() - 1) ? timeseries : nullptr;
        rows[i] = SweepRow{rates[i], run_repeated(suts, cfg, reps)};
    };
    if (exec != nullptr) {
        exec->parallel_for(rows.size(), run_point);
    } else {
        for (std::size_t i = 0; i < rows.size(); ++i) run_point(i);
    }
    return rows;
}

std::vector<SweepRow> buffer_sweep(std::vector<SutConfig> suts, const RunConfig& base,
                                   const std::vector<std::uint64_t>& buffer_kb, int reps,
                                   const ParallelExecutor* exec, obs::TraceSink* trace,
                                   obs::TimeSeries* timeseries) {
    std::vector<SweepRow> rows(buffer_kb.size());
    const auto run_point = [&](std::size_t i) {
        const std::uint64_t kb = buffer_kb[i];
        std::vector<SutConfig> sized = suts;
        for (auto& sut : sized) {
            // "The buffer size was reduced by a factor of two for FreeBSD"
            // so the effective (double-buffered) space matches Linux.
            const bool freebsd = sut.os->family == capture::OsFamily::kFreeBsd;
            sut.buffer_bytes = kb * 1024 / (freebsd ? 2 : 1);
        }
        RunConfig cfg = base;
        cfg.rate_mbps = 0.0;  // highest possible rate, no inter-packet gap
        cfg.trace = (trace != nullptr && i == rows.size() - 1) ? trace : nullptr;
        cfg.timeseries =
            (timeseries != nullptr && i == rows.size() - 1) ? timeseries : nullptr;
        rows[i] = SweepRow{static_cast<double>(kb), run_repeated(sized, cfg, reps)};
    };
    if (exec != nullptr) {
        exec->parallel_for(rows.size(), run_point);
    } else {
        for (std::size_t i = 0; i < rows.size(); ++i) run_point(i);
    }
    return rows;
}

std::vector<SweepRow> queue_sweep(std::vector<SutConfig> suts, const RunConfig& base,
                                  const std::vector<int>& counts, int reps,
                                  const ParallelExecutor* exec, obs::TraceSink* trace,
                                  obs::TimeSeries* timeseries) {
    std::vector<SweepRow> rows(counts.size());
    const auto run_point = [&](std::size_t i) {
        const int count = counts[i];
        std::vector<SutConfig> scaled = suts;
        for (auto& sut : scaled) {
            // Cores and queues move together: queue j's IRQ line lands on
            // CPU j (the default affinity), so each point is a balanced
            // N-queue/N-core configuration.
            sut.cores = count;
            sut.nic.queues = count;
        }
        RunConfig cfg = base;
        cfg.trace = (trace != nullptr && i == rows.size() - 1) ? trace : nullptr;
        cfg.timeseries =
            (timeseries != nullptr && i == rows.size() - 1) ? timeseries : nullptr;
        rows[i] = SweepRow{static_cast<double>(count), run_repeated(scaled, cfg, reps)};
    };
    if (exec != nullptr) {
        exec->parallel_for(rows.size(), run_point);
    } else {
        for (std::size_t i = 0; i < rows.size(); ++i) run_point(i);
    }
    return rows;
}

}  // namespace capbench::harness
