#include "capbench/harness/experiment.hpp"

#include <cstdlib>
#include <sstream>

namespace capbench::harness {

std::vector<double> default_rate_grid() {
    std::vector<double> rates;
    for (int r = 50; r <= 950; r += 50) rates.push_back(static_cast<double>(r));
    return rates;
}

std::uint64_t packets_per_run() {
    if (const char* env = std::getenv("CAPBENCH_PACKETS")) {
        const auto v = std::strtoull(env, nullptr, 10);
        if (v > 0) return v;
    }
    return 300'000;
}

int default_reps() {
    if (const char* env = std::getenv("CAPBENCH_REPS")) {
        const auto v = std::strtol(env, nullptr, 10);
        if (v > 0) return static_cast<int>(v);
    }
    return 1;
}

std::vector<SutConfig> standard_suts() {
    return {standard_sut("swan"), standard_sut("snipe"), standard_sut("moorhen"),
            standard_sut("flamingo")};
}

void apply_increased_buffers(std::vector<SutConfig>& suts) {
    for (auto& sut : suts) {
        sut.buffer_bytes = sut.os->family == capture::OsFamily::kFreeBsd
                               ? 10ull * 1024 * 1024    // 10 MB per half
                               : 128ull * 1024 * 1024;  // 128 MB rmem
    }
}

void apply_single_cpu(std::vector<SutConfig>& suts) {
    for (auto& sut : suts) sut.cores = 1;
}

std::string fig_6_5_filter_expression() {
    std::ostringstream out;
    out << "ether[6:4]=0x00000000 and ether[10]=0x00 and not tcp";
    for (int i = 1; i <= 19; ++i)
        out << " and not ip src " << i * 10 << ".11.12." << 12 + i;
    for (int i = 1; i <= 19; ++i) {
        // The thesis listing has a typo at line 25 ("990.99..."); we keep
        // the valid octets.
        out << " and not ip dst " << i * 10 << ".99.12." << 12 + i;
    }
    return out.str();
}

std::vector<SweepRow> rate_sweep(const std::vector<SutConfig>& suts, const RunConfig& base,
                                 const std::vector<double>& rates, int reps) {
    std::vector<SweepRow> rows;
    for (const double rate : rates) {
        RunConfig cfg = base;
        cfg.rate_mbps = rate;
        rows.push_back(SweepRow{rate, run_repeated(suts, cfg, reps)});
    }
    return rows;
}

std::vector<SweepRow> buffer_sweep(std::vector<SutConfig> suts, const RunConfig& base,
                                   const std::vector<std::uint64_t>& buffer_kb, int reps) {
    std::vector<SweepRow> rows;
    for (const std::uint64_t kb : buffer_kb) {
        for (auto& sut : suts) {
            // "The buffer size was reduced by a factor of two for FreeBSD"
            // so the effective (double-buffered) space matches Linux.
            const bool freebsd = sut.os->family == capture::OsFamily::kFreeBsd;
            sut.buffer_bytes = kb * 1024 / (freebsd ? 2 : 1);
        }
        RunConfig cfg = base;
        cfg.rate_mbps = 0.0;  // highest possible rate, no inter-packet gap
        rows.push_back(SweepRow{static_cast<double>(kb), run_repeated(suts, cfg, reps)});
    }
    return rows;
}

}  // namespace capbench::harness
