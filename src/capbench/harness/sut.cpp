#include "capbench/harness/sut.hpp"

#include <algorithm>
#include <stdexcept>

#include "capbench/harness/experiment.hpp"
#include "capbench/obs/observer.hpp"

namespace capbench::harness {

SutConfig standard_sut(const std::string& name) {
    SutConfig cfg;
    cfg.name = name;
    // Env-configurable multi-queue receive: with CAPBENCH_QUEUES /
    // CAPBENCH_AFFINITY unset these are 1 and empty — the classic
    // single-ring NIC, byte-identical to the committed figure goldens.
    cfg.nic.queues = default_queues();
    cfg.nic.irq_affinity = affinity_from_env();
    if (name == "swan") {
        cfg.arch = &hostsim::ArchSpec::amd_opteron();
        cfg.os = &capture::OsSpec::linux_2_6_11();
    } else if (name == "moorhen") {
        cfg.arch = &hostsim::ArchSpec::amd_opteron();
        cfg.os = &capture::OsSpec::freebsd_5_4();
    } else if (name == "snipe") {
        cfg.arch = &hostsim::ArchSpec::intel_xeon();
        cfg.os = &capture::OsSpec::linux_2_6_11();
    } else if (name == "flamingo") {
        cfg.arch = &hostsim::ArchSpec::intel_xeon();
        cfg.os = &capture::OsSpec::freebsd_5_4();
    } else {
        throw std::invalid_argument("standard_sut: unknown sniffer " + name);
    }
    return cfg;
}

Sut::Sut(sim::Simulator& sim, SutConfig config, obs::Observer* observer)
    : config_(std::move(config)) {
    const auto& os = *config_.os;
    machine_ = std::make_unique<hostsim::Machine>(
        sim,
        hostsim::MachineSpec{*config_.arch, config_.cores, config_.hyperthreading},
        os.sched);
    driver_ = std::make_unique<capture::Driver>(
        *machine_, os,
        capture::FanoutGroup{config_.fanout, std::max(1, config_.nic.queues)});
    nic_ = std::make_unique<capture::Nic>(*machine_, os, config_.nic, *driver_);

    const std::uint64_t buffer =
        config_.buffer_bytes > 0 ? config_.buffer_bytes : os.default_buffer_bytes;
    if (config_.app_count < 1) throw std::invalid_argument("Sut: app_count must be >= 1");

    obs::SutObserver* so = nullptr;
    if (observer != nullptr) {
        so = &observer->add_sut(config_.name,
                                static_cast<std::size_t>(config_.app_count));
        machine_->set_trace(observer->trace(), so->pid());
        machine_->register_metrics(observer->registry(), config_.name);
        nic_->set_observer(so);
        nic_->register_metrics(observer->registry(), "capture." + config_.name);
    }

    const bool needs_disk = config_.app_load.disk_bytes_per_packet > 0;
    if (needs_disk) disk_ = std::make_unique<load::DiskModel>(*machine_, load::disk_spec_for(config_.name));
    if (config_.app_load.pipe_to_gzip) {
        pipe_ = std::make_unique<load::FifoPipe>(*machine_, 64 * 1024);
        gzip_ = std::make_shared<load::GzipThread>(*pipe_, config_.app_load.pipe_gzip_level);
    }

    for (int i = 0; i < config_.app_count; ++i) {
        std::unique_ptr<capture::StackEndpoint> endpoint;
        capture::PacketTap* tap = nullptr;
        bool is_mmap = false;
        if (config_.stack == StackKind::kMmap || config_.stack == StackKind::kZeroCopyBpf) {
            if (config_.stack == StackKind::kMmap && os.family != capture::OsFamily::kLinux)
                throw std::invalid_argument(
                    "Sut: the mmap patch exists only for Linux (use kZeroCopyBpf for the "
                    "FreeBSD extension)");
            if (config_.stack == StackKind::kZeroCopyBpf &&
                os.family != capture::OsFamily::kFreeBsd)
                throw std::invalid_argument("Sut: kZeroCopyBpf is the FreeBSD extension");
            auto ring = std::make_unique<capture::MmapRing>(*machine_, os, buffer,
                                                            config_.snaplen);
            tap = ring.get();
            endpoint = std::move(ring);
            is_mmap = true;
        } else if (os.family == capture::OsFamily::kLinux) {
            if (!skb_pool_) skb_pool_ = std::make_unique<capture::SkbPool>();
            auto sock = std::make_unique<capture::LinuxPacketSocket>(
                *machine_, os, buffer, config_.snaplen, skb_pool_.get());
            tap = sock.get();
            endpoint = std::move(sock);
        } else {
            auto dev = std::make_unique<capture::BsdBpfDev>(*machine_, os, buffer,
                                                            config_.snaplen);
            dev->enable_read_timeout(sim::milliseconds(20));
            tap = dev.get();
            endpoint = std::move(dev);
        }
        if (so != nullptr) endpoint->set_observer(&so->app(static_cast<std::size_t>(i)));
        if (needs_disk && config_.disk_writer.enabled) {
            auto writer = std::make_shared<load::DiskWriterThread>(
                config_.name + "-diskwr" + std::to_string(i), os, *disk_,
                config_.disk_writer);
            if (so != nullptr) {
                auto& ao = so->app(static_cast<std::size_t>(i));
                ao.disk_writer_attached();
                writer->set_observer(&ao);
            }
            disk_writers_.push_back(std::move(writer));
        }
        driver_->attach(*tap);
        sessions_.push_back(std::make_unique<pcap::Session>(
            *endpoint, config_.name + ":if0", config_.snaplen, is_mmap));
        if (!config_.filter_expression.empty())
            sessions_.back()->set_filter(config_.filter_expression);
        endpoints_.push_back(std::move(endpoint));
    }
}

Sut::~Sut() = default;

void Sut::start() {
    // Writer threads first, so they are parked on their empty rings before
    // the first capture app can offer a record.
    for (auto& writer : disk_writers_) machine_->spawn(writer);
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
        auto app = std::make_shared<CaptureApp>(
            config_.name + "-app" + std::to_string(i), *endpoints_[i], *sessions_[i],
            *config_.os, config_.app_load, config_.snaplen, disk_.get(), pipe_.get(),
            i < disk_writers_.size() ? disk_writers_[i].get() : nullptr);
        apps_.push_back(app);
        machine_->spawn(app);
    }
    if (gzip_) machine_->spawn(gzip_);
}

std::uint64_t Sut::delivered(std::size_t app_index) const {
    return endpoints_[app_index]->stats().delivered;
}

// ---- CaptureApp ---------------------------------------------------------------

namespace {
constexpr std::size_t kFetchBatch = 64;
constexpr std::size_t kProcessChunk = 32;
}  // namespace

CaptureApp::CaptureApp(std::string name, capture::StackEndpoint& endpoint,
                       pcap::Session& session, const capture::OsSpec& os,
                       const load::AppLoad& app_load, std::uint32_t snaplen,
                       load::DiskModel* disk, load::FifoPipe* pipe,
                       load::DiskWriterThread* disk_writer)
    : hostsim::Thread(std::move(name)),
      endpoint_(&endpoint),
      session_(&session),
      os_(&os),
      app_load_(app_load),
      snaplen_(snaplen),
      disk_(disk),
      pipe_(pipe),
      disk_writer_(disk_writer) {
    if (disk_writer_ != nullptr) pending_records_.reserve(kProcessChunk);
}

void CaptureApp::main() {
    endpoint_->set_reader(this);
    fetch_loop();
}

void CaptureApp::fetch_loop() {
    auto batch = endpoint_->fetch(kFetchBatch);
    if (!batch) {
        block([this] { fetch_loop(); });
        return;
    }
    auto work = batch->fetch_work;
    exec(work, hostsim::CpuState::kSystem,
         [this, b = std::move(*batch)]() mutable { process(std::move(b), 0); });
}

void CaptureApp::process(capture::StackEndpoint::Batch batch, std::size_t index) {
    const std::size_t end = std::min(index + kProcessChunk, batch.packets.size());

    hostsim::Work work;
    std::uint64_t disk_bytes = 0;
    std::uint64_t pipe_bytes = 0;
    for (std::size_t i = index; i < end; ++i) {
        const auto& pkt = batch.packets[i];
        const std::uint32_t caplen = std::min(snaplen_, pkt->frame_len());
        work += load::per_packet_app_base();
        work += load::per_packet_load_work(app_load_, caplen);
        if (app_load_.disk_bytes_per_packet > 0) {
            const std::uint32_t db = std::min(caplen, app_load_.disk_bytes_per_packet);
            if (disk_writer_ != nullptr) {
                // Pipeline mode: stage an arena-backed record (stamped at
                // handler time, like the inline write) for the bring-ring
                // hand-off; the writer thread pays the disk cost.
                pending_records_.push_back(load::RecordRef{
                    pkt, caplen, db, machine().sim().now()});
            } else {
                disk_bytes += db;
            }
        }
        if (app_load_.pipe_to_gzip) pipe_bytes += caplen;
        if (session_->handler()) session_->handler()(pkt, caplen);
        ++processed_;
        bytes_processed_ += caplen;
    }
    if (disk_bytes > 0 && disk_ != nullptr) {
        work += os_->write_syscall;
        work += disk_->write_work(disk_bytes);
    }
    if (pipe_bytes > 0 && pipe_ != nullptr) work += os_->write_syscall;

    exec(work, hostsim::CpuState::kUser,
         [this, b = std::move(batch), end, disk_bytes, pipe_bytes]() mutable {
             if (!pending_records_.empty())
                 push_records(std::move(b), end, 0, pipe_bytes);
             else
                 after_loads(std::move(b), end, disk_bytes, pipe_bytes);
         });
}

void CaptureApp::push_records(capture::StackEndpoint::Batch batch, std::size_t end,
                              std::size_t next, std::uint64_t pipe_bytes) {
    for (; next < pending_records_.size(); ++next) {
        if (!disk_writer_->offer(pending_records_[next], *this)) {
            // Ring full under the block policy: the writer wakes us when a
            // slot frees; retry the same record.
            block([this, b = std::move(batch), end, next, pipe_bytes]() mutable {
                push_records(std::move(b), end, next, pipe_bytes);
            });
            return;
        }
    }
    pending_records_.clear();
    after_loads(std::move(batch), end, 0, pipe_bytes);
}

void CaptureApp::after_loads(capture::StackEndpoint::Batch batch, std::size_t end,
                             std::uint64_t disk_bytes, std::uint64_t pipe_bytes) {
    // Disk / pipe back-pressure: write() returning false means the bytes
    // will be accepted later and we are woken then — retry with the
    // corresponding amount cleared.
    if (disk_bytes > 0 && disk_ != nullptr && !disk_->write(disk_bytes, *this)) {
        block([this, b = std::move(batch), end, pipe_bytes]() mutable {
            after_loads(std::move(b), end, 0, pipe_bytes);
        });
        return;
    }
    if (pipe_bytes > 0 && pipe_ != nullptr && !pipe_->write(pipe_bytes, *this)) {
        block([this, b = std::move(batch), end]() mutable {
            after_loads(std::move(b), end, 0, 0);
        });
        return;
    }
    if (end < batch.packets.size()) {
        // Timeslice emulation: long batches (a full BPF HOLD buffer can be
        // tens of thousands of packets) must not monopolize a CPU while
        // other applications wait.
        if (++chunks_since_yield_ >= 8 && machine().ready_pending()) {
            chunks_since_yield_ = 0;
            yield([this, b = std::move(batch), end]() mutable {
                process(std::move(b), end);
            });
            return;
        }
        process(std::move(batch), end);
        return;
    }
    // Batch fully consumed: return its vector to the stack so the next
    // fetch() reuses the capacity instead of reallocating.
    endpoint_->recycle(std::move(batch.packets));
    if (++batches_since_yield_ >= os_->sched.yield_every_batches) {
        batches_since_yield_ = 0;
        yield([this] { fetch_loop(); });
    } else {
        fetch_loop();
    }
}

}  // namespace capbench::harness
