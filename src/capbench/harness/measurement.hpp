// The measurement cycle of Section 3.4 / Figure 3.2:
//   1. start capturing + profiling applications on all sniffers,
//   2. read the switch packet counters,
//   3. run the packet generation,
//   4. read the counters again,
//   5. stop the applications and collect statistics.
// Repeated several times per data rate to avoid outliers; the capture rate
// is the percentage of generated packets each application received
// (Section 6.2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "capbench/harness/testbed.hpp"
#include "capbench/obs/metrics.hpp"
#include "capbench/sim/stats.hpp"

namespace capbench::obs {
class TimeSeries;
class TraceSink;
}

namespace capbench::harness {

struct RunConfig {
    double rate_mbps = 0.0;        // 0 = maximum speed (no inter-packet gap)
    std::uint64_t packets = 100'000;
    std::uint64_t seed = 1;
    bool full_bytes = false;       // real frame contents (filter experiments)
    bool use_mwn_dist = true;      // thesis workload; false = fixed size
    std::uint32_t fixed_size = 1500;
    /// Link speed in Gbit/s (10 for the Section 7.2 10-GbE extension).
    double link_gbps = 1.0;
    /// Distinct UDP flows the generator cycles through (GenConfig::
    /// flow_count).  1 = the classic single-flow traffic; multi-queue RSS
    /// scenarios need many flows to spread across receive queues.
    std::uint32_t flow_count = 1;
    /// Round-robin load distribution instead of the passive splitter
    /// (Section 7.2's distributed-analysis extension).
    bool distribute_round_robin = false;
    /// Event-queue priority backend for the run's simulator (heap or
    /// wheel); results are bit-identical under either, only speed differs.
    sim::EventQueueBackend event_queue = sim::event_queue_backend_from_env();
    sim::Duration warmup = sim::milliseconds(50);
    /// Time between the last generated packet and stopping the capture
    /// applications (step 5 of Figure 3.2 follows generation immediately;
    /// this models the ssh/stop.sh delay).  Packets still queued in capture
    /// buffers when the applications stop do not count as captured.
    sim::Duration drain = sim::milliseconds(100);
    /// Collect packet-lifecycle metrics into RunResult::metrics.  Off by
    /// default: every hook stays disabled and results/goldens are
    /// byte-identical to an unobserved run.
    bool collect_metrics = false;
    /// Timeline sink for this run (Chrome trace-event JSON); non-null
    /// implies metrics collection.  The sink must outlive the run.
    obs::TraceSink* trace = nullptr;
    /// cpusage sampling interval while metrics are on.  The thesis tool
    /// samples every 500 ms; the default here is shorter so the short
    /// simulated windows of CI-scale runs still produce samples.
    sim::Duration cpusage_interval = sim::milliseconds(10);
    /// Interval time-series telemetry (obs/timeseries.hpp): with a
    /// non-null sink AND a positive sample_interval, an IntervalSampler
    /// snapshots gauges and counter deltas every tick and at the freeze
    /// instant.  A sink without a positive interval throws
    /// std::invalid_argument; an interval without a sink is inert, so the
    /// default (off) keeps every result byte-identical.  Like `trace`,
    /// a non-null sink implies metrics collection and must outlive the
    /// run; run_repeated samples rep 0 only.
    sim::Duration sample_interval = sim::Duration::zero();
    obs::TimeSeries* timeseries = nullptr;
    /// Square-wave generator modulation (the ext_overload_pulse
    /// workload), forwarded to GenConfig: every `burst_period` the target
    /// rate is multiplied by `burst_multiplier` for `burst_duration`.
    /// Period zero (default) = classic steady pacing.
    sim::Duration burst_period = sim::Duration::zero();
    sim::Duration burst_duration = sim::Duration::zero();
    double burst_multiplier = 10.0;
};

struct SutRunResult {
    std::string name;
    std::vector<double> per_app_capture_pct;  // delivered / generated * 100
    double capture_worst_pct = 0.0;
    double capture_avg_pct = 0.0;
    double capture_best_pct = 0.0;
    double cpu_pct = 0.0;  // machine utilization during the generation window
    std::uint64_t nic_ring_drops = 0;
    std::uint64_t backlog_drops = 0;
    std::uint64_t buffer_drops = 0;  // summed over apps
};

struct RunResult {
    std::uint64_t generated = 0;     // from the switch counters
    double offered_mbps = 0.0;       // achieved generator rate
    /// Simulator events executed for this run — a perf metric consumed by
    /// the capbench_perf harness, deliberately NOT part of the scenario
    /// JSON schema (it would break byte-stable figures output).
    std::uint64_t events_executed = 0;
    /// "heap" or "wheel": which event-queue backend the run used.  Like
    /// events_executed, metadata only — not part of the scenario JSON.
    std::string event_queue_backend;
    std::vector<SutRunResult> suts;
    /// Lifecycle metrics; `metrics.enabled` only when the run observed.
    /// Across run_repeated reps these are raw sums (never averaged), so the
    /// per-app drop identity stays exact.
    obs::RunMetrics metrics;
};

/// One complete measurement (steps 1-5) on a freshly built testbed.
RunResult run_once(const std::vector<SutConfig>& suts, const RunConfig& config);

/// Repeats run_once `reps` times with varied seeds and averages.  This is
/// the "repeat measurement n times" loop of Figure 3.2 (the thesis uses 7).
RunResult run_repeated(const std::vector<SutConfig>& suts, const RunConfig& config, int reps);

}  // namespace capbench::harness
