// Result table formatting for the figure benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "capbench/harness/experiment.hpp"

namespace capbench::harness {

/// Fixed-width text table.
class Table {
public:
    explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    void print(std::ostream& out) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// "fig_6_3  (20/33) increased-buffers: ..." style banner.
void print_figure_banner(std::ostream& out, const std::string& figure_id,
                         const std::string& caption);

/// Prints a rate (or buffer) sweep as the thesis plots it: one row per
/// x value, per SUT the capture rate and CPU usage.  With `multi_app`,
/// worst/avg/best capture-rate columns per SUT (Figures 6.7-6.9).
void print_sweep(std::ostream& out, const std::string& x_label,
                 const std::vector<SweepRow>& rows, bool multi_app = false);

/// The Figure 2.4 inventory table of the four sniffers.
void print_sut_inventory(std::ostream& out, const std::vector<SutConfig>& suts);

std::string format_pct(double v);

/// Writes a sweep as whitespace-separated gnuplot data: column 1 is the x
/// value, then per SUT capture% (worst/avg/best with `multi_app`) and
/// cpu%.  A `# ` header line names the columns.
void write_gnuplot_data(std::ostream& out, const std::vector<SweepRow>& rows,
                        bool multi_app = false);

/// Writes a ready-to-run gnuplot script plotting `data_file` in the
/// thesis's linespoints style (capture rate left axis, CPU right axis).
/// `x_label` names the sweep axis (data rate or buffer size); with
/// `multi_app` the columns follow write_gnuplot_data's worst/avg/best
/// layout and the avg series is plotted.
void write_gnuplot_script(std::ostream& out, const std::string& data_file,
                          const std::string& title, const std::vector<SweepRow>& rows,
                          const std::string& x_label = "Datarate [Mbit/s]",
                          bool multi_app = false);

}  // namespace capbench::harness
