// System under test: one sniffer machine with its OS, capture stack(s) and
// capturing application(s), assembled per the thesis's configuration matrix
// (Figure 2.4 + the influencing variables of Section 6.1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "capbench/capture/bsd_bpf.hpp"
#include "capbench/capture/driver.hpp"
#include "capbench/capture/linux_socket.hpp"
#include "capbench/capture/mmap_ring.hpp"
#include "capbench/capture/nic.hpp"
#include "capbench/load/disk.hpp"
#include "capbench/load/disk_writer.hpp"
#include "capbench/load/loads.hpp"
#include "capbench/pcap/session.hpp"
#include "capbench/profiling/cpusage.hpp"

namespace capbench::obs {
class Observer;
}

namespace capbench::harness {

enum class StackKind {
    kNative,       // FreeBSD BPF or Linux PF_PACKET, per the OS
    kMmap,         // Linux with the mmap libpcap patch (Section 6.3.6)
    kZeroCopyBpf,  // EXTENSION: "a memory-mapped libpcap for FreeBSD"
                   // (future work, Section 7.2) -- a shared ring replacing
                   // the double buffer and the whole-buffer copyout
};

struct SutConfig {
    std::string name = "custom";
    const hostsim::ArchSpec* arch = &hostsim::ArchSpec::amd_opteron();
    const capture::OsSpec* os = &capture::OsSpec::freebsd_5_4();
    int cores = 2;               // 1 = single processor mode (no SMP)
    bool hyperthreading = false;
    StackKind stack = StackKind::kNative;
    /// Capture buffer size: BPF half-buffer (FreeBSD) or socket rmem
    /// (Linux); 0 = the OS default of Figure 6.2.
    std::uint64_t buffer_bytes = 0;
    int app_count = 1;
    std::string filter_expression;  // empty = no filter
    /// Receive NIC behaviour; NicModel::interrupt_moderation=false gives
    /// one interrupt per packet (the receive-livelock ablation).  Multi-
    /// queue RSS is configured here too (NicModel::queues et al.).
    capture::NicModel nic;
    /// How the driver spreads packets over the app taps: kMirror (every
    /// app sees everything, the classic model), kQueue (app i pinned to
    /// RSS queue i % queues) or kCluster (PF_RING-style flow fanout).
    capture::FanoutMode fanout = capture::FanoutMode::kMirror;
    load::AppLoad app_load;
    /// Capture-to-disk writer pipeline (exact-capture style): when enabled
    /// and `app_load.disk_bytes_per_packet > 0`, each app hands arena-backed
    /// records through a bring ring to a per-app writer thread instead of
    /// charging the disk write inline.  Disabled = the classic inline model,
    /// byte-identical to the committed goldens.
    load::DiskWriterConfig disk_writer;
    std::uint32_t snaplen = 1515;  // the thesis captures whole packets
};

/// The four sniffers of Figure 2.4.  Name must be one of swan, moorhen,
/// snipe, flamingo.
SutConfig standard_sut(const std::string& name);

class CaptureApp;

class Sut {
public:
    /// `observer` (may be null) registers this SUT for lifecycle tracing
    /// and metrics; hooks stay branch-guarded when absent.
    Sut(sim::Simulator& sim, SutConfig config, obs::Observer* observer = nullptr);
    ~Sut();

    Sut(const Sut&) = delete;
    Sut& operator=(const Sut&) = delete;

    /// The NIC, to attach to the optical splitter.
    [[nodiscard]] net::FrameSink& nic_sink() { return *nic_; }

    /// Spawns the capturing application threads (start.sh, Section 3.4).
    void start();

    [[nodiscard]] const SutConfig& config() const { return config_; }
    [[nodiscard]] hostsim::Machine& machine() { return *machine_; }
    [[nodiscard]] const capture::Nic& nic() const { return *nic_; }

    /// Per-application sessions (filter installation, stats).
    [[nodiscard]] const std::vector<std::unique_ptr<pcap::Session>>& sessions() const {
        return sessions_;
    }

    /// Packets delivered to application i so far.
    [[nodiscard]] std::uint64_t delivered(std::size_t app_index) const;

    /// Kernel-side capture counters of application i's endpoint.
    [[nodiscard]] const capture::CaptureStats& capture_stats(std::size_t app_index) const {
        return endpoints_[app_index]->stats();
    }

    /// Application i's capture endpoint (buffer-occupancy gauges for the
    /// interval time-series sampler).
    [[nodiscard]] const capture::StackEndpoint& endpoint(std::size_t app_index) const {
        return *endpoints_[app_index];
    }

    /// Per-RSS-queue slices of application i's capture counters.
    [[nodiscard]] const std::vector<capture::CaptureStats>& queue_capture_stats(
        std::size_t app_index) const {
        return endpoints_[app_index]->queue_stats();
    }

    [[nodiscard]] load::DiskModel* disk() { return disk_.get(); }

    /// App i's disk-writer thread; null when the pipeline is disabled.
    [[nodiscard]] load::DiskWriterThread* disk_writer(std::size_t app_index) {
        return app_index < disk_writers_.size() ? disk_writers_[app_index].get()
                                                : nullptr;
    }

    /// Records spilled by app i's writer ring so far (0 without a pipeline).
    [[nodiscard]] std::uint64_t disk_spilled(std::size_t app_index) const {
        return app_index < disk_writers_.size() ? disk_writers_[app_index]->spilled()
                                                : 0;
    }

private:
    SutConfig config_;
    std::unique_ptr<hostsim::Machine> machine_;
    std::unique_ptr<capture::Driver> driver_;
    std::unique_ptr<capture::Nic> nic_;
    // One endpoint per application; concrete type depends on OS/stack.
    std::vector<std::unique_ptr<capture::StackEndpoint>> endpoints_;
    std::vector<std::unique_ptr<pcap::Session>> sessions_;
    std::vector<std::shared_ptr<CaptureApp>> apps_;
    std::vector<std::shared_ptr<load::DiskWriterThread>> disk_writers_;
    std::unique_ptr<load::DiskModel> disk_;
    std::unique_ptr<load::FifoPipe> pipe_;
    std::shared_ptr<load::GzipThread> gzip_;
    std::unique_ptr<capture::SkbPool> skb_pool_;
};

/// The capturing application (createDist in capture mode, Appendix A.1):
/// fetches packets from its stack endpoint, charges per-packet analysis
/// load, optionally writes headers to disk or pipes packets to gzip, and
/// counts everything.
class CaptureApp final : public hostsim::Thread {
public:
    CaptureApp(std::string name, capture::StackEndpoint& endpoint, pcap::Session& session,
               const capture::OsSpec& os, const load::AppLoad& app_load, std::uint32_t snaplen,
               load::DiskModel* disk, load::FifoPipe* pipe,
               load::DiskWriterThread* disk_writer = nullptr);

    void main() override;

    [[nodiscard]] std::uint64_t processed() const { return processed_; }
    [[nodiscard]] std::uint64_t bytes_processed() const { return bytes_processed_; }

private:
    void fetch_loop();
    void process(capture::StackEndpoint::Batch batch, std::size_t index);
    void push_records(capture::StackEndpoint::Batch batch, std::size_t end,
                      std::size_t next, std::uint64_t pipe_bytes);
    void after_loads(capture::StackEndpoint::Batch batch, std::size_t end,
                     std::uint64_t disk_bytes, std::uint64_t pipe_bytes);

    capture::StackEndpoint* endpoint_;
    pcap::Session* session_;
    const capture::OsSpec* os_;
    load::AppLoad app_load_;
    std::uint32_t snaplen_;
    load::DiskModel* disk_;
    load::FifoPipe* pipe_;
    load::DiskWriterThread* disk_writer_;
    /// Records staged during process() (stamped at handler time) and
    /// offered to the writer ring in push_records(); pooled capacity.
    std::vector<load::RecordRef> pending_records_;
    std::uint64_t processed_ = 0;
    std::uint64_t bytes_processed_ = 0;
    int batches_since_yield_ = 0;
    int chunks_since_yield_ = 0;
};

}  // namespace capbench::harness
