#include "capbench/harness/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace capbench::harness {

ParallelExecutor::ParallelExecutor(int jobs) : jobs_(std::max(1, jobs)) {}

void ParallelExecutor::parallel_for(std::size_t count,
                                    const std::function<void(std::size_t)>& body) const {
    if (count == 0) return;
    const std::size_t workers = std::min(static_cast<std::size_t>(jobs_), count);
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i) body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            try {
                body(i);
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock{error_mutex};
                    if (!first_error) first_error = std::current_exception();
                }
                // Stop handing out new indices; in-flight points finish.
                next.store(count, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) threads.emplace_back(worker);
    for (auto& thread : threads) thread.join();
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace capbench::harness
