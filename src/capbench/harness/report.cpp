#include "capbench/harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace capbench::harness {

std::string format_pct(double v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%5.1f", v);
    return buf;
}

void Table::print(std::ostream& out) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    const auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& cell = c < cells.size() ? cells[c] : std::string{};
            out << cell;
            for (std::size_t pad = cell.size(); pad < widths[c] + 2; ++pad) out << ' ';
        }
        out << '\n';
    };
    print_row(headers_);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
}

void print_figure_banner(std::ostream& out, const std::string& figure_id,
                         const std::string& caption) {
    out << "\n=== " << figure_id << " ===\n" << caption << "\n\n";
}

void print_sweep(std::ostream& out, const std::string& x_label,
                 const std::vector<SweepRow>& rows, bool multi_app) {
    if (rows.empty()) return;
    std::vector<std::string> headers{x_label};
    for (const auto& sut : rows.front().result.suts) {
        if (multi_app) {
            headers.push_back(sut.name + " worst%");
            headers.push_back(sut.name + " avg%");
            headers.push_back(sut.name + " best%");
        } else {
            headers.push_back(sut.name + " cap%");
        }
        headers.push_back(sut.name + " cpu%");
    }
    Table table{std::move(headers)};
    for (const auto& row : rows) {
        std::vector<std::string> cells;
        char x[32];
        std::snprintf(x, sizeof x, "%.0f", row.rate_mbps);
        cells.emplace_back(x);
        for (const auto& sut : row.result.suts) {
            if (multi_app) {
                cells.push_back(format_pct(sut.capture_worst_pct));
                cells.push_back(format_pct(sut.capture_avg_pct));
                cells.push_back(format_pct(sut.capture_best_pct));
            } else {
                cells.push_back(format_pct(sut.capture_avg_pct));
            }
            cells.push_back(format_pct(sut.cpu_pct));
        }
        table.add_row(std::move(cells));
    }
    table.print(out);
}

void write_gnuplot_data(std::ostream& out, const std::vector<SweepRow>& rows,
                        bool multi_app) {
    if (rows.empty()) return;
    out << "# x";
    for (const auto& sut : rows.front().result.suts) {
        if (multi_app)
            out << ' ' << sut.name << "_worst " << sut.name << "_avg " << sut.name << "_best";
        else
            out << ' ' << sut.name << "_cap";
        out << ' ' << sut.name << "_cpu";
    }
    out << '\n';
    for (const auto& row : rows) {
        out << row.rate_mbps;
        for (const auto& sut : row.result.suts) {
            if (multi_app)
                out << ' ' << sut.capture_worst_pct << ' ' << sut.capture_avg_pct << ' '
                    << sut.capture_best_pct;
            else
                out << ' ' << sut.capture_avg_pct;
            out << ' ' << sut.cpu_pct;
        }
        out << '\n';
    }
}

void write_gnuplot_script(std::ostream& out, const std::string& data_file,
                          const std::string& title, const std::vector<SweepRow>& rows,
                          const std::string& x_label, bool multi_app) {
    if (rows.empty()) return;
    out << "set title '" << title << "'\n"
        << "set xlabel '" << x_label << "'\n"
        << "set ylabel 'Capturing Rate [%]'\n"
        << "set y2label 'CPU usage [%]'\n"
        << "set y2tics\n set yrange [0:105]\n set y2range [0:105]\n set key outside\n";
    out << "plot ";
    const auto& suts = rows.front().result.suts;
    // Column layout matches write_gnuplot_data: x, then per SUT either
    // cap,cpu or worst,avg,best,cpu.
    const std::size_t per_sut = multi_app ? 4 : 2;
    for (std::size_t i = 0; i < suts.size(); ++i) {
        const std::size_t first_col = 2 + i * per_sut;
        const std::size_t cap_col = multi_app ? first_col + 1 : first_col;  // avg series
        const std::size_t cpu_col = first_col + per_sut - 1;
        if (i > 0) out << ", \\\n     ";
        out << "'" << data_file << "' using 1:" << cap_col << " with linespoints title '"
            << suts[i].name << (multi_app ? " avg%'" : " cap%'");
        out << ", '" << data_file << "' using 1:" << cpu_col
            << " axes x1y2 with lines dashtype 2 title '" << suts[i].name << " cpu%'";
    }
    out << '\n';
}

void print_sut_inventory(std::ostream& out, const std::vector<SutConfig>& suts) {
    Table table{{"Name", "Architecture", "OS", "CPUs", "HT", "Stack", "Buffer"}};
    for (const auto& sut : suts) {
        std::string buffer = sut.buffer_bytes == 0
                                 ? "default"
                                 : std::to_string(sut.buffer_bytes / 1024) + " kB";
        table.add_row({sut.name, sut.arch->name, sut.os->name, std::to_string(sut.cores),
                       sut.hyperthreading ? "on" : "off",
                       sut.stack == StackKind::kMmap ? "mmap" : "native", std::move(buffer)});
    }
    table.print(out);
}

}  // namespace capbench::harness
