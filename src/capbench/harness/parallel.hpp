// A small fork-join worker pool for sweep execution.
//
// Why this is sound for the measurement harness: every sweep point runs
// `run_once` on a *freshly built* Testbed — its own Simulator, RNG, links,
// machines and capture stacks — so points share no mutable state and the
// result of point i is a pure function of (suts, config, seed).  Running
// points concurrently therefore yields bit-identical results to the
// serial loop; tests/parallel_sweep_test.cpp enforces this and CI runs
// the executor under TSan.
#pragma once

#include <cstddef>
#include <functional>

namespace capbench::harness {

class ParallelExecutor {
public:
    /// `jobs` < 1 is clamped to 1 (serial, inline execution).
    explicit ParallelExecutor(int jobs = 1);

    [[nodiscard]] int jobs() const noexcept { return jobs_; }

    /// Invokes body(0..count-1), each index exactly once, spread over up
    /// to jobs() worker threads.  Indices are claimed from an atomic
    /// counter; the caller must make body(i) touch only state owned by
    /// index i (e.g. its own slot of a pre-sized results vector).  If any
    /// invocation throws, remaining un-started indices are abandoned and
    /// the first exception is rethrown after all workers join.
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body) const;

private:
    int jobs_ = 1;
};

}  // namespace capbench::harness
