#include "capbench/harness/testbed.hpp"

#include "capbench/obs/observer.hpp"

namespace capbench::harness {

Testbed::Testbed(TestbedConfig config) : sim_(config.event_queue) {
    link_ = std::make_unique<net::Link>(sim_, config.link_gbps);
    config.gen.link_gbps = config.link_gbps;
    gen_ = std::make_unique<pktgen::Generator>(sim_, *link_, config.gen_nic,
                                               std::move(config.gen), arena_);
    if (config.observer != nullptr) gen_->register_metrics(config.observer->registry());
    link_->attach(switch_);
    net::FrameSink& fan_out =
        config.distribute_round_robin ? static_cast<net::FrameSink&>(distributor_)
                                      : static_cast<net::FrameSink&>(splitter_);
    switch_.attach_monitor(fan_out);
    for (auto& sut_config : config.suts) {
        suts_.push_back(std::make_unique<Sut>(sim_, std::move(sut_config), config.observer));
        if (config.distribute_round_robin)
            distributor_.attach(suts_.back()->nic_sink());
        else
            splitter_.attach(suts_.back()->nic_sink());
    }
}

void Testbed::start_suts() {
    for (auto& sut : suts_) sut->start();
}

}  // namespace capbench::harness
