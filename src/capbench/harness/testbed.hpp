// The measurement testbed of Figure 3.1: workload generator -> gigabit
// fiber -> monitoring switch (with SNMP counters) -> passive optical
// splitter -> the systems under test.
#pragma once

#include <memory>
#include <vector>

#include "capbench/harness/sut.hpp"
#include "capbench/net/arena.hpp"
#include "capbench/net/link.hpp"
#include "capbench/net/switch.hpp"
#include "capbench/pktgen/pktgen.hpp"
#include "capbench/sim/simulator.hpp"

namespace capbench::obs {
class Observer;
}

namespace capbench::harness {

struct TestbedConfig {
    pktgen::GenConfig gen;
    pktgen::GenNicModel gen_nic = pktgen::GenNicModel::syskonnect();
    std::vector<SutConfig> suts;
    /// Link speed in Gbit/s (Section 7.2's 10-GbE scenario uses 10).
    double link_gbps = 1.0;
    /// Replace the passive splitter (every sniffer sees every packet) with
    /// a round-robin distributor (each packet goes to ONE sniffer) — the
    /// load-distribution approach of Section 7.2.
    bool distribute_round_robin = false;
    /// Priority backend for the simulator's event queue.  Purely a perf
    /// choice: results are bit-identical under either.
    sim::EventQueueBackend event_queue = sim::event_queue_backend_from_env();
    /// Lifecycle/metrics observer; null (the default) disables every hook.
    obs::Observer* observer = nullptr;
};

class Testbed {
public:
    explicit Testbed(TestbedConfig config);

    [[nodiscard]] sim::Simulator& sim() { return sim_; }
    [[nodiscard]] net::PacketArena& arena() { return *arena_; }
    [[nodiscard]] pktgen::Generator& generator() { return *gen_; }
    [[nodiscard]] net::MonitorSwitch& monitor_switch() { return switch_; }
    [[nodiscard]] std::vector<std::unique_ptr<Sut>>& suts() { return suts_; }

    /// Starts all capturing applications (step 1 of the measurement cycle).
    void start_suts();

private:
    // The arena is declared before (so destroyed after) everything that can
    // hold packets; packet control blocks additionally pin it via their
    // allocator, so either ordering would be safe — this one avoids keeping
    // a dead testbed's freelists alive through a straggler reference.
    std::shared_ptr<net::PacketArena> arena_ = net::PacketArena::create();
    sim::Simulator sim_;
    std::unique_ptr<net::Link> link_;
    net::MonitorSwitch switch_;
    net::Splitter splitter_;
    net::RoundRobinSplitter distributor_;
    std::unique_ptr<pktgen::Generator> gen_;
    std::vector<std::unique_ptr<Sut>> suts_;
};

}  // namespace capbench::harness
