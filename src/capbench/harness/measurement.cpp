#include "capbench/harness/measurement.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "capbench/dist/builtin.hpp"
#include "capbench/obs/observer.hpp"
#include "capbench/obs/timeseries.hpp"
#include "capbench/profiling/cpusage.hpp"

namespace capbench::harness {

RunResult run_once(const std::vector<SutConfig>& suts, const RunConfig& config) {
    if (config.timeseries != nullptr && config.sample_interval.ns() <= 0)
        throw std::invalid_argument(
            "RunConfig::timeseries requires a positive sample_interval");
    const bool sampling = config.timeseries != nullptr;
    // A trace or time-series sink implies observation; plain metrics can
    // be requested alone.  Without any, no Observer exists and every hook
    // in the hot path is a null-pointer branch — the
    // zero-cost-when-disabled contract.
    const bool observe = config.collect_metrics || config.trace != nullptr || sampling;
    std::unique_ptr<obs::Observer> observer;
    if (observe) observer = std::make_unique<obs::Observer>(config.trace);

    TestbedConfig tb;
    tb.observer = observer.get();
    tb.suts = suts;
    tb.gen.count = config.packets;
    tb.gen.rate_mbps = config.rate_mbps;
    tb.gen.seed = config.seed;
    tb.gen.full_bytes = config.full_bytes;
    tb.gen.flow_count = config.flow_count;
    tb.gen.burst_period_ns = config.burst_period.ns();
    tb.gen.burst_duration_ns = config.burst_duration.ns();
    tb.gen.burst_multiplier = config.burst_multiplier;
    if (config.use_mwn_dist) {
        tb.gen.size_dist.emplace(dist::mwn_trace_histogram());
        tb.gen.use_dist = true;
    } else {
        tb.gen.packet_size = config.fixed_size;
        tb.gen.use_dist = false;
    }

    tb.link_gbps = config.link_gbps;
    tb.distribute_round_robin = config.distribute_round_robin;
    tb.event_queue = config.event_queue;
    Testbed bed{std::move(tb)};
    if (observer) observer->reserve(config.packets);
    bed.start_suts();

    // Per-SUT cpusage profilers (step 1 also starts the profiling
    // applications).  Sampling only reads the Machine's accounting, so the
    // simulation's observable behaviour is unchanged.
    std::vector<std::unique_ptr<profiling::CpuSage>> profilers;
    if (observer) {
        for (auto& sut : bed.suts()) {
            profilers.push_back(std::make_unique<profiling::CpuSage>(
                sut->machine(), config.cpusage_interval));
            profilers.back()->start();
        }
    }

    // Interval time-series sampler (tentpole of ISSUE 10).  Like cpusage
    // it only reads counters and gauges, so the simulation's observable
    // behaviour — and every figure golden — is unchanged by sampling.
    std::unique_ptr<obs::IntervalSampler> sampler;
    if (sampling) {
        obs::SamplerSources sources;
        sources.generated = &bed.generator().stats().packets_sent;
        for (std::size_t i = 0; i < bed.suts().size(); ++i) {
            auto& sut = *bed.suts()[i];
            obs::SamplerSources::Sut src;
            src.name = sut.config().name;
            src.nic = &sut.nic();
            src.machine = &sut.machine();
            src.trace_pid = static_cast<int>(i) + 1;  // Observer pid order
            for (std::size_t a = 0; a < sut.sessions().size(); ++a) {
                obs::SamplerSources::App app;
                app.endpoint = &sut.endpoint(a);
                app.writer = sut.disk_writer(a);
                src.apps.push_back(app);
            }
            sources.suts.push_back(std::move(src));
        }
        sampler = std::make_unique<obs::IntervalSampler>(
            bed.sim(), config.sample_interval, std::move(sources), *config.timeseries,
            config.trace);
        sampler->start();
    }

    // Step 2: counters before generation.
    const auto counters_before = bed.monitor_switch().egress_counters();

    // CPU accounting snapshots bracket the generation window.
    std::vector<sim::Duration> busy_before(bed.suts().size());
    bool stopped = false;
    sim::SimTime gen_end{};
    std::vector<sim::Duration> busy_after(bed.suts().size());
    // Per sut, per app: delivered / dropped counters frozen at stop time
    // (step 5 of Figure 3.2 kills the applications `drain` after the last
    // packet; later deliveries do not count).
    std::vector<std::vector<std::uint64_t>> delivered_at_stop(bed.suts().size());
    std::vector<std::uint64_t> drops_at_stop(bed.suts().size(), 0);
    std::vector<obs::SutSnapshot> snapshots;

    bed.sim().schedule_at(sim::SimTime{} + config.warmup, [&] {
        for (std::size_t i = 0; i < bed.suts().size(); ++i)
            busy_before[i] = bed.suts()[i]->machine().total_busy();
    });

    // Step 3: generate.
    bed.generator().start(sim::SimTime{} + config.warmup, [&] {
        gen_end = bed.sim().now();
        for (std::size_t i = 0; i < bed.suts().size(); ++i)
            busy_after[i] = bed.suts()[i]->machine().total_busy();
        // Step 5: stop the capturing applications after the stop delay.
        bed.sim().schedule_in(config.drain, [&] {
            for (std::size_t i = 0; i < bed.suts().size(); ++i) {
                auto& sut = *bed.suts()[i];
                for (std::size_t a = 0; a < sut.sessions().size(); ++a) {
                    // A record spilled by the disk-writer ring was handed
                    // to the app but never persisted; it does not count as
                    // captured.  Zero without the pipeline.
                    delivered_at_stop[i].push_back(sut.delivered(a) -
                                                   sut.disk_spilled(a));
                    drops_at_stop[i] += sut.sessions()[a]->stats().ps_drop;
                }
            }
            // The sampler's final sample happens in this same event, so
            // its delta columns telescope exactly to the counters the
            // snapshots below freeze (the conservation invariant).
            if (sampler) sampler->stop();
            if (observer) {
                // Freeze the observer and snapshot every counter at the
                // same instant the headline statistics are frozen, so the
                // drop-attribution identity is exact.
                observer->freeze();
                for (std::size_t i = 0; i < bed.suts().size(); ++i) {
                    auto& sut = *bed.suts()[i];
                    obs::SutSnapshot snap;
                    snap.frames_seen = sut.nic().frames_seen();
                    snap.ring_drops = sut.nic().ring_drops();
                    snap.backlog_drops = sut.nic().backlog_drops();
                    for (std::size_t a = 0; a < sut.sessions().size(); ++a) {
                        snap.apps.push_back(sut.capture_stats(a));
                        snap.disk_spills.push_back(sut.disk_spilled(a));
                    }
                    profilers[i]->stop();
                    snap.cpu_samples = profilers[i]->samples();
                    snapshots.push_back(std::move(snap));
                }
            }
            stopped = true;
        });
    });

    while (!stopped) {
        const bool progressed = bed.sim().run(bed.sim().now() + sim::seconds(1)) > 0;
        if (!progressed && !stopped && bed.sim().queue().empty())
            throw std::logic_error("measurement: generator stalled");
    }

    // Step 4: counters after generation.
    const auto counters_after = bed.monitor_switch().egress_counters();
    const std::uint64_t generated = counters_after.packets - counters_before.packets;
    if (generated == 0) throw std::logic_error("measurement: no packets generated");

    // Step 5: collect statistics.
    RunResult result;
    result.generated = generated;
    result.offered_mbps = bed.generator().stats().achieved_mbps();
    result.events_executed = bed.sim().events_executed();
    result.event_queue_backend = sim::to_string(bed.sim().backend());
    const sim::Duration window = gen_end - (sim::SimTime{} + config.warmup);
    for (std::size_t i = 0; i < bed.suts().size(); ++i) {
        auto& sut = *bed.suts()[i];
        SutRunResult r;
        r.name = sut.config().name;
        for (std::size_t a = 0; a < sut.sessions().size(); ++a) {
            const double pct = 100.0 * static_cast<double>(delivered_at_stop[i][a]) /
                               static_cast<double>(generated);
            r.per_app_capture_pct.push_back(std::min(pct, 100.0));
        }
        r.buffer_drops = drops_at_stop[i];
        r.capture_worst_pct =
            *std::min_element(r.per_app_capture_pct.begin(), r.per_app_capture_pct.end());
        r.capture_best_pct =
            *std::max_element(r.per_app_capture_pct.begin(), r.per_app_capture_pct.end());
        double sum = 0.0;
        for (const double v : r.per_app_capture_pct) sum += v;
        r.capture_avg_pct = sum / static_cast<double>(r.per_app_capture_pct.size());
        const auto busy = busy_after[i] - busy_before[i];
        r.cpu_pct = std::min(
            100.0, 100.0 * busy.seconds() /
                       (window.seconds() * sut.machine().logical_cpus()));
        r.nic_ring_drops = sut.nic().ring_drops();
        r.backlog_drops = sut.nic().backlog_drops();
        result.suts.push_back(std::move(r));
    }
    if (observer) result.metrics = observer->finalize(snapshots, generated);
    // Re-check the conservation invariant against the independently
    // snapshotted aggregates and freeze the totals for the JSON writer.
    if (sampler) config.timeseries->finalize_against(result.metrics);
    return result;
}

RunResult run_repeated(const std::vector<SutConfig>& suts, const RunConfig& config, int reps) {
    if (reps < 1) throw std::invalid_argument("run_repeated: reps must be >= 1");
    RunResult agg;
    for (int rep = 0; rep < reps; ++rep) {
        RunConfig c = config;
        c.seed = config.seed + static_cast<std::uint64_t>(rep) * 7919;
        // The timeline and the time-series belong to a single rep
        // (overlaying reps in one sink would be meaningless); rep 0 is
        // the designated one.
        if (rep != 0) {
            c.trace = nullptr;
            c.timeseries = nullptr;
        }
        RunResult r = run_once(suts, c);
        if (rep == 0) {
            agg = std::move(r);
            continue;
        }
        agg.metrics.merge(r.metrics);
        agg.generated += r.generated;
        agg.offered_mbps += r.offered_mbps;
        agg.events_executed += r.events_executed;  // total across reps

        for (std::size_t i = 0; i < agg.suts.size(); ++i) {
            auto& a = agg.suts[i];
            const auto& b = r.suts[i];
            a.capture_worst_pct += b.capture_worst_pct;
            a.capture_avg_pct += b.capture_avg_pct;
            a.capture_best_pct += b.capture_best_pct;
            a.cpu_pct += b.cpu_pct;
            a.nic_ring_drops += b.nic_ring_drops;
            a.backlog_drops += b.backlog_drops;
            a.buffer_drops += b.buffer_drops;
            for (std::size_t j = 0; j < a.per_app_capture_pct.size(); ++j)
                a.per_app_capture_pct[j] += b.per_app_capture_pct[j];
        }
    }
    const auto n = static_cast<double>(reps);
    agg.generated /= static_cast<std::uint64_t>(reps);
    agg.offered_mbps /= n;
    for (auto& s : agg.suts) {
        s.capture_worst_pct /= n;
        s.capture_avg_pct /= n;
        s.capture_best_pct /= n;
        s.cpu_pct /= n;
        for (auto& v : s.per_app_capture_pct) v /= n;
    }
    return agg;
}

}  // namespace capbench::harness
