#include "capbench/pcap/session.hpp"

// Session is header-only; this TU anchors the translation unit.

namespace capbench::pcap {

}  // namespace capbench::pcap
