// Real pcap file format reader/writer (the classic 0xa1b2c3d4 format with
// microsecond timestamps, as written by tcpdump -w and read by createDist's
// trace input mode).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "capbench/net/packet.hpp"
#include "capbench/sim/time.hpp"

namespace capbench::pcap {

inline constexpr std::uint32_t kPcapMagic = 0xA1B2C3D4;
inline constexpr std::uint32_t kLinktypeEthernet = 1;

struct FileHeader {
    std::uint32_t magic = kPcapMagic;
    std::uint16_t version_major = 2;
    std::uint16_t version_minor = 4;
    std::int32_t thiszone = 0;
    std::uint32_t sigfigs = 0;
    std::uint32_t snaplen = 65535;
    std::uint32_t linktype = kLinktypeEthernet;
};

struct Record {
    sim::SimTime timestamp{};
    std::uint32_t caplen = 0;
    std::uint32_t wire_len = 0;
    std::vector<std::byte> data;  // caplen bytes
};

/// Streams records into a pcap file (little-endian host-order fields, the
/// native-writer convention).
class FileWriter {
public:
    /// Writes the file header immediately.
    FileWriter(std::ostream& out, std::uint32_t snaplen = 65535);

    /// Writes one record.  Synthetic packets (no bytes) are written as
    /// zero-filled payloads of their capture length.  Allocation-free in
    /// steady state: real payloads stream straight from the packet's arena
    /// buffer, synthetic ones reuse a pooled zero buffer.
    void write(const net::Packet& packet, std::uint32_t caplen, sim::SimTime timestamp);

    /// Zero-copy path: emits a record header followed by `data`, truncated
    /// or zero-padded to exactly `caplen` bytes.
    void write(std::span<const std::byte> data, std::uint32_t caplen, std::uint32_t wire_len,
               sim::SimTime timestamp);

    void write(const Record& record);

    [[nodiscard]] std::uint64_t records_written() const { return records_; }

private:
    std::ostream* out_;
    std::uint32_t snaplen_;
    std::uint64_t records_ = 0;
    std::vector<std::byte> zero_pool_;  // grown once, reused for padding
};

/// Reads records from a pcap file; handles both endiannesses.
class FileReader {
public:
    /// Parses the header.  Throws std::runtime_error on bad magic.
    explicit FileReader(std::istream& in);

    [[nodiscard]] const FileHeader& header() const { return header_; }

    /// Next record, or std::nullopt at end of file.
    /// Throws std::runtime_error on truncated records.
    std::optional<Record> next();

private:
    [[nodiscard]] std::uint32_t fix32(std::uint32_t v) const;
    [[nodiscard]] std::uint16_t fix16(std::uint16_t v) const;

    std::istream* in_;
    FileHeader header_;
    bool swapped_ = false;
};

}  // namespace capbench::pcap
