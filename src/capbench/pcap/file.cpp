#include "capbench/pcap/file.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace capbench::pcap {

namespace {

template <typename T>
void put(std::ostream& out, T value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
bool get(std::istream& in, T& value) {
    in.read(reinterpret_cast<char*>(&value), sizeof value);
    return in.gcount() == static_cast<std::streamsize>(sizeof value);
}

std::uint32_t bswap32(std::uint32_t v) {
    return (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) | (v << 24);
}

std::uint16_t bswap16(std::uint16_t v) {
    return static_cast<std::uint16_t>((v >> 8) | (v << 8));
}

}  // namespace

FileWriter::FileWriter(std::ostream& out, std::uint32_t snaplen) : out_(&out), snaplen_(snaplen) {
    const FileHeader h{.snaplen = snaplen};
    put(*out_, h.magic);
    put(*out_, h.version_major);
    put(*out_, h.version_minor);
    put(*out_, h.thiszone);
    put(*out_, h.sigfigs);
    put(*out_, h.snaplen);
    put(*out_, h.linktype);
}

void FileWriter::write(const net::Packet& packet, std::uint32_t caplen, sim::SimTime timestamp) {
    const std::uint32_t cap = std::min({caplen, snaplen_, packet.frame_len()});
    const auto bytes = packet.has_bytes() ? packet.bytes() : std::span<const std::byte>{};
    write(bytes, cap, packet.frame_len(), timestamp);
}

void FileWriter::write(std::span<const std::byte> data, std::uint32_t caplen,
                       std::uint32_t wire_len, sim::SimTime timestamp) {
    const auto usec_total = timestamp.ns() / 1000;
    put(*out_, static_cast<std::uint32_t>(usec_total / 1'000'000));
    put(*out_, static_cast<std::uint32_t>(usec_total % 1'000'000));
    put(*out_, caplen);
    put(*out_, wire_len);
    const auto copied = std::min<std::size_t>(caplen, data.size());
    out_->write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(copied));
    if (copied < caplen) {
        // Synthetic or short payload: pad with zeros from a pooled buffer
        // instead of zero-filling a fresh vector per record.
        const std::size_t pad = caplen - copied;
        if (zero_pool_.size() < pad) zero_pool_.resize(pad);
        out_->write(reinterpret_cast<const char*>(zero_pool_.data()),
                    static_cast<std::streamsize>(pad));
    }
    ++records_;
}

void FileWriter::write(const Record& record) {
    write(std::span<const std::byte>{record.data}, record.caplen, record.wire_len,
          record.timestamp);
}

FileReader::FileReader(std::istream& in) : in_(&in) {
    std::uint32_t magic = 0;
    if (!get(*in_, magic)) throw std::runtime_error("pcap: truncated header");
    if (magic == kPcapMagic) {
        swapped_ = false;
    } else if (magic == 0xD4C3B2A1) {
        swapped_ = true;
    } else {
        throw std::runtime_error("pcap: bad magic number");
    }
    header_.magic = kPcapMagic;
    if (!get(*in_, header_.version_major) || !get(*in_, header_.version_minor) ||
        !get(*in_, header_.thiszone) || !get(*in_, header_.sigfigs) ||
        !get(*in_, header_.snaplen) || !get(*in_, header_.linktype))
        throw std::runtime_error("pcap: truncated header");
    header_.version_major = fix16(header_.version_major);
    header_.version_minor = fix16(header_.version_minor);
    header_.snaplen = fix32(header_.snaplen);
    header_.linktype = fix32(header_.linktype);
}

std::uint32_t FileReader::fix32(std::uint32_t v) const {
    return swapped_ ? bswap32(v) : v;
}

std::uint16_t FileReader::fix16(std::uint16_t v) const {
    return swapped_ ? bswap16(v) : v;
}

std::optional<Record> FileReader::next() {
    std::uint32_t sec = 0;
    if (!get(*in_, sec)) return std::nullopt;  // clean EOF
    std::uint32_t usec = 0;
    std::uint32_t caplen = 0;
    std::uint32_t wire_len = 0;
    if (!get(*in_, usec) || !get(*in_, caplen) || !get(*in_, wire_len))
        throw std::runtime_error("pcap: truncated record header");
    Record rec;
    sec = fix32(sec);
    usec = fix32(usec);
    rec.caplen = fix32(caplen);
    rec.wire_len = fix32(wire_len);
    if (rec.caplen > 256 * 1024) throw std::runtime_error("pcap: implausible record length");
    rec.timestamp =
        sim::SimTime{(static_cast<std::int64_t>(sec) * 1'000'000 + usec) * 1000};
    rec.data.resize(rec.caplen);
    in_->read(reinterpret_cast<char*>(rec.data.data()),
              static_cast<std::streamsize>(rec.caplen));
    if (in_->gcount() != static_cast<std::streamsize>(rec.caplen))
        throw std::runtime_error("pcap: truncated record data");
    return rec;
}

}  // namespace capbench::pcap
