// libpcap-like session API (Section 2.1.3) on top of the simulated stacks.
//
// Mirrors the procedures the thesis lists: pcap_open_live() ~ constructing
// a Session via harness::Sut, pcap_setfilter()/pcap_compile() ~
// set_filter(), pcap_stats() ~ stats(), and the capture loop of
// pcap_loop() ~ set_handler() + the capture application thread.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "capbench/bpf/filter/codegen.hpp"
#include "capbench/capture/tap.hpp"

namespace capbench::pcap {

struct Stats {
    std::uint64_t ps_recv = 0;  // packets received (delivered to the app)
    std::uint64_t ps_drop = 0;  // packets dropped for lack of buffer space
};

class Session {
public:
    /// `is_mmap` marks sessions on the memory-mapped ring, which — like the
    /// original patch — does not support non-blocking mode (Section 6.3.6).
    Session(capture::StackEndpoint& endpoint, std::string device, std::uint32_t snaplen,
            bool is_mmap)
        : endpoint_(&endpoint), device_(std::move(device)), snaplen_(snaplen), is_mmap_(is_mmap) {}

    /// Compiles `expression` (pcap_compile) and installs it (pcap_setfilter).
    /// Throws bpf::filter::FilterError on bad expressions.
    void set_filter(const std::string& expression) {
        filter_expr_ = expression;
        endpoint_->install_filter(bpf::filter::compile_filter(expression, snaplen_));
    }

    /// pcap_setnonblock(): rejected on mmap sessions, like the patch.
    void set_nonblock(bool enable) {
        if (enable && is_mmap_)
            throw std::runtime_error(
                "non-blocking mode is not supported by the mmap-patched libpcap");
        nonblock_ = enable;
    }

    [[nodiscard]] bool nonblock() const { return nonblock_; }
    [[nodiscard]] bool is_mmap() const { return is_mmap_; }
    [[nodiscard]] std::uint32_t snaplen() const { return snaplen_; }
    [[nodiscard]] const std::string& device() const { return device_; }
    [[nodiscard]] const std::string& filter_expression() const { return filter_expr_; }

    /// Per-packet callback run by the capture application thread for every
    /// delivered packet (the pcap_loop user function).
    using Handler = std::function<void(const net::PacketPtr&, std::uint32_t caplen)>;
    void set_handler(Handler handler) { handler_ = std::move(handler); }
    [[nodiscard]] const Handler& handler() const { return handler_; }

    [[nodiscard]] Stats stats() const {
        const auto& s = endpoint_->stats();
        return Stats{s.delivered, s.dropped_buffer};
    }

    [[nodiscard]] capture::StackEndpoint& endpoint() const { return *endpoint_; }

private:
    capture::StackEndpoint* endpoint_;
    std::string device_;
    std::uint32_t snaplen_;
    bool is_mmap_;
    bool nonblock_ = false;
    std::string filter_expr_;
    Handler handler_;
};

}  // namespace capbench::pcap
