#include "capbench/sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace capbench::sim {

EventHandle EventQueue::push(SimTime t, Action action) {
    auto cancelled = std::make_shared<bool>(false);
    EventHandle handle{cancelled};
    heap_.push(Event{t, next_seq_++, std::move(action), std::move(cancelled)});
    return handle;
}

void EventQueue::drop_cancelled() {
    while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

bool EventQueue::empty() {
    drop_cancelled();
    return heap_.empty();
}

SimTime EventQueue::next_time() {
    drop_cancelled();
    if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
    return heap_.top().time;
}

SimTime EventQueue::pop_and_run() {
    drop_cancelled();
    if (heap_.empty()) throw std::logic_error("EventQueue::pop_and_run on empty queue");
    // Copy out before popping: the action may schedule new events.
    Event ev = heap_.top();
    heap_.pop();
    // Mark as no longer pending so EventHandle::pending() is accurate while
    // the action runs.
    *ev.cancelled = true;
    ev.action();
    return ev.time;
}

void EventQueue::clear() {
    heap_ = {};
}

}  // namespace capbench::sim
