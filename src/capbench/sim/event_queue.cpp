#include "capbench/sim/event_queue.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace capbench::sim {

const char* to_string(EventQueueBackend backend) {
    return backend == EventQueueBackend::kWheel ? "wheel" : "heap";
}

EventQueueBackend event_queue_backend_from_env() {
    const char* raw = std::getenv("CAPBENCH_EVENT_QUEUE");
    if (raw == nullptr) return EventQueueBackend::kHeap;
    const std::string_view value{raw};
    if (value == "heap") return EventQueueBackend::kHeap;
    if (value == "wheel") return EventQueueBackend::kWheel;
    throw std::runtime_error("CAPBENCH_EVENT_QUEUE must be \"heap\" or \"wheel\", got \"" +
                             std::string(value) + "\"");
}

EventHandle EventQueue::push(SimTime t, Action action) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.action = std::move(action);
    s.state = SlotState::kScheduled;
    const std::uint64_t seq = next_seq_++;
    if (backend_ == EventQueueBackend::kWheel) {
        wheel_.insert(slot, t, seq);
    } else {
        heap_push(HeapEntry{t, seq, slot});
    }
    ++live_;
    ++stats_.pushed;
    return EventHandle{this, slot, s.generation};
}

void EventQueue::cancel(std::uint32_t slot, std::uint64_t generation) {
    if (slot >= slots_.size()) return;
    Slot& s = slots_[slot];
    if (s.generation != generation || s.state != SlotState::kScheduled) return;
    // Bump the generation so every handle to this event goes inert, and
    // destroy the callback now so captured resources are released eagerly.
    ++s.generation;
    s.action.reset();
    --live_;
    ++stats_.cancelled;
    if (backend_ == EventQueueBackend::kWheel) {
        // The wheel unlinks in O(1), so the slot goes straight back to the
        // freelist — no tombstone, no backlog.
        wheel_.erase(slot);
        release_slot(slot);
    } else {
        // The heap entry stays behind as a tombstone until it surfaces.
        s.state = SlotState::kCancelled;
        ++cancelled_backlog_;
    }
}

bool EventQueue::is_pending(std::uint32_t slot, std::uint64_t generation) const {
    if (slot >= slots_.size()) return false;
    const Slot& s = slots_[slot];
    return s.generation == generation && s.state == SlotState::kScheduled;
}

SimTime EventQueue::next_time() {
    if (backend_ == EventQueueBackend::kWheel) {
        if (wheel_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
        return wheel_.min_time();
    }
    purge_cancelled_head();
    if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
    return heap_.front().time;
}

SimTime EventQueue::pop_and_run() {
    SimTime time;
    std::uint32_t slot = kNoSlot;
    if (backend_ == EventQueueBackend::kWheel) {
        if (wheel_.empty()) throw std::logic_error("EventQueue::pop_and_run on empty queue");
        slot = wheel_.pop_min(time);
    } else {
        purge_cancelled_head();
        if (heap_.empty()) throw std::logic_error("EventQueue::pop_and_run on empty queue");
        time = heap_.front().time;
        slot = heap_.front().slot;
        heap_pop_front();
    }
    Slot& s = slots_[slot];
    // Move the action out and release the slot before running: the action
    // may push new events (which can reuse this slot) and EventHandles to
    // this event must already read "not pending" while it runs.
    Action action = std::move(s.action);
    s.action.reset();
    ++s.generation;
    release_slot(slot);
    --live_;
    ++stats_.executed;
    action();
    return time;
}

void EventQueue::clear() {
    // Bump generations of every occupied slot so outstanding handles are
    // inert, then rebuild a pristine freelist over the whole slab.
    heap_.clear();
    wheel_.clear();
    free_head_ = kNoSlot;
    for (std::size_t i = slots_.size(); i > 0; --i) {
        Slot& s = slots_[i - 1];
        if (s.state != SlotState::kFree) ++s.generation;
        s.state = SlotState::kFree;
        s.action.reset();
        s.next_free = free_head_;
        free_head_ = static_cast<std::uint32_t>(i - 1);
    }
    live_ = 0;
    cancelled_backlog_ = 0;
}

std::uint32_t EventQueue::acquire_slot() {
    if (free_head_ == kNoSlot) {
        if (slots_.size() >= kNoSlot)
            throw std::length_error("EventQueue: slot slab exhausted");
        slots_.emplace_back();
        return static_cast<std::uint32_t>(slots_.size() - 1);
    }
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
    return slot;
}

void EventQueue::release_slot(std::uint32_t index) {
    Slot& s = slots_[index];
    s.state = SlotState::kFree;
    s.next_free = free_head_;
    free_head_ = index;
}

void EventQueue::purge_cancelled_head() {
    while (!heap_.empty() && slots_[heap_.front().slot].state == SlotState::kCancelled) {
        const std::uint32_t slot = heap_.front().slot;
        heap_pop_front();
        release_slot(slot);
        --cancelled_backlog_;
    }
}

// ---- 4-ary min-heap ----------------------------------------------------------
//
// A 4-ary heap halves the tree depth of the binary heap and keeps parent and
// children within one or two cache lines of HeapEntry (24 B), which measures
// faster for the push/pop mix the simulator produces.

void EventQueue::heap_push(HeapEntry entry) {
    heap_.push_back(entry);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!earlier(heap_[i], heap_[parent])) break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void EventQueue::heap_pop_front() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
}

void EventQueue::sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t first_child = 4 * i + 1;
        if (first_child >= n) return;
        std::size_t best = first_child;
        const std::size_t last_child = std::min(first_child + 4, n);
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (earlier(heap_[c], heap_[best])) best = c;
        }
        if (!earlier(heap_[best], heap_[i])) return;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
}

}  // namespace capbench::sim
