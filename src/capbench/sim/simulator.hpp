// Discrete-event simulator run loop.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "capbench/sim/event_queue.hpp"
#include "capbench/sim/time.hpp"

namespace capbench::sim {

/// Owns the clock and the event queue; components schedule callbacks on it.
class Simulator {
public:
    explicit Simulator(EventQueueBackend backend = event_queue_backend_from_env())
        : queue_(backend) {}

    [[nodiscard]] SimTime now() const { return now_; }

    /// Which priority backend the event queue runs on (heap or wheel).
    [[nodiscard]] EventQueueBackend backend() const { return queue_.backend(); }

    /// Schedules `action` to run `delay` after the current time.
    EventHandle schedule_in(Duration delay, EventQueue::Action action) {
        return queue_.push(now_ + delay, std::move(action));
    }

    /// Schedules `action` at absolute time `t` (must not be in the past).
    EventHandle schedule_at(SimTime t, EventQueue::Action action) {
        if (t < now_) throw std::logic_error("Simulator::schedule_at in the past");
        return queue_.push(t, std::move(action));
    }

    /// Runs until the queue drains or the clock passes `until`.
    /// Returns the number of events executed.
    std::uint64_t run(SimTime until = SimTime::max()) {
        std::uint64_t executed = 0;
        while (!queue_.empty()) {
            const SimTime t = queue_.next_time();
            if (t > until) break;
            // Advance the clock before the action runs so it observes now().
            now_ = t;
            queue_.pop_and_run();
            ++executed;
        }
        total_executed_ += executed;
        if (until != SimTime::max() && until > now_) now_ = until;
        return executed;
    }

    /// Runs a single event if one exists.  Returns false when idle.
    bool step() {
        if (queue_.empty()) return false;
        now_ = queue_.next_time();
        queue_.pop_and_run();
        ++total_executed_;
        return true;
    }

    /// Total events executed over the simulator's lifetime (perf metric).
    [[nodiscard]] std::uint64_t events_executed() const { return total_executed_; }

    EventQueue& queue() { return queue_; }

private:
    EventQueue queue_;
    SimTime now_{};
    std::uint64_t total_executed_ = 0;
};

}  // namespace capbench::sim
