#include "capbench/sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace capbench::sim {

void RunningStats::add(double x) {
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double RunningStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::min() const {
    if (samples_.empty()) throw std::logic_error("SampleSet::min on empty set");
    return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
    if (samples_.empty()) throw std::logic_error("SampleSet::max on empty set");
    return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::mean() const {
    if (samples_.empty()) throw std::logic_error("SampleSet::mean on empty set");
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

namespace {

/// Linear-interpolation quantile over an already-sorted vector.
double sorted_quantile(const std::vector<double>& sorted, double q) {
    if (sorted.size() == 1) return sorted.front();
    if (q <= 0.0) return sorted.front();
    if (q >= 1.0) return sorted.back();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double SampleSet::quantile(double q) const {
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("SampleSet::quantile: q outside [0,1]");
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    return sorted_quantile(sorted, q);
}

SampleSet::Summary SampleSet::summary() const {
    Summary s;
    if (samples_.empty()) return s;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
             static_cast<double>(sorted.size());
    s.p50 = sorted_quantile(sorted, 0.50);
    s.p95 = sorted_quantile(sorted, 0.95);
    s.p99 = sorted_quantile(sorted, 0.99);
    return s;
}

}  // namespace capbench::sim
