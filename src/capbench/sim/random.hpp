// Deterministic pseudo-random number generation for reproducible runs.
//
// The thesis requires that "the sequence of packets should be identical
// across different measurements" (Section 3.2, Reproducibility).  We use
// xoshiro256**, seeded explicitly, so identical seeds give identical packet
// streams on every platform.
#pragma once

#include <array>
#include <cstdint>

namespace capbench::sim {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /// Uniform 64-bit value.
    std::uint64_t next_u64();

    /// Uniform in [0, bound) without modulo bias (Lemire's method).
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t next_in(std::int64_t lo, std::int64_t hi);

    /// Exponentially distributed value with the given mean (> 0).
    double next_exponential(double mean);

    /// Pareto distributed value with shape alpha (> 0) and scale xm (> 0).
    /// Used by the self-similar traffic source (Section 2.5).
    double next_pareto(double alpha, double xm);

    /// Bernoulli trial.
    bool next_bool(double p_true);

private:
    static std::uint64_t splitmix64(std::uint64_t& x);
    std::array<std::uint64_t, 4> s_{};
};

}  // namespace capbench::sim
