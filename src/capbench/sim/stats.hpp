// Small statistics helpers used throughout the measurement harness.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace capbench::sim {

/// Running min / max / mean / variance (Welford) without storing samples.
class RunningStats {
public:
    void add(double x);

    [[nodiscard]] std::uint64_t count() const { return n_; }
    [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
    [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 with fewer than two samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double sum() const { return sum_; }

private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples and answers quantile queries; used for per-app capture
/// rate spreads (worst/avg/best lines of Figures 6.7-6.9) and the
/// observability layer's latency histograms.
class SampleSet {
public:
    /// One-pass digest of a sample set.  All fields are 0 when empty.
    struct Summary {
        std::uint64_t count = 0;
        double min = 0.0;
        double max = 0.0;
        double mean = 0.0;
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
    };

    void add(double x) { samples_.push_back(x); }
    void reserve(std::size_t n) { samples_.reserve(n); }

    [[nodiscard]] std::size_t size() const { return samples_.size(); }
    [[nodiscard]] bool empty() const { return samples_.empty(); }
    [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean() const;
    /// Linear-interpolation quantile, q in [0, 1].  A single sample is
    /// every quantile of itself; an empty set answers 0.0 (quantile of
    /// nothing) so summary rows stay total.  q outside [0, 1] throws.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double p50() const { return quantile(0.50); }
    [[nodiscard]] double p95() const { return quantile(0.95); }
    [[nodiscard]] double p99() const { return quantile(0.99); }

    /// Computes count/min/max/mean/p50/p95/p99 with a single sort.
    [[nodiscard]] Summary summary() const;

private:
    std::vector<double> samples_;
};

}  // namespace capbench::sim
