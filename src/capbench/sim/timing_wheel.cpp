#include "capbench/sim/timing_wheel.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace capbench::sim {

TimingWheel::TimingWheel() = default;

std::uint64_t TimingWheel::tick_of(SimTime t) {
    // Negative times cannot occur on the simulator path (the clock starts
    // at zero and only moves forward), but clamp defensively; place()
    // routes them through the sorted ready list so the exact (time, seq)
    // order survives the clamp.
    const std::int64_t ns = t.ns();
    return ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
}

bool TimingWheel::key_less(std::uint32_t a, std::uint32_t b) const {
    const Node& na = nodes_[a];
    const Node& nb = nodes_[b];
    if (na.time != nb.time) return na.time < nb.time;
    return na.seq < nb.seq;
}

void TimingWheel::insert(std::uint32_t id, SimTime time, std::uint64_t seq) {
    if (id >= nodes_.size()) nodes_.resize(static_cast<std::size_t>(id) + 1);
    Node& n = nodes_[id];
    n.time = time;
    n.seq = seq;
    n.prev = kNil;
    n.next = kNil;
    place(id);
    ++size_;
}

void TimingWheel::place(std::uint32_t id) {
    Node& n = nodes_[id];
    const std::uint64_t tick = tick_of(n.time);
    if (tick < cur_tick_ || n.time.ns() < 0) {
        // Earlier than the cursor: only reachable through the
        // peek-then-push pattern (next_time() advanced the cursor, then an
        // earlier event was scheduled from outside the run loop) or the
        // defensive negative-time clamp.  Keep the total order by merging
        // straight into the sorted ready list.
        ready_insert_sorted(id);
        return;
    }
    // Smallest level whose block (kBucketsPerLevel^(level+1) ticks,
    // aligned) contains both the cursor and the tick — the strict
    // hierarchical placement, so a level's buckets only ever hold ticks
    // inside the cursor's current block one level up.
    const std::uint64_t diverging = tick ^ cur_tick_;
    for (int level = 0; level < kLevels; ++level) {
        if ((diverging >> (kLevelBits * (level + 1))) == 0) {
            const auto bucket =
                static_cast<std::uint32_t>((tick >> (kLevelBits * level)) & kBucketMask);
            bucket_push(level, bucket, id);
            return;
        }
    }
    // Beyond the top-level block: far-future overflow list.  Appended at
    // the tail so the list stays in push-seq order, like every bucket.
    n.home = kHomeOverflow;
    n.prev = overflow_tail_;
    if (overflow_tail_ != kNil)
        nodes_[overflow_tail_].next = id;
    else
        overflow_head_ = id;
    overflow_tail_ = id;
    ++overflow_count_;
}

void TimingWheel::bucket_push(int level, std::uint32_t bucket, std::uint32_t id) {
    const std::uint32_t slot = static_cast<std::uint32_t>(level) * kBucketsPerLevel + bucket;
    BucketList& list = buckets_[slot];
    Node& n = nodes_[id];
    n.home = slot;
    n.prev = list.tail;
    if (list.tail != kNil)
        nodes_[list.tail].next = id;
    else
        list.head = id;
    list.tail = id;
    occupied_[static_cast<std::size_t>(level)][bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
}

void TimingWheel::ready_insert_sorted(std::uint32_t id) {
    Node& n = nodes_[id];
    n.home = kHomeReady;
    std::uint32_t after = ready_tail_;
    while (after != kNil && key_less(id, after)) after = nodes_[after].prev;
    if (after == kNil) {
        n.prev = kNil;
        n.next = ready_head_;
        if (ready_head_ != kNil) nodes_[ready_head_].prev = id;
        ready_head_ = id;
        if (ready_tail_ == kNil) ready_tail_ = id;
    } else {
        n.prev = after;
        n.next = nodes_[after].next;
        nodes_[after].next = id;
        if (n.next != kNil)
            nodes_[n.next].prev = id;
        else
            ready_tail_ = id;
    }
    ++ready_count_;
}

void TimingWheel::erase(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.home == kHomeNone) throw std::logic_error("TimingWheel::erase of an absent id");
    if (n.prev != kNil) nodes_[n.prev].next = n.next;
    if (n.next != kNil) nodes_[n.next].prev = n.prev;
    if (n.home == kHomeReady) {
        if (ready_head_ == id) ready_head_ = n.next;
        if (ready_tail_ == id) ready_tail_ = n.prev;
        --ready_count_;
    } else if (n.home == kHomeOverflow) {
        if (overflow_head_ == id) overflow_head_ = n.next;
        if (overflow_tail_ == id) overflow_tail_ = n.prev;
        --overflow_count_;
    } else {
        BucketList& list = buckets_[n.home];
        if (list.head == id) list.head = n.next;
        if (list.tail == id) list.tail = n.prev;
        if (list.head == kNil) {
            const std::uint32_t level = n.home / kBucketsPerLevel;
            const std::uint32_t bucket = n.home & kBucketMask;
            occupied_[level][bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
        }
    }
    n.prev = kNil;
    n.next = kNil;
    n.home = kHomeNone;
    --size_;
}

void TimingWheel::stage() {
    if (ready_head_ != kNil) return;
    if (size_ == 0) throw std::logic_error("TimingWheel: stage on empty wheel");
    for (;;) {
        if (size_ == overflow_count_) {
            reingest_overflow();
            if (ready_head_ != kNil) return;
            continue;
        }
        // Walk levels bottom-up, scanning each level from the cursor's own
        // index at that level.  Invariant: buckets below that index are
        // empty (placement always lands at or ahead of the cursor index,
        // earlier-than-cursor pushes go to the ready list, and cascades
        // refill lower levels only ahead of the advanced cursor).
        bool cascaded = false;
        for (int level = 0; level < kLevels; ++level) {
            const int shift = kLevelBits * level;
            const auto idx = static_cast<std::uint32_t>((cur_tick_ >> shift) & kBucketMask);
            const int found = scan_occupied(level, idx);
            if (found >= 0) {
                const auto bucket = static_cast<std::uint32_t>(found);
                if (level == 0) {
                    cur_tick_ = (cur_tick_ & ~std::uint64_t{kBucketMask}) | bucket;
                    stage_level0_bucket(bucket);
                    return;
                }
                // Advance the cursor to the bucket's start and spill its
                // events into the lower levels, then rescan from level 0.
                const std::uint64_t high = cur_tick_ >> shift;
                cur_tick_ = ((high & ~std::uint64_t{kBucketMask}) | bucket) << shift;
                cascade(level, bucket);
                cascaded = true;
                break;
            }
        }
        if (!cascaded && size_ > overflow_count_)
            throw std::logic_error("TimingWheel: occupancy bitmaps corrupt");
    }
}

void TimingWheel::stage_level0_bucket(std::uint32_t bucket) {
    // A level-0 bucket is one tick, and every list in the wheel is kept in
    // push-seq order by construction: inserts append at the tail, a later
    // direct insert always carries a later seq than anything a cascade put
    // there (cascades only fill buckets that were empty when the cursor
    // arrived, preserving the source list's relative order), and the
    // overflow list re-ingests in order too.  So the bucket list already
    // IS the (time, seq) order — splice it into the ready list as-is.
    BucketList& list = buckets_[bucket];
    const std::uint32_t head = list.head;
    const std::uint32_t tail = list.tail;
    list.head = kNil;
    list.tail = kNil;
    occupied_[0][bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
    std::size_t count = 0;
    for (std::uint32_t id = head; id != kNil; id = nodes_[id].next) {
        nodes_[id].home = kHomeReady;
        ++count;
    }
    ready_head_ = head;
    ready_tail_ = tail;
    ready_count_ += count;
}

void TimingWheel::cascade(int level, std::uint32_t bucket) {
    const std::uint32_t slot = static_cast<std::uint32_t>(level) * kBucketsPerLevel + bucket;
    std::uint32_t id = buckets_[slot].head;
    buckets_[slot].head = kNil;
    buckets_[slot].tail = kNil;
    occupied_[static_cast<std::size_t>(level)][bucket >> 6] &=
        ~(std::uint64_t{1} << (bucket & 63));
    while (id != kNil) {
        const std::uint32_t next = nodes_[id].next;
        nodes_[id].prev = kNil;
        nodes_[id].next = kNil;
        nodes_[id].home = kHomeNone;
        place(id);  // relative to the advanced cursor: lands one+ level down
        id = next;
    }
}

void TimingWheel::reingest_overflow() {
    // The wheels and the ready list are empty; jump the cursor to the
    // earliest far-future entry and re-place everything relative to it.
    std::uint64_t min_tick = ~std::uint64_t{0};
    for (std::uint32_t id = overflow_head_; id != kNil; id = nodes_[id].next)
        min_tick = std::min(min_tick, tick_of(nodes_[id].time));
    cur_tick_ = std::max(cur_tick_, min_tick);
    std::uint32_t id = overflow_head_;
    overflow_head_ = kNil;
    overflow_tail_ = kNil;
    overflow_count_ = 0;
    while (id != kNil) {
        const std::uint32_t next = nodes_[id].next;
        nodes_[id].prev = kNil;
        nodes_[id].next = kNil;
        nodes_[id].home = kHomeNone;
        place(id);
        id = next;
    }
}

int TimingWheel::scan_occupied(int level, std::uint32_t from) const {
    const auto& words = occupied_[static_cast<std::size_t>(level)];
    std::uint32_t w = from >> 6;
    if (w >= words.size()) return -1;
    std::uint64_t word = words[w] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
        if (word != 0)
            return static_cast<int>(w * 64 + static_cast<std::uint32_t>(std::countr_zero(word)));
        if (++w >= words.size()) return -1;
        word = words[w];
    }
}

void TimingWheel::clear() {
    buckets_.fill(BucketList{});
    for (auto& level : occupied_) level.fill(0);
    ready_head_ = kNil;
    ready_tail_ = kNil;
    overflow_head_ = kNil;
    overflow_tail_ = kNil;
    cur_tick_ = 0;
    size_ = 0;
    ready_count_ = 0;
    overflow_count_ = 0;
    // nodes_ keeps stale key/link state; every id is re-initialized by the
    // insert() that next uses it.
}

}  // namespace capbench::sim
