#include "capbench/sim/random.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace capbench::sim {

std::uint64_t Rng::splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
    // Seed the full 256-bit state from splitmix64, as recommended by the
    // xoshiro authors; guarantees a non-zero state.
    std::uint64_t x = seed;
    for (auto& w : s_) w = splitmix64(x);
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = std::rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::next_below(0)");
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = next_u64();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
    // 53 random bits into [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::next_in: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_exponential(double mean) {
    if (mean <= 0) throw std::invalid_argument("Rng::next_exponential: mean <= 0");
    double u = next_double();
    // Avoid log(0).
    if (u <= 0) u = 0x1.0p-53;
    return -mean * std::log(u);
}

double Rng::next_pareto(double alpha, double xm) {
    if (alpha <= 0 || xm <= 0) throw std::invalid_argument("Rng::next_pareto: bad parameters");
    double u = next_double();
    if (u <= 0) u = 0x1.0p-53;
    return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::next_bool(double p_true) {
    return next_double() < p_true;
}

}  // namespace capbench::sim
