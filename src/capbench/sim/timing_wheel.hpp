// Hierarchical timing wheel (Varghese/Lauck) — the O(1) priority structure
// behind the event queue's "wheel" backend.
//
// The wheel orders externally-owned ids (the event queue's slab slot
// indices) by the same (time, sequence) key as the 4-ary heap backend, so
// pops are deterministic and figure output is byte-identical under either
// backend.  Five levels of 1024 buckets cover 2^50 ns (~13 simulated days)
// of absolute time; events whose tick falls outside the cursor's top-level
// block live on a far-future overflow list that is re-ingested when the
// wheels drain.
//
// Zero steady-state allocation: per-id link/key state lives in a vector
// indexed by id (grown alongside the event queue's slab, never per event)
// and buckets are intrusive doubly-linked lists threaded through that
// state.  Lists are tail-appended so they stay in push-seq order, which
// lets staging splice a level-0 bucket into the ready list without
// sorting.  Erase (cancellation) is an O(1) unlink — the wheel leaves no
// tombstones behind.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "capbench/sim/time.hpp"

namespace capbench::sim {

class TimingWheel {
public:
    TimingWheel();

    /// Inserts `id` with ordering key (time, seq).  `id` must not already
    /// be inserted; the per-id state grows to cover it.
    void insert(std::uint32_t id, SimTime time, std::uint64_t seq);

    /// Removes `id` (which must currently be inserted) in O(1).
    void erase(std::uint32_t id);

    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] std::size_t size() const { return size_; }

    // The peek/pop fast paths are inline: once the ready list is staged
    // they are a couple of loads, and they run once per simulated event.

    /// Time of the earliest entry.  Requires !empty().
    [[nodiscard]] SimTime min_time() {
        if (ready_head_ == kNil) stage();
        return nodes_[ready_head_].time;
    }

    /// Removes and returns the id with the smallest (time, seq) key.
    /// Requires !empty().
    std::uint32_t pop_min() {
        if (ready_head_ == kNil) stage();
        return pop_staged_head();
    }

    /// As pop_min(), also reporting the popped entry's time — one staging
    /// pass instead of the min_time()+pop_min() pair.
    std::uint32_t pop_min(SimTime& time) {
        if (ready_head_ == kNil) stage();
        time = nodes_[ready_head_].time;
        return pop_staged_head();
    }

    /// Drops every entry and rewinds the cursor; keeps capacity.
    void clear();

private:
    // 1024-tick level-0 blocks keep the typical short-horizon event (a few
    // hundred ns out) in level 0 directly, so cascades are rare; five
    // levels still cover 2^50 ns.
    static constexpr int kLevelBits = 10;
    static constexpr int kLevels = 5;
    static constexpr std::uint32_t kBucketsPerLevel = 1u << kLevelBits;
    static constexpr std::uint32_t kBucketMask = kBucketsPerLevel - 1;
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
    // `home` says which list an id is on: a wheel bucket (level *
    // kBucketsPerLevel + bucket index) or one of the sentinels below.
    static constexpr std::uint32_t kHomeNone = 0xFFFFFFFFu;
    static constexpr std::uint32_t kHomeReady = 0xFFFFFFFEu;
    static constexpr std::uint32_t kHomeOverflow = 0xFFFFFFFDu;

    struct Node {
        SimTime time{};
        std::uint64_t seq = 0;
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
        std::uint32_t home = kHomeNone;
    };

    [[nodiscard]] static std::uint64_t tick_of(SimTime t);
    [[nodiscard]] bool key_less(std::uint32_t a, std::uint32_t b) const;

    void place(std::uint32_t id);
    void bucket_push(int level, std::uint32_t bucket, std::uint32_t id);
    void ready_insert_sorted(std::uint32_t id);

    std::uint32_t pop_staged_head() {
        const std::uint32_t id = ready_head_;
        Node& n = nodes_[id];
        ready_head_ = n.next;
        if (ready_head_ != kNil)
            nodes_[ready_head_].prev = kNil;
        else
            ready_tail_ = kNil;
        n.next = kNil;
        n.home = kHomeNone;
        --ready_count_;
        --size_;
        return id;
    }

    /// Ensures the ready list is non-empty: advances the cursor to the
    /// earliest occupied bucket, cascading higher levels down and
    /// re-ingesting the overflow list when the wheels drain.
    void stage();
    void stage_level0_bucket(std::uint32_t bucket);
    void cascade(int level, std::uint32_t bucket);
    void reingest_overflow();

    /// Index of the first occupied bucket >= `from` at `level`, or -1.
    [[nodiscard]] int scan_occupied(int level, std::uint32_t from) const;

    // Bucket lists are appended at the tail so every list stays in push-seq
    // order by construction (see stage_level0_bucket).  Head and tail share
    // a cache line: a bucket touch is one line, not two distant arrays.
    struct BucketList {
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
    };

    std::vector<Node> nodes_;
    std::array<BucketList, kLevels * kBucketsPerLevel> buckets_{};
    std::array<std::array<std::uint64_t, kBucketsPerLevel / 64>, kLevels> occupied_{};
    std::uint32_t ready_head_ = kNil;
    std::uint32_t ready_tail_ = kNil;
    std::uint32_t overflow_head_ = kNil;
    std::uint32_t overflow_tail_ = kNil;
    std::uint64_t cur_tick_ = 0;
    std::size_t size_ = 0;
    std::size_t ready_count_ = 0;
    std::size_t overflow_count_ = 0;
};

}  // namespace capbench::sim
