// Growable circular buffer for hot-path FIFO/deque workloads.
//
// std::deque allocates and frees node blocks as the window slides, which
// puts one malloc every few dozen packets on the NIC-ring, socket-queue and
// scheduler ready-queue paths.  RingBuffer keeps one power-of-two backing
// vector that only ever grows, so pushes and pops are allocation-free in
// steady state.  Elements must be default-constructible and movable;
// popped slots are overwritten with a default-constructed value so held
// resources (PacketPtr, callbacks) are released eagerly.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace capbench::sim {

template <typename T>
class RingBuffer {
public:
    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] std::size_t size() const { return count_; }
    /// Capacity of the backing store (high-water mark diagnostic).
    [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

    [[nodiscard]] T& front() { return buf_[head_]; }
    [[nodiscard]] const T& front() const { return buf_[head_]; }

    void push_back(T value) {
        reserve_one();
        buf_[(head_ + count_) & mask_] = std::move(value);
        ++count_;
    }

    void push_front(T value) {
        reserve_one();
        head_ = (head_ + mask_) & mask_;  // head - 1 mod capacity
        buf_[head_] = std::move(value);
        ++count_;
    }

    void pop_front() {
        buf_[head_] = T{};
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    /// Drops all elements (releasing their resources); keeps the capacity.
    void clear() {
        while (count_ > 0) pop_front();
        head_ = 0;
    }

private:
    void reserve_one() {
        if (count_ < buf_.size()) return;
        const std::size_t new_cap = buf_.empty() ? kInitialCapacity : buf_.size() * 2;
        std::vector<T> grown(new_cap);
        for (std::size_t i = 0; i < count_; ++i)
            grown[i] = std::move(buf_[(head_ + i) & mask_]);
        buf_ = std::move(grown);
        head_ = 0;
        mask_ = buf_.size() - 1;
    }

    static constexpr std::size_t kInitialCapacity = 16;

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t mask_ = 0;
};

}  // namespace capbench::sim
