// Slab-backed priority event queue for the discrete-event simulator.
//
// Events are ordered by (time, sequence number) so that simultaneous events
// run in insertion order, which keeps runs deterministic.  The storage is a
// slab of reusable slots; pushing an event takes a slot from the freelist
// (no allocation in steady state) and cancellation is a generation check —
// no per-event shared_ptr control block.
//
// Two priority backends index the slab behind the identical interface and
// pop in the identical (time, seq) total order, selected per queue (default
// from the CAPBENCH_EVENT_QUEUE environment variable):
//  * kHeap — a 4-ary min-heap of 24-byte (time, seq, slot) entries,
//    O(log n) per operation.  Cancellation is lazy: the slot is released
//    and its callback destroyed immediately, but the heap entry stays as a
//    tombstone until it surfaces; cancelled_backlog() counts those.
//  * kWheel — a hierarchical timing wheel (sim/timing_wheel.*), O(1)
//    amortized push/pop for the dense-timer steady state.  Cancellation
//    unlinks in O(1); the wheel keeps no tombstones, so
//    cancelled_backlog() stays 0.
//
//  * EventHandle is (queue, slot index, generation).  A slot's generation
//    is bumped whenever its event fires or is cancelled, so stale handles —
//    including handles whose slot has since been reused — are inert
//    (ABA-safe).  Handles must not outlive the queue they came from.
//  * Callbacks are InplaceFunction: captures up to ~96 B live inside the
//    slot, so the steady-state event loop performs zero heap allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "capbench/sim/inplace_function.hpp"
#include "capbench/sim/time.hpp"
#include "capbench/sim/timing_wheel.hpp"

namespace capbench::sim {

class EventQueue;

/// Which priority structure an EventQueue indexes its slab with.
enum class EventQueueBackend : std::uint8_t { kHeap, kWheel };

/// "heap" or "wheel".
[[nodiscard]] const char* to_string(EventQueueBackend backend);

/// Reads CAPBENCH_EVENT_QUEUE: unset defaults to kHeap, "heap"/"wheel"
/// select a backend, anything else throws std::runtime_error (the same
/// fail-loudly convention as the CAPBENCH_JOBS family — a typo must not
/// silently benchmark the wrong implementation).
[[nodiscard]] EventQueueBackend event_queue_backend_from_env();

/// Handle to a scheduled event; allows cancellation.  Copyable; all copies
/// refer to the same scheduled event.  A default-constructed handle is
/// inert.  Handles must not be used after their EventQueue is destroyed.
class EventHandle {
public:
    EventHandle() = default;

    /// Cancels the event if it has not fired yet.  Safe to call repeatedly,
    /// after the event ran, and after EventQueue::clear().
    void cancel();

    /// True while the event is still scheduled (not fired, not cancelled).
    [[nodiscard]] bool pending() const;

private:
    friend class EventQueue;
    EventHandle(EventQueue* queue, std::uint32_t slot, std::uint64_t generation)
        : queue_(queue), slot_(slot), generation_(generation) {}

    EventQueue* queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t generation_ = 0;
};

class EventQueue {
public:
    using Action = InplaceFunction;

    /// Lifetime counters (monotonic; survive clear()).
    struct Stats {
        std::uint64_t pushed = 0;
        std::uint64_t executed = 0;
        std::uint64_t cancelled = 0;
    };

    explicit EventQueue(EventQueueBackend backend = event_queue_backend_from_env())
        : backend_(backend) {}

    [[nodiscard]] EventQueueBackend backend() const { return backend_; }

    /// Schedules `action` to run at absolute time `t`.
    EventHandle push(SimTime t, Action action);

    /// True when no live events remain (cancelled events do not count).
    [[nodiscard]] bool empty() const { return live_ == 0; }

    /// Number of live (scheduled, not cancelled) events — the queue-depth
    /// signal.  Lazily-cancelled entries are excluded.
    [[nodiscard]] std::size_t size() const { return live_; }

    /// Cancelled entries still occupying heap positions (they are discarded
    /// when they surface).  Always 0 under the wheel backend, which unlinks
    /// eagerly.  Exposed for stats/diagnostics.
    [[nodiscard]] std::size_t cancelled_backlog() const { return cancelled_backlog_; }

    /// Number of slab slots ever created (capacity high-water mark).
    [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

    /// Time of the earliest live event.  Requires !empty().
    [[nodiscard]] SimTime next_time();

    /// Pops and runs the earliest live event, returning its time.
    /// Requires !empty().
    SimTime pop_and_run();

    /// Drops every pending event and resets the slab and freelist to a
    /// pristine state (capacity is kept).  Outstanding EventHandles become
    /// inert: cancel() and pending() on them are safe no-ops.
    void clear();

    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    friend class EventHandle;

    static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

    enum class SlotState : std::uint8_t { kFree, kScheduled, kCancelled };

    struct Slot {
        Action action;
        std::uint64_t generation = 0;
        std::uint32_t next_free = kNoSlot;
        SlotState state = SlotState::kFree;
    };

    /// Heap entries carry the ordering key so comparisons never chase the
    /// slot indirection.
    struct HeapEntry {
        SimTime time;
        std::uint64_t seq = 0;
        std::uint32_t slot = 0;
    };

    static bool earlier(const HeapEntry& a, const HeapEntry& b) {
        if (a.time != b.time) return a.time < b.time;
        return a.seq < b.seq;
    }

    void cancel(std::uint32_t slot, std::uint64_t generation);
    [[nodiscard]] bool is_pending(std::uint32_t slot, std::uint64_t generation) const;

    std::uint32_t acquire_slot();
    void release_slot(std::uint32_t index);

    // 4-ary min-heap over heap_ ordered by earlier().
    void heap_push(HeapEntry entry);
    void heap_pop_front();
    void sift_down(std::size_t i);

    /// Discards cancelled entries from the heap head until the head is live
    /// (or the heap is empty).
    void purge_cancelled_head();

    EventQueueBackend backend_ = EventQueueBackend::kHeap;
    std::vector<Slot> slots_;
    std::vector<HeapEntry> heap_;  // kHeap backend
    TimingWheel wheel_;            // kWheel backend (ids are slab slot indices)
    std::uint32_t free_head_ = kNoSlot;
    std::uint64_t next_seq_ = 0;
    std::size_t live_ = 0;
    std::size_t cancelled_backlog_ = 0;
    Stats stats_;
};

inline void EventHandle::cancel() {
    if (queue_ != nullptr) queue_->cancel(slot_, generation_);
}

inline bool EventHandle::pending() const {
    return queue_ != nullptr && queue_->is_pending(slot_, generation_);
}

}  // namespace capbench::sim
