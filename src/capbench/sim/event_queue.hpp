// Priority event queue for the discrete-event simulator.
//
// Events are ordered by (time, sequence number) so that simultaneous events
// run in insertion order, which keeps runs deterministic.  Events can be
// cancelled lazily via the handle returned from push(); cancelled events are
// discarded when they reach the head of the queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "capbench/sim/time.hpp"

namespace capbench::sim {

/// Handle to a scheduled event; allows cancellation.
class EventHandle {
public:
    EventHandle() = default;

    /// Cancels the event if it has not fired yet.  Safe to call repeatedly.
    void cancel() {
        if (auto c = cancelled_.lock()) *c = true;
    }

    /// True while the event is still scheduled (not fired, not cancelled).
    [[nodiscard]] bool pending() const {
        auto c = cancelled_.lock();
        return c && !*c;
    }

private:
    friend class EventQueue;
    explicit EventHandle(std::weak_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
    std::weak_ptr<bool> cancelled_;
};

class EventQueue {
public:
    using Action = std::function<void()>;

    /// Schedules `action` to run at absolute time `t`.
    EventHandle push(SimTime t, Action action);

    /// True when no live events remain (cancelled events do not count).
    [[nodiscard]] bool empty();

    /// Number of queued entries, including not-yet-discarded cancelled ones.
    [[nodiscard]] std::size_t size() const { return heap_.size(); }

    /// Time of the earliest live event.  Requires !empty().
    [[nodiscard]] SimTime next_time();

    /// Pops and runs the earliest live event, returning its time.
    /// Requires !empty().
    SimTime pop_and_run();

    /// Drops every pending event.
    void clear();

private:
    struct Event {
        SimTime time;
        std::uint64_t seq = 0;
        Action action;
        std::shared_ptr<bool> cancelled;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    // Removes cancelled events from the head until the head is live (or the
    // heap is empty).  Afterwards heap_.empty() <=> "no live events", because
    // cancellation is detected whenever an event surfaces.
    void drop_cancelled();

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace capbench::sim
