// Simulated-time strong types.
//
// All simulation time is kept in integer nanoseconds to make runs exactly
// reproducible (no floating-point drift in the event queue ordering).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace capbench::sim {

/// A point in simulated time, in nanoseconds since the start of the run.
class SimTime {
public:
    constexpr SimTime() = default;
    constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

    [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
    [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

    friend constexpr auto operator<=>(SimTime, SimTime) = default;

    static constexpr SimTime max() { return SimTime{std::numeric_limits<std::int64_t>::max()}; }

private:
    std::int64_t ns_ = 0;
};

/// A span of simulated time, in nanoseconds.
class Duration {
public:
    constexpr Duration() = default;
    constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

    [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
    [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

    friend constexpr auto operator<=>(Duration, Duration) = default;

    constexpr Duration& operator+=(Duration d) { ns_ += d.ns_; return *this; }
    constexpr Duration& operator-=(Duration d) { ns_ -= d.ns_; return *this; }

    static constexpr Duration zero() { return Duration{0}; }
    static constexpr Duration max() { return Duration{std::numeric_limits<std::int64_t>::max()}; }

private:
    std::int64_t ns_ = 0;
};

constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns() + b.ns()}; }
constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns() - b.ns()}; }
constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns() * k}; }
constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns() / k}; }

constexpr SimTime operator+(SimTime t, Duration d) { return SimTime{t.ns() + d.ns()}; }
constexpr SimTime operator-(SimTime t, Duration d) { return SimTime{t.ns() - d.ns()}; }
constexpr Duration operator-(SimTime a, SimTime b) { return Duration{a.ns() - b.ns()}; }

/// Convenience factories.
constexpr Duration nanoseconds(std::int64_t v) { return Duration{v}; }
constexpr Duration microseconds(std::int64_t v) { return Duration{v * 1'000}; }
constexpr Duration milliseconds(std::int64_t v) { return Duration{v * 1'000'000}; }
constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000'000}; }

/// Converts a floating-point number of seconds, rounding to nearest ns.
constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
}

}  // namespace capbench::sim
