// Small-buffer-optimized move-only callable for the DES hot path.
//
// Every simulated event carries a `void()` callback; with std::function the
// common captures ([this, packet], kernel-work completions) exceed the
// 16-byte SSO and heap-allocate once per event.  InplaceFunction stores
// callables up to kInlineBytes directly in the event slot, so the
// steady-state event loop performs no allocation at all.  Oversized or
// over-aligned callables (rare: chunk-migration continuations that capture
// another InplaceFunction) transparently fall back to the heap, keeping the
// type a drop-in replacement for std::function<void()>.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace capbench::sim {

class InplaceFunction {
public:
    /// Sized to hold the largest hot-path continuation: a CaptureApp batch
    /// chunk ([this, Batch{vector, bytes, Work}, three size_t's] = 96 B).
    static constexpr std::size_t kInlineBytes = 96;

    /// True when callables of type `Fn` are stored inline (no allocation).
    template <typename Fn>
    static constexpr bool fits_inline = sizeof(Fn) <= kInlineBytes &&
                                        alignof(Fn) <= alignof(std::max_align_t) &&
                                        std::is_nothrow_move_constructible_v<Fn>;

    InplaceFunction() noexcept = default;
    InplaceFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
        using Fn = std::decay_t<F>;
        if constexpr (fits_inline<Fn>) {
            ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
            ops_ = &inline_ops<Fn>;
        } else {
            ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
            ops_ = &heap_ops<Fn>;
        }
    }

    InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }

    InplaceFunction& operator=(InplaceFunction&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    InplaceFunction& operator=(std::nullptr_t) noexcept {
        reset();
        return *this;
    }

    InplaceFunction(const InplaceFunction&) = delete;
    InplaceFunction& operator=(const InplaceFunction&) = delete;

    ~InplaceFunction() { reset(); }

    [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

    void operator()() { ops_->invoke(storage_); }

    void reset() noexcept {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

private:
    struct Ops {
        void (*invoke)(void* self);
        /// Move-constructs into `dst` from `src`, then destroys `src`.
        void (*relocate)(void* src, void* dst) noexcept;
        void (*destroy)(void* self) noexcept;
    };

    template <typename Fn>
    static Fn* self(void* p) noexcept {
        return std::launder(reinterpret_cast<Fn*>(p));
    }

    template <typename Fn>
    static constexpr Ops inline_ops = {
        [](void* p) { (*self<Fn>(p))(); },
        [](void* src, void* dst) noexcept {
            ::new (dst) Fn(std::move(*self<Fn>(src)));
            self<Fn>(src)->~Fn();
        },
        [](void* p) noexcept { self<Fn>(p)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heap_ops = {
        [](void* p) { (**self<Fn*>(p))(); },
        // Pointers are trivially destructible: relocation is a plain copy.
        [](void* src, void* dst) noexcept { ::new (dst) Fn*(*self<Fn*>(src)); },
        [](void* p) noexcept { delete *self<Fn*>(p); },
    };

    void move_from(InplaceFunction& other) noexcept {
        if (other.ops_ != nullptr) {
            other.ops_->relocate(other.storage_, storage_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte storage_[kInlineBytes];
    const Ops* ops_ = nullptr;
};

}  // namespace capbench::sim
