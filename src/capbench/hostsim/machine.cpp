#include "capbench/hostsim/machine.hpp"

#include <algorithm>
#include <stdexcept>

#include "capbench/obs/registry.hpp"
#include "capbench/obs/trace.hpp"

namespace capbench::hostsim {

void Thread::exec(const Work& work, CpuState st, Continuation then) {
    machine_->thread_exec(*this, work, st, std::move(then));
}

void Thread::block(Continuation on_wake) {
    machine_->thread_block(*this, std::move(on_wake));
}

void Thread::yield(Continuation then) {
    machine_->thread_yield(*this, std::move(then));
}

Machine::Machine(sim::Simulator& sim, MachineSpec spec, SchedPolicy policy)
    : sim_(&sim), spec_(std::move(spec)), policy_(policy) {
    if (spec_.cores < 1) throw std::invalid_argument("Machine: cores must be >= 1");
    if (spec_.hyperthreading && !spec_.arch.ht_capable)
        throw std::invalid_argument("Machine: architecture is not Hyperthreading-capable");
    const int logical = spec_.hyperthreading ? spec_.cores * 2 : spec_.cores;
    cpus_.resize(static_cast<std::size_t>(logical));
    chunks_.resize(static_cast<std::size_t>(logical));
    kernel_done_.resize(static_cast<std::size_t>(logical));
    kernel_queue_len_cpu_.resize(static_cast<std::size_t>(logical), 0);
}

// ---- CPU state inspection ----------------------------------------------------

bool Machine::cpu_busy(int i) const {
    const auto& cpu = cpus_[static_cast<std::size_t>(i)];
    return cpu.current != nullptr || cpu.kernel_busy_until > sim_->now();
}

bool Machine::any_other_cpu_busy(int i) const {
    for (int c = 0; c < logical_cpus(); ++c) {
        if (c != i && cpu_busy(c)) return true;
    }
    return false;
}

bool Machine::sibling_busy(int i) const {
    if (!spec_.hyperthreading) return false;
    const int sibling = i ^ 1;
    return sibling < logical_cpus() && cpu_busy(sibling);
}

int Machine::pick_idle_cpu() const {
    int best = -1;
    int best_score = 1 << 30;
    // Under heavy interrupt load a CPU servicing an IRQ line makes no
    // thread progress; a real scheduler migrates tasks away from a
    // saturated CPU, so skip any CPU whose kernel queue runs deep (unless
    // it is the only CPU).  With a single-queue NIC only CPU 0 can ever be
    // saturated, which reduces this to the classic "avoid CPU 0" rule.
    const bool skip_saturated = logical_cpus() > 1;
    for (int c = 0; c < logical_cpus(); ++c) {
        if (skip_saturated && kernel_backlog(c) > sim::microseconds(30)) continue;
        if (cpus_[static_cast<std::size_t>(c)].current != nullptr) continue;
        // Prefer CPUs away from the interrupt CPU and with an idle sibling.
        int score = 0;
        if (c == 0 && logical_cpus() > 1) score += 4;
        if (cpus_[static_cast<std::size_t>(c)].kernel_busy_until > sim_->now()) score += 2;
        if (sibling_busy(c)) score += 1;
        if (score < best_score) {
            best_score = score;
            best = c;
        }
    }
    return best;
}

sim::Duration Machine::work_duration(const Work& work, int cpu_index) const {
    const double ns =
        work_duration_ns(spec_.arch, work, any_other_cpu_busy(cpu_index), sibling_busy(cpu_index));
    return sim::Duration{static_cast<std::int64_t>(ns + 0.5)};
}

// ---- observability ------------------------------------------------------------

void Machine::set_trace(obs::TraceSink* trace, int pid) {
    trace_ = trace;
    trace_pid_ = pid;
    if (trace_ == nullptr) return;
    next_trace_tid_ = obs::kThreadTidBase;
    kernel_lane_named_.assign(cpus_.size(), false);
    trace_kernel_name_ = trace_->intern("kernel");
    trace_blocked_name_ = trace_->intern("blocked");
    cat_user_ = trace_->intern("user");
    cat_system_ = trace_->intern("system");
    cat_interrupt_ = trace_->intern("interrupt");
}

void Machine::register_metrics(obs::Registry& registry, const std::string& prefix) {
    ctr_dispatches_ = &registry.counter(prefix + ".sched.dispatches");
    ctr_yields_ = &registry.counter(prefix + ".sched.yields");
    ctr_wakeups_ = &registry.counter(prefix + ".sched.wakeups");
    ctr_migrations_ = &registry.counter(prefix + ".sched.migrations");
    ctr_kernel_items_ = &registry.counter(prefix + ".sched.kernel_items");
}

const char* Machine::state_cat(CpuState st) const {
    switch (st) {
        case CpuState::kUser: return cat_user_;
        case CpuState::kSystem: return cat_system_;
        default: return cat_interrupt_;
    }
}

void Machine::trace_chunk_slice(const Thread& thread, const RunningChunk& chunk) {
    // The slice covers the chunk's own busy time; kernel preemption shows
    // up as overlapping slices on the kernel lane, not as thread time.
    trace_->complete(trace_pid_, thread.trace_tid_, thread.trace_name_,
                     state_cat(chunk.state), chunk.end - chunk.busy, chunk.end);
}

// ---- kernel work --------------------------------------------------------------

void Machine::post_kernel_work_on(int cpu_index, const Work& work, CpuState kind,
                                  Continuation done) {
    if (cpu_index < 0 || cpu_index >= logical_cpus())
        throw std::invalid_argument("Machine::post_kernel_work_on: cpu out of range");
    if (cpu_index != 0) kernel_spread_ = true;
    auto& cpu = cpus_[static_cast<std::size_t>(cpu_index)];
    const sim::Duration dur = work_duration(work, cpu_index);
    const sim::SimTime start = std::max(sim_->now(), cpu.kernel_busy_until);
    const sim::SimTime end = start + dur;
    cpu.kernel_busy_until = end;
    ++kernel_queue_len_;
    ++kernel_queue_len_cpu_[static_cast<std::size_t>(cpu_index)];
    // Each CPU serializes its kernel work, so completion times are
    // non-decreasing per CPU and events at equal times run in push order:
    // completions are strictly FIFO per CPU.  Parking (dur, kind, done) in
    // the ring keeps the scheduled callback capture-tiny.
    kernel_done_[static_cast<std::size_t>(cpu_index)].push_back(
        KernelDone{dur, kind, std::move(done)});
    sim_->schedule_at(end, [this, cpu_index] { kernel_work_complete(cpu_index); });
    if (ctr_kernel_items_) ctr_kernel_items_->inc();

    // Kernel work preempts the thread chunk in flight on this CPU: push
    // its completion out by the stolen time.  A chunk starved for too long
    // is migrated to the ready queue instead (the load balancer pulling a
    // task off a saturated CPU).
    auto& chunk = chunks_[static_cast<std::size_t>(cpu_index)];
    if (chunk.active) {
        chunk.stolen += dur;
        if (logical_cpus() > 1 && chunk.stolen > sim::milliseconds(2)) {
            migrate_chunk(cpu_index);
        } else {
            chunk.event.cancel();
            chunk.end = chunk.end + dur;
            chunk.event =
                sim_->schedule_at(chunk.end, [this, cpu_index] { chunk_complete(cpu_index); });
        }
    }
}

void Machine::kernel_work_complete(int cpu_index) {
    auto& fifo = kernel_done_[static_cast<std::size_t>(cpu_index)];
    KernelDone item = std::move(fifo.front());
    fifo.pop_front();
    cpus_[static_cast<std::size_t>(cpu_index)].account(item.kind, item.dur);
    --kernel_queue_len_;
    --kernel_queue_len_cpu_[static_cast<std::size_t>(cpu_index)];
    if (trace_ && item.dur > sim::Duration::zero()) {
        // Each CPU serializes its kernel work, so [now-dur, now) slices
        // tile that CPU's kernel lane without overlap.
        const int tid = obs::kKernelTid + cpu_index;
        if (cpu_index != 0 && !kernel_lane_named_[static_cast<std::size_t>(cpu_index)]) {
            kernel_lane_named_[static_cast<std::size_t>(cpu_index)] = true;
            trace_->set_thread_name(trace_pid_, tid,
                                    "kernel/cpu" + std::to_string(cpu_index));
        }
        trace_->complete(trace_pid_, tid, trace_kernel_name_, state_cat(item.kind),
                         sim_->now() - item.dur, sim_->now());
    }
    if (item.done) item.done();
    // IRQ affinity can saturate several CPUs at once; a thread parked
    // ready while every CPU ran deep kernel queues has no other wake
    // signal than a queue draining, so retry dispatch here.  Guarded by
    // kernel_spread_: with every IRQ on CPU 0 this retry can never
    // succeed where the existing dispatch points would not, and skipping
    // it keeps the single-queue schedule untouched.
    if (kernel_spread_ && !ready_.empty()) try_dispatch();
}

sim::Duration Machine::kernel_backlog(int cpu_index) const {
    const auto until = cpus_[static_cast<std::size_t>(cpu_index)].kernel_busy_until;
    return until > sim_->now() ? until - sim_->now() : sim::Duration::zero();
}

// ---- scheduling ----------------------------------------------------------------

void Machine::spawn(std::shared_ptr<Thread> thread) {
    if (thread->machine_ != nullptr) throw std::logic_error("Machine::spawn: thread reused");
    thread->machine_ = this;
    Thread* raw = thread.get();
    threads_.push_back(std::move(thread));
    if (trace_ != nullptr) {
        raw->trace_tid_ = next_trace_tid_++;
        raw->trace_name_ = trace_->intern(raw->name());
        trace_->set_thread_name(trace_pid_, raw->trace_tid_, raw->name());
    }
    raw->state_ = Thread::State::kReady;
    raw->resume_ = [raw] { raw->main(); };
    enqueue_ready(*raw, /*woken=*/false);
    try_dispatch();
}

void Machine::wake(Thread& thread) {
    if (thread.state_ != Thread::State::kBlocked || thread.wake_pending_) return;
    thread.wake_pending_ = true;
    sim_->schedule_in(policy_.wakeup_latency, [this, &thread] {
        thread.wake_pending_ = false;
        if (thread.state_ != Thread::State::kBlocked) return;
        thread.state_ = Thread::State::kReady;
        if (ctr_wakeups_) ctr_wakeups_->inc();
        enqueue_ready(thread, /*woken=*/true);
        try_dispatch();
    });
}

void Machine::wake_now(Thread& thread) {
    if (thread.state_ != Thread::State::kBlocked) return;
    thread.state_ = Thread::State::kReady;
    if (ctr_wakeups_) ctr_wakeups_->inc();
    enqueue_ready(thread, /*woken=*/true);
    try_dispatch();
}

void Machine::enqueue_ready(Thread& thread, bool woken) {
    if (woken && policy_.lifo_wakeup)
        ready_.push_front(&thread);
    else
        ready_.push_back(&thread);
}

void Machine::try_dispatch() {
    while (!ready_.empty()) {
        const int cpu_index = pick_idle_cpu();
        if (cpu_index < 0) return;
        Thread* thread = ready_.front();
        ready_.pop_front();
        thread->state_ = Thread::State::kRunning;
        thread->cpu_ = cpu_index;
        cpus_[static_cast<std::size_t>(cpu_index)].current = thread;
        if (ctr_dispatches_) ctr_dispatches_->inc();
        if (trace_ && thread->blocked_since_ >= 0) {
            trace_->complete(trace_pid_, thread->trace_tid_, trace_blocked_name_,
                             trace_blocked_name_, sim::SimTime{thread->blocked_since_},
                             sim_->now());
        }
        thread->blocked_since_ = -1;
        run_continuation(*thread, std::move(thread->resume_));
    }
}

void Machine::run_continuation(Thread& thread, Continuation body) {
    thread.action_taken_ = false;
    body();
    if (!thread.action_taken_) {
        // Continuation ended without exec/block/yield: thread is done.
        thread.state_ = Thread::State::kDone;
        release_cpu(thread);
        try_dispatch();
    }
}

void Machine::release_cpu(Thread& thread) {
    if (thread.cpu_ >= 0) {
        cpus_[static_cast<std::size_t>(thread.cpu_)].current = nullptr;
        thread.cpu_ = -1;
    }
}

void Machine::thread_exec(Thread& thread, const Work& work, CpuState st, Continuation then) {
    if (thread.state_ != Thread::State::kRunning)
        throw std::logic_error("Thread::exec outside running state");
    thread.action_taken_ = true;
    const int cpu_index = thread.cpu_;
    auto& cpu = cpus_[static_cast<std::size_t>(cpu_index)];
    auto& chunk = chunks_[static_cast<std::size_t>(cpu_index)];
    if (chunk.active) throw std::logic_error("Thread::exec: chunk already in flight");

    const sim::Duration dur = work_duration(work, cpu_index);
    // Pending kernel work on this CPU runs first (it has priority).
    const sim::Duration head_of_line =
        cpu.kernel_busy_until > sim_->now() ? cpu.kernel_busy_until - sim_->now()
                                            : sim::Duration::zero();
    chunk.active = true;
    chunk.busy = dur;
    chunk.stolen = sim::Duration::zero();
    chunk.state = st;
    chunk.work = work;
    chunk.then = std::move(then);
    chunk.end = sim_->now() + head_of_line + dur;
    chunk.event = sim_->schedule_at(chunk.end, [this, cpu_index] { chunk_complete(cpu_index); });
}

void Machine::chunk_complete(int cpu_index) {
    auto& chunk = chunks_[static_cast<std::size_t>(cpu_index)];
    auto& cpu = cpus_[static_cast<std::size_t>(cpu_index)];
    Thread* thread = cpu.current;
    if (!chunk.active || thread == nullptr)
        throw std::logic_error("Machine::chunk_complete: no chunk in flight");
    if (sim_->now() != chunk.end)
        throw std::logic_error("Machine::chunk_complete: completion time mismatch");
    chunk.active = false;
    cpu.account(chunk.state, chunk.busy);
    if (trace_) trace_chunk_slice(*thread, chunk);
    run_continuation(*thread, std::move(chunk.then));
}

void Machine::migrate_chunk(int cpu_index) {
    auto& chunk = chunks_[static_cast<std::size_t>(cpu_index)];
    auto& cpu = cpus_[static_cast<std::size_t>(cpu_index)];
    Thread* thread = cpu.current;
    if (!chunk.active || thread == nullptr)
        throw std::logic_error("Machine::migrate_chunk: no chunk in flight");
    chunk.event.cancel();
    chunk.active = false;
    if (ctr_migrations_) ctr_migrations_->inc();
    // Re-execute the chunk's work when re-dispatched (progress made in the
    // interrupt gaps is conservatively discarded).
    thread->resume_ = [this, thread, work = chunk.work, st = chunk.state,
                       then = std::move(chunk.then)]() mutable {
        thread_exec(*thread, work, st, std::move(then));
    };
    chunk.then = nullptr;
    thread->state_ = Thread::State::kReady;
    release_cpu(*thread);
    ready_.push_back(thread);
    sim_->schedule_in(sim::Duration::zero(), [this] { try_dispatch(); });
}

void Machine::thread_block(Thread& thread, Continuation on_wake) {
    if (thread.state_ != Thread::State::kRunning)
        throw std::logic_error("Thread::block outside running state");
    thread.action_taken_ = true;
    thread.state_ = Thread::State::kBlocked;
    thread.blocked_since_ = sim_->now().ns();
    thread.resume_ = std::move(on_wake);
    release_cpu(thread);
    // Give other ready threads the CPU we just freed.  Dispatch from a
    // fresh event to keep the current continuation's stack shallow.
    sim_->schedule_in(sim::Duration::zero(), [this] { try_dispatch(); });
}

void Machine::thread_yield(Thread& thread, Continuation then) {
    if (thread.state_ != Thread::State::kRunning)
        throw std::logic_error("Thread::yield outside running state");
    thread.action_taken_ = true;
    thread.state_ = Thread::State::kReady;
    thread.resume_ = std::move(then);
    if (ctr_yields_) ctr_yields_->inc();
    release_cpu(thread);
    if (policy_.lifo_yield)
        ready_.push_front(&thread);
    else
        ready_.push_back(&thread);
    sim_->schedule_in(sim::Duration::zero(), [this] { try_dispatch(); });
}

// ---- accounting ---------------------------------------------------------------

sim::Duration Machine::total_busy() const {
    sim::Duration sum{};
    for (const auto& cpu : cpus_) sum += cpu.busy();
    return sum;
}

double Machine::utilization_since(sim::Duration busy_at_start, sim::Duration window) const {
    if (window <= sim::Duration::zero()) return 0.0;
    const auto busy = total_busy() - busy_at_start;
    return std::min(1.0, busy.seconds() / (window.seconds() * logical_cpus()));
}

}  // namespace capbench::hostsim
