// Processor architecture model: Intel Xeon vs. AMD Opteron (Section 2.4).
//
// The thesis explains the performance gap between the two architectures by
// how they reach memory: every Xeon shares one front side bus to the
// Northbridge-attached memory with the other processor and all I/O, while
// each Opteron has an integrated memory controller and dedicated
// HyperTransport links.  We model exactly that distinction:
//
//  * `cycles` work scales with the clock (Xeon 3.06 GHz beats the 1.8 GHz
//    Opteron on pure computation — visible in the zlib experiments,
//    Figure 6.11, the one case where the Intel machines win);
//  * `mem_misses` work scales with memory latency, multiplied by a
//    contention factor when another CPU is busy (the FSB penalty — this is
//    what makes the capture path, which is dominated by cache misses on
//    fresh packet data and kernel structures, faster on the Opterons);
//  * `copy_bytes` work scales with streaming copy cost per byte, with a
//    cache-spill penalty once the working set far exceeds the cache
//    (responsible for the single-CPU FreeBSD degradation with very large
//    BPF buffers, Figure 6.4(a)).
#pragma once

#include <cstdint>
#include <string>

namespace capbench::hostsim {

struct ArchSpec {
    std::string name;
    double clock_hz = 2e9;
    double mem_latency_ns = 100.0;   // per cache miss, uncontended
    double mem_contention = 1.0;     // miss/copy multiplier when another CPU is busy
    double copy_ns_per_byte = 0.4;   // streaming copy, cache-friendly working set
    std::uint32_t cache_kb = 512;    // L2 size, for the spill penalty
    double spill_factor = 1.0;       // extra copy cost multiplier at full spill
    bool ht_capable = false;
    double ht_sibling_slowdown = 1.6;  // duration multiplier when the HT sibling is busy

    /// Dual Intel Xeon 3.06 GHz, 512 kB cache, shared FSB (snipe/flamingo).
    static const ArchSpec& intel_xeon();

    /// Dual AMD Opteron 244 (1.8 GHz), 1024 kB cache, on-die memory
    /// controller and HyperTransport (swan/moorhen).
    static const ArchSpec& amd_opteron();
};

/// A unit of work to execute on a CPU, split by what limits it.
struct Work {
    double cycles = 0.0;
    double mem_misses = 0.0;
    double copy_bytes = 0.0;
    /// Working-set size driving the cache-spill penalty for the copy part;
    /// 0 means "fits in cache".
    double working_set_bytes = 0.0;

    Work& operator+=(const Work& other) {
        cycles += other.cycles;
        mem_misses += other.mem_misses;
        copy_bytes += other.copy_bytes;
        if (other.working_set_bytes > working_set_bytes)
            working_set_bytes = other.working_set_bytes;
        return *this;
    }

    [[nodiscard]] Work scaled(double factor) const {
        return Work{cycles * factor, mem_misses * factor, copy_bytes * factor,
                    working_set_bytes};
    }
};

/// Nanoseconds `work` takes on `arch`, given whether another CPU is
/// currently busy (FSB contention) and whether the HT sibling is busy.
double work_duration_ns(const ArchSpec& arch, const Work& work, bool other_cpu_busy,
                        bool sibling_busy);

}  // namespace capbench::hostsim
