// Machine model: logical CPUs, kernel work queue, and a small preemptive
// scheduler for capture-application threads.
//
// Execution model (Section 2.2.1 "receive interrupt load"):
//  * Kernel work (interrupt handlers, softirq processing) is serialized
//    per CPU and has absolute priority: while kernel work is pending on a
//    CPU, the thread running there makes no progress.  Single-queue NICs
//    direct every interrupt at CPU 0 — as on the 2005 systems, where the
//    NIC's interrupt line was serviced by one processor — which is what
//    produces receive livelock on single-processor configurations and the
//    large benefit of the second processor.  Multi-queue NICs spread their
//    per-queue IRQ lines across CPUs (post_kernel_work_on), turning the
//    same model into the RSS scaling story.
//  * Threads are cooperative units that issue work chunks (exec) and block
//    on kernel objects (buffers, queues, pipes, disks); the scheduler
//    dispatches ready threads onto idle CPUs.  Wakeup order is a policy
//    knob: FreeBSD inserts woken threads at the tail of the ready queue
//    (even sharing, Section 1.2), Linux at the head (the "one application
//    sees five percent, another nearly all" behaviour under overload).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "capbench/hostsim/arch.hpp"
#include "capbench/hostsim/cpu.hpp"
#include "capbench/sim/inplace_function.hpp"
#include "capbench/sim/ring_buffer.hpp"
#include "capbench/sim/simulator.hpp"

namespace capbench::obs {
class Counter;
class Registry;
class TraceSink;
}

namespace capbench::hostsim {

class Machine;

/// Continuation type for thread and kernel-work callbacks.  Small captures
/// (including whole processing batches) are stored inline; see
/// sim::InplaceFunction.
using Continuation = sim::InplaceFunction;

/// Cooperative thread written in continuation-passing style: each
/// continuation must end by calling exactly one of exec() / block() /
/// yield(), or return without any of them to terminate the thread.
class Thread {
public:
    explicit Thread(std::string name) : name_(std::move(name)) {}
    virtual ~Thread() = default;

    Thread(const Thread&) = delete;
    Thread& operator=(const Thread&) = delete;

    /// Entry point, run when the thread is first dispatched.
    virtual void main() = 0;

    enum class State : std::uint8_t { kNew, kReady, kRunning, kBlocked, kDone };

    [[nodiscard]] State state() const { return state_; }
    [[nodiscard]] const std::string& name() const { return name_; }

protected:
    /// Consumes CPU for `work`, accounted as `st`, then continues with
    /// `then`.  Only legal while running.
    void exec(const Work& work, CpuState st, Continuation then);

    /// Deschedules until wake(); `on_wake` runs when re-dispatched.
    void block(Continuation on_wake);

    /// Goes to the back of the ready queue; `then` runs when re-dispatched.
    void yield(Continuation then);

    [[nodiscard]] Machine& machine() const { return *machine_; }

private:
    friend class Machine;
    std::string name_;
    Machine* machine_ = nullptr;
    State state_ = State::kNew;
    int cpu_ = -1;
    bool action_taken_ = false;   // set by exec/block/yield within a continuation
    bool wake_pending_ = false;   // a delayed wakeup is in flight
    int trace_tid_ = -1;          // timeline lane; assigned at spawn when traced
    /// Sink-interned copy of name_ for slice events: the sink outlives the
    /// machine (the CLI serializes after the testbed is gone), so events
    /// must never point into thread-owned strings.
    const char* trace_name_ = nullptr;
    std::int64_t blocked_since_ = -1;  // ns; -1 = not in a blocked span
    Continuation resume_;
};

struct MachineSpec {
    ArchSpec arch;
    int cores = 2;
    bool hyperthreading = false;
};

struct SchedPolicy {
    bool lifo_wakeup = false;             // Linux: true; FreeBSD: false
    sim::Duration wakeup_latency{500'000};  // block() -> runnable delay
    /// Linux 2.6 keeps the running task running (long timeslices, LIFO
    /// requeue): a thread that yields goes back to the FRONT of the ready
    /// queue and keeps its CPU while it has work.  FreeBSD round-robins.
    bool lifo_yield = false;
    /// How many batches an application processes before voluntarily
    /// yielding: 1 approximates FreeBSD's tight round-robin; larger values
    /// approximate Linux 2.6's long timeslices, which is what lets one
    /// capturing application starve the others under overload
    /// (Section 6.3.3).
    int yield_every_batches = 1;
};

class Machine {
public:
    Machine(sim::Simulator& sim, MachineSpec spec, SchedPolicy policy);

    [[nodiscard]] sim::Simulator& sim() const { return *sim_; }
    [[nodiscard]] const MachineSpec& spec() const { return spec_; }
    [[nodiscard]] int logical_cpus() const { return static_cast<int>(cpus_.size()); }
    [[nodiscard]] const Cpu& cpu(int i) const { return cpus_[static_cast<std::size_t>(i)]; }

    // ---- kernel side -------------------------------------------------------

    /// Queues `work` on CPU 0 with absolute priority; `done` runs at its
    /// completion time (delivery semantics: a packet reaches the capture
    /// stack only once its processing is paid for).
    void post_kernel_work(const Work& work, CpuState kind, Continuation done) {
        post_kernel_work_on(0, work, kind, std::move(done));
    }

    /// Queues `work` on a specific CPU — the IRQ-affinity path of
    /// multi-queue NICs (queue i interrupts CPU affinity[i]).  Kernel work
    /// is serialized and has absolute priority per CPU.
    void post_kernel_work_on(int cpu, const Work& work, CpuState kind, Continuation done);

    /// Number of kernel work items queued but not yet completed across all
    /// CPUs.
    [[nodiscard]] std::size_t kernel_queue_len() const { return kernel_queue_len_; }

    /// Kernel work items queued but not yet completed on one CPU (the
    /// per-CPU netdev backlog / ifqueue occupancy).
    [[nodiscard]] std::size_t kernel_queue_len(int cpu) const {
        return kernel_queue_len_cpu_[static_cast<std::size_t>(cpu)];
    }

    /// How far CPU 0's kernel queue tail is ahead of now.
    [[nodiscard]] sim::Duration kernel_backlog() const { return kernel_backlog(0); }

    /// How far `cpu`'s kernel queue tail is ahead of now.
    [[nodiscard]] sim::Duration kernel_backlog(int cpu) const;

    // ---- threads -----------------------------------------------------------

    /// Registers and readies a thread.  The machine keeps it alive.
    void spawn(std::shared_ptr<Thread> thread);

    /// Makes a blocked thread runnable after the policy's wakeup latency.
    /// No-op when the thread is already runnable or has a wakeup in flight.
    void wake(Thread& thread);

    /// Immediate wakeup (timer expiry path).
    void wake_now(Thread& thread);

    /// True when runnable threads are waiting for a CPU (used by
    /// cooperative threads to decide whether a timeslice has "expired").
    [[nodiscard]] bool ready_pending() const { return !ready_.empty(); }

    // ---- accounting --------------------------------------------------------

    /// Sum of busy time over all CPUs (for utilization: divide by
    /// logical_cpus() * window).
    [[nodiscard]] sim::Duration total_busy() const;

    /// Machine-wide utilization in [0, 1] over a window given a snapshot of
    /// total_busy() taken at the window start.
    [[nodiscard]] double utilization_since(sim::Duration busy_at_start,
                                           sim::Duration window) const;

    /// Nanoseconds `work` takes right now on CPU `cpu_index` (contention
    /// and HT sibling state are sampled at call time).
    [[nodiscard]] sim::Duration work_duration(const Work& work, int cpu_index) const;

    // ---- observability -----------------------------------------------------

    /// Emits CPU slices, thread run/block spans and kernel-work slices into
    /// `trace` under process id `pid`.  Must be installed before threads
    /// are spawned; null disables tracing (hooks are branch-guarded).
    void set_trace(obs::TraceSink* trace, int pid);

    /// Registers scheduler counters (`<prefix>.sched.*`) in `registry`.
    void register_metrics(obs::Registry& registry, const std::string& prefix);

private:
    friend class Thread;

    [[nodiscard]] bool cpu_busy(int i) const;
    [[nodiscard]] bool any_other_cpu_busy(int i) const;
    [[nodiscard]] bool sibling_busy(int i) const;
    [[nodiscard]] int pick_idle_cpu() const;  // -1 when none

    void enqueue_ready(Thread& thread, bool woken);
    void try_dispatch();
    void run_continuation(Thread& thread, Continuation body);
    void release_cpu(Thread& thread);
    void chunk_complete(int cpu_index);
    void kernel_work_complete(int cpu_index);

    void thread_exec(Thread& thread, const Work& work, CpuState st, Continuation then);
    void thread_block(Thread& thread, Continuation on_wake);
    void thread_yield(Thread& thread, Continuation then);

    struct RunningChunk {
        bool active = false;
        sim::SimTime end{};
        sim::Duration busy{};
        sim::Duration stolen{};  // time taken by preempting kernel work
        CpuState state = CpuState::kUser;
        Work work;               // for re-execution after migration
        Continuation then;
        sim::EventHandle event;
    };

    /// Pending kernel-work completion (each CPU serializes its kernel
    /// work, so completions run strictly FIFO per CPU; the ring replaces a
    /// per-item heap-allocated closure in the event queue).
    struct KernelDone {
        sim::Duration dur{};
        CpuState kind = CpuState::kInterrupt;
        Continuation done;
    };

    /// Moves the thread whose chunk on `cpu_index` has been starved by
    /// kernel work back to the ready queue (load-balancer migration).
    void migrate_chunk(int cpu_index);

    sim::Simulator* sim_;
    MachineSpec spec_;
    SchedPolicy policy_;
    std::vector<Cpu> cpus_;
    std::vector<RunningChunk> chunks_;  // one per cpu
    sim::RingBuffer<Thread*> ready_;
    std::vector<sim::RingBuffer<KernelDone>> kernel_done_;  // one FIFO per cpu
    std::vector<std::shared_ptr<Thread>> threads_;
    std::size_t kernel_queue_len_ = 0;
    std::vector<std::size_t> kernel_queue_len_cpu_;
    /// True once kernel work has been posted to a CPU other than 0.  Only
    /// then does kernel_work_complete() retry thread dispatch — with every
    /// IRQ on CPU 0 (the single-queue world) the retry can never be needed
    /// and skipping it keeps that path's schedule byte-identical.
    bool kernel_spread_ = false;

    // Observability (all null/zero when disabled).
    obs::TraceSink* trace_ = nullptr;
    int trace_pid_ = 0;
    int next_trace_tid_ = 0;
    /// Kernel lanes above CPU 0 are named lazily, on the first slice they
    /// carry, so single-queue traces emit no extra metadata records.
    std::vector<bool> kernel_lane_named_;
    const char* trace_kernel_name_ = nullptr;
    const char* trace_blocked_name_ = nullptr;
    const char* cat_user_ = nullptr;
    const char* cat_system_ = nullptr;
    const char* cat_interrupt_ = nullptr;
    obs::Counter* ctr_dispatches_ = nullptr;
    obs::Counter* ctr_yields_ = nullptr;
    obs::Counter* ctr_wakeups_ = nullptr;
    obs::Counter* ctr_migrations_ = nullptr;
    obs::Counter* ctr_kernel_items_ = nullptr;

    [[nodiscard]] const char* state_cat(CpuState st) const;
    void trace_chunk_slice(const Thread& thread, const RunningChunk& chunk);
};

}  // namespace capbench::hostsim
