#include "capbench/hostsim/arch.hpp"

#include <algorithm>
#include <cmath>

namespace capbench::hostsim {

const ArchSpec& ArchSpec::intel_xeon() {
    static const ArchSpec spec{
        .name = "Intel Xeon 3.06GHz",
        .clock_hz = 3.06e9,
        .mem_latency_ns = 185.0,
        .mem_contention = 1.45,
        .copy_ns_per_byte = 0.48,
        .cache_kb = 512,
        .spill_factor = 2.1,
        .ht_capable = true,
        .ht_sibling_slowdown = 1.6,
    };
    return spec;
}

const ArchSpec& ArchSpec::amd_opteron() {
    static const ArchSpec spec{
        .name = "AMD Opteron 244",
        .clock_hz = 1.8e9,
        .mem_latency_ns = 82.0,
        .mem_contention = 1.06,
        .copy_ns_per_byte = 0.31,
        .cache_kb = 1024,
        .spill_factor = 1.5,
        .ht_capable = false,
        .ht_sibling_slowdown = 1.0,
    };
    return spec;
}

double work_duration_ns(const ArchSpec& arch, const Work& work, bool other_cpu_busy,
                        bool sibling_busy) {
    const double contention = other_cpu_busy ? arch.mem_contention : 1.0;

    // Cache-spill: ramps from 1x (working set <= cache) to spill_factor
    // (working set >= 64x cache) on a log scale.
    double spill = 1.0;
    const double cache_bytes = static_cast<double>(arch.cache_kb) * 1024.0;
    if (work.working_set_bytes > cache_bytes && work.copy_bytes > 0.0) {
        const double ratio = work.working_set_bytes / cache_bytes;
        const double t = std::min(std::log2(ratio) / 6.0, 1.0);
        spill = 1.0 + (arch.spill_factor - 1.0) * t;
    }

    double ns = work.cycles / arch.clock_hz * 1e9;
    ns += work.mem_misses * arch.mem_latency_ns * contention;
    ns += work.copy_bytes * arch.copy_ns_per_byte * contention * spill;
    if (sibling_busy) ns *= arch.ht_sibling_slowdown;
    return ns;
}

}  // namespace capbench::hostsim
