// One logical CPU with time accounting by state.
#pragma once

#include <array>
#include <cstdint>

#include "capbench/sim/time.hpp"

namespace capbench::hostsim {

class Thread;

/// The CPU states tracked by cpusage (Chapter 5): user code, system
/// (syscalls / softirq), hardware interrupt handling, idle.
enum class CpuState : std::uint8_t { kUser = 0, kSystem, kInterrupt, kIdle };
inline constexpr std::size_t kCpuStateCount = 4;

class Cpu {
public:
    /// Adds `d` to the accumulated time of `state`.
    void account(CpuState state, sim::Duration d) {
        ns_[static_cast<std::size_t>(state)] += d.ns();
    }

    /// Accumulated time in `state` (idle is not tracked directly; see
    /// busy_ns()).
    [[nodiscard]] sim::Duration in_state(CpuState state) const {
        return sim::Duration{ns_[static_cast<std::size_t>(state)]};
    }

    /// Total non-idle time.
    [[nodiscard]] sim::Duration busy() const {
        return sim::Duration{ns_[0] + ns_[1] + ns_[2]};
    }

    // -- kernel work queue tail (irq/softirq has absolute priority) --
    sim::SimTime kernel_busy_until{};

    // -- thread currently dispatched here (nullptr when none) --
    Thread* current = nullptr;

private:
    std::array<std::int64_t, kCpuStateCount> ns_{};
};

}  // namespace capbench::hostsim
