// The attach-time BPF verifier.
//
// Composes the exact-opcode validator with the analysis pipeline — CFG,
// dominator tree, liveness, abstract interpretation, guard analysis — into
// one verdict: severity-ranked findings plus the per-instruction FactTable
// the execution tiers consume.  Error findings are what a kernel would
// refuse to attach (malformed opcodes, wild jumps, fallthrough past the
// end, no reachable return); warnings are legal-but-wrong programs;
// info findings carry proven facts (return ranges, elidable checks, dead
// stores).
//
// `verify_or_throw` is the gate every capture stack attaches through
// (capture::FilterRunner::install): a rejected program never reaches the
// packet path, which is what lets the threaded tier drop its per-packet
// checks.
#pragma once

#include <string>
#include <vector>

#include "capbench/bpf/analysis/fact_table.hpp"
#include "capbench/bpf/analysis/findings.hpp"
#include "capbench/bpf/insn.hpp"

namespace capbench::bpf {

struct VerifyResult {
    /// Severity-ranked: every error first, then warnings, then infos;
    /// instruction order within each rank.
    std::vector<analysis::Finding> findings;
    /// Empty for programs that fail validation (no analysis ran).
    analysis::FactTable facts;

    [[nodiscard]] bool ok() const;
    /// The highest-ranked error finding; nullptr when ok().
    [[nodiscard]] const analysis::Finding* first_error() const;
};

VerifyResult verify(const Program& prog);

/// Throws std::invalid_argument carrying the first structured finding
/// ("BPF verifier rejected filter: insn 3: error: ...") when the program
/// produces any error finding.
void verify_or_throw(const Program& prog);

}  // namespace capbench::bpf
