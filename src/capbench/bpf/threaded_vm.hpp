// Tier-1 BPF execution: a token-threaded dispatcher over DecodedProgram.
//
// On GCC/Clang each handler ends in a computed goto through a per-token
// label table (one indirect branch per instruction, predicted per site);
// other compilers fall back to a dense switch over the same handler
// bodies.  Both produce results bit-identical to Vm::run on the source
// program: same accept_len, same insns_executed, same abort behavior —
// the decoder only removes work the verifier proved redundant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "capbench/bpf/decoded.hpp"
#include "capbench/bpf/vm.hpp"

namespace capbench::bpf {

class ThreadedVm {
public:
    static VmResult run(const DecodedProgram& prog, std::span<const std::byte> data,
                        std::uint32_t wire_len);

    static VmResult run(const DecodedProgram& prog, std::span<const std::byte> data) {
        return run(prog, data, static_cast<std::uint32_t>(data.size()));
    }

    /// True when this build dispatches via computed goto rather than the
    /// switch fallback.
    static bool computed_goto();
};

}  // namespace capbench::bpf
