#include "capbench/bpf/analysis/optimize.hpp"

#include <cstdint>
#include <vector>

#include "capbench/bpf/analysis/interp.hpp"
#include "capbench/bpf/analysis/liveness.hpp"
#include "capbench/bpf/validator.hpp"

namespace capbench::bpf::analysis {

namespace {

// Liveness (live-out masks, static dead-store flags, insn_uses/insn_defs)
// comes from the shared analysis module — the same computation the fact
// table feeds to the decode/jit tiers.  Only live-in is derived here,
// because edge retargeting is the one consumer that needs it:
// in[i] = uses(i) | (out[i] & ~defs(i)).

using LiveSet = std::uint32_t;

std::vector<LiveSet> live_in_of(const Program& prog, const Liveness& lv) {
    std::vector<LiveSet> in(prog.size());
    for (std::size_t i = 0; i < prog.size(); ++i)
        in[i] = insn_uses(prog[i]) | (lv.live_out[i] & ~insn_defs(prog[i]));
    return in;
}

// ---------------------------------------------------------------------------
// Pass 1: local rewrites from the joined in-state of each instruction.

bool rewrite(Program& prog, const InterpResult& ir) {
    bool changed = false;
    const std::size_t n = prog.size();
    for (std::size_t pc = 0; pc < n; ++pc) {
        if (!ir.in[pc]) continue;
        const AbsState& st = *ir.in[pc];
        Insn& insn = prog[pc];
        const std::uint16_t code = insn.code;
        switch (bpf_class(code)) {
            case BPF_JMP: {
                if (bpf_op(code) == BPF_JA) {
                    // Jump straight to a RET: hoist the RET over the jump.
                    const std::size_t t = pc + 1 + insn.k;
                    if (t < n && bpf_class(prog[t].code) == BPF_RET) {
                        insn = prog[t];
                        changed = true;
                    }
                    break;
                }
                if (insn.jt == insn.jf) {  // degenerate conditional
                    insn = stmt(BPF_JMP | BPF_JA, insn.jt);
                    changed = true;
                    break;
                }
                auto outcome = cond_outcome(insn, st);
                if (!outcome) {
                    // compare() may be undecided while one edge is still
                    // infeasible (e.g. contradictory known bits).
                    if (!refine_edge(insn, st, true))
                        outcome = false;
                    else if (!refine_edge(insn, st, false))
                        outcome = true;
                }
                if (outcome) {
                    insn = stmt(BPF_JMP | BPF_JA, *outcome ? insn.jt : insn.jf);
                    changed = true;
                }
                break;
            }
            case BPF_RET:
                if (bpf_rval(code) == BPF_A && st.a.is_constant()) {
                    insn = stmt(BPF_RET | BPF_K, st.a.constant_value());
                    changed = true;
                }
                break;
            case BPF_ALU: {
                const bool use_x = bpf_src(code) == BPF_X && bpf_op(code) != BPF_NEG;
                if (bpf_op(code) == BPF_DIV && use_x && st.x.contains(0))
                    break;  // the rejection on X == 0 must stay
                AbsState probe = st;
                if (!apply(insn, probe)) break;  // always rejects: leave it
                if (probe.a.is_constant()) {
                    insn = stmt(BPF_LD | BPF_IMM, probe.a.constant_value());
                    changed = true;
                } else if (bpf_op(code) == BPF_DIV && use_x && st.x.is_constant()) {
                    insn = stmt(BPF_ALU | BPF_DIV | BPF_K, st.x.constant_value());
                    changed = true;
                }
                break;
            }
            case BPF_LD:
            case BPF_LDX: {
                if (bpf_mode(code) == BPF_IMM) break;
                if (!load_known_safe(insn, st)) break;
                AbsState probe = st;
                if (!apply(insn, probe)) break;
                const AbsVal& result = bpf_class(code) == BPF_LD ? probe.a : probe.x;
                if (result.is_constant()) {
                    insn = bpf_class(code) == BPF_LD
                               ? stmt(BPF_LD | BPF_IMM, result.constant_value())
                               : stmt(BPF_LDX | BPF_W | BPF_IMM, result.constant_value());
                    changed = true;
                }
                break;
            }
            default:
                break;
        }
    }
    return changed;
}

// ---------------------------------------------------------------------------
// Pass 2: edge retargeting.  From a jump edge's refined state, walk forward
// skipping instructions that are redundant or decided along this particular
// path, and point the edge at the first instruction that still matters.

/// Walks from `start` with the edge's abstract state.  `opt_*` hold the
/// register contents the retargeted machine actually has (frozen at the
/// edge); `orig` evolves as the original machine would.  A skipped load
/// whose value differs from the frozen contents makes that register
/// "pending": the walk may only land where the pending register is dead.
std::size_t walk_edge(const Program& prog, const AbsState& edge_state, std::size_t start,
                      const std::vector<LiveSet>& live_in, std::size_t max_dest) {
    const std::size_t n = prog.size();
    AbsState orig = edge_state;
    const AbsVal opt_a = edge_state.a;
    const AbsVal opt_x = edge_state.x;
    const Sym opt_a_sym = edge_state.a_sym;
    const Sym opt_x_sym = edge_state.x_sym;
    bool pending_a = false;
    bool pending_x = false;

    std::size_t cur = start;
    std::size_t best = start;
    for (int steps = 0; steps < 512; ++steps) {
        if (cur >= n) return best;
        const LiveSet pending =
            (pending_a ? kLiveA : 0u) | (pending_x ? kLiveX : 0u);
        if (cur > max_dest) return best;  // forward walk: no candidates left
        if ((pending & live_in[cur]) == 0) best = cur;

        const Insn& insn = prog[cur];
        const std::uint16_t code = insn.code;
        switch (bpf_class(code)) {
            case BPF_RET:
                return best;
            case BPF_JMP: {
                if (bpf_op(code) == BPF_JA) {
                    cur = cur + 1 + insn.k;
                    break;
                }
                const auto outcome = cond_outcome(insn, orig);
                if (!outcome) return best;
                auto next = refine_edge(insn, orig, *outcome);
                if (!next) return best;
                orig = std::move(*next);
                cur = cur + 1 + (*outcome ? insn.jt : insn.jf);
                break;
            }
            case BPF_LD:
            case BPF_LDX: {
                // Skippable only if it provably cannot reject at runtime.
                if (!load_known_safe(insn, orig)) return best;
                const Sym sym = load_sym(insn, orig);
                if (!apply(insn, orig)) return best;
                if (bpf_class(code) == BPF_LD) {
                    const bool same =
                        (sym.valid() && opt_a_sym == sym) ||
                        (orig.a.is_constant() && opt_a.is_constant() &&
                         orig.a.constant_value() == opt_a.constant_value());
                    pending_a = !same;
                } else {
                    const bool same =
                        (sym.valid() && opt_x_sym == sym) ||
                        (orig.x.is_constant() && opt_x.is_constant() &&
                         orig.x.constant_value() == opt_x.constant_value());
                    pending_x = !same;
                }
                break;
            }
            default:
                // Stores, ALU, MISC: stop — tracking their pending effects
                // through scratch memory is not worth the complexity.
                return best;
        }
        if (bpf_class(code) == BPF_LD || bpf_class(code) == BPF_LDX) ++cur;
    }
    return best;
}

bool edge_skip(Program& prog, const InterpResult& ir,
               const std::vector<LiveSet>& live_in) {
    bool changed = false;
    const std::size_t n = prog.size();
    for (std::size_t pc = 0; pc < n; ++pc) {
        if (!ir.in[pc]) continue;
        Insn& insn = prog[pc];
        if (bpf_class(insn.code) != BPF_JMP) continue;
        if (bpf_op(insn.code) == BPF_JA) {
            const std::size_t target = pc + 1 + insn.k;
            if (target >= n) continue;
            const std::size_t dest =
                walk_edge(prog, *ir.in[pc], target, live_in, n - 1);
            if (dest != target) {
                insn.k = static_cast<std::uint32_t>(dest - pc - 1);
                changed = true;
            }
            continue;
        }
        for (const bool taken : {true, false}) {
            const std::uint8_t off = taken ? insn.jt : insn.jf;
            const std::size_t target = pc + 1 + off;
            if (target >= n) continue;
            const auto edge = refine_edge(insn, *ir.in[pc], taken);
            if (!edge) continue;  // infeasible edge; rewrite() folds it
            const std::size_t max_dest = pc + 1 + 255;  // jt/jf are 8-bit
            const std::size_t dest = walk_edge(prog, *edge, target, live_in, max_dest);
            if (dest != target) {
                const auto new_off = static_cast<std::uint8_t>(dest - pc - 1);
                if (taken)
                    insn.jt = new_off;
                else
                    insn.jf = new_off;
                changed = true;
            }
        }
    }
    return changed;
}

// ---------------------------------------------------------------------------
// Pass 3: instruction removal + jump remapping.

/// True when executing `insn` in state `st` cannot reject the packet.
bool never_rejects(const Insn& insn, const AbsState& st) {
    const std::uint16_t code = insn.code;
    switch (bpf_class(code)) {
        case BPF_LD:
        case BPF_LDX:
            return load_known_safe(insn, st);
        case BPF_ST:
        case BPF_STX:
            return insn.k < kMemWords;
        case BPF_ALU:
            if (bpf_op(code) != BPF_DIV) return true;
            if (bpf_src(code) == BPF_K) return insn.k != 0;
            return !st.x.contains(0);
        case BPF_MISC:
            return true;
        default:
            return false;
    }
}

/// A load whose destination register already holds exactly the loaded value.
bool redundant_load(const Insn& insn, const AbsState& st) {
    const std::uint16_t code = insn.code;
    if (bpf_class(code) != BPF_LD && bpf_class(code) != BPF_LDX) return false;
    const bool to_a = bpf_class(code) == BPF_LD;
    const AbsVal& reg = to_a ? st.a : st.x;
    const Sym& reg_sym = to_a ? st.a_sym : st.x_sym;
    if (bpf_mode(code) == BPF_IMM)
        return reg.is_constant() && reg.constant_value() == insn.k;
    if (!load_known_safe(insn, st)) return false;
    const Sym sym = load_sym(insn, st);
    if (sym.valid() && sym == reg_sym) return true;
    if (bpf_mode(code) == BPF_MEM && insn.k < kMemWords) {
        const AbsVal& slot = st.mem[insn.k];
        return slot.is_constant() && reg.is_constant() &&
               slot.constant_value() == reg.constant_value();
    }
    return false;
}

/// Removal runs in two flavours that must not be mixed within one sweep:
/// redundant-load removal is justified by the defining instruction staying,
/// while dead-def removal is justified by the redefining instruction
/// staying.  Marking both in the same sweep lets each justify the other
/// and deletes a live value (e.g. back-to-back `ld len`: the first is a
/// dead def because of the second, the second redundant because of the
/// first).  The optimize() fixpoint loop tries kRedundant first, then
/// kDeadDefs with freshly recomputed liveness.
enum class RemovalKind { kRedundant, kDeadDefs };

bool removal(Program& prog, const InterpResult& ir, const Liveness& lv,
             RemovalKind kind) {
    const std::size_t n = prog.size();
    std::vector<bool> keep(n, true);
    bool changed = false;
    for (std::size_t pc = 0; pc < n; ++pc) {
        const Insn& insn = prog[pc];
        if (!ir.in[pc]) {
            keep[pc] = false;  // unreachable
        } else if (bpf_class(insn.code) == BPF_JMP && bpf_op(insn.code) == BPF_JA &&
                   insn.k == 0) {
            keep[pc] = false;  // no-op jump
        } else if (kind == RemovalKind::kRedundant) {
            if (redundant_load(insn, *ir.in[pc])) keep[pc] = false;
        } else {
            // Two dead-def justifications, OR'd: the shared static flag
            // (never-rejecting by instruction shape alone), and the
            // state-based one, which additionally proves packet loads and
            // divisions safe from the abstract in-state.
            const LiveSet defs = insn_defs(insn);
            const bool is_def = bpf_class(insn.code) != BPF_JMP &&
                                bpf_class(insn.code) != BPF_RET && defs != 0;
            if (lv.dead_store[pc] ||
                (is_def && (defs & lv.live_out[pc]) == 0 &&
                 never_rejects(insn, *ir.in[pc])))
                keep[pc] = false;  // dead store/def
        }
        changed = changed || !keep[pc];
    }
    if (!changed) return false;

    // Remap: removed instructions become pass-throughs; jumps redirect to
    // the next kept instruction at or after their old target.  All offsets
    // shrink, so 8-bit conditional offsets stay representable.
    std::vector<std::size_t> new_index(n + 1, 0);
    std::size_t count = 0;
    for (std::size_t pc = 0; pc < n; ++pc) {
        new_index[pc] = count;
        if (keep[pc]) ++count;
    }
    new_index[n] = count;
    const auto redirect = [&](std::size_t target) {
        while (target < n && !keep[target]) ++target;
        return target;
    };

    Program out;
    out.reserve(count);
    for (std::size_t pc = 0; pc < n; ++pc) {
        if (!keep[pc]) continue;
        Insn insn = prog[pc];
        if (bpf_class(insn.code) == BPF_JMP) {
            if (bpf_op(insn.code) == BPF_JA) {
                const std::size_t t = redirect(pc + 1 + insn.k);
                insn.k = static_cast<std::uint32_t>(new_index[t] - new_index[pc] - 1);
            } else {
                const std::size_t tt = redirect(pc + 1 + insn.jt);
                const std::size_t tf = redirect(pc + 1 + insn.jf);
                insn.jt = static_cast<std::uint8_t>(new_index[tt] - new_index[pc] - 1);
                insn.jf = static_cast<std::uint8_t>(new_index[tf] - new_index[pc] - 1);
            }
        }
        out.push_back(insn);
    }
    prog = std::move(out);
    return true;
}

}  // namespace

Program optimize(const Program& prog, OptimizeStats* stats) {
    if (stats) {
        *stats = OptimizeStats{};
        stats->insns_before = prog.size();
        stats->insns_after = prog.size();
    }
    if (validate(prog)) return prog;  // invalid: not ours to transform

    Program work = prog;
    constexpr int kMaxRounds = 64;
    int rounds = 0;
    while (rounds < kMaxRounds) {
        const InterpResult ir = interpret(work);
        if (rewrite(work, ir)) {
            ++rounds;
            continue;
        }
        const Liveness lv = Liveness::build(work);
        if (edge_skip(work, ir, live_in_of(work, lv))) {
            ++rounds;
            continue;
        }
        if (removal(work, ir, lv, RemovalKind::kRedundant)) {
            ++rounds;
            continue;
        }
        if (removal(work, ir, lv, RemovalKind::kDeadDefs)) {
            ++rounds;
            continue;
        }
        break;
    }
    if (validate(work)) return prog;  // safety net: never ship a broken rewrite
    if (stats) {
        stats->rounds = rounds;
        stats->insns_after = work.size();
    }
    return work;
}

}  // namespace capbench::bpf::analysis
