// Abstract interpretation of classic BPF programs.
//
// Walks the program with an abstract machine state (register A, index X,
// the 16 scratch words) over the AbsVal domain.  On top of plain values it
// tracks *symbols*: names for packet expressions ("the halfword at absolute
// offset 12", "4*(pkt[14]&0xf)").  A register holding a symbol means it
// holds exactly the value that packet expression denotes, and a recorded
// *fact* for a symbol means a load of that expression already succeeded on
// every path to this point — which both proves later identical loads
// redundant and proves them unable to reject (packet bytes are immutable
// during a filter run).  Classic BPF has forward jumps only, so one pass in
// instruction order reaches the dataflow fixpoint.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "capbench/bpf/analysis/domain.hpp"
#include "capbench/bpf/analysis/findings.hpp"
#include "capbench/bpf/insn.hpp"

namespace capbench::bpf::analysis {

/// Largest packet the analyzer assumes can exist (pcap snaplen ceiling);
/// absolute loads beyond it can never succeed.
inline constexpr std::uint32_t kMaxPacketBytes = 65535;

enum class SymKind : std::uint8_t { kNone, kLen, kPktAbs, kPktInd, kMsh };

/// A name for a packet-derived value.  kPktInd additionally names the X
/// operand (itself restricted to MSH/LEN symbols) so two indirect loads
/// compare equal only when their index registers provably hold the same
/// value.
struct Sym {
    SymKind kind = SymKind::kNone;
    std::uint8_t size = 0;       // load size in bytes (kPktAbs / kPktInd)
    std::uint32_t off = 0;       // k operand
    SymKind x_kind = SymKind::kNone;  // kPktInd only
    std::uint32_t x_off = 0;          // kPktInd only

    [[nodiscard]] bool valid() const { return kind != SymKind::kNone; }
    friend bool operator==(const Sym&, const Sym&) = default;
};

struct AbsState {
    AbsVal a = AbsVal::constant(0);  // the VM zero-initializes everything
    AbsVal x = AbsVal::constant(0);
    std::array<AbsVal, kMemWords> mem;
    Sym a_sym, x_sym;
    std::array<Sym, kMemWords> mem_sym;
    // Initialization lint state (bit i = M[i]); "any" = written on some
    // path, "all" = written on every path.
    std::uint16_t mem_written_any = 0;
    std::uint16_t mem_written_all = 0;
    bool x_written_any = false;
    bool x_written_all = false;
    /// Proven values of packet expressions along every path to this point.
    std::vector<std::pair<Sym, AbsVal>> facts;

    AbsState() { mem.fill(AbsVal::constant(0)); }

    [[nodiscard]] const AbsVal* fact(const Sym& sym) const;
    void learn(const Sym& sym, const AbsVal& value);
};

AbsState join(const AbsState& a, const AbsState& b);

/// Symbol a load instruction produces: the packet expression for ABS / IND
/// / MSH / LEN loads, the stored slot symbol for MEM loads, none for IMM.
Sym load_sym(const Insn& insn, const AbsState& st);

/// True when the load cannot reject at runtime given `st`: inherently safe
/// modes (IMM/LEN/MEM), or a packet load whose symbol has a recorded fact.
bool load_known_safe(const Insn& insn, const AbsState& st);

/// Applies a non-jump, non-RET instruction to the state.  Returns false
/// when the instruction always rejects (out-of-range absolute load,
/// division by a constant zero): the fallthrough edge is dead.
bool apply(const Insn& insn, AbsState& st);

/// Outcome of a conditional jump, when the domain decides it.
std::optional<bool> cond_outcome(const Insn& insn, const AbsState& st);

/// State along one edge of a conditional jump; nullopt when infeasible.
std::optional<AbsState> refine_edge(const Insn& insn, const AbsState& st, bool taken);

struct InterpResult {
    /// Joined in-state per instruction; nullopt = unreachable.
    std::vector<std::optional<AbsState>> in;
    /// Value-flow findings: uninitialized reads, possible division by zero,
    /// loads that can never succeed, degenerate conditional jumps.
    std::vector<Finding> findings;
    /// True when no reachable RET can return non-zero.
    bool never_accepts = false;
    bool has_reachable_ret = false;
};

InterpResult interpret(const Program& prog);

}  // namespace capbench::bpf::analysis
