// Control-flow graph over a classic BPF program.
//
// Classic BPF only has forward jumps, so the CFG is a DAG in instruction
// order: reachability and dataflow both converge in a single forward pass.
// Blocks are maximal straight-line runs; edges follow the jt/jf/ja targets
// computed the same way the VM computes them (pc + 1 + offset).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "capbench/bpf/insn.hpp"

namespace capbench::bpf::analysis {

struct BasicBlock {
    std::size_t first = 0;  // index of the first instruction
    std::size_t last = 0;   // index of the last instruction (inclusive)
    std::vector<std::size_t> succs;  // successor block indices
};

/// Successor instruction indices of `pc` (targets clamped out of existence
/// when they fall outside the program; validate() forbids that anyway).
std::vector<std::size_t> insn_successors(const Program& prog, std::size_t pc);

struct Cfg {
    std::vector<BasicBlock> blocks;
    /// Instruction index -> block index, or -1 for instructions that are
    /// not part of any reachable block.
    std::vector<std::int32_t> block_of;
    /// Per-instruction reachability from the entry point.
    std::vector<bool> reachable;

    static Cfg build(const Program& prog);
};

}  // namespace capbench::bpf::analysis
