// Per-instruction fact table: everything the verifier proves about a
// program, in one flat array the execution tiers can consume.
//
// The guard-analysis portion derives, per instruction, the minimum packet
// length proven on *entry* — two distinct quantities:
//
//  * `min_data_len` — bytes of captured packet *data* proven present.
//    Only a dominating *successful* packet load proves this: an absolute
//    load of (k, size) bytes that did not reject establishes
//    data.size() >= k + size on every continuation.  This is the bound
//    that legally licenses bounds-check elision.
//  * `min_wire_len` — proven lower bound on the BPF_LEN value (the wire
//    length).  Length guards ("jge len, 34") prove this one, *not*
//    min_data_len: a truncated capture can present fewer data bytes than
//    its wire length claims, so a LEN guard never makes a load safe.
//
// Joins take the minimum over incoming edges; forward-only jumps make one
// pass in instruction order exact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "capbench/bpf/analysis/cfg.hpp"
#include "capbench/bpf/analysis/dominators.hpp"
#include "capbench/bpf/analysis/interp.hpp"
#include "capbench/bpf/analysis/liveness.hpp"
#include "capbench/bpf/insn.hpp"

namespace capbench::bpf::analysis {

struct InsnFacts {
    bool reachable = false;

    // Guard analysis (valid on entry to the instruction).
    std::uint32_t min_data_len = 0;
    std::uint32_t min_wire_len = 0;

    // Packet-load facts (BPF_ABS / BPF_IND / BPF_MSH sites only).
    bool safe_load = false;       // provably in bounds: cannot reject at runtime
    bool redundant_load = false;  // an identical load already succeeded (implies safe)
    bool const_result = false;    // the produced value is one proven constant
    std::uint32_t const_value = 0;

    // Liveness (valid after the instruction).
    std::uint32_t live_out = 0;  // kLiveA | kLiveX | live_mem_bit(i)
    bool dead_store = false;

    // Immediate dominator instruction; -1 for the entry and unreachable code.
    std::int64_t idom_insn = -1;
};

struct FactTable {
    std::vector<InsnFacts> insns;

    [[nodiscard]] bool empty() const { return insns.empty(); }
    [[nodiscard]] std::size_t size() const { return insns.size(); }
    const InsnFacts& operator[](std::size_t pc) const { return insns[pc]; }

    /// Builds every pass itself.  `prog` must have passed validate().
    static FactTable build(const Program& prog);

    /// Assembles the table from already-computed pass results (the
    /// verifier runs the passes once and shares them).
    static FactTable build(const Program& prog, const Cfg& cfg, const DomTree& dom,
                           const Liveness& live, const InterpResult& interp);
};

}  // namespace capbench::bpf::analysis
