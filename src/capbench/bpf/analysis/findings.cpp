#include "capbench/bpf/analysis/findings.hpp"

namespace capbench::bpf::analysis {

std::string to_string(Severity severity) {
    switch (severity) {
        case Severity::kError: return "error";
        case Severity::kWarning: return "warning";
        case Severity::kInfo: return "info";
    }
    return "?";
}

std::string to_string(const Finding& finding) {
    return "insn " + std::to_string(finding.insn) + ": " + to_string(finding.severity) + ": " +
           finding.message;
}

}  // namespace capbench::bpf::analysis
