// Dominator tree over the BPF control-flow graph.
//
// Classic BPF only jumps forward, so every CFG edge goes from a
// lower-numbered block to a higher-numbered one: block order *is* a
// topological order.  The Cooper/Harvey/Kennedy iterative scheme therefore
// needs exactly one forward pass — when a block is visited, the immediate
// dominators of all its predecessors are already final.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "capbench/bpf/analysis/cfg.hpp"

namespace capbench::bpf::analysis {

struct DomTree {
    /// Immediate dominator per block index.  The entry block is its own
    /// idom (idom[0] == 0); Cfg only materializes reachable blocks, so
    /// every entry is defined.
    std::vector<std::uint32_t> idom;

    /// Does block `a` dominate block `b`?  Reflexive: a block dominates
    /// itself.
    [[nodiscard]] bool dominates(std::size_t a, std::size_t b) const;

    static DomTree build(const Cfg& cfg);
};

/// Instruction-level dominance: `a` dominates `b` when a's block strictly
/// dominates b's block, or both share a block and a comes no later.
/// Instructions outside any reachable block dominate nothing.
bool insn_dominates(const Cfg& cfg, const DomTree& dom, std::size_t a, std::size_t b);

/// Immediate dominator *instruction* of `pc`: the previous instruction of
/// its block, or the last instruction of the block's immediate dominator
/// for block leaders.  -1 for the entry instruction and unreachable code.
std::int64_t idom_insn(const Cfg& cfg, const DomTree& dom, std::size_t pc);

}  // namespace capbench::bpf::analysis
