#include "capbench/bpf/analysis/domain.hpp"

#include <algorithm>
#include <bit>

#include "capbench/bpf/insn.hpp"

namespace capbench::bpf::analysis {

namespace {

constexpr std::uint64_t kU32Max = 0xFFFFFFFFull;

}  // namespace

AbsVal AbsVal::range(std::uint32_t lo, std::uint32_t hi) {
    AbsVal v;
    v.lo = lo;
    v.hi = hi;
    v.normalize();
    return v;
}

bool AbsVal::contains(std::uint32_t v) const {
    if (v < lo || v > hi) return false;
    if ((v & known_mask) != known_val) return false;
    if (has_ne && v == ne) return false;
    return true;
}

bool AbsVal::normalize() {
    known_val &= known_mask;
    if (lo > hi) return false;
    // Agreeing leading bits of lo and hi are known.
    const std::uint32_t diff = lo ^ hi;
    const std::uint32_t prefix = static_cast<std::uint32_t>(
        ~((std::uint64_t{1} << std::bit_width(diff)) - 1));
    known_mask |= prefix;
    known_val |= lo & prefix;
    // Known bits bound the interval: unknown bits all-0 / all-1.
    lo = std::max(lo, known_val);
    hi = std::min(hi, known_val | ~known_mask);
    if (lo > hi) return false;
    if (lo == hi) {
        if ((lo & known_mask) != known_val) return false;
        known_mask = 0xFFFFFFFFu;
        known_val = lo;
    }
    if (has_ne) {
        if (ne == lo && ne == hi) return false;  // only value is excluded
        if (lo == ne && lo < hi) {
            ++lo;
            has_ne = false;
            return normalize();
        }
        if (hi == ne && hi > lo) {
            --hi;
            has_ne = false;
            return normalize();
        }
        if (ne < lo || ne > hi || (ne & known_mask) != known_val)
            has_ne = false;  // already excluded by the other domains
    }
    return true;
}

AbsVal join(const AbsVal& a, const AbsVal& b) {
    AbsVal out;
    out.lo = std::min(a.lo, b.lo);
    out.hi = std::max(a.hi, b.hi);
    out.known_mask = a.known_mask & b.known_mask & ~(a.known_val ^ b.known_val);
    out.known_val = a.known_val & out.known_mask;
    if (a.has_ne && b.has_ne && a.ne == b.ne) {
        out.has_ne = true;
        out.ne = a.ne;
    } else if (a.has_ne && !b.contains(a.ne)) {
        out.has_ne = true;
        out.ne = a.ne;
    } else if (b.has_ne && !a.contains(b.ne)) {
        out.has_ne = true;
        out.ne = b.ne;
    }
    out.normalize();  // join of feasible values is feasible
    return out;
}

std::optional<AbsVal> meet(const AbsVal& a, const AbsVal& b) {
    AbsVal out;
    out.lo = std::max(a.lo, b.lo);
    out.hi = std::min(a.hi, b.hi);
    if ((a.known_mask & b.known_mask & (a.known_val ^ b.known_val)) != 0)
        return std::nullopt;  // contradictory known bits
    out.known_mask = a.known_mask | b.known_mask;
    out.known_val = a.known_val | b.known_val;
    if (a.has_ne) {
        out.has_ne = true;
        out.ne = a.ne;
    } else if (b.has_ne) {
        out.has_ne = true;
        out.ne = b.ne;
    }
    if (!out.normalize()) return std::nullopt;
    return out;
}

AbsVal alu_transfer(std::uint16_t op, const AbsVal& a, const AbsVal& operand) {
    AbsVal b = operand;
    if (op == BPF_DIV) {
        // The VM rejects on a zero divisor; the continuation sees non-zero.
        if (b.lo == 0) b.lo = 1;
        if (!b.normalize()) return AbsVal::constant(0);  // unreachable continuation
    }
    if (a.is_constant() && b.is_constant() && op != BPF_NEG) {
        const std::uint32_t av = a.constant_value();
        const std::uint32_t bv = b.constant_value();
        switch (op) {
            case BPF_ADD: return AbsVal::constant(av + bv);
            case BPF_SUB: return AbsVal::constant(av - bv);
            case BPF_MUL: return AbsVal::constant(av * bv);
            case BPF_DIV: return AbsVal::constant(av / bv);
            case BPF_OR: return AbsVal::constant(av | bv);
            case BPF_AND: return AbsVal::constant(av & bv);
            case BPF_LSH: return AbsVal::constant(bv < 32 ? av << bv : 0);
            case BPF_RSH: return AbsVal::constant(bv < 32 ? av >> bv : 0);
            default: break;
        }
    }
    AbsVal out;  // top
    switch (op) {
        case BPF_ADD:
            if (static_cast<std::uint64_t>(a.hi) + b.hi <= kU32Max)
                out = AbsVal::range(a.lo + b.lo, a.hi + b.hi);
            break;
        case BPF_SUB:
            if (a.lo >= b.hi) out = AbsVal::range(a.lo - b.hi, a.hi - b.lo);
            break;
        case BPF_MUL:
            if (static_cast<std::uint64_t>(a.hi) * b.hi <= kU32Max)
                out = AbsVal::range(a.lo * b.lo, a.hi * b.hi);
            break;
        case BPF_DIV:
            out = AbsVal::range(a.lo / b.hi, a.hi / b.lo);
            break;
        case BPF_AND: {
            out.lo = 0;
            out.hi = std::min(a.hi, b.hi);
            const std::uint32_t known_zero = (a.known_mask & ~a.known_val) |
                                             (b.known_mask & ~b.known_val);
            const std::uint32_t known_one =
                (a.known_mask & a.known_val) & (b.known_mask & b.known_val);
            out.known_mask = known_zero | known_one;
            out.known_val = known_one;
            out.normalize();
            break;
        }
        case BPF_OR: {
            out.lo = std::max(a.lo, b.lo);
            const std::uint32_t top = a.hi | b.hi;
            out.hi = top == 0 ? 0
                              : (std::uint32_t{0xFFFFFFFFu} >>
                                 (32 - std::bit_width(top)));
            const std::uint32_t known_one =
                (a.known_mask & a.known_val) | (b.known_mask & b.known_val);
            const std::uint32_t known_zero =
                (a.known_mask & ~a.known_val) & (b.known_mask & ~b.known_val);
            out.known_mask = known_zero | known_one;
            out.known_val = known_one;
            out.normalize();
            break;
        }
        case BPF_LSH:
            if (b.is_constant()) {
                const std::uint32_t s = b.constant_value();
                if (s >= 32) return AbsVal::constant(0);
                if (a.hi <= (0xFFFFFFFFu >> s)) out = AbsVal::range(a.lo << s, a.hi << s);
            } else if (b.lo >= 32) {
                return AbsVal::constant(0);
            }
            break;
        case BPF_RSH:
            if (b.is_constant()) {
                const std::uint32_t s = b.constant_value();
                if (s >= 32) return AbsVal::constant(0);
                out = AbsVal::range(a.lo >> s, a.hi >> s);
            } else if (b.lo >= 32) {
                return AbsVal::constant(0);
            } else {
                out = AbsVal::range(0, a.hi);
            }
            break;
        case BPF_NEG:
            if (a.is_constant())
                return AbsVal::constant(
                    static_cast<std::uint32_t>(-static_cast<std::int32_t>(a.lo)));
            break;
        default:
            break;
    }
    return out;
}

std::optional<bool> compare(std::uint16_t jmp_op, const AbsVal& a, const AbsVal& b) {
    switch (jmp_op) {
        case BPF_JEQ:
            if (a.is_constant() && b.is_constant())
                return a.constant_value() == b.constant_value();
            if (a.hi < b.lo || b.hi < a.lo) return false;
            if ((a.known_mask & b.known_mask & (a.known_val ^ b.known_val)) != 0)
                return false;
            if (b.is_constant() && !a.contains(b.constant_value())) return false;
            if (a.is_constant() && !b.contains(a.constant_value())) return false;
            return std::nullopt;
        case BPF_JGT:
            if (a.lo > b.hi) return true;
            if (a.hi <= b.lo) return false;
            return std::nullopt;
        case BPF_JGE:
            if (a.lo >= b.hi) return true;
            if (a.hi < b.lo) return false;
            return std::nullopt;
        case BPF_JSET: {
            if (!b.is_constant()) {
                if (a.is_constant() && a.constant_value() == 0) return false;
                return std::nullopt;
            }
            const std::uint32_t c = b.constant_value();
            if ((a.known_mask & a.known_val & c) != 0) return true;
            const std::uint32_t known_zero = a.known_mask & ~a.known_val;
            if ((c & ~known_zero) == 0) return false;
            return std::nullopt;
        }
        default:
            return std::nullopt;
    }
}

std::optional<AbsVal> refine(const AbsVal& a, std::uint16_t jmp_op, std::uint32_t k,
                             bool taken) {
    AbsVal out = a;
    switch (jmp_op) {
        case BPF_JEQ:
            if (taken) return meet(a, AbsVal::constant(k));
            if (!out.has_ne) {
                out.has_ne = true;
                out.ne = k;
            }
            break;
        case BPF_JGT:
            if (taken) {
                if (k == 0xFFFFFFFFu) return std::nullopt;
                out.lo = std::max(out.lo, k + 1);
            } else {
                out.hi = std::min(out.hi, k);
            }
            break;
        case BPF_JGE:
            if (taken) {
                out.lo = std::max(out.lo, k);
            } else {
                if (k == 0) return std::nullopt;
                out.hi = std::min(out.hi, k - 1);
            }
            break;
        case BPF_JSET:
            if (!taken) {
                // All bits of k are proven zero.
                if ((out.known_mask & out.known_val & k) != 0) return std::nullopt;
                out.known_mask |= k;
                out.known_val &= ~k;
            } else if ((k & ~(out.known_mask & ~out.known_val)) == 0) {
                return std::nullopt;  // every bit of k known zero: can't be taken
            }
            break;
        default:
            break;
    }
    if (!out.normalize()) return std::nullopt;
    return out;
}

}  // namespace capbench::bpf::analysis
