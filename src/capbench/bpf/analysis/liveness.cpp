#include "capbench/bpf/analysis/liveness.hpp"

#include "capbench/bpf/analysis/cfg.hpp"

namespace capbench::bpf::analysis {

std::uint32_t insn_uses(const Insn& insn) {
    const std::uint16_t code = insn.code;
    switch (bpf_class(code)) {
        case BPF_LD:
            switch (bpf_mode(code)) {
                case BPF_IND: return kLiveX;
                case BPF_MEM: return insn.k < kMemWords ? live_mem_bit(insn.k) : 0;
                default: return 0;
            }
        case BPF_LDX:
            return bpf_mode(code) == BPF_MEM && insn.k < kMemWords ? live_mem_bit(insn.k)
                                                                   : 0;
        case BPF_ST:
            return kLiveA;
        case BPF_STX:
            return kLiveX;
        case BPF_ALU:
            if (bpf_op(code) == BPF_NEG) return kLiveA;
            return kLiveA | (bpf_src(code) == BPF_X ? kLiveX : 0);
        case BPF_JMP:
            if (bpf_op(code) == BPF_JA) return 0;
            return kLiveA | (bpf_src(code) == BPF_X ? kLiveX : 0);
        case BPF_RET:
            return bpf_rval(code) == BPF_A ? kLiveA : 0;
        case BPF_MISC:
            return bpf_miscop(code) == BPF_TAX ? kLiveA : kLiveX;
        default:
            return 0;
    }
}

std::uint32_t insn_defs(const Insn& insn) {
    const std::uint16_t code = insn.code;
    switch (bpf_class(code)) {
        case BPF_LD: return kLiveA;
        case BPF_LDX: return kLiveX;
        case BPF_ST:
        case BPF_STX:
            return insn.k < kMemWords ? live_mem_bit(insn.k) : 0;
        case BPF_ALU: return kLiveA;
        case BPF_MISC: return bpf_miscop(code) == BPF_TAX ? kLiveX : kLiveA;
        default: return 0;
    }
}

namespace {

/// May the instruction end the filter run on its own (reject the packet)?
/// Such instructions are never dead stores: they gate execution even when
/// their written value goes unread.
bool has_side_effect(const Insn& insn) {
    const std::uint16_t code = insn.code;
    switch (bpf_class(code)) {
        case BPF_LD:
            return bpf_mode(code) == BPF_ABS || bpf_mode(code) == BPF_IND;
        case BPF_LDX:
            return bpf_mode(code) == BPF_MSH;
        case BPF_ALU:
            // Constant zero divisors are rejected by the validator, so only
            // a division by X can trap at runtime.
            return bpf_op(code) == BPF_DIV && bpf_src(code) == BPF_X;
        default:
            return false;
    }
}

}  // namespace

Liveness Liveness::build(const Program& prog) {
    Liveness live;
    const std::size_t n = prog.size();
    live.live_out.assign(n, 0);
    live.dead_store.assign(n, false);
    if (n == 0) return live;

    // live_in[pc] feeds the live_out of every predecessor; with forward
    // jumps all successors of pc have index > pc, so one reverse sweep
    // computes the exact solution.
    std::vector<std::uint32_t> live_in(n, 0);
    for (std::size_t i = n; i-- > 0;) {
        std::uint32_t out = 0;
        for (const std::size_t succ : insn_successors(prog, i)) out |= live_in[succ];
        live.live_out[i] = out;
        live_in[i] = insn_uses(prog[i]) | (out & ~insn_defs(prog[i]));
    }

    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t defs = insn_defs(prog[i]);
        const std::uint16_t cls = bpf_class(prog[i].code);
        const bool writes_only =
            cls == BPF_LD || cls == BPF_LDX || cls == BPF_ST || cls == BPF_STX ||
            cls == BPF_ALU || cls == BPF_MISC;
        live.dead_store[i] = writes_only && defs != 0 && (live.live_out[i] & defs) == 0 &&
                             !has_side_effect(prog[i]);
    }
    return live;
}

}  // namespace capbench::bpf::analysis
