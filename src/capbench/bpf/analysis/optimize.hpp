// BPF filter optimizer.
//
// Consumes the facts proven by the abstract interpreter (interp.hpp) and
// rewrites the program into an equivalent, shorter one:
//
//   * constant folding      — ALU ops and loads with proven-constant
//                             results become immediate loads; RET A with a
//                             constant accumulator becomes RET k
//   * branch folding        — conditional jumps with a decided outcome (or
//                             identical targets) become unconditional
//   * edge retargeting      — each jump edge is walked forward past
//                             instructions that are redundant or decided
//                             along that particular path (the libpcap-style
//                             pass that collapses repeated ethertype tests)
//   * dead code elimination — unreachable instructions, no-op jumps,
//                             redundant re-loads, and writes to registers
//                             that are dead (liveness analysis) are dropped
//
// Equivalence contract: for every packet, the optimized program returns the
// same accept length as the original.  Executed-instruction counts may
// differ (that is the point).  Instructions that can reject at runtime
// (packet loads, division by X) are only removed or skipped when the
// analyzer proves they cannot reject on any path that reaches them.
#pragma once

#include "capbench/bpf/insn.hpp"

namespace capbench::bpf::analysis {

struct OptimizeStats {
    int rounds = 0;             ///< rewrite rounds until fixpoint
    std::size_t insns_before = 0;
    std::size_t insns_after = 0;
};

/// Optimizes `prog`.  Invalid programs are returned unchanged (the
/// optimizer only transforms programs that validate()); the result always
/// passes validate() and is never longer than the input.
Program optimize(const Program& prog, OptimizeStats* stats = nullptr);

}  // namespace capbench::bpf::analysis
