#include "capbench/bpf/analysis/analyze.hpp"

#include <algorithm>

#include "capbench/bpf/analysis/cfg.hpp"
#include "capbench/bpf/analysis/interp.hpp"
#include "capbench/bpf/validator.hpp"

namespace capbench::bpf::analysis {

std::vector<Finding> analyze(const Program& prog) {
    std::vector<Finding> findings;
    if (const auto reason = validate(prog)) {
        findings.push_back(Finding{Severity::kError, 0, *reason});
        return findings;
    }

    const InterpResult interp = interpret(prog);
    findings = interp.findings;

    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        if (!interp.in[pc])
            findings.push_back(Finding{Severity::kWarning, pc, "unreachable instruction"});
    }

    // RET-value ranges (info) and the never-accepts proof (warning).
    std::optional<std::size_t> first_ret;
    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        if (!interp.in[pc] || bpf_class(prog[pc].code) != BPF_RET) continue;
        if (!first_ret) first_ret = pc;
        if (bpf_rval(prog[pc].code) == BPF_A) {
            const AbsVal& a = (*interp.in[pc]).a;
            findings.push_back(Finding{
                Severity::kInfo, pc,
                a.is_constant()
                    ? "returns the constant " + std::to_string(a.constant_value())
                    : "returns A in [" + std::to_string(a.lo) + ", " + std::to_string(a.hi) +
                          "]"});
        }
    }
    if (interp.never_accepts && first_ret) {
        findings.push_back(Finding{Severity::kWarning, *first_ret,
                                   "filter can never accept a packet (every reachable "
                                   "return path yields 0)"});
    }

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding& a, const Finding& b) {
                         if (a.insn != b.insn) return a.insn < b.insn;
                         return static_cast<int>(a.severity) < static_cast<int>(b.severity);
                     });
    return findings;
}

bool has_errors(const std::vector<Finding>& findings) {
    return std::any_of(findings.begin(), findings.end(),
                       [](const Finding& f) { return f.severity == Severity::kError; });
}

bool has_warnings(const std::vector<Finding>& findings) {
    return std::any_of(findings.begin(), findings.end(),
                       [](const Finding& f) { return f.severity == Severity::kWarning; });
}

}  // namespace capbench::bpf::analysis
