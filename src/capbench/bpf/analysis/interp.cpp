#include "capbench/bpf/analysis/interp.hpp"

#include <algorithm>

namespace capbench::bpf::analysis {

namespace {

std::uint32_t load_size_bytes(std::uint16_t code) {
    switch (bpf_size(code)) {
        case BPF_W: return 4;
        case BPF_H: return 2;
        default: return 1;
    }
}

/// Value range a packet load can produce, from its width alone.
AbsVal size_clip(std::uint16_t code) {
    switch (bpf_size(code)) {
        case BPF_B: return AbsVal::range(0, 0xFF);
        case BPF_H: return AbsVal::range(0, 0xFFFF);
        default: return AbsVal::top();
    }
}

}  // namespace

const AbsVal* AbsState::fact(const Sym& sym) const {
    for (const auto& [s, v] : facts)
        if (s == sym) return &v;
    return nullptr;
}

void AbsState::learn(const Sym& sym, const AbsVal& value) {
    if (!sym.valid()) return;
    for (auto& [s, v] : facts) {
        if (s == sym) {
            v = value;
            return;
        }
    }
    facts.emplace_back(sym, value);
}

AbsState join(const AbsState& a, const AbsState& b) {
    AbsState out;
    out.a = join(a.a, b.a);
    out.x = join(a.x, b.x);
    out.a_sym = a.a_sym == b.a_sym ? a.a_sym : Sym{};
    out.x_sym = a.x_sym == b.x_sym ? a.x_sym : Sym{};
    for (std::size_t i = 0; i < kMemWords; ++i) {
        out.mem[i] = join(a.mem[i], b.mem[i]);
        out.mem_sym[i] = a.mem_sym[i] == b.mem_sym[i] ? a.mem_sym[i] : Sym{};
    }
    out.mem_written_any = a.mem_written_any | b.mem_written_any;
    out.mem_written_all = a.mem_written_all & b.mem_written_all;
    out.x_written_any = a.x_written_any || b.x_written_any;
    out.x_written_all = a.x_written_all && b.x_written_all;
    for (const auto& [sym, val] : a.facts) {
        if (const AbsVal* other = b.fact(sym)) out.facts.emplace_back(sym, join(val, *other));
    }
    return out;
}

Sym load_sym(const Insn& insn, const AbsState& st) {
    const std::uint16_t code = insn.code;
    Sym sym;
    if (bpf_class(code) == BPF_LD || bpf_class(code) == BPF_LDX) {
        switch (bpf_mode(code)) {
            case BPF_LEN:
                sym.kind = SymKind::kLen;
                break;
            case BPF_ABS:
                sym.kind = SymKind::kPktAbs;
                sym.size = static_cast<std::uint8_t>(load_size_bytes(code));
                sym.off = insn.k;
                break;
            case BPF_MSH:
                sym.kind = SymKind::kMsh;
                sym.size = 1;
                sym.off = insn.k;
                break;
            case BPF_IND: {
                // Nameable only when X itself holds a named value.
                const Sym& xs = st.x_sym;
                if (xs.kind == SymKind::kMsh || xs.kind == SymKind::kLen) {
                    sym.kind = SymKind::kPktInd;
                    sym.size = static_cast<std::uint8_t>(load_size_bytes(code));
                    sym.off = insn.k;
                    sym.x_kind = xs.kind;
                    sym.x_off = xs.off;
                }
                break;
            }
            case BPF_MEM:
                if (insn.k < kMemWords) sym = st.mem_sym[insn.k];
                break;
            default:
                break;
        }
    }
    return sym;
}

bool load_known_safe(const Insn& insn, const AbsState& st) {
    switch (bpf_mode(insn.code)) {
        case BPF_IMM:
        case BPF_LEN:
            return true;
        case BPF_MEM:
            return insn.k < kMemWords;
        case BPF_ABS:
        case BPF_IND:
        case BPF_MSH: {
            const Sym sym = load_sym(insn, st);
            return sym.valid() && sym.kind != SymKind::kNone && st.fact(sym) != nullptr;
        }
        default:
            return false;
    }
}

namespace {

/// Loads a packet expression: the symbol's recorded fact refined by the
/// width clip.  Marks the load's success as a new fact.
AbsVal packet_load(const Insn& insn, AbsState& st) {
    const Sym sym = load_sym(insn, st);
    AbsVal value = bpf_mode(insn.code) == BPF_MSH
                       ? AbsVal::range(0, 60)  // 4 * (byte & 0x0F)
                       : size_clip(insn.code);
    if (sym.valid()) {
        if (const AbsVal* known = st.fact(sym)) {
            if (const auto met = meet(value, *known)) value = *met;
        }
        st.learn(sym, value);
    }
    return value;
}

void set_a(AbsState& st, const AbsVal& value, const Sym& sym) {
    st.a = value;
    st.a_sym = sym;
}

void set_x(AbsState& st, const AbsVal& value, const Sym& sym) {
    st.x = value;
    st.x_sym = sym;
    st.x_written_any = true;
    st.x_written_all = true;
}

}  // namespace

bool apply(const Insn& insn, AbsState& st) {
    const std::uint16_t code = insn.code;
    switch (bpf_class(code)) {
        case BPF_LD:
            switch (bpf_mode(code)) {
                case BPF_IMM:
                    set_a(st, AbsVal::constant(insn.k), Sym{});
                    break;
                case BPF_LEN:
                    set_a(st, packet_load(insn, st), load_sym(insn, st));
                    break;
                case BPF_ABS:
                    if (static_cast<std::uint64_t>(insn.k) + load_size_bytes(code) >
                        kMaxPacketBytes + 1ull)
                        return false;  // can never be in bounds
                    set_a(st, packet_load(insn, st), load_sym(insn, st));
                    break;
                case BPF_IND: {
                    // In-bounds requires x + k + size <= packet length.
                    if (static_cast<std::uint64_t>(st.x.lo) + insn.k + load_size_bytes(code) >
                        kMaxPacketBytes + 1ull)
                        return false;
                    set_a(st, packet_load(insn, st), load_sym(insn, st));
                    break;
                }
                case BPF_MEM:
                    if (insn.k >= kMemWords) return false;
                    set_a(st, st.mem[insn.k], st.mem_sym[insn.k]);
                    break;
                default:
                    return false;
            }
            break;
        case BPF_LDX:
            switch (bpf_mode(code)) {
                case BPF_IMM:
                    set_x(st, AbsVal::constant(insn.k), Sym{});
                    break;
                case BPF_LEN:
                    set_x(st, packet_load(insn, st), load_sym(insn, st));
                    break;
                case BPF_MSH:
                    if (insn.k >= kMaxPacketBytes + 1) return false;
                    set_x(st, packet_load(insn, st), load_sym(insn, st));
                    break;
                case BPF_MEM:
                    if (insn.k >= kMemWords) return false;
                    set_x(st, st.mem[insn.k], st.mem_sym[insn.k]);
                    break;
                default:
                    return false;
            }
            break;
        case BPF_ST:
            if (insn.k >= kMemWords) return false;
            st.mem[insn.k] = st.a;
            st.mem_sym[insn.k] = st.a_sym;
            st.mem_written_any |= static_cast<std::uint16_t>(1u << insn.k);
            st.mem_written_all |= static_cast<std::uint16_t>(1u << insn.k);
            break;
        case BPF_STX:
            if (insn.k >= kMemWords) return false;
            st.mem[insn.k] = st.x;
            st.mem_sym[insn.k] = st.x_sym;
            st.mem_written_any |= static_cast<std::uint16_t>(1u << insn.k);
            st.mem_written_all |= static_cast<std::uint16_t>(1u << insn.k);
            break;
        case BPF_ALU: {
            const bool use_x = bpf_src(code) == BPF_X && bpf_op(code) != BPF_NEG;
            const AbsVal operand = use_x ? st.x : AbsVal::constant(insn.k);
            if (bpf_op(code) == BPF_DIV) {
                if (operand.is_constant() && operand.constant_value() == 0)
                    return false;  // always rejects
                if (use_x && st.x.contains(0)) {
                    // The continuation only runs when X != 0.
                    auto refined = refine(st.x, BPF_JEQ, 0, false);
                    if (!refined) return false;
                    st.x = *refined;
                }
            }
            set_a(st, alu_transfer(bpf_op(code), st.a, use_x ? st.x : operand), Sym{});
            break;
        }
        case BPF_MISC:
            if (bpf_miscop(code) == BPF_TAX)
                set_x(st, st.a, st.a_sym);
            else
                set_a(st, st.x, st.x_sym);
            break;
        default:
            return false;  // JMP / RET are not straight-line instructions
    }
    return true;
}

std::optional<bool> cond_outcome(const Insn& insn, const AbsState& st) {
    const AbsVal operand =
        bpf_src(insn.code) == BPF_X ? st.x : AbsVal::constant(insn.k);
    return compare(bpf_op(insn.code), st.a, operand);
}

std::optional<AbsState> refine_edge(const Insn& insn, const AbsState& st, bool taken) {
    AbsState out = st;
    if (bpf_src(insn.code) == BPF_K) {
        auto refined = refine(st.a, bpf_op(insn.code), insn.k, taken);
        if (!refined) return std::nullopt;
        out.a = *refined;
        if (out.a_sym.valid()) out.learn(out.a_sym, out.a);
    } else {
        const auto outcome = compare(bpf_op(insn.code), st.a, st.x);
        if (outcome && *outcome != taken) return std::nullopt;
    }
    return out;
}

namespace {

/// Lint checks evaluated at each reachable instruction before its
/// transfer: uninitialized reads, division hazards, impossible loads,
/// degenerate conditionals.
void collect_findings(const Program& prog, std::size_t pc, const AbsState& st,
                      std::vector<Finding>& out) {
    const Insn& insn = prog[pc];
    const std::uint16_t code = insn.code;
    const auto warn = [&](std::string message) {
        out.push_back(Finding{Severity::kWarning, pc, std::move(message)});
    };

    const bool uses_x = (bpf_class(code) == BPF_LD && bpf_mode(code) == BPF_IND) ||
                        (bpf_class(code) == BPF_ALU && bpf_src(code) == BPF_X &&
                         bpf_op(code) != BPF_NEG) ||
                        (bpf_class(code) == BPF_JMP && bpf_op(code) != BPF_JA &&
                         bpf_src(code) == BPF_X) ||
                        bpf_class(code) == BPF_STX ||
                        (bpf_class(code) == BPF_MISC && bpf_miscop(code) == BPF_TXA);
    if (uses_x) {
        if (!st.x_written_any)
            warn("use of uninitialized index register X (always zero here)");
        else if (!st.x_written_all)
            warn("index register X may be uninitialized on some paths");
    }

    const bool reads_mem = (bpf_class(code) == BPF_LD || bpf_class(code) == BPF_LDX) &&
                           bpf_mode(code) == BPF_MEM && insn.k < kMemWords;
    if (reads_mem) {
        const auto bit = static_cast<std::uint16_t>(1u << insn.k);
        if (!(st.mem_written_any & bit))
            warn("read of uninitialized scratch memory M[" + std::to_string(insn.k) + "]");
        else if (!(st.mem_written_all & bit))
            warn("scratch memory M[" + std::to_string(insn.k) +
                 "] may be uninitialized on some paths");
    }

    if (bpf_class(code) == BPF_ALU && bpf_op(code) == BPF_DIV && bpf_src(code) == BPF_X) {
        if (st.x.is_constant() && st.x.constant_value() == 0)
            warn("division by zero: X is always zero here; the filter always rejects");
        else if (st.x.contains(0))
            warn("division by possibly-zero X rejects the packet at runtime");
    }

    if (bpf_class(code) == BPF_LD && bpf_mode(code) == BPF_ABS &&
        static_cast<std::uint64_t>(insn.k) + load_size_bytes(code) > kMaxPacketBytes + 1ull)
        warn("absolute packet load at offset " + std::to_string(insn.k) +
             " can never be in bounds; the filter always rejects here");

    if (bpf_class(code) == BPF_JMP && bpf_op(code) != BPF_JA && insn.jt == insn.jf)
        warn("conditional jump with identical targets; behaves as an unconditional jump");
}

}  // namespace

InterpResult interpret(const Program& prog) {
    InterpResult res;
    const std::size_t n = prog.size();
    res.in.assign(n, std::nullopt);
    if (n == 0) return res;
    res.in[0] = AbsState{};

    const auto flow_to = [&](std::size_t target, AbsState&& st) {
        if (target >= n) return;
        if (!res.in[target])
            res.in[target] = std::move(st);
        else
            res.in[target] = join(*res.in[target], st);
    };

    std::uint32_t ret_hi = 0;
    for (std::size_t pc = 0; pc < n; ++pc) {
        if (!res.in[pc]) continue;
        const AbsState& st = *res.in[pc];
        const Insn& insn = prog[pc];
        collect_findings(prog, pc, st, res.findings);
        switch (bpf_class(insn.code)) {
            case BPF_RET:
                res.has_reachable_ret = true;
                ret_hi = std::max(
                    ret_hi, bpf_rval(insn.code) == BPF_A ? st.a.hi : insn.k);
                break;
            case BPF_JMP:
                if (bpf_op(insn.code) == BPF_JA) {
                    AbsState copy = st;
                    flow_to(pc + 1 + insn.k, std::move(copy));
                    break;
                }
                for (const bool taken : {true, false}) {
                    if (auto edge = refine_edge(insn, st, taken))
                        flow_to(pc + 1 + (taken ? insn.jt : insn.jf), std::move(*edge));
                }
                break;
            default: {
                AbsState out = st;
                if (apply(insn, out)) flow_to(pc + 1, std::move(out));
                break;
            }
        }
    }
    res.never_accepts = ret_hi == 0;
    return res;
}

}  // namespace capbench::bpf::analysis
