#include "capbench/bpf/analysis/fact_table.hpp"

#include <algorithm>
#include <limits>

namespace capbench::bpf::analysis {

namespace {

std::uint32_t load_size_bytes(std::uint16_t code) {
    switch (bpf_size(code)) {
        case BPF_W: return 4;
        case BPF_H: return 2;
        default: return 1;
    }
}

bool is_packet_load(const Insn& insn) {
    const std::uint16_t code = insn.code;
    if (bpf_class(code) == BPF_LD)
        return bpf_mode(code) == BPF_ABS || bpf_mode(code) == BPF_IND;
    if (bpf_class(code) == BPF_LDX) return bpf_mode(code) == BPF_MSH;
    return false;
}

/// Data bytes the load proves present once it has *succeeded*; 0 when the
/// proof depends on X and X's lower bound is unknown here.
std::uint64_t proven_on_success(const Insn& insn, const AbsState* st) {
    const std::uint16_t code = insn.code;
    switch (bpf_mode(code)) {
        case BPF_ABS:
            return static_cast<std::uint64_t>(insn.k) + load_size_bytes(code);
        case BPF_MSH:
            return static_cast<std::uint64_t>(insn.k) + 1;
        case BPF_IND:
            if (st == nullptr) return 0;
            return static_cast<std::uint64_t>(st->x.lo) + insn.k + load_size_bytes(code);
        default:
            return 0;
    }
}

/// Largest offset the load may touch, or nullopt when unbounded (an IND
/// load with an unknown X upper bound cannot be proven by any guard).
std::uint64_t worst_case_extent(const Insn& insn, const AbsState* st) {
    const std::uint16_t code = insn.code;
    switch (bpf_mode(code)) {
        case BPF_ABS:
            return static_cast<std::uint64_t>(insn.k) + load_size_bytes(code);
        case BPF_MSH:
            return static_cast<std::uint64_t>(insn.k) + 1;
        case BPF_IND:
            if (st == nullptr) return std::numeric_limits<std::uint64_t>::max();
            return static_cast<std::uint64_t>(st->x.hi) + insn.k + load_size_bytes(code);
        default:
            return 0;
    }
}

}  // namespace

FactTable FactTable::build(const Program& prog) {
    const Cfg cfg = Cfg::build(prog);
    const DomTree dom = DomTree::build(cfg);
    const Liveness live = Liveness::build(prog);
    const InterpResult interp = interpret(prog);
    return build(prog, cfg, dom, live, interp);
}

FactTable FactTable::build(const Program& prog, const Cfg& cfg, const DomTree& dom,
                           const Liveness& live, const InterpResult& interp) {
    FactTable table;
    const std::size_t n = prog.size();
    table.insns.resize(n);
    if (n == 0) return table;

    // Guard dataflow: min proven data length on entry, joined with min()
    // over incoming edges.  kTop marks "no edge reached yet".
    constexpr std::uint64_t kTop = std::numeric_limits<std::uint64_t>::max();
    std::vector<std::uint64_t> data_in(n, kTop);
    data_in[0] = 0;

    for (std::size_t pc = 0; pc < n; ++pc) {
        InsnFacts& f = table.insns[pc];
        f.reachable = pc < cfg.reachable.size() && cfg.reachable[pc];
        f.live_out = live.live_out[pc];
        f.dead_store = live.dead_store[pc];
        f.idom_insn = idom_insn(cfg, dom, pc);
        if (!f.reachable) continue;

        const Insn& insn = prog[pc];
        const AbsState* st = interp.in[pc] ? &*interp.in[pc] : nullptr;
        const std::uint64_t g = data_in[pc] == kTop ? 0 : data_in[pc];
        f.min_data_len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(g, std::numeric_limits<std::uint32_t>::max()));
        if (st != nullptr) {
            if (const AbsVal* len = st->fact(Sym{SymKind::kLen}))
                f.min_wire_len = len->lo;
        }

        if (is_packet_load(insn)) {
            f.redundant_load = st != nullptr && load_known_safe(insn, *st);
            f.safe_load = f.redundant_load || worst_case_extent(insn, st) <= g;
        } else if (bpf_class(insn.code) == BPF_LD || bpf_class(insn.code) == BPF_LDX) {
            f.safe_load = true;  // IMM / LEN / MEM loads cannot reject
        }

        // Constant result: replay the abstract transfer and check the
        // written register.  The domain over-approximates every concrete
        // execution, so a singleton here is a proof.
        if (st != nullptr &&
            (bpf_class(insn.code) == BPF_LD || bpf_class(insn.code) == BPF_LDX)) {
            AbsState after = *st;
            if (apply(insn, after)) {
                const AbsVal& out = bpf_class(insn.code) == BPF_LD ? after.a : after.x;
                if (out.is_constant()) {
                    f.const_result = true;
                    f.const_value = out.constant_value();
                }
            }
        }

        // Propagate the guard along the successor edges.  Packet loads
        // extend the proof on their success continuation; everything else
        // passes it through unchanged.
        std::uint64_t out = g;
        if (is_packet_load(insn)) out = std::max(out, proven_on_success(insn, st));
        for (const std::size_t succ : insn_successors(prog, pc))
            data_in[succ] = std::min(data_in[succ], out);
    }
    return table;
}

}  // namespace capbench::bpf::analysis
