#include "capbench/bpf/analysis/cfg.hpp"

#include <algorithm>

namespace capbench::bpf::analysis {

std::vector<std::size_t> insn_successors(const Program& prog, std::size_t pc) {
    std::vector<std::size_t> out;
    if (pc >= prog.size()) return out;
    const Insn& insn = prog[pc];
    const auto push = [&](std::size_t target) {
        if (target < prog.size()) out.push_back(target);
    };
    if (bpf_class(insn.code) == BPF_RET) return out;
    if (bpf_class(insn.code) == BPF_JMP) {
        if (bpf_op(insn.code) == BPF_JA) {
            push(pc + 1 + insn.k);
        } else {
            push(pc + 1 + insn.jt);
            if (insn.jf != insn.jt) push(pc + 1 + insn.jf);
        }
        return out;
    }
    push(pc + 1);
    return out;
}

Cfg Cfg::build(const Program& prog) {
    Cfg cfg;
    const std::size_t n = prog.size();
    cfg.block_of.assign(n, -1);
    cfg.reachable.assign(n, false);
    if (n == 0) return cfg;

    // Instruction-level reachability (forward jumps: a simple sweep works,
    // but a worklist is just as short and independent of that property).
    std::vector<std::size_t> work{0};
    while (!work.empty()) {
        const std::size_t pc = work.back();
        work.pop_back();
        if (pc >= n || cfg.reachable[pc]) continue;
        cfg.reachable[pc] = true;
        for (const std::size_t succ : insn_successors(prog, pc)) work.push_back(succ);
    }

    // Leaders: entry, every jump target, every instruction after a branch
    // or return.  Only reachable instructions form blocks.
    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (std::size_t pc = 0; pc < n; ++pc) {
        if (!cfg.reachable[pc]) continue;
        const Insn& insn = prog[pc];
        const bool ends_block =
            bpf_class(insn.code) == BPF_JMP || bpf_class(insn.code) == BPF_RET;
        if (ends_block && pc + 1 < n) leader[pc + 1] = true;
        if (bpf_class(insn.code) == BPF_JMP) {
            for (const std::size_t succ : insn_successors(prog, pc)) leader[succ] = true;
        }
    }

    for (std::size_t pc = 0; pc < n; ++pc) {
        if (!cfg.reachable[pc]) continue;
        if (leader[pc] || cfg.blocks.empty() ||
            cfg.blocks.back().last + 1 != pc) {
            cfg.blocks.push_back(BasicBlock{pc, pc, {}});
        } else {
            cfg.blocks.back().last = pc;
        }
        cfg.block_of[pc] = static_cast<std::int32_t>(cfg.blocks.size() - 1);
    }

    for (auto& block : cfg.blocks) {
        for (const std::size_t succ : insn_successors(prog, block.last)) {
            if (succ < n && cfg.block_of[succ] >= 0) {
                const auto idx = static_cast<std::size_t>(cfg.block_of[succ]);
                if (std::find(block.succs.begin(), block.succs.end(), idx) ==
                    block.succs.end())
                    block.succs.push_back(idx);
            }
        }
    }
    return cfg;
}

}  // namespace capbench::bpf::analysis
