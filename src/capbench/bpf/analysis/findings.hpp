// Diagnostics emitted by the BPF static analyzer (Section 6.6 tooling).
//
// A Finding anchors a message to one instruction.  kError findings are the
// hard failures validate() reports; kWarning findings are legal-but-wrong
// programs (unreachable code, uninitialized reads, filters that can never
// accept); kInfo findings are derived facts (return-value ranges).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace capbench::bpf::analysis {

enum class Severity { kError, kWarning, kInfo };

struct Finding {
    Severity severity = Severity::kWarning;
    std::size_t insn = 0;  // instruction index the finding anchors to
    std::string message;

    friend bool operator==(const Finding&, const Finding&) = default;
};

std::string to_string(Severity severity);

/// "insn 12: warning: unreachable instruction"
std::string to_string(const Finding& finding);

}  // namespace capbench::bpf::analysis
