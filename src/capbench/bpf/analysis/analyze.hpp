// analyze(): the warning/info layer above validate().
//
// validate() (bpf/validator.hpp) reports hard errors — programs a kernel
// would refuse to attach.  analyze() accepts any valid program and reports
// what is *wrong but legal*: unreachable instructions, reads of scratch
// memory or X that were never written, divisions that can reject at
// runtime, loads that can never be in bounds, degenerate conditional
// jumps, and filters that provably never accept a packet.  Info findings
// carry derived facts such as RET-value ranges.
#pragma once

#include "capbench/bpf/analysis/findings.hpp"
#include "capbench/bpf/insn.hpp"

namespace capbench::bpf::analysis {

/// Runs CFG construction + abstract interpretation and returns all
/// findings, sorted by instruction index (errors first on ties).  An
/// invalid program yields exactly one kError finding (the validate()
/// reason) and no further analysis.
std::vector<Finding> analyze(const Program& prog);

/// Convenience filters.
bool has_errors(const std::vector<Finding>& findings);
bool has_warnings(const std::vector<Finding>& findings);

}  // namespace capbench::bpf::analysis
