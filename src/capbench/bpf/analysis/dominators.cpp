#include "capbench/bpf/analysis/dominators.hpp"

namespace capbench::bpf::analysis {

DomTree DomTree::build(const Cfg& cfg) {
    DomTree tree;
    const std::size_t n = cfg.blocks.size();
    tree.idom.assign(n, 0);
    if (n == 0) return tree;

    // Predecessor lists from the stored successor edges.
    std::vector<std::vector<std::uint32_t>> preds(n);
    for (std::size_t b = 0; b < n; ++b)
        for (const std::size_t succ : cfg.blocks[b].succs)
            preds[succ].push_back(static_cast<std::uint32_t>(b));

    // Walk both fingers up the (partially built) tree until they meet.
    // idom[b] < b for every non-entry block, so "higher index" means
    // "deeper"; the entry terminates every chain.
    const auto intersect = [&](std::uint32_t u, std::uint32_t v) {
        while (u != v) {
            while (u > v) u = tree.idom[u];
            while (v > u) v = tree.idom[v];
        }
        return u;
    };

    for (std::uint32_t b = 1; b < n; ++b) {
        bool have = false;
        std::uint32_t dom = 0;
        for (const std::uint32_t p : preds[b]) {
            // All predecessors have a smaller index (forward jumps only),
            // so their idoms are final by the time we get here.
            dom = have ? intersect(dom, p) : p;
            have = true;
        }
        tree.idom[b] = dom;
    }
    return tree;
}

bool DomTree::dominates(std::size_t a, std::size_t b) const {
    if (a >= idom.size() || b >= idom.size()) return false;
    // Dominators of b all have index <= b; walk up until we pass a.
    while (b > a) b = idom[b];
    return b == a;
}

bool insn_dominates(const Cfg& cfg, const DomTree& dom, std::size_t a, std::size_t b) {
    if (a >= cfg.block_of.size() || b >= cfg.block_of.size()) return false;
    const std::int32_t ba = cfg.block_of[a];
    const std::int32_t bb = cfg.block_of[b];
    if (ba < 0 || bb < 0) return false;
    if (ba == bb) return a <= b;
    return dom.dominates(static_cast<std::size_t>(ba), static_cast<std::size_t>(bb)) &&
           ba != bb;
}

std::int64_t idom_insn(const Cfg& cfg, const DomTree& dom, std::size_t pc) {
    if (pc >= cfg.block_of.size() || cfg.block_of[pc] < 0) return -1;
    const auto block = static_cast<std::size_t>(cfg.block_of[pc]);
    if (pc != cfg.blocks[block].first) return static_cast<std::int64_t>(pc - 1);
    if (block == 0) return -1;
    return static_cast<std::int64_t>(cfg.blocks[dom.idom[block]].last);
}

}  // namespace capbench::bpf::analysis
