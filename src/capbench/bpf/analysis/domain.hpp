// Abstract value domain for the BPF analyzer.
//
// Each 32-bit value is tracked as the product of three cheap domains:
//   * an unsigned interval [lo, hi],
//   * known bits (mask of bit positions whose value is proven, tri-state),
//   * at most one excluded value ("not equal to ne"), which is what a
//     fallen-through JEQ teaches us and what intervals cannot express.
// The domains cross-refine in normalize(): a singleton interval makes every
// bit known, agreeing leading bits of lo/hi become known bits, and known
// bits tighten the interval bounds.
#pragma once

#include <cstdint>
#include <optional>

namespace capbench::bpf::analysis {

struct AbsVal {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0xFFFFFFFFu;
    std::uint32_t known_mask = 0;  // bits whose value is proven
    std::uint32_t known_val = 0;   // value of those bits (subset of mask)
    bool has_ne = false;
    std::uint32_t ne = 0;  // proven excluded value

    static AbsVal top() { return AbsVal{}; }
    static AbsVal constant(std::uint32_t k) {
        return AbsVal{k, k, 0xFFFFFFFFu, k, false, 0};
    }
    static AbsVal range(std::uint32_t lo, std::uint32_t hi);

    [[nodiscard]] bool is_constant() const { return lo == hi; }
    [[nodiscard]] std::uint32_t constant_value() const { return lo; }
    /// May the value be `v`?
    [[nodiscard]] bool contains(std::uint32_t v) const;

    /// Reconciles the three domains; returns false on contradiction (the
    /// state is infeasible: no concrete value satisfies it).
    bool normalize();

    friend bool operator==(const AbsVal&, const AbsVal&) = default;
};

/// Least upper bound: anything either value allows.
AbsVal join(const AbsVal& a, const AbsVal& b);

/// Greatest lower bound; std::nullopt when the intersection is empty.
std::optional<AbsVal> meet(const AbsVal& a, const AbsVal& b);

/// Transfer function for a BPF_ALU operation (BPF_ADD..BPF_NEG opcode
/// values from insn.hpp).  Mirrors Vm::run semantics, including shift >= 32
/// yielding 0.  Division by a possibly-zero divisor assumes the non-zero
/// continuation (the VM rejects otherwise); callers handle the zero case.
AbsVal alu_transfer(std::uint16_t op, const AbsVal& a, const AbsVal& operand);

/// Outcome of `a <op> b` for a conditional jump (BPF_JEQ/JGT/JGE/JSET), or
/// std::nullopt when the domain cannot decide it.
std::optional<bool> compare(std::uint16_t jmp_op, const AbsVal& a, const AbsVal& b);

/// Refines `a` along one edge of `a <op> k` (constant operand); nullopt
/// when that edge is infeasible.
std::optional<AbsVal> refine(const AbsVal& a, std::uint16_t jmp_op, std::uint32_t k,
                             bool taken);

}  // namespace capbench::bpf::analysis
