// Backward liveness for the BPF machine state: register A, index X, the
// 16 scratch words.
//
// Live-out sets are bitmasks (bit 0 = A, bit 1 = X, bit 2+i = M[i]).
// Because every jump is forward, all successors of an instruction have
// higher indices, and a single reverse sweep reaches the fixpoint.
// `dead_store` flags side-effect-free instructions whose only definition
// is never read — stores shadowed before use, loads into a register that
// is overwritten unread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "capbench/bpf/insn.hpp"

namespace capbench::bpf::analysis {

inline constexpr std::uint32_t kLiveA = 1u << 0;
inline constexpr std::uint32_t kLiveX = 1u << 1;
constexpr std::uint32_t live_mem_bit(std::uint32_t slot) { return 1u << (2 + slot); }

struct Liveness {
    /// Live-out mask per instruction (what a later instruction may read).
    std::vector<std::uint32_t> live_out;
    /// The instruction writes A, X or a scratch word, has no other effect,
    /// and nothing it writes is live-out.  Packet loads that may reject and
    /// divisions that may trap are never flagged — they filter packets even
    /// when their result goes unread.
    std::vector<bool> dead_store;

    static Liveness build(const Program& prog);
};

/// Registers/slots the instruction reads (kLiveA | kLiveX | mem bits).
std::uint32_t insn_uses(const Insn& insn);

/// Registers/slots the instruction writes.
std::uint32_t insn_defs(const Insn& insn);

}  // namespace capbench::bpf::analysis
