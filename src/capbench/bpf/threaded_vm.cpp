#include "capbench/bpf/threaded_vm.hpp"

#include <array>

namespace capbench::bpf {

namespace {

std::uint32_t raw_b(const std::byte* p) { return std::to_integer<std::uint32_t>(*p); }
std::uint32_t raw_h(const std::byte* p) { return (raw_b(p) << 8) | raw_b(p + 1); }
std::uint32_t raw_w(const std::byte* p) {
    return (raw_b(p) << 24) | (raw_b(p + 1) << 16) | (raw_b(p + 2) << 8) | raw_b(p + 3);
}

}  // namespace

// Token-threaded dispatch is a GNU extension (&&label / goto *); other
// compilers run the same handler bodies under a dense switch.
#if defined(__GNUC__) || defined(__clang__)
#define CAPBENCH_BPF_COMPUTED_GOTO 1
#else
#define CAPBENCH_BPF_COMPUTED_GOTO 0
#endif

bool ThreadedVm::computed_goto() { return CAPBENCH_BPF_COMPUTED_GOTO != 0; }

#if CAPBENCH_BPF_COMPUTED_GOTO
#define VM_TARGET(tok) T_##tok:
#define VM_NEXT()                                                   \
    insn = insns + pc;                                              \
    ++pc;                                                           \
    ++executed;                                                     \
    goto* kLabels[static_cast<std::size_t>(insn->tok)]
#else
#define VM_TARGET(tok) case Tok::tok:
#define VM_NEXT() break
#endif

VmResult ThreadedVm::run(const DecodedProgram& prog, std::span<const std::byte> data,
                         std::uint32_t wire_len) {
    VmResult result;
    if (prog.insns.empty()) {
        result.aborted = true;
        return result;
    }
    const DecodedInsn* const insns = prog.insns.data();
    const std::byte* const base = data.data();
    const std::size_t size = data.size();
    std::uint32_t a = 0;
    std::uint32_t x = 0;
    std::array<std::uint32_t, kMemWords> mem{};
    std::uint32_t executed = 0;
    std::size_t pc = 0;
    const DecodedInsn* insn = nullptr;

#if CAPBENCH_BPF_COMPUTED_GOTO
    static const void* const kLabels[] = {
        &&T_kLdImm, &&T_kLdLen, &&T_kLdMem,
        &&T_kLdAbsW, &&T_kLdAbsH, &&T_kLdAbsB,
        &&T_kLdAbsWU, &&T_kLdAbsHU, &&T_kLdAbsBU,
        &&T_kLdIndW, &&T_kLdIndH, &&T_kLdIndB,
        &&T_kLdIndWU, &&T_kLdIndHU, &&T_kLdIndBU,
        &&T_kLdxImm, &&T_kLdxLen, &&T_kLdxMem, &&T_kLdxMsh, &&T_kLdxMshU,
        &&T_kSt, &&T_kStx,
        &&T_kAddK, &&T_kSubK, &&T_kMulK, &&T_kDivK,
        &&T_kOrK, &&T_kAndK, &&T_kLshK, &&T_kRshK,
        &&T_kAddX, &&T_kSubX, &&T_kMulX, &&T_kDivX,
        &&T_kOrX, &&T_kAndX, &&T_kLshX, &&T_kRshX,
        &&T_kNeg,
        &&T_kJa,
        &&T_kJeqK, &&T_kJgtK, &&T_kJgeK, &&T_kJsetK,
        &&T_kJeqX, &&T_kJgtX, &&T_kJgeX, &&T_kJsetX,
        &&T_kRetK, &&T_kRetA,
        &&T_kTax, &&T_kTxa,
    };
    static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                      static_cast<std::size_t>(Tok::kCount_),
                  "dispatch table out of sync with Tok");
    VM_NEXT();
#else
    for (;;) {
        insn = insns + pc;
        ++pc;
        ++executed;
        switch (insn->tok) {
#endif

    VM_TARGET(kLdImm) { a = insn->k; VM_NEXT(); }
    VM_TARGET(kLdLen) { a = wire_len; VM_NEXT(); }
    VM_TARGET(kLdMem) { a = mem[insn->k]; VM_NEXT(); }

    VM_TARGET(kLdAbsW) {
        const std::uint64_t off = insn->k;
        if (off + 4 > size) goto abort_;
        a = raw_w(base + off);
        VM_NEXT();
    }
    VM_TARGET(kLdAbsH) {
        const std::uint64_t off = insn->k;
        if (off + 2 > size) goto abort_;
        a = raw_h(base + off);
        VM_NEXT();
    }
    VM_TARGET(kLdAbsB) {
        if (insn->k >= size) goto abort_;
        a = raw_b(base + insn->k);
        VM_NEXT();
    }
    VM_TARGET(kLdAbsWU) { a = raw_w(base + insn->k); VM_NEXT(); }
    VM_TARGET(kLdAbsHU) { a = raw_h(base + insn->k); VM_NEXT(); }
    VM_TARGET(kLdAbsBU) { a = raw_b(base + insn->k); VM_NEXT(); }

    VM_TARGET(kLdIndW) {
        const std::uint64_t off = static_cast<std::uint64_t>(x) + insn->k;
        if (off + 4 > size) goto abort_;
        a = raw_w(base + off);
        VM_NEXT();
    }
    VM_TARGET(kLdIndH) {
        const std::uint64_t off = static_cast<std::uint64_t>(x) + insn->k;
        if (off + 2 > size) goto abort_;
        a = raw_h(base + off);
        VM_NEXT();
    }
    VM_TARGET(kLdIndB) {
        const std::uint64_t off = static_cast<std::uint64_t>(x) + insn->k;
        if (off >= size) goto abort_;
        a = raw_b(base + off);
        VM_NEXT();
    }
    VM_TARGET(kLdIndWU) {
        a = raw_w(base + static_cast<std::size_t>(x) + insn->k);
        VM_NEXT();
    }
    VM_TARGET(kLdIndHU) {
        a = raw_h(base + static_cast<std::size_t>(x) + insn->k);
        VM_NEXT();
    }
    VM_TARGET(kLdIndBU) {
        a = raw_b(base + static_cast<std::size_t>(x) + insn->k);
        VM_NEXT();
    }

    VM_TARGET(kLdxImm) { x = insn->k; VM_NEXT(); }
    VM_TARGET(kLdxLen) { x = wire_len; VM_NEXT(); }
    VM_TARGET(kLdxMem) { x = mem[insn->k]; VM_NEXT(); }
    VM_TARGET(kLdxMsh) {
        if (insn->k >= size) goto abort_;
        x = 4u * (raw_b(base + insn->k) & 0x0Fu);
        VM_NEXT();
    }
    VM_TARGET(kLdxMshU) {
        x = 4u * (raw_b(base + insn->k) & 0x0Fu);
        VM_NEXT();
    }

    VM_TARGET(kSt) { mem[insn->k] = a; VM_NEXT(); }
    VM_TARGET(kStx) { mem[insn->k] = x; VM_NEXT(); }

    VM_TARGET(kAddK) { a += insn->k; VM_NEXT(); }
    VM_TARGET(kSubK) { a -= insn->k; VM_NEXT(); }
    VM_TARGET(kMulK) { a *= insn->k; VM_NEXT(); }
    VM_TARGET(kDivK) { a /= insn->k; VM_NEXT(); }  // k != 0: verifier-checked
    VM_TARGET(kOrK) { a |= insn->k; VM_NEXT(); }
    VM_TARGET(kAndK) { a &= insn->k; VM_NEXT(); }
    VM_TARGET(kLshK) { a <<= insn->k; VM_NEXT(); }  // k < 32: decode folds the rest
    VM_TARGET(kRshK) { a >>= insn->k; VM_NEXT(); }

    VM_TARGET(kAddX) { a += x; VM_NEXT(); }
    VM_TARGET(kSubX) { a -= x; VM_NEXT(); }
    VM_TARGET(kMulX) { a *= x; VM_NEXT(); }
    VM_TARGET(kDivX) {
        if (x == 0) goto abort_;
        a /= x;
        VM_NEXT();
    }
    VM_TARGET(kOrX) { a |= x; VM_NEXT(); }
    VM_TARGET(kAndX) { a &= x; VM_NEXT(); }
    VM_TARGET(kLshX) { a = x < 32 ? a << x : 0; VM_NEXT(); }
    VM_TARGET(kRshX) { a = x < 32 ? a >> x : 0; VM_NEXT(); }
    VM_TARGET(kNeg) {
        a = static_cast<std::uint32_t>(-static_cast<std::int32_t>(a));
        VM_NEXT();
    }

    VM_TARGET(kJa) { pc = insn->jt; VM_NEXT(); }
    VM_TARGET(kJeqK) { pc = a == insn->k ? insn->jt : insn->jf; VM_NEXT(); }
    VM_TARGET(kJgtK) { pc = a > insn->k ? insn->jt : insn->jf; VM_NEXT(); }
    VM_TARGET(kJgeK) { pc = a >= insn->k ? insn->jt : insn->jf; VM_NEXT(); }
    VM_TARGET(kJsetK) { pc = (a & insn->k) != 0 ? insn->jt : insn->jf; VM_NEXT(); }
    VM_TARGET(kJeqX) { pc = a == x ? insn->jt : insn->jf; VM_NEXT(); }
    VM_TARGET(kJgtX) { pc = a > x ? insn->jt : insn->jf; VM_NEXT(); }
    VM_TARGET(kJgeX) { pc = a >= x ? insn->jt : insn->jf; VM_NEXT(); }
    VM_TARGET(kJsetX) { pc = (a & x) != 0 ? insn->jt : insn->jf; VM_NEXT(); }

    VM_TARGET(kRetK) {
        result.accept_len = insn->k;
        result.insns_executed = executed;
        return result;
    }
    VM_TARGET(kRetA) {
        result.accept_len = a;
        result.insns_executed = executed;
        return result;
    }

    VM_TARGET(kTax) { x = a; VM_NEXT(); }
    VM_TARGET(kTxa) { a = x; VM_NEXT(); }

#if !CAPBENCH_BPF_COMPUTED_GOTO
        case Tok::kCount_:
            goto abort_;
        }
    }
#endif

abort_:
    result.insns_executed = executed;
    result.aborted = true;
    return result;
}

#undef VM_TARGET
#undef VM_NEXT

}  // namespace capbench::bpf
