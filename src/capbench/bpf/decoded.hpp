// Pre-decoded BPF programs: the tier-1 execution format.
//
// decode() runs once at attach time and pays everything the interpreter
// pays per packet: opcode-field masking collapses into one dense token,
// jump offsets become absolute targets, and the verifier's FactTable picks
// the specialized token per site — unchecked load variants where a
// dominating load already proves the bytes present, immediate loads where
// the value is a proven constant, exact shifts where the count is known.
// The token stream is what the threaded dispatcher (threaded_vm.hpp)
// executes and what the tier-2 native code generator (jit/) consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capbench/bpf/analysis/fact_table.hpp"
#include "capbench/bpf/insn.hpp"

namespace capbench::bpf {

enum class Tok : std::uint8_t {
    kLdImm,   // A = k
    kLdLen,   // A = wire_len
    kLdMem,   // A = M[k]          (k validated < kMemWords)
    kLdAbsW, kLdAbsH, kLdAbsB,     // checked absolute packet loads
    kLdAbsWU, kLdAbsHU, kLdAbsBU,  // unchecked: fact table proves in bounds
    kLdIndW, kLdIndH, kLdIndB,     // checked indirect packet loads
    kLdIndWU, kLdIndHU, kLdIndBU,
    kLdxImm,  // X = k
    kLdxLen,  // X = wire_len
    kLdxMem,  // X = M[k]
    kLdxMsh,  // X = 4 * (pkt[k] & 0x0F), checked
    kLdxMshU,
    kSt,      // M[k] = A
    kStx,     // M[k] = X
    kAddK, kSubK, kMulK, kDivK, kOrK, kAndK, kLshK, kRshK,
    kAddX, kSubX, kMulX, kDivX, kOrX, kAndX, kLshX, kRshX,
    kNeg,
    kJa,                            // pc = jt
    kJeqK, kJgtK, kJgeK, kJsetK,    // pc = cond ? jt : jf (absolute)
    kJeqX, kJgtX, kJgeX, kJsetX,
    kRetK,    // accept_len = k
    kRetA,    // accept_len = A
    kTax, kTxa,
    kCount_,  // sentinel, keeps the dispatch table in sync
};

/// DecodedInsn::flags bit: the liveness pass proved this scratch store is
/// never read.  The threaded tier still executes it (one store is cheaper
/// than a branch there); the JIT emits no body but still counts it so
/// insns_executed stays byte-identical across tiers.
inline constexpr std::uint8_t kDecodedDeadStore = 1u << 0;

struct DecodedInsn {
    Tok tok = Tok::kRetK;
    std::uint8_t flags = 0;
    std::uint32_t k = 0;   // operand / immediate
    std::uint32_t jt = 0;  // absolute taken target (and the kJa target)
    std::uint32_t jf = 0;  // absolute fallthrough target
};

struct DecodeStats {
    std::uint32_t packet_loads = 0;     // ABS/IND/MSH sites in the source
    std::uint32_t unchecked_loads = 0;  // sites decoded without a bounds check
    std::uint32_t folded_loads = 0;     // loads decoded as immediates
    std::uint32_t dead_stores = 0;      // stores flagged kDecodedDeadStore
};

struct DecodedProgram {
    std::vector<DecodedInsn> insns;
    DecodeStats stats;
    /// Program-cache identity (monotonic, process-wide); 0 when the
    /// program was decoded directly rather than through the cache.
    std::uint64_t id = 0;
};

/// `prog` must have passed the verifier; `facts` must come from the same
/// program (verify(prog).facts or FactTable::build(prog)).
DecodedProgram decode(const Program& prog, const analysis::FactTable& facts);

/// Which tier FilterRunner executes.  Read once per process from
/// CAPBENCH_BPF_TIER ("threaded", the default, "interpreter", or "jit");
/// all tiers produce bit-identical verdicts, so figures are unaffected.
enum class ExecTier { kThreaded, kInterpreter, kJit };
ExecTier exec_tier();
/// Strict parse; throws std::runtime_error on anything else.
ExecTier parse_exec_tier(const std::string& value);

/// Portable fallback policy: a jit request downgrades to the threaded tier
/// on builds that cannot emit native code (JitProgram::supported() false).
/// Pure so the non-x86-64 path is unit-testable everywhere.
constexpr ExecTier effective_tier(ExecTier requested, bool jit_supported) {
    return requested == ExecTier::kJit && !jit_supported ? ExecTier::kThreaded
                                                         : requested;
}

}  // namespace capbench::bpf
