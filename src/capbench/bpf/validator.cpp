#include "capbench/bpf/validator.hpp"

#include <stdexcept>

namespace capbench::bpf {

namespace {

std::string at(std::size_t pc, const std::string& what) {
    return "insn " + std::to_string(pc) + ": " + what;
}

// Exact opcode enumeration, the way the kernels' sk_chk_filter() does it.
// Class-based masking is not enough: 0x0d (JA with the source bit set) or
// 0x8c (NEG|X) carry junk bits, decode by accident on some interpreters,
// and must be rejected before attach.

bool known_load(std::uint16_t code) {
    switch (code) {
        case BPF_LD | BPF_W | BPF_IMM:
        case BPF_LD | BPF_W | BPF_ABS:
        case BPF_LD | BPF_H | BPF_ABS:
        case BPF_LD | BPF_B | BPF_ABS:
        case BPF_LD | BPF_W | BPF_IND:
        case BPF_LD | BPF_H | BPF_IND:
        case BPF_LD | BPF_B | BPF_IND:
        case BPF_LD | BPF_W | BPF_LEN:
        case BPF_LD | BPF_W | BPF_MEM:
            return true;
        default:
            return false;
    }
}

bool known_ldx(std::uint16_t code) {
    switch (code) {
        case BPF_LDX | BPF_W | BPF_IMM:
        case BPF_LDX | BPF_W | BPF_LEN:
        case BPF_LDX | BPF_W | BPF_MEM:
        case BPF_LDX | BPF_B | BPF_MSH:
            return true;
        default:
            return false;
    }
}

bool known_alu(std::uint16_t code) {
    switch (code) {
        case BPF_ALU | BPF_ADD | BPF_K:
        case BPF_ALU | BPF_ADD | BPF_X:
        case BPF_ALU | BPF_SUB | BPF_K:
        case BPF_ALU | BPF_SUB | BPF_X:
        case BPF_ALU | BPF_MUL | BPF_K:
        case BPF_ALU | BPF_MUL | BPF_X:
        case BPF_ALU | BPF_DIV | BPF_K:
        case BPF_ALU | BPF_DIV | BPF_X:
        case BPF_ALU | BPF_OR | BPF_K:
        case BPF_ALU | BPF_OR | BPF_X:
        case BPF_ALU | BPF_AND | BPF_K:
        case BPF_ALU | BPF_AND | BPF_X:
        case BPF_ALU | BPF_LSH | BPF_K:
        case BPF_ALU | BPF_LSH | BPF_X:
        case BPF_ALU | BPF_RSH | BPF_K:
        case BPF_ALU | BPF_RSH | BPF_X:
        case BPF_ALU | BPF_NEG:  // NEG takes no source operand
            return true;
        default:
            return false;
    }
}

bool known_jmp(std::uint16_t code) {
    switch (code) {
        case BPF_JMP | BPF_JA:  // JA takes no source operand
        case BPF_JMP | BPF_JEQ | BPF_K:
        case BPF_JMP | BPF_JEQ | BPF_X:
        case BPF_JMP | BPF_JGT | BPF_K:
        case BPF_JMP | BPF_JGT | BPF_X:
        case BPF_JMP | BPF_JGE | BPF_K:
        case BPF_JMP | BPF_JGE | BPF_X:
        case BPF_JMP | BPF_JSET | BPF_K:
        case BPF_JMP | BPF_JSET | BPF_X:
            return true;
        default:
            return false;
    }
}

}  // namespace

std::optional<std::string> validate(const Program& prog) {
    if (prog.empty()) return "empty program";
    if (prog.size() > kMaxInsns) return "program longer than " + std::to_string(kMaxInsns);

    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        const Insn& insn = prog[pc];
        switch (bpf_class(insn.code)) {
            case BPF_LD:
                if (!known_load(insn.code)) return at(pc, "unknown load opcode");
                if (bpf_mode(insn.code) == BPF_MEM && insn.k >= kMemWords)
                    return at(pc, "scratch index out of range");
                break;
            case BPF_LDX:
                if (!known_ldx(insn.code)) return at(pc, "unknown ldx opcode");
                if (bpf_mode(insn.code) == BPF_MEM && insn.k >= kMemWords)
                    return at(pc, "scratch index out of range");
                break;
            case BPF_ST:
                if (insn.code != BPF_ST) return at(pc, "unknown store opcode");
                if (insn.k >= kMemWords) return at(pc, "scratch index out of range");
                break;
            case BPF_STX:
                if (insn.code != BPF_STX) return at(pc, "unknown store opcode");
                if (insn.k >= kMemWords) return at(pc, "scratch index out of range");
                break;
            case BPF_ALU:
                if (!known_alu(insn.code)) return at(pc, "unknown alu opcode");
                if (bpf_op(insn.code) == BPF_DIV && bpf_src(insn.code) == BPF_K && insn.k == 0)
                    return at(pc, "constant division by zero");
                break;
            case BPF_JMP: {
                if (!known_jmp(insn.code)) return at(pc, "unknown jump opcode");
                // Targets are pc + 1 + offset and must name an instruction.
                if (bpf_op(insn.code) == BPF_JA) {
                    if (pc + 1 + insn.k >= prog.size()) return at(pc, "ja target out of range");
                } else {
                    if (pc + 1 + insn.jt >= prog.size()) return at(pc, "jt target out of range");
                    if (pc + 1 + insn.jf >= prog.size()) return at(pc, "jf target out of range");
                }
                break;
            }
            case BPF_RET:
                if (insn.code != (BPF_RET | BPF_K) && insn.code != (BPF_RET | BPF_A))
                    return at(pc, "unknown ret source");
                break;
            case BPF_MISC:
                if (insn.code != (BPF_MISC | BPF_TAX) && insn.code != (BPF_MISC | BPF_TXA))
                    return at(pc, "unknown misc opcode");
                break;
            default:
                return at(pc, "unknown instruction class");
        }
    }

    if (bpf_class(prog.back().code) != BPF_RET) return "last instruction is not RET";
    return std::nullopt;
}

void validate_or_throw(const Program& prog) {
    if (const auto reason = validate(prog))
        throw std::invalid_argument("invalid BPF program: " + *reason);
}

}  // namespace capbench::bpf
