#include "capbench/bpf/validator.hpp"

#include <stdexcept>

namespace capbench::bpf {

namespace {

std::string at(std::size_t pc, const std::string& what) {
    return "insn " + std::to_string(pc) + ": " + what;
}

bool known_load(std::uint16_t code) {
    switch (bpf_mode(code) | bpf_size(code)) {
        case BPF_IMM | BPF_W:
        case BPF_ABS | BPF_W:
        case BPF_ABS | BPF_H:
        case BPF_ABS | BPF_B:
        case BPF_IND | BPF_W:
        case BPF_IND | BPF_H:
        case BPF_IND | BPF_B:
        case BPF_LEN | BPF_W:
        case BPF_MEM | BPF_W:
            return true;
        default:
            return false;
    }
}

bool known_ldx(std::uint16_t code) {
    switch (bpf_mode(code) | bpf_size(code)) {
        case BPF_IMM | BPF_W:
        case BPF_LEN | BPF_W:
        case BPF_MEM | BPF_W:
        case BPF_MSH | BPF_B:
            return true;
        default:
            return false;
    }
}

bool known_alu_op(std::uint16_t op) {
    switch (op) {
        case BPF_ADD:
        case BPF_SUB:
        case BPF_MUL:
        case BPF_DIV:
        case BPF_OR:
        case BPF_AND:
        case BPF_LSH:
        case BPF_RSH:
        case BPF_NEG:
            return true;
        default:
            return false;
    }
}

bool known_jmp_op(std::uint16_t op) {
    switch (op) {
        case BPF_JA:
        case BPF_JEQ:
        case BPF_JGT:
        case BPF_JGE:
        case BPF_JSET:
            return true;
        default:
            return false;
    }
}

}  // namespace

std::optional<std::string> validate(const Program& prog) {
    if (prog.empty()) return "empty program";
    if (prog.size() > kMaxInsns) return "program longer than " + std::to_string(kMaxInsns);

    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        const Insn& insn = prog[pc];
        switch (bpf_class(insn.code)) {
            case BPF_LD:
                if (!known_load(insn.code)) return at(pc, "unknown load opcode");
                if ((bpf_mode(insn.code)) == BPF_MEM && insn.k >= kMemWords)
                    return at(pc, "scratch index out of range");
                break;
            case BPF_LDX:
                if (!known_ldx(insn.code)) return at(pc, "unknown ldx opcode");
                if ((bpf_mode(insn.code)) == BPF_MEM && insn.k >= kMemWords)
                    return at(pc, "scratch index out of range");
                break;
            case BPF_ST:
            case BPF_STX:
                if (insn.k >= kMemWords) return at(pc, "scratch index out of range");
                break;
            case BPF_ALU:
                if (!known_alu_op(bpf_op(insn.code))) return at(pc, "unknown alu opcode");
                if (bpf_op(insn.code) == BPF_DIV && bpf_src(insn.code) == BPF_K && insn.k == 0)
                    return at(pc, "constant division by zero");
                break;
            case BPF_JMP: {
                if (!known_jmp_op(bpf_op(insn.code))) return at(pc, "unknown jump opcode");
                // Targets are pc + 1 + offset and must name an instruction.
                if (bpf_op(insn.code) == BPF_JA) {
                    if (pc + 1 + insn.k >= prog.size()) return at(pc, "ja target out of range");
                } else {
                    if (pc + 1 + insn.jt >= prog.size()) return at(pc, "jt target out of range");
                    if (pc + 1 + insn.jf >= prog.size()) return at(pc, "jf target out of range");
                }
                break;
            }
            case BPF_RET:
                if (bpf_rval(insn.code) != BPF_K && bpf_rval(insn.code) != BPF_A)
                    return at(pc, "unknown ret source");
                break;
            case BPF_MISC:
                if (bpf_miscop(insn.code) != BPF_TAX && bpf_miscop(insn.code) != BPF_TXA)
                    return at(pc, "unknown misc opcode");
                break;
            default:
                return at(pc, "unknown instruction class");
        }
    }

    if (bpf_class(prog.back().code) != BPF_RET) return "last instruction is not RET";
    return std::nullopt;
}

void validate_or_throw(const Program& prog) {
    if (const auto reason = validate(prog))
        throw std::invalid_argument("invalid BPF program: " + *reason);
}

}  // namespace capbench::bpf
