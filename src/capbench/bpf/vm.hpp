// Classic BPF interpreter.
//
// Mirrors the kernel filter machines: register A, index register X, 16
// scratch memory words.  Out-of-bounds packet loads reject the packet
// (return 0), exactly like bpf_filter() in the kernels.  The VM counts
// executed instructions so the host simulation can charge filter cost from
// the real instruction path length instead of an assumed constant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "capbench/bpf/insn.hpp"

namespace capbench::bpf {

struct VmResult {
    /// Snapshot length: 0 rejects the packet; otherwise the number of bytes
    /// to capture (0xFFFFFFFF means "whole packet").
    std::uint32_t accept_len = 0;
    /// Instructions executed for this packet (filter cost).
    std::uint32_t insns_executed = 0;
    /// The run ended in a fault rather than a RET: out-of-bounds packet
    /// load, division by zero, malformed opcode or falling off the end.
    /// accept_len is 0 — the packet is rejected, like the kernels do — but
    /// the distinction feeds the capture stacks' abort counters.
    bool aborted = false;
};

class Vm {
public:
    /// Runs `prog` over the packet bytes.  `wire_len` is the original
    /// packet length, which may exceed data.size() for truncated captures;
    /// BPF_LEN loads yield it.  The program must have passed validate() —
    /// run() still guards memory accesses but reports malformed programs by
    /// rejecting the packet.
    static VmResult run(const Program& prog, std::span<const std::byte> data,
                        std::uint32_t wire_len);

    /// Convenience: run with wire_len == data.size().
    static VmResult run(const Program& prog, std::span<const std::byte> data) {
        return run(prog, data, static_cast<std::uint32_t>(data.size()));
    }
};

}  // namespace capbench::bpf
