#include "capbench/bpf/filter/lexer.hpp"

#include <cctype>
#include <stdexcept>

namespace capbench::bpf::filter {

namespace {

bool is_hex(char c) { return std::isxdigit(static_cast<unsigned char>(c)); }
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }
bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// True when input at `pos` looks like a MAC address: six groups of 1-2 hex
/// digits separated by colons.
bool looks_like_mac(const std::string& in, std::size_t pos) {
    int groups = 0;
    std::size_t i = pos;
    while (groups < 6) {
        std::size_t digits = 0;
        while (i < in.size() && is_hex(in[i]) && digits < 2) {
            ++i;
            ++digits;
        }
        if (digits == 0) return false;
        ++groups;
        if (groups == 6) break;
        if (i >= in.size() || in[i] != ':') return false;
        ++i;
    }
    // Must not be followed by another hex digit or colon group.
    return i >= in.size() || (!is_hex(in[i]) && in[i] != ':');
}

}  // namespace

std::vector<Token> tokenize(const std::string& input) {
    std::vector<Token> tokens;
    std::size_t i = 0;
    const auto push = [&](TokenKind kind, std::size_t start, std::string text = {},
                          std::uint64_t number = 0) {
        tokens.push_back(Token{kind, std::move(text), number, start});
    };

    while (i < input.size()) {
        const char c = input[i];
        const std::size_t start = i;
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (is_ident_start(c)) {
            // Could still be a MAC like "aa:bb:..." starting with letters.
            if (is_hex(c) && looks_like_mac(input, i)) {
                std::size_t j = i;
                while (j < input.size() && (is_hex(input[j]) || input[j] == ':')) ++j;
                push(TokenKind::kMac, start, input.substr(i, j - i));
                i = j;
                continue;
            }
            std::size_t j = i;
            while (j < input.size() && is_ident(input[j])) ++j;
            push(TokenKind::kIdent, start, input.substr(i, j - i));
            i = j;
            continue;
        }
        if (is_digit(c)) {
            if (looks_like_mac(input, i)) {
                std::size_t j = i;
                while (j < input.size() && (is_hex(input[j]) || input[j] == ':')) ++j;
                push(TokenKind::kMac, start, input.substr(i, j - i));
                i = j;
                continue;
            }
            // Hex number?
            if (c == '0' && i + 1 < input.size() && (input[i + 1] == 'x' || input[i + 1] == 'X')) {
                std::size_t j = i + 2;
                while (j < input.size() && is_hex(input[j])) ++j;
                if (j == i + 2) throw FilterError("bad hex literal", start);
                push(TokenKind::kNumber, start, {}, std::stoull(input.substr(i, j - i), nullptr, 16));
                i = j;
                continue;
            }
            // Decimal run; dotted quad detection.
            std::size_t j = i;
            while (j < input.size() && is_digit(input[j])) ++j;
            if (j < input.size() && input[j] == '.') {
                std::size_t k = i;
                int dots = 0;
                while (k < input.size() && (is_digit(input[k]) || input[k] == '.')) {
                    if (input[k] == '.') ++dots;
                    ++k;
                }
                if (dots != 3) throw FilterError("malformed IPv4 address", start);
                push(TokenKind::kIpv4, start, input.substr(i, k - i));
                i = k;
                continue;
            }
            push(TokenKind::kNumber, start, {}, std::stoull(input.substr(i, j - i)));
            i = j;
            continue;
        }
        switch (c) {
            case '(': push(TokenKind::kLParen, start); ++i; break;
            case ')': push(TokenKind::kRParen, start); ++i; break;
            case '[': push(TokenKind::kLBracket, start); ++i; break;
            case ']': push(TokenKind::kRBracket, start); ++i; break;
            case ':': push(TokenKind::kColon, start); ++i; break;
            case '/': push(TokenKind::kSlash, start); ++i; break;
            case '+': push(TokenKind::kPlus, start); ++i; break;
            case '-': push(TokenKind::kMinus, start); ++i; break;
            case '*': push(TokenKind::kStar, start); ++i; break;
            case '&': {
                if (i + 1 < input.size() && input[i + 1] == '&') {
                    push(TokenKind::kIdent, start, "and");
                    i += 2;
                } else {
                    push(TokenKind::kAmp, start);
                    ++i;
                }
                break;
            }
            case '|': {
                if (i + 1 < input.size() && input[i + 1] == '|') {
                    push(TokenKind::kIdent, start, "or");
                    i += 2;
                } else {
                    push(TokenKind::kPipe, start);
                    ++i;
                }
                break;
            }
            case '=':
                if (i + 1 < input.size() && input[i + 1] == '=') {
                    push(TokenKind::kEq, start);
                    i += 2;
                } else {
                    push(TokenKind::kEq, start);
                    ++i;
                }
                break;
            case '!':
                if (i + 1 < input.size() && input[i + 1] == '=') {
                    push(TokenKind::kNeq, start);
                    i += 2;
                } else {
                    push(TokenKind::kIdent, start, "not");
                    ++i;
                }
                break;
            case '>':
                if (i + 1 < input.size() && input[i + 1] == '=') {
                    push(TokenKind::kGe, start);
                    i += 2;
                } else {
                    push(TokenKind::kGt, start);
                    ++i;
                }
                break;
            case '<':
                if (i + 1 < input.size() && input[i + 1] == '=') {
                    push(TokenKind::kLe, start);
                    i += 2;
                } else {
                    push(TokenKind::kLt, start);
                    ++i;
                }
                break;
            default:
                throw FilterError(std::string("unexpected character '") + c + "'", start);
        }
    }
    tokens.push_back(Token{TokenKind::kEnd, {}, 0, input.size()});
    return tokens;
}

}  // namespace capbench::bpf::filter
