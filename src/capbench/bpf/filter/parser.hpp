// Recursive-descent parser for the filter language.
//
// Grammar (tcpdump dialect subset; enough for the Figure 6.5 filter and
// typical monitoring expressions):
//
//   expr      := and_expr ( "or" and_expr )*
//   and_expr  := unary ( "and" unary )*
//   unary     := "not" unary | "(" expr ")" | primitive
//   primitive := proto_kw
//              | ["ip"] [dir] "host"? ADDR-form    (host/src/dst matches)
//              | ["ip"] [dir] "net" NET ("/" LEN | "mask" ADDR)?
//              | [("tcp"|"udp")] [dir] "port" NUM
//              | "ether" ("src"|"dst"|"host") MAC
//              | "greater" NUM | "less" NUM
//              | arith RELOP arith
//   arith     := term (("+"|"-"|"|") term)*
//   term      := factor (("*"|"/"|"&") factor)*
//   factor    := NUM | "len" | base "[" NUM (":" NUM)? "]" | "(" arith ")"
//
// `dir` is "src", "dst", "src or dst" or "src and dst"; omitted means
// "src or dst".
#pragma once

#include <string>

#include "capbench/bpf/filter/ast.hpp"

namespace capbench::bpf::filter {

/// Parses a filter expression.  Throws FilterError on syntax errors.
/// An empty (or all-whitespace) expression yields a null pointer, meaning
/// "accept everything" — the libpcap convention.
ExprPtr parse(const std::string& input);

}  // namespace capbench::bpf::filter
