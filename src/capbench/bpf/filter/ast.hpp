// Abstract syntax tree for filter expressions.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>

#include "capbench/net/headers.hpp"

namespace capbench::bpf::filter {

enum class Proto { kIp, kTcp, kUdp, kIcmp, kArp, kRarp };

enum class Dir { kSrc, kDst };

enum class RelOp { kEq, kNeq, kGt, kLt, kGe, kLe };

enum class ArithOp { kAdd, kSub, kMul, kDiv, kAnd, kOr };

/// Which header an `proto[off:size]` accessor indexes into.
enum class AccessorBase { kEther, kIp, kTcp, kUdp, kIcmp };

// ---- arithmetic expressions -------------------------------------------------

struct Arith;
using ArithPtr = std::unique_ptr<Arith>;

struct ArithConst {
    std::uint32_t value = 0;
};

struct ArithLen {};  // the `len` keyword

struct ArithAccessor {
    AccessorBase base = AccessorBase::kEther;
    std::uint32_t offset = 0;
    std::uint32_t size = 1;  // 1, 2 or 4
};

struct ArithBinary {
    ArithOp op = ArithOp::kAdd;
    ArithPtr lhs;
    ArithPtr rhs;
};

struct Arith {
    std::variant<ArithConst, ArithLen, ArithAccessor, ArithBinary> node;
};

// ---- boolean expressions ----------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// `ip`, `tcp`, `arp`, ... on their own.
struct ProtoMatch {
    Proto proto = Proto::kIp;
};

/// `[ip] src|dst host A` (the both-directions form is expanded to an Or
/// during parsing).
struct HostMatch {
    Dir dir = Dir::kSrc;
    net::Ipv4Addr addr;
};

/// `[ip] src|dst net N/len` or `net N mask M`.
struct NetMatch {
    Dir dir = Dir::kSrc;
    std::uint32_t net = 0;   // host byte order, already masked
    std::uint32_t mask = 0;  // host byte order
};

/// `[tcp|udp] src|dst port N`; proto-unqualified matches either transport.
struct PortMatch {
    enum class Scope { kAny, kTcp, kUdp };
    Scope scope = Scope::kAny;
    Dir dir = Dir::kSrc;
    std::uint16_t port = 0;
};

/// `ether src|dst M`.
struct EtherHostMatch {
    Dir dir = Dir::kSrc;
    net::MacAddr mac;
};

/// `greater N` (len >= N) and `less N` (len <= N).
struct LenCompare {
    bool greater = true;
    std::uint32_t value = 0;
};

/// `arith relop arith`, e.g. `ether[6:4] = 0x0` or `ip[8] > 10`.
struct Relation {
    RelOp op = RelOp::kEq;
    ArithPtr lhs;
    ArithPtr rhs;
};

struct Not {
    ExprPtr child;
};
struct And {
    ExprPtr lhs;
    ExprPtr rhs;
};
struct Or {
    ExprPtr lhs;
    ExprPtr rhs;
};

struct Expr {
    std::variant<ProtoMatch, HostMatch, NetMatch, PortMatch, EtherHostMatch, LenCompare, Relation,
                 Not, And, Or>
        node;
};

}  // namespace capbench::bpf::filter
