// Tokenizer for the tcpdump-dialect filter expression language.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace capbench::bpf::filter {

enum class TokenKind {
    kIdent,    // keywords and names: ip, tcp, host, and, or, ...
    kNumber,   // 123, 0x800
    kIpv4,     // 192.168.10.12
    kMac,      // 00:00:00:00:00:00
    kLParen,   // (
    kRParen,   // )
    kLBracket, // [
    kRBracket, // ]
    kColon,    // :
    kSlash,    // /
    kPlus,     // +
    kMinus,    // -
    kStar,     // *
    kAmp,      // &
    kPipe,     // |
    kEq,       // = or ==
    kNeq,      // !=
    kGt,       // >
    kLt,       // <
    kGe,       // >=
    kLe,       // <=
    kEnd,
};

struct Token {
    TokenKind kind = TokenKind::kEnd;
    std::string text;         // raw text for idents/addresses
    std::uint64_t number = 0; // value for kNumber
    std::size_t offset = 0;   // position in the input, for error messages
};

/// Splits `input` into tokens.  Throws FilterError on unexpected characters.
std::vector<Token> tokenize(const std::string& input);

/// Error type for all filter compilation failures (lexing, parsing,
/// code generation), carrying the offending position where known.
class FilterError : public std::runtime_error {
public:
    FilterError(const std::string& message, std::size_t offset)
        : std::runtime_error(message + " (at offset " + std::to_string(offset) + ")"),
          offset_(offset) {}

    [[nodiscard]] std::size_t offset() const { return offset_; }

private:
    std::size_t offset_;
};

}  // namespace capbench::bpf::filter
