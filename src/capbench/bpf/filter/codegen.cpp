#include "capbench/bpf/filter/codegen.hpp"

#include <optional>
#include <stdexcept>
#include <vector>

#include "capbench/bpf/analysis/optimize.hpp"
#include "capbench/bpf/filter/lexer.hpp"
#include "capbench/bpf/filter/parser.hpp"
#include "capbench/bpf/validator.hpp"

namespace capbench::bpf::filter {

namespace {

// Link-layer is always Ethernet here (the testbed captures from GigE
// fiber), so the network header starts at a fixed offset.
constexpr std::uint32_t kNetOff = net::kEthernetHeaderLen;

using Label = std::int32_t;
constexpr Label kNoLabel = -1;

/// Instruction whose jump targets are symbolic labels until finalization.
struct PendingInsn {
    std::uint16_t code = 0;
    std::uint32_t k = 0;
    Label jt = kNoLabel;
    Label jf = kNoLabel;
    Label ja = kNoLabel;  // for BPF_JA
};

class Emitter {
public:
    Label new_label() {
        labels_.push_back(-1);
        return static_cast<Label>(labels_.size() - 1);
    }

    void place(Label label) { labels_[static_cast<std::size_t>(label)] = here(); }

    void emit_stmt(std::uint16_t code, std::uint32_t k) { code_.push_back({code, k}); }

    void emit_cond(std::uint16_t code, std::uint32_t k, Label if_true, Label if_false) {
        PendingInsn insn{code, k};
        insn.jt = if_true;
        insn.jf = if_false;
        code_.push_back(insn);
    }

    void emit_ja(Label target) {
        PendingInsn insn{static_cast<std::uint16_t>(BPF_JMP | BPF_JA), 0};
        insn.ja = target;
        code_.push_back(insn);
    }

    /// Resolves labels, optimizes, and expands out-of-range conditionals.
    Program finalize();

private:
    [[nodiscard]] std::int32_t here() const { return static_cast<std::int32_t>(code_.size()); }

    void thread_jumps();
    void remove_dead_code();
    Program resolve_with_trampolines();

    [[nodiscard]] std::int32_t target_of(Label label) const {
        const auto addr = labels_[static_cast<std::size_t>(label)];
        if (addr < 0) throw std::logic_error("codegen: unplaced label referenced");
        return addr;
    }

    std::vector<PendingInsn> code_;
    std::vector<std::int32_t> labels_;  // label -> instruction index
};

void Emitter::thread_jumps() {
    // Redirect any label that points at an unconditional jump to that
    // jump's final destination.
    for (auto& addr : labels_) {
        int guard = 0;
        while (addr >= 0 && addr < here() && guard++ < 64) {
            const PendingInsn& insn = code_[static_cast<std::size_t>(addr)];
            if (insn.ja == kNoLabel) break;
            const auto next = labels_[static_cast<std::size_t>(insn.ja)];
            if (next <= addr) break;  // only follow forward edges
            addr = next;
        }
    }
}

void Emitter::remove_dead_code() {
    // Mark instructions reachable from the entry point.
    std::vector<bool> reachable(code_.size(), false);
    std::vector<std::size_t> work{0};
    while (!work.empty()) {
        const std::size_t pc = work.back();
        work.pop_back();
        if (pc >= code_.size() || reachable[pc]) continue;
        reachable[pc] = true;
        const PendingInsn& insn = code_[pc];
        if (bpf_class(insn.code) == BPF_RET) continue;
        if (insn.ja != kNoLabel) {
            work.push_back(static_cast<std::size_t>(target_of(insn.ja)));
            continue;
        }
        if (insn.jt != kNoLabel) {
            work.push_back(static_cast<std::size_t>(target_of(insn.jt)));
            work.push_back(static_cast<std::size_t>(target_of(insn.jf)));
            continue;
        }
        work.push_back(pc + 1);
    }

    // Compact, remembering old->new index mapping.
    std::vector<std::int32_t> remap(code_.size() + 1, -1);
    std::vector<PendingInsn> kept;
    for (std::size_t pc = 0; pc < code_.size(); ++pc) {
        if (reachable[pc]) {
            remap[pc] = static_cast<std::int32_t>(kept.size());
            kept.push_back(code_[pc]);
        }
    }
    remap[code_.size()] = static_cast<std::int32_t>(kept.size());
    for (auto& addr : labels_) {
        if (addr < 0) continue;
        // A referenced label always points at a reachable instruction; walk
        // forward to the next kept one to be safe for unreferenced labels.
        std::size_t a = static_cast<std::size_t>(addr);
        while (a < code_.size() && remap[a] < 0) ++a;
        addr = remap[a];
    }
    code_ = std::move(kept);
}

Program Emitter::resolve_with_trampolines() {
    // Try to resolve; when a conditional offset exceeds 255, rewrite that
    // instruction into (cond jt=0 jf=1; ja T; ja F) and retry.  Offsets only
    // grow by insertions, so this converges.
    // Each expansion permanently fixes one conditional (its new offsets are
    // 0/1 to adjacent trampolines), so the number of rounds is bounded by
    // the number of conditional jumps.
    const int max_rounds = static_cast<int>(code_.size()) * 2 + 16;
    for (int round = 0; round < max_rounds; ++round) {
        std::optional<std::size_t> overflow;
        Program out;
        out.reserve(code_.size());
        for (std::size_t pc = 0; pc < code_.size() && !overflow; ++pc) {
            const PendingInsn& insn = code_[pc];
            Insn resolved{insn.code, 0, 0, insn.k};
            if (insn.ja != kNoLabel) {
                const auto delta = target_of(insn.ja) - static_cast<std::int32_t>(pc) - 1;
                if (delta < 0) throw std::logic_error("codegen: backward ja");
                resolved.k = static_cast<std::uint32_t>(delta);
            } else if (insn.jt != kNoLabel) {
                const auto dt = target_of(insn.jt) - static_cast<std::int32_t>(pc) - 1;
                const auto df = target_of(insn.jf) - static_cast<std::int32_t>(pc) - 1;
                if (dt < 0 || df < 0) throw std::logic_error("codegen: backward branch");
                if (dt > 255 || df > 255) {
                    overflow = pc;
                    break;
                }
                resolved.jt = static_cast<std::uint8_t>(dt);
                resolved.jf = static_cast<std::uint8_t>(df);
            }
            out.push_back(resolved);
        }
        if (!overflow) return out;

        // Expand the overflowing conditional via two adjacent trampolines.
        const std::size_t pc = *overflow;
        const PendingInsn orig = code_[pc];
        PendingInsn tramp_t{static_cast<std::uint16_t>(BPF_JMP | BPF_JA), 0};
        tramp_t.ja = orig.jt;
        PendingInsn tramp_f{static_cast<std::uint16_t>(BPF_JMP | BPF_JA), 0};
        tramp_f.ja = orig.jf;
        const Label lt = new_label();
        const Label lf = new_label();
        PendingInsn cond = orig;
        cond.jt = lt;
        cond.jf = lf;
        code_[pc] = cond;
        code_.insert(code_.begin() + static_cast<std::ptrdiff_t>(pc) + 1, {tramp_t, tramp_f});
        // Shift every label past the insertion point.
        for (std::size_t li = 0; li + 2 < labels_.size(); ++li) {
            if (labels_[li] > static_cast<std::int32_t>(pc)) labels_[li] += 2;
        }
        labels_[static_cast<std::size_t>(lt)] = static_cast<std::int32_t>(pc) + 1;
        labels_[static_cast<std::size_t>(lf)] = static_cast<std::int32_t>(pc) + 2;
    }
    throw std::logic_error("codegen: trampoline expansion did not converge");
}

Program Emitter::finalize() {
    thread_jumps();
    remove_dead_code();
    Program out = resolve_with_trampolines();
    validate_or_throw(out);
    return out;
}

// ---- code generation over the AST ------------------------------------------

class CodeGen {
public:
    explicit CodeGen(std::uint32_t snaplen) : snaplen_(snaplen) {}

    Program run(const Expr* expr) {
        if (expr == nullptr) return Program{stmt(BPF_RET | BPF_K, snaplen_)};
        const Label accept = em_.new_label();
        const Label reject = em_.new_label();
        gen(*expr, accept, reject);
        em_.place(accept);
        em_.emit_stmt(BPF_RET | BPF_K, snaplen_);
        em_.place(reject);
        em_.emit_stmt(BPF_RET | BPF_K, 0);
        return em_.finalize();
    }

private:
    void gen(const Expr& expr, Label if_true, Label if_false) {
        std::visit([&](const auto& node) { gen_node(node, if_true, if_false); }, expr.node);
    }

    // Boolean connectives.
    void gen_node(const Not& n, Label t, Label f) { gen(*n.child, f, t); }
    void gen_node(const And& n, Label t, Label f) {
        const Label mid = em_.new_label();
        gen(*n.lhs, mid, f);
        em_.place(mid);
        gen(*n.rhs, t, f);
    }
    void gen_node(const Or& n, Label t, Label f) {
        const Label mid = em_.new_label();
        gen(*n.lhs, t, mid);
        em_.place(mid);
        gen(*n.rhs, t, f);
    }

    // ether type / protocol tests.
    void check_ethertype(std::uint16_t type, Label fail) {
        const Label next = em_.new_label();
        em_.emit_stmt(BPF_LD | BPF_H | BPF_ABS, 12);
        em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, type, next, fail);
        em_.place(next);
    }

    void check_ip_proto(std::uint8_t proto, Label fail) {
        const Label next = em_.new_label();
        em_.emit_stmt(BPF_LD | BPF_B | BPF_ABS, kNetOff + 9);
        em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, proto, next, fail);
        em_.place(next);
    }

    /// Transport-header fields only exist in the first fragment.
    void check_not_fragment(Label fail) {
        const Label next = em_.new_label();
        em_.emit_stmt(BPF_LD | BPF_H | BPF_ABS, kNetOff + 6);
        em_.emit_cond(BPF_JMP | BPF_JSET | BPF_K, 0x1FFF, fail, next);
        em_.place(next);
    }

    void gen_node(const ProtoMatch& n, Label t, Label f) {
        switch (n.proto) {
            case Proto::kIp:
                em_.emit_stmt(BPF_LD | BPF_H | BPF_ABS, 12);
                em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, net::kEtherTypeIpv4, t, f);
                break;
            case Proto::kArp:
                em_.emit_stmt(BPF_LD | BPF_H | BPF_ABS, 12);
                em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, net::kEtherTypeArp, t, f);
                break;
            case Proto::kRarp:
                em_.emit_stmt(BPF_LD | BPF_H | BPF_ABS, 12);
                em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, net::kEtherTypeRarp, t, f);
                break;
            case Proto::kTcp:
            case Proto::kUdp:
            case Proto::kIcmp: {
                check_ethertype(net::kEtherTypeIpv4, f);
                std::uint8_t proto = net::kIpProtoIcmp;
                if (n.proto == Proto::kTcp) proto = net::kIpProtoTcp;
                if (n.proto == Proto::kUdp) proto = net::kIpProtoUdp;
                em_.emit_stmt(BPF_LD | BPF_B | BPF_ABS, kNetOff + 9);
                em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, proto, t, f);
                break;
            }
        }
    }

    void gen_node(const HostMatch& n, Label t, Label f) {
        check_ethertype(net::kEtherTypeIpv4, f);
        const std::uint32_t off = kNetOff + (n.dir == Dir::kSrc ? 12 : 16);
        em_.emit_stmt(BPF_LD | BPF_W | BPF_ABS, off);
        em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, n.addr.value(), t, f);
    }

    void gen_node(const NetMatch& n, Label t, Label f) {
        check_ethertype(net::kEtherTypeIpv4, f);
        const std::uint32_t off = kNetOff + (n.dir == Dir::kSrc ? 12 : 16);
        em_.emit_stmt(BPF_LD | BPF_W | BPF_ABS, off);
        em_.emit_stmt(BPF_ALU | BPF_AND | BPF_K, n.mask);
        em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, n.net, t, f);
    }

    void gen_node(const PortMatch& n, Label t, Label f) {
        check_ethertype(net::kEtherTypeIpv4, f);
        // Protocol scope.
        em_.emit_stmt(BPF_LD | BPF_B | BPF_ABS, kNetOff + 9);
        if (n.scope == PortMatch::Scope::kTcp) {
            const Label ok = em_.new_label();
            em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, net::kIpProtoTcp, ok, f);
            em_.place(ok);
        } else if (n.scope == PortMatch::Scope::kUdp) {
            const Label ok = em_.new_label();
            em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, net::kIpProtoUdp, ok, f);
            em_.place(ok);
        } else {
            const Label ok = em_.new_label();
            const Label try_udp = em_.new_label();
            em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, net::kIpProtoTcp, ok, try_udp);
            em_.place(try_udp);
            em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, net::kIpProtoUdp, ok, f);
            em_.place(ok);
        }
        check_not_fragment(f);
        em_.emit_stmt(BPF_LDX | BPF_B | BPF_MSH, kNetOff);
        const std::uint32_t rel = n.dir == Dir::kSrc ? 0 : 2;
        em_.emit_stmt(BPF_LD | BPF_H | BPF_IND, kNetOff + rel);
        em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, n.port, t, f);
    }

    void gen_node(const EtherHostMatch& n, Label t, Label f) {
        // MAC = 2-byte prefix + 4-byte suffix; compare the word first (it
        // discriminates more), then the halfword -- the tcpdump layout.
        const std::uint32_t base = n.dir == Dir::kSrc ? 6u : 0u;
        const auto& o = n.mac.octets();
        const std::uint32_t suffix = (static_cast<std::uint32_t>(o[2]) << 24) |
                                     (static_cast<std::uint32_t>(o[3]) << 16) |
                                     (static_cast<std::uint32_t>(o[4]) << 8) | o[5];
        const std::uint32_t prefix = (static_cast<std::uint32_t>(o[0]) << 8) | o[1];
        const Label mid = em_.new_label();
        em_.emit_stmt(BPF_LD | BPF_W | BPF_ABS, base + 2);
        em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, suffix, mid, f);
        em_.place(mid);
        em_.emit_stmt(BPF_LD | BPF_H | BPF_ABS, base);
        em_.emit_cond(BPF_JMP | BPF_JEQ | BPF_K, prefix, t, f);
    }

    void gen_node(const LenCompare& n, Label t, Label f) {
        em_.emit_stmt(BPF_LD | BPF_W | BPF_LEN, 0);
        if (n.greater)
            em_.emit_cond(BPF_JMP | BPF_JGE | BPF_K, n.value, t, f);
        else
            em_.emit_cond(BPF_JMP | BPF_JGT | BPF_K, n.value, f, t);
    }

    void gen_node(const Relation& n, Label t, Label f) {
        // Accessors into transport headers need the IP guards first.  The
        // dedup flag is per-relation: other relations may be reached on
        // paths that never passed this relation's guards.
        ip_guard_emitted_ = false;
        emit_accessor_guards(*n.lhs, f);
        emit_accessor_guards(*n.rhs, f);

        const auto rhs_const = const_value(*n.rhs);
        if (rhs_const) {
            eval(*n.lhs);
            emit_compare(n.op, /*against_x=*/false, *rhs_const, t, f);
            return;
        }
        // General case: rhs into scratch, lhs into A, X <- scratch.
        eval(*n.rhs);
        em_.emit_stmt(BPF_ST, kScratchTop);
        eval(*n.lhs);
        em_.emit_stmt(BPF_LDX | BPF_W | BPF_MEM, kScratchTop);
        emit_compare(n.op, /*against_x=*/true, 0, t, f);
    }

    void emit_compare(RelOp op, bool against_x, std::uint32_t k, Label t, Label f) {
        const std::uint16_t src = against_x ? BPF_X : BPF_K;
        switch (op) {
            case RelOp::kEq: em_.emit_cond(BPF_JMP | BPF_JEQ | src, k, t, f); break;
            case RelOp::kNeq: em_.emit_cond(BPF_JMP | BPF_JEQ | src, k, f, t); break;
            case RelOp::kGt: em_.emit_cond(BPF_JMP | BPF_JGT | src, k, t, f); break;
            case RelOp::kLe: em_.emit_cond(BPF_JMP | BPF_JGT | src, k, f, t); break;
            case RelOp::kGe: em_.emit_cond(BPF_JMP | BPF_JGE | src, k, t, f); break;
            case RelOp::kLt: em_.emit_cond(BPF_JMP | BPF_JGE | src, k, f, t); break;
        }
    }

    /// Protocol guards implied by accessors (tcpdump semantics: `tcp[0]`
    /// implies the packet is first-fragment TCP over IPv4).
    void emit_accessor_guards(const Arith& a, Label f) {
        if (const auto* bin = std::get_if<ArithBinary>(&a.node)) {
            emit_accessor_guards(*bin->lhs, f);
            emit_accessor_guards(*bin->rhs, f);
            return;
        }
        const auto* acc = std::get_if<ArithAccessor>(&a.node);
        if (acc == nullptr) return;
        switch (acc->base) {
            case AccessorBase::kEther:
                break;
            case AccessorBase::kIp:
                if (!ip_guard_emitted_) {
                    check_ethertype(net::kEtherTypeIpv4, f);
                    ip_guard_emitted_ = true;
                }
                break;
            case AccessorBase::kTcp:
            case AccessorBase::kUdp:
            case AccessorBase::kIcmp: {
                if (!ip_guard_emitted_) {
                    check_ethertype(net::kEtherTypeIpv4, f);
                    ip_guard_emitted_ = true;
                }
                std::uint8_t proto = net::kIpProtoTcp;
                if (acc->base == AccessorBase::kUdp) proto = net::kIpProtoUdp;
                if (acc->base == AccessorBase::kIcmp) proto = net::kIpProtoIcmp;
                check_ip_proto(proto, f);
                check_not_fragment(f);
                break;
            }
        }
    }

    [[nodiscard]] static std::optional<std::uint32_t> const_value(const Arith& a) {
        if (const auto* c = std::get_if<ArithConst>(&a.node)) return c->value;
        return std::nullopt;
    }

    /// Evaluates an arithmetic expression into register A.
    void eval(const Arith& a) {
        std::visit([&](const auto& node) { eval_node(node); }, a.node);
    }

    void eval_node(const ArithConst& n) { em_.emit_stmt(BPF_LD | BPF_IMM, n.value); }
    void eval_node(const ArithLen&) { em_.emit_stmt(BPF_LD | BPF_W | BPF_LEN, 0); }

    void eval_node(const ArithAccessor& n) {
        const std::uint16_t size = n.size == 4 ? BPF_W : n.size == 2 ? BPF_H : BPF_B;
        switch (n.base) {
            case AccessorBase::kEther:
                em_.emit_stmt(BPF_LD | size | BPF_ABS, n.offset);
                break;
            case AccessorBase::kIp:
                em_.emit_stmt(BPF_LD | size | BPF_ABS, kNetOff + n.offset);
                break;
            default:
                // Transport offset depends on the variable IP header length.
                em_.emit_stmt(BPF_LDX | BPF_B | BPF_MSH, kNetOff);
                em_.emit_stmt(BPF_LD | size | BPF_IND, kNetOff + n.offset);
                break;
        }
    }

    void eval_node(const ArithBinary& n) {
        const auto rhs_const = const_value(*n.rhs);
        if (rhs_const) {
            eval(*n.lhs);
            em_.emit_stmt(BPF_ALU | alu_code(n.op) | BPF_K, *rhs_const);
            return;
        }
        if (scratch_ == 0) throw FilterError("arithmetic expression too deep", 0);
        const std::uint32_t slot = --scratch_;
        eval(*n.rhs);
        em_.emit_stmt(BPF_ST, slot);
        eval(*n.lhs);
        em_.emit_stmt(BPF_LDX | BPF_W | BPF_MEM, slot);
        em_.emit_stmt(BPF_ALU | alu_code(n.op) | BPF_X, 0);
        ++scratch_;
    }

    static std::uint16_t alu_code(ArithOp op) {
        switch (op) {
            case ArithOp::kAdd: return BPF_ADD;
            case ArithOp::kSub: return BPF_SUB;
            case ArithOp::kMul: return BPF_MUL;
            case ArithOp::kDiv: return BPF_DIV;
            case ArithOp::kAnd: return BPF_AND;
            case ArithOp::kOr: return BPF_OR;
        }
        return BPF_ADD;
    }

    static constexpr std::uint32_t kScratchTop = kMemWords - 1;

    Emitter em_;
    std::uint32_t snaplen_;
    std::uint32_t scratch_ = kMemWords - 1;  // slots 0..14 for nested binops
    bool ip_guard_emitted_ = false;  // per-relation; reset before each
};

}  // namespace

Program codegen(const Expr* expr, std::uint32_t snaplen, const CompileOptions& options) {
    Program prog = CodeGen{snaplen}.run(expr);
    if (options.optimize) prog = analysis::optimize(prog);
    return prog;
}

Program compile_filter(const std::string& expression, std::uint32_t snaplen,
                       const CompileOptions& options) {
    const auto ast = parse(expression);
    return codegen(ast.get(), snaplen, options);
}

}  // namespace capbench::bpf::filter
