// Compiles filter ASTs to classic BPF programs.
#pragma once

#include <cstdint>
#include <string>

#include "capbench/bpf/filter/ast.hpp"
#include "capbench/bpf/insn.hpp"

namespace capbench::bpf::filter {

struct CompileOptions {
    /// Run the static-analysis optimizer (bpf/analysis/optimize.hpp) on the
    /// emitted program: constant folding, edge retargeting past redundant
    /// loads and decided tests, dead code elimination.  The result accepts
    /// exactly the same packets with the same lengths; it just executes
    /// fewer instructions.  Disable to inspect the raw emitted code.
    bool optimize = true;
};

/// Generates a validated BPF program.  A null expression (empty filter)
/// yields the accept-all program.  `snaplen` is the value accepted packets
/// return (bytes to capture).
///
/// Generated code is optimized with jump threading, removal of jumps to the
/// next instruction, and dead-code elimination; conditional jumps whose
/// targets exceed the 8-bit offset range are automatically split via
/// unconditional-jump trampolines, so arbitrarily long and/or chains (such
/// as the 50-primitive filter of Figure 6.5) compile correctly.  When
/// `options.optimize` is set (the default), the analysis optimizer then
/// shrinks the program further.
Program codegen(const Expr* expr, std::uint32_t snaplen = 65535,
                const CompileOptions& options = {});

/// Convenience: parse + codegen in one step (the pcap_compile analog).
Program compile_filter(const std::string& expression, std::uint32_t snaplen = 65535,
                       const CompileOptions& options = {});

}  // namespace capbench::bpf::filter
