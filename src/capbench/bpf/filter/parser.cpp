#include "capbench/bpf/filter/parser.hpp"

#include <utility>

#include "capbench/bpf/filter/lexer.hpp"

namespace capbench::bpf::filter {

namespace {

ExprPtr make_expr(auto node) {
    auto e = std::make_unique<Expr>();
    e->node = std::move(node);
    return e;
}

ArithPtr make_arith(auto node) {
    auto a = std::make_unique<Arith>();
    a->node = std::move(node);
    return a;
}

ExprPtr make_and(ExprPtr l, ExprPtr r) { return make_expr(And{std::move(l), std::move(r)}); }
ExprPtr make_or(ExprPtr l, ExprPtr r) { return make_expr(Or{std::move(l), std::move(r)}); }

enum class DirSpec { kSrc, kDst, kSrcOrDst, kSrcAndDst, kUnspecified };

class Parser {
public:
    explicit Parser(const std::string& input) : tokens_(tokenize(input)) {}

    ExprPtr parse_all() {
        if (peek().kind == TokenKind::kEnd) return nullptr;
        auto expr = parse_or();
        expect(TokenKind::kEnd, "trailing input after expression");
        return expr;
    }

private:
    const Token& peek(std::size_t ahead = 0) const {
        const std::size_t i = pos_ + ahead;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }
    const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

    bool at_ident(const char* word) const {
        return peek().kind == TokenKind::kIdent && peek().text == word;
    }
    bool eat_ident(const char* word) {
        if (!at_ident(word)) return false;
        advance();
        return true;
    }
    void expect(TokenKind kind, const char* what) {
        if (peek().kind != kind) throw FilterError(what, peek().offset);
        advance();
    }
    [[noreturn]] void fail(const std::string& what) const {
        throw FilterError(what, peek().offset);
    }

    // ---- boolean layer ----

    ExprPtr parse_or() {
        auto lhs = parse_and();
        while (eat_ident("or")) lhs = make_or(std::move(lhs), parse_and());
        return lhs;
    }

    ExprPtr parse_and() {
        auto lhs = parse_unary();
        while (eat_ident("and")) lhs = make_and(std::move(lhs), parse_unary());
        return lhs;
    }

    ExprPtr parse_unary() {
        if (eat_ident("not")) return make_expr(Not{parse_unary()});
        if (peek().kind == TokenKind::kLParen) {
            // A '(' can open either a boolean group or a parenthesized
            // arithmetic expression like "(ip[2]+2) > 5"; try the boolean
            // reading first and fall back with backtracking.
            const std::size_t saved = pos_;
            try {
                advance();
                auto inner = parse_or();
                expect(TokenKind::kRParen, "expected ')'");
                return inner;
            } catch (const FilterError&) {
                pos_ = saved;
                return parse_relation();
            }
        }
        return parse_primitive();
    }

    // ---- primitives ----

    ExprPtr parse_primitive() {
        const Token& tok = peek();
        if (tok.kind == TokenKind::kNumber || at_ident("len")) return parse_relation();
        if (tok.kind != TokenKind::kIdent) fail("expected filter primitive");

        const std::string word = tok.text;
        if (word == "greater" || word == "less") {
            advance();
            if (peek().kind != TokenKind::kNumber) fail("expected length after greater/less");
            const auto n = static_cast<std::uint32_t>(advance().number);
            return make_expr(LenCompare{word == "greater", n});
        }
        if (word == "ether") {
            if (peek(1).kind == TokenKind::kLBracket) return parse_relation();
            return parse_ether();
        }
        if (word == "ip" || word == "tcp" || word == "udp" || word == "icmp") {
            if (peek(1).kind == TokenKind::kLBracket) return parse_relation();
            return parse_proto_qualified();
        }
        if (word == "arp") {
            advance();
            return make_expr(ProtoMatch{Proto::kArp});
        }
        if (word == "rarp") {
            advance();
            return make_expr(ProtoMatch{Proto::kRarp});
        }
        if (word == "src" || word == "dst" || word == "host" || word == "net" || word == "port")
            return parse_addr_primitive(Proto::kIp, /*have_proto=*/false);
        fail("unknown filter primitive '" + word + "'");
    }

    ExprPtr parse_ether() {
        advance();  // "ether"
        DirSpec dir = DirSpec::kUnspecified;
        if (eat_ident("src"))
            dir = DirSpec::kSrc;
        else if (eat_ident("dst"))
            dir = DirSpec::kDst;
        else if (eat_ident("host"))
            dir = DirSpec::kSrcOrDst;
        else
            fail("expected src/dst/host after 'ether'");
        if (peek().kind != TokenKind::kMac) fail("expected MAC address");
        const auto mac = net::MacAddr::parse(advance().text);
        switch (dir) {
            case DirSpec::kSrc: return make_expr(EtherHostMatch{Dir::kSrc, mac});
            case DirSpec::kDst: return make_expr(EtherHostMatch{Dir::kDst, mac});
            default:
                return make_or(make_expr(EtherHostMatch{Dir::kSrc, mac}),
                               make_expr(EtherHostMatch{Dir::kDst, mac}));
        }
    }

    ExprPtr parse_proto_qualified() {
        const std::string word = advance().text;  // ip/tcp/udp/icmp
        Proto proto = Proto::kIp;
        if (word == "tcp") proto = Proto::kTcp;
        if (word == "udp") proto = Proto::kUdp;
        if (word == "icmp") proto = Proto::kIcmp;

        // `ip proto N`
        if (proto == Proto::kIp && eat_ident("proto")) {
            if (peek().kind != TokenKind::kNumber) fail("expected protocol number");
            const auto n = static_cast<std::uint32_t>(advance().number);
            auto acc = make_arith(ArithAccessor{AccessorBase::kIp, 9, 1});
            auto num = make_arith(ArithConst{n});
            return make_expr(Relation{RelOp::kEq, std::move(acc), std::move(num)});
        }

        const bool has_addr_followup = at_ident("src") || at_ident("dst") || at_ident("host") ||
                                       at_ident("net") || at_ident("port");
        if (!has_addr_followup) return make_expr(ProtoMatch{proto});

        auto addr_part = parse_addr_primitive(proto, /*have_proto=*/true);
        // `tcp port 80` already folds the proto into the PortMatch; everything
        // else conjoins the proto check.
        if (proto == Proto::kIp) return addr_part;
        if (std::holds_alternative<PortMatch>(addr_part->node) ||
            (std::holds_alternative<Or>(addr_part->node) &&
             std::holds_alternative<PortMatch>(std::get<Or>(addr_part->node).lhs->node)))
            return addr_part;
        return make_and(make_expr(ProtoMatch{proto}), std::move(addr_part));
    }

    DirSpec parse_dir() {
        if (eat_ident("src")) {
            if (at_ident("or") && peek(1).kind == TokenKind::kIdent && peek(1).text == "dst") {
                advance();
                advance();
                return DirSpec::kSrcOrDst;
            }
            if (at_ident("and") && peek(1).kind == TokenKind::kIdent && peek(1).text == "dst") {
                advance();
                advance();
                return DirSpec::kSrcAndDst;
            }
            return DirSpec::kSrc;
        }
        if (eat_ident("dst")) return DirSpec::kDst;
        return DirSpec::kUnspecified;
    }

    /// host/net/port primitives, optionally preceded by src/dst.
    ExprPtr parse_addr_primitive(Proto proto, bool have_proto) {
        const DirSpec dir = parse_dir();
        if (eat_ident("port")) return finish_port(proto, have_proto, dir);
        if (eat_ident("net")) return finish_net(dir);
        eat_ident("host");  // optional after explicit src/dst (e.g. "ip src A")
        if (peek().kind == TokenKind::kIpv4) return finish_host(dir);
        if (peek().kind == TokenKind::kNumber && dir == DirSpec::kUnspecified)
            fail("expected host/net/port");
        fail("expected IPv4 address");
    }

    ExprPtr finish_host(DirSpec dir) {
        const auto addr = net::Ipv4Addr::parse(advance().text);
        const auto one = [&](Dir d) { return make_expr(HostMatch{d, addr}); };
        switch (dir) {
            case DirSpec::kSrc: return one(Dir::kSrc);
            case DirSpec::kDst: return one(Dir::kDst);
            case DirSpec::kSrcAndDst: return make_and(one(Dir::kSrc), one(Dir::kDst));
            default: return make_or(one(Dir::kSrc), one(Dir::kDst));
        }
    }

    ExprPtr finish_net(DirSpec dir) {
        if (peek().kind != TokenKind::kIpv4) fail("expected network address");
        const auto base = net::Ipv4Addr::parse(advance().text);
        std::uint32_t mask = 0;
        if (peek().kind == TokenKind::kSlash) {
            advance();
            if (peek().kind != TokenKind::kNumber) fail("expected prefix length");
            const auto len = advance().number;
            if (len > 32) fail("prefix length > 32");
            mask = len == 0 ? 0 : 0xFFFFFFFFu << (32 - len);
        } else if (eat_ident("mask")) {
            if (peek().kind != TokenKind::kIpv4) fail("expected netmask");
            mask = net::Ipv4Addr::parse(advance().text).value();
        } else {
            fail("expected '/len' or 'mask' after net address");
        }
        const std::uint32_t netv = base.value() & mask;
        const auto one = [&](Dir d) { return make_expr(NetMatch{d, netv, mask}); };
        switch (dir) {
            case DirSpec::kSrc: return one(Dir::kSrc);
            case DirSpec::kDst: return one(Dir::kDst);
            case DirSpec::kSrcAndDst: return make_and(one(Dir::kSrc), one(Dir::kDst));
            default: return make_or(one(Dir::kSrc), one(Dir::kDst));
        }
    }

    ExprPtr finish_port(Proto proto, bool have_proto, DirSpec dir) {
        if (peek().kind != TokenKind::kNumber) fail("expected port number");
        const auto port = static_cast<std::uint16_t>(advance().number);
        PortMatch::Scope scope = PortMatch::Scope::kAny;
        if (have_proto && proto == Proto::kTcp) scope = PortMatch::Scope::kTcp;
        if (have_proto && proto == Proto::kUdp) scope = PortMatch::Scope::kUdp;
        const auto one = [&](Dir d) { return make_expr(PortMatch{scope, d, port}); };
        switch (dir) {
            case DirSpec::kSrc: return one(Dir::kSrc);
            case DirSpec::kDst: return one(Dir::kDst);
            case DirSpec::kSrcAndDst: return make_and(one(Dir::kSrc), one(Dir::kDst));
            default: return make_or(one(Dir::kSrc), one(Dir::kDst));
        }
    }

    // ---- arithmetic relations ----

    ExprPtr parse_relation() {
        auto lhs = parse_arith();
        RelOp op;
        switch (peek().kind) {
            case TokenKind::kEq: op = RelOp::kEq; break;
            case TokenKind::kNeq: op = RelOp::kNeq; break;
            case TokenKind::kGt: op = RelOp::kGt; break;
            case TokenKind::kLt: op = RelOp::kLt; break;
            case TokenKind::kGe: op = RelOp::kGe; break;
            case TokenKind::kLe: op = RelOp::kLe; break;
            default: fail("expected relational operator");
        }
        advance();
        auto rhs = parse_arith();
        return make_expr(Relation{op, std::move(lhs), std::move(rhs)});
    }

    ArithPtr parse_arith() {
        auto lhs = parse_term();
        for (;;) {
            ArithOp op;
            if (peek().kind == TokenKind::kPlus)
                op = ArithOp::kAdd;
            else if (peek().kind == TokenKind::kMinus)
                op = ArithOp::kSub;
            else if (peek().kind == TokenKind::kPipe)
                op = ArithOp::kOr;
            else
                return lhs;
            advance();
            lhs = make_arith(ArithBinary{op, std::move(lhs), parse_term()});
        }
    }

    ArithPtr parse_term() {
        auto lhs = parse_factor();
        for (;;) {
            ArithOp op;
            if (peek().kind == TokenKind::kStar)
                op = ArithOp::kMul;
            else if (peek().kind == TokenKind::kSlash)
                op = ArithOp::kDiv;
            else if (peek().kind == TokenKind::kAmp)
                op = ArithOp::kAnd;
            else
                return lhs;
            advance();
            lhs = make_arith(ArithBinary{op, std::move(lhs), parse_factor()});
        }
    }

    ArithPtr parse_factor() {
        if (peek().kind == TokenKind::kNumber)
            return make_arith(ArithConst{static_cast<std::uint32_t>(advance().number)});
        if (eat_ident("len")) return make_arith(ArithLen{});
        if (peek().kind == TokenKind::kLParen) {
            advance();
            auto inner = parse_arith();
            expect(TokenKind::kRParen, "expected ')' in arithmetic expression");
            return inner;
        }
        if (peek().kind == TokenKind::kIdent) {
            AccessorBase base;
            const std::string& word = peek().text;
            if (word == "ether")
                base = AccessorBase::kEther;
            else if (word == "ip")
                base = AccessorBase::kIp;
            else if (word == "tcp")
                base = AccessorBase::kTcp;
            else if (word == "udp")
                base = AccessorBase::kUdp;
            else if (word == "icmp")
                base = AccessorBase::kIcmp;
            else
                fail("unknown accessor base '" + word + "'");
            advance();
            expect(TokenKind::kLBracket, "expected '['");
            if (peek().kind != TokenKind::kNumber) fail("expected accessor offset");
            const auto offset = static_cast<std::uint32_t>(advance().number);
            std::uint32_t size = 1;
            if (peek().kind == TokenKind::kColon) {
                advance();
                if (peek().kind != TokenKind::kNumber) fail("expected accessor size");
                size = static_cast<std::uint32_t>(advance().number);
                if (size != 1 && size != 2 && size != 4) fail("accessor size must be 1, 2 or 4");
            }
            expect(TokenKind::kRBracket, "expected ']'");
            return make_arith(ArithAccessor{base, offset, size});
        }
        fail("expected arithmetic operand");
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

}  // namespace

ExprPtr parse(const std::string& input) { return Parser{input}.parse_all(); }

}  // namespace capbench::bpf::filter
