#include "capbench/bpf/vm.hpp"

#include <array>

namespace capbench::bpf {

namespace {

bool load_w(std::span<const std::byte> data, std::uint64_t off, std::uint32_t& out) {
    if (off + 4 > data.size()) return false;
    out = (std::to_integer<std::uint32_t>(data[off]) << 24) |
          (std::to_integer<std::uint32_t>(data[off + 1]) << 16) |
          (std::to_integer<std::uint32_t>(data[off + 2]) << 8) |
          std::to_integer<std::uint32_t>(data[off + 3]);
    return true;
}

bool load_h(std::span<const std::byte> data, std::uint64_t off, std::uint32_t& out) {
    if (off + 2 > data.size()) return false;
    out = (std::to_integer<std::uint32_t>(data[off]) << 8) |
          std::to_integer<std::uint32_t>(data[off + 1]);
    return true;
}

bool load_b(std::span<const std::byte> data, std::uint64_t off, std::uint32_t& out) {
    if (off >= data.size()) return false;
    out = std::to_integer<std::uint32_t>(data[off]);
    return true;
}

}  // namespace

VmResult Vm::run(const Program& prog, std::span<const std::byte> data, std::uint32_t wire_len) {
    VmResult result;
    std::uint32_t a = 0;
    std::uint32_t x = 0;
    std::array<std::uint32_t, kMemWords> mem{};

    // Faults (out-of-bounds loads, division by zero, malformed opcodes,
    // falling off the end) reject the packet like the kernels do, but are
    // flagged so callers can tell an abort from a filter verdict.
    const auto abort_run = [&result]() -> VmResult& {
        result.aborted = true;
        return result;
    };

    std::size_t pc = 0;
    while (pc < prog.size()) {
        const Insn& insn = prog[pc];
        ++result.insns_executed;
        ++pc;
        const std::uint16_t code = insn.code;
        switch (bpf_class(code)) {
            case BPF_LD: {
                std::uint32_t value = 0;
                const std::uint64_t abs = insn.k;
                const std::uint64_t ind = static_cast<std::uint64_t>(x) + insn.k;
                bool ok = true;
                switch (bpf_mode(code) | bpf_size(code)) {
                    case BPF_IMM | BPF_W: value = insn.k; break;
                    case BPF_ABS | BPF_W: ok = load_w(data, abs, value); break;
                    case BPF_ABS | BPF_H: ok = load_h(data, abs, value); break;
                    case BPF_ABS | BPF_B: ok = load_b(data, abs, value); break;
                    case BPF_IND | BPF_W: ok = load_w(data, ind, value); break;
                    case BPF_IND | BPF_H: ok = load_h(data, ind, value); break;
                    case BPF_IND | BPF_B: ok = load_b(data, ind, value); break;
                    case BPF_LEN | BPF_W: value = wire_len; break;
                    case BPF_MEM | BPF_W:
                        if (insn.k >= kMemWords) return abort_run();
                        value = mem[insn.k];
                        break;
                    default: return abort_run();  // malformed: reject
                }
                if (!ok) return abort_run();  // out-of-bounds load rejects
                a = value;
                break;
            }
            case BPF_LDX: {
                switch (bpf_mode(code) | bpf_size(code)) {
                    case BPF_IMM | BPF_W: x = insn.k; break;
                    case BPF_LEN | BPF_W: x = wire_len; break;
                    case BPF_MEM | BPF_W:
                        if (insn.k >= kMemWords) return abort_run();
                        x = mem[insn.k];
                        break;
                    case BPF_MSH | BPF_B: {
                        // x = 4 * (pkt[k] & 0x0f): the IP header length idiom.
                        std::uint32_t byte = 0;
                        if (!load_b(data, insn.k, byte)) return abort_run();
                        x = 4 * (byte & 0x0F);
                        break;
                    }
                    default: return abort_run();
                }
                break;
            }
            case BPF_ST:
                if (insn.k >= kMemWords) return abort_run();
                mem[insn.k] = a;
                break;
            case BPF_STX:
                if (insn.k >= kMemWords) return abort_run();
                mem[insn.k] = x;
                break;
            case BPF_ALU: {
                const std::uint32_t operand = bpf_src(code) == BPF_X ? x : insn.k;
                switch (bpf_op(code)) {
                    case BPF_ADD: a += operand; break;
                    case BPF_SUB: a -= operand; break;
                    case BPF_MUL: a *= operand; break;
                    case BPF_DIV:
                        if (operand == 0) return abort_run();  // div by zero rejects
                        a /= operand;
                        break;
                    case BPF_OR: a |= operand; break;
                    case BPF_AND: a &= operand; break;
                    case BPF_LSH: a = operand < 32 ? a << operand : 0; break;
                    case BPF_RSH: a = operand < 32 ? a >> operand : 0; break;
                    case BPF_NEG: a = static_cast<std::uint32_t>(-static_cast<std::int32_t>(a)); break;
                    default: return abort_run();
                }
                break;
            }
            case BPF_JMP: {
                if (bpf_op(code) == BPF_JA) {
                    pc += insn.k;
                    break;
                }
                const std::uint32_t operand = bpf_src(code) == BPF_X ? x : insn.k;
                bool taken = false;
                switch (bpf_op(code)) {
                    case BPF_JEQ: taken = a == operand; break;
                    case BPF_JGT: taken = a > operand; break;
                    case BPF_JGE: taken = a >= operand; break;
                    case BPF_JSET: taken = (a & operand) != 0; break;
                    default: return abort_run();
                }
                pc += taken ? insn.jt : insn.jf;
                break;
            }
            case BPF_RET:
                result.accept_len = bpf_rval(code) == BPF_A ? a : insn.k;
                return result;
            case BPF_MISC:
                if (bpf_miscop(code) == BPF_TAX)
                    x = a;
                else if (bpf_miscop(code) == BPF_TXA)
                    a = x;
                else
                    return abort_run();
                break;
            default:
                return abort_run();
        }
    }
    // Fell off the end without RET: reject (validator forbids this).
    return abort_run();
}

}  // namespace capbench::bpf
