// Process-wide cache of verified + decoded (and jit-compiled) BPF programs.
//
// Every capture stack attaches filters through FilterRunner::install; the
// cache keys on program content, so the four endpoints of a sweep point
// (and every sweep point of a run) installing the same filter share one
// DecodedProgram — verified once, decoded once, tagged with a monotonic
// program id — and, under the jit tier, one compiled code mapping.
// Thread-safe: parallel sweep workers attach concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "capbench/bpf/decoded.hpp"
#include "capbench/bpf/insn.hpp"
#include "capbench/bpf/jit/jit_program.hpp"

namespace capbench::bpf {

/// One cached filter: the decoded tier-1 form (always present) plus the
/// tier-2 native code (null until some caller asked for it).
struct CachedFilter {
    std::shared_ptr<const DecodedProgram> decoded;
    std::shared_ptr<const JitProgram> jit;
};

/// Verifies `prog` (throwing std::invalid_argument with the structured
/// finding when it is rejected) and returns the shared decoded form;
/// with `want_jit` (caller must have checked JitProgram::supported())
/// also the native code, compiled at most once per distinct program.
CachedFilter cache_filter(const Program& prog, bool want_jit);

/// Shorthand for cache_filter(prog, false).decoded.
std::shared_ptr<const DecodedProgram> cache_decoded(const Program& prog);

/// Number of distinct programs decoded so far (test/introspection hook).
std::size_t cached_program_count();

/// Monotonic process-wide cache statistics.  Counting is winner-only:
/// when parallel installs race on the same new program, exactly the call
/// whose insert won counts the miss/compile and every loser counts a hit,
/// so the totals depend only on the workload — not on scheduling — and
/// stay byte-identical across --jobs in the metrics output.
struct CacheStats {
    std::uint64_t lookups = 0;       // cache_filter / cache_decoded calls
    std::uint64_t hits = 0;          // served from an existing entry
    std::uint64_t misses = 0;        // created the entry == programs decoded
    std::uint64_t jit_compiles = 0;  // native compilations installed
};
CacheStats cache_stats();

}  // namespace capbench::bpf
