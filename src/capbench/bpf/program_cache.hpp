// Process-wide cache of verified + decoded BPF programs.
//
// Every capture stack attaches filters through FilterRunner::install; the
// cache keys on program content, so the four endpoints of a sweep point
// (and every sweep point of a run) installing the same filter share one
// DecodedProgram — verified once, decoded once, tagged with a monotonic
// program id.  Thread-safe: parallel sweep workers attach concurrently.
#pragma once

#include <memory>

#include "capbench/bpf/decoded.hpp"
#include "capbench/bpf/insn.hpp"

namespace capbench::bpf {

/// Verifies `prog` (throwing std::invalid_argument with the structured
/// finding when it is rejected) and returns the shared decoded form.
std::shared_ptr<const DecodedProgram> cache_decoded(const Program& prog);

/// Number of distinct programs decoded so far (test/introspection hook).
std::size_t cached_program_count();

}  // namespace capbench::bpf
