#include "capbench/bpf/verifier.hpp"

#include <algorithm>
#include <stdexcept>

#include "capbench/bpf/analysis/cfg.hpp"
#include "capbench/bpf/analysis/interp.hpp"
#include "capbench/bpf/validator.hpp"

namespace capbench::bpf {

using analysis::Finding;
using analysis::Severity;

bool VerifyResult::ok() const { return first_error() == nullptr; }

const Finding* VerifyResult::first_error() const {
    // Findings are severity-ranked, so an error — if any — leads.
    if (!findings.empty() && findings.front().severity == Severity::kError)
        return &findings.front();
    return nullptr;
}

VerifyResult verify(const Program& prog) {
    VerifyResult res;
    if (const auto reason = validate(prog)) {
        res.findings.push_back(Finding{Severity::kError, 0, *reason});
        return res;
    }

    // One run of each pass; the fact table shares them.
    const analysis::Cfg cfg = analysis::Cfg::build(prog);
    const analysis::DomTree dom = analysis::DomTree::build(cfg);
    const analysis::Liveness live = analysis::Liveness::build(prog);
    const analysis::InterpResult interp = analysis::interpret(prog);
    res.facts = analysis::FactTable::build(prog, cfg, dom, live, interp);

    std::vector<Finding>& findings = res.findings;
    findings = interp.findings;

    // Structural checks, independent of the validator's syntactic ones:
    // every reachable path must end in a RET it can actually reach.
    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        if (!cfg.reachable[pc]) {
            findings.push_back(Finding{Severity::kWarning, pc, "unreachable instruction"});
            continue;
        }
        if (bpf_class(prog[pc].code) != BPF_RET &&
            analysis::insn_successors(prog, pc).empty())
            findings.push_back(Finding{Severity::kError, pc,
                                       "falls through the end of the program"});
    }
    if (!interp.has_reachable_ret)
        findings.push_back(
            Finding{Severity::kError, 0, "no reachable return instruction"});

    // Per-path precondition facts and value proofs (info rank).
    std::optional<std::size_t> first_ret;
    std::uint32_t packet_loads = 0;
    std::uint32_t safe_loads = 0;
    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        const analysis::InsnFacts& f = res.facts[pc];
        if (!f.reachable) continue;
        const std::uint16_t code = prog[pc].code;
        const std::uint16_t mode = bpf_mode(code);
        const bool packet_load =
            (bpf_class(code) == BPF_LD && (mode == BPF_ABS || mode == BPF_IND)) ||
            (bpf_class(code) == BPF_LDX && mode == BPF_MSH);
        if (packet_load) {
            ++packet_loads;
            if (f.safe_load) {
                ++safe_loads;
                findings.push_back(Finding{
                    Severity::kInfo, pc,
                    f.redundant_load
                        ? "bounds check elidable: an identical load already succeeded "
                          "on every path"
                        : "bounds check elidable: dominating loads prove at least " +
                              std::to_string(f.min_data_len) + " packet bytes"});
            }
        }
        if (f.dead_store)
            findings.push_back(Finding{Severity::kInfo, pc,
                                       "dead store: the written value is never read"});
        if (bpf_class(code) == BPF_RET) {
            if (!first_ret) first_ret = pc;
            if (bpf_rval(code) == BPF_A && interp.in[pc]) {
                const analysis::AbsVal& a = interp.in[pc]->a;
                findings.push_back(Finding{
                    Severity::kInfo, pc,
                    a.is_constant()
                        ? "returns the constant " + std::to_string(a.constant_value())
                        : "returns A in [" + std::to_string(a.lo) + ", " +
                              std::to_string(a.hi) + "]"});
            }
        }
    }
    if (interp.never_accepts && first_ret)
        findings.push_back(Finding{Severity::kWarning, *first_ret,
                                   "filter can never accept a packet (every reachable "
                                   "return path yields 0)"});
    if (packet_loads > 0)
        findings.push_back(Finding{
            Severity::kInfo, 0,
            "fact table: " + std::to_string(safe_loads) + " of " +
                std::to_string(packet_loads) + " packet loads proven in bounds"});

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding& a, const Finding& b) {
                         if (a.severity != b.severity)
                             return static_cast<int>(a.severity) <
                                    static_cast<int>(b.severity);
                         return a.insn < b.insn;
                     });
    return res;
}

void verify_or_throw(const Program& prog) {
    const VerifyResult res = verify(prog);
    if (const Finding* err = res.first_error())
        throw std::invalid_argument("BPF verifier rejected filter: " +
                                    analysis::to_string(*err));
}

}  // namespace capbench::bpf
