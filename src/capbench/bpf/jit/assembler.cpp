#include "capbench/bpf/jit/assembler.hpp"

#include <stdexcept>

namespace capbench::bpf::jit {

namespace {

constexpr std::uint8_t lo3(Reg r) { return static_cast<std::uint8_t>(r) & 7u; }
constexpr bool ext(Reg r) { return static_cast<std::uint8_t>(r) >= 8; }
constexpr bool fits_i8(std::int64_t v) { return v >= -128 && v <= 127; }

}  // namespace

void Assembler::u32(std::uint32_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v >> 16));
    u8(static_cast<std::uint8_t>(v >> 24));
}

void Assembler::u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
}

void Assembler::rex(bool w, Reg reg, Reg index, Reg base) {
    std::uint8_t b = 0x40;
    if (w) b |= 0x08;
    if (ext(reg)) b |= 0x04;
    if (ext(index)) b |= 0x02;
    if (ext(base)) b |= 0x01;
    if (b != 0x40) u8(b);
}

void Assembler::modrm(std::uint8_t mod, std::uint8_t reg, std::uint8_t rm) {
    u8(static_cast<std::uint8_t>((mod << 6) | (reg << 3) | rm));
}

// [base + disp]; base rsp/r12 takes the SIB escape, base rbp/r13 cannot use
// the disp-less form.
void Assembler::mem(std::uint8_t reg_field, Reg base, std::int32_t disp) {
    const std::uint8_t b = lo3(base);
    const bool need_sib = b == 4;  // rsp/r12
    const bool no_disp = disp == 0 && b != 5;  // rbp/r13 force a disp byte
    const std::uint8_t rm = need_sib ? 4 : b;
    if (no_disp) {
        modrm(0, reg_field, rm);
        if (need_sib) u8(static_cast<std::uint8_t>((4u << 3) | b));
    } else if (fits_i8(disp)) {
        modrm(1, reg_field, rm);
        if (need_sib) u8(static_cast<std::uint8_t>((4u << 3) | b));
        u8(static_cast<std::uint8_t>(disp));
    } else {
        modrm(2, reg_field, rm);
        if (need_sib) u8(static_cast<std::uint8_t>((4u << 3) | b));
        u32(static_cast<std::uint32_t>(disp));
    }
}

// [base + index*1 + disp]; index must not be rsp (hardware restriction).
void Assembler::mem_bi(std::uint8_t reg_field, Reg base, Reg index,
                       std::int32_t disp) {
    if (lo3(index) == 4 && !ext(index))
        throw std::logic_error("Assembler: rsp cannot be an index register");
    const std::uint8_t sib =
        static_cast<std::uint8_t>((lo3(index) << 3) | lo3(base));
    if (disp == 0 && lo3(base) != 5) {
        modrm(0, reg_field, 4);
        u8(sib);
    } else if (fits_i8(disp)) {
        modrm(1, reg_field, 4);
        u8(sib);
        u8(static_cast<std::uint8_t>(disp));
    } else {
        modrm(2, reg_field, 4);
        u8(sib);
        u32(static_cast<std::uint32_t>(disp));
    }
}

Assembler::Label Assembler::make_label() {
    labels_.emplace_back();
    return Label{static_cast<std::uint32_t>(labels_.size() - 1)};
}

void Assembler::bind(Label label) {
    LabelState& st = labels_.at(label.index);
    if (st.pos >= 0) throw std::logic_error("Assembler: label bound twice");
    st.pos = static_cast<std::int64_t>(code_.size());
}

void Assembler::rel32(Label target) {
    labels_.at(target.index).fixups.push_back(code_.size());
    u32(0);
}

void Assembler::mov_ri32(Reg dst, std::uint32_t imm) {
    rex(false, Reg::rax, Reg::rax, dst);
    u8(static_cast<std::uint8_t>(0xB8 + lo3(dst)));
    u32(imm);
}

void Assembler::mov_ri64(Reg dst, std::uint64_t imm) {
    rex(true, Reg::rax, Reg::rax, dst);
    u8(static_cast<std::uint8_t>(0xB8 + lo3(dst)));
    u64(imm);
}

void Assembler::mov_rr32(Reg dst, Reg src) {
    rex(false, dst, Reg::rax, src);
    u8(0x8B);
    modrm(3, lo3(dst), lo3(src));
}

void Assembler::load32(Reg dst, Reg base, std::int32_t disp) {
    rex(false, dst, Reg::rax, base);
    u8(0x8B);
    mem(lo3(dst), base, disp);
}

void Assembler::load32_bi(Reg dst, Reg base, Reg index, std::int32_t disp) {
    rex(false, dst, index, base);
    u8(0x8B);
    mem_bi(lo3(dst), base, index, disp);
}

void Assembler::movzx8(Reg dst, Reg base, std::int32_t disp) {
    rex(false, dst, Reg::rax, base);
    u8(0x0F);
    u8(0xB6);
    mem(lo3(dst), base, disp);
}

void Assembler::movzx8_bi(Reg dst, Reg base, Reg index, std::int32_t disp) {
    rex(false, dst, index, base);
    u8(0x0F);
    u8(0xB6);
    mem_bi(lo3(dst), base, index, disp);
}

void Assembler::movzx16(Reg dst, Reg base, std::int32_t disp) {
    rex(false, dst, Reg::rax, base);
    u8(0x0F);
    u8(0xB7);
    mem(lo3(dst), base, disp);
}

void Assembler::movzx16_bi(Reg dst, Reg base, Reg index, std::int32_t disp) {
    rex(false, dst, index, base);
    u8(0x0F);
    u8(0xB7);
    mem_bi(lo3(dst), base, index, disp);
}

void Assembler::store32(Reg base, std::int32_t disp, Reg src) {
    rex(false, src, Reg::rax, base);
    u8(0x89);
    mem(lo3(src), base, disp);
}

void Assembler::store64_imm32(Reg base, std::int32_t disp, std::int32_t imm) {
    rex(true, Reg::rax, Reg::rax, base);
    u8(0xC7);
    mem(0, base, disp);
    u32(static_cast<std::uint32_t>(imm));
}

void Assembler::cmov32(Cond cond, Reg dst, Reg src) {
    rex(false, dst, Reg::rax, src);
    u8(0x0F);
    u8(static_cast<std::uint8_t>(0x40 + static_cast<std::uint8_t>(cond)));
    modrm(3, lo3(dst), lo3(src));
}

void Assembler::alu32_ri(AluOp op, Reg dst, std::uint32_t imm) {
    rex(false, Reg::rax, Reg::rax, dst);
    if (fits_i8(static_cast<std::int32_t>(imm))) {
        u8(0x83);
        modrm(3, static_cast<std::uint8_t>(op), lo3(dst));
        u8(static_cast<std::uint8_t>(imm));
    } else {
        u8(0x81);
        modrm(3, static_cast<std::uint8_t>(op), lo3(dst));
        u32(imm);
    }
}

void Assembler::alu32_rr(AluOp op, Reg dst, Reg src) {
    rex(false, src, Reg::rax, dst);
    u8(static_cast<std::uint8_t>(static_cast<std::uint8_t>(op) * 8 + 1));
    modrm(3, lo3(src), lo3(dst));
}

void Assembler::alu64_ri(AluOp op, Reg dst, std::int32_t imm) {
    rex(true, Reg::rax, Reg::rax, dst);
    if (fits_i8(imm)) {
        u8(0x83);
        modrm(3, static_cast<std::uint8_t>(op), lo3(dst));
        u8(static_cast<std::uint8_t>(imm));
    } else {
        u8(0x81);
        modrm(3, static_cast<std::uint8_t>(op), lo3(dst));
        u32(static_cast<std::uint32_t>(imm));
    }
}

void Assembler::alu64_rr(AluOp op, Reg dst, Reg src) {
    rex(true, src, Reg::rax, dst);
    u8(static_cast<std::uint8_t>(static_cast<std::uint8_t>(op) * 8 + 1));
    modrm(3, lo3(src), lo3(dst));
}

void Assembler::imul32_rr(Reg dst, Reg src) {
    rex(false, dst, Reg::rax, src);
    u8(0x0F);
    u8(0xAF);
    modrm(3, lo3(dst), lo3(src));
}

void Assembler::imul32_rri(Reg dst, Reg src, std::uint32_t imm) {
    rex(false, dst, Reg::rax, src);
    u8(0x69);
    modrm(3, lo3(dst), lo3(src));
    u32(imm);
}

void Assembler::div32(Reg divisor) {
    rex(false, Reg::rax, Reg::rax, divisor);
    u8(0xF7);
    modrm(3, 6, lo3(divisor));
}

void Assembler::neg32(Reg reg) {
    rex(false, Reg::rax, Reg::rax, reg);
    u8(0xF7);
    modrm(3, 3, lo3(reg));
}

void Assembler::test32_rr(Reg a, Reg b) {
    rex(false, b, Reg::rax, a);
    u8(0x85);
    modrm(3, lo3(b), lo3(a));
}

void Assembler::test32_ri(Reg reg, std::uint32_t imm) {
    rex(false, Reg::rax, Reg::rax, reg);
    u8(0xF7);
    modrm(3, 0, lo3(reg));
    u32(imm);
}

void Assembler::shl32_ri(Reg reg, std::uint8_t imm) {
    rex(false, Reg::rax, Reg::rax, reg);
    u8(0xC1);
    modrm(3, 4, lo3(reg));
    u8(imm);
}

void Assembler::shr32_ri(Reg reg, std::uint8_t imm) {
    rex(false, Reg::rax, Reg::rax, reg);
    u8(0xC1);
    modrm(3, 5, lo3(reg));
    u8(imm);
}

void Assembler::shl32_cl(Reg reg) {
    rex(false, Reg::rax, Reg::rax, reg);
    u8(0xD3);
    modrm(3, 4, lo3(reg));
}

void Assembler::shr32_cl(Reg reg) {
    rex(false, Reg::rax, Reg::rax, reg);
    u8(0xD3);
    modrm(3, 5, lo3(reg));
}

void Assembler::shl64_ri(Reg reg, std::uint8_t imm) {
    rex(true, Reg::rax, Reg::rax, reg);
    u8(0xC1);
    modrm(3, 4, lo3(reg));
    u8(imm);
}

void Assembler::bswap32(Reg reg) {
    rex(false, Reg::rax, Reg::rax, reg);
    u8(0x0F);
    u8(static_cast<std::uint8_t>(0xC8 + lo3(reg)));
}

void Assembler::lea64(Reg dst, Reg base, std::int32_t disp) {
    rex(true, dst, Reg::rax, base);
    u8(0x8D);
    mem(lo3(dst), base, disp);
}

void Assembler::jmp(Label target) {
    u8(0xE9);
    rel32(target);
}

void Assembler::jcc(Cond cond, Label target) {
    u8(0x0F);
    u8(static_cast<std::uint8_t>(0x80 + static_cast<std::uint8_t>(cond)));
    rel32(target);
}

void Assembler::push64(Reg reg) {
    rex(false, Reg::rax, Reg::rax, reg);
    u8(static_cast<std::uint8_t>(0x50 + lo3(reg)));
}

void Assembler::pop64(Reg reg) {
    rex(false, Reg::rax, Reg::rax, reg);
    u8(static_cast<std::uint8_t>(0x58 + lo3(reg)));
}

void Assembler::ret() { u8(0xC3); }

std::vector<std::uint8_t> Assembler::finish() {
    for (const LabelState& st : labels_) {
        if (st.pos < 0 && !st.fixups.empty())
            throw std::logic_error("Assembler: jump to an unbound label");
        for (const std::size_t at : st.fixups) {
            const std::int64_t rel =
                st.pos - static_cast<std::int64_t>(at) - 4;
            const auto v = static_cast<std::uint32_t>(rel);
            code_[at] = static_cast<std::uint8_t>(v);
            code_[at + 1] = static_cast<std::uint8_t>(v >> 8);
            code_[at + 2] = static_cast<std::uint8_t>(v >> 16);
            code_[at + 3] = static_cast<std::uint8_t>(v >> 24);
        }
    }
    return std::move(code_);
}

}  // namespace capbench::bpf::jit
