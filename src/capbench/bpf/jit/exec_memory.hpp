// Owning wrapper for a page of executable code, with a strict W^X
// lifecycle: the mapping is created readable+writable, the code bytes are
// copied in, and the protection is flipped to read+execute before the
// entry point ever escapes — the mapping is never writable and executable
// at the same time.  Destroyed with munmap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

// The tier-2 JIT needs an x86-64 target and POSIX mmap/mprotect.  Other
// builds keep the full class compiling (supported() false, constructor
// throws) so callers fall back without #ifdefs of their own.
#if defined(__x86_64__) && !defined(_WIN32) && \
    (defined(__unix__) || defined(__linux__) || defined(__APPLE__))
#define CAPBENCH_BPF_JIT_X86_64 1
#else
#define CAPBENCH_BPF_JIT_X86_64 0
#endif

namespace capbench::bpf::jit {

class ExecMemory {
public:
    /// True when this build can map and execute generated code.
    static bool supported();

    ExecMemory() = default;
    /// Maps RW, copies `code`, seals to RX.  Throws std::runtime_error on
    /// unsupported builds, empty code, or mmap/mprotect failure.
    explicit ExecMemory(const std::vector<std::uint8_t>& code);
    ~ExecMemory();

    ExecMemory(const ExecMemory&) = delete;
    ExecMemory& operator=(const ExecMemory&) = delete;
    ExecMemory(ExecMemory&& other) noexcept;
    ExecMemory& operator=(ExecMemory&& other) noexcept;

    /// Start of the sealed (read+execute) code; null when default-built.
    [[nodiscard]] const void* entry() const { return mem_; }
    /// Bytes of emitted code.
    [[nodiscard]] std::size_t code_size() const { return code_size_; }
    /// Bytes actually mapped (code_size rounded up to whole pages).
    [[nodiscard]] std::size_t mapped_size() const { return mapped_size_; }

private:
    void* mem_ = nullptr;
    std::size_t code_size_ = 0;
    std::size_t mapped_size_ = 0;
};

}  // namespace capbench::bpf::jit
