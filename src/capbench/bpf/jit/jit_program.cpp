#include "capbench/bpf/jit/jit_program.hpp"

#include <cstdint>
#include <stdexcept>

#include "capbench/bpf/jit/assembler.hpp"

namespace capbench::bpf {

namespace jit {

namespace {

// Register assignment for the generated function (SysV arguments land in
// rdi/esi/edx):
//   rdi  packet data base          (argument, untouched)
//   rsi  data_len                  (argument, upper half cleared on entry)
//   r8d  wire_len                  (moved out of edx: div clobbers edx)
//   eax  BPF register A            (32-bit writes keep the upper half zero,
//                                   so rax always holds the zero-extended A)
//   ebx  BPF register X            (callee-saved: pushed in the prologue)
//   r9d  executed-instruction count
//   rsp  scratch words M[0..15] when the program touches them
//   ecx, edx, r10, r11             scratch
constexpr Reg kData = Reg::rdi;
constexpr Reg kLen = Reg::rsi;
constexpr Reg kWire = Reg::r8;
constexpr Reg kA = Reg::rax;
constexpr Reg kX = Reg::rbx;
constexpr Reg kCount = Reg::r9;
constexpr Reg kTmp = Reg::r10;
constexpr Reg kTmp2 = Reg::r11;

constexpr std::int32_t kMaxDisp = 0x7FFFFFFF;
constexpr std::uint32_t kFrameBytes = kMemWords * 4;

struct Emitter {
    Assembler& a;
    Assembler::Label fault;
    std::uint32_t pending = 0;  // executed insns not yet added to r9d

    // Adds the deferred count to r9d.  Called before binding a jump-target
    // label and before any instruction that can fault, branch or return, so
    // r9d holds the exact ThreadedVm-style count (the current instruction
    // included) at every fault site, return and control-flow merge.
    void flush() {
        if (pending != 0) {
            a.alu32_ri(AluOp::kAdd, kCount, pending);
            pending = 0;
        }
    }

    // cmp data_len, k + size; jb fault.  Exactly the threaded tier's
    // `off + size > size` (B: `off >= size` equals `off + 1 > size`).
    // Returns false when the load faults unconditionally (k + size
    // overflows 32 bits: no packet can satisfy it).
    bool guard_abs(std::uint32_t k, std::uint32_t size) {
        const std::uint64_t bound = static_cast<std::uint64_t>(k) + size;
        if (bound > 0xFFFFFFFFull) {
            a.jmp(fault);
            return false;
        }
        if (bound <= static_cast<std::uint64_t>(kMaxDisp)) {
            a.alu64_ri(AluOp::kCmp, kLen, static_cast<std::int32_t>(bound));
        } else {
            a.mov_ri32(kTmp, static_cast<std::uint32_t>(bound));
            a.alu64_rr(AluOp::kCmp, kLen, kTmp);
        }
        a.jcc(Cond::kB, fault);
        return true;
    }

    // Loads packet bytes at absolute offset k into `dst`, big-endian for
    // W/H.  `size` selects the width.
    void load_abs(Reg dst, std::uint32_t k, std::uint32_t size) {
        const bool direct = k <= static_cast<std::uint32_t>(kMaxDisp);
        if (!direct) a.mov_ri32(kTmp, k);
        const auto disp = static_cast<std::int32_t>(direct ? k : 0);
        switch (size) {
            case 4:
                if (direct)
                    a.load32(dst, kData, disp);
                else
                    a.load32_bi(dst, kData, kTmp, 0);
                a.bswap32(dst);
                break;
            case 2:
                if (direct)
                    a.movzx16(dst, kData, disp);
                else
                    a.movzx16_bi(dst, kData, kTmp, 0);
                a.bswap32(dst);
                a.shr32_ri(dst, 16);
                break;
            default:
                if (direct)
                    a.movzx8(dst, kData, disp);
                else
                    a.movzx8_bi(dst, kData, kTmp, 0);
                break;
        }
    }

    // kTmp = zero-extended X + k (cannot wrap: both fit 32 bits).
    void ind_offset(std::uint32_t k) {
        a.mov_ri32(kTmp, k);
        a.alu64_rr(AluOp::kAdd, kTmp, kX);
    }

    // Bounds check for an indirect load with the offset already in kTmp.
    void guard_ind(std::uint32_t size) {
        if (size == 1) {
            a.alu64_rr(AluOp::kCmp, kTmp, kLen);
            a.jcc(Cond::kAe, fault);  // off >= size
        } else {
            a.lea64(kTmp2, kTmp, static_cast<std::int32_t>(size));
            a.alu64_rr(AluOp::kCmp, kTmp2, kLen);
            a.jcc(Cond::kA, fault);  // off + size > size
        }
    }

    // Loads packet bytes at [data + kTmp] into A, big-endian for W/H.
    void load_at_tmp(std::uint32_t size) {
        switch (size) {
            case 4:
                a.load32_bi(kA, kData, kTmp, 0);
                a.bswap32(kA);
                break;
            case 2:
                a.movzx16_bi(kA, kData, kTmp, 0);
                a.bswap32(kA);
                a.shr32_ri(kA, 16);
                break;
            default:
                a.movzx8_bi(kA, kData, kTmp, 0);
                break;
        }
    }

    // Unchecked indirect load: address [data + X + k] like the threaded
    // tier's *U tokens (the fact table proved it in bounds).
    void load_ind_unchecked(std::uint32_t k, std::uint32_t size) {
        if (k <= static_cast<std::uint32_t>(kMaxDisp)) {
            const auto disp = static_cast<std::int32_t>(k);
            switch (size) {
                case 4:
                    a.load32_bi(kA, kData, kX, disp);
                    a.bswap32(kA);
                    break;
                case 2:
                    a.movzx16_bi(kA, kData, kX, disp);
                    a.bswap32(kA);
                    a.shr32_ri(kA, 16);
                    break;
                default:
                    a.movzx8_bi(kA, kData, kX, disp);
                    break;
            }
        } else {
            ind_offset(k);
            load_at_tmp(size);
        }
    }

    // X = 4 * (pkt[k] & 0x0F); the guard (when needed) already ran.
    void msh_body(std::uint32_t k) {
        if (k <= static_cast<std::uint32_t>(kMaxDisp)) {
            a.movzx8(kX, kData, static_cast<std::int32_t>(k));
        } else {
            a.mov_ri32(kTmp, k);
            a.movzx8_bi(kX, kData, kTmp, 0);
        }
        a.alu32_ri(AluOp::kAnd, kX, 0x0F);
        a.shl32_ri(kX, 2);
    }

    // A = x < 32 ? A shift x : 0, branchless.
    void shift_by_x(bool left) {
        a.mov_rr32(Reg::rcx, kX);
        left ? a.shl32_cl(kA) : a.shr32_cl(kA);
        a.alu32_rr(AluOp::kXor, kTmp, kTmp);
        a.alu32_ri(AluOp::kCmp, kX, 32);
        a.cmov32(Cond::kAe, kA, kTmp);
    }

    // Packs (count << 32) | accept_len — accept_len already in rax with a
    // zero upper half — and returns.
    void pack_and_ret(bool uses_mem) {
        a.mov_rr32(kTmp, kCount);
        a.shl64_ri(kTmp, 32);
        a.alu64_rr(AluOp::kOr, kA, kTmp);
        epilogue(uses_mem);
    }

    void epilogue(bool uses_mem) {
        if (uses_mem) a.alu64_ri(AluOp::kAdd, Reg::rsp, kFrameBytes);
        a.pop64(Reg::rbx);
        a.ret();
    }
};

bool touches_scratch(const DecodedProgram& prog) {
    for (const DecodedInsn& di : prog.insns) {
        switch (di.tok) {
            case Tok::kLdMem:
            case Tok::kLdxMem:
                return true;
            case Tok::kSt:
            case Tok::kStx:
                if ((di.flags & kDecodedDeadStore) == 0) return true;
                break;
            default:
                break;
        }
    }
    return false;
}

}  // namespace

std::vector<std::uint8_t> compile_to_bytes(const DecodedProgram& prog) {
    Assembler a;
    const std::size_t n = prog.insns.size();
    const bool uses_mem = touches_scratch(prog);

    // Jump-target pcs get labels; everything else is straight-line.
    std::vector<std::uint8_t> is_target(n, 0);
    for (const DecodedInsn& di : prog.insns) {
        switch (di.tok) {
            case Tok::kJa:
                if (di.jt < n) is_target[di.jt] = 1;
                break;
            case Tok::kJeqK: case Tok::kJgtK: case Tok::kJgeK: case Tok::kJsetK:
            case Tok::kJeqX: case Tok::kJgtX: case Tok::kJgeX: case Tok::kJsetX:
                if (di.jt < n) is_target[di.jt] = 1;
                if (di.jf < n) is_target[di.jf] = 1;
                break;
            default:
                break;
        }
    }
    std::vector<Assembler::Label> at(n);
    for (std::size_t pc = 0; pc < n; ++pc)
        if (is_target[pc]) at[pc] = a.make_label();

    Emitter e{a, a.make_label()};
    // A decoded jump target past the end (hand-built programs only — the
    // verifier pins targets to real instructions) lands on the fault path,
    // mirroring the interpreter's fell-off-the-end rejection.
    const auto target = [&](std::uint32_t t) { return t < n ? at[t] : e.fault; };

    // Prologue: save X's register, carve the scratch frame, zero the
    // machine state, normalize the 32-bit arguments.
    a.push64(Reg::rbx);
    if (uses_mem) {
        a.alu64_ri(AluOp::kSub, Reg::rsp, static_cast<std::int32_t>(kFrameBytes));
        for (std::uint32_t i = 0; i < kFrameBytes; i += 8)
            a.store64_imm32(Reg::rsp, static_cast<std::int32_t>(i), 0);
    }
    a.alu32_rr(AluOp::kXor, kA, kA);
    a.alu32_rr(AluOp::kXor, kX, kX);
    a.alu32_rr(AluOp::kXor, kCount, kCount);
    a.mov_rr32(kLen, kLen);     // data_len: clear the undefined upper half
    a.mov_rr32(kWire, Reg::rdx);  // wire_len out of div's clobber set

    const auto cond_jump = [&](Cond cond, const DecodedInsn& di, std::size_t pc) {
        const auto next = static_cast<std::uint32_t>(pc + 1);
        if (di.jt == di.jf) {
            if (di.jt != next) a.jmp(target(di.jt));
        } else if (di.jf == next) {
            a.jcc(cond, target(di.jt));
        } else if (di.jt == next) {
            a.jcc(negate(cond), target(di.jf));
        } else {
            a.jcc(cond, target(di.jt));
            a.jmp(target(di.jf));
        }
    };

    for (std::size_t pc = 0; pc < n; ++pc) {
        if (is_target[pc]) {
            e.flush();
            a.bind(at[pc]);
        }
        ++e.pending;
        const DecodedInsn& di = prog.insns[pc];
        const auto mem_slot = static_cast<std::int32_t>(di.k * 4);
        switch (di.tok) {
            case Tok::kLdImm: a.mov_ri32(kA, di.k); break;
            case Tok::kLdLen: a.mov_rr32(kA, kWire); break;
            case Tok::kLdMem: a.load32(kA, Reg::rsp, mem_slot); break;

            case Tok::kLdAbsW:
                e.flush();
                if (e.guard_abs(di.k, 4)) e.load_abs(kA, di.k, 4);
                break;
            case Tok::kLdAbsH:
                e.flush();
                if (e.guard_abs(di.k, 2)) e.load_abs(kA, di.k, 2);
                break;
            case Tok::kLdAbsB:
                e.flush();
                if (e.guard_abs(di.k, 1)) e.load_abs(kA, di.k, 1);
                break;
            case Tok::kLdAbsWU: e.load_abs(kA, di.k, 4); break;
            case Tok::kLdAbsHU: e.load_abs(kA, di.k, 2); break;
            case Tok::kLdAbsBU: e.load_abs(kA, di.k, 1); break;

            case Tok::kLdIndW:
                e.flush();
                e.ind_offset(di.k);
                e.guard_ind(4);
                e.load_at_tmp(4);
                break;
            case Tok::kLdIndH:
                e.flush();
                e.ind_offset(di.k);
                e.guard_ind(2);
                e.load_at_tmp(2);
                break;
            case Tok::kLdIndB:
                e.flush();
                e.ind_offset(di.k);
                e.guard_ind(1);
                e.load_at_tmp(1);
                break;
            case Tok::kLdIndWU: e.load_ind_unchecked(di.k, 4); break;
            case Tok::kLdIndHU: e.load_ind_unchecked(di.k, 2); break;
            case Tok::kLdIndBU: e.load_ind_unchecked(di.k, 1); break;

            case Tok::kLdxImm: a.mov_ri32(kX, di.k); break;
            case Tok::kLdxLen: a.mov_rr32(kX, kWire); break;
            case Tok::kLdxMem: a.load32(kX, Reg::rsp, mem_slot); break;
            case Tok::kLdxMsh:
                e.flush();
                if (e.guard_abs(di.k, 1)) e.msh_body(di.k);
                break;
            case Tok::kLdxMshU: e.msh_body(di.k); break;

            case Tok::kSt:
                if ((di.flags & kDecodedDeadStore) == 0)
                    a.store32(Reg::rsp, mem_slot, kA);
                break;
            case Tok::kStx:
                if ((di.flags & kDecodedDeadStore) == 0)
                    a.store32(Reg::rsp, mem_slot, kX);
                break;

            case Tok::kAddK: a.alu32_ri(AluOp::kAdd, kA, di.k); break;
            case Tok::kSubK: a.alu32_ri(AluOp::kSub, kA, di.k); break;
            case Tok::kMulK: a.imul32_rri(kA, kA, di.k); break;
            case Tok::kDivK:  // k != 0: verifier-checked
                a.mov_ri32(Reg::rcx, di.k);
                a.alu32_rr(AluOp::kXor, Reg::rdx, Reg::rdx);
                a.div32(Reg::rcx);
                break;
            case Tok::kOrK: a.alu32_ri(AluOp::kOr, kA, di.k); break;
            case Tok::kAndK: a.alu32_ri(AluOp::kAnd, kA, di.k); break;
            case Tok::kLshK: a.shl32_ri(kA, static_cast<std::uint8_t>(di.k)); break;
            case Tok::kRshK: a.shr32_ri(kA, static_cast<std::uint8_t>(di.k)); break;

            case Tok::kAddX: a.alu32_rr(AluOp::kAdd, kA, kX); break;
            case Tok::kSubX: a.alu32_rr(AluOp::kSub, kA, kX); break;
            case Tok::kMulX: a.imul32_rr(kA, kX); break;
            case Tok::kDivX:
                e.flush();
                a.test32_rr(kX, kX);
                a.jcc(Cond::kE, e.fault);
                a.alu32_rr(AluOp::kXor, Reg::rdx, Reg::rdx);
                a.div32(kX);
                break;
            case Tok::kOrX: a.alu32_rr(AluOp::kOr, kA, kX); break;
            case Tok::kAndX: a.alu32_rr(AluOp::kAnd, kA, kX); break;
            case Tok::kLshX: e.shift_by_x(true); break;
            case Tok::kRshX: e.shift_by_x(false); break;
            case Tok::kNeg: a.neg32(kA); break;

            case Tok::kJa:
                e.flush();
                if (di.jt != pc + 1) a.jmp(target(di.jt));
                break;
            case Tok::kJeqK:
                e.flush();
                a.alu32_ri(AluOp::kCmp, kA, di.k);
                cond_jump(Cond::kE, di, pc);
                break;
            case Tok::kJgtK:
                e.flush();
                a.alu32_ri(AluOp::kCmp, kA, di.k);
                cond_jump(Cond::kA, di, pc);
                break;
            case Tok::kJgeK:
                e.flush();
                a.alu32_ri(AluOp::kCmp, kA, di.k);
                cond_jump(Cond::kAe, di, pc);
                break;
            case Tok::kJsetK:
                e.flush();
                a.test32_ri(kA, di.k);
                cond_jump(Cond::kNe, di, pc);
                break;
            case Tok::kJeqX:
                e.flush();
                a.alu32_rr(AluOp::kCmp, kA, kX);
                cond_jump(Cond::kE, di, pc);
                break;
            case Tok::kJgtX:
                e.flush();
                a.alu32_rr(AluOp::kCmp, kA, kX);
                cond_jump(Cond::kA, di, pc);
                break;
            case Tok::kJgeX:
                e.flush();
                a.alu32_rr(AluOp::kCmp, kA, kX);
                cond_jump(Cond::kAe, di, pc);
                break;
            case Tok::kJsetX:
                e.flush();
                a.test32_rr(kA, kX);
                cond_jump(Cond::kNe, di, pc);
                break;

            case Tok::kRetK:
                e.flush();
                a.mov_ri32(kA, di.k);
                e.pack_and_ret(uses_mem);
                break;
            case Tok::kRetA:
                e.flush();
                e.pack_and_ret(uses_mem);
                break;

            case Tok::kTax: a.mov_rr32(kX, kA); break;
            case Tok::kTxa: a.mov_rr32(kA, kX); break;

            case Tok::kCount_:
                throw std::logic_error("compile_to_bytes: kCount_ in program");
        }
    }

    // Fell off the end without RET (empty or hand-built programs; the
    // verifier forbids it): reject like the interpreter.
    e.flush();
    a.jmp(e.fault);

    // Shared fault exit: r9d is exact at every jump here.
    a.bind(e.fault);
    e.flush();
    a.mov_rr32(kTmp, kCount);
    a.shl64_ri(kTmp, 32);
    a.mov_ri64(kA, std::uint64_t{1} << 48);  // aborted flag, accept_len 0
    a.alu64_rr(AluOp::kOr, kA, kTmp);
    e.epilogue(uses_mem);

    return a.finish();
}

}  // namespace jit

std::shared_ptr<const JitProgram> JitProgram::compile(const DecodedProgram& prog) {
    if (!supported())
        throw std::runtime_error("JitProgram: native tier unsupported on this build");
    jit::ExecMemory mem(jit::compile_to_bytes(prog));
    return std::shared_ptr<const JitProgram>(new JitProgram(std::move(mem)));
}

}  // namespace capbench::bpf
