#include "capbench/bpf/jit/exec_memory.hpp"

#include <stdexcept>
#include <utility>

#if CAPBENCH_BPF_JIT_X86_64
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#endif

namespace capbench::bpf::jit {

bool ExecMemory::supported() { return CAPBENCH_BPF_JIT_X86_64 != 0; }

#if CAPBENCH_BPF_JIT_X86_64

ExecMemory::ExecMemory(const std::vector<std::uint8_t>& code) {
    if (code.empty()) throw std::runtime_error("ExecMemory: empty code");
    const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::size_t rounded = (code.size() + page - 1) / page * page;
    void* mem = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) throw std::runtime_error("ExecMemory: mmap failed");
    std::memcpy(mem, code.data(), code.size());
    if (::mprotect(mem, rounded, PROT_READ | PROT_EXEC) != 0) {
        ::munmap(mem, rounded);
        throw std::runtime_error("ExecMemory: mprotect(PROT_READ|PROT_EXEC) failed");
    }
    mem_ = mem;
    code_size_ = code.size();
    mapped_size_ = rounded;
}

ExecMemory::~ExecMemory() {
    if (mem_ != nullptr) ::munmap(mem_, mapped_size_);
}

#else  // !CAPBENCH_BPF_JIT_X86_64

ExecMemory::ExecMemory(const std::vector<std::uint8_t>& code) {
    (void)code;
    throw std::runtime_error("ExecMemory: JIT is not supported on this build");
}

ExecMemory::~ExecMemory() = default;

#endif

ExecMemory::ExecMemory(ExecMemory&& other) noexcept
    : mem_(std::exchange(other.mem_, nullptr)),
      code_size_(std::exchange(other.code_size_, 0)),
      mapped_size_(std::exchange(other.mapped_size_, 0)) {}

ExecMemory& ExecMemory::operator=(ExecMemory&& other) noexcept {
    if (this != &other) {
        ExecMemory tmp(std::move(other));
        std::swap(mem_, tmp.mem_);
        std::swap(code_size_, tmp.code_size_);
        std::swap(mapped_size_, tmp.mapped_size_);
    }
    return *this;
}

}  // namespace capbench::bpf::jit
