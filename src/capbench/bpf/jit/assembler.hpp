// Minimal x86-64 assembler for the BPF tier-2 code generator.
//
// Emits into a plain byte vector: REX-aware ModRM/SIB encoding for the
// handful of instruction forms the BPF lowering needs, plus labels with
// rel32 jump fixups (bind in any order; finish() patches every reference
// and refuses unbound labels).  The encoder itself is portable — it only
// produces bytes — so codegen unit tests run on every host; only mapping
// and executing the result is x86-64-specific (exec_memory.hpp).
#pragma once

#include <cstdint>
#include <vector>

namespace capbench::bpf::jit {

/// Hardware register numbers (ModRM/REX encoding order).
enum class Reg : std::uint8_t {
    rax = 0, rcx, rdx, rbx, rsp, rbp, rsi, rdi,
    r8, r9, r10, r11, r12, r13, r14, r15,
};

/// Condition codes (the low nibble of the 0F 8x / 0F 4x opcode families).
enum class Cond : std::uint8_t {
    kB = 0x2,   // below (unsigned <)
    kAe = 0x3,  // above-or-equal (unsigned >=)
    kE = 0x4,   // equal / zero
    kNe = 0x5,  // not equal / not zero
    kBe = 0x6,  // below-or-equal (unsigned <=)
    kA = 0x7,   // above (unsigned >)
};

/// Flip a condition to its logical negation (x86 pairs them adjacently).
constexpr Cond negate(Cond c) {
    return static_cast<Cond>(static_cast<std::uint8_t>(c) ^ 1u);
}

/// ALU group-1 operations: the /digit for 81/83 immediates, and the
/// "r/m, reg" opcode is op * 8 + 1.
enum class AluOp : std::uint8_t {
    kAdd = 0,
    kOr = 1,
    kAnd = 4,
    kSub = 5,
    kXor = 6,
    kCmp = 7,
};

class Assembler {
public:
    struct Label {
        std::uint32_t index = 0;
    };

    Label make_label();
    /// Fixes the label to the current position; each label binds once.
    void bind(Label label);

    // -- moves ------------------------------------------------------------
    void mov_ri32(Reg dst, std::uint32_t imm);  // also zeroes the upper half
    void mov_ri64(Reg dst, std::uint64_t imm);
    void mov_rr32(Reg dst, Reg src);
    // loads/stores: [base + disp] and [base + index*1 + disp]
    void load32(Reg dst, Reg base, std::int32_t disp);
    void load32_bi(Reg dst, Reg base, Reg index, std::int32_t disp);
    void movzx8(Reg dst, Reg base, std::int32_t disp);
    void movzx8_bi(Reg dst, Reg base, Reg index, std::int32_t disp);
    void movzx16(Reg dst, Reg base, std::int32_t disp);
    void movzx16_bi(Reg dst, Reg base, Reg index, std::int32_t disp);
    void store32(Reg base, std::int32_t disp, Reg src);
    void store64_imm32(Reg base, std::int32_t disp, std::int32_t imm);
    void cmov32(Cond cond, Reg dst, Reg src);

    // -- arithmetic / logic ----------------------------------------------
    void alu32_ri(AluOp op, Reg dst, std::uint32_t imm);
    void alu32_rr(AluOp op, Reg dst, Reg src);  // dst is the r/m operand
    void alu64_ri(AluOp op, Reg dst, std::int32_t imm);  // imm sign-extended
    void alu64_rr(AluOp op, Reg dst, Reg src);
    void imul32_rr(Reg dst, Reg src);
    void imul32_rri(Reg dst, Reg src, std::uint32_t imm);
    void div32(Reg divisor);  // edx:eax / r32 -> eax (caller zeroes edx)
    void neg32(Reg reg);
    void test32_rr(Reg a, Reg b);
    void test32_ri(Reg reg, std::uint32_t imm);
    void shl32_ri(Reg reg, std::uint8_t imm);
    void shr32_ri(Reg reg, std::uint8_t imm);
    void shl32_cl(Reg reg);
    void shr32_cl(Reg reg);
    void shl64_ri(Reg reg, std::uint8_t imm);
    void bswap32(Reg reg);
    void lea64(Reg dst, Reg base, std::int32_t disp);

    // -- control flow -----------------------------------------------------
    void jmp(Label target);             // E9 rel32
    void jcc(Cond cond, Label target);  // 0F 8x rel32
    void push64(Reg reg);
    void pop64(Reg reg);
    void ret();

    /// Patches every rel32 reference and returns the code.  Throws
    /// std::logic_error if a referenced label was never bound.
    std::vector<std::uint8_t> finish();

    [[nodiscard]] std::size_t size() const { return code_.size(); }

private:
    struct LabelState {
        std::int64_t pos = -1;              // bound position, -1 while open
        std::vector<std::size_t> fixups;    // rel32 patch offsets
    };

    void u8(std::uint8_t v) { code_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void rex(bool w, Reg reg, Reg index, Reg base);
    void modrm(std::uint8_t mod, std::uint8_t reg, std::uint8_t rm);
    void mem(std::uint8_t reg_field, Reg base, std::int32_t disp);
    void mem_bi(std::uint8_t reg_field, Reg base, Reg index, std::int32_t disp);
    void rel32(Label target);

    std::vector<std::uint8_t> code_;
    std::vector<LabelState> labels_;
};

}  // namespace capbench::bpf::jit
