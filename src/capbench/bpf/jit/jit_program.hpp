// Tier-2 BPF execution: DecodedProgram tokens lowered to native x86-64.
//
// The generated function is the BESS `bpf_filter_func_t` shape — one call
// per packet, no interpreter loop — with the whole VmResult packed into
// the return register:
//
//   bits  0..31  accept_len
//   bits 32..47  insns_executed (forward-only jumps bound it by kMaxInsns)
//   bit  48      aborted
//
// Abort semantics (div-by-zero, out-of-bounds checked load, falling off
// the end) and the executed-instruction count are byte-identical to the
// interpreter and threaded tiers: the count register is flushed to the
// exact value before every faultable check, counting the faulting
// instruction itself, just as the other tiers count an instruction before
// executing it.  The verifier facts drive the same elisions decode()
// already picked — unchecked loads (`safe_load`), folded constants — plus
// one the threaded tier declines: scratch stores flagged liveness-dead
// emit no code at all (still counted as executed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "capbench/bpf/decoded.hpp"
#include "capbench/bpf/jit/exec_memory.hpp"
#include "capbench/bpf/vm.hpp"

namespace capbench::bpf {

/// Native entry point (SysV x86-64).
using JitFn = std::uint64_t (*)(const std::byte* data, std::uint32_t data_len,
                                std::uint32_t wire_len);

namespace jit {
/// Lowers the token stream to machine code.  Pure byte generation — runs
/// (and is unit-tested) on every host; only executing needs x86-64.
std::vector<std::uint8_t> compile_to_bytes(const DecodedProgram& prog);
}  // namespace jit

class JitProgram {
public:
    /// True when this build can emit and execute native code.
    static bool supported() { return jit::ExecMemory::supported(); }

    /// Compiles to an RX mapping.  Throws std::runtime_error when
    /// !supported() or the mapping fails.  `prog` must come from decode()
    /// of a verified program (same precondition as ThreadedVm::run).
    static std::shared_ptr<const JitProgram> compile(const DecodedProgram& prog);

    [[nodiscard]] VmResult run(std::span<const std::byte> data,
                               std::uint32_t wire_len) const {
        const std::uint64_t packed =
            fn_(data.data(), static_cast<std::uint32_t>(data.size()), wire_len);
        VmResult r;
        r.accept_len = static_cast<std::uint32_t>(packed);
        r.insns_executed = static_cast<std::uint32_t>((packed >> 32) & 0xFFFFu);
        r.aborted = (packed >> 48) != 0;
        return r;
    }

    [[nodiscard]] VmResult run(std::span<const std::byte> data) const {
        return run(data, static_cast<std::uint32_t>(data.size()));
    }

    [[nodiscard]] std::size_t code_size() const { return mem_.code_size(); }
    [[nodiscard]] std::size_t mapped_size() const { return mem_.mapped_size(); }
    [[nodiscard]] JitFn entry() const { return fn_; }

private:
    explicit JitProgram(jit::ExecMemory mem)
        : mem_(std::move(mem)),
          fn_(reinterpret_cast<JitFn>(const_cast<void*>(mem_.entry()))) {}

    jit::ExecMemory mem_;
    JitFn fn_;
};

}  // namespace capbench::bpf
