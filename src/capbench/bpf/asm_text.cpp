#include "capbench/bpf/asm_text.hpp"

#include <cstdio>
#include <sstream>

namespace capbench::bpf {

namespace {

std::string hex(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "#0x%x", v);
    return buf;
}

std::string size_suffix(std::uint16_t code) {
    switch (bpf_size(code)) {
        case BPF_W: return "";
        case BPF_H: return "h";
        case BPF_B: return "b";
        default: return "?";
    }
}

std::string alu_name(std::uint16_t op) {
    switch (op) {
        case BPF_ADD: return "add";
        case BPF_SUB: return "sub";
        case BPF_MUL: return "mul";
        case BPF_DIV: return "div";
        case BPF_OR: return "or";
        case BPF_AND: return "and";
        case BPF_LSH: return "lsh";
        case BPF_RSH: return "rsh";
        case BPF_NEG: return "neg";
        default: return "alu?";
    }
}

std::string jmp_name(std::uint16_t op) {
    switch (op) {
        case BPF_JEQ: return "jeq";
        case BPF_JGT: return "jgt";
        case BPF_JGE: return "jge";
        case BPF_JSET: return "jset";
        default: return "jmp?";
    }
}

}  // namespace

std::string disassemble_insn(const Insn& insn) {
    std::ostringstream out;
    const std::uint16_t code = insn.code;
    switch (bpf_class(code)) {
        case BPF_LD:
        case BPF_LDX: {
            const bool is_x = bpf_class(code) == BPF_LDX;
            const std::string name = (is_x ? "ldx" : "ld") + size_suffix(code);
            switch (bpf_mode(code)) {
                case BPF_IMM: out << name << ' ' << hex(insn.k); break;
                case BPF_ABS: out << name << " [" << insn.k << ']'; break;
                case BPF_IND: out << name << " [x + " << insn.k << ']'; break;
                case BPF_LEN: out << name << " len"; break;
                case BPF_MEM: out << name << " M[" << insn.k << ']'; break;
                case BPF_MSH: out << "ldxb 4*([" << insn.k << "]&0xf)"; break;
                default: out << name << " ?"; break;
            }
            break;
        }
        case BPF_ST: out << "st M[" << insn.k << ']'; break;
        case BPF_STX: out << "stx M[" << insn.k << ']'; break;
        case BPF_ALU:
            if (bpf_op(code) == BPF_NEG)
                out << "neg";
            else if (bpf_src(code) == BPF_X)
                out << alu_name(bpf_op(code)) << " x";
            else
                out << alu_name(bpf_op(code)) << ' ' << hex(insn.k);
            break;
        case BPF_JMP:
            if (bpf_op(code) == BPF_JA) {
                out << "ja +" << insn.k;
            } else {
                out << jmp_name(bpf_op(code)) << ' '
                    << (bpf_src(code) == BPF_X ? std::string("x") : hex(insn.k)) << " jt "
                    << static_cast<unsigned>(insn.jt) << " jf " << static_cast<unsigned>(insn.jf);
            }
            break;
        case BPF_RET:
            if (bpf_rval(code) == BPF_A)
                out << "ret a";
            else
                out << "ret #" << insn.k;
            break;
        case BPF_MISC:
            out << (bpf_miscop(code) == BPF_TAX ? "tax" : "txa");
            break;
        default:
            out << "unknown 0x" << std::hex << code;
            break;
    }
    return out.str();
}

std::string disassemble(const Program& prog) {
    std::ostringstream out;
    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        char num[24];
        std::snprintf(num, sizeof num, "(%03zu) ", pc);
        out << num << disassemble_insn(prog[pc]) << '\n';
    }
    return out.str();
}

std::string disassemble(const Program& prog,
                        const std::vector<analysis::Finding>& findings) {
    std::ostringstream out;
    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        char num[24];
        std::snprintf(num, sizeof num, "(%03zu) ", pc);
        out << num << disassemble_insn(prog[pc]) << '\n';
        for (const auto& f : findings) {
            if (f.insn == pc)
                out << "      ;  " << to_string(f.severity) << ": " << f.message << '\n';
        }
    }
    return out.str();
}

}  // namespace capbench::bpf
