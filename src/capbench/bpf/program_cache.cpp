#include "capbench/bpf/program_cache.hpp"

#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "capbench/bpf/verifier.hpp"

namespace capbench::bpf {

namespace {

struct ProgramLess {
    bool operator()(const Program& a, const Program& b) const {
        if (a.size() != b.size()) return a.size() < b.size();
        for (std::size_t i = 0; i < a.size(); ++i) {
            const auto ta = std::tuple{a[i].code, a[i].jt, a[i].jf, a[i].k};
            const auto tb = std::tuple{b[i].code, b[i].jt, b[i].jf, b[i].k};
            if (ta != tb) return ta < tb;
        }
        return false;
    }
};

struct Cache {
    std::mutex mu;
    std::map<Program, CachedFilter, ProgramLess> entries;
    CacheStats stats;
};

Cache& cache() {
    static Cache c;  // leaked-on-exit singleton keeps shutdown order trivial
    return c;
}

}  // namespace

CachedFilter cache_filter(const Program& prog, bool want_jit) {
    Cache& c = cache();
    bool have_decoded = false;
    std::shared_ptr<const DecodedProgram> decoded;
    {
        const std::lock_guard<std::mutex> lock(c.mu);
        ++c.stats.lookups;
        if (const auto it = c.entries.find(prog); it != c.entries.end()) {
            if (!want_jit || it->second.jit != nullptr) {
                ++c.stats.hits;
                return it->second;
            }
            // Entry exists but the native code does not yet: compile below.
            have_decoded = true;
            decoded = it->second.decoded;
        }
    }
    // Verify + decode + compile outside the lock: attach-time work, and the
    // verifier may throw.  A racing install of the same program does the
    // work twice but both sides agree; the first insert wins and fixes the
    // id (and counts the miss/compile — losers count hits).
    if (!have_decoded) {
        VerifyResult verdict = verify(prog);
        if (const analysis::Finding* err = verdict.first_error())
            throw std::invalid_argument("BPF verifier rejected filter: " +
                                        analysis::to_string(*err));
        decoded = std::make_shared<DecodedProgram>(decode(prog, verdict.facts));
    }
    std::shared_ptr<const JitProgram> jitted;
    if (want_jit) jitted = JitProgram::compile(*decoded);

    const std::lock_guard<std::mutex> lock(c.mu);
    const auto it = c.entries.find(prog);
    if (it == c.entries.end()) {
        auto owned = std::const_pointer_cast<DecodedProgram>(decoded);
        owned->id = c.entries.size() + 1;
        ++c.stats.misses;
        if (jitted != nullptr) ++c.stats.jit_compiles;
        return c.entries.emplace(prog, CachedFilter{std::move(decoded), std::move(jitted)})
            .first->second;
    }
    ++c.stats.hits;
    if (jitted != nullptr && it->second.jit == nullptr) {
        it->second.jit = std::move(jitted);
        ++c.stats.jit_compiles;
    }
    return it->second;
}

std::shared_ptr<const DecodedProgram> cache_decoded(const Program& prog) {
    return cache_filter(prog, false).decoded;
}

std::size_t cached_program_count() {
    Cache& c = cache();
    const std::lock_guard<std::mutex> lock(c.mu);
    return c.entries.size();
}

CacheStats cache_stats() {
    Cache& c = cache();
    const std::lock_guard<std::mutex> lock(c.mu);
    return c.stats;
}

}  // namespace capbench::bpf
