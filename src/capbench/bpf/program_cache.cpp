#include "capbench/bpf/program_cache.hpp"

#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "capbench/bpf/verifier.hpp"

namespace capbench::bpf {

namespace {

struct ProgramLess {
    bool operator()(const Program& a, const Program& b) const {
        if (a.size() != b.size()) return a.size() < b.size();
        for (std::size_t i = 0; i < a.size(); ++i) {
            const auto ta = std::tuple{a[i].code, a[i].jt, a[i].jf, a[i].k};
            const auto tb = std::tuple{b[i].code, b[i].jt, b[i].jf, b[i].k};
            if (ta != tb) return ta < tb;
        }
        return false;
    }
};

struct Cache {
    std::mutex mu;
    std::map<Program, std::shared_ptr<const DecodedProgram>, ProgramLess> entries;
};

Cache& cache() {
    static Cache c;  // leaked-on-exit singleton keeps shutdown order trivial
    return c;
}

}  // namespace

std::shared_ptr<const DecodedProgram> cache_decoded(const Program& prog) {
    Cache& c = cache();
    {
        const std::lock_guard<std::mutex> lock(c.mu);
        if (const auto it = c.entries.find(prog); it != c.entries.end())
            return it->second;
    }
    // Verify + decode outside the lock: attach-time work, and the verifier
    // may throw.  A racing install of the same program decodes twice but
    // both sides agree; first insert wins and fixes the id.
    VerifyResult verdict = verify(prog);
    if (const analysis::Finding* err = verdict.first_error())
        throw std::invalid_argument("BPF verifier rejected filter: " +
                                    analysis::to_string(*err));
    auto decoded = std::make_shared<DecodedProgram>(decode(prog, verdict.facts));

    const std::lock_guard<std::mutex> lock(c.mu);
    if (const auto it = c.entries.find(prog); it != c.entries.end()) return it->second;
    decoded->id = c.entries.size() + 1;
    const auto [it, inserted] = c.entries.emplace(prog, std::move(decoded));
    return it->second;
}

std::size_t cached_program_count() {
    Cache& c = cache();
    const std::lock_guard<std::mutex> lock(c.mu);
    return c.entries.size();
}

}  // namespace capbench::bpf
