#include "capbench/bpf/decoded.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace capbench::bpf {

namespace {

Tok abs_tok(std::uint16_t code, bool unchecked) {
    switch (bpf_size(code)) {
        case BPF_W: return unchecked ? Tok::kLdAbsWU : Tok::kLdAbsW;
        case BPF_H: return unchecked ? Tok::kLdAbsHU : Tok::kLdAbsH;
        default: return unchecked ? Tok::kLdAbsBU : Tok::kLdAbsB;
    }
}

Tok ind_tok(std::uint16_t code, bool unchecked) {
    switch (bpf_size(code)) {
        case BPF_W: return unchecked ? Tok::kLdIndWU : Tok::kLdIndW;
        case BPF_H: return unchecked ? Tok::kLdIndHU : Tok::kLdIndH;
        default: return unchecked ? Tok::kLdIndBU : Tok::kLdIndB;
    }
}

Tok alu_tok(std::uint16_t code) {
    const bool use_x = bpf_src(code) == BPF_X;
    switch (bpf_op(code)) {
        case BPF_ADD: return use_x ? Tok::kAddX : Tok::kAddK;
        case BPF_SUB: return use_x ? Tok::kSubX : Tok::kSubK;
        case BPF_MUL: return use_x ? Tok::kMulX : Tok::kMulK;
        case BPF_DIV: return use_x ? Tok::kDivX : Tok::kDivK;
        case BPF_OR: return use_x ? Tok::kOrX : Tok::kOrK;
        case BPF_AND: return use_x ? Tok::kAndX : Tok::kAndK;
        case BPF_LSH: return use_x ? Tok::kLshX : Tok::kLshK;
        case BPF_RSH: return use_x ? Tok::kRshX : Tok::kRshK;
        default: return Tok::kNeg;
    }
}

Tok jmp_tok(std::uint16_t code) {
    const bool use_x = bpf_src(code) == BPF_X;
    switch (bpf_op(code)) {
        case BPF_JEQ: return use_x ? Tok::kJeqX : Tok::kJeqK;
        case BPF_JGT: return use_x ? Tok::kJgtX : Tok::kJgtK;
        case BPF_JGE: return use_x ? Tok::kJgeX : Tok::kJgeK;
        default: return use_x ? Tok::kJsetX : Tok::kJsetK;
    }
}

}  // namespace

DecodedProgram decode(const Program& prog, const analysis::FactTable& facts) {
    DecodedProgram out;
    out.insns.resize(prog.size());
    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        const Insn& insn = prog[pc];
        const std::uint16_t code = insn.code;
        const analysis::InsnFacts& f = facts[pc];
        DecodedInsn& d = out.insns[pc];
        d.k = insn.k;
        switch (bpf_class(code)) {
            case BPF_LD:
                switch (bpf_mode(code)) {
                    case BPF_IMM:
                        d.tok = Tok::kLdImm;
                        break;
                    case BPF_LEN:
                    case BPF_MEM:
                        if (f.const_result) {
                            d.tok = Tok::kLdImm;
                            d.k = f.const_value;
                            ++out.stats.folded_loads;
                        } else {
                            d.tok = bpf_mode(code) == BPF_LEN ? Tok::kLdLen : Tok::kLdMem;
                        }
                        break;
                    case BPF_ABS:
                    case BPF_IND:
                        ++out.stats.packet_loads;
                        // Fold only proven-safe packet loads: a constant
                        // value always comes with a dominating successful
                        // load, but require the proof explicitly.
                        if (f.safe_load && f.const_result) {
                            d.tok = Tok::kLdImm;
                            d.k = f.const_value;
                            ++out.stats.folded_loads;
                        } else {
                            d.tok = bpf_mode(code) == BPF_ABS
                                        ? abs_tok(code, f.safe_load)
                                        : ind_tok(code, f.safe_load);
                            if (f.safe_load) ++out.stats.unchecked_loads;
                        }
                        break;
                    default:
                        break;
                }
                break;
            case BPF_LDX:
                switch (bpf_mode(code)) {
                    case BPF_IMM:
                        d.tok = Tok::kLdxImm;
                        break;
                    case BPF_LEN:
                    case BPF_MEM:
                        if (f.const_result) {
                            d.tok = Tok::kLdxImm;
                            d.k = f.const_value;
                            ++out.stats.folded_loads;
                        } else {
                            d.tok =
                                bpf_mode(code) == BPF_LEN ? Tok::kLdxLen : Tok::kLdxMem;
                        }
                        break;
                    case BPF_MSH:
                        ++out.stats.packet_loads;
                        if (f.safe_load && f.const_result) {
                            d.tok = Tok::kLdxImm;
                            d.k = f.const_value;
                            ++out.stats.folded_loads;
                        } else {
                            d.tok = f.safe_load ? Tok::kLdxMshU : Tok::kLdxMsh;
                            if (f.safe_load) ++out.stats.unchecked_loads;
                        }
                        break;
                    default:
                        break;
                }
                break;
            case BPF_ST:
            case BPF_STX:
                d.tok = bpf_class(code) == BPF_ST ? Tok::kSt : Tok::kStx;
                if (f.dead_store) {
                    d.flags |= kDecodedDeadStore;
                    ++out.stats.dead_stores;
                }
                break;
            case BPF_ALU:
                // A constant over-shift always yields 0; decode it as the
                // immediate so kLshK/kRshK never need the < 32 branch.
                if ((bpf_op(code) == BPF_LSH || bpf_op(code) == BPF_RSH) &&
                    bpf_src(code) == BPF_K && insn.k >= 32) {
                    d.tok = Tok::kLdImm;
                    d.k = 0;
                } else {
                    d.tok = alu_tok(code);
                }
                break;
            case BPF_JMP:
                if (bpf_op(code) == BPF_JA) {
                    d.tok = Tok::kJa;
                    d.jt = static_cast<std::uint32_t>(pc + 1 + insn.k);
                } else {
                    d.tok = jmp_tok(code);
                    d.jt = static_cast<std::uint32_t>(pc + 1 + insn.jt);
                    d.jf = static_cast<std::uint32_t>(pc + 1 + insn.jf);
                }
                break;
            case BPF_RET:
                d.tok = bpf_rval(code) == BPF_A ? Tok::kRetA : Tok::kRetK;
                break;
            default:  // BPF_MISC
                d.tok = bpf_miscop(code) == BPF_TAX ? Tok::kTax : Tok::kTxa;
                break;
        }
    }
    return out;
}

ExecTier parse_exec_tier(const std::string& value) {
    if (value == "threaded") return ExecTier::kThreaded;
    if (value == "interpreter") return ExecTier::kInterpreter;
    if (value == "jit") return ExecTier::kJit;
    throw std::runtime_error(
        "CAPBENCH_BPF_TIER: expected 'threaded', 'interpreter' or 'jit', got '" +
        value + "'");
}

ExecTier exec_tier() {
    static const ExecTier tier = [] {
        const char* env = std::getenv("CAPBENCH_BPF_TIER");
        return env == nullptr ? ExecTier::kThreaded : parse_exec_tier(env);
    }();
    return tier;
}

}  // namespace capbench::bpf
