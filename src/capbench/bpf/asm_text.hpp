// Textual disassembly of BPF programs, in the style of `tcpdump -d`.
#pragma once

#include <string>

#include "capbench/bpf/insn.hpp"

namespace capbench::bpf {

/// One instruction, e.g. "jeq #0x800 jt 2 jf 5".
std::string disassemble_insn(const Insn& insn);

/// Whole program with line numbers:
///   (000) ldh [12]
///   (001) jeq #0x800 jt 2 jf 5
///   ...
std::string disassemble(const Program& prog);

}  // namespace capbench::bpf
