// Textual disassembly of BPF programs, in the style of `tcpdump -d`.
#pragma once

#include <string>
#include <vector>

#include "capbench/bpf/analysis/findings.hpp"
#include "capbench/bpf/insn.hpp"

namespace capbench::bpf {

/// One instruction, e.g. "jeq #0x800 jt 2 jf 5".
std::string disassemble_insn(const Insn& insn);

/// Whole program with line numbers:
///   (000) ldh [12]
///   (001) jeq #0x800 jt 2 jf 5
///   ...
std::string disassemble(const Program& prog);

/// Annotated listing: each instruction followed by the analyzer findings
/// anchored to it, as `;  warning: ...` comment lines.
std::string disassemble(const Program& prog,
                        const std::vector<analysis::Finding>& findings);

}  // namespace capbench::bpf
