// Classic BPF instruction set (McCanne & Jacobson 1993), as used by both
// the FreeBSD BPF and the Linux Socket Filter (Section 2.1).
#pragma once

#include <cstdint>
#include <vector>

namespace capbench::bpf {

// Opcode encoding: class | size | mode (loads), class | op | src (alu/jmp),
// matching the historical <net/bpf.h> layout.
inline constexpr std::uint16_t BPF_LD = 0x00;
inline constexpr std::uint16_t BPF_LDX = 0x01;
inline constexpr std::uint16_t BPF_ST = 0x02;
inline constexpr std::uint16_t BPF_STX = 0x03;
inline constexpr std::uint16_t BPF_ALU = 0x04;
inline constexpr std::uint16_t BPF_JMP = 0x05;
inline constexpr std::uint16_t BPF_RET = 0x06;
inline constexpr std::uint16_t BPF_MISC = 0x07;

// Load sizes.
inline constexpr std::uint16_t BPF_W = 0x00;
inline constexpr std::uint16_t BPF_H = 0x08;
inline constexpr std::uint16_t BPF_B = 0x10;

// Load modes.
inline constexpr std::uint16_t BPF_IMM = 0x00;
inline constexpr std::uint16_t BPF_ABS = 0x20;
inline constexpr std::uint16_t BPF_IND = 0x40;
inline constexpr std::uint16_t BPF_MEM = 0x60;
inline constexpr std::uint16_t BPF_LEN = 0x80;
inline constexpr std::uint16_t BPF_MSH = 0xa0;

// ALU/JMP operations.
inline constexpr std::uint16_t BPF_ADD = 0x00;
inline constexpr std::uint16_t BPF_SUB = 0x10;
inline constexpr std::uint16_t BPF_MUL = 0x20;
inline constexpr std::uint16_t BPF_DIV = 0x30;
inline constexpr std::uint16_t BPF_OR = 0x40;
inline constexpr std::uint16_t BPF_AND = 0x50;
inline constexpr std::uint16_t BPF_LSH = 0x60;
inline constexpr std::uint16_t BPF_RSH = 0x70;
inline constexpr std::uint16_t BPF_NEG = 0x80;

inline constexpr std::uint16_t BPF_JA = 0x00;
inline constexpr std::uint16_t BPF_JEQ = 0x10;
inline constexpr std::uint16_t BPF_JGT = 0x20;
inline constexpr std::uint16_t BPF_JGE = 0x30;
inline constexpr std::uint16_t BPF_JSET = 0x40;

// Operand sources.
inline constexpr std::uint16_t BPF_K = 0x00;
inline constexpr std::uint16_t BPF_X = 0x08;
inline constexpr std::uint16_t BPF_A = 0x10;  // RET only

// MISC ops.
inline constexpr std::uint16_t BPF_TAX = 0x00;
inline constexpr std::uint16_t BPF_TXA = 0x80;

constexpr std::uint16_t bpf_class(std::uint16_t code) { return code & 0x07; }
constexpr std::uint16_t bpf_size(std::uint16_t code) { return code & 0x18; }
constexpr std::uint16_t bpf_mode(std::uint16_t code) { return code & 0xe0; }
constexpr std::uint16_t bpf_op(std::uint16_t code) { return code & 0xf0; }
constexpr std::uint16_t bpf_src(std::uint16_t code) { return code & 0x08; }
constexpr std::uint16_t bpf_rval(std::uint16_t code) { return code & 0x18; }
constexpr std::uint16_t bpf_miscop(std::uint16_t code) { return code & 0xf8; }

/// One filter instruction: struct bpf_insn.
struct Insn {
    std::uint16_t code = 0;
    std::uint8_t jt = 0;  // jump-if-true offset (relative, forward only)
    std::uint8_t jf = 0;  // jump-if-false offset
    std::uint32_t k = 0;  // generic operand

    friend constexpr bool operator==(const Insn&, const Insn&) = default;
};

constexpr Insn stmt(std::uint16_t code, std::uint32_t k) { return Insn{code, 0, 0, k}; }
constexpr Insn jump(std::uint16_t code, std::uint32_t k, std::uint8_t jt, std::uint8_t jf) {
    return Insn{code, jt, jf, k};
}

using Program = std::vector<Insn>;

/// Number of scratch memory slots (BPF_MEMWORDS).
inline constexpr std::size_t kMemWords = 16;

/// Maximum program length accepted by the validator (kernel limit).
inline constexpr std::size_t kMaxInsns = 4096;

/// A program that accepts every packet in full (what libpcap installs when
/// no filter expression is given).
Program accept_all();

/// A program that rejects every packet.
Program reject_all();

}  // namespace capbench::bpf
