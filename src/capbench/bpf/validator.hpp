// Static BPF program validation, mirroring the checks the kernels perform
// in bpf_validate() / sk_chk_filter() before attaching a filter.
#pragma once

#include <optional>
#include <string>

#include "capbench/bpf/insn.hpp"

namespace capbench::bpf {

/// Returns std::nullopt for a valid program, or a human-readable reason.
///
/// Checks: non-empty, length <= kMaxInsns, every opcode is one of the
/// exactly-enumerated classic BPF opcodes (codes with junk bits such as
/// JA|X or NEG|X are rejected, as sk_chk_filter does), all jumps land
/// inside the program (and only forward, so termination is guaranteed),
/// scratch memory indices in range, no constant division by zero, and the
/// last instruction is a RET.
std::optional<std::string> validate(const Program& prog);

/// Convenience: throws std::invalid_argument when invalid.
void validate_or_throw(const Program& prog);

}  // namespace capbench::bpf
