#include "capbench/bpf/insn.hpp"

namespace capbench::bpf {

Program accept_all() { return {stmt(BPF_RET | BPF_K, 0xFFFFFFFF)}; }

Program reject_all() { return {stmt(BPF_RET | BPF_K, 0)}; }

}  // namespace capbench::bpf
