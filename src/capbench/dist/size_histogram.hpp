// Packet-size histograms (the "dist" data type of Appendix A.1.1).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace capbench::dist {

/// Counts packets per size in [0, max_size].  Sizes here are IP packet
/// sizes, matching the thesis's analysis of the MWN traces (Section 4.2.1).
class SizeHistogram {
public:
    explicit SizeHistogram(std::uint32_t max_size = 1500) : counts_(max_size + 1, 0) {}

    /// Records one packet of the given size.  Sizes above max_size() are
    /// clamped to max_size() (the thesis found no jumbo frames at all).
    void add(std::uint32_t size, std::uint64_t count = 1);

    [[nodiscard]] std::uint32_t max_size() const {
        return static_cast<std::uint32_t>(counts_.size() - 1);
    }

    [[nodiscard]] std::uint64_t count(std::uint32_t size) const;

    /// Total number of packets recorded (c_all of Section 4.2.3).
    [[nodiscard]] std::uint64_t total() const { return total_; }

    /// Fraction p_i = c_i / c_all (Equation 4.1); 0 when empty.
    [[nodiscard]] double fraction(std::uint32_t size) const;

    /// Mean packet size; 0 when empty.
    [[nodiscard]] double mean() const;

    /// The n most frequent sizes, most frequent first, ties by size
    /// ascending.  Used for the Figure 4.2 "top 20" analysis.
    [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint64_t>> top_sizes(
        std::size_t n) const;

    /// Cumulative fraction covered by the n most frequent sizes.
    [[nodiscard]] double top_fraction(std::size_t n) const;

    /// All (size, count) entries with non-zero count, ascending by size.
    [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint64_t>> entries() const;

private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

}  // namespace capbench::dist
