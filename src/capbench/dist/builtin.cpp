#include "capbench/dist/builtin.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace capbench::dist {

SizeHistogram mwn_trace_histogram(std::uint64_t total) {
    SizeHistogram hist{1500};
    const auto scaled = [total](double fraction) {
        return static_cast<std::uint64_t>(fraction * static_cast<double>(total));
    };

    // Heavy hitters, fractions tuned to the documented shape: the top 3
    // exceed 55 %, the top 20 exceed 75 %, mean ~= 645 bytes.
    struct Peak {
        std::uint32_t size;
        double fraction;
    };
    constexpr Peak kPeaks[] = {
        {40, 0.180},  {52, 0.120},  {1500, 0.262}, {576, 0.034}, {552, 0.030},
        {1420, 0.024}, {48, 0.021},  {64, 0.018},   {60, 0.013},  {1300, 0.011},
        {1400, 0.012}, {44, 0.013},  {1452, 0.010}, {57, 0.008},  {1440, 0.009},
        {1460, 0.009}, {1454, 0.007}, {1470, 0.006}, {1480, 0.006}, {1492, 0.008},
    };
    double assigned = 0.0;
    for (const auto& peak : kPeaks) {
        hist.add(peak.size, scaled(peak.fraction));
        assigned += peak.fraction;
    }

    // Background: the remaining ~20 % spread over all sizes with the decay
    // visible in the Figure 4.1 scatter plot (log-scale counts falling from
    // small towards mid sizes, rising slightly again towards the MTU).
    const double rest = 1.0 - assigned;
    double weight_sum = 0.0;
    std::vector<double> weights(1501, 0.0);
    // Parameters chosen so the overall mean lands at ~645 bytes.
    for (std::uint32_t size = 40; size <= 1500; ++size) {
        const double decay = std::exp(-static_cast<double>(size) / 120.0);
        const double mtu_rise = std::exp((static_cast<double>(size) - 1500.0) / 80.0);
        weights[size] = 0.01 + decay + 0.02 * mtu_rise;
        weight_sum += weights[size];
    }
    for (std::uint32_t size = 40; size <= 1500; ++size) {
        const auto count = scaled(rest * weights[size] / weight_sum);
        if (count > 0) hist.add(size, count);
    }
    return hist;
}

SizeHistogram fixed_size_histogram(std::uint32_t size, std::uint64_t total) {
    SizeHistogram hist{std::max(size, 1500u)};
    hist.add(size, total);
    return hist;
}

}  // namespace capbench::dist
