// Two-stage packet-size distribution representation (Section 4.2.2/4.2.3).
//
// The representation consists of two arrays of `precision` cells each:
//
//  * the OUTLIERS array holds exact sizes for the "heavy hitter" packet
//    sizes (those with fraction >= outlier_bound); cells not claimed by an
//    outlier contain -1;
//  * the BINS array covers everything else: sequential sizes are merged
//    into bins of width `bin_size`; a sampled bin yields its base size plus
//    uniform jitter in [0, bin_size).
//
// Sampling (Figure 4.3): draw a random cell from the outliers array; if it
// is an exact size, done; otherwise draw a random cell from the bins array
// and add jitter.  This makes frequent sizes exact and rare sizes cheap —
// two array lookups per packet, no hashing.
#pragma once

#include <cstdint>
#include <vector>

#include "capbench/dist/size_histogram.hpp"
#include "capbench/sim/random.hpp"

namespace capbench::dist {

/// Tunables of Section 4.2.2 with their thesis defaults.
struct TwoStageParams {
    std::uint32_t precision = 1000;   // rho: cells per array
    std::uint32_t bin_size = 20;      // sigma_bin: sizes merged per bin
    std::uint32_t max_size = 1500;    // N_ps: largest considered size
    double outlier_bound = 0.0020;    // p_Omega_bound: heavy-hitter threshold
};

class TwoStageDist {
public:
    /// Builds the representation from a measured histogram.
    /// Throws std::invalid_argument for empty histograms or bad parameters.
    TwoStageDist(const SizeHistogram& hist, const TwoStageParams& params = {});

    /// Reconstructs a distribution from raw arrays (the procfs interface of
    /// Appendix A.2.2: `dist` + `outl` + `hist` lines).  Each pair is
    /// (size, cells).  Throws if the cells do not fit the precision.
    TwoStageDist(const TwoStageParams& params,
                 const std::vector<std::pair<std::uint32_t, std::uint32_t>>& outliers,
                 const std::vector<std::pair<std::uint32_t, std::uint32_t>>& bins);

    /// Draws the next packet size (Figure 4.3 flow).
    [[nodiscard]] std::uint32_t sample(sim::Rng& rng) const;

    [[nodiscard]] const TwoStageParams& params() const { return params_; }

    /// Number of heavy-hitter sizes (n_Omega).
    [[nodiscard]] std::size_t outlier_count() const { return outlier_entries_.size(); }

    /// Number of non-empty bins.
    [[nodiscard]] std::size_t bin_count() const { return bin_entries_.size(); }

    /// (size, cells) pairs for the outliers array, ascending by size.
    [[nodiscard]] const std::vector<std::pair<std::uint32_t, std::uint32_t>>& outlier_entries()
        const {
        return outlier_entries_;
    }

    /// (bin base size, cells) pairs for the bins array, ascending by size.
    [[nodiscard]] const std::vector<std::pair<std::uint32_t, std::uint32_t>>& bin_entries() const {
        return bin_entries_;
    }

    /// Expected mean packet size implied by the representation.
    [[nodiscard]] double expected_mean() const;

    /// Probability that sampling yields exactly `size` (for accuracy tests).
    [[nodiscard]] double probability_of(std::uint32_t size) const;

private:
    void fill_arrays();

    TwoStageParams params_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> outlier_entries_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> bin_entries_;
    // Generation arrays; outlier cells hold -1 where the second stage applies.
    std::vector<std::int32_t> outlier_array_;
    std::vector<std::uint32_t> bin_array_;
};

}  // namespace capbench::dist
