#include "capbench/dist/two_stage_dist.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace capbench::dist {

namespace {

void validate_params(const TwoStageParams& p) {
    if (p.precision == 0) throw std::invalid_argument("TwoStageDist: precision must be > 0");
    if (p.bin_size == 0) throw std::invalid_argument("TwoStageDist: bin_size must be > 0");
    if (p.max_size == 0) throw std::invalid_argument("TwoStageDist: max_size must be > 0");
    if (p.outlier_bound < 0.0 || p.outlier_bound > 1.0)
        throw std::invalid_argument("TwoStageDist: outlier_bound outside [0,1]");
}

/// Distributes exactly `cells` array cells over weights using the
/// largest-remainder method, so the array is filled completely.
std::vector<std::uint32_t> apportion(const std::vector<double>& weights, std::uint32_t cells) {
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    std::vector<std::uint32_t> out(weights.size(), 0);
    if (total <= 0.0) return out;
    std::vector<std::pair<double, std::size_t>> remainders;
    std::uint64_t assigned = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double exact = weights[i] / total * static_cast<double>(cells);
        out[i] = static_cast<std::uint32_t>(exact);
        assigned += out[i];
        remainders.emplace_back(exact - std::floor(exact), i);
    }
    std::stable_sort(remainders.begin(), remainders.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t k = 0; assigned < cells && k < remainders.size(); ++k, ++assigned)
        ++out[remainders[k].second];
    return out;
}

}  // namespace

TwoStageDist::TwoStageDist(const SizeHistogram& hist, const TwoStageParams& params)
    : params_(params) {
    validate_params(params_);
    if (hist.total() == 0) throw std::invalid_argument("TwoStageDist: empty histogram");

    const auto total = static_cast<double>(hist.total());
    const std::uint32_t max_size = std::min(params_.max_size, hist.max_size());

    // Stage 1: heavy hitters (Equation 4.2).
    std::vector<bool> is_outlier(max_size + 1, false);
    for (std::uint32_t size = 0; size <= max_size; ++size) {
        const double p = static_cast<double>(hist.count(size)) / total;
        if (p >= params_.outlier_bound && hist.count(size) > 0) {
            is_outlier[size] = true;
            const auto cells =
                static_cast<std::uint32_t>(std::lround(p * static_cast<double>(params_.precision)));
            if (cells > 0) outlier_entries_.emplace_back(size, cells);
        }
    }

    // Stage 2: bins over the remaining (non-outlier) sizes (Equations
    // 4.3-4.5): bin j covers [j*sigma, (j+1)*sigma), weight b_j is the sum
    // of the counts of the contained non-outlier sizes.
    const std::uint32_t n_bins = (max_size + params_.bin_size) / params_.bin_size;
    std::vector<double> bin_weights(n_bins, 0.0);
    double bin_mass = 0.0;
    for (std::uint32_t size = 0; size <= max_size; ++size) {
        if (is_outlier[size] || hist.count(size) == 0) continue;
        bin_weights[size / params_.bin_size] += static_cast<double>(hist.count(size));
        bin_mass += static_cast<double>(hist.count(size));
    }
    if (bin_mass > 0.0) {
        const auto cells = apportion(bin_weights, params_.precision);
        for (std::uint32_t j = 0; j < n_bins; ++j) {
            if (cells[j] > 0) bin_entries_.emplace_back(j * params_.bin_size, cells[j]);
        }
    }

    fill_arrays();
}

TwoStageDist::TwoStageDist(
    const TwoStageParams& params,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& outliers,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& bins)
    : params_(params), outlier_entries_(outliers), bin_entries_(bins) {
    validate_params(params_);
    std::sort(outlier_entries_.begin(), outlier_entries_.end());
    std::sort(bin_entries_.begin(), bin_entries_.end());
    fill_arrays();
}

void TwoStageDist::fill_arrays() {
    std::uint64_t outlier_cells = 0;
    for (const auto& [size, cells] : outlier_entries_) {
        if (size > params_.max_size)
            throw std::invalid_argument("TwoStageDist: outlier size exceeds max_size");
        outlier_cells += cells;
    }
    if (outlier_cells > params_.precision)
        throw std::invalid_argument("TwoStageDist: outlier cells exceed precision");

    std::uint64_t bin_cells = 0;
    for (const auto& [base, cells] : bin_entries_) {
        if (base > params_.max_size)
            throw std::invalid_argument("TwoStageDist: bin base exceeds max_size");
        bin_cells += cells;
    }
    if (bin_cells > params_.precision)
        throw std::invalid_argument("TwoStageDist: bin cells exceed precision");
    if (outlier_entries_.empty() && bin_entries_.empty())
        throw std::invalid_argument("TwoStageDist: no entries at all");

    outlier_array_.assign(params_.precision, -1);
    std::size_t pos = 0;
    for (const auto& [size, cells] : outlier_entries_) {
        for (std::uint32_t c = 0; c < cells; ++c)
            outlier_array_[pos++] = static_cast<std::int32_t>(size);
    }

    bin_array_.clear();
    bin_array_.reserve(bin_cells);
    for (const auto& [base, cells] : bin_entries_) {
        for (std::uint32_t c = 0; c < cells; ++c) bin_array_.push_back(base);
    }
}

std::uint32_t TwoStageDist::sample(sim::Rng& rng) const {
    // Figure 4.3: stage 1 lookup; on -1 fall through to stage 2 + jitter.
    for (;;) {
        const auto idx = rng.next_below(outlier_array_.size());
        const std::int32_t size = outlier_array_[idx];
        if (size >= 0) return static_cast<std::uint32_t>(size);
        if (bin_array_.empty()) continue;  // all mass is in stage 1; redraw
        const auto bin_idx = rng.next_below(bin_array_.size());
        const std::uint32_t base = bin_array_[bin_idx];
        const auto jitter = static_cast<std::uint32_t>(rng.next_below(params_.bin_size));
        return std::min(base + jitter, params_.max_size);
    }
}

double TwoStageDist::probability_of(std::uint32_t size) const {
    if (size > params_.max_size) return 0.0;
    const double precision = static_cast<double>(params_.precision);
    double p_exact = 0.0;
    double claimed = 0.0;
    for (const auto& [s, cells] : outlier_entries_) {
        claimed += cells;
        if (s == size) p_exact = static_cast<double>(cells) / precision;
    }
    const double p_fall = 1.0 - claimed / precision;
    if (bin_array_.empty()) {
        // Stage 1 redraws until it hits an exact size.
        return claimed > 0.0 ? p_exact / (claimed / precision) : 0.0;
    }
    double p_bin = 0.0;
    const std::uint32_t base = size / params_.bin_size * params_.bin_size;
    for (const auto& [b, cells] : bin_entries_) {
        if (b == base)
            p_bin = static_cast<double>(cells) / static_cast<double>(bin_array_.size()) /
                    static_cast<double>(params_.bin_size);
    }
    return p_exact + p_fall * p_bin;
}

double TwoStageDist::expected_mean() const {
    double mean = 0.0;
    for (std::uint32_t size = 0; size <= params_.max_size; ++size)
        mean += probability_of(size) * static_cast<double>(size);
    return mean;
}

}  // namespace capbench::dist
