// createDist conversions (Appendix A.1): sizes <-> dist <-> procfs.
//
// The original tool converts between three textual representations:
//  * "sizes":  one packet size per line (output of trace analysis);
//  * "dist":   lines of "<size><sep><count>";
//  * "procfs": the command stream fed to the enhanced Linux Kernel Packet
//              Generator (Appendix A.2.2):
//                  dist <precision> <binwidth> <maxsize> <n_outl> <n_hist>
//                  outl <size> <cells>      (n_outl lines)
//                  hist <size> <cells>      (n_hist lines)
//
// This module implements the same conversions over C++ streams; the
// examples/createdist_tool.cpp executable wraps them in the original
// command-line interface.
#pragma once

#include <iosfwd>
#include <string>

#include "capbench/dist/size_histogram.hpp"
#include "capbench/dist/two_stage_dist.hpp"
#include "capbench/sim/random.hpp"

namespace capbench::dist {

/// Reads one packet size per line; ignores blank lines.
/// Throws std::runtime_error on malformed input.
SizeHistogram read_sizes(std::istream& in, std::uint32_t max_size = 1500);

/// Reads "<size><sep><count>" lines.  `field_sep` mirrors the -fs option.
SizeHistogram read_dist(std::istream& in, char field_sep = ' ', std::uint32_t max_size = 1500);

/// Reads a pcap trace (the -I trace mode): counts the IP packet size of
/// every IPv4 frame, skipping non-IP packets like the original tool.
/// Sizes use the record's wire length minus the Ethernet header.
SizeHistogram read_pcap_trace(std::istream& in, std::uint32_t max_size = 1500);

/// Writes "<size><sep><count>" lines for all non-zero sizes.
void write_dist(std::ostream& out, const SizeHistogram& hist, char field_sep = ' ');

/// Writes N sampled sizes, one per line (output type "sizes" acts like the
/// generator, Appendix A.1.2).
void write_sizes(std::ostream& out, const TwoStageDist& dist, sim::Rng& rng, std::uint64_t n);

/// Serialises the two-stage representation in procfs command format.
/// When `pgset_wrapped` is set, each line is wrapped in pgset "..." (the -s
/// option) for use with the pktgen control script.
void write_procfs(std::ostream& out, const TwoStageDist& dist, bool pgset_wrapped = false);

/// Parses the procfs command format back into a distribution.
/// Accepts both bare and pgset-wrapped lines.
TwoStageDist read_procfs(std::istream& in);

}  // namespace capbench::dist
