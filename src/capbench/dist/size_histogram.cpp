#include "capbench/dist/size_histogram.hpp"

#include <algorithm>

namespace capbench::dist {

void SizeHistogram::add(std::uint32_t size, std::uint64_t count) {
    const std::uint32_t clamped = std::min(size, max_size());
    counts_[clamped] += count;
    total_ += count;
}

std::uint64_t SizeHistogram::count(std::uint32_t size) const {
    if (size >= counts_.size()) return 0;
    return counts_[size];
}

double SizeHistogram::fraction(std::uint32_t size) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(count(size)) / static_cast<double>(total_);
}

double SizeHistogram::mean() const {
    if (total_ == 0) return 0.0;
    double sum = 0.0;
    for (std::size_t size = 0; size < counts_.size(); ++size)
        sum += static_cast<double>(size) * static_cast<double>(counts_[size]);
    return sum / static_cast<double>(total_);
}

std::vector<std::pair<std::uint32_t, std::uint64_t>> SizeHistogram::top_sizes(
    std::size_t n) const {
    auto all = entries();
    std::stable_sort(all.begin(), all.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    if (all.size() > n) all.resize(n);
    return all;
}

double SizeHistogram::top_fraction(std::size_t n) const {
    if (total_ == 0) return 0.0;
    std::uint64_t covered = 0;
    for (const auto& [size, count] : top_sizes(n)) covered += count;
    return static_cast<double>(covered) / static_cast<double>(total_);
}

std::vector<std::pair<std::uint32_t, std::uint64_t>> SizeHistogram::entries() const {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
    for (std::size_t size = 0; size < counts_.size(); ++size) {
        if (counts_[size] != 0) out.emplace_back(static_cast<std::uint32_t>(size), counts_[size]);
    }
    return out;
}

}  // namespace capbench::dist
