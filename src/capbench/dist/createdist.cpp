#include "capbench/dist/createdist.hpp"

#include <istream>

#include "capbench/net/headers.hpp"
#include "capbench/pcap/file.hpp"
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace capbench::dist {

namespace {

/// Strips an optional pgset "..." wrapper from a procfs line.
std::string unwrap_pgset(const std::string& line) {
    const auto start = line.find("pgset");
    if (start == std::string::npos) return line;
    const auto open = line.find('"', start);
    const auto close = line.rfind('"');
    if (open == std::string::npos || close == std::string::npos || close <= open)
        throw std::runtime_error("createdist: malformed pgset line: " + line);
    return line.substr(open + 1, close - open - 1);
}

bool blank(const std::string& line) {
    return line.find_first_not_of(" \t\r\n") == std::string::npos;
}

}  // namespace

SizeHistogram read_sizes(std::istream& in, std::uint32_t max_size) {
    SizeHistogram hist{max_size};
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (blank(line)) continue;
        std::istringstream ss{line};
        std::int64_t size = -1;
        if (!(ss >> size) || size < 0)
            throw std::runtime_error("createdist: bad size at line " + std::to_string(line_no));
        hist.add(static_cast<std::uint32_t>(size));
    }
    return hist;
}

SizeHistogram read_dist(std::istream& in, char field_sep, std::uint32_t max_size) {
    SizeHistogram hist{max_size};
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (blank(line)) continue;
        const auto sep = line.find(field_sep);
        if (sep == std::string::npos)
            throw std::runtime_error("createdist: missing separator at line " +
                                     std::to_string(line_no));
        try {
            const auto size = std::stoul(line.substr(0, sep));
            const auto count = std::stoull(line.substr(sep + 1));
            hist.add(static_cast<std::uint32_t>(size), count);
        } catch (const std::exception&) {
            throw std::runtime_error("createdist: bad dist entry at line " +
                                     std::to_string(line_no));
        }
    }
    return hist;
}

SizeHistogram read_pcap_trace(std::istream& in, std::uint32_t max_size) {
    SizeHistogram hist{max_size};
    pcap::FileReader reader{in};
    while (const auto rec = reader.next()) {
        // The callback of the original tool "simply discards all non-IP
        // packets and increases the counter according to the length of the
        // IP packet" (Appendix A.1.2).
        if (rec->data.size() < net::kEthernetHeaderLen) continue;
        if (net::load_be16(rec->data, 12) != net::kEtherTypeIpv4) continue;
        if (rec->wire_len < net::kEthernetHeaderLen) continue;
        hist.add(rec->wire_len - net::kEthernetHeaderLen);
    }
    return hist;
}

void write_dist(std::ostream& out, const SizeHistogram& hist, char field_sep) {
    for (const auto& [size, count] : hist.entries()) out << size << field_sep << count << '\n';
}

void write_sizes(std::ostream& out, const TwoStageDist& dist, sim::Rng& rng, std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) out << dist.sample(rng) << '\n';
}

void write_procfs(std::ostream& out, const TwoStageDist& dist, bool pgset_wrapped) {
    const auto emit = [&](const std::string& cmd) {
        if (pgset_wrapped)
            out << "pgset \"" << cmd << "\"\n";
        else
            out << cmd << '\n';
    };
    const auto& p = dist.params();
    std::ostringstream header;
    header << "dist " << p.precision << ' ' << p.bin_size << ' ' << p.max_size << ' '
           << dist.outlier_entries().size() << ' ' << dist.bin_entries().size();
    emit(header.str());
    for (const auto& [size, cells] : dist.outlier_entries())
        emit("outl " + std::to_string(size) + ' ' + std::to_string(cells));
    for (const auto& [base, cells] : dist.bin_entries())
        emit("hist " + std::to_string(base) + ' ' + std::to_string(cells));
}

TwoStageDist read_procfs(std::istream& in) {
    TwoStageParams params;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> outliers;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> bins;
    bool have_header = false;
    std::size_t want_outl = 0;
    std::size_t want_hist = 0;

    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        if (blank(raw)) continue;
        std::istringstream ss{unwrap_pgset(raw)};
        std::string cmd;
        ss >> cmd;
        if (cmd == "dist") {
            if (have_header)
                throw std::runtime_error("createdist: duplicate dist header at line " +
                                         std::to_string(line_no));
            if (!(ss >> params.precision >> params.bin_size >> params.max_size >> want_outl >>
                  want_hist))
                throw std::runtime_error("createdist: bad dist header at line " +
                                         std::to_string(line_no));
            have_header = true;
        } else if (cmd == "outl" || cmd == "hist") {
            if (!have_header)
                throw std::runtime_error("createdist: entry before dist header at line " +
                                         std::to_string(line_no));
            std::uint32_t size = 0;
            std::uint32_t cells = 0;
            if (!(ss >> size >> cells))
                throw std::runtime_error("createdist: bad entry at line " +
                                         std::to_string(line_no));
            (cmd == "outl" ? outliers : bins).emplace_back(size, cells);
        } else {
            throw std::runtime_error("createdist: unknown command '" + cmd + "' at line " +
                                     std::to_string(line_no));
        }
    }
    if (!have_header) throw std::runtime_error("createdist: missing dist header");
    if (outliers.size() != want_outl || bins.size() != want_hist)
        throw std::runtime_error("createdist: entry count does not match dist header");
    return TwoStageDist{params, outliers, bins};
}

}  // namespace capbench::dist
