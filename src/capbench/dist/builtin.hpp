// Built-in packet size distributions.
#pragma once

#include <cstdint>

#include "capbench/dist/size_histogram.hpp"

namespace capbench::dist {

/// Synthetic stand-in for the 24-hour MWN uplink trace of Section 4.2.1.
///
/// The original trace is not available; this histogram reproduces every
/// property the thesis documents about it (Figures 4.1/4.2):
///  * dominant peaks at 40, 52 and 1500 bytes (together > 55 % of packets),
///  * the "usual peaks at 40-64, 552, 576 and 1420-1500 bytes",
///  * the top 20 sizes account for over 75 % of all packets,
///  * no jumbo frames,
///  * a mean packet size of about 645 bytes (Section 6.3.1 computes the
///    expected buffer occupancy from exactly this average).
///
/// `total` scales the counts (default one million packets, the per-run
/// generation count of the measurements).
SizeHistogram mwn_trace_histogram(std::uint64_t total = 1'000'000);

/// Degenerate distribution: every packet has the same size (the classic
/// unmodified pktgen behaviour used as baseline in Section 4.1.3).
SizeHistogram fixed_size_histogram(std::uint32_t size, std::uint64_t total = 1'000'000);

}  // namespace capbench::dist
