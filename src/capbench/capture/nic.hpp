// Sniffer-side NIC model (Intel 82544EI class) with receive ring(s),
// interrupt moderation / NAPI-style batched service and backlog admission.
//
// Frames arriving from the fiber are steered to one of `queues` receive
// queues — a Toeplitz RSS hash over the packet's flow tuple indexes a
// 128-entry indirection table, exactly the hardware mechanism of RSS-class
// NICs — and placed into that queue's descriptor ring; a full ring
// overflows (FIFO drops).  Each queue owns an IRQ line directed at one CPU
// (irq_affinity), so per-queue interrupt and protocol work spreads across
// processors.  The first frame of a burst raises the queue's interrupt;
// the service loop then drains that ring in batches, posting per-packet
// kernel work to the driver, and keeps polling as long as frames are
// pending — one interrupt per burst rather than per packet, which is the
// receive-livelock avoidance of Section 2.2.1.  When the target CPU's
// kernel work queue (netdev backlog / ifqueue) is at its limit, drained
// frames are dropped before any protocol processing.
//
// With queues == 1 (the default) the hash is never computed and every
// code path reduces to the historical single-ring model byte for byte.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "capbench/capture/driver.hpp"
#include "capbench/capture/os.hpp"
#include "capbench/capture/rss.hpp"
#include "capbench/net/packet.hpp"
#include "capbench/sim/ring_buffer.hpp"

namespace capbench::obs {
class Counter;
class Registry;
class SutObserver;
}

namespace capbench::capture {

struct NicModel {
    std::string name = "Intel 82544EI";
    std::size_t ring_slots = 256;
    std::size_t poll_batch = 64;
    /// With moderation (default) one interrupt serves a whole burst and the
    /// service loop polls while frames pend (NAPI / interrupt mitigation,
    /// Section 2.2.1).  Without it every packet pays the full interrupt
    /// overhead -- the receive-livelock ablation.
    bool interrupt_moderation = true;
    /// Receive queues, each an independent `ring_slots`-deep descriptor
    /// ring with its own IRQ line.  1 = the classic single-ring NIC.
    int queues = 1;
    /// CPU each queue's IRQ line is pinned to: queue i interrupts CPU
    /// irq_affinity[i % size].  Empty = queue i -> CPU i % logical_cpus
    /// (the irqbalance default).
    std::vector<int> irq_affinity;
    /// Explicit RSS indirection table; overrides `indirection_skew`.  Its
    /// max_queue() must be < queues.
    std::optional<rss::IndirectionTable> indirection;
    /// Convenience knob when no explicit table is given: fraction of
    /// indirection entries aimed at queue 0 (0 = uniform spread).  Lets a
    /// scenario variant declare "skewed" while the sweep varies `queues`.
    double indirection_skew = 0.0;
};

class Nic final : public net::FrameSink {
public:
    Nic(hostsim::Machine& machine, const OsSpec& os, NicModel model, Driver& driver);

    void on_frame(const net::PacketPtr& packet) override;

    /// Installs lifecycle-tracing hooks (may be null; hooks are
    /// branch-guarded so an untraced run pays one predictable branch).
    void set_observer(obs::SutObserver* obs) { obs_ = obs; }

    /// Registers per-queue counters `<prefix>.q<j>.{frames,ring_drops,
    /// backlog_drops}` in `registry`.
    void register_metrics(obs::Registry& registry, const std::string& prefix);

    [[nodiscard]] std::uint64_t frames_seen() const { return frames_seen_; }
    [[nodiscard]] std::uint64_t ring_drops() const { return ring_drops_; }
    [[nodiscard]] std::uint64_t backlog_drops() const { return backlog_drops_; }

    [[nodiscard]] int queue_count() const { return static_cast<int>(queues_.size()); }
    [[nodiscard]] std::uint64_t queue_frames(int q) const {
        return queues_[static_cast<std::size_t>(q)].frames;
    }
    [[nodiscard]] std::uint64_t queue_ring_drops(int q) const {
        return queues_[static_cast<std::size_t>(q)].ring_drops;
    }
    [[nodiscard]] std::uint64_t queue_backlog_drops(int q) const {
        return queues_[static_cast<std::size_t>(q)].backlog_drops;
    }
    /// The CPU queue `q`'s IRQ line is pinned to.
    [[nodiscard]] int queue_cpu(int q) const { return queues_[static_cast<std::size_t>(q)].cpu; }

    /// Frames currently sitting in queue `q`'s descriptor ring (gauge,
    /// sampled by the interval time-series layer).
    [[nodiscard]] std::size_t queue_ring_occupancy(int q) const {
        return queues_[static_cast<std::size_t>(q)].ring.size();
    }
    /// Descriptor slots per receive queue (every queue is equally deep).
    [[nodiscard]] std::size_t ring_capacity() const { return model_.ring_slots; }

private:
    /// One receive queue: descriptor ring, IRQ target, service state and
    /// drop accounting.
    struct Queue {
        sim::RingBuffer<net::PacketPtr> ring;
        bool service_active = false;
        int cpu = 0;
        std::uint64_t frames = 0;
        std::uint64_t ring_drops = 0;
        std::uint64_t backlog_drops = 0;
        obs::Counter* ctr_frames = nullptr;
        obs::Counter* ctr_ring_drops = nullptr;
        obs::Counter* ctr_backlog_drops = nullptr;
    };

    [[nodiscard]] int select_queue(const net::Packet& packet) const;
    void serve(int qi);
    void after_batch(int qi);

    hostsim::Machine* machine_;
    const OsSpec* os_;
    NicModel model_;
    Driver* driver_;
    obs::SutObserver* obs_ = nullptr;
    std::vector<Queue> queues_;
    rss::IndirectionTable table_;
    std::uint64_t frames_seen_ = 0;
    std::uint64_t ring_drops_ = 0;
    std::uint64_t backlog_drops_ = 0;
};

}  // namespace capbench::capture
