// Sniffer-side NIC model (Intel 82544EI class) with receive ring, interrupt
// moderation / NAPI-style batched service and backlog admission.
//
// Frames arriving from the fiber are placed into the descriptor ring; a
// full ring overflows (FIFO drops).  The first frame raises an interrupt;
// the service loop then drains the ring in batches, posting per-packet
// kernel work to the driver, and keeps polling as long as frames are
// pending — one interrupt per burst rather than per packet, which is the
// receive-livelock avoidance of Section 2.2.1.  When the kernel work queue
// (netdev backlog / ifqueue) is at its limit, drained frames are dropped
// before any protocol processing.
#pragma once

#include <cstdint>

#include "capbench/capture/driver.hpp"
#include "capbench/capture/os.hpp"
#include "capbench/net/packet.hpp"
#include "capbench/sim/ring_buffer.hpp"

namespace capbench::obs {
class SutObserver;
}

namespace capbench::capture {

struct NicModel {
    std::string name = "Intel 82544EI";
    std::size_t ring_slots = 256;
    std::size_t poll_batch = 64;
    /// With moderation (default) one interrupt serves a whole burst and the
    /// service loop polls while frames pend (NAPI / interrupt mitigation,
    /// Section 2.2.1).  Without it every packet pays the full interrupt
    /// overhead -- the receive-livelock ablation.
    bool interrupt_moderation = true;
};

class Nic final : public net::FrameSink {
public:
    Nic(hostsim::Machine& machine, const OsSpec& os, NicModel model, Driver& driver);

    void on_frame(const net::PacketPtr& packet) override;

    /// Installs lifecycle-tracing hooks (may be null; hooks are
    /// branch-guarded so an untraced run pays one predictable branch).
    void set_observer(obs::SutObserver* obs) { obs_ = obs; }

    [[nodiscard]] std::uint64_t frames_seen() const { return frames_seen_; }
    [[nodiscard]] std::uint64_t ring_drops() const { return ring_drops_; }
    [[nodiscard]] std::uint64_t backlog_drops() const { return backlog_drops_; }

private:
    void serve();
    void after_batch();

    hostsim::Machine* machine_;
    const OsSpec* os_;
    NicModel model_;
    Driver* driver_;
    obs::SutObserver* obs_ = nullptr;
    sim::RingBuffer<net::PacketPtr> ring_;
    bool service_active_ = false;
    std::uint64_t frames_seen_ = 0;
    std::uint64_t ring_drops_ = 0;
    std::uint64_t backlog_drops_ = 0;
};

}  // namespace capbench::capture
