#include "capbench/capture/linux_socket.hpp"

#include <algorithm>

#include "capbench/obs/observer.hpp"

namespace capbench::capture {

LinuxPacketSocket::LinuxPacketSocket(hostsim::Machine& machine, const OsSpec& os,
                                     std::uint64_t rmem_bytes, std::uint32_t snaplen,
                                     SkbPool* pool)
    : machine_(&machine), os_(&os), rmem_bytes_(rmem_bytes), snaplen_(snaplen), pool_(pool) {}

void LinuxPacketSocket::install_filter(bpf::Program program) {
    filter_.install(std::move(program));
    if (app_obs() != nullptr)
        app_obs()->filter_installed(filter_.decoded(), filter_.jit() != nullptr);
}

std::uint64_t LinuxPacketSocket::truesize(std::uint32_t frame_len) const {
    if (os_->skb_truesize_slab == 0) return frame_len;
    const std::uint64_t slab = os_->skb_truesize_slab;
    const std::uint64_t data = (frame_len + slab - 1) / slab * slab;
    return data + os_->skb_overhead;
}

hostsim::Work LinuxPacketSocket::plan(const net::PacketPtr& packet, int queue) {
    ++stats_.kernel_seen;
    ++qstats(queue).kernel_seen;
    auto verdict = filter_.run(*packet, snaplen_);
    hostsim::Work work = os_->tap_per_packet;  // skb_clone + queue insert
    work.cycles += verdict.insns * os_->filter_cycles_per_insn;
    pending_.push(verdict);
    return work.scaled(os_->kernel_cost_multiplier);
}

void LinuxPacketSocket::fanout_skip(int queue) {
    ++stats_.fanout_skipped;
    ++qstats(queue).fanout_skipped;
}

void LinuxPacketSocket::commit(const net::PacketPtr& packet, int queue) {
    const auto verdict = pending_.pop();
    CaptureStats& qs = qstats(queue);
    if (!verdict.accept) {
        ++stats_.dropped_filter;
        ++qs.dropped_filter;
        if (verdict.aborted) {
            ++stats_.filter_aborts;
            ++qs.filter_aborts;
            if (obs::AppObserver* o = app_obs()) o->filter_aborted();
        }
        return;
    }
    ++stats_.accepted;
    ++qs.accepted;
    const std::uint64_t ts = truesize(packet->frame_len());
    if (queued_truesize_ + ts > rmem_bytes_ ||
        (pool_ != nullptr && pool_->used + ts > pool_->limit)) {
        // sk_rmem (or the shared skb pool) exhausted: drop for this socket.
        ++stats_.dropped_buffer;
        ++qs.dropped_buffer;
        return;
    }
    queue_.push_back(Queued{packet, verdict.caplen, ts, queue});
    queued_truesize_ += ts;
    if (pool_ != nullptr) pool_->used += ts;
    if (obs::AppObserver* o = app_obs())
        o->enqueued(packet->id(), machine_->sim().now(),
                    static_cast<std::int64_t>(queued_truesize_));
    if (reader_ != nullptr) machine_->wake(*reader_);
}

std::optional<StackEndpoint::Batch> LinuxPacketSocket::fetch(std::size_t max_packets) {
    if (queue_.empty()) return std::nullopt;
    Batch batch;
    const std::size_t n = std::min(max_packets, queue_.size());
    batch.packets = take_spare();
    batch.packets.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Queued& q = queue_.front();
        batch.packets.push_back(std::move(q.packet));
        batch.bytes += q.caplen;
        queued_truesize_ -= q.truesize;
        if (pool_ != nullptr) pool_->used -= q.truesize;
        CaptureStats& qs = qstats(q.queue);
        ++qs.delivered;
        qs.delivered_bytes += q.caplen;
        // Every packet costs one recvfrom(): syscall + copy_to_user.
        batch.fetch_work += os_->syscall_overhead;
        batch.fetch_work += os_->deliver_per_packet;
        batch.fetch_work.copy_bytes += q.caplen;
        queue_.pop_front();
    }
    stats_.delivered += n;
    stats_.delivered_bytes += batch.bytes;
    if (obs::AppObserver* o = app_obs()) {
        const sim::SimTime now = machine_->sim().now();
        for (const net::PacketPtr& p : batch.packets) o->delivered(p->id(), now);
        o->fetched(n, static_cast<std::int64_t>(queued_truesize_), now);
    }
    return batch;
}

}  // namespace capbench::capture
