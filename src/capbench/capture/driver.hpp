// Kernel driver + protocol demux: turns received frames into per-packet
// kernel work and delivers them to the attached capture taps selected by
// the fanout group (mirror = everyone, the classic model).
#pragma once

#include <vector>

#include "capbench/capture/os.hpp"
#include "capbench/capture/tap.hpp"
#include "capbench/net/packet.hpp"

namespace capbench::capture {

class Driver {
public:
    Driver(hostsim::Machine& machine, const OsSpec& os, FanoutGroup fanout = {})
        : machine_(&machine), os_(&os), fanout_(fanout) {}

    /// Registers a capture consumer.  FreeBSD: one BPF per application;
    /// Linux: one PF_PACKET socket per application.
    void attach(PacketTap& tap) { taps_.push_back(&tap); }

    /// Posts the kernel work for one received packet (driver + softirq +
    /// the targeted taps' filter/copy/clone) and commits delivery when it
    /// completes.  Runs in interrupt context on CPU 0.
    void process(const net::PacketPtr& packet) { process(packet, 0, 0); }

    /// Multi-queue entry point: the packet arrived on RSS queue `queue`,
    /// whose IRQ line targets `cpu` — the kernel work runs there.
    void process(const net::PacketPtr& packet, int queue, int cpu);

    [[nodiscard]] std::uint64_t packets_processed() const { return packets_processed_; }
    [[nodiscard]] const FanoutGroup& fanout() const { return fanout_; }

private:
    hostsim::Machine* machine_;
    const OsSpec* os_;
    FanoutGroup fanout_;
    std::vector<PacketTap*> taps_;
    std::uint64_t packets_processed_ = 0;
};

}  // namespace capbench::capture
