// Kernel driver + protocol demux: turns received frames into per-packet
// kernel work and delivers them to every attached capture tap.
#pragma once

#include <vector>

#include "capbench/capture/os.hpp"
#include "capbench/capture/tap.hpp"
#include "capbench/net/packet.hpp"

namespace capbench::capture {

class Driver {
public:
    Driver(hostsim::Machine& machine, const OsSpec& os) : machine_(&machine), os_(&os) {}

    /// Registers a capture consumer.  FreeBSD: one BPF per application;
    /// Linux: one PF_PACKET socket per application.
    void attach(PacketTap& tap) { taps_.push_back(&tap); }

    /// Posts the kernel work for one received packet (driver + softirq +
    /// every tap's filter/copy/clone) and commits delivery when it
    /// completes.  Runs in interrupt context on CPU 0.
    void process(const net::PacketPtr& packet);

    [[nodiscard]] std::uint64_t packets_processed() const { return packets_processed_; }

private:
    hostsim::Machine* machine_;
    const OsSpec* os_;
    std::vector<PacketTap*> taps_;
    std::uint64_t packets_processed_ = 0;
};

}  // namespace capbench::capture
