// Receive-side scaling: Toeplitz flow hashing plus the NIC indirection
// table that maps hash values onto receive queues.
//
// The hash follows the Microsoft RSS specification exactly — input bytes
// are consumed MSB first, and each set input bit XORs the top 32 bits of a
// key window that slides one bit per input bit — so the implementation can
// be validated against the published verification-suite test vectors
// (rss_test.cpp).  The indirection table is the 128-entry mask-and-lookup
// of real NICs, which is what makes hash-imbalance pathologies (many flows
// landing on one queue) expressible as configuration instead of code.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "capbench/net/packet.hpp"

namespace capbench::capture::rss {

/// The 40-byte RSS secret key.
using Key = std::array<std::uint8_t, 40>;

/// The key from the Microsoft RSS verification suite (and the default of
/// most NIC drivers); hashes computed with it must reproduce the published
/// test vectors.
const Key& microsoft_key();

/// Toeplitz hash over `len` input bytes, MSB-first.
std::uint32_t toeplitz(const Key& key, const std::uint8_t* data, std::size_t len);

/// IPv4 2-tuple hash: input is source address then destination address,
/// each serialized big-endian (addresses given in host order).
std::uint32_t hash_ipv4(const Key& key, std::uint32_t src_ip, std::uint32_t dst_ip);

/// IPv4 4-tuple (TCP/UDP) hash: source address, destination address,
/// source port, destination port, all serialized big-endian.
std::uint32_t hash_ipv4_ports(const Key& key, std::uint32_t src_ip, std::uint32_t dst_ip,
                              std::uint16_t src_port, std::uint16_t dst_port);

/// 4-tuple hash of a packet's synthetic flow identity (pktgen stamps one
/// on every packet; packets built without one hash the all-zero tuple).
std::uint32_t flow_hash(const net::Packet& packet);

/// Hash -> queue mapping: the low 7 hash bits index a 128-entry table, as
/// on real multi-queue NICs.
class IndirectionTable {
public:
    static constexpr std::size_t kEntries = 128;

    /// Round-robin table: entry i -> queue i % queues (the driver default).
    static IndirectionTable uniform(int queues);

    /// Imbalanced table: `hot_fraction` of the entries point at
    /// `hot_queue`, the rest round-robin over all queues.  Expresses the
    /// "many flows hash onto one queue" pathology.
    static IndirectionTable skewed(int queues, int hot_queue, double hot_fraction);

    [[nodiscard]] int queue_for(std::uint32_t hash) const {
        return map_[hash & (kEntries - 1)];
    }

    [[nodiscard]] const std::array<std::uint8_t, kEntries>& entries() const { return map_; }

    /// Largest queue index referenced by the table (for validation).
    [[nodiscard]] int max_queue() const;

private:
    std::array<std::uint8_t, kEntries> map_{};
};

}  // namespace capbench::capture::rss
