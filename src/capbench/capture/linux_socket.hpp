// Linux PF_PACKET socket model (Section 2.1.2, Figure 2.2).
//
// The NET_RX softirq clones the skb for every matching packet socket and
// appends it to the socket's receive queue, which is bounded in bytes by
// the socket receive buffer (rmem).  The charge per packet is the skb
// "truesize" — the slab-rounded data size plus bookkeeping — which is why
// a 64 kB default buffer holds only a few dozen mid-size packets.  The
// application fetches packets one recvfrom() at a time, each paying a
// syscall plus a per-packet copy to user space.
#pragma once

#include <cstdint>

#include "capbench/capture/os.hpp"
#include "capbench/capture/tap.hpp"
#include "capbench/sim/ring_buffer.hpp"

namespace capbench::capture {

/// Shared kernel packet-memory pool.  Cloned skbs queued on *any* packet
/// socket are charged here; once starved applications pin their full
/// receive queues, the pool exhausts and every socket starts dropping --
/// the reference-counting pathology of Section 6.3.3 ("if any application
/// does not release the claim for a packet, this packet is kept forever,
/// blocking kernel memory").
struct SkbPool {
    std::uint64_t used = 0;
    std::uint64_t limit = 192ull * 1024 * 1024;  // ~lowmem available for skbs
};

class LinuxPacketSocket final : public PacketTap, public StackEndpoint {
public:
    /// `rmem_bytes` is the socket receive buffer size (rmem_default or the
    /// raised rmem_max of Section 6.3.1).
    LinuxPacketSocket(hostsim::Machine& machine, const OsSpec& os, std::uint64_t rmem_bytes,
                      std::uint32_t snaplen, SkbPool* pool = nullptr);

    // -- PacketTap --
    hostsim::Work plan(const net::PacketPtr& packet, int queue) override;
    void commit(const net::PacketPtr& packet, int queue) override;
    void fanout_skip(int queue) override;

    // -- StackEndpoint --
    std::optional<Batch> fetch(std::size_t max_packets) override;
    void set_reader(hostsim::Thread* reader) override { reader_ = reader; }
    void install_filter(bpf::Program program) override;
    [[nodiscard]] const CaptureStats& stats() const override { return stats_; }
    [[nodiscard]] std::uint64_t buffer_occupancy() const override { return queued_truesize_; }
    [[nodiscard]] std::uint64_t buffer_capacity() const override { return rmem_bytes_; }

    [[nodiscard]] std::uint64_t rmem_bytes() const { return rmem_bytes_; }
    [[nodiscard]] std::uint64_t queued_truesize() const { return queued_truesize_; }

private:
    struct Queued {
        net::PacketPtr packet;
        std::uint32_t caplen = 0;
        std::uint64_t truesize = 0;
        int queue = 0;  // RSS queue of arrival, for per-queue delivery stats
    };

    [[nodiscard]] std::uint64_t truesize(std::uint32_t frame_len) const;

    hostsim::Machine* machine_;
    const OsSpec* os_;
    std::uint64_t rmem_bytes_;
    std::uint32_t snaplen_;
    FilterRunner filter_;
    sim::RingBuffer<Queued> queue_;
    std::uint64_t queued_truesize_ = 0;
    hostsim::Thread* reader_ = nullptr;
    SkbPool* pool_ = nullptr;
    CaptureStats stats_;
    PendingVerdicts pending_;
};

}  // namespace capbench::capture
