// Operating system descriptors: kernel cost model + policies.
//
// The numbers here are the calibrated per-packet costs of the two capture
// stacks (Section 2.1).  They are not measured on 2005 hardware — they are
// chosen so that the simulated systems reproduce the qualitative results of
// Chapter 6 (see DESIGN.md and tests/calibration_test.cpp).  All knobs live
// in capture/os.cpp and hostsim/arch.cpp.
#pragma once

#include <cstdint>
#include <string>

#include "capbench/hostsim/arch.hpp"
#include "capbench/hostsim/machine.hpp"

namespace capbench::capture {

enum class OsFamily { kLinux, kFreeBsd };

struct OsSpec {
    std::string name;
    OsFamily family = OsFamily::kLinux;
    hostsim::SchedPolicy sched;

    // -- kernel receive path costs --
    hostsim::Work irq_overhead;        // per interrupt / poll round
    hostsim::Work driver_per_packet;   // DMA sync, skb/mbuf alloc, demux
    hostsim::Work softirq_per_packet;  // Linux: NET_RX softirq; FreeBSD: 0
    hostsim::Work tap_per_packet;      // per capture consumer (clone / bpf_tap)
    double filter_cycles_per_insn = 4.0;

    // -- app-side costs --
    hostsim::Work syscall_overhead;     // read()/recvfrom() entry/exit
    hostsim::Work deliver_per_packet;   // per-packet delivery bookkeeping
    hostsim::Work write_syscall;        // write() to disk or pipe

    // -- queueing policies --
    std::size_t pipeline_limit = 300;        // netdev backlog / ifqueue slots
    std::uint64_t default_buffer_bytes = 0;  // rmem_default / BPF store size
    std::uint32_t skb_truesize_slab = 2048;  // Linux: packet charge granularity
    std::uint32_t skb_overhead = 256;        // Linux: per-skb bookkeeping bytes
    std::uint32_t bpf_hdr_bytes = 18;        // FreeBSD: per-packet buffer header

    /// Global multiplier on all kernel work, used for the older FreeBSD
    /// 5.2.1 (Giant-locked kernel, Figure B.1).
    double kernel_cost_multiplier = 1.0;

    static const OsSpec& linux_2_6_11();
    static const OsSpec& freebsd_5_4();
    static const OsSpec& freebsd_5_2_1();
};

}  // namespace capbench::capture
