// FreeBSD BPF device model (Section 2.1.1, Figure 2.1).
//
// Per capturing application the kernel keeps a STORE/HOLD double buffer.
// The filter runs in the receive interrupt; accepted packets are copied
// into STORE.  The buffers rotate when STORE is full and HOLD is empty
// (otherwise the packet is dropped), or when the read timeout fires while
// the application waits.  A read() hands the application the complete HOLD
// buffer in one copyout — cheap per packet, but the whole-buffer copy is
// exactly what hurts single-CPU configurations with very large buffers
// (Figures 6.3(a)/6.4(a)).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "capbench/capture/os.hpp"
#include "capbench/capture/tap.hpp"
#include "capbench/sim/simulator.hpp"

namespace capbench::capture {

class BsdBpfDev final : public PacketTap, public StackEndpoint {
public:
    /// `buffer_bytes` is the size of EACH half of the double buffer.
    BsdBpfDev(hostsim::Machine& machine, const OsSpec& os, std::uint64_t buffer_bytes,
              std::uint32_t snaplen);

    // -- PacketTap --
    hostsim::Work plan(const net::PacketPtr& packet, int queue) override;
    void commit(const net::PacketPtr& packet, int queue) override;
    void fanout_skip(int queue) override;

    // -- StackEndpoint --
    std::optional<Batch> fetch(std::size_t max_packets) override;
    void set_reader(hostsim::Thread* reader) override { reader_ = reader; }
    void install_filter(bpf::Program program) override;
    [[nodiscard]] const CaptureStats& stats() const override { return stats_; }
    [[nodiscard]] std::uint64_t buffer_occupancy() const override {
        return store_.stored_bytes + hold_.stored_bytes;
    }
    [[nodiscard]] std::uint64_t buffer_capacity() const override { return 2 * buffer_bytes_; }

    /// Arms the read timeout (the libpcap to_ms): while the application
    /// waits and HOLD is empty, a non-empty STORE rotates after `timeout`.
    void enable_read_timeout(sim::Duration timeout);

    [[nodiscard]] std::uint64_t buffer_bytes() const { return buffer_bytes_; }

private:
    struct Buffer {
        std::vector<net::PacketPtr> packets;
        std::uint64_t stored_bytes = 0;  // captured bytes incl. bpf headers
        std::uint64_t caplen_bytes = 0;  // captured bytes excl. headers
        /// Per-RSS-queue packet counts / caplen bytes of the buffered
        /// packets (index = queue); rotates with the buffer and is folded
        /// into the per-queue delivery stats when HOLD is read out.
        std::vector<std::uint32_t> queue_counts;
        std::vector<std::uint64_t> queue_bytes;
        void add(int queue, std::uint32_t caplen) {
            const auto index = static_cast<std::size_t>(queue);
            if (index >= queue_counts.size()) {
                queue_counts.resize(index + 1, 0);
                queue_bytes.resize(index + 1, 0);
            }
            ++queue_counts[index];
            queue_bytes[index] += caplen;
        }
        void clear() {
            packets.clear();
            stored_bytes = 0;
            caplen_bytes = 0;
            // Keep capacity: steady-state rotation reallocates nothing.
            std::fill(queue_counts.begin(), queue_counts.end(), 0u);
            std::fill(queue_bytes.begin(), queue_bytes.end(), std::uint64_t{0});
        }
        [[nodiscard]] bool empty() const { return packets.empty(); }
    };

    [[nodiscard]] std::uint64_t slot_bytes(std::uint32_t caplen) const;
    void rotate();
    void schedule_timeout();

    hostsim::Machine* machine_;
    const OsSpec* os_;
    std::uint64_t buffer_bytes_;
    std::uint32_t snaplen_;
    FilterRunner filter_;
    Buffer store_;
    Buffer hold_;
    bool hold_ready_ = false;
    hostsim::Thread* reader_ = nullptr;
    CaptureStats stats_;
    PendingVerdicts pending_;  // FIFO plan->commit handoff
    sim::Duration timeout_{};
    bool timeout_armed_ = false;
};

}  // namespace capbench::capture
