#include "capbench/capture/mmap_ring.hpp"

#include <algorithm>

#include "capbench/obs/observer.hpp"

namespace capbench::capture {

MmapRing::MmapRing(hostsim::Machine& machine, const OsSpec& os, std::uint64_t ring_bytes,
                   std::uint32_t snaplen, std::uint32_t frame_bytes)
    : machine_(&machine),
      os_(&os),
      slots_(std::max<std::size_t>(16, ring_bytes / std::max(frame_bytes, 256u))),
      snaplen_(snaplen) {}

void MmapRing::install_filter(bpf::Program program) {
    filter_.install(std::move(program));
    if (app_obs() != nullptr)
        app_obs()->filter_installed(filter_.decoded(), filter_.jit() != nullptr);
}

hostsim::Work MmapRing::plan(const net::PacketPtr& packet, int queue) {
    ++stats_.kernel_seen;
    ++qstats(queue).kernel_seen;
    auto verdict = filter_.run(*packet, snaplen_);
    hostsim::Work work = os_->tap_per_packet;
    work.cycles += verdict.insns * os_->filter_cycles_per_insn;
    if (verdict.accept) {
        // The kernel still copies the packet once, into the mapped ring.
        work.copy_bytes += verdict.caplen;
    }
    pending_.push(verdict);
    return work.scaled(os_->kernel_cost_multiplier);
}

void MmapRing::fanout_skip(int queue) {
    ++stats_.fanout_skipped;
    ++qstats(queue).fanout_skipped;
}

void MmapRing::commit(const net::PacketPtr& packet, int queue) {
    const auto verdict = pending_.pop();
    CaptureStats& qs = qstats(queue);
    if (!verdict.accept) {
        ++stats_.dropped_filter;
        ++qs.dropped_filter;
        if (verdict.aborted) {
            ++stats_.filter_aborts;
            ++qs.filter_aborts;
            if (obs::AppObserver* o = app_obs()) o->filter_aborted();
        }
        return;
    }
    ++stats_.accepted;
    ++qs.accepted;
    if (ring_.size() >= slots_) {
        ++stats_.dropped_buffer;
        ++qs.dropped_buffer;
        return;
    }
    ring_.push_back(Queued{packet, verdict.caplen, queue});
    if (obs::AppObserver* o = app_obs())
        o->enqueued(packet->id(), machine_->sim().now(),
                    static_cast<std::int64_t>(ring_.size()));
    if (reader_ != nullptr) machine_->wake(*reader_);
}

std::optional<StackEndpoint::Batch> MmapRing::fetch(std::size_t max_packets) {
    if (ring_.empty()) return std::nullopt;
    Batch batch;
    const std::size_t n = std::min(max_packets, ring_.size());
    batch.packets = take_spare();
    batch.packets.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Queued& q = ring_.front();
        batch.packets.push_back(std::move(q.packet));
        batch.bytes += q.caplen;
        CaptureStats& qs = qstats(q.queue);
        ++qs.delivered;
        qs.delivered_bytes += q.caplen;
        ring_.pop_front();
    }
    // No syscall, no copy: the application reads mapped frames directly.
    batch.fetch_work.cycles = 180.0 * static_cast<double>(n);
    batch.fetch_work.mem_misses = 1.0 * static_cast<double>(n);
    stats_.delivered += n;
    stats_.delivered_bytes += batch.bytes;
    if (obs::AppObserver* o = app_obs()) {
        const sim::SimTime now = machine_->sim().now();
        for (const net::PacketPtr& p : batch.packets) o->delivered(p->id(), now);
        o->fetched(n, static_cast<std::int64_t>(ring_.size()), now);
    }
    return batch;
}

}  // namespace capbench::capture
