#include "capbench/capture/nic.hpp"

#include "capbench/obs/observer.hpp"

namespace capbench::capture {

Nic::Nic(hostsim::Machine& machine, const OsSpec& os, NicModel model, Driver& driver)
    : machine_(&machine), os_(&os), model_(std::move(model)), driver_(&driver) {}

void Nic::on_frame(const net::PacketPtr& packet) {
    ++frames_seen_;
    if (obs_) obs_->nic_arrival(packet->id(), machine_->sim().now());
    if (ring_.size() >= model_.ring_slots) {
        ++ring_drops_;
        return;
    }
    ring_.push_back(packet);
    if (!service_active_) {
        service_active_ = true;
        // First frame of a burst: pay the interrupt overhead, then serve.
        if (obs_) obs_->irq_raised(machine_->sim().now());
        machine_->post_kernel_work(os_->irq_overhead.scaled(os_->kernel_cost_multiplier),
                                   hostsim::CpuState::kInterrupt, [this] { serve(); });
    }
}

void Nic::serve() {
    if (obs_) obs_->ring_occupancy(machine_->sim().now(), ring_.size());
    const std::size_t batch = model_.interrupt_moderation ? model_.poll_batch : 1;
    std::size_t n = 0;
    while (!ring_.empty() && n < batch) {
        if (machine_->kernel_queue_len() >= os_->pipeline_limit) {
            // netdev backlog / ifqueue full: drop before protocol work.
            ring_.pop_front();
            ++backlog_drops_;
            continue;
        }
        if (obs_) obs_->kernel_handoff(ring_.front()->id(), machine_->sim().now());
        driver_->process(ring_.front());
        ring_.pop_front();
        ++n;
    }
    // Zero-length marker work: runs after the batch completes (FIFO), then
    // either keeps polling or re-arms the interrupt.
    machine_->post_kernel_work(hostsim::Work{.cycles = 400},
                               hostsim::CpuState::kInterrupt, [this] { after_batch(); });
}

void Nic::after_batch() {
    if (ring_.empty()) {
        if (obs_) obs_->ring_occupancy(machine_->sim().now(), 0);
        service_active_ = false;
        return;
    }
    if (model_.interrupt_moderation) {
        serve();  // NAPI-style: stay in polling mode while frames pend
    } else {
        // One interrupt per packet: pay the overhead again (livelock mode).
        if (obs_) obs_->irq_raised(machine_->sim().now());
        machine_->post_kernel_work(os_->irq_overhead.scaled(os_->kernel_cost_multiplier),
                                   hostsim::CpuState::kInterrupt, [this] { serve(); });
    }
}

}  // namespace capbench::capture
