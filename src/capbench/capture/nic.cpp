#include "capbench/capture/nic.hpp"

#include <stdexcept>

#include "capbench/obs/observer.hpp"
#include "capbench/obs/registry.hpp"

namespace capbench::capture {

Nic::Nic(hostsim::Machine& machine, const OsSpec& os, NicModel model, Driver& driver)
    : machine_(&machine), os_(&os), model_(std::move(model)), driver_(&driver) {
    if (model_.queues < 1) throw std::invalid_argument("Nic: queues must be >= 1");
    if (model_.indirection) {
        if (model_.indirection->max_queue() >= model_.queues)
            throw std::invalid_argument("Nic: indirection table names a queue >= queues");
        table_ = *model_.indirection;
    } else if (model_.indirection_skew > 0.0) {
        table_ = rss::IndirectionTable::skewed(model_.queues, 0, model_.indirection_skew);
    } else {
        table_ = rss::IndirectionTable::uniform(model_.queues);
    }
    queues_.resize(static_cast<std::size_t>(model_.queues));
    for (std::size_t i = 0; i < queues_.size(); ++i) {
        Queue& q = queues_[i];
        if (!model_.irq_affinity.empty()) {
            q.cpu = model_.irq_affinity[i % model_.irq_affinity.size()];
        } else {
            q.cpu = static_cast<int>(i) % machine_->logical_cpus();
        }
        if (q.cpu < 0 || q.cpu >= machine_->logical_cpus())
            throw std::invalid_argument("Nic: irq_affinity names a CPU outside the machine");
    }
}

void Nic::register_metrics(obs::Registry& registry, const std::string& prefix) {
    for (std::size_t i = 0; i < queues_.size(); ++i) {
        const std::string base = prefix + ".q" + std::to_string(i);
        queues_[i].ctr_frames = &registry.counter(base + ".frames");
        queues_[i].ctr_ring_drops = &registry.counter(base + ".ring_drops");
        queues_[i].ctr_backlog_drops = &registry.counter(base + ".backlog_drops");
    }
}

int Nic::select_queue(const net::Packet& packet) const {
    // Single-queue NICs never touch the hash unit — keeps the classic
    // path's work (and schedule) bit-identical to the pre-RSS model.
    if (queues_.size() == 1) return 0;
    return table_.queue_for(rss::flow_hash(packet));
}

void Nic::on_frame(const net::PacketPtr& packet) {
    ++frames_seen_;
    const int qi = select_queue(*packet);
    Queue& q = queues_[static_cast<std::size_t>(qi)];
    ++q.frames;
    if (q.ctr_frames) q.ctr_frames->inc();
    if (obs_) obs_->nic_arrival(packet->id(), machine_->sim().now());
    if (q.ring.size() >= model_.ring_slots) {
        ++ring_drops_;
        ++q.ring_drops;
        if (q.ctr_ring_drops) q.ctr_ring_drops->inc();
        return;
    }
    q.ring.push_back(packet);
    if (!q.service_active) {
        q.service_active = true;
        // First frame of a burst: pay the interrupt overhead on the
        // queue's CPU, then serve.
        if (obs_) obs_->irq_raised(machine_->sim().now());
        machine_->post_kernel_work_on(q.cpu,
                                      os_->irq_overhead.scaled(os_->kernel_cost_multiplier),
                                      hostsim::CpuState::kInterrupt, [this, qi] { serve(qi); });
    }
}

void Nic::serve(int qi) {
    Queue& q = queues_[static_cast<std::size_t>(qi)];
    if (obs_) obs_->ring_occupancy(machine_->sim().now(), q.ring.size());
    const std::size_t batch = model_.interrupt_moderation ? model_.poll_batch : 1;
    std::size_t n = 0;
    while (!q.ring.empty() && n < batch) {
        if (machine_->kernel_queue_len(q.cpu) >= os_->pipeline_limit) {
            // netdev backlog / ifqueue full on this CPU: drop before
            // protocol work.
            q.ring.pop_front();
            ++backlog_drops_;
            ++q.backlog_drops;
            if (q.ctr_backlog_drops) q.ctr_backlog_drops->inc();
            continue;
        }
        if (obs_) obs_->kernel_handoff(q.ring.front()->id(), machine_->sim().now());
        driver_->process(q.ring.front(), qi, q.cpu);
        q.ring.pop_front();
        ++n;
    }
    // Zero-length marker work: runs after the batch completes (FIFO per
    // CPU), then either keeps polling or re-arms the interrupt.
    machine_->post_kernel_work_on(q.cpu, hostsim::Work{.cycles = 400},
                                  hostsim::CpuState::kInterrupt,
                                  [this, qi] { after_batch(qi); });
}

void Nic::after_batch(int qi) {
    Queue& q = queues_[static_cast<std::size_t>(qi)];
    if (q.ring.empty()) {
        if (obs_) obs_->ring_occupancy(machine_->sim().now(), 0);
        q.service_active = false;
        return;
    }
    if (model_.interrupt_moderation) {
        serve(qi);  // NAPI-style: stay in polling mode while frames pend
    } else {
        // One interrupt per packet: pay the overhead again (livelock mode).
        if (obs_) obs_->irq_raised(machine_->sim().now());
        machine_->post_kernel_work_on(q.cpu,
                                      os_->irq_overhead.scaled(os_->kernel_cost_multiplier),
                                      hostsim::CpuState::kInterrupt, [this, qi] { serve(qi); });
    }
}

}  // namespace capbench::capture
