#include "capbench/capture/driver.hpp"

namespace capbench::capture {

void Driver::process(const net::PacketPtr& packet) {
    ++packets_processed_;
    hostsim::Work work = os_->driver_per_packet;
    work += os_->softirq_per_packet;
    work = work.scaled(os_->kernel_cost_multiplier);
    for (auto* tap : taps_) work += tap->plan(packet);

    // FreeBSD taps packets inside the interrupt handler; Linux does the
    // demux + clone work in the NET_RX softirq (accounted as system time).
    const auto state = os_->family == OsFamily::kFreeBsd ? hostsim::CpuState::kInterrupt
                                                         : hostsim::CpuState::kSystem;
    machine_->post_kernel_work(work, state, [this, packet] {
        for (auto* tap : taps_) tap->commit(packet);
    });
}

}  // namespace capbench::capture
