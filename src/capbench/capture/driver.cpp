#include "capbench/capture/driver.hpp"

#include "capbench/capture/rss.hpp"

namespace capbench::capture {

void Driver::process(const net::PacketPtr& packet, int queue, int cpu) {
    ++packets_processed_;
    hostsim::Work work = os_->driver_per_packet;
    work += os_->softirq_per_packet;
    work = work.scaled(os_->kernel_cost_multiplier);
    // Only cluster fanout consults the flow hash; mirror/queue modes skip
    // the hash unit entirely (and so does every single-tap configuration).
    const std::uint32_t hash =
        fanout_.mode() == FanoutMode::kCluster ? rss::flow_hash(*packet) : 0;
    const std::size_t tap_count = taps_.size();
    for (std::size_t i = 0; i < tap_count; ++i) {
        if (fanout_.targets(i, tap_count, queue, hash)) {
            work += taps_[i]->plan(packet, queue);
        } else {
            taps_[i]->fanout_skip(queue);
        }
    }

    // FreeBSD taps packets inside the interrupt handler; Linux does the
    // demux + clone work in the NET_RX softirq (accounted as system time).
    const auto state = os_->family == OsFamily::kFreeBsd ? hostsim::CpuState::kInterrupt
                                                         : hostsim::CpuState::kSystem;
    machine_->post_kernel_work_on(cpu, work, state, [this, queue, hash, packet] {
        const std::size_t tap_count = taps_.size();
        for (std::size_t i = 0; i < tap_count; ++i)
            if (fanout_.targets(i, tap_count, queue, hash)) taps_[i]->commit(packet, queue);
    });
}

}  // namespace capbench::capture
