#include "capbench/capture/rss.hpp"

#include <algorithm>
#include <stdexcept>

namespace capbench::capture::rss {

const Key& microsoft_key() {
    static const Key key = {0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
                            0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
                            0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
                            0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};
    return key;
}

std::uint32_t toeplitz(const Key& key, const std::uint8_t* data, std::size_t len) {
    // 64-bit sliding window over the key: the top 32 bits are the hash
    // contribution for the current input bit; shifting left one bit per
    // input bit advances the window, and each consumed input byte vacates
    // the low 8 bits for the next key byte.
    std::uint64_t window = 0;
    for (std::size_t i = 0; i < 8; ++i) window = (window << 8) | key[i];
    std::size_t next_key_byte = 8;
    std::uint32_t result = 0;
    for (std::size_t i = 0; i < len; ++i) {
        const std::uint8_t byte = data[i];
        for (int bit = 7; bit >= 0; --bit) {
            if ((byte >> bit) & 1u) result ^= static_cast<std::uint32_t>(window >> 32);
            window <<= 1;
        }
        if (next_key_byte < key.size()) window |= key[next_key_byte++];
    }
    return result;
}

namespace {

void put_be32(std::uint8_t* out, std::uint32_t v) {
    out[0] = static_cast<std::uint8_t>(v >> 24);
    out[1] = static_cast<std::uint8_t>(v >> 16);
    out[2] = static_cast<std::uint8_t>(v >> 8);
    out[3] = static_cast<std::uint8_t>(v);
}

void put_be16(std::uint8_t* out, std::uint16_t v) {
    out[0] = static_cast<std::uint8_t>(v >> 8);
    out[1] = static_cast<std::uint8_t>(v);
}

}  // namespace

std::uint32_t hash_ipv4(const Key& key, std::uint32_t src_ip, std::uint32_t dst_ip) {
    std::uint8_t input[8];
    put_be32(input, src_ip);
    put_be32(input + 4, dst_ip);
    return toeplitz(key, input, sizeof(input));
}

std::uint32_t hash_ipv4_ports(const Key& key, std::uint32_t src_ip, std::uint32_t dst_ip,
                              std::uint16_t src_port, std::uint16_t dst_port) {
    std::uint8_t input[12];
    put_be32(input, src_ip);
    put_be32(input + 4, dst_ip);
    put_be16(input + 8, src_port);
    put_be16(input + 10, dst_port);
    return toeplitz(key, input, sizeof(input));
}

std::uint32_t flow_hash(const net::Packet& packet) {
    const net::FlowTuple& f = packet.flow();
    return hash_ipv4_ports(microsoft_key(), f.src_ip, f.dst_ip, f.src_port, f.dst_port);
}

IndirectionTable IndirectionTable::uniform(int queues) {
    if (queues < 1 || queues > static_cast<int>(kEntries))
        throw std::invalid_argument("IndirectionTable: queues must be in [1, 128]");
    IndirectionTable t;
    for (std::size_t i = 0; i < kEntries; ++i)
        t.map_[i] = static_cast<std::uint8_t>(i % static_cast<std::size_t>(queues));
    return t;
}

IndirectionTable IndirectionTable::skewed(int queues, int hot_queue, double hot_fraction) {
    if (hot_queue < 0 || hot_queue >= queues)
        throw std::invalid_argument("IndirectionTable: hot_queue out of range");
    if (hot_fraction < 0.0 || hot_fraction > 1.0)
        throw std::invalid_argument("IndirectionTable: hot_fraction must be in [0, 1]");
    IndirectionTable t = uniform(queues);
    const auto hot = static_cast<std::size_t>(hot_fraction * kEntries + 0.5);
    for (std::size_t i = 0; i < std::min(hot, kEntries); ++i)
        t.map_[i] = static_cast<std::uint8_t>(hot_queue);
    return t;
}

int IndirectionTable::max_queue() const {
    return *std::max_element(map_.begin(), map_.end());
}

}  // namespace capbench::capture::rss
