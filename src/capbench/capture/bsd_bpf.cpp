#include "capbench/capture/bsd_bpf.hpp"

#include <algorithm>
#include <utility>

#include "capbench/obs/observer.hpp"

namespace capbench::capture {

BsdBpfDev::BsdBpfDev(hostsim::Machine& machine, const OsSpec& os, std::uint64_t buffer_bytes,
                     std::uint32_t snaplen)
    : machine_(&machine), os_(&os), buffer_bytes_(buffer_bytes), snaplen_(snaplen) {}

void BsdBpfDev::install_filter(bpf::Program program) {
    filter_.install(std::move(program));
    if (app_obs() != nullptr)
        app_obs()->filter_installed(filter_.decoded(), filter_.jit() != nullptr);
}

std::uint64_t BsdBpfDev::slot_bytes(std::uint32_t caplen) const {
    // Each packet occupies its capture length plus the bpf header, padded
    // to word alignment (BPF_WORDALIGN).
    const std::uint64_t raw = caplen + os_->bpf_hdr_bytes;
    return (raw + 3) & ~std::uint64_t{3};
}

hostsim::Work BsdBpfDev::plan(const net::PacketPtr& packet, int queue) {
    ++stats_.kernel_seen;
    ++qstats(queue).kernel_seen;
    auto verdict = filter_.run(*packet, snaplen_);
    hostsim::Work work = os_->tap_per_packet;
    work.cycles += verdict.insns * os_->filter_cycles_per_insn;
    if (verdict.accept) {
        // catchpacket(): copy into the STORE half.  The working set is the
        // double buffer itself — huge buffers spill the cache.
        work.copy_bytes += verdict.caplen;
        work.working_set_bytes = static_cast<double>(2 * buffer_bytes_);
    }
    pending_.push(verdict);
    return work.scaled(os_->kernel_cost_multiplier);
}

void BsdBpfDev::fanout_skip(int queue) {
    ++stats_.fanout_skipped;
    ++qstats(queue).fanout_skipped;
}

void BsdBpfDev::commit(const net::PacketPtr& packet, int queue) {
    const auto verdict = pending_.pop();
    CaptureStats& qs = qstats(queue);
    if (!verdict.accept) {
        ++stats_.dropped_filter;
        ++qs.dropped_filter;
        if (verdict.aborted) {
            ++stats_.filter_aborts;
            ++qs.filter_aborts;
            if (obs::AppObserver* o = app_obs()) o->filter_aborted();
        }
        return;
    }
    ++stats_.accepted;
    ++qs.accepted;
    const std::uint64_t need = slot_bytes(verdict.caplen);
    if (need > buffer_bytes_) {
        // catchpacket(): a slot larger than a whole buffer half can never
        // be stored; rotating would not help.  (Without this check the
        // packet used to be stored anyway, pushing stored_bytes past the
        // configured buffer size.)
        ++stats_.dropped_buffer;
        ++qs.dropped_buffer;
        return;
    }
    if (store_.stored_bytes + need > buffer_bytes_) {
        if (hold_ready_) {
            // Both halves occupied: the classic bpf "buffer full" drop.
            ++stats_.dropped_buffer;
            ++qs.dropped_buffer;
            return;
        }
        rotate();
    }
    store_.packets.push_back(packet);
    store_.stored_bytes += need;
    store_.caplen_bytes += verdict.caplen;
    store_.add(queue, verdict.caplen);
    if (obs::AppObserver* o = app_obs())
        o->enqueued(packet->id(), machine_->sim().now(),
                    static_cast<std::int64_t>(store_.stored_bytes));
}

void BsdBpfDev::rotate() {
    // Swap instead of move so STORE inherits the old HOLD's vector
    // capacity — steady-state rotation reallocates nothing.
    std::swap(hold_, store_);
    store_.clear();
    hold_ready_ = true;
    if (reader_ != nullptr) machine_->wake(*reader_);
}

std::optional<StackEndpoint::Batch> BsdBpfDev::fetch(std::size_t /*max_packets*/) {
    if (!hold_ready_) {
        schedule_timeout();
        return std::nullopt;
    }
    Batch batch;
    batch.packets = take_spare();
    std::swap(batch.packets, hold_.packets);
    batch.bytes = hold_.caplen_bytes;
    // One read(): syscall + copyout of the whole HOLD buffer.
    batch.fetch_work = os_->syscall_overhead;
    batch.fetch_work.copy_bytes += static_cast<double>(hold_.stored_bytes);
    batch.fetch_work.working_set_bytes = static_cast<double>(2 * buffer_bytes_);
    stats_.delivered += batch.packets.size();
    stats_.delivered_bytes += batch.bytes;
    for (std::size_t q = 0; q < hold_.queue_counts.size(); ++q) {
        if (hold_.queue_counts[q] == 0 && hold_.queue_bytes[q] == 0) continue;
        CaptureStats& qs = qstats(static_cast<int>(q));
        qs.delivered += hold_.queue_counts[q];
        qs.delivered_bytes += hold_.queue_bytes[q];
    }
    hold_.clear();
    hold_ready_ = false;
    if (obs::AppObserver* o = app_obs()) {
        const sim::SimTime now = machine_->sim().now();
        for (const net::PacketPtr& p : batch.packets) o->delivered(p->id(), now);
        o->fetched(batch.packets.size(),
                   static_cast<std::int64_t>(store_.stored_bytes), now);
    }
    return batch;
}

void BsdBpfDev::enable_read_timeout(sim::Duration timeout) { timeout_ = timeout; }

void BsdBpfDev::schedule_timeout() {
    if (timeout_ <= sim::Duration::zero() || timeout_armed_) return;
    timeout_armed_ = true;
    machine_->sim().schedule_in(timeout_, [this] {
        timeout_armed_ = false;
        if (!hold_ready_ && !store_.empty()) rotate();
        // Re-arm while the reader still waits for data.
        if (!hold_ready_ && reader_ != nullptr &&
            reader_->state() == hostsim::Thread::State::kBlocked)
            schedule_timeout();
    });
}

}  // namespace capbench::capture
