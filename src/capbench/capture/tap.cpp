#include "capbench/capture/tap.hpp"

#include <utility>
#include <vector>

#include "capbench/bpf/program_cache.hpp"
#include "capbench/bpf/verifier.hpp"
#include "capbench/net/headers.hpp"
#include "capbench/net/wire.hpp"

namespace capbench::capture {

FanoutGroup::FanoutGroup(FanoutMode mode, int queues) : mode_(mode), queues_(queues) {
    if (queues < 1) throw std::invalid_argument("FanoutGroup: queues must be >= 1");
}

bool FanoutGroup::targets(std::size_t index, std::size_t tap_count, int queue,
                          std::uint32_t hash) const {
    switch (mode_) {
        case FanoutMode::kMirror:
            return true;
        case FanoutMode::kQueue:
            return pinned_queue(index) == queue;
        case FanoutMode::kCluster:
            return index == hash % tap_count;
    }
    return true;  // unreachable; keeps -Wreturn-type quiet
}

void FilterRunner::install(bpf::Program program) {
    decoded_.reset();
    jit_.reset();
    if (!program.empty()) {
        const bpf::ExecTier tier =
            bpf::effective_tier(bpf::exec_tier(), bpf::JitProgram::supported());
        if (tier == bpf::ExecTier::kInterpreter) {
            bpf::verify_or_throw(program);
        } else {
            // Verifies (throws on rejection); compiles native code at most
            // once per distinct program under the jit tier.
            bpf::CachedFilter cached =
                bpf::cache_filter(program, tier == bpf::ExecTier::kJit);
            decoded_ = std::move(cached.decoded);
            jit_ = std::move(cached.jit);
        }
    }
    program_ = std::move(program);
}

std::span<const std::byte> FilterRunner::synthetic_template() {
    // Matches pktgen::GenConfig's defaults: UDP 192.168.10.100 ->
    // 192.168.10.12, source MAC 00:00:00:00:00:00.
    static const std::vector<std::byte> frame = [] {
        std::vector<std::byte> f(net::kMaxFrameBytes);
        net::EthernetHeader eth;
        eth.dst = net::MacAddr::parse("00:0e:0c:01:02:03");
        eth.src = net::MacAddr::parse("00:00:00:00:00:00");
        eth.ether_type = net::kEtherTypeIpv4;
        eth.encode(f);
        net::Ipv4Header ip;
        ip.total_length = static_cast<std::uint16_t>(f.size() - net::kEthernetHeaderLen);
        ip.protocol = net::kIpProtoUdp;
        ip.src = net::Ipv4Addr::parse("192.168.10.100");
        ip.dst = net::Ipv4Addr::parse("192.168.10.12");
        ip.encode(std::span{f}.subspan(net::kEthernetHeaderLen));
        net::UdpHeader udp;
        udp.src_port = 9;
        udp.dst_port = 9;
        udp.length = static_cast<std::uint16_t>(ip.total_length - net::kIpv4MinHeaderLen);
        udp.encode(std::span{f}.subspan(net::kEthernetHeaderLen + net::kIpv4MinHeaderLen));
        return f;
    }();
    return frame;
}

}  // namespace capbench::capture
