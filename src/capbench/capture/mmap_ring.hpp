// Memory-mapped ring-buffer capture (the Phil Woods mmap libpcap patch,
// Section 6.3.6).
//
// The kernel copies accepted packets into fixed-size frames of a ring that
// is mapped into the application's address space; the application consumes
// frames without any syscall or kernel-to-user copy.  This removes one of
// the two Linux copies and the per-packet recvfrom() — the "rigorous
// performance improvement" of Figure 6.15.  Like the original patch it is
// Linux-only and does not support libpcap's non-blocking mode.
#pragma once

#include <cstdint>

#include "capbench/capture/os.hpp"
#include "capbench/capture/tap.hpp"
#include "capbench/sim/ring_buffer.hpp"

namespace capbench::capture {

class MmapRing final : public PacketTap, public StackEndpoint {
public:
    /// `ring_bytes` total mapped size; frames are `frame_bytes` each.
    MmapRing(hostsim::Machine& machine, const OsSpec& os, std::uint64_t ring_bytes,
             std::uint32_t snaplen, std::uint32_t frame_bytes = 2048);

    // -- PacketTap --
    hostsim::Work plan(const net::PacketPtr& packet, int queue) override;
    void commit(const net::PacketPtr& packet, int queue) override;
    void fanout_skip(int queue) override;

    // -- StackEndpoint --
    std::optional<Batch> fetch(std::size_t max_packets) override;
    void set_reader(hostsim::Thread* reader) override { reader_ = reader; }
    void install_filter(bpf::Program program) override;
    [[nodiscard]] const CaptureStats& stats() const override { return stats_; }
    [[nodiscard]] std::uint64_t buffer_occupancy() const override { return ring_.size(); }
    [[nodiscard]] std::uint64_t buffer_capacity() const override { return slots_; }

    [[nodiscard]] std::size_t slots() const { return slots_; }

private:
    struct Queued {
        net::PacketPtr packet;
        std::uint32_t caplen = 0;
        int queue = 0;  // RSS queue of arrival, for per-queue delivery stats
    };

    hostsim::Machine* machine_;
    const OsSpec* os_;
    std::size_t slots_;
    std::uint32_t snaplen_;
    FilterRunner filter_;
    sim::RingBuffer<Queued> ring_;
    hostsim::Thread* reader_ = nullptr;
    CaptureStats stats_;
    PendingVerdicts pending_;
};

}  // namespace capbench::capture
