#include "capbench/capture/os.hpp"

namespace capbench::capture {

using hostsim::Work;

const OsSpec& OsSpec::linux_2_6_11() {
    static const OsSpec spec{
        .name = "Linux 2.6.11",
        .family = OsFamily::kLinux,
        .sched = {.lifo_wakeup = true, .wakeup_latency = sim::microseconds(800),
                  .lifo_yield = true, .yield_every_batches = 8},
        .irq_overhead = Work{.cycles = 2500, .mem_misses = 4},
        .driver_per_packet = Work{.cycles = 1700, .mem_misses = 10},
        .softirq_per_packet = Work{.cycles = 1000, .mem_misses = 5},
        .tap_per_packet = Work{.cycles = 800, .mem_misses = 3},
        .filter_cycles_per_insn = 4.0,
        .syscall_overhead = Work{.cycles = 4200, .mem_misses = 10},
        .deliver_per_packet = Work{.cycles = 700, .mem_misses = 2},
        .write_syscall = Work{.cycles = 2200, .mem_misses = 5},
        .pipeline_limit = 300,
        // net.core.rmem_default of the 2.6 era (~108 kB), charged in skb
        // truesize units, so it holds only a few dozen mid-size packets.
        .default_buffer_bytes = 110592,
        .skb_truesize_slab = 2048,
        .skb_overhead = 256,
        .bpf_hdr_bytes = 0,
        .kernel_cost_multiplier = 1.0,
    };
    return spec;
}

const OsSpec& OsSpec::freebsd_5_4() {
    static const OsSpec spec{
        .name = "FreeBSD 5.4",
        .family = OsFamily::kFreeBsd,
        .sched = {.lifo_wakeup = false, .wakeup_latency = sim::microseconds(700),
                  .lifo_yield = false, .yield_every_batches = 1},
        .irq_overhead = Work{.cycles = 3000, .mem_misses = 5},
        .driver_per_packet = Work{.cycles = 2600, .mem_misses = 26},
        .softirq_per_packet = Work{},  // bpf_tap runs inside the interrupt
        .tap_per_packet = Work{.cycles = 650, .mem_misses = 5},
        .filter_cycles_per_insn = 4.0,
        // One read() fetches a whole HOLD buffer, so the syscall cost is
        // amortized over hundreds of packets (Section 2.1.1).
        .syscall_overhead = Work{.cycles = 4200, .mem_misses = 10},
        .deliver_per_packet = Work{.cycles = 350, .mem_misses = 1},
        .write_syscall = Work{.cycles = 2400, .mem_misses = 5},
        .pipeline_limit = 256,
        // debug.bpf_bufsize as configured on the sniffers (per half).
        .default_buffer_bytes = 512 * 1024,
        .skb_truesize_slab = 0,
        .skb_overhead = 0,
        .bpf_hdr_bytes = 18,
        .kernel_cost_multiplier = 1.0,
    };
    return spec;
}

const OsSpec& OsSpec::freebsd_5_2_1() {
    static const OsSpec spec = [] {
        OsSpec s = OsSpec::freebsd_5_4();
        s.name = "FreeBSD 5.2.1";
        // The Giant-locked 5.2.x kernel serializes more and pays extra
        // locking overhead everywhere (the step to 5.4 was "quite
        // benefitting", Section 7.1).
        s.kernel_cost_multiplier = 1.45;
        s.syscall_overhead = Work{.cycles = 6800, .mem_misses = 13};
        return s;
    }();
    return spec;
}

}  // namespace capbench::capture
