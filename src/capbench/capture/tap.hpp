// Interfaces between the driver (kernel side) and capture stacks, and
// between capture stacks and application threads (reader side).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "capbench/bpf/decoded.hpp"
#include "capbench/bpf/insn.hpp"
#include "capbench/bpf/jit/jit_program.hpp"
#include "capbench/bpf/threaded_vm.hpp"
#include "capbench/bpf/vm.hpp"
#include "capbench/hostsim/arch.hpp"
#include "capbench/hostsim/machine.hpp"
#include "capbench/net/packet.hpp"

namespace capbench::obs {
class AppObserver;
}

namespace capbench::capture {

/// Per-consumer capture statistics (the pcap_stats analog).
struct CaptureStats {
    std::uint64_t kernel_seen = 0;     // packets offered to this tap
    std::uint64_t accepted = 0;        // passed the filter
    std::uint64_t dropped_filter = 0;  // rejected by the filter (aborts included)
    std::uint64_t dropped_buffer = 0;  // accepted but no buffer space (ps_drop)
    std::uint64_t delivered = 0;       // handed to the application (ps_recv)
    std::uint64_t delivered_bytes = 0;
    /// Filter runs that ended in a VM fault (out-of-bounds load, division
    /// by zero) rather than a verdict.  A subset of dropped_filter — the
    /// drop identity delivered + Σdrops == generated is unaffected.
    std::uint64_t filter_aborts = 0;
    /// Packets the fanout group routed to a different tap (queue- or
    /// cluster-mode delivery).  Zero kernel work — that is the point of
    /// fanout — but counted so the per-app drop identity stays closed.
    std::uint64_t fanout_skipped = 0;
};

/// Kernel-side interface: the driver asks each tap to plan (cost) and then,
/// when the kernel work for the packet completes, to commit (buffer state
/// mutation + reader wakeup).  plan/commit are called strictly in FIFO
/// pairs per tap; `queue` is the RSS receive queue the packet arrived on
/// (0 on single-queue NICs) and feeds the per-queue stats slices.
class PacketTap {
public:
    virtual ~PacketTap() = default;

    /// Runs the filter and returns the kernel work this tap adds for the
    /// packet (filter interpretation, clone/enqueue, buffer copy).
    virtual hostsim::Work plan(const net::PacketPtr& packet, int queue) = 0;

    /// Applies the planned action: enqueue/copy into the consumer's buffer
    /// or count a drop; wakes the reader when data becomes available.
    virtual void commit(const net::PacketPtr& packet, int queue) = 0;

    /// The fanout group delivered this packet to another tap: account it
    /// (CaptureStats::fanout_skipped) without planning any kernel work.
    virtual void fanout_skip(int queue) = 0;
};

/// Delivery policy of a fanout group (the taps attached to one driver).
enum class FanoutMode {
    kMirror,   // every tap sees every packet (the classic behaviour)
    kQueue,    // tap i is pinned to RSS queue i % queues
    kCluster,  // PF_RING-style: flow hash % tap count picks ONE tap
};

/// Decides which taps of a driver receive a packet, given its RSS queue
/// and flow hash.  Mirror mode (the default) reproduces the historical
/// every-tap-sees-everything delivery byte for byte.
class FanoutGroup {
public:
    FanoutGroup() = default;
    FanoutGroup(FanoutMode mode, int queues);

    [[nodiscard]] FanoutMode mode() const { return mode_; }
    [[nodiscard]] int queues() const { return queues_; }

    /// The RSS queue tap `index` is pinned to in kQueue mode.
    [[nodiscard]] int pinned_queue(std::size_t index) const {
        return static_cast<int>(index % static_cast<std::size_t>(queues_));
    }

    /// True when tap `index` (of `tap_count` attached taps) receives a
    /// packet that arrived on `queue` with flow hash `hash`.
    [[nodiscard]] bool targets(std::size_t index, std::size_t tap_count, int queue,
                               std::uint32_t hash) const;

private:
    FanoutMode mode_ = FanoutMode::kMirror;
    int queues_ = 1;
};

/// Reader-side interface used by capture application threads.
class StackEndpoint {
public:
    struct Batch {
        std::vector<net::PacketPtr> packets;
        std::uint64_t bytes = 0;        // captured bytes (after snaplen)
        hostsim::Work fetch_work;       // syscall + copy cost to charge
    };

    virtual ~StackEndpoint() = default;

    /// Non-blocking read of up to `max_packets`.  std::nullopt means "no
    /// data yet" — the reader should block; it is woken via its thread.
    virtual std::optional<Batch> fetch(std::size_t max_packets) = 0;

    /// Registers the application thread to wake when data arrives.
    virtual void set_reader(hostsim::Thread* reader) = 0;

    /// Installs a BPF filter (validated by the caller).
    virtual void install_filter(bpf::Program program) = 0;

    [[nodiscard]] virtual const CaptureStats& stats() const = 0;

    /// Kernel-side capture-buffer fill level, in stack-native units
    /// (BPF: stored bytes across both halves, mmap: occupied frames,
    /// PF_PACKET: queued skb truesize bytes).  A gauge for the interval
    /// time-series sampler; compare against buffer_capacity().
    [[nodiscard]] virtual std::uint64_t buffer_occupancy() const = 0;
    /// The capacity `buffer_occupancy()` saturates at, in the same units.
    [[nodiscard]] virtual std::uint64_t buffer_capacity() const = 0;

    /// Per-RSS-queue slices of stats(): entry j accounts packets that
    /// arrived on receive queue j.  Componentwise, the sum over queues
    /// equals stats() (delivered is folded in at fetch time).  Sized
    /// lazily — single-queue runs hold exactly one entry.
    [[nodiscard]] const std::vector<CaptureStats>& queue_stats() const { return queue_stats_; }

    /// Hands a consumed batch's packet vector back for reuse: the next
    /// fetch() builds its batch in it, capacity intact, so steady-state
    /// fetch loops allocate nothing.
    void recycle(std::vector<net::PacketPtr> packets) {
        packets.clear();
        spare_packets_ = std::move(packets);
    }

    /// Installs packet-lifecycle hooks (may be null; every use inside the
    /// stacks is branch-guarded so untraced runs stay zero-cost).
    void set_observer(obs::AppObserver* obs) { app_obs_ = obs; }

protected:
    [[nodiscard]] obs::AppObserver* app_obs() const { return app_obs_; }

    /// The mutable per-queue stats slice, grown on first touch.
    [[nodiscard]] CaptureStats& qstats(int queue) {
        const auto index = static_cast<std::size_t>(queue);
        if (index >= queue_stats_.size()) queue_stats_.resize(index + 1);
        return queue_stats_[index];
    }

    /// The pooled vector from the last recycle() (empty, capacity kept);
    /// an empty fresh vector if none was returned yet.
    [[nodiscard]] std::vector<net::PacketPtr> take_spare() { return std::move(spare_packets_); }

private:
    std::vector<net::PacketPtr> spare_packets_;
    std::vector<CaptureStats> queue_stats_;
    obs::AppObserver* app_obs_ = nullptr;
};

/// Shared filter-execution helper.  Runs the real BPF VM when packet bytes
/// are available.  Synthetic (size-only) packets are evaluated against a
/// template of the generator's default frame truncated to the packet's
/// length, so header-based filters (like the Figure 6.5 chain, which
/// matches every generated packet only after evaluating all instructions)
/// produce the right verdict and the real instruction-path cost.
class FilterRunner {
public:
    struct Verdict {
        bool accept = true;
        bool aborted = false;  // the VM faulted instead of returning a verdict
        std::uint32_t caplen = 0;
        std::uint32_t insns = 0;
    };

    /// The attach-time gate shared by all three capture stacks: runs the
    /// verifier (throwing std::invalid_argument with the structured
    /// finding on error-severity results) and caches the decoded tier-1
    /// form — and, under CAPBENCH_BPF_TIER=jit, the compiled tier-2 code —
    /// per program id.  An empty program clears the filter.  A jit request
    /// on a build without native support falls back to the threaded tier.
    void install(bpf::Program program);

    [[nodiscard]] bool has_filter() const { return !program_.empty(); }

    /// The decoded program executed by the threaded tier; null when no
    /// filter is installed or CAPBENCH_BPF_TIER=interpreter.  Also set
    /// under the jit tier (it backs the compiled code's id and stats).
    [[nodiscard]] const bpf::DecodedProgram* decoded() const { return decoded_.get(); }

    /// The compiled tier-2 code; null unless the jit tier is active.
    [[nodiscard]] const bpf::JitProgram* jit() const { return jit_.get(); }

    [[nodiscard]] Verdict run(const net::Packet& packet, std::uint32_t snaplen) const {
        Verdict v;
        const std::uint32_t whole = packet.frame_len();
        if (program_.empty()) {
            v.caplen = std::min(snaplen, whole);
            return v;
        }
        const std::span<const std::byte> data =
            packet.has_bytes()
                ? packet.bytes()
                : synthetic_template().subspan(
                      0, std::min<std::size_t>(whole, synthetic_template().size()));
        const bpf::VmResult r =
            jit_ != nullptr       ? jit_->run(data, whole)
            : decoded_ != nullptr ? bpf::ThreadedVm::run(*decoded_, data, whole)
                                  : bpf::Vm::run(program_, data, whole);
        v.accept = r.accept_len > 0;
        v.aborted = r.aborted;
        v.caplen = std::min({snaplen, whole, v.accept ? r.accept_len : 0u});
        v.insns = r.insns_executed;
        return v;
    }

private:
    /// A full-size frame with the generator's default addressing.
    static std::span<const std::byte> synthetic_template();

    bpf::Program program_;
    std::shared_ptr<const bpf::DecodedProgram> decoded_;
    std::shared_ptr<const bpf::JitProgram> jit_;
};

/// FIFO verdict handoff between plan() and commit().  The driver calls the
/// two in strictly matched pairs per tap; a commit without a matching plan
/// is a protocol violation that used to read `pending_[pending_head_++]`
/// out of bounds silently in Release builds — this helper fail-fasts
/// instead.  Storage is a vector reset once drained, so the steady state
/// reuses its capacity.
class PendingVerdicts {
public:
    void push(FilterRunner::Verdict verdict) { pending_.push_back(verdict); }

    /// Pops the oldest planned verdict; throws std::logic_error when no
    /// plan is outstanding (plan/commit mismatch).
    FilterRunner::Verdict pop() {
        if (head_ >= pending_.size())
            throw std::logic_error("PendingVerdicts: commit without a matching plan");
        const FilterRunner::Verdict verdict = pending_[head_++];
        if (head_ == pending_.size()) {
            pending_.clear();
            head_ = 0;
        }
        return verdict;
    }

    [[nodiscard]] std::size_t outstanding() const { return pending_.size() - head_; }

private:
    std::vector<FilterRunner::Verdict> pending_;
    std::size_t head_ = 0;
};

}  // namespace capbench::capture
