#include "capbench/obs/observer.hpp"

#include <stdexcept>
#include <utility>

#include "capbench/bpf/decoded.hpp"

namespace capbench::obs {

void AppObserver::filter_installed(const bpf::DecodedProgram* decoded, bool jitted) {
    // One install per endpoint per run and insertion-ordered counter
    // names, so the metrics snapshot stays byte-stable across --jobs.
    Registry& reg = sut_->owner_->registry_;
    const std::string prefix =
        "bpf." + sut_->name_ + ".app" + std::to_string(index_);
    reg.counter(prefix + ".filter_installs").inc();
    if (decoded != nullptr) {
        reg.counter(prefix + ".decoded_insns").inc(decoded->insns.size());
        reg.counter(prefix + ".dead_stores_elided").inc(decoded->stats.dead_stores);
        reg.counter(prefix + ".unchecked_loads").inc(decoded->stats.unchecked_loads);
    }
    if (jitted) reg.counter(prefix + ".jit_installs").inc();
}

void AppObserver::disk_writer_attached() {
    Registry& reg = sut_->owner_->registry_;
    disk_spill_ = &reg.counter("capture." + sut_->name_ + ".app" +
                               std::to_string(index_) + ".disk_spills");
    if (TraceSink* tr = sut_->owner_->trace_)
        disk_ring_name_ =
            tr->intern("diskring:" + sut_->name_ + "/app" + std::to_string(index_));
}

SutObserver::SutObserver(Observer& owner, std::string name, int pid,
                         std::size_t app_count)
    : owner_(&owner), name_(std::move(name)), pid_(pid) {
    for (std::size_t i = 0; i < app_count; ++i) {
        apps_.emplace_back(*this, static_cast<int>(i));
        apps_.back().aborted_ = &owner.registry_.counter(
            "capture." + name_ + ".app" + std::to_string(i) + ".filter_aborts");
    }
    if (TraceSink* tr = owner_->trace_) {
        irq_name_ = tr->intern("irq");
        ring_name_ = tr->intern("nic_ring");
        tr->set_process_name(pid_, "sut:" + name_);
        tr->set_thread_name(pid_, kNicTid, "nic/irq");
        tr->set_thread_name(pid_, kKernelTid, "kernel");
        for (std::size_t i = 0; i < app_count; ++i) {
            apps_[i].occupancy_name_ =
                tr->intern("buf:" + name_ + "/app" + std::to_string(i));
        }
    }
}

SutObserver& Observer::add_sut(const std::string& name, std::size_t app_count) {
    const int pid = static_cast<int>(suts_.size()) + 1;
    suts_.emplace_back(*this, name, pid, app_count);
    return suts_.back();
}

void Observer::reserve(std::size_t packets) {
    for (SutObserver& sut : suts_) {
        sut.arrival_at_.assign(packets, -1);
        sut.handoff_at_.assign(packets, -1);
        sut.nic_to_kernel_ns_.reserve(packets);
        for (AppObserver& app : sut.apps_) {
            app.enqueue_at_.assign(packets, -1);
            app.latency_ns_.reserve(packets);
            app.enqueue_ns_.reserve(packets);
            app.deliver_ns_.reserve(packets);
        }
    }
}

RunMetrics Observer::finalize(const std::vector<SutSnapshot>& snapshots,
                              std::uint64_t generated) {
    if (snapshots.size() != suts_.size())
        throw std::logic_error("Observer::finalize: snapshot count mismatch");
    RunMetrics out;
    out.enabled = true;
    out.generated = generated;
    out.suts.reserve(suts_.size());
    for (std::size_t s = 0; s < suts_.size(); ++s) {
        SutObserver& sut = suts_[s];
        const SutSnapshot& snap = snapshots[s];
        if (snap.apps.size() != sut.apps_.size())
            throw std::logic_error("Observer::finalize: app count mismatch");
        SutMetrics m;
        m.name = sut.name_;
        m.offered = snap.frames_seen;
        m.ring_drops = snap.ring_drops;
        m.backlog_drops = snap.backlog_drops;
        m.nic_to_kernel_ns = std::move(sut.nic_to_kernel_ns_);
        m.cpu_samples = snap.cpu_samples;
        m.apps.reserve(sut.apps_.size());
        for (std::size_t a = 0; a < sut.apps_.size(); ++a) {
            AppObserver& app = sut.apps_[a];
            const capture::CaptureStats& st = snap.apps[a];
            AppMetrics am;
            // A record spilled by the disk-writer ring was handed to the
            // app (counted in st.delivered) but never persisted: it moves
            // from `delivered` into the `disk_spill` bucket, keeping the
            // closed identity exact.
            const std::uint64_t spill =
                a < snap.disk_spills.size() ? snap.disk_spills[a] : 0;
            if (spill > st.delivered)
                throw std::logic_error(
                    "Observer::finalize: disk spills exceed delivered count");
            am.delivered = st.delivered - spill;
            am.drop_nic_ring = snap.ring_drops;
            am.drop_backlog = snap.backlog_drops;
            am.drop_verdict = st.dropped_filter;
            am.drop_bpf_store = st.dropped_buffer;
            am.drop_fanout = st.fanout_skipped;
            am.drop_disk_spill = spill;
            // Everything the generator emitted that neither reached the
            // app nor hit a terminal drop bucket is still in flight (NIC
            // ring, uncommitted verdict, capture buffer) — the "drain"
            // bucket.  Computed as the residual of monotone counters, so
            // the closed identity generated == delivered + Σdrops holds
            // exactly; it can only go negative if the accounting itself is
            // broken, which we surface rather than clamp away.
            const std::int64_t drain =
                static_cast<std::int64_t>(generated) -
                static_cast<std::int64_t>(st.delivered + snap.ring_drops +
                                          snap.backlog_drops +
                                          st.dropped_filter + st.dropped_buffer +
                                          st.fanout_skipped);
            if (drain < 0)
                throw std::logic_error(
                    "Observer::finalize: drop buckets exceed generated count");
            am.drop_drain = static_cast<std::uint64_t>(drain);
            am.latency_ns = std::move(app.latency_ns_);
            am.enqueue_ns = std::move(app.enqueue_ns_);
            am.deliver_ns = std::move(app.deliver_ns_);
            m.apps.push_back(std::move(am));
        }
        out.suts.push_back(std::move(m));
    }
    out.counters = registry_.snapshot();
    return out;
}

}  // namespace capbench::obs
