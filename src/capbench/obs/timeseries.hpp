// Simulated-time interval telemetry (ISSUE 10 tentpole).
//
// An `IntervalSampler` rides the simulator clock: every `interval` it
// snapshots gauges (NIC descriptor-ring fill, kernel backlog length,
// capture-buffer fill, disk bring-ring fill) and turns the monotone run
// counters into per-interval deltas (generated / delivered / every drop
// bucket of obs::kDropSites).  The final sample is taken at the exact
// freeze instant of the measurement window, so every delta column
// telescopes to the corresponding aggregate counter — the conservation
// invariant `Σ deltas == finalize aggregate` holds as an integer identity
// and is re-checked in TimeSeries::finalize_against().
//
// The per-app `drain` column is the signed change of the in-flight count
// (generated − delivered − terminal drops so far): packets entering the
// pipeline push it positive, deliveries and drops pull it back, and its
// column sum is exactly the finalize `drop_drain` residual.
//
// Storage is slab-chunked like TraceSink: each column is a `Series` of
// 4096-value chunks, so steady-state sampling allocates only on chunk
// growth (alloc-guard tested) and a run without a sampler allocates
// nothing at all.
//
// On top of the raw series an `OverloadDetector` pass classifies each
// interval — dropping (any terminal overload loss: nic_ring, backlog,
// bpf_store or disk_spill), saturated (≥ kSaturatedOccupancyPct of any
// ring/buffer capacity filled) or healthy — and coalesces consecutive
// dropping intervals into `OverloadEpisode`s annotated with start/end
// sim-time, the dominant drop site and the peak occupancy.  Verdict and
// fanout drops are intended filtering/routing, not overload, so they
// never open an episode (they still participate in conservation).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "capbench/sim/time.hpp"

namespace capbench::sim {
class Simulator;
}
namespace capbench::hostsim {
class Machine;
}
namespace capbench::capture {
class Nic;
class StackEndpoint;
}
namespace capbench::load {
class DiskWriterThread;
}

namespace capbench::obs {

class TraceSink;
struct RunMetrics;

/// Interval classification thresholds (see OverloadDetector above).
inline constexpr std::int64_t kSaturatedOccupancyPct = 75;

/// Slab-chunked append-only int64 column.  Pushing allocates only when
/// the current chunk fills (one chunk + one pointer-vector growth), which
/// is the whole enabled-mode alloc-guard budget.
class Series {
public:
    static constexpr std::size_t kChunkValues = 4096;

    void push(std::int64_t v) {
        if (used_ == kChunkValues) grow();
        (*chunks_.back())[used_++] = v;
        ++count_;
    }

    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

    [[nodiscard]] std::int64_t at(std::size_t i) const {
        return (*chunks_[i / kChunkValues])[i % kChunkValues];
    }

    /// Sum of all values (the telescoped aggregate of a delta column).
    [[nodiscard]] std::int64_t sum() const;

    /// Largest value; 0 when empty (occupancy gauges never go negative).
    [[nodiscard]] std::int64_t max() const;

private:
    void grow();

    using Chunk = std::array<std::int64_t, kChunkValues>;
    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::size_t used_ = kChunkValues;  // forces grow() on first push
    std::size_t count_ = 0;
};

/// What the detector decided about one interval.
enum class IntervalClass : std::uint8_t { kHealthy = 0, kSaturated = 1, kDropping = 2 };

/// A maximal run of consecutive dropping intervals on one SUT.
struct OverloadEpisode {
    std::int64_t start_ns = 0;  // start of the first dropping interval
    std::int64_t end_ns = 0;    // end (sample time) of the last one
    std::size_t first_interval = 0;
    std::size_t intervals = 0;
    /// kDropSites name of the bucket with the largest loss in the episode
    /// (ties resolve in kDropSites order; only overload buckets compete).
    const char* dominant_site = "";
    std::uint64_t dropped = 0;            // terminal overload losses
    std::int64_t peak_occupancy_pct = 0;  // max ring/buffer fill seen
};

struct CpuSeries {
    Series backlog_len;  // gauge: kernel work queued for this CPU
    // Interval deltas of the CPU-state accounting, exact nanoseconds.
    Series user_ns;
    Series system_ns;
    Series interrupt_ns;
    Series idle_ns;  // interval length − busy states, clamped at 0
};

struct QueueSeries {
    Series ring_occupancy;  // gauge: frames in the descriptor ring
};

struct AppSeries {
    Series delivered;  // delta, disk-spill-adjusted like AppMetrics
    Series drop_verdict;
    Series drop_bpf_store;
    Series drop_fanout;
    Series drop_disk_spill;
    Series drain;            // signed in-flight change (see header comment)
    Series buffer_occupancy; // gauge, stack-native units
    Series disk_ring;        // gauge: records in the bring ring (0 = none)
};

struct SutSeries {
    std::string name;
    std::uint64_t nic_ring_capacity = 0;
    std::vector<std::uint64_t> app_buffer_capacity;
    std::vector<std::uint64_t> app_disk_ring_capacity;  // 0 = no writer
    Series drop_nic_ring;  // SUT-level deltas, mirrored into every app
    Series drop_backlog;   // by the conservation identity
    std::vector<QueueSeries> queues;
    std::vector<CpuSeries> cpus;
    std::vector<AppSeries> apps;
    Series classification;  // IntervalClass per interval (detector output)
    std::vector<OverloadEpisode> episodes;
};

/// The collected run telemetry.  Owned by the caller of the measurement
/// (like TraceSink); one TimeSeries belongs to exactly one run.
class TimeSeries {
public:
    sim::Duration interval{};  // configured tick; last interval may be shorter
    Series time_ns;            // sample timestamps (interval ends)
    Series generated;          // generator delta per interval
    std::vector<SutSeries> suts;

    /// Aggregates frozen at finalize, for consumers that re-check
    /// conservation without access to the RunMetrics (indexed like
    /// kDropSites).
    struct AppTotals {
        std::uint64_t delivered = 0;
        std::array<std::uint64_t, 7> drops{};
    };
    struct SutTotals {
        std::vector<AppTotals> apps;
    };
    std::uint64_t generated_total = 0;
    std::vector<SutTotals> totals;
    bool finalized = false;

    [[nodiscard]] std::size_t sample_count() const { return time_ns.size(); }

    /// Chunks across every column — the alloc-guard growth bound.
    [[nodiscard]] std::size_t chunk_count() const;

    /// Verifies the conservation invariant against the finalize
    /// aggregates and freezes the totals for downstream consumers.
    /// Throws std::logic_error when any delta column does not sum to its
    /// aggregate counter exactly.
    void finalize_against(const RunMetrics& metrics);
};

/// Gauge/counter sources the sampler reads; all pointers must outlive it.
struct SamplerSources {
    struct App {
        const capture::StackEndpoint* endpoint = nullptr;
        const load::DiskWriterThread* writer = nullptr;  // null = no pipeline
    };
    struct Sut {
        std::string name;
        const capture::Nic* nic = nullptr;
        const hostsim::Machine* machine = nullptr;
        int trace_pid = 0;  // Observer pid of this SUT (index + 1)
        std::vector<App> apps;
    };
    /// Monotone generator packet counter (GenStats::packets_sent).
    const std::uint64_t* generated = nullptr;
    std::vector<Sut> suts;
};

/// Clock-driven sampler.  start() schedules a recurring tick; stop() takes
/// the final (freeze-instant) sample and runs the overload detector.  With
/// a non-null `trace`, each tick also emits Perfetto counter tracks and
/// stop() adds one slice per overload episode, so the curves render next
/// to the event timeline.
class IntervalSampler {
public:
    IntervalSampler(sim::Simulator& sim, sim::Duration interval, SamplerSources sources,
                    TimeSeries& out, TraceSink* trace = nullptr);

    void start();
    void stop();

    [[nodiscard]] bool running() const { return running_; }

private:
    void tick();
    void sample_now();

    struct PrevApp {
        std::uint64_t delivered_net = 0;
        std::uint64_t verdict = 0;
        std::uint64_t bpf_store = 0;
        std::uint64_t fanout = 0;
        std::uint64_t disk_spill = 0;
        std::int64_t in_flight = 0;
    };
    struct PrevCpu {
        std::int64_t user_ns = 0;
        std::int64_t system_ns = 0;
        std::int64_t interrupt_ns = 0;
    };
    struct PrevSut {
        std::uint64_t ring_drops = 0;
        std::uint64_t backlog_drops = 0;
        std::vector<PrevApp> apps;
        std::vector<PrevCpu> cpus;
    };
    /// Interned Perfetto counter-track names; empty when untraced.
    struct TraceNames {
        std::vector<const char*> queue_ring;     // per queue
        std::vector<const char*> cpu_backlog;    // per cpu
        std::vector<const char*> cpu_user_pct;   // per cpu
        std::vector<const char*> cpu_system_pct; // per cpu
        std::vector<const char*> cpu_irq_pct;    // per cpu
        std::vector<const char*> app_buffer;     // per app
        std::vector<const char*> app_disk_ring;  // per app
        std::vector<const char*> app_delivered;  // per app
        const char* losses = nullptr;            // per-SUT overload losses
    };

    sim::Simulator* sim_;
    sim::Duration interval_;
    SamplerSources sources_;
    TimeSeries* out_;
    TraceSink* trace_;
    const char* trace_generated_ = nullptr;
    std::uint64_t prev_generated_ = 0;
    std::vector<PrevSut> prev_;
    std::vector<TraceNames> trace_names_;
    sim::SimTime last_sample_{};
    bool running_ = false;
};

}  // namespace capbench::obs
