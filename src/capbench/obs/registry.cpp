#include "capbench/obs/registry.hpp"

namespace capbench::obs {

Counter& Registry::counter(const std::string& name) {
    if (const auto it = index_.find(name); it != index_.end()) return *it->second;
    counters_.emplace_back();
    Counter* c = &counters_.back();
    order_.emplace_back(name, c);
    index_.emplace(name, c);
    return *c;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::snapshot() const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(order_.size());
    for (const auto& [name, c] : order_) out.emplace_back(name, c->value());
    return out;
}

}  // namespace capbench::obs
