#include "capbench/obs/metrics.hpp"

#include <stdexcept>

namespace capbench::obs {
namespace {

void merge_samples(sim::SampleSet& into, const sim::SampleSet& from) {
    into.reserve(into.size() + from.size());
    for (const double v : from.samples()) into.add(v);
}

}  // namespace

void RunMetrics::merge(const RunMetrics& other) {
    if (!other.enabled) return;
    if (!enabled) {
        *this = other;
        return;
    }
    if (suts.size() != other.suts.size())
        throw std::logic_error("RunMetrics::merge: SUT count mismatch");
    generated += other.generated;
    for (std::size_t s = 0; s < suts.size(); ++s) {
        SutMetrics& a = suts[s];
        const SutMetrics& b = other.suts[s];
        if (a.name != b.name || a.apps.size() != b.apps.size())
            throw std::logic_error("RunMetrics::merge: SUT shape mismatch");
        a.offered += b.offered;
        a.ring_drops += b.ring_drops;
        a.backlog_drops += b.backlog_drops;
        merge_samples(a.nic_to_kernel_ns, b.nic_to_kernel_ns);
        a.cpu_samples.insert(a.cpu_samples.end(), b.cpu_samples.begin(),
                             b.cpu_samples.end());
        for (std::size_t i = 0; i < a.apps.size(); ++i) {
            AppMetrics& x = a.apps[i];
            const AppMetrics& y = b.apps[i];
            x.delivered += y.delivered;
            for (const DropSite& site : kDropSites) x.*site.member += y.*site.member;
            merge_samples(x.latency_ns, y.latency_ns);
            merge_samples(x.enqueue_ns, y.enqueue_ns);
            merge_samples(x.deliver_ns, y.deliver_ns);
        }
    }
    if (counters.size() != other.counters.size())
        throw std::logic_error("RunMetrics::merge: counter count mismatch");
    for (std::size_t i = 0; i < counters.size(); ++i) {
        if (counters[i].first != other.counters[i].first)
            throw std::logic_error("RunMetrics::merge: counter name mismatch");
        counters[i].second += other.counters[i].second;
    }
}

}  // namespace capbench::obs
