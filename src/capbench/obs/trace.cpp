#include "capbench/obs/trace.hpp"

#include <ostream>

namespace capbench::obs {
namespace {

// Chrome trace timestamps are in microseconds.  Sim time is integer ns, so
// we render `ns / 1000` with an exact 3-digit fraction when the remainder
// is non-zero — deterministic, no floating point.
void write_micros(std::ostream& os, std::int64_t ns) {
    std::int64_t whole = ns / 1000;
    std::int64_t frac = ns % 1000;
    if (frac < 0) {  // defensive: sim timestamps are non-negative
        frac += 1000;
        whole -= 1;
    }
    os << whole;
    if (frac != 0) {
        os << '.' << static_cast<char>('0' + frac / 100)
           << static_cast<char>('0' + (frac / 10) % 10)
           << static_cast<char>('0' + frac % 10);
    }
}

void write_escaped(std::ostream& os, std::string_view s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

}  // namespace

TraceSink::TraceSink() = default;

const char* TraceSink::intern(std::string_view s) {
    if (const auto it = interned_.find(s); it != interned_.end()) return it->second;
    strings_.emplace_back(s);
    const char* p = strings_.back().c_str();
    interned_.emplace(strings_.back(), p);
    return p;
}

void TraceSink::set_process_name(int pid, std::string_view name) {
    metadata_.push_back(Meta{pid, -1, "process_name", std::string(name)});
}

void TraceSink::set_thread_name(int pid, int tid, std::string_view name) {
    metadata_.push_back(Meta{pid, tid, "thread_name", std::string(name)});
}

void TraceSink::grow() {
    chunks_.push_back(std::make_unique<Chunk>());
    used_ = 0;
}

void TraceSink::write_chrome_json(std::ostream& os) const {
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const Meta& m : metadata_) {
        if (!first) os << ',';
        first = false;
        os << "\n{\"ph\":\"M\",\"pid\":" << m.pid;
        if (m.tid >= 0) os << ",\"tid\":" << m.tid;
        os << ",\"name\":\"" << m.what << "\",\"args\":{\"name\":";
        write_escaped(os, m.name);
        os << "}}";
    }
    for_each([&](const TraceEvent& e) {
        if (!first) os << ',';
        first = false;
        os << "\n{\"ph\":\"";
        switch (e.phase) {
            case TraceEvent::Phase::kComplete: os << 'X'; break;
            case TraceEvent::Phase::kInstant: os << 'i'; break;
            case TraceEvent::Phase::kCounter: os << 'C'; break;
        }
        os << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ",\"ts\":";
        write_micros(os, e.ts_ns);
        os << ",\"name\":";
        write_escaped(os, e.name);
        if (e.cat != nullptr) {
            os << ",\"cat\":";
            write_escaped(os, e.cat);
        }
        switch (e.phase) {
            case TraceEvent::Phase::kComplete:
                os << ",\"dur\":";
                write_micros(os, e.dur_ns);
                break;
            case TraceEvent::Phase::kInstant:
                os << ",\"s\":\"t\"";
                break;
            case TraceEvent::Phase::kCounter:
                os << ",\"args\":{\"value\":" << e.value << '}';
                break;
        }
        os << '}';
    });
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace capbench::obs
