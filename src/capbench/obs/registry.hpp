// Counter registry for the observability layer (ISSUE 5 tentpole, part 3).
//
// Components that want run-level counters — the packet generator, each
// machine's scheduler, the capture stacks — ask the run's Registry for a
// named Counter at SETUP time and keep the returned pointer; the hot path
// then increments through the pointer with a single null check when
// observability is disabled.  Counters are insertion-ordered, so the
// snapshot that lands in the capbench.metrics.v1 document is byte-stable
// across runs, `--jobs` values and event-queue backends.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace capbench::obs {

/// A monotonically increasing 64-bit counter.  Address-stable for the
/// registry's lifetime (components cache `Counter*`).
class Counter {
public:
    void inc(std::uint64_t delta = 1) { value_ += delta; }
    [[nodiscard]] std::uint64_t value() const { return value_; }

private:
    std::uint64_t value_ = 0;
};

/// Get-or-create registry of named counters.  One per measurement run
/// (never shared across sweep points), so no synchronization is needed and
/// parallel sweeps stay bit-identical.
class Registry {
public:
    /// Returns the counter registered under `name`, creating it on first
    /// use.  The reference stays valid for the registry's lifetime.
    Counter& counter(const std::string& name);

    [[nodiscard]] std::size_t size() const { return order_.size(); }

    /// (name, value) pairs in registration order.
    [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

private:
    std::deque<Counter> counters_;  // deque: stable addresses on growth
    std::vector<std::pair<std::string, Counter*>> order_;
    std::map<std::string, Counter*, std::less<>> index_;
};

}  // namespace capbench::obs
