// Packet-lifecycle observer (ISSUE 5 tentpole, part 1).
//
// One `Observer` per measurement run.  The testbed registers each SUT
// (`add_sut`), which hands the NIC a `SutObserver` and each capture
// endpoint an `AppObserver`; the hot paths stamp packets with sim-time at
// NIC arrival, kernel hand-off, capture-stack enqueue and user delivery.
// Stamps are id-indexed flat arrays (packet ids are sequential per
// generator), pre-sized by `reserve()`, so a stamp is a bounds check and a
// store — and every hook call site is `if (obs_) obs_->...`, so a run
// without an observer pays one predictable branch.
//
// At the end of the measurement window the harness freezes the observer
// (later stamps no longer feed the sample sets), snapshots the capture
// counters, and `finalize()` folds everything into a `RunMetrics` whose
// per-app drop buckets sum exactly to the generated packet count.
#pragma once

#include "capbench/capture/tap.hpp"
#include "capbench/obs/metrics.hpp"
#include "capbench/obs/registry.hpp"
#include "capbench/obs/trace.hpp"
#include "capbench/profiling/cpusage.hpp"
#include "capbench/sim/stats.hpp"
#include "capbench/sim/time.hpp"

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace capbench::bpf {
struct DecodedProgram;
}

namespace capbench::obs {

class Observer;
class SutObserver;

/// Per-capture-app hooks, installed on a `StackEndpoint`.
class AppObserver {
public:
    AppObserver(SutObserver& sut, int index) : sut_(&sut), index_(index) {}

    /// Packet accepted into the capture buffer. `occupancy` is the
    /// stack's post-enqueue buffer fill (bytes or slots, stack-specific).
    void enqueued(std::uint64_t id, sim::SimTime t, std::int64_t occupancy);

    /// Packet handed to the application by fetch().
    void delivered(std::uint64_t id, sim::SimTime t);

    /// A fetch() drained `n` packets; `occupancy` is the post-drain fill.
    void fetched(std::size_t n, std::int64_t occupancy, sim::SimTime t);

    /// The filter VM aborted on a packet (out-of-bounds load, division by
    /// zero) instead of returning a verdict.
    void filter_aborted() {
        if (aborted_ != nullptr) aborted_->inc();
    }

    /// A BPF filter was attached to this endpoint.  Attach time, not the
    /// hot path: registers/bumps the per-SUT `bpf.*` registry counters
    /// (installs, decoded program size, dead stores elided, jit installs).
    /// `decoded` is null under the interpreter tier.
    void filter_installed(const bpf::DecodedProgram* decoded, bool jitted);

    /// A capture-to-disk writer pipeline attached to this app.  Registers
    /// the spill counter and interns the ring-occupancy trace name lazily,
    /// so pipeline-less runs keep their counter snapshot byte-identical.
    void disk_writer_attached();

    /// The app's writer ring rejected a record under a drop spill policy.
    void disk_spilled() {
        if (disk_spill_ != nullptr) disk_spill_->inc();
    }

    /// Writer-ring fill level changed (records queued for the disk).
    void disk_ring_occupancy(sim::SimTime t, std::int64_t occupancy);

private:
    friend class Observer;
    friend class SutObserver;

    SutObserver* sut_;
    int index_;
    Counter* aborted_ = nullptr;  // registry-owned; set by SutObserver
    Counter* disk_spill_ = nullptr;  // registered on disk_writer_attached()
    const char* occupancy_name_ = nullptr;  // interned; null when untraced
    const char* disk_ring_name_ = nullptr;  // interned; null when untraced
    std::vector<std::int64_t> enqueue_at_;
    sim::SampleSet latency_ns_;  // NIC arrival -> delivery
    sim::SampleSet enqueue_ns_;  // kernel hand-off -> enqueue
    sim::SampleSet deliver_ns_;  // enqueue -> delivery
};

/// Per-SUT hooks, installed on the NIC.
class SutObserver {
public:
    SutObserver(Observer& owner, std::string name, int pid, std::size_t app_count);

    /// Frame arrived at the NIC (before any drop decision).
    void nic_arrival(std::uint64_t id, sim::SimTime t);

    /// Frame leaves the NIC ring for driver/capture-stack processing.
    void kernel_handoff(std::uint64_t id, sim::SimTime t);

    /// The NIC posted an interrupt.
    void irq_raised(sim::SimTime t);

    /// NIC ring fill level changed (sampled at service entry/exit).
    void ring_occupancy(sim::SimTime t, std::size_t frames);

    [[nodiscard]] AppObserver& app(std::size_t i) { return apps_[i]; }
    [[nodiscard]] std::size_t app_count() const { return apps_.size(); }
    [[nodiscard]] int pid() const { return pid_; }
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    friend class Observer;
    friend class AppObserver;

    Observer* owner_;
    std::string name_;
    int pid_;
    const char* irq_name_ = nullptr;
    const char* ring_name_ = nullptr;
    std::vector<std::int64_t> arrival_at_;
    std::vector<std::int64_t> handoff_at_;
    sim::SampleSet nic_to_kernel_ns_;
    std::deque<AppObserver> apps_;  // deque: stable addresses
};

/// Counter snapshot taken by the harness when the measurement window
/// closes (same instant the headline capture counters are frozen).
struct SutSnapshot {
    std::uint64_t frames_seen = 0;
    std::uint64_t ring_drops = 0;
    std::uint64_t backlog_drops = 0;
    std::vector<capture::CaptureStats> apps;
    /// Per-app disk-writer ring spills at window close; empty when the SUT
    /// runs without the capture-to-disk pipeline.
    std::vector<std::uint64_t> disk_spills;
    std::vector<profiling::UsageSample> cpu_samples;
};

class Observer {
public:
    /// `trace` may be null: metrics only, no timeline.
    explicit Observer(TraceSink* trace = nullptr) : trace_(trace) {}

    Observer(const Observer&) = delete;
    Observer& operator=(const Observer&) = delete;

    /// Registers a SUT and its capture apps; called from the testbed
    /// build-up, in SUT order (which fixes trace pids and metrics order).
    SutObserver& add_sut(const std::string& name, std::size_t app_count);

    /// Pre-sizes every stamp array and sample set for `packets` ids so the
    /// steady state performs no allocation.
    void reserve(std::size_t packets);

    /// Stops feeding the sample sets; stamps after this are ignored so the
    /// histograms match the frozen counters exactly.
    void freeze() { frozen_ = true; }
    [[nodiscard]] bool frozen() const { return frozen_; }

    [[nodiscard]] TraceSink* trace() { return trace_; }
    [[nodiscard]] Registry& registry() { return registry_; }
    [[nodiscard]] std::size_t sut_count() const { return suts_.size(); }
    [[nodiscard]] SutObserver& sut(std::size_t i) { return suts_[i]; }

    /// Folds stamps + frozen counter snapshots into the run's metrics.
    /// `snapshots` must be in `add_sut` order; `generated` is the packet
    /// count emitted by the generator.  Consumes the sample sets.
    RunMetrics finalize(const std::vector<SutSnapshot>& snapshots,
                        std::uint64_t generated);

private:
    friend class SutObserver;
    friend class AppObserver;

    TraceSink* trace_;
    Registry registry_;
    std::deque<SutObserver> suts_;  // deque: stable addresses
    bool frozen_ = false;
};

// ---- inline hot paths ----------------------------------------------------

namespace detail {
inline void stamp(std::vector<std::int64_t>& v, std::uint64_t id,
                  sim::SimTime t) {
    if (id >= v.size()) v.resize(id + 1, -1);
    v[id] = t.ns();
}

inline std::int64_t stamp_at(const std::vector<std::int64_t>& v,
                             std::uint64_t id) {
    return id < v.size() ? v[id] : -1;
}
}  // namespace detail

inline void SutObserver::nic_arrival(std::uint64_t id, sim::SimTime t) {
    if (!owner_->frozen()) detail::stamp(arrival_at_, id, t);
}

inline void SutObserver::kernel_handoff(std::uint64_t id, sim::SimTime t) {
    if (owner_->frozen()) return;
    detail::stamp(handoff_at_, id, t);
    if (const std::int64_t arr = detail::stamp_at(arrival_at_, id); arr >= 0)
        nic_to_kernel_ns_.add(static_cast<double>(t.ns() - arr));
}

inline void SutObserver::irq_raised(sim::SimTime t) {
    if (TraceSink* tr = owner_->trace_)
        tr->instant(pid_, kNicTid, irq_name_, irq_name_, t);
}

inline void SutObserver::ring_occupancy(sim::SimTime t, std::size_t frames) {
    if (TraceSink* tr = owner_->trace_)
        tr->counter(pid_, kNicTid, ring_name_, t,
                    static_cast<std::int64_t>(frames));
}

inline void AppObserver::enqueued(std::uint64_t id, sim::SimTime t,
                                  std::int64_t occupancy) {
    if (!sut_->owner_->frozen()) {
        detail::stamp(enqueue_at_, id, t);
        if (const std::int64_t ho = detail::stamp_at(sut_->handoff_at_, id);
            ho >= 0)
            enqueue_ns_.add(static_cast<double>(t.ns() - ho));
    }
    if (TraceSink* tr = sut_->owner_->trace_)
        tr->counter(sut_->pid_, kThreadTidBase + index_, occupancy_name_, t,
                    occupancy);
}

inline void AppObserver::delivered(std::uint64_t id, sim::SimTime t) {
    if (sut_->owner_->frozen()) return;
    if (const std::int64_t enq = detail::stamp_at(enqueue_at_, id); enq >= 0)
        deliver_ns_.add(static_cast<double>(t.ns() - enq));
    if (const std::int64_t arr = detail::stamp_at(sut_->arrival_at_, id);
        arr >= 0)
        latency_ns_.add(static_cast<double>(t.ns() - arr));
}

inline void AppObserver::disk_ring_occupancy(sim::SimTime t,
                                             std::int64_t occupancy) {
    if (TraceSink* tr = sut_->owner_->trace_;
        tr != nullptr && disk_ring_name_ != nullptr)
        tr->counter(sut_->pid_, kThreadTidBase + index_, disk_ring_name_, t,
                    occupancy);
}

inline void AppObserver::fetched(std::size_t n, std::int64_t occupancy,
                                 sim::SimTime t) {
    (void)n;
    if (TraceSink* tr = sut_->owner_->trace_)
        tr->counter(sut_->pid_, kThreadTidBase + index_, occupancy_name_, t,
                    occupancy);
}

}  // namespace capbench::obs
