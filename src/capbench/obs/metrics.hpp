// Per-run observability results (ISSUE 5 tentpole, parts 1 + 3).
//
// `RunMetrics` is what a measurement run hands back when
// `RunConfig::collect_metrics` is set: per-SUT/per-app drop attribution,
// packet-lifecycle latency sample sets, CPU usage samples and the counter
// registry snapshot.  The drop taxonomy is closed — every generated packet
// lands in exactly one bucket, so for each app
//
//     generated == delivered + nic_ring + backlog + verdict + bpf_store
//                  + fanout + disk_spill + drain
//
// holds as an exact integer identity (`drain` is the residual still in
// flight — NIC ring, uncommitted verdicts or capture buffers — when the
// measurement window closes; `disk_spill` counts records the capture-to-
// disk writer ring rejected after delivery, so they are not in
// `delivered`).
#pragma once

#include "capbench/profiling/cpusage.hpp"
#include "capbench/sim/stats.hpp"

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace capbench::obs {

/// One capture app (session) on one SUT.
struct AppMetrics {
    std::uint64_t delivered = 0;

    // Drop attribution.  `nic_ring` and `backlog` happen before the
    // per-app fan-out and are mirrored into every app of the SUT.
    std::uint64_t drop_nic_ring = 0;
    std::uint64_t drop_backlog = 0;
    std::uint64_t drop_verdict = 0;    // rejected by the BPF filter
    std::uint64_t drop_bpf_store = 0;  // capture buffer full / too small
    std::uint64_t drop_fanout = 0;     // routed to another app by the fanout group
    std::uint64_t drop_disk_spill = 0; // spilled by the disk-writer ring
    std::uint64_t drop_drain = 0;      // still in flight at window close

    [[nodiscard]] std::uint64_t drops_total() const;

    // Lifecycle latencies, in sim nanoseconds.
    sim::SampleSet latency_ns;  // NIC arrival -> user delivery
    sim::SampleSet enqueue_ns;  // kernel hand-off -> capture-stack enqueue
    sim::SampleSet deliver_ns;  // enqueue -> user delivery
};

/// One named drop bucket of the closed taxonomy above, addressed as an
/// AppMetrics member pointer so every consumer (metric JSON, time-series
/// deltas, tests) iterates the same table instead of repeating the string
/// literals — a future bucket added here reaches all of them at once.
struct DropSite {
    const char* name;
    std::uint64_t AppMetrics::* member;
};

/// Every drop bucket, in the emission order of `capbench.metrics.v1`.
inline constexpr std::array<DropSite, 7> kDropSites{{
    {"nic_ring", &AppMetrics::drop_nic_ring},
    {"backlog", &AppMetrics::drop_backlog},
    {"verdict", &AppMetrics::drop_verdict},
    {"bpf_store", &AppMetrics::drop_bpf_store},
    {"fanout", &AppMetrics::drop_fanout},
    {"disk_spill", &AppMetrics::drop_disk_spill},
    {"drain", &AppMetrics::drop_drain},
}};

inline std::uint64_t AppMetrics::drops_total() const {
    std::uint64_t total = 0;
    for (const DropSite& site : kDropSites) total += this->*site.member;
    return total;
}

struct SutMetrics {
    std::string name;
    std::uint64_t offered = 0;  // frames seen at the NIC
    std::uint64_t ring_drops = 0;
    std::uint64_t backlog_drops = 0;
    sim::SampleSet nic_to_kernel_ns;  // arrival -> IRQ/softirq hand-off
    std::vector<AppMetrics> apps;
    std::vector<profiling::UsageSample> cpu_samples;
};

struct RunMetrics {
    bool enabled = false;
    std::uint64_t generated = 0;
    std::vector<SutMetrics> suts;
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /// Accumulates another rep of the same configuration: counts are raw
    /// sums (never averaged, so the drop identity stays exact), sample
    /// sets and CPU samples are concatenated, counters merged by name.
    /// Throws std::logic_error on shape mismatch.
    void merge(const RunMetrics& other);
};

}  // namespace capbench::obs
