// Timeline trace sink (ISSUE 5 tentpole, part 2).
//
// Records CPU slices, IRQ instants and buffer-occupancy counters as a flat
// stream of POD events in slab-allocated chunks, then serializes them as
// Chrome trace-event JSON ("Trace Event Format") that loads directly in
// Perfetto / chrome://tracing.  All timestamps are sim-time nanoseconds;
// the writer converts to the format's microsecond unit with an exact
// decimal rendering (no floating point), so output is byte-stable across
// platforms, `--jobs` values and event-queue backends.
//
// Event names and categories are interned `const char*`s: hot-path
// emitters pass string literals (or a pointer previously returned by
// `intern()`), so recording an event never allocates once the current
// chunk has room.  Chunk growth is the ONLY steady-state allocation the
// enabled-tracing alloc-guard budget has to cover.
#pragma once

#include "capbench/sim/time.hpp"

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace capbench::obs {

/// Well-known trace "thread" ids within a SUT process.  Real app threads
/// get ids from kThreadTidBase upward in spawn order.
inline constexpr int kKernelTid = 64;   // serialized kernel work (CPU 0)
inline constexpr int kNicTid = 96;      // NIC / IRQ lane
inline constexpr int kSamplerTid = 112; // interval time-series counter lane
inline constexpr int kThreadTidBase = 128;

struct TraceEvent {
    enum class Phase : std::uint8_t {
        kComplete,  // "X": a duration slice [ts, ts+dur)
        kInstant,   // "i": a point event (thread scope)
        kCounter,   // "C": a sampled counter value
    };

    Phase phase;
    std::int32_t pid;
    std::int32_t tid;
    const char* name;  // interned; never null
    const char* cat;   // interned; may be null (omitted)
    std::int64_t ts_ns;
    std::int64_t dur_ns;       // kComplete only
    std::int64_t value;        // kCounter only
};

/// Append-only trace recorder.  Not thread-safe: a TraceSink belongs to
/// exactly one measurement run (the scenario runner hands it to a single
/// sweep point), matching the simulator's single-threaded event loop.
class TraceSink {
public:
    static constexpr std::size_t kChunkEvents = 4096;

    TraceSink();

    /// Interns `s` and returns a stable pointer usable as an event
    /// name/category for the sink's lifetime.  Call at setup time, not on
    /// the hot path.
    const char* intern(std::string_view s);

    // -- emitters (hot path; no allocation unless a chunk fills) ---------
    void complete(int pid, int tid, const char* name, const char* cat,
                  sim::SimTime start, sim::SimTime end) {
        TraceEvent& e = push();
        e.phase = TraceEvent::Phase::kComplete;
        e.pid = pid;
        e.tid = tid;
        e.name = name;
        e.cat = cat;
        e.ts_ns = start.ns();
        e.dur_ns = end.ns() - start.ns();
        e.value = 0;
    }

    void instant(int pid, int tid, const char* name, const char* cat,
                 sim::SimTime at) {
        TraceEvent& e = push();
        e.phase = TraceEvent::Phase::kInstant;
        e.pid = pid;
        e.tid = tid;
        e.name = name;
        e.cat = cat;
        e.ts_ns = at.ns();
        e.dur_ns = 0;
        e.value = 0;
    }

    void counter(int pid, int tid, const char* name, sim::SimTime at,
                 std::int64_t value) {
        TraceEvent& e = push();
        e.phase = TraceEvent::Phase::kCounter;
        e.pid = pid;
        e.tid = tid;
        e.name = name;
        e.cat = nullptr;
        e.ts_ns = at.ns();
        e.dur_ns = 0;
        e.value = value;
    }

    // -- metadata (setup time) -------------------------------------------
    void set_process_name(int pid, std::string_view name);
    void set_thread_name(int pid, int tid, std::string_view name);

    // -- introspection / output ------------------------------------------
    [[nodiscard]] std::size_t event_count() const { return count_; }
    [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

    /// Visits every recorded event in emission order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        std::size_t remaining = count_;
        for (const auto& chunk : chunks_) {
            const std::size_t n = remaining < kChunkEvents ? remaining : kChunkEvents;
            for (std::size_t i = 0; i < n; ++i) fn((*chunk)[i]);
            remaining -= n;
        }
    }

    /// Writes `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
    /// Streaming: never materializes the document in memory.
    void write_chrome_json(std::ostream& os) const;

private:
    struct Meta {
        int pid;
        int tid;         // -1 for process metadata
        std::string what;  // "process_name" | "thread_name"
        std::string name;
    };

    TraceEvent& push() {
        if (used_ == kChunkEvents) grow();
        ++count_;
        return (*chunks_.back())[used_++];
    }

    void grow();

    using Chunk = std::array<TraceEvent, kChunkEvents>;
    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::size_t used_ = kChunkEvents;  // forces grow() on first push
    std::size_t count_ = 0;

    std::deque<std::string> strings_;
    std::map<std::string, const char*, std::less<>> interned_;
    std::vector<Meta> metadata_;
};

}  // namespace capbench::obs
