#include "capbench/obs/timeseries.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "capbench/capture/nic.hpp"
#include "capbench/capture/tap.hpp"
#include "capbench/hostsim/machine.hpp"
#include "capbench/load/disk_writer.hpp"
#include "capbench/obs/metrics.hpp"
#include "capbench/obs/trace.hpp"
#include "capbench/sim/simulator.hpp"

namespace capbench::obs {

void Series::grow() {
    chunks_.push_back(std::make_unique<Chunk>());
    used_ = 0;
}

std::int64_t Series::sum() const {
    std::int64_t total = 0;
    std::size_t remaining = count_;
    for (const auto& chunk : chunks_) {
        const std::size_t n = std::min(remaining, kChunkValues);
        for (std::size_t i = 0; i < n; ++i) total += (*chunk)[i];
        remaining -= n;
    }
    return total;
}

std::int64_t Series::max() const {
    std::int64_t best = 0;
    std::size_t remaining = count_;
    for (const auto& chunk : chunks_) {
        const std::size_t n = std::min(remaining, kChunkValues);
        for (std::size_t i = 0; i < n; ++i) best = std::max(best, (*chunk)[i]);
        remaining -= n;
    }
    return best;
}

namespace {

/// Visits every column of a TimeSeries (shape walkers below stay in sync
/// with the struct definitions by construction).
template <typename Fn>
void for_each_series(const TimeSeries& ts, Fn&& fn) {
    fn(ts.time_ns);
    fn(ts.generated);
    for (const SutSeries& s : ts.suts) {
        fn(s.drop_nic_ring);
        fn(s.drop_backlog);
        fn(s.classification);
        for (const QueueSeries& q : s.queues) fn(q.ring_occupancy);
        for (const CpuSeries& c : s.cpus) {
            fn(c.backlog_len);
            fn(c.user_ns);
            fn(c.system_ns);
            fn(c.interrupt_ns);
            fn(c.idle_ns);
        }
        for (const AppSeries& a : s.apps) {
            fn(a.delivered);
            fn(a.drop_verdict);
            fn(a.drop_bpf_store);
            fn(a.drop_fanout);
            fn(a.drop_disk_spill);
            fn(a.drain);
            fn(a.buffer_occupancy);
            fn(a.disk_ring);
        }
    }
}

void check_sum(const char* what, std::int64_t sum, std::uint64_t aggregate) {
    if (sum < 0 || static_cast<std::uint64_t>(sum) != aggregate)
        throw std::logic_error(std::string("timeseries conservation violated: Σ") + what +
                               " deltas = " + std::to_string(sum) + " but finalize aggregate = " +
                               std::to_string(aggregate));
}

/// Peak fill percentage across the SUT's bounded stores at interval k.
std::int64_t occupancy_pct_at(const SutSeries& s, std::size_t k) {
    std::int64_t pct = 0;
    if (s.nic_ring_capacity > 0)
        for (const QueueSeries& q : s.queues)
            pct = std::max(pct, q.ring_occupancy.at(k) * 100 /
                                    static_cast<std::int64_t>(s.nic_ring_capacity));
    for (std::size_t a = 0; a < s.apps.size(); ++a) {
        if (s.app_buffer_capacity[a] > 0)
            pct = std::max(pct, s.apps[a].buffer_occupancy.at(k) * 100 /
                                    static_cast<std::int64_t>(s.app_buffer_capacity[a]));
        if (s.app_disk_ring_capacity[a] > 0)
            pct = std::max(pct, s.apps[a].disk_ring.at(k) * 100 /
                                    static_cast<std::int64_t>(s.app_disk_ring_capacity[a]));
    }
    return pct;
}

/// Terminal overload losses (NOT verdict/fanout — those are intended
/// filtering/routing) at interval k.
std::int64_t overload_loss_at(const SutSeries& s, std::size_t k) {
    std::int64_t loss = s.drop_nic_ring.at(k) + s.drop_backlog.at(k);
    for (const AppSeries& a : s.apps) loss += a.drop_bpf_store.at(k) + a.drop_disk_spill.at(k);
    return loss;
}

/// Classifies every interval and coalesces dropping runs into episodes.
void run_overload_detector(TimeSeries& ts) {
    const std::size_t n = ts.sample_count();
    for (SutSeries& s : ts.suts) {
        struct SiteSum {
            const char* name;
            std::int64_t sum;
        };
        std::array<SiteSum, 4> sites{};  // filled per episode below
        OverloadEpisode open{};
        bool in_episode = false;
        const auto close = [&] {
            const SiteSum* best = &sites[0];
            for (const SiteSum& cand : sites)
                if (cand.sum > best->sum) best = &cand;
            open.dominant_site = best->name;
            s.episodes.push_back(open);
            in_episode = false;
        };
        for (std::size_t k = 0; k < n; ++k) {
            const std::int64_t loss = overload_loss_at(s, k);
            const std::int64_t occ = occupancy_pct_at(s, k);
            IntervalClass cls = IntervalClass::kHealthy;
            if (loss > 0)
                cls = IntervalClass::kDropping;
            else if (occ >= kSaturatedOccupancyPct)
                cls = IntervalClass::kSaturated;
            s.classification.push(static_cast<std::int64_t>(cls));
            if (cls != IntervalClass::kDropping) {
                if (in_episode) close();
                continue;
            }
            if (!in_episode) {
                in_episode = true;
                open = OverloadEpisode{};
                open.first_interval = k;
                open.start_ns = k == 0 ? 0 : ts.time_ns.at(k - 1);
                // kDropSites order decides ties (first wins on equal sums).
                sites = {{{kDropSites[0].name, 0},   // nic_ring
                          {kDropSites[1].name, 0},   // backlog
                          {kDropSites[3].name, 0},   // bpf_store
                          {kDropSites[5].name, 0}}}; // disk_spill
            }
            open.end_ns = ts.time_ns.at(k);
            open.intervals = k - open.first_interval + 1;
            open.dropped += static_cast<std::uint64_t>(loss);
            open.peak_occupancy_pct = std::max(open.peak_occupancy_pct, occ);
            sites[0].sum += s.drop_nic_ring.at(k);
            sites[1].sum += s.drop_backlog.at(k);
            for (const AppSeries& a : s.apps) {
                sites[2].sum += a.drop_bpf_store.at(k);
                sites[3].sum += a.drop_disk_spill.at(k);
            }
        }
        if (in_episode) close();
    }
}

}  // namespace

std::size_t TimeSeries::chunk_count() const {
    std::size_t chunks = 0;
    for_each_series(*this, [&](const Series& s) { chunks += s.chunk_count(); });
    return chunks;
}

void TimeSeries::finalize_against(const RunMetrics& metrics) {
    if (!metrics.enabled)
        throw std::logic_error("TimeSeries::finalize_against: metrics not collected");
    if (metrics.suts.size() != suts.size())
        throw std::logic_error("TimeSeries::finalize_against: SUT count mismatch");
    check_sum("generated", generated.sum(), metrics.generated);
    generated_total = metrics.generated;
    totals.clear();
    for (std::size_t s = 0; s < suts.size(); ++s) {
        const SutSeries& ss = suts[s];
        const SutMetrics& sm = metrics.suts[s];
        if (sm.apps.size() != ss.apps.size())
            throw std::logic_error("TimeSeries::finalize_against: app count mismatch");
        SutTotals st;
        for (std::size_t a = 0; a < ss.apps.size(); ++a) {
            const AppSeries& as = ss.apps[a];
            const AppMetrics& am = sm.apps[a];
            check_sum("delivered", as.delivered.sum(), am.delivered);
            check_sum("nic_ring", ss.drop_nic_ring.sum(), am.drop_nic_ring);
            check_sum("backlog", ss.drop_backlog.sum(), am.drop_backlog);
            check_sum("verdict", as.drop_verdict.sum(), am.drop_verdict);
            check_sum("bpf_store", as.drop_bpf_store.sum(), am.drop_bpf_store);
            check_sum("fanout", as.drop_fanout.sum(), am.drop_fanout);
            check_sum("disk_spill", as.drop_disk_spill.sum(), am.drop_disk_spill);
            check_sum("drain", as.drain.sum(), am.drop_drain);
            AppTotals at;
            at.delivered = am.delivered;
            for (std::size_t d = 0; d < kDropSites.size(); ++d)
                at.drops[d] = am.*kDropSites[d].member;
            st.apps.push_back(at);
        }
        totals.push_back(std::move(st));
    }
    finalized = true;
}

IntervalSampler::IntervalSampler(sim::Simulator& sim, sim::Duration interval,
                                 SamplerSources sources, TimeSeries& out, TraceSink* trace)
    : sim_(&sim),
      interval_(interval),
      sources_(std::move(sources)),
      out_(&out),
      trace_(trace) {
    if (interval_.ns() <= 0)
        throw std::invalid_argument("IntervalSampler: interval must be positive");
    if (sources_.generated == nullptr)
        throw std::invalid_argument("IntervalSampler: generated counter missing");
    out_->interval = interval_;
    if (trace_) {
        trace_->set_process_name(0, "pktgen");
        trace_->set_thread_name(0, kSamplerTid, "timeseries");
        trace_generated_ = trace_->intern("ts:generated/ivl");
    }
    for (const SamplerSources::Sut& src : sources_.suts) {
        SutSeries ss;
        ss.name = src.name;
        ss.nic_ring_capacity = src.nic->ring_capacity();
        ss.queues.resize(static_cast<std::size_t>(src.nic->queue_count()));
        ss.cpus.resize(static_cast<std::size_t>(src.machine->logical_cpus()));
        ss.apps.resize(src.apps.size());
        PrevSut prev;
        prev.apps.resize(src.apps.size());
        prev.cpus.resize(ss.cpus.size());
        TraceNames names;
        for (const SamplerSources::App& app : src.apps) {
            ss.app_buffer_capacity.push_back(app.endpoint->buffer_capacity());
            ss.app_disk_ring_capacity.push_back(
                app.writer != nullptr ? app.writer->config().ring_slots : 0);
        }
        if (trace_) {
            trace_->set_thread_name(src.trace_pid, kSamplerTid, "timeseries");
            for (std::size_t j = 0; j < ss.queues.size(); ++j)
                names.queue_ring.push_back(
                    trace_->intern("ts:q" + std::to_string(j) + ".ring"));
            for (std::size_t c = 0; c < ss.cpus.size(); ++c) {
                const std::string cpu = "ts:cpu" + std::to_string(c);
                names.cpu_backlog.push_back(trace_->intern(cpu + ".backlog"));
                names.cpu_user_pct.push_back(trace_->intern(cpu + ".user_pct"));
                names.cpu_system_pct.push_back(trace_->intern(cpu + ".system_pct"));
                names.cpu_irq_pct.push_back(trace_->intern(cpu + ".irq_pct"));
            }
            for (std::size_t a = 0; a < src.apps.size(); ++a) {
                const std::string app = "ts:app" + std::to_string(a);
                names.app_buffer.push_back(trace_->intern(app + ".buffer"));
                names.app_disk_ring.push_back(trace_->intern(app + ".diskring"));
                names.app_delivered.push_back(trace_->intern(app + ".delivered/ivl"));
            }
            names.losses = trace_->intern("ts:overload_losses/ivl");
        }
        out_->suts.push_back(std::move(ss));
        prev_.push_back(std::move(prev));
        trace_names_.push_back(std::move(names));
    }
}

void IntervalSampler::start() {
    if (running_) return;
    running_ = true;
    sim_->schedule_in(interval_, [this] { tick(); });
}

void IntervalSampler::tick() {
    if (!running_) return;
    sample_now();
    sim_->schedule_in(interval_, [this] { tick(); });
}

void IntervalSampler::stop() {
    if (!running_) return;
    running_ = false;
    // The freeze-instant sample: taken inside the same event that freezes
    // the aggregate counters, so every delta column telescopes exactly.
    sample_now();
    run_overload_detector(*out_);
    if (trace_) {
        const char* cat = trace_->intern("overload");
        for (std::size_t s = 0; s < out_->suts.size(); ++s)
            for (const OverloadEpisode& ep : out_->suts[s].episodes)
                trace_->complete(sources_.suts[s].trace_pid, kSamplerTid,
                                 trace_->intern(std::string("overload:") + ep.dominant_site),
                                 cat, sim::SimTime{ep.start_ns}, sim::SimTime{ep.end_ns});
    }
}

void IntervalSampler::sample_now() {
    const sim::SimTime now = sim_->now();
    const std::int64_t dt = now.ns() - last_sample_.ns();
    out_->time_ns.push(now.ns());
    const std::uint64_t gen = *sources_.generated;
    const auto gen_delta = static_cast<std::int64_t>(gen - prev_generated_);
    prev_generated_ = gen;
    out_->generated.push(gen_delta);
    if (trace_) trace_->counter(0, kSamplerTid, trace_generated_, now, gen_delta);

    for (std::size_t s = 0; s < sources_.suts.size(); ++s) {
        const SamplerSources::Sut& src = sources_.suts[s];
        SutSeries& ss = out_->suts[s];
        PrevSut& ps = prev_[s];
        const TraceNames& names = trace_names_[s];

        const std::uint64_t ring_total = src.nic->ring_drops();
        const std::uint64_t backlog_total = src.nic->backlog_drops();
        const auto ring_delta = static_cast<std::int64_t>(ring_total - ps.ring_drops);
        const auto backlog_delta = static_cast<std::int64_t>(backlog_total - ps.backlog_drops);
        ps.ring_drops = ring_total;
        ps.backlog_drops = backlog_total;
        ss.drop_nic_ring.push(ring_delta);
        ss.drop_backlog.push(backlog_delta);
        std::int64_t losses = ring_delta + backlog_delta;

        for (std::size_t j = 0; j < ss.queues.size(); ++j) {
            const auto occ =
                static_cast<std::int64_t>(src.nic->queue_ring_occupancy(static_cast<int>(j)));
            ss.queues[j].ring_occupancy.push(occ);
            if (trace_) trace_->counter(src.trace_pid, kSamplerTid, names.queue_ring[j], now, occ);
        }

        for (std::size_t c = 0; c < ss.cpus.size(); ++c) {
            CpuSeries& cs = ss.cpus[c];
            PrevCpu& pc = ps.cpus[c];
            const auto backlog =
                static_cast<std::int64_t>(src.machine->kernel_queue_len(static_cast<int>(c)));
            cs.backlog_len.push(backlog);
            const hostsim::Cpu& cpu = src.machine->cpu(static_cast<int>(c));
            const std::int64_t user = cpu.in_state(hostsim::CpuState::kUser).ns();
            const std::int64_t system = cpu.in_state(hostsim::CpuState::kSystem).ns();
            const std::int64_t irq = cpu.in_state(hostsim::CpuState::kInterrupt).ns();
            const std::int64_t du = user - pc.user_ns;
            const std::int64_t ds = system - pc.system_ns;
            const std::int64_t di = irq - pc.interrupt_ns;
            pc.user_ns = user;
            pc.system_ns = system;
            pc.interrupt_ns = irq;
            cs.user_ns.push(du);
            cs.system_ns.push(ds);
            cs.interrupt_ns.push(di);
            cs.idle_ns.push(std::max<std::int64_t>(0, dt - (du + ds + di)));
            if (trace_) {
                trace_->counter(src.trace_pid, kSamplerTid, names.cpu_backlog[c], now, backlog);
                if (dt > 0) {
                    trace_->counter(src.trace_pid, kSamplerTid, names.cpu_user_pct[c], now,
                                    du * 100 / dt);
                    trace_->counter(src.trace_pid, kSamplerTid, names.cpu_system_pct[c], now,
                                    ds * 100 / dt);
                    trace_->counter(src.trace_pid, kSamplerTid, names.cpu_irq_pct[c], now,
                                    di * 100 / dt);
                }
            }
        }

        for (std::size_t a = 0; a < ss.apps.size(); ++a) {
            const SamplerSources::App& app = src.apps[a];
            AppSeries& as = ss.apps[a];
            PrevApp& pa = ps.apps[a];
            const capture::CaptureStats& st = app.endpoint->stats();
            const std::uint64_t spilled = app.writer != nullptr ? app.writer->spilled() : 0;
            const std::uint64_t delivered_net = st.delivered - spilled;
            const auto push_delta = [](Series& series, std::uint64_t total,
                                       std::uint64_t& prev_total) {
                series.push(static_cast<std::int64_t>(total - prev_total));
                prev_total = total;
            };
            push_delta(as.delivered, delivered_net, pa.delivered_net);
            push_delta(as.drop_verdict, st.dropped_filter, pa.verdict);
            push_delta(as.drop_bpf_store, st.dropped_buffer, pa.bpf_store);
            push_delta(as.drop_fanout, st.fanout_skipped, pa.fanout);
            push_delta(as.drop_disk_spill, spilled, pa.disk_spill);
            // Signed in-flight change; telescopes to the drain residual.
            const auto in_flight = static_cast<std::int64_t>(gen) -
                                   static_cast<std::int64_t>(st.delivered + ring_total +
                                                             backlog_total + st.dropped_filter +
                                                             st.dropped_buffer +
                                                             st.fanout_skipped);
            as.drain.push(in_flight - pa.in_flight);
            pa.in_flight = in_flight;
            const auto buffer = static_cast<std::int64_t>(app.endpoint->buffer_occupancy());
            const auto disk_ring = static_cast<std::int64_t>(
                app.writer != nullptr ? app.writer->ring_occupancy() : 0);
            as.buffer_occupancy.push(buffer);
            as.disk_ring.push(disk_ring);
            const std::size_t k = as.delivered.size() - 1;
            losses += as.drop_bpf_store.at(k) + as.drop_disk_spill.at(k);
            if (trace_) {
                trace_->counter(src.trace_pid, kSamplerTid, names.app_buffer[a], now, buffer);
                trace_->counter(src.trace_pid, kSamplerTid, names.app_disk_ring[a], now,
                                disk_ring);
                trace_->counter(src.trace_pid, kSamplerTid, names.app_delivered[a], now,
                                as.delivered.at(k));
            }
        }
        if (trace_) trace_->counter(src.trace_pid, kSamplerTid, names.losses, now, losses);
    }
    last_sample_ = now;
}

}  // namespace capbench::obs
