#include "capbench/report/metrics_writer.hpp"

#include "capbench/bpf/program_cache.hpp"
#include "capbench/core/capbench.hpp"
#include "capbench/profiling/trimusage.hpp"

namespace capbench::report {

JsonValue MetricsWriter::summary(const sim::SampleSet::Summary& s) {
    JsonValue out = JsonValue::object();
    out.set("count", s.count);
    out.set("min", s.min);
    out.set("max", s.max);
    out.set("mean", s.mean);
    out.set("p50", s.p50);
    out.set("p95", s.p95);
    out.set("p99", s.p99);
    return out;
}

JsonValue MetricsWriter::app(const obs::AppMetrics& a) {
    JsonValue out = JsonValue::object();
    out.set("delivered", a.delivered);
    JsonValue drops = JsonValue::object();
    for (const obs::DropSite& site : obs::kDropSites) drops.set(site.name, a.*site.member);
    out.set("drops", std::move(drops));
    out.set("latency_ns", summary(a.latency_ns.summary()));
    out.set("enqueue_ns", summary(a.enqueue_ns.summary()));
    out.set("deliver_ns", summary(a.deliver_ns.summary()));
    return out;
}

JsonValue MetricsWriter::sut(const obs::SutMetrics& s) {
    JsonValue out = JsonValue::object();
    out.set("name", s.name);
    out.set("offered", s.offered);
    out.set("ring_drops", s.ring_drops);
    out.set("backlog_drops", s.backlog_drops);
    out.set("nic_to_kernel_ns", summary(s.nic_to_kernel_ns.summary()));

    // cpusage + in-process trimusage (the thesis pipes cpusage output into
    // an awk script after the run; here the samples never leave memory).
    JsonValue cpu = JsonValue::object();
    cpu.set("samples", static_cast<std::uint64_t>(s.cpu_samples.size()));
    if (const auto trimmed = profiling::trim_usage(s.cpu_samples)) {
        JsonValue t = JsonValue::object();
        t.set("user_pct", trimmed->average.user_pct);
        t.set("system_pct", trimmed->average.system_pct);
        t.set("interrupt_pct", trimmed->average.interrupt_pct);
        t.set("idle_pct", trimmed->average.idle_pct);
        t.set("run_length", static_cast<std::uint64_t>(trimmed->run_length));
        t.set("run_start", static_cast<std::uint64_t>(trimmed->run_start));
        cpu.set("trimmed", std::move(t));
    } else {
        cpu.set("trimmed", JsonValue{});
    }
    out.set("cpu", std::move(cpu));

    JsonValue apps = JsonValue::array();
    for (const auto& a : s.apps) apps.push_back(app(a));
    out.set("apps", std::move(apps));
    return out;
}

JsonValue MetricsWriter::point(double x, const obs::RunMetrics& m) {
    JsonValue out = JsonValue::object();
    out.set("x", x);
    out.set("generated", m.generated);
    JsonValue suts = JsonValue::array();
    for (const auto& s : m.suts) suts.push_back(sut(s));
    out.set("suts", std::move(suts));
    JsonValue counters = JsonValue::object();
    for (const auto& [name, value] : m.counters) counters.set(name, value);
    out.set("counters", std::move(counters));
    return out;
}

JsonValue MetricsWriter::document(const scenario::ScenarioResult& r) {
    JsonValue doc = JsonValue::object();
    doc.set("schema", kSchema);
    doc.set("capbench_version", kVersion);
    doc.set("id", r.id);

    JsonValue config = JsonValue::object();
    config.set("packets", r.packets);
    config.set("reps", r.reps);
    config.set("base_seed", r.base_seed);
    config.set("jobs", r.jobs);
    doc.set("config", std::move(config));

    JsonValue variants = JsonValue::array();
    if (!r.is_custom) {
        for (const auto& v : r.variants) {
            JsonValue variant = JsonValue::object();
            variant.set("name", v.name);
            variant.set("suffix", v.suffix);
            JsonValue points = JsonValue::array();
            for (const auto& p : v.points) {
                if (!p.result.metrics.enabled) continue;
                points.push_back(point(p.x, p.result.metrics));
            }
            variant.set("points", std::move(points));
            variants.push_back(std::move(variant));
        }
    }
    doc.set("variants", std::move(variants));
    return doc;
}

JsonValue MetricsWriter::suite(std::vector<JsonValue> documents,
                               const obs::TimeSeries* timeseries) {
    JsonValue doc = JsonValue::object();
    doc.set("schema", kSuiteSchema);
    doc.set("capbench_version", kVersion);
    // Overload episodes of the designated sampled run (--timeseries).
    if (timeseries != nullptr && timeseries->finalized) {
        JsonValue episodes = JsonValue::array();
        for (const obs::SutSeries& s : timeseries->suts) {
            for (const obs::OverloadEpisode& ep : s.episodes) {
                JsonValue e = JsonValue::object();
                e.set("sut", s.name);
                e.set("start_ns", ep.start_ns);
                e.set("end_ns", ep.end_ns);
                e.set("intervals", static_cast<std::uint64_t>(ep.intervals));
                e.set("dominant_site", ep.dominant_site);
                e.set("dropped", ep.dropped);
                e.set("peak_occupancy_pct", ep.peak_occupancy_pct);
                episodes.push_back(std::move(e));
            }
        }
        doc.set("overload_episodes", std::move(episodes));
    }
    // Process-wide filter-compile accounting.  The cache counts a miss
    // only for the install that won the insert race, so for a fixed
    // command line these totals are byte-stable across --jobs.
    const bpf::CacheStats cache = bpf::cache_stats();
    JsonValue bpf_cache = JsonValue::object();
    bpf_cache.set("lookups", cache.lookups);
    bpf_cache.set("hits", cache.hits);
    bpf_cache.set("misses", cache.misses);
    bpf_cache.set("jit_compiles", cache.jit_compiles);
    doc.set("bpf_cache", std::move(bpf_cache));
    JsonValue results = JsonValue::array();
    for (auto& d : documents) results.push_back(std::move(d));
    doc.set("results", std::move(results));
    return doc;
}

std::string MetricsWriter::serialize(const JsonValue& v) { return dump_json(v, 2) + "\n"; }

}  // namespace capbench::report
