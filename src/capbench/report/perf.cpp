#include "capbench/report/perf.hpp"

#include <stdexcept>

namespace capbench::report {

JsonValue perf_document(const PerfReport& report) {
    JsonValue doc = JsonValue::object();
    doc.set("schema", kPerfSchema);
    JsonValue config = JsonValue::object();
    config.set("packets_per_macro_run", report.packets_per_macro_run);
    config.set("seed", report.seed);
    config.set("quick", report.quick);
    config.set("build_type", report.build_type);
    doc.set("config", std::move(config));
    JsonValue cases = JsonValue::array();
    for (const PerfCase& c : report.cases) {
        JsonValue entry = JsonValue::object();
        entry.set("name", c.name);
        entry.set("kind", c.kind);
        entry.set("wall_seconds", c.wall_seconds);
        entry.set("events", c.events);
        entry.set("sim_packets", c.sim_packets);
        entry.set("events_per_sec", c.events_per_sec);
        entry.set("packets_per_sec", c.packets_per_sec);
        cases.push_back(std::move(entry));
    }
    doc.set("cases", std::move(cases));
    return doc;
}

namespace {

void require(bool ok, const char* what) {
    if (!ok) throw std::runtime_error(std::string("perf document: ") + what);
}

}  // namespace

void validate_perf_document(const JsonValue& doc) {
    require(doc.is_object(), "not an object");
    const JsonValue* schema = doc.find("schema");
    require(schema != nullptr && schema->is_string(), "missing schema tag");
    require(schema->as_string() == kPerfSchema, "unexpected schema tag");

    const JsonValue* config = doc.find("config");
    require(config != nullptr && config->is_object(), "missing config object");
    const JsonValue* packets = config->find("packets_per_macro_run");
    require(packets != nullptr && packets->is_int(), "config.packets_per_macro_run");
    require(config->find("seed") != nullptr && config->find("seed")->is_int(), "config.seed");
    require(config->find("quick") != nullptr && config->find("quick")->is_bool(),
            "config.quick");
    require(config->find("build_type") != nullptr && config->find("build_type")->is_string(),
            "config.build_type");

    const JsonValue* cases = doc.find("cases");
    require(cases != nullptr && cases->is_array(), "missing cases array");
    require(!cases->as_array().empty(), "cases array is empty");
    for (const JsonValue& c : cases->as_array()) {
        require(c.is_object(), "case is not an object");
        const JsonValue* name = c.find("name");
        require(name != nullptr && name->is_string(), "case.name");
        const JsonValue* kind = c.find("kind");
        require(kind != nullptr && kind->is_string(), "case.kind");
        require(kind->as_string() == "macro" || kind->as_string() == "micro",
                "case.kind must be macro or micro");
        for (const char* field : {"wall_seconds", "events_per_sec", "packets_per_sec"}) {
            const JsonValue* v = c.find(field);
            require(v != nullptr && v->is_number(), field);
        }
        for (const char* field : {"events", "sim_packets"}) {
            const JsonValue* v = c.find(field);
            require(v != nullptr && v->is_int(), field);
        }
        require(c.find("wall_seconds")->as_double() >= 0.0, "negative wall_seconds");
    }
}

}  // namespace capbench::report
