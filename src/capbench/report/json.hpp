// A small, dependency-free JSON document model with a serializer and a
// strict parser.  The structured-results layer (report/writer.hpp) builds
// scenario documents out of these values; tests round-trip them.
//
// Design constraints that matter for capbench:
//  * objects preserve insertion order, so emitted documents are
//    byte-stable across runs (schema tests compare whole strings), and
//  * doubles are printed with std::to_chars shortest round-trip
//    formatting, so parse(dump(x)) == x exactly — the property the
//    parallel-determinism tests rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace capbench::report {

class JsonValue {
public:
    using Array = std::vector<JsonValue>;
    /// Insertion-ordered; JSON objects with duplicate keys are rejected by
    /// the parser, so lookup by key is unambiguous.
    using Object = std::vector<std::pair<std::string, JsonValue>>;

    JsonValue() : value_(nullptr) {}
    JsonValue(std::nullptr_t) : value_(nullptr) {}
    JsonValue(bool b) : value_(b) {}
    JsonValue(double d) : value_(d) {}
    JsonValue(std::int64_t i) : value_(i) {}
    JsonValue(int i) : value_(static_cast<std::int64_t>(i)) {}
    JsonValue(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}
    JsonValue(const char* s) : value_(std::string(s)) {}
    JsonValue(std::string s) : value_(std::move(s)) {}
    JsonValue(Array a) : value_(std::move(a)) {}
    JsonValue(Object o) : value_(std::move(o)) {}

    [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
    [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
    [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(value_); }
    [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
    [[nodiscard]] bool is_number() const { return is_double() || is_int(); }
    [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
    [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(value_); }
    [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(value_); }

    /// Typed accessors; throw std::runtime_error on kind mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] std::int64_t as_int() const;
    /// Numeric accessor: returns doubles as-is and integers widened.
    [[nodiscard]] double as_double() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const Array& as_array() const;
    [[nodiscard]] const Object& as_object() const;

    /// Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const JsonValue* find(std::string_view key) const;
    /// Object member lookup; throws when absent or not an object.
    [[nodiscard]] const JsonValue& at(std::string_view key) const;

    /// Appends a member to an object value (throws on non-objects).
    void set(std::string key, JsonValue value);
    /// Appends an element to an array value (throws on non-arrays).
    void push_back(JsonValue value);

    bool operator==(const JsonValue& other) const { return value_ == other.value_; }
    bool operator!=(const JsonValue& other) const { return !(*this == other); }

    static JsonValue object() { return JsonValue{Object{}}; }
    static JsonValue array() { return JsonValue{Array{}}; }

private:
    std::variant<std::nullptr_t, bool, double, std::int64_t, std::string, Array, Object> value_;
};

/// Serializes with 2-space indentation when `indent` > 0, compact
/// otherwise.  Key order is the insertion order; doubles use shortest
/// round-trip formatting.
std::string dump_json(const JsonValue& value, int indent = 2);

/// Strict parser: rejects trailing garbage, duplicate object keys,
/// unescaped control characters and documents nested deeper than 256
/// levels.  Throws std::runtime_error with a byte offset on failure.
JsonValue parse_json(std::string_view text);

}  // namespace capbench::report
