#include "capbench/report/writer.hpp"

#include "capbench/core/capbench.hpp"

namespace capbench::report {

JsonValue JsonWriter::sut(const harness::SutRunResult& s) {
    JsonValue out = JsonValue::object();
    out.set("name", s.name);
    JsonValue apps = JsonValue::array();
    for (const double pct : s.per_app_capture_pct) apps.push_back(pct);
    out.set("per_app_capture_pct", std::move(apps));
    out.set("capture_worst_pct", s.capture_worst_pct);
    out.set("capture_avg_pct", s.capture_avg_pct);
    out.set("capture_best_pct", s.capture_best_pct);
    out.set("cpu_pct", s.cpu_pct);
    out.set("nic_ring_drops", s.nic_ring_drops);
    out.set("backlog_drops", s.backlog_drops);
    out.set("buffer_drops", s.buffer_drops);
    return out;
}

JsonValue JsonWriter::point(double x, const harness::RunResult& r) {
    JsonValue out = JsonValue::object();
    out.set("x", x);
    out.set("generated", r.generated);
    out.set("offered_mbps", r.offered_mbps);
    JsonValue suts = JsonValue::array();
    for (const auto& s : r.suts) suts.push_back(sut(s));
    out.set("suts", std::move(suts));
    return out;
}

JsonValue JsonWriter::document(const scenario::ScenarioResult& r) {
    JsonValue doc = JsonValue::object();
    doc.set("schema", kSchema);
    doc.set("capbench_version", kVersion);
    doc.set("id", r.id);
    doc.set("caption", r.caption);
    doc.set("x_label", r.x_label);
    doc.set("multi_app", r.multi_app);

    JsonValue config = JsonValue::object();
    config.set("packets", r.packets);
    config.set("reps", r.reps);
    config.set("base_seed", r.base_seed);
    config.set("jobs", r.jobs);
    doc.set("config", std::move(config));

    if (r.is_custom) {
        JsonValue tables = JsonValue::array();
        for (const auto& t : r.table.tables) {
            JsonValue table = JsonValue::object();
            table.set("title", t.title);
            JsonValue headers = JsonValue::array();
            for (const auto& h : t.headers) headers.push_back(h);
            table.set("headers", std::move(headers));
            JsonValue rows = JsonValue::array();
            for (const auto& row : t.rows) {
                JsonValue cells = JsonValue::array();
                for (const auto& cell : row) cells.push_back(cell);
                rows.push_back(std::move(cells));
            }
            table.set("rows", std::move(rows));
            tables.push_back(std::move(table));
        }
        doc.set("tables", std::move(tables));
        if (!r.table.notes.empty()) doc.set("notes", r.table.notes);
        return doc;
    }

    JsonValue variants = JsonValue::array();
    for (const auto& v : r.variants) {
        JsonValue variant = JsonValue::object();
        variant.set("name", v.name);
        variant.set("suffix", v.suffix);
        JsonValue points = JsonValue::array();
        for (const auto& p : v.points) points.push_back(point(p.x, p.result));
        variant.set("points", std::move(points));
        variants.push_back(std::move(variant));
    }
    doc.set("variants", std::move(variants));
    if (!r.postscript.empty()) doc.set("notes", r.postscript);
    return doc;
}

JsonValue JsonWriter::suite(std::vector<JsonValue> documents) {
    JsonValue doc = JsonValue::object();
    doc.set("schema", kSuiteSchema);
    doc.set("capbench_version", kVersion);
    JsonValue results = JsonValue::array();
    for (auto& d : documents) results.push_back(std::move(d));
    doc.set("results", std::move(results));
    return doc;
}

std::string JsonWriter::serialize(const JsonValue& v) { return dump_json(v, 2) + "\n"; }

}  // namespace capbench::report
