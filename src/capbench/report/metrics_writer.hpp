// capbench.metrics.v1: the observability companion document to the
// scenario JSON.  Emitted when a run collects lifecycle metrics
// (`capbench_figures --metrics=<file>`); one document per scenario, with
// per-sweep-point drop attribution, latency summaries, cpusage/trimusage
// results and the counter-registry snapshot.  Like every capbench report
// it is byte-stable across `--jobs` and event-queue backends.
#pragma once

#include <string>
#include <vector>

#include "capbench/obs/metrics.hpp"
#include "capbench/obs/timeseries.hpp"
#include "capbench/report/json.hpp"
#include "capbench/scenario/scenario.hpp"
#include "capbench/sim/stats.hpp"

namespace capbench::report {

class MetricsWriter {
public:
    /// Schema identifier of a single scenario metrics document.
    static constexpr const char* kSchema = "capbench.metrics.v1";
    /// Schema identifier of the multi-scenario suite (--metrics output).
    static constexpr const char* kSuiteSchema = "capbench.metrics-suite.v1";

    /// {count,min,max,mean,p50,p95,p99} of a sample set (all 0 when empty).
    [[nodiscard]] static JsonValue summary(const sim::SampleSet::Summary& s);
    /// One capture app: delivered, drop buckets, latency summaries.
    [[nodiscard]] static JsonValue app(const obs::AppMetrics& a);
    /// One SUT: offered/drops, NIC latency, cpusage + in-process trimusage.
    [[nodiscard]] static JsonValue sut(const obs::SutMetrics& s);
    /// One sweep point's RunMetrics (plus its x value).
    [[nodiscard]] static JsonValue point(double x, const obs::RunMetrics& m);
    /// The whole per-scenario metrics document.  Custom (table-only)
    /// scenarios and scenarios without collected metrics yield points: [].
    [[nodiscard]] static JsonValue document(const scenario::ScenarioResult& r);
    /// Wraps per-scenario documents into a suite document.  With a
    /// non-null finalized TimeSeries the suite also carries an
    /// "overload_episodes" block (the detector's coalesced dropping runs
    /// of the designated sampled run).
    [[nodiscard]] static JsonValue suite(std::vector<JsonValue> documents,
                                         const obs::TimeSeries* timeseries = nullptr);

    /// Pretty serialization (2-space indent, trailing newline).
    [[nodiscard]] static std::string serialize(const JsonValue& v);
};

}  // namespace capbench::report
