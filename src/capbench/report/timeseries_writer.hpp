// capbench.timeseries.v1: the JSON rendering of a run's interval
// telemetry (obs/timeseries.hpp), emitted by `capbench_figures
// --timeseries=<file>`.  One document per run: raw delta/gauge columns,
// the frozen aggregates they telescope to (so consumers can re-check the
// conservation invariant offline), the per-interval classification and
// the coalesced overload episodes.  Byte-stable across `--jobs` and
// event-queue backends like every capbench report.
#pragma once

#include <string>

#include "capbench/obs/timeseries.hpp"
#include "capbench/report/json.hpp"

namespace capbench::report {

class TimeseriesWriter {
public:
    /// Schema identifier of a time-series document.
    static constexpr const char* kSchema = "capbench.timeseries.v1";

    /// The whole document.  The TimeSeries must be finalized
    /// (finalize_against) so the totals blocks are populated; throws
    /// std::logic_error otherwise.
    [[nodiscard]] static JsonValue document(const obs::TimeSeries& ts, const std::string& id);

    /// Pretty serialization (2-space indent, trailing newline).
    [[nodiscard]] static std::string serialize(const JsonValue& v);
};

/// Gnuplot export: writes <dir>/<id>_timeseries.dat (integer columns:
/// time plus per-SUT ring/buffer occupancy, delivered and overload-loss
/// deltas) and <dir>/<id>_timeseries.gp, a two-panel multiplot script —
/// occupancy-vs-time on top, interval rates below.
void write_timeseries_gnuplot(const std::string& dir, const std::string& id,
                              const obs::TimeSeries& ts);

}  // namespace capbench::report
