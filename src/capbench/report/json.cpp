#include "capbench/report/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace capbench::report {

namespace {

[[noreturn]] void kind_error(const char* wanted) {
    throw std::runtime_error(std::string("json: value is not ") + wanted);
}

void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_double(std::string& out, double d) {
    if (!std::isfinite(d)) {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        out += "null";
        return;
    }
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, d);
    out.append(buf, res.ptr);
    // Keep doubles distinguishable from integers on re-parse.
    if (out.find_first_of(".eE", out.size() - static_cast<std::size_t>(res.ptr - buf)) ==
        std::string::npos)
        out += ".0";
}

void dump_value(std::string& out, const JsonValue& v, int indent, int depth) {
    const auto newline = [&](int level) {
        if (indent <= 0) return;
        out += '\n';
        out.append(static_cast<std::size_t>(level * indent), ' ');
    };
    if (v.is_null()) {
        out += "null";
    } else if (v.is_bool()) {
        out += v.as_bool() ? "true" : "false";
    } else if (v.is_int()) {
        out += std::to_string(v.as_int());
    } else if (v.is_double()) {
        append_double(out, v.as_double());
    } else if (v.is_string()) {
        append_escaped(out, v.as_string());
    } else if (v.is_array()) {
        const auto& a = v.as_array();
        if (a.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (i > 0) out += ',';
            newline(depth + 1);
            dump_value(out, a[i], indent, depth + 1);
        }
        newline(depth);
        out += ']';
    } else {
        const auto& o = v.as_object();
        if (o.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (std::size_t i = 0; i < o.size(); ++i) {
            if (i > 0) out += ',';
            newline(depth + 1);
            append_escaped(out, o[i].first);
            out += indent > 0 ? ": " : ":";
            dump_value(out, o[i].second, indent, depth + 1);
        }
        newline(depth);
        out += '}';
    }
}

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue parse_document() {
        JsonValue v = parse_value(0);
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return v;
    }

private:
    static constexpr int kMaxDepth = 256;

    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " +
                                 what);
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue parse_value(int depth) {
        if (depth > kMaxDepth) fail("document nested too deeply");
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object(depth);
            case '[': return parse_array(depth);
            case '"': return JsonValue{parse_string()};
            case 't':
                if (consume_literal("true")) return JsonValue{true};
                fail("invalid literal");
            case 'f':
                if (consume_literal("false")) return JsonValue{false};
                fail("invalid literal");
            case 'n':
                if (consume_literal("null")) return JsonValue{nullptr};
                fail("invalid literal");
            default: return parse_number();
        }
    }

    JsonValue parse_object(int depth) {
        expect('{');
        JsonValue::Object members;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return JsonValue{std::move(members)};
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            for (const auto& [existing, unused] : members) {
                (void)unused;
                if (existing == key) fail("duplicate object key '" + key + "'");
            }
            skip_ws();
            expect(':');
            members.emplace_back(std::move(key), parse_value(depth + 1));
            skip_ws();
            const char next = peek();
            if (next == ',') {
                ++pos_;
                continue;
            }
            if (next == '}') {
                ++pos_;
                return JsonValue{std::move(members)};
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue parse_array(int depth) {
        expect('[');
        JsonValue::Array elements;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return JsonValue{std::move(elements)};
        }
        for (;;) {
            elements.push_back(parse_value(depth + 1));
            skip_ws();
            const char next = peek();
            if (next == ',') {
                ++pos_;
                continue;
            }
            if (next == ']') {
                ++pos_;
                return JsonValue{std::move(elements)};
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': out += parse_unicode_escape(); break;
                default: fail("invalid escape");
            }
        }
    }

    std::string parse_unicode_escape() {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        // UTF-8 encode the BMP code point (surrogate pairs are not needed
        // for anything capbench emits; reject them outright).
        if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escapes unsupported");
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        bool is_double = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
                is_double = true;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string_view token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-") fail("invalid number");
        if (!is_double) {
            std::int64_t i = 0;
            const auto res = std::from_chars(token.data(), token.data() + token.size(), i);
            if (res.ec == std::errc{} && res.ptr == token.data() + token.size())
                return JsonValue{i};
            // fall through: out-of-range integers become doubles
        }
        double d = 0.0;
        const auto res = std::from_chars(token.data(), token.data() + token.size(), d);
        if (res.ec != std::errc{} || res.ptr != token.data() + token.size())
            fail("invalid number '" + std::string(token) + "'");
        return JsonValue{d};
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
    if (!is_bool()) kind_error("a bool");
    return std::get<bool>(value_);
}

std::int64_t JsonValue::as_int() const {
    if (!is_int()) kind_error("an integer");
    return std::get<std::int64_t>(value_);
}

double JsonValue::as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
    if (!is_double()) kind_error("a number");
    return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
    if (!is_string()) kind_error("a string");
    return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
    if (!is_array()) kind_error("an array");
    return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
    if (!is_object()) kind_error("an object");
    return std::get<Object>(value_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : std::get<Object>(value_))
        if (k == key) return &v;
    return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
    const JsonValue* v = find(key);
    if (v == nullptr)
        throw std::runtime_error("json: missing object member '" + std::string(key) + "'");
    return *v;
}

void JsonValue::set(std::string key, JsonValue value) {
    if (!is_object()) kind_error("an object");
    std::get<Object>(value_).emplace_back(std::move(key), std::move(value));
}

void JsonValue::push_back(JsonValue value) {
    if (!is_array()) kind_error("an array");
    std::get<Array>(value_).push_back(std::move(value));
}

std::string dump_json(const JsonValue& value, int indent) {
    std::string out;
    dump_value(out, value, indent, 0);
    return out;
}

JsonValue parse_json(std::string_view text) { return Parser{text}.parse_document(); }

}  // namespace capbench::report
