// Performance-report layer: the capbench.perf.v1 document emitted by
// bench/capbench_perf.
//
// Unlike capbench.scenario.v1 (simulation results, bit-stable across
// machines), a perf document records wall-clock throughput of the
// simulator itself on the machine at hand: events per second and simulated
// packets per second for the macro scenarios, plus loop rates for the
// micro hot paths.  The SCHEMA is stable — field names and shapes may only
// change with a version bump — but the VALUES are machine-dependent, so
// regression tracking compares documents from the same host (see
// EXPERIMENTS.md, "Performance baseline methodology").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capbench/report/json.hpp"

namespace capbench::report {

/// Schema identifier of a perf document.
inline constexpr const char* kPerfSchema = "capbench.perf.v1";

/// One timed case.  Macro cases run a whole measurement cycle and report
/// both simulator events and simulated packets per wall second; micro
/// cases time a single hot loop and report iterations as `events`.
struct PerfCase {
    std::string name;
    std::string kind;              // "macro" or "micro"
    double wall_seconds = 0.0;
    std::uint64_t events = 0;      // simulator events (macro) / iterations (micro)
    std::uint64_t sim_packets = 0; // generated packets (macro only)
    double events_per_sec = 0.0;
    double packets_per_sec = 0.0;  // macro only (0 for micro)
};

struct PerfReport {
    std::uint64_t packets_per_macro_run = 0;
    std::uint64_t seed = 0;
    bool quick = false;
    std::string build_type;        // CMAKE_BUILD_TYPE baked into the binary
    std::vector<PerfCase> cases;
};

/// Builds the capbench.perf.v1 document.
[[nodiscard]] JsonValue perf_document(const PerfReport& report);

/// Validates shape and schema tag of a perf document; throws
/// std::runtime_error naming the first offending field.
void validate_perf_document(const JsonValue& doc);

}  // namespace capbench::report
