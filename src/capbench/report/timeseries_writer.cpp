#include "capbench/report/timeseries_writer.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "capbench/core/capbench.hpp"
#include "capbench/obs/metrics.hpp"

namespace capbench::report {

namespace {

JsonValue series_array(const obs::Series& s) {
    JsonValue out = JsonValue::array();
    for (std::size_t i = 0; i < s.size(); ++i) out.push_back(s.at(i));
    return out;
}

/// A monotone counter column: the frozen aggregate plus its deltas.
JsonValue counter(std::uint64_t total, const obs::Series& deltas) {
    JsonValue out = JsonValue::object();
    out.set("total", total);
    out.set("deltas", series_array(deltas));
    return out;
}

const char* class_name(std::int64_t cls) {
    switch (static_cast<obs::IntervalClass>(cls)) {
        case obs::IntervalClass::kHealthy: return "healthy";
        case obs::IntervalClass::kSaturated: return "saturated";
        case obs::IntervalClass::kDropping: return "dropping";
    }
    return "healthy";
}

JsonValue episode(const obs::OverloadEpisode& ep) {
    JsonValue out = JsonValue::object();
    out.set("start_ns", ep.start_ns);
    out.set("end_ns", ep.end_ns);
    out.set("first_interval", static_cast<std::uint64_t>(ep.first_interval));
    out.set("intervals", static_cast<std::uint64_t>(ep.intervals));
    out.set("dominant_site", ep.dominant_site);
    out.set("dropped", ep.dropped);
    out.set("peak_occupancy_pct", ep.peak_occupancy_pct);
    return out;
}

JsonValue sut(const obs::SutSeries& s, const obs::TimeSeries::SutTotals& totals) {
    JsonValue out = JsonValue::object();
    out.set("name", s.name);
    out.set("nic_ring_capacity", s.nic_ring_capacity);

    // SUT-level drop buckets.  The aggregates are mirrored into every
    // app's AppMetrics, so app 0's totals are THE totals.
    JsonValue drops = JsonValue::object();
    drops.set(obs::kDropSites[0].name, counter(totals.apps[0].drops[0], s.drop_nic_ring));
    drops.set(obs::kDropSites[1].name, counter(totals.apps[0].drops[1], s.drop_backlog));
    out.set("drops", std::move(drops));

    JsonValue queues = JsonValue::array();
    for (const obs::QueueSeries& q : s.queues) {
        JsonValue queue = JsonValue::object();
        queue.set("ring_occupancy", series_array(q.ring_occupancy));
        queues.push_back(std::move(queue));
    }
    out.set("queues", std::move(queues));

    JsonValue cpus = JsonValue::array();
    for (const obs::CpuSeries& c : s.cpus) {
        JsonValue cpu = JsonValue::object();
        cpu.set("backlog_len", series_array(c.backlog_len));
        cpu.set("user_ns", series_array(c.user_ns));
        cpu.set("system_ns", series_array(c.system_ns));
        cpu.set("interrupt_ns", series_array(c.interrupt_ns));
        cpu.set("idle_ns", series_array(c.idle_ns));
        cpus.push_back(std::move(cpu));
    }
    out.set("cpus", std::move(cpus));

    JsonValue apps = JsonValue::array();
    for (std::size_t a = 0; a < s.apps.size(); ++a) {
        const obs::AppSeries& as = s.apps[a];
        const obs::TimeSeries::AppTotals& at = totals.apps[a];
        JsonValue app = JsonValue::object();
        app.set("delivered", counter(at.delivered, as.delivered));
        JsonValue adrops = JsonValue::object();
        adrops.set(obs::kDropSites[2].name, counter(at.drops[2], as.drop_verdict));
        adrops.set(obs::kDropSites[3].name, counter(at.drops[3], as.drop_bpf_store));
        adrops.set(obs::kDropSites[4].name, counter(at.drops[4], as.drop_fanout));
        adrops.set(obs::kDropSites[5].name, counter(at.drops[5], as.drop_disk_spill));
        adrops.set(obs::kDropSites[6].name, counter(at.drops[6], as.drain));
        app.set("drops", std::move(adrops));
        app.set("buffer_capacity", s.app_buffer_capacity[a]);
        app.set("buffer_occupancy", series_array(as.buffer_occupancy));
        app.set("disk_ring_capacity", s.app_disk_ring_capacity[a]);
        app.set("disk_ring_occupancy", series_array(as.disk_ring));
        apps.push_back(std::move(app));
    }
    out.set("apps", std::move(apps));

    JsonValue classification = JsonValue::array();
    for (std::size_t k = 0; k < s.classification.size(); ++k)
        classification.push_back(class_name(s.classification.at(k)));
    out.set("classification", std::move(classification));

    JsonValue episodes = JsonValue::array();
    for (const obs::OverloadEpisode& ep : s.episodes) episodes.push_back(episode(ep));
    out.set("episodes", std::move(episodes));
    return out;
}

/// Sum of the app columns of one SUT at interval k, for the .dat export.
std::int64_t delivered_at(const obs::SutSeries& s, std::size_t k) {
    std::int64_t sum = 0;
    for (const obs::AppSeries& a : s.apps) sum += a.delivered.at(k);
    return sum;
}

std::int64_t losses_at(const obs::SutSeries& s, std::size_t k) {
    std::int64_t sum = s.drop_nic_ring.at(k) + s.drop_backlog.at(k);
    for (const obs::AppSeries& a : s.apps)
        sum += a.drop_bpf_store.at(k) + a.drop_disk_spill.at(k);
    return sum;
}

std::int64_t ring_occupancy_at(const obs::SutSeries& s, std::size_t k) {
    std::int64_t occ = 0;
    for (const obs::QueueSeries& q : s.queues)
        occ = std::max(occ, q.ring_occupancy.at(k));
    return occ;
}

std::int64_t buffer_occupancy_at(const obs::SutSeries& s, std::size_t k) {
    std::int64_t occ = 0;
    for (const obs::AppSeries& a : s.apps) occ = std::max(occ, a.buffer_occupancy.at(k));
    return occ;
}

}  // namespace

JsonValue TimeseriesWriter::document(const obs::TimeSeries& ts, const std::string& id) {
    if (!ts.finalized)
        throw std::logic_error("TimeseriesWriter: TimeSeries not finalized");
    JsonValue doc = JsonValue::object();
    doc.set("schema", kSchema);
    doc.set("capbench_version", kVersion);
    doc.set("id", id);
    doc.set("sample_interval_ns", ts.interval.ns());
    doc.set("samples", static_cast<std::uint64_t>(ts.sample_count()));
    doc.set("time_ns", series_array(ts.time_ns));
    doc.set("generated", counter(ts.generated_total, ts.generated));
    JsonValue suts = JsonValue::array();
    for (std::size_t s = 0; s < ts.suts.size(); ++s)
        suts.push_back(sut(ts.suts[s], ts.totals[s]));
    doc.set("suts", std::move(suts));
    return doc;
}

std::string TimeseriesWriter::serialize(const JsonValue& v) { return dump_json(v, 2) + "\n"; }

void write_timeseries_gnuplot(const std::string& dir, const std::string& id,
                              const obs::TimeSeries& ts) {
    const std::string data_path = dir + "/" + id + "_timeseries.dat";
    const std::string script_path = dir + "/" + id + "_timeseries.gp";

    std::ofstream data(data_path);
    data << "# time_ns generated";
    for (const obs::SutSeries& s : ts.suts)
        data << " " << s.name << ".ring " << s.name << ".buffer " << s.name << ".delivered "
             << s.name << ".losses";
    data << "\n";
    for (std::size_t k = 0; k < ts.sample_count(); ++k) {
        data << ts.time_ns.at(k) << " " << ts.generated.at(k);
        for (const obs::SutSeries& s : ts.suts)
            data << " " << ring_occupancy_at(s, k) << " " << buffer_occupancy_at(s, k) << " "
                 << delivered_at(s, k) << " " << losses_at(s, k);
        data << "\n";
    }

    std::ofstream gp(script_path);
    gp << "# Interval telemetry panels for " << id << " (capbench.timeseries.v1)\n";
    gp << "set terminal pngcairo size 1200,800\n";
    gp << "set output '" << id << "_timeseries.png'\n";
    gp << "set multiplot layout 2,1\n";
    gp << "set key outside right\n";
    gp << "set xlabel 'Time [s]'\n";
    gp << "set ylabel 'Occupancy [entries/bytes]'\n";
    gp << "set title 'Ring / buffer occupancy'\n";
    gp << "plot";
    for (std::size_t s = 0; s < ts.suts.size(); ++s) {
        const std::size_t base = 3 + s * 4;  // first SUT column in the .dat
        if (s > 0) gp << ",";
        gp << " '" << id << "_timeseries.dat' using ($1/1e9):" << base << " with lines title '"
           << ts.suts[s].name << " ring'";
        gp << ", '" << id << "_timeseries.dat' using ($1/1e9):" << base + 1
           << " with lines title '" << ts.suts[s].name << " buffer'";
    }
    gp << "\n";
    gp << "set ylabel 'Packets per interval'\n";
    gp << "set title 'Interval rates'\n";
    gp << "plot '" << id << "_timeseries.dat' using ($1/1e9):2 with lines title 'generated'";
    for (std::size_t s = 0; s < ts.suts.size(); ++s) {
        const std::size_t base = 3 + s * 4;
        gp << ", '" << id << "_timeseries.dat' using ($1/1e9):" << base + 2
           << " with lines title '" << ts.suts[s].name << " delivered'";
        gp << ", '" << id << "_timeseries.dat' using ($1/1e9):" << base + 3
           << " with lines title '" << ts.suts[s].name << " losses'";
    }
    gp << "\n";
    gp << "unset multiplot\n";
}

}  // namespace capbench::report
