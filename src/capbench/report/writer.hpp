// The structured results layer: one schema-stable JSON document per
// scenario (config, per-point RunResult, per-SUT drops/CPU, version/seed
// metadata), so benches, CI and regression tracking all consume the same
// artifact.  Schema changes must bump kSchema and update
// tests/scenario_test.cpp.
#pragma once

#include <string>
#include <vector>

#include "capbench/report/json.hpp"
#include "capbench/scenario/scenario.hpp"

namespace capbench::report {

class JsonWriter {
public:
    /// Schema identifier of a single scenario document.
    static constexpr const char* kSchema = "capbench.scenario.v1";
    /// Schema identifier of a multi-scenario suite document (--json).
    static constexpr const char* kSuiteSchema = "capbench.figures.v1";

    /// One per-SUT result object (name, capture stats, CPU, drop counters).
    [[nodiscard]] static JsonValue sut(const harness::SutRunResult& s);
    /// One sweep point: x plus the full RunResult.
    [[nodiscard]] static JsonValue point(double x, const harness::RunResult& r);
    /// The whole per-scenario document.
    [[nodiscard]] static JsonValue document(const scenario::ScenarioResult& r);
    /// Wraps per-scenario documents into a suite document.
    [[nodiscard]] static JsonValue suite(std::vector<JsonValue> documents);

    /// Pretty serialization (2-space indent, trailing newline).
    [[nodiscard]] static std::string serialize(const JsonValue& v);
};

}  // namespace capbench::report
