#include "capbench/load/loads.hpp"

#include <algorithm>

#include "capbench/load/minideflate.hpp"

namespace capbench::load {

hostsim::Work per_packet_app_base() {
    // Callback dispatch, counters, header touch.
    return hostsim::Work{.cycles = 700, .mem_misses = 2.5};
}

hostsim::Work per_packet_load_work(const AppLoad& cfg, std::uint32_t caplen) {
    hostsim::Work w;
    if (cfg.memcpy_count > 0) {
        // n sequential memcpy() calls over the packet (Section 6.3.4):
        // bandwidth-bound on the copy path plus a small per-call overhead.
        w.copy_bytes += static_cast<double>(cfg.memcpy_count) * caplen;
        w.cycles += 45.0 * cfg.memcpy_count;
    }
    if (cfg.compress_level >= 0) {
        w.cycles += compression_cycles_per_byte(cfg.compress_level) * caplen;
        w.cycles += 350.0;  // gzwrite() call overhead
    }
    if (cfg.pipe_to_gzip) {
        // Copy into the FIFO; the write() syscall is charged per batch by
        // the application loop.
        w.copy_bytes += caplen;
        w.cycles += 120.0;
    }
    return w;
}

bool FifoPipe::write(std::uint64_t bytes, hostsim::Thread& writer) {
    // Pipe wakeups take the scheduler fast path (both ends are hot in
    // cache; no device latency), hence wake_now.
    if (buffered_ + bytes <= capacity_) {
        buffered_ += bytes;
        if (waiting_reader_ != nullptr) {
            machine_->wake_now(*waiting_reader_);
            waiting_reader_ = nullptr;
        }
        return true;
    }
    blocked_writer_ = &writer;
    blocked_bytes_ = bytes;
    if (waiting_reader_ != nullptr) {
        machine_->wake_now(*waiting_reader_);
        waiting_reader_ = nullptr;
    }
    return false;
}

std::uint64_t FifoPipe::read(std::uint64_t max_bytes, hostsim::Thread& reader) {
    if (buffered_ == 0) {
        waiting_reader_ = &reader;
        return 0;
    }
    const std::uint64_t taken = std::min(buffered_, max_bytes);
    buffered_ -= taken;
    if (blocked_writer_ != nullptr && buffered_ + blocked_bytes_ <= capacity_) {
        buffered_ += blocked_bytes_;
        machine_->wake_now(*blocked_writer_);
        blocked_writer_ = nullptr;
        blocked_bytes_ = 0;
    }
    return taken;
}

void GzipThread::main() { loop(); }

void GzipThread::loop() {
    const std::uint64_t taken = pipe_->read(64 * 1024, *this);
    if (taken == 0) {
        block([this] { loop(); });
        return;
    }
    bytes_compressed_ += taken;
    hostsim::Work w;
    w.cycles = compression_cycles_per_byte(level_) * static_cast<double>(taken) + 350.0;
    w.copy_bytes = static_cast<double>(taken);
    exec(w, hostsim::CpuState::kUser, [this] { loop(); });
}

}  // namespace capbench::load
