// Per-packet application loads (Section 6.3.4/6.3.5) and the FIFO pipe used
// for the "pipe to gzip" experiment (Figure 6.12).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "capbench/capture/os.hpp"
#include "capbench/hostsim/machine.hpp"

namespace capbench::load {

/// What the capture application does with each packet beyond counting it
/// (the createDist capture-mode options -c / -z / -t / -tsl).
struct AppLoad {
    /// Extra memcpy() calls per packet (-c): Figure 6.10 uses 50, B.2 25.
    int memcpy_count = 0;
    /// gzwrite() compression level (-z): Figure 6.11 uses 3, B.3 uses 9.
    /// Negative disables compression.
    int compress_level = -1;
    /// Bytes of every packet written to disk (-tsl): 76 for the header
    /// traces of Figure 6.14; 0 disables the trace file.
    std::uint32_t disk_bytes_per_packet = 0;
    /// Pipe whole packets to a separate gzip process (Figure 6.12).
    bool pipe_to_gzip = false;
    /// gzip level used by the pipe consumer.
    int pipe_gzip_level = 3;
};

/// CPU work one packet of `size` bytes costs the application given `cfg`
/// (excluding the fetch/syscall work, which the stack endpoint reports, and
/// excluding disk/pipe waiting, which is modelled by blocking).
hostsim::Work per_packet_load_work(const AppLoad& cfg, std::uint32_t caplen);

/// Base per-packet application cost: libpcap callback dispatch plus the
/// statistics bookkeeping the measurement application performs.
hostsim::Work per_packet_app_base();

/// Bounded byte FIFO connecting the capture process to the gzip process.
class FifoPipe {
public:
    FifoPipe(hostsim::Machine& machine, std::uint64_t capacity_bytes)
        : machine_(&machine), capacity_(capacity_bytes) {}

    /// Appends `bytes`; returns false (and remembers the writer for a
    /// wakeup) when the pipe is full — the writer must block().
    bool write(std::uint64_t bytes, hostsim::Thread& writer);

    /// Removes up to `max_bytes`; 0 means empty (reader should block).
    std::uint64_t read(std::uint64_t max_bytes, hostsim::Thread& reader);

    [[nodiscard]] std::uint64_t buffered() const { return buffered_; }
    [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

private:
    hostsim::Machine* machine_;
    std::uint64_t capacity_;
    std::uint64_t buffered_ = 0;
    hostsim::Thread* blocked_writer_ = nullptr;
    std::uint64_t blocked_bytes_ = 0;
    hostsim::Thread* waiting_reader_ = nullptr;
};

/// The gzip process of the pipe experiment: drains the FIFO and compresses.
class GzipThread final : public hostsim::Thread {
public:
    GzipThread(FifoPipe& pipe, int level)
        : hostsim::Thread("gzip"), pipe_(&pipe), level_(level) {}

    void main() override;

    [[nodiscard]] std::uint64_t bytes_compressed() const { return bytes_compressed_; }

private:
    void loop();

    FifoPipe* pipe_;
    int level_;
    std::uint64_t bytes_compressed_ = 0;
};

}  // namespace capbench::load
