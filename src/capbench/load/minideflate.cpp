#include "capbench/load/minideflate.hpp"

#include <algorithm>
#include <array>
#include <mutex>
#include <stdexcept>

namespace capbench::load {

namespace {

constexpr std::size_t kHashBits = 13;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 258;
constexpr std::size_t kMaxDistance = 0xFFFF;

std::uint32_t hash3(std::span<const std::byte> in, std::size_t pos) {
    const auto a = std::to_integer<std::uint32_t>(in[pos]);
    const auto b = std::to_integer<std::uint32_t>(in[pos + 1]);
    const auto c = std::to_integer<std::uint32_t>(in[pos + 2]);
    return ((a << 10) ^ (b << 5) ^ c) & (kHashSize - 1);
}

std::size_t chain_for_level(int level) {
    // Geometric growth like deflate's configuration table.
    static constexpr std::array<std::size_t, 10> kChains = {0, 4, 8, 16, 32, 48, 96, 192, 384, 1024};
    return kChains[static_cast<std::size_t>(level)];
}

void emit_literal_run(std::vector<std::byte>& out, std::span<const std::byte> in,
                      std::size_t start, std::size_t len) {
    while (len > 0) {
        const std::size_t chunk = std::min<std::size_t>(len, 256);
        out.push_back(std::byte{0x00});
        out.push_back(static_cast<std::byte>(chunk - 1));
        out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(start),
                   in.begin() + static_cast<std::ptrdiff_t>(start + chunk));
        start += chunk;
        len -= chunk;
    }
}

}  // namespace

MiniDeflate::MiniDeflate(int level) : level_(level), max_chain_(0) {
    if (level < 0 || level > 9) throw std::invalid_argument("MiniDeflate: level must be 0..9");
    max_chain_ = chain_for_level(level);
}

CompressResult MiniDeflate::compress(std::span<const std::byte> input) const {
    CompressResult result;
    if (level_ == 0 || input.size() < kMinMatch) {
        // Stored mode.
        emit_literal_run(result.output, input, 0, input.size());
        result.literals = input.size();
        return result;
    }

    std::vector<std::int32_t> head(kHashSize, -1);
    std::vector<std::int32_t> prev(input.size(), -1);
    std::size_t literal_start = 0;
    std::size_t pos = 0;

    const auto flush_literals = [&](std::size_t upto) {
        if (upto > literal_start) {
            emit_literal_run(result.output, input, literal_start, upto - literal_start);
            result.literals += upto - literal_start;
        }
    };

    while (pos + kMinMatch <= input.size()) {
        const std::uint32_t h = hash3(input, pos);
        std::size_t best_len = 0;
        std::size_t best_dist = 0;
        std::int32_t candidate = head[h];
        std::size_t probes = 0;
        while (candidate >= 0 && probes < max_chain_) {
            ++probes;
            ++result.search_steps;
            const auto cpos = static_cast<std::size_t>(candidate);
            if (cpos >= pos || pos - cpos > kMaxDistance) break;
            std::size_t len = 0;
            const std::size_t limit = std::min(kMaxMatch, input.size() - pos);
            while (len < limit && input[cpos + len] == input[pos + len]) ++len;
            if (len > best_len) {
                best_len = len;
                best_dist = pos - cpos;
                if (len >= limit) break;
            }
            candidate = prev[cpos];
        }

        if (best_len >= kMinMatch) {
            flush_literals(pos);
            // Emit the match in token-sized chunks; a sub-minimum tail is
            // left for the next iteration (it becomes literals or part of
            // the next match).
            std::size_t emitted = 0;
            std::size_t rem = best_len;
            while (rem >= kMinMatch) {
                const std::size_t chunk = std::min<std::size_t>(rem, 255 + kMinMatch);
                result.output.push_back(std::byte{0x01});
                result.output.push_back(static_cast<std::byte>(chunk - kMinMatch));
                result.output.push_back(static_cast<std::byte>(best_dist & 0xFF));
                result.output.push_back(static_cast<std::byte>((best_dist >> 8) & 0xFF));
                rem -= chunk;
                emitted += chunk;
            }
            ++result.matches;
            // Insert hash entries for the emitted region so later positions
            // can match into it.
            const std::size_t end = pos + emitted;
            for (std::size_t p = pos; p < end && p + kMinMatch <= input.size(); ++p) {
                const std::uint32_t hh = hash3(input, p);
                prev[p] = head[hh];
                head[hh] = static_cast<std::int32_t>(p);
            }
            pos = end;
            literal_start = end;
        } else {
            prev[pos] = head[h];
            head[h] = static_cast<std::int32_t>(pos);
            ++pos;
        }
    }
    flush_literals(input.size());
    return result;
}

std::vector<std::byte> MiniDeflate::decompress(std::span<const std::byte> input) {
    std::vector<std::byte> out;
    std::size_t pos = 0;
    while (pos < input.size()) {
        const auto token = std::to_integer<std::uint8_t>(input[pos]);
        if (token == 0x00) {
            if (pos + 2 > input.size()) throw std::runtime_error("minideflate: truncated literal");
            const std::size_t len = std::to_integer<std::uint8_t>(input[pos + 1]) + 1u;
            pos += 2;
            if (pos + len > input.size()) throw std::runtime_error("minideflate: truncated literal");
            out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
                       input.begin() + static_cast<std::ptrdiff_t>(pos + len));
            pos += len;
        } else if (token == 0x01) {
            if (pos + 4 > input.size()) throw std::runtime_error("minideflate: truncated match");
            const std::size_t len = std::to_integer<std::uint8_t>(input[pos + 1]) + kMinMatch;
            const std::size_t dist = std::to_integer<std::uint8_t>(input[pos + 2]) |
                                     (std::to_integer<std::uint8_t>(input[pos + 3]) << 8);
            pos += 4;
            if (dist == 0 || dist > out.size())
                throw std::runtime_error("minideflate: bad match distance");
            for (std::size_t i = 0; i < len; ++i) out.push_back(out[out.size() - dist]);
        } else {
            throw std::runtime_error("minideflate: unknown token");
        }
    }
    return out;
}

double compression_cycles_per_byte(int level) {
    if (level < 0 || level > 9) throw std::invalid_argument("compression level must be 0..9");
    static std::array<double, 10> cache{};
    static std::once_flag once;
    std::call_once(once, [] {
        // Deterministic corpus: a repeated 64-byte template with sparse
        // random mutations.  The mutations keep matches short of the
        // maximum, so deeper hash-chain search (higher levels) keeps
        // probing for better matches -- the same speed/ratio trade-off
        // deflate exhibits (measured here: ~8x more probes at level 9 than
        // at level 3).
        std::vector<std::byte> corpus(64 * 1024);
        std::uint32_t state = 0x12345678;
        std::array<std::byte, 64> tmpl{};
        for (auto& b : tmpl) {
            state = state * 1664525u + 1013904223u;
            b = static_cast<std::byte>(state >> 24);
        }
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            state = state * 1664525u + 1013904223u;
            corpus[i] = ((state >> 20) % 24 == 0) ? static_cast<std::byte>(state >> 24)
                                                  : tmpl[i % 64];
        }
        for (int lv = 0; lv <= 9; ++lv) {
            const auto r = MiniDeflate{lv}.compress(corpus);
            // Cost model: scan cost per byte + probe cost per search step +
            // output formatting cost, expressed in CPU cycles.
            const double bytes = static_cast<double>(corpus.size());
            const double cpb = 14.0 + 9.5 * static_cast<double>(r.search_steps) / bytes +
                               3.0 * static_cast<double>(r.output.size()) / bytes;
            cache[static_cast<std::size_t>(lv)] = cpb;
        }
    });
    return cache[static_cast<std::size_t>(level)];
}

}  // namespace capbench::load
