// Capture-to-disk writer pipeline (exact-capture style).
//
// exact-capture splits the hot listener thread from a cold writer thread,
// joined by a fixed-size lock-free "bring" ring: the listener only stamps a
// record descriptor and pushes it; the writer drains descriptors in batches
// and pays the syscall + per-byte cost.  We mirror that split inside the
// host simulation: the capture application offers arena-backed `RecordRef`s
// (a PacketPtr keeps the payload alive — no byte staging) into a `BringRing`
// and a `DiskWriterThread` drains them, charges `DiskModel::write_work` off
// the capture thread, blocks on disk back-pressure, and optionally streams
// each record through the zero-copy `pcap::FileWriter` path.
//
// When the ring is full, the configured `SpillPolicy` decides: `kBlock`
// back-pressures the capture thread (offer() returns false, the producer
// blocks and is woken when a slot frees), `kDropNewest`/`kDropOldest` spill
// a record and count it — those spills feed the `disk_spill` drop bucket so
// `delivered + Σdrops == generated` stays an exact identity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capbench/hostsim/machine.hpp"
#include "capbench/load/disk.hpp"
#include "capbench/net/packet.hpp"
#include "capbench/sim/time.hpp"

namespace capbench::capture {
struct OsSpec;
}
namespace capbench::obs {
class AppObserver;
}
namespace capbench::pcap {
class FileWriter;
}

namespace capbench::load {

enum class SpillPolicy : std::uint8_t {
    kBlock,       // back-pressure the capture thread (lossless)
    kDropNewest,  // spill the incoming record
    kDropOldest,  // evict the oldest queued record, keep the incoming one
};

[[nodiscard]] const char* to_string(SpillPolicy policy);

struct DiskWriterConfig {
    bool enabled = false;        // off = classic inline write on the app thread
    std::size_t ring_slots = 256;
    SpillPolicy spill = SpillPolicy::kBlock;
};

/// One pcap record staged for the writer thread: the arena-backed packet
/// (the shared_ptr keeps the payload alive across the hand-off) plus its
/// capture metadata.  No payload bytes are copied until the writer emits
/// the record.
struct RecordRef {
    net::PacketPtr packet;
    std::uint32_t caplen = 0;      // pcap capture length
    std::uint32_t disk_bytes = 0;  // bytes charged against the disk model
    sim::SimTime timestamp{};
};

/// Fixed-size single-producer/single-consumer record ring (the "bring").
/// Slots are allocated once; push/pop move RecordRefs in and out, so the
/// steady state performs no allocation.
class BringRing {
public:
    explicit BringRing(std::size_t slots);

    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] bool full() const { return size_ == slots_.size(); }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] std::size_t slots() const { return slots_.size(); }

    /// Precondition: !full().
    void push(RecordRef rec);

    /// Precondition: !empty().
    RecordRef pop();

private:
    std::vector<RecordRef> slots_;
    std::size_t head_ = 0;  // consumer index
    std::size_t size_ = 0;
};

/// The cold writer thread.  Spawn it on the SUT's machine before the first
/// offer(); one instance serves exactly one producer thread.
class DiskWriterThread final : public hostsim::Thread {
public:
    DiskWriterThread(std::string name, const capture::OsSpec& os, DiskModel& disk,
                     DiskWriterConfig config);

    /// Producer side.  Returns true when the record was enqueued (or
    /// resolved by a drop policy); returns false only under
    /// SpillPolicy::kBlock with a full ring — the producer must block()
    /// and retry the same record when woken.  On success `rec` is
    /// consumed (moved from); on false it is left intact.
    bool offer(RecordRef& rec, hostsim::Thread& producer);

    /// Optional pcap sink: each drained record is emitted through the
    /// zero-copy FileWriter path, in hand-off order.
    void set_sink(pcap::FileWriter* sink) { sink_ = sink; }

    /// Optional obs hooks (spill counter, ring-occupancy trace counter).
    void set_observer(obs::AppObserver* obs) { obs_ = obs; }

    void main() override;

    [[nodiscard]] const DiskWriterConfig& config() const { return config_; }
    [[nodiscard]] std::size_t ring_occupancy() const { return ring_.size(); }
    [[nodiscard]] std::size_t max_ring_occupancy() const { return max_occupancy_; }
    /// Records accepted into the ring so far.
    [[nodiscard]] std::uint64_t enqueued() const { return enqueued_; }
    /// Records rejected by a drop spill policy (the `disk_spill` bucket).
    [[nodiscard]] std::uint64_t spilled() const { return spilled_; }
    /// Records fully retired (disk charged, sink written).
    [[nodiscard]] std::uint64_t records_written() const { return records_written_; }
    [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }

private:
    void drain_loop();
    void submit(std::uint64_t bytes);
    void flush_batch();

    BringRing ring_;
    DiskWriterConfig config_;
    const capture::OsSpec* os_;
    DiskModel* disk_;
    pcap::FileWriter* sink_ = nullptr;
    obs::AppObserver* obs_ = nullptr;
    hostsim::Thread* blocked_producer_ = nullptr;
    bool waiting_for_ring_ = false;  // writer blocked on an empty ring
    std::vector<RecordRef> batch_;   // pooled drain batch
    std::size_t max_occupancy_ = 0;
    std::uint64_t enqueued_ = 0;
    std::uint64_t spilled_ = 0;
    std::uint64_t records_written_ = 0;
    std::uint64_t bytes_written_ = 0;
};

}  // namespace capbench::load
