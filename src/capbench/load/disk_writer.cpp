#include "capbench/load/disk_writer.hpp"

#include <stdexcept>
#include <utility>

#include "capbench/capture/os.hpp"
#include "capbench/obs/observer.hpp"
#include "capbench/pcap/file.hpp"

namespace capbench::load {

namespace {
/// Records the writer retires per wakeup — one write() syscall covers the
/// whole batch, mirroring the capture app's 32-packet processing chunk.
constexpr std::size_t kWriterBatch = 32;
}  // namespace

const char* to_string(SpillPolicy policy) {
    switch (policy) {
        case SpillPolicy::kBlock: return "block";
        case SpillPolicy::kDropNewest: return "drop-newest";
        case SpillPolicy::kDropOldest: return "drop-oldest";
    }
    return "?";
}

BringRing::BringRing(std::size_t slots) : slots_(slots) {
    if (slots == 0) throw std::invalid_argument("BringRing: slots must be >= 1");
}

void BringRing::push(RecordRef rec) {
    slots_[(head_ + size_) % slots_.size()] = std::move(rec);
    ++size_;
}

RecordRef BringRing::pop() {
    RecordRef rec = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return rec;
}

DiskWriterThread::DiskWriterThread(std::string name, const capture::OsSpec& os,
                                   DiskModel& disk, DiskWriterConfig config)
    : hostsim::Thread(std::move(name)),
      ring_(config.ring_slots),
      config_(config),
      os_(&os),
      disk_(&disk) {
    batch_.reserve(kWriterBatch);
}

bool DiskWriterThread::offer(RecordRef& rec, hostsim::Thread& producer) {
    if (ring_.full()) {
        if (config_.spill == SpillPolicy::kBlock) {
            blocked_producer_ = &producer;
            return false;
        }
        ++spilled_;
        if (obs_ != nullptr) obs_->disk_spilled();
        if (config_.spill == SpillPolicy::kDropNewest) {
            rec.packet.reset();
            return true;
        }
        ring_.pop();  // kDropOldest: evict the head to make room
    }
    ring_.push(std::move(rec));
    ++enqueued_;
    if (ring_.size() > max_occupancy_) max_occupancy_ = ring_.size();
    if (obs_ != nullptr)
        obs_->disk_ring_occupancy(machine().sim().now(),
                                  static_cast<std::int64_t>(ring_.size()));
    if (waiting_for_ring_) machine().wake(*this);
    return true;
}

void DiskWriterThread::main() {
    drain_loop();
}

void DiskWriterThread::drain_loop() {
    if (ring_.empty()) {
        // Nothing to write: sleep until the producer pushes.  The flag
        // keeps producer-side wakes from firing while we are blocked on
        // disk back-pressure instead (that wake belongs to the DiskModel).
        waiting_for_ring_ = true;
        block([this] {
            waiting_for_ring_ = false;
            drain_loop();
        });
        return;
    }
    batch_.clear();
    std::uint64_t bytes = 0;
    while (!ring_.empty() && batch_.size() < kWriterBatch) {
        batch_.push_back(ring_.pop());
        bytes += batch_.back().disk_bytes;
    }
    if (obs_ != nullptr)
        obs_->disk_ring_occupancy(machine().sim().now(),
                                  static_cast<std::int64_t>(ring_.size()));
    if (blocked_producer_ != nullptr) {
        hostsim::Thread* producer = blocked_producer_;
        blocked_producer_ = nullptr;
        machine().wake(*producer);
    }
    // The syscall + per-byte cost the capture app no longer pays inline.
    hostsim::Work work = os_->write_syscall;
    work += disk_->write_work(bytes);
    exec(work, hostsim::CpuState::kSystem, [this, bytes] { submit(bytes); });
}

void DiskWriterThread::submit(std::uint64_t bytes) {
    if (bytes > 0 && !disk_->write(bytes, *this)) {
        // Write-back queue full: the DiskModel wakes us once the bytes
        // have been admitted.
        block([this] { flush_batch(); });
        return;
    }
    flush_batch();
}

void DiskWriterThread::flush_batch() {
    if (sink_ != nullptr) {
        for (const RecordRef& rec : batch_)
            sink_->write(*rec.packet, rec.caplen, rec.timestamp);
    }
    records_written_ += batch_.size();
    for (const RecordRef& rec : batch_) bytes_written_ += rec.disk_bytes;
    batch_.clear();  // releases the arena references
    drain_loop();
}

}  // namespace capbench::load
