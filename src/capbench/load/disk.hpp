// RAID disk write model (Sections 6.3.5 / Figure 6.13).
//
// A bounded write-back queue drains at the system's measured sequential
// write speed (the bonnie++ numbers).  Writers that would overflow the
// queue block until space frees up — exactly how a capture process stalls
// behind a slow disk.  CPU cost of writing is charged by the writer thread
// itself (cycles per byte from the spec).
#pragma once

#include <cstdint>
#include <vector>

#include "capbench/hostsim/machine.hpp"

namespace capbench::load {

struct DiskSpec {
    double write_mbytes_per_sec = 80.0;   // sequential throughput
    double cpu_cycles_per_byte = 1.1;     // filesystem + driver CPU cost
    std::uint64_t queue_bytes = 8ull * 1024 * 1024;  // write-back cache
};

class DiskModel {
public:
    DiskModel(hostsim::Machine& machine, DiskSpec spec);

    /// Tries to queue `bytes` for writing.  Returns true when accepted
    /// immediately; otherwise the writer is registered and woken once the
    /// bytes have been accepted (the caller must block()).
    bool write(std::uint64_t bytes, hostsim::Thread& writer);

    /// CPU work the writer must charge for handing `bytes` to the kernel.
    [[nodiscard]] hostsim::Work write_work(std::uint64_t bytes) const;

    [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
    [[nodiscard]] std::uint64_t queued() const { return queued_; }
    [[nodiscard]] const DiskSpec& spec() const { return spec_; }

private:
    void ensure_draining();
    void drain_step();

    struct Waiter {
        hostsim::Thread* thread = nullptr;
        std::uint64_t bytes = 0;
    };

    hostsim::Machine* machine_;
    DiskSpec spec_;
    std::uint64_t queued_ = 0;
    std::uint64_t bytes_written_ = 0;
    /// Fractional bytes of drain capacity carried between 1 ms steps, so
    /// non-integral per-ms rates (and trickle writers) still see exactly
    /// `write_mbytes_per_sec` in the long run.  Resets when the disk goes
    /// idle — unused capacity does not bank.
    double drain_carry_ = 0.0;
    std::vector<Waiter> waiters_;
    bool draining_ = false;
};

/// The four sniffers' disk subsystems (3ware 7000-series ATA RAID).  None
/// reaches gigabit line speed (~119 MB/s of frame data), the key finding of
/// Figure 6.13 that forces header-only traces.
DiskSpec disk_spec_for(const std::string& sut_name);

}  // namespace capbench::load
