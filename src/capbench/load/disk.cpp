#include "capbench/load/disk.hpp"

#include <algorithm>
#include <stdexcept>

namespace capbench::load {

DiskModel::DiskModel(hostsim::Machine& machine, DiskSpec spec)
    : machine_(&machine), spec_(spec) {
    if (spec_.write_mbytes_per_sec <= 0) throw std::invalid_argument("DiskModel: bad write speed");
}

hostsim::Work DiskModel::write_work(std::uint64_t bytes) const {
    hostsim::Work w;
    w.cycles = spec_.cpu_cycles_per_byte * static_cast<double>(bytes);
    // One copy into the page cache.
    w.copy_bytes = static_cast<double>(bytes);
    return w;
}

bool DiskModel::write(std::uint64_t bytes, hostsim::Thread& writer) {
    if (queued_ + bytes <= spec_.queue_bytes) {
        queued_ += bytes;
        ensure_draining();
        return true;
    }
    waiters_.push_back(Waiter{&writer, bytes});
    ensure_draining();
    return false;
}

void DiskModel::ensure_draining() {
    if (draining_ || (queued_ == 0 && waiters_.empty())) return;
    draining_ = true;
    machine_->sim().schedule_in(sim::milliseconds(1), [this] { drain_step(); });
}

void DiskModel::drain_step() {
    draining_ = false;
    // Bytes the spindles retire this millisecond.  The carry keeps
    // sub-per-ms remainders instead of truncating them away, so trickle
    // writers still see exactly `write_mbytes_per_sec` in the long run.
    drain_carry_ += spec_.write_mbytes_per_sec * 1e6 / 1000.0;
    const auto capacity = static_cast<std::uint64_t>(drain_carry_);
    const std::uint64_t drained = std::min(queued_, capacity);
    queued_ -= drained;
    bytes_written_ += drained;
    if (drained < capacity) {
        drain_carry_ = 0.0;  // disk went idle; spare capacity doesn't bank
    } else {
        drain_carry_ -= static_cast<double>(capacity);
    }

    // Admit blocked writers in FIFO order.  A write larger than the whole
    // queue is admitted in chunks as drain frees space (the head waiter is
    // woken only once its final chunk fits), so oversized writers make
    // progress every step instead of livelocking the drain timer.
    std::size_t admitted = 0;
    for (auto& waiter : waiters_) {
        const std::uint64_t space = spec_.queue_bytes - queued_;
        if (space == 0) break;
        const std::uint64_t take = std::min(space, waiter.bytes);
        queued_ += take;
        waiter.bytes -= take;
        if (waiter.bytes > 0) break;  // partially admitted; stays at the head
        machine_->wake(*waiter.thread);
        ++admitted;
    }
    waiters_.erase(waiters_.begin(), waiters_.begin() + static_cast<std::ptrdiff_t>(admitted));
    ensure_draining();
}

DiskSpec disk_spec_for(const std::string& sut_name) {
    // Shapes from Figure 6.13: every system is below the ~119 MB/s line
    // speed; the Linux boxes write a bit faster than the FreeBSD ones, and
    // writing costs a visible slice of CPU.
    if (sut_name == "swan") return DiskSpec{92.0, 5.0, 8ull << 20};
    if (sut_name == "snipe") return DiskSpec{84.0, 5.5, 8ull << 20};
    if (sut_name == "moorhen") return DiskSpec{73.0, 6.0, 8ull << 20};
    if (sut_name == "flamingo") return DiskSpec{68.0, 6.5, 8ull << 20};
    return DiskSpec{};
}

}  // namespace capbench::load
