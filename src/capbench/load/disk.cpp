#include "capbench/load/disk.hpp"

#include <algorithm>
#include <stdexcept>

namespace capbench::load {

DiskModel::DiskModel(hostsim::Machine& machine, DiskSpec spec)
    : machine_(&machine), spec_(spec) {
    if (spec_.write_mbytes_per_sec <= 0) throw std::invalid_argument("DiskModel: bad write speed");
}

hostsim::Work DiskModel::write_work(std::uint64_t bytes) const {
    hostsim::Work w;
    w.cycles = spec_.cpu_cycles_per_byte * static_cast<double>(bytes);
    // One copy into the page cache.
    w.copy_bytes = static_cast<double>(bytes);
    return w;
}

bool DiskModel::write(std::uint64_t bytes, hostsim::Thread& writer) {
    if (queued_ + bytes <= spec_.queue_bytes) {
        queued_ += bytes;
        ensure_draining();
        return true;
    }
    waiters_.push_back(Waiter{&writer, bytes});
    ensure_draining();
    return false;
}

void DiskModel::ensure_draining() {
    if (draining_ || (queued_ == 0 && waiters_.empty())) return;
    draining_ = true;
    machine_->sim().schedule_in(sim::milliseconds(1), [this] { drain_step(); });
}

void DiskModel::drain_step() {
    draining_ = false;
    // Bytes the spindles retire per millisecond.
    const auto per_ms = static_cast<std::uint64_t>(spec_.write_mbytes_per_sec * 1e6 / 1000.0);
    const std::uint64_t drained = std::min(queued_, per_ms);
    queued_ -= drained;
    bytes_written_ += drained;

    // Admit blocked writers in FIFO order while space allows.
    std::size_t admitted = 0;
    for (auto& waiter : waiters_) {
        if (queued_ + waiter.bytes > spec_.queue_bytes) break;
        queued_ += waiter.bytes;
        machine_->wake(*waiter.thread);
        ++admitted;
    }
    waiters_.erase(waiters_.begin(), waiters_.begin() + static_cast<std::ptrdiff_t>(admitted));
    ensure_draining();
}

DiskSpec disk_spec_for(const std::string& sut_name) {
    // Shapes from Figure 6.13: every system is below the ~119 MB/s line
    // speed; the Linux boxes write a bit faster than the FreeBSD ones, and
    // writing costs a visible slice of CPU.
    if (sut_name == "swan") return DiskSpec{92.0, 5.0, 8ull << 20};
    if (sut_name == "snipe") return DiskSpec{84.0, 5.5, 8ull << 20};
    if (sut_name == "moorhen") return DiskSpec{73.0, 6.0, 8ull << 20};
    if (sut_name == "flamingo") return DiskSpec{68.0, 6.5, 8ull << 20};
    return DiskSpec{};
}

}  // namespace capbench::load
