// MiniDeflate: a real LZ77 compressor standing in for zlib (Section 6.3.4).
//
// The capture application of the thesis calls gzwrite() on every packet to
// simulate analysis load; compression levels 0-9 trade speed for ratio.  We
// cannot ship zlib, so this module implements a small but genuine LZ77
// compressor with hash-chain match search whose search depth scales with
// the level — the same speed/ratio mechanism as deflate.  Its work counters
// (bytes scanned, hash-chain steps, literals/matches emitted) feed the
// simulated per-packet CPU cost via compression_cycles_per_byte().
//
// The stream format is private to capbench (not zlib-compatible):
//   token 0x00 llllllll        -> literal run of l+1 bytes following
//   token 0x01 llllllll dddddddd dddddddd -> match of l+3 bytes at distance d
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace capbench::load {

struct CompressResult {
    std::vector<std::byte> output;
    std::uint64_t literals = 0;
    std::uint64_t matches = 0;
    std::uint64_t search_steps = 0;  // hash-chain probes (the level-dependent cost)

    [[nodiscard]] double ratio(std::size_t input_size) const {
        return input_size == 0 ? 1.0
                               : static_cast<double>(output.size()) /
                                     static_cast<double>(input_size);
    }
};

class MiniDeflate {
public:
    /// `level` 0..9: 0 stores uncompressed, 9 searches deepest.
    explicit MiniDeflate(int level);

    [[nodiscard]] int level() const { return level_; }

    /// Compresses `input`; deterministic for identical inputs.
    [[nodiscard]] CompressResult compress(std::span<const std::byte> input) const;

    /// Inverse of compress(); throws std::runtime_error on corrupt streams.
    [[nodiscard]] static std::vector<std::byte> decompress(std::span<const std::byte> input);

private:
    int level_;
    std::size_t max_chain_;  // search depth, derived from the level
};

/// Estimated CPU cycles per input byte for the given level, derived from
/// MiniDeflate's work counters on a deterministic mixed corpus (computed
/// once, cached).  Used by the app-load model so per-packet compression
/// cost reflects the real algorithm rather than a guessed constant.
double compression_cycles_per_byte(int level);

}  // namespace capbench::load
