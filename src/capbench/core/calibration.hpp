// Calibration targets: the qualitative results of Chapter 6 that the cost
// model (capture/os.cpp, hostsim/arch.cpp) must reproduce.  Checked by
// tests/calibration_test.cpp; bench binaries print the same shapes.
#pragma once

#include <string>
#include <vector>

namespace capbench::core {

struct CalibrationTarget {
    std::string id;          // e.g. "moorhen-dual-lossless"
    std::string description; // the thesis finding being matched
};

/// The documented target list (for reports and the README).
const std::vector<CalibrationTarget>& calibration_targets();

}  // namespace capbench::core
