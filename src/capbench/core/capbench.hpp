// capbench — umbrella header.
//
// A framework for evaluating packet capturing systems, reproducing
// F. Schneider, "Performance evaluation of packet capturing systems for
// high-speed networks" (TU München, 2005 / CoNEXT'05).  See README.md and
// DESIGN.md for the architecture and EXPERIMENTS.md for the reproduced
// results.
#pragma once

#include "capbench/bpf/analysis/analyze.hpp"
#include "capbench/bpf/analysis/cfg.hpp"
#include "capbench/bpf/analysis/dominators.hpp"
#include "capbench/bpf/analysis/fact_table.hpp"
#include "capbench/bpf/analysis/liveness.hpp"
#include "capbench/bpf/analysis/optimize.hpp"
#include "capbench/bpf/asm_text.hpp"
#include "capbench/bpf/decoded.hpp"
#include "capbench/bpf/program_cache.hpp"
#include "capbench/bpf/threaded_vm.hpp"
#include "capbench/bpf/verifier.hpp"
#include "capbench/bpf/filter/codegen.hpp"
#include "capbench/bpf/filter/lexer.hpp"
#include "capbench/bpf/filter/parser.hpp"
#include "capbench/bpf/insn.hpp"
#include "capbench/bpf/validator.hpp"
#include "capbench/bpf/vm.hpp"
#include "capbench/capture/bsd_bpf.hpp"
#include "capbench/capture/linux_socket.hpp"
#include "capbench/capture/mmap_ring.hpp"
#include "capbench/capture/nic.hpp"
#include "capbench/capture/os.hpp"
#include "capbench/core/calibration.hpp"
#include "capbench/dist/builtin.hpp"
#include "capbench/dist/createdist.hpp"
#include "capbench/dist/size_histogram.hpp"
#include "capbench/dist/two_stage_dist.hpp"
#include "capbench/harness/experiment.hpp"
#include "capbench/harness/measurement.hpp"
#include "capbench/harness/parallel.hpp"
#include "capbench/harness/report.hpp"
#include "capbench/harness/sut.hpp"
#include "capbench/harness/testbed.hpp"
#include "capbench/hostsim/arch.hpp"
#include "capbench/hostsim/machine.hpp"
#include "capbench/load/disk.hpp"
#include "capbench/load/loads.hpp"
#include "capbench/load/minideflate.hpp"
#include "capbench/net/headers.hpp"
#include "capbench/net/link.hpp"
#include "capbench/net/packet.hpp"
#include "capbench/net/switch.hpp"
#include "capbench/net/wire.hpp"
#include "capbench/pcap/file.hpp"
#include "capbench/pcap/session.hpp"
#include "capbench/pktgen/pktgen.hpp"
#include "capbench/profiling/cpusage.hpp"
#include "capbench/profiling/trimusage.hpp"
#include "capbench/report/json.hpp"
#include "capbench/scenario/registry.hpp"
#include "capbench/scenario/runner.hpp"
#include "capbench/scenario/scenario.hpp"
#include "capbench/sim/simulator.hpp"

namespace capbench {

inline constexpr const char* kVersion = "1.0.0";

}  // namespace capbench
