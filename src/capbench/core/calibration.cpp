#include "capbench/core/calibration.hpp"

namespace capbench::core {

const std::vector<CalibrationTarget>& calibration_targets() {
    static const std::vector<CalibrationTarget> targets = {
        {"moorhen-best",
         "FreeBSD 5.4/Opteron loses nearly no packets single-CPU and none dual-CPU (Sec. 7.1)"},
        {"linux-default-buffer-knee",
         "With default buffers Linux drops from ~225 Mbit/s; 128 MB buffers move the knee to "
         "~650 Mbit/s (Sec. 6.3.1)"},
        {"freebsd-big-buffer-single-cpu",
         "Large BPF buffers deteriorate single-CPU FreeBSD but help dual-CPU (Fig. 6.4)"},
        {"filter-cheap",
         "The 50-instruction filter costs almost nothing; only Linux loses up to ~10 % more at "
         "the highest rates (Fig. 6.6)"},
        {"multiapp-linux-collapse",
         "With 4-8 applications Linux collapses towards zero past an overload threshold while "
         "FreeBSD degrades gracefully and shares evenly (Figs. 6.7-6.9)"},
        {"memcpy-opteron-wins", "With 50 extra copies the Opterons win single-CPU (Fig. 6.10)"},
        {"gzip-intel-wins",
         "With zlib-level-3 compression each Intel system beats the corresponding AMD system "
         "(Fig. 6.11) — the only experiment Intel wins"},
        {"disk-headers-cheap",
         "No system writes full packets at line speed; writing 76-byte headers is nearly free "
         "(FreeBSD) or costs ~10 % (Linux) (Figs. 6.13/6.14)"},
        {"mmap-linux-improves",
         "The mmap libpcap removes nearly all Linux drops (Fig. 6.15)"},
        {"hyperthreading-neutral",
         "Hyperthreading neither helps nor hurts (Fig. 6.16)"},
    };
    return targets;
}

}  // namespace capbench::core
