#include "capbench/pktgen/pktgen.hpp"

#include <algorithm>

#include "capbench/net/wire.hpp"
#include "capbench/obs/registry.hpp"

namespace capbench::pktgen {

const GenNicModel& GenNicModel::syskonnect() {
    static const GenNicModel m{"Syskonnect SK-98xx", 490.0};
    return m;
}
const GenNicModel& GenNicModel::netgear() {
    static const GenNicModel m{"Netgear GA-621", 600.0};
    return m;
}
const GenNicModel& GenNicModel::intel() {
    static const GenNicModel m{"Intel 82544EI", 1180.0};
    return m;
}

Generator::Generator(sim::Simulator& sim, net::Link& link, GenNicModel nic, GenConfig config,
                     std::shared_ptr<net::PacketArena> arena)
    : sim_(&sim), link_(&link),
      arena_(arena != nullptr ? std::move(arena) : net::PacketArena::create()),
      nic_(std::move(nic)), config_(std::move(config)), rng_(config_.seed) {}

std::uint32_t Generator::draw_size() {
    if (config_.use_dist && config_.size_dist) return config_.size_dist->sample(rng_);
    return config_.packet_size;
}

void Generator::register_metrics(obs::Registry& registry) {
    obs_packets_ = &registry.counter("pktgen.packets");
    obs_bytes_ = &registry.counter("pktgen.bytes");
}

net::FlowTuple Generator::flow_for(std::uint64_t id) const {
    net::FlowTuple t{config_.src_ip.value(), config_.dst_ip.value(), config_.udp_src_port,
                     config_.udp_dst_port};
    if (config_.flow_count <= 1) return t;
    const auto flow = static_cast<std::uint32_t>(id % config_.flow_count);
    // Deterministic spread: the source address walks a host range while a
    // golden-ratio mix decorrelates the source port, so consecutive flow
    // ids land on well-spread RSS hash values.  The destination (the
    // capture target) stays fixed.
    const std::uint32_t mix = flow * 0x9E3779B1u;
    t.src_ip += flow % 251;
    t.src_port = static_cast<std::uint16_t>(1024 + (mix >> 17));
    return t;
}

net::PacketPtr Generator::build_packet(std::uint32_t ip_size) {
    // The distribution counts IP packet sizes (Section 4.2.1); frames add
    // the Ethernet header and minimum-size padding.
    ip_size = std::max<std::uint32_t>(
        ip_size, net::kIpv4MinHeaderLen + net::kUdpHeaderLen);
    const std::uint32_t frame_len =
        std::max<std::uint32_t>(ip_size + net::kEthernetHeaderLen, net::kMinFrameBytes);
    const std::uint64_t id = next_id_++;
    const net::FlowTuple flow = flow_for(id);

    if (!config_.full_bytes) {
        std::shared_ptr<net::Packet> packet = arena_->make_synthetic(id, frame_len, sim_->now());
        packet->set_flow(flow);
        return packet;
    }

    std::shared_ptr<net::Packet> packet = arena_->make_full(id, frame_len, sim_->now());
    packet->set_flow(flow);
    const std::span<std::byte> frame = packet->mutable_bytes();
    net::EthernetHeader eth;
    eth.dst = config_.dst_mac;
    eth.src = config_.src_mac_count > 1
                  ? config_.src_mac.plus(id % config_.src_mac_count)
                  : config_.src_mac;
    eth.ether_type = net::kEtherTypeIpv4;
    eth.encode(frame);

    net::Ipv4Header ip;
    ip.total_length = static_cast<std::uint16_t>(ip_size);
    ip.identification = static_cast<std::uint16_t>(id & 0xFFFF);
    ip.protocol = net::kIpProtoUdp;
    ip.src = net::Ipv4Addr{flow.src_ip};
    ip.dst = net::Ipv4Addr{flow.dst_ip};
    ip.encode(frame.subspan(net::kEthernetHeaderLen));

    net::UdpHeader udp;
    udp.src_port = flow.src_port;
    udp.dst_port = flow.dst_port;
    udp.length = static_cast<std::uint16_t>(ip_size - net::kIpv4MinHeaderLen);
    udp.encode(frame.subspan(net::kEthernetHeaderLen + net::kIpv4MinHeaderLen));

    // Payload pattern: pktgen-style magic + sequence for loss debugging.
    for (std::size_t i = net::kEthernetHeaderLen + net::kIpv4MinHeaderLen + net::kUdpHeaderLen;
         i < frame.size(); ++i)
        frame[i] = static_cast<std::byte>((id + i) & 0xFF);

    return packet;
}

void Generator::start(sim::SimTime at, std::function<void()> on_done) {
    if (config_.use_dist && !config_.size_dist)
        throw std::runtime_error("pktgen: PKTSIZE_REAL set but no distribution loaded");
    on_done_ = std::move(on_done);
    stats_ = GenStats{};
    stats_.started_at = at;
    pace_next_ = at;
    sim_->schedule_at(at, [this] { send_next(); });
}

void Generator::send_next() {
    if (stats_.packets_sent >= config_.count) {
        stats_.finished_at = link_->busy_until();
        if (on_done_) on_done_();
        return;
    }
    const std::uint32_t ip_size =
        std::max<std::uint32_t>(draw_size(), net::kIpv4MinHeaderLen + net::kUdpHeaderLen);
    auto packet = build_packet(ip_size);
    const std::uint32_t frame_len = packet->frame_len();
    link_->transmit(std::move(packet));
    ++stats_.packets_sent;
    // Data rates throughout the thesis count IP packet bytes; with this
    // convention the Syskonnect card's 1500-byte maximum comes out at the
    // measured 938 Mbit/s.
    stats_.bytes_sent += ip_size;
    if (obs_packets_) {
        obs_packets_->inc();
        obs_bytes_->inc(ip_size);
    }

    // Pacing: at a target rate, the next packet starts one packet-time (at
    // the target rate) after this one started; at full speed, as soon as
    // the wire and the NIC allow.  The configured delay adds on top.
    const sim::Duration nic_gap =
        net::wire_time_at(frame_len, config_.link_gbps) +
        sim::Duration{static_cast<std::int64_t>(nic_.per_packet_overhead_ns)} +
        sim::Duration{config_.delay_ns};
    sim::SimTime next = sim_->now() + nic_gap;
    if (config_.rate_mbps > 0.0) {
        double rate = config_.rate_mbps;
        if (config_.burst_period_ns > 0) {
            const std::int64_t phase =
                (sim_->now() - stats_.started_at).ns() % config_.burst_period_ns;
            if (phase < config_.burst_duration_ns) rate *= config_.burst_multiplier;
            // A burst above what the NIC gap admits leaves the pacing
            // cursor behind the clock; without this clamp the deficit
            // would be "repaid" at line rate after the burst window,
            // smearing the square wave.
            pace_next_ = std::max(pace_next_, sim_->now());
        }
        const double bits = static_cast<double>(ip_size) * 8.0;
        const auto inter = sim::Duration{static_cast<std::int64_t>(bits * 1000.0 / rate)};
        pace_next_ = pace_next_ + inter;
        next = std::max(next, pace_next_);
    }
    sim_->schedule_at(next, [this] { send_next(); });
}

}  // namespace capbench::pktgen
